package govfm_test

import (
	"strings"
	"testing"

	govfm "govfm"
)

func TestFacadeNativeBoot(t *testing.T) {
	sys, err := govfm.New(govfm.Config{Harts: 1})
	if err != nil {
		t.Fatal(err)
	}
	halted, reason := sys.Run(0)
	if !halted || reason != "guest-exit-pass" {
		t.Fatalf("halted=%v reason=%q", halted, reason)
	}
	if !strings.Contains(sys.Console(), "ok") {
		t.Errorf("console: %q", sys.Console())
	}
	if sys.Stats().WorldSwitches != 0 {
		t.Error("native run must have zero monitor stats")
	}
}

func TestFacadeVirtualizedWithSandbox(t *testing.T) {
	sys, err := govfm.New(govfm.Config{
		Harts:      1,
		Virtualize: true,
		Offload:    true,
		Policy:     govfm.SandboxPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	halted, reason := sys.Run(0)
	if !halted || reason != "guest-exit-pass" {
		t.Fatalf("halted=%v reason=%q console=%q", halted, reason, sys.Console())
	}
	if sys.Stats().Emulations == 0 {
		t.Error("virtualized run must emulate firmware instructions")
	}
	if sys.Cycles() == 0 {
		t.Error("cycles must advance")
	}
}

func TestFacadeRTOS(t *testing.T) {
	for _, virt := range []bool{false, true} {
		sys, err := govfm.New(govfm.Config{
			Harts: 1, Firmware: govfm.RTOS, Virtualize: virt, Offload: virt,
		})
		if err != nil {
			t.Fatal(err)
		}
		if halted, reason := sys.Run(0); !halted || reason != "guest-exit-pass" {
			t.Fatalf("virt=%v: %v %q", virt, halted, reason)
		}
		if !strings.Contains(sys.Console(), "all tests passed") {
			t.Errorf("virt=%v console: %q", virt, sys.Console())
		}
	}
}

func TestFacadeMinsbiAndPlatforms(t *testing.T) {
	for _, p := range []govfm.Platform{govfm.VisionFive2, govfm.PremierP550, govfm.RVA23} {
		sys, err := govfm.New(govfm.Config{
			Platform: p, Harts: 1, Firmware: govfm.Minsbi,
			Virtualize: true, Offload: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if halted, reason := sys.Run(0); !halted || reason != "guest-exit-pass" {
			t.Fatalf("%s: %v %q (console=%q)", p, halted, reason, sys.Console())
		}
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := govfm.New(govfm.Config{Platform: "toaster"}); err == nil {
		t.Error("unknown platform must error")
	}
	if _, err := govfm.New(govfm.Config{Firmware: "efi"}); err == nil {
		t.Error("unknown firmware must error")
	}
}

func TestFacadeVirtualDevices(t *testing.T) {
	// The §4.3 extensions compose through the facade: vPLIC + vIOPMP on
	// top of the sandbox.
	sys, err := govfm.New(govfm.Config{
		Harts:          1,
		Virtualize:     true,
		Offload:        true,
		Policy:         govfm.SandboxPolicy(),
		VirtualizePLIC: true,
		IOPMP:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if halted, reason := sys.Run(0); !halted || reason != "guest-exit-pass" {
		t.Fatalf("%v %q (console=%q)", halted, reason, sys.Console())
	}
	if sys.Machine.IOPMP == nil {
		t.Error("machine must carry the IOPMP")
	}
}
