#!/bin/sh
# Tier-2 verification gate: everything tier-1 runs (build + tests) plus
# static analysis, the race detector, and a differential-fuzzer smoke run.
#
# The race pass uses -short because internal/bench honors testing.Short();
# the full -race run takes ~2 minutes and is available via RACE_FULL=1.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race -short ./..."
if [ "${RACE_FULL:-0}" = "1" ]; then
    go test -race ./...
else
    go test -race -short ./...
fi

echo "== fuzzdiff smoke"
go run ./cmd/fuzzdiff -smoke

echo "== chaos smoke"
go run ./cmd/chaos -smoke

echo "verify: all gates passed"
