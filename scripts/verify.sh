#!/bin/sh
# Tier-2 verification gate: everything tier-1 runs (build + tests) plus
# static analysis, the race detector, and the differential-fuzzer gates.
#
# The race pass uses -short because internal/bench honors testing.Short();
# the full -race run takes several minutes (internal/bench alone can exceed
# go test's default 10m under the race detector) and is available via
# RACE_FULL=1 (the nightly workflow sets it).
#
# Every gate's output is teed into OBS_ARTIFACT_DIR (default
# /tmp/govfm-obs) so CI uploads the full per-gate logs — divergence dumps
# included — on failure, not just whatever happened to hit stdout.
set -eu
cd "$(dirname "$0")/.."

# -mod=mod keeps every go build/run/test below resolving the module the
# same way regardless of the caller's GOFLAGS, and the warm-up build
# populates the build cache once so the repeated `go run ./cmd/...`
# invocations below reuse it instead of each paying a cold compile.
GOFLAGS=-mod=mod
export GOFLAGS

obs_dir="${OBS_ARTIFACT_DIR:-/tmp/govfm-obs}"
mkdir -p "$obs_dir"

# run_gate <name> <cmd...>: run a gate, teeing its output to
# $obs_dir/<name>.log.
run_gate() {
    gate_name="$1"
    shift
    if ! "$@" >"$obs_dir/$gate_name.log" 2>&1; then
        cat "$obs_dir/$gate_name.log"
        echo "gate $gate_name FAILED (log: $obs_dir/$gate_name.log)"
        exit 1
    fi
    cat "$obs_dir/$gate_name.log"
}

echo "== go build ./... (warm-up; later gates reuse the build cache)"
run_gate build go build ./...

echo "== go test ./..."
run_gate test go test ./...

echo "== go vet ./..."
run_gate vet go vet ./...

echo "== staticcheck"
# Pinned in CI (see .github/workflows/ci.yml); locally we use whatever is
# on PATH and skip with a note when absent rather than demanding an
# install.
if command -v staticcheck >/dev/null 2>&1; then
    # shellcheck disable=SC2046 # word-splitting the package list is the point
    run_gate staticcheck staticcheck $(go list ./... | grep -v /testdata/)
else
    echo "   staticcheck not on PATH; skipping (CI runs it pinned)" \
        | tee "$obs_dir/staticcheck.log"
fi

echo "== go test -race ./..."
if [ "${RACE_FULL:-0}" = "1" ]; then
    run_gate race go test -race -timeout 30m ./...
else
    run_gate race go test -race -short ./...
fi

echo "== fuzzdiff smoke"
run_gate fuzzdiff_smoke go run ./cmd/fuzzdiff -smoke

echo "== hext lockstep (hypervisor-extension bias, state + cycles, 500 cases)"
# Three-way lockstep with the generator biased into V=1 guest states:
# hfence encodings, H CSR traffic, guest-page faults, and virtual
# instructions all land in the differential window. Bit-identical
# architectural state AND cycle counters, >= 400 cases, zero divergences.
run_gate hext_lockstep go run ./cmd/fuzzdiff -hext -smoke

echo "== fastpath equivalence (host caches on vs. off, state + cycles)"
run_gate fastpath_equiv go run ./cmd/fuzzdiff -fastpath both -equiv-cases 400

echo "== scheduler equivalence (sequential vs. quantum-parallel, state + cycles)"
run_gate sched_equiv go run ./cmd/fuzzdiff -sched both -equiv-cases 400

echo "== fork equivalence (COW fork vs. cold replay, state + cycles, 400 cases)"
# Each case forks a parent mid-run and requires the child AND the
# post-fork parent to match a cold replay bit-for-bit (cycle counters
# included), swept across both schedulers and both fastpath settings.
run_gate fork_equiv go run ./cmd/fuzzdiff -fork 200

echo "== superblock equivalence (translation tier vs. fast path vs. interpreter)"
# Three-machine differential gate for the superblock binary-translation
# tier: every case runs on an interpreter-only, a caches-only, and a
# full-stack machine under a live wall clock and must match bit-for-bit
# (registers, CSRs, memory, cycle counters), swept across both schedulers,
# timer interrupts, self-modifying code, and PMP reprogramming.
run_gate superblock_equiv go run ./cmd/fuzzdiff -superblock both -equiv-cases 400

echo "== Table 4 host-throughput benchmark (compile-and-run gate)"
run_gate bench_table4 go test ./internal/bench -run '^$' -bench BenchmarkTable4Operations -benchtime 1x

echo "== chaos smoke"
run_gate chaos_smoke go run ./cmd/chaos -smoke

echo "== TEE chaos smoke (TEE fault deck; wall + lifecycle invariants)"
# Restricts injection to the TEE deck — forged confidential-compute
# lifecycle hypercalls, double-donations, reclaim storms, probes at the
# Dorami monitor wall — across all three policies, asserting after every
# fault that the locked-PMP wall holds on every hart, the ACE lifecycle
# FSM is structurally intact, and the monitor's protected-state
# fingerprint never changed.
run_gate tee_chaos go run ./cmd/chaos -tee -smoke

echo "== TEE lifecycle fuzz (shadow-model FSM sweep, 40 cases per profile)"
# Randomized enclave lifecycle programs against an independent shadow
# FSM: state, measurement, donation ledger, and wall checked after every
# single operation; exits nonzero if the sweep exercised no guards.
run_gate tee_fuzz go run ./cmd/fuzzdiff -tee 40

echo "== fleet chaos smoke (120 control-plane faults; supervision invariants)"
# Attacks the vfmd control plane itself — worker panics, stuck/slow jobs,
# dropped/duplicated requests, mid-job machine kills — and asserts the
# supervision invariants: service never crashes, every job terminal, no
# machine lock leaked, no double-runs, respawns within cap.
run_gate fleet_chaos go run ./cmd/chaos -fleet -smoke -fleet-report "$obs_dir/fleet_chaos.json"

echo "== obs overhead (simulated cycles bit-identical with observability on vs. off)"
# The same built-in gosbi boot, once bare and once with the full
# observability layer attached (metrics + trace ring). Observability must
# stay architecturally invisible: identical cycle and instret counts.
plain=$(go run ./cmd/rvsim | tee "$obs_dir/obs_plain.log" \
    | grep -o 'cycles=[0-9]* instret=[0-9]*')
traced=$(go run ./cmd/rvsim -metrics-out "$obs_dir/boot_metrics.json" \
    -trace-out "$obs_dir/boot_trace.json" | tee "$obs_dir/obs_traced.log" \
    | grep -o 'cycles=[0-9]* instret=[0-9]*')
if [ "$plain" != "$traced" ]; then
    echo "obs overhead gate FAILED: bare [$plain] vs. observed [$traced]"
    exit 1
fi
echo "   $plain (identical; trace + metrics in $obs_dir)"

echo "verify: all gates passed (logs in $obs_dir)"
