#!/bin/sh
# Tier-2 verification gate: everything tier-1 runs (build + tests) plus
# static analysis, the race detector, and a differential-fuzzer smoke run.
#
# The race pass uses -short because internal/bench honors testing.Short();
# the full -race run takes several minutes (internal/bench alone can exceed
# go test's default 10m under the race detector) and is available via
# RACE_FULL=1.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race -short ./..."
if [ "${RACE_FULL:-0}" = "1" ]; then
    go test -race -timeout 30m ./...
else
    go test -race -short ./...
fi

echo "== fuzzdiff smoke"
go run ./cmd/fuzzdiff -smoke

echo "== fastpath equivalence (host caches on vs. off, state + cycles)"
go run ./cmd/fuzzdiff -fastpath both -equiv-cases 400

echo "== scheduler equivalence (sequential vs. quantum-parallel, state + cycles)"
go run ./cmd/fuzzdiff -sched both -equiv-cases 400

echo "== fork equivalence (COW fork vs. cold replay, state + cycles, 400 cases)"
# Each case forks a parent mid-run and requires the child AND the
# post-fork parent to match a cold replay bit-for-bit (cycle counters
# included), swept across both schedulers and both fastpath settings.
go run ./cmd/fuzzdiff -fork 200

echo "== superblock equivalence (translation tier vs. fast path vs. interpreter)"
# Three-machine differential gate for the superblock binary-translation
# tier: every case runs on an interpreter-only, a caches-only, and a
# full-stack machine under a live wall clock and must match bit-for-bit
# (registers, CSRs, memory, cycle counters), swept across both schedulers,
# timer interrupts, self-modifying code, and PMP reprogramming. The log —
# including any divergence dumps — lands in OBS_ARTIFACT_DIR so CI can
# upload it on failure.
sb_obs_dir="${OBS_ARTIFACT_DIR:-/tmp/govfm-obs}"
mkdir -p "$sb_obs_dir"
if ! go run ./cmd/fuzzdiff -superblock both -equiv-cases 400 \
    >"$sb_obs_dir/superblock_equiv.log" 2>&1; then
    cat "$sb_obs_dir/superblock_equiv.log"
    echo "superblock equivalence gate FAILED (log: $sb_obs_dir/superblock_equiv.log)"
    exit 1
fi
cat "$sb_obs_dir/superblock_equiv.log"

echo "== Table 4 host-throughput benchmark (compile-and-run gate)"
go test ./internal/bench -run '^$' -bench BenchmarkTable4Operations -benchtime 1x

echo "== chaos smoke"
go run ./cmd/chaos -smoke

echo "== fleet chaos smoke (120 control-plane faults; supervision invariants)"
# Attacks the vfmd control plane itself — worker panics, stuck/slow jobs,
# dropped/duplicated requests, mid-job machine kills — and asserts the
# supervision invariants: service never crashes, every job terminal, no
# machine lock leaked, no double-runs, respawns within cap. The full
# report lands in OBS_ARTIFACT_DIR so CI can upload it on failure.
fleet_obs_dir="${OBS_ARTIFACT_DIR:-/tmp/govfm-obs}"
mkdir -p "$fleet_obs_dir"
go run ./cmd/chaos -fleet -smoke -fleet-report "$fleet_obs_dir/fleet_chaos.json"

echo "== obs overhead (simulated cycles bit-identical with observability on vs. off)"
# The same built-in gosbi boot, once bare and once with the full
# observability layer attached (metrics + trace ring). Observability must
# stay architecturally invisible: identical cycle and instret counts.
# The JSON outputs land in OBS_ARTIFACT_DIR (default /tmp/govfm-obs) so CI
# can upload them as artifacts.
obs_dir="${OBS_ARTIFACT_DIR:-/tmp/govfm-obs}"
mkdir -p "$obs_dir"
plain=$(go run ./cmd/rvsim | grep -o 'cycles=[0-9]* instret=[0-9]*')
traced=$(go run ./cmd/rvsim -metrics-out "$obs_dir/boot_metrics.json" \
    -trace-out "$obs_dir/boot_trace.json" | grep -o 'cycles=[0-9]* instret=[0-9]*')
if [ "$plain" != "$traced" ]; then
    echo "obs overhead gate FAILED: bare [$plain] vs. observed [$traced]"
    exit 1
fi
echo "   $plain (identical; trace + metrics in $obs_dir)"

echo "verify: all gates passed"
