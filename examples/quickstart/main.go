// Quickstart: boot unmodified vendor firmware and a guest kernel under the
// virtual firmware monitor with the sandbox policy — the paper's default
// deployment — and print what the monitor did.
package main

import (
	"fmt"
	"log"

	govfm "govfm"
)

func main() {
	// A realistic boot payload: bootloader, early init, then an idle
	// phase of timer ticks.
	kern := govfm.BootTraceKernel(100)

	// Native baseline first: the firmware runs in physical M-mode.
	native, err := govfm.New(govfm.Config{Harts: 1, Kernel: kern})
	if err != nil {
		log.Fatal(err)
	}
	if ok, reason := native.Run(0); !ok || reason != "guest-exit-pass" {
		log.Fatalf("native boot failed: %v %q", ok, reason)
	}

	// The same firmware binary, now deprivileged into virtual M-mode and
	// confined by the firmware sandbox.
	virt, err := govfm.New(govfm.Config{
		Harts:      1,
		Kernel:     kern,
		Virtualize: true,
		Offload:    true,
		Policy:     govfm.SandboxPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}
	if ok, reason := virt.Run(0); !ok || reason != "guest-exit-pass" {
		log.Fatalf("virtualized boot failed: %v %q", ok, reason)
	}

	fmt.Println("console (native):")
	fmt.Println(native.Console())
	fmt.Println("console (virtualized):")
	fmt.Println(virt.Console())
	if native.Console() == virt.Console() {
		fmt.Println("guest-visible behaviour is identical — the firmware never noticed.")
	}
	st := virt.Stats()
	fmt.Printf("monitor work: %d firmware instructions emulated, %d world switches, %d fast-path hits\n",
		st.Emulations, st.WorldSwitches, st.FastPathHits)
	fmt.Printf("cycles: native=%d virtualized=%d (%.2f%% overhead)\n",
		native.Cycles(), virt.Cycles(),
		100*(float64(virt.Cycles())/float64(native.Cycles())-1))
}
