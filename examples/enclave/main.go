// Enclave: run a workload inside a Keystone enclave (the paper's §5.3
// policy), protected from both the OS and the untrusted vendor firmware,
// with timer preemption along the way.
package main

import (
	"fmt"
	"log"

	govfm "govfm"
)

func main() {
	const n = 40000 // the enclave computes sum(1..n), long enough to be preempted
	host, enclave, enclaveBase := govfm.KeystoneDemo(n, true)

	sys, err := govfm.New(govfm.Config{
		Harts:      1,
		Virtualize: true,
		Offload:    true,
		Policy:     govfm.KeystonePolicy(),
		Kernel:     host,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.LoadExtra(enclaveBase, enclave); err != nil {
		log.Fatal(err)
	}
	if ok, reason := sys.Run(0); !ok || reason != "guest-exit-pass" {
		log.Fatalf("run failed: %v %q", ok, reason)
	}

	read := func(i int) uint64 {
		v, _ := sys.ReadMem(govfm.DemoResultAddr + uint64(8*i))
		return v
	}
	fmt.Printf("enclave id:              %d\n", read(0))
	fmt.Printf("enclave result:          %d (want %d)\n", read(1), uint64(n)*(n+1)/2)
	fmt.Printf("timer preemptions:       %d\n", read(2))
	fmt.Printf("host read of enclave:    faulted=%v (isolation held)\n", read(3) == 1)
	fmt.Printf("destroy:                 rc=%d, memory scrubbed=%v\n", read(4), read(5) == 0)
}
