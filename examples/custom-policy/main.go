// Custom policy: author a new isolation policy against the monitor's
// policy-module interface (paper §5.1) — here an auditing policy that
// tallies the OS's SBI traffic per extension and vetoes attempts by the
// firmware to issue its own ecalls.
//
// Policies are compiled into the monitor (as in Miralis), so this example
// works at the internal/core level rather than the govfm facade.
package main

import (
	"fmt"
	"log"
	"sort"

	"govfm/internal/core"
	"govfm/internal/firmware"
	"govfm/internal/hart"
	"govfm/internal/kernel"
)

// auditPolicy counts OS SBI calls by extension and forbids firmware-
// originated ecalls entirely.
type auditPolicy struct {
	core.BasePolicy
	sbiCalls map[uint64]int
	fwEcalls int
}

func (p *auditPolicy) Name() string { return "audit" }

func (p *auditPolicy) OnOSEcall(c *core.HartCtx) core.Action {
	p.sbiCalls[c.Hart.Regs[17]]++ // a7: extension ID
	return core.ActDefault        // observe only; default handling proceeds
}

func (p *auditPolicy) OnFirmwareEcall(c *core.HartCtx) core.Action {
	p.fwEcalls++
	return core.ActBlock // this firmware has no business making ecalls
}

func main() {
	cfg := hart.VisionFive2()
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		log.Fatal(err)
	}
	fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
		OSEntry: core.OSBase, Harts: 1, FirmwareSize: core.FirmwareSize,
	})
	kern := kernel.BuildBoot(core.OSBase, kernel.BootOptions{
		Harts: 1, TimeReads: 20, TimerSets: 2, Misaligned: 4,
	})
	if err := m.LoadImage(core.FirmwareBase, fw.Bytes); err != nil {
		log.Fatal(err)
	}
	if err := m.LoadImage(core.OSBase, kern); err != nil {
		log.Fatal(err)
	}

	pol := &auditPolicy{sbiCalls: make(map[uint64]int)}
	mon, err := core.Attach(m, core.Options{
		Policy: pol, Offload: false, // no offload: the audit sees every call
		FirmwareEntry: core.FirmwareBase,
	})
	if err != nil {
		log.Fatal(err)
	}
	mon.Boot()
	m.Run(50_000_000)
	if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
		log.Fatalf("boot failed: %v %q", ok, reason)
	}

	fmt.Println("SBI calls observed by the audit policy:")
	exts := make([]uint64, 0, len(pol.sbiCalls))
	for e := range pol.sbiCalls {
		exts = append(exts, e)
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i] < exts[j] })
	for _, e := range exts {
		fmt.Printf("  ext %#x: %d calls\n", e, pol.sbiCalls[e])
	}
	fmt.Printf("firmware-originated ecalls blocked: %d\n", pol.fwEcalls)
}
