// CVM: run a confidential VM under the ACE policy (the paper's §5.4): the
// host promotes a memory region into a CVM, the guest shares one page back,
// and everything else stays dark to the host and the firmware alike.
package main

import (
	"fmt"
	"log"

	govfm "govfm"
)

func main() {
	host, guest, guestBase := govfm.ACEDemo()

	sys, err := govfm.New(govfm.Config{
		Platform:   govfm.PremierP550, // the H-extension platform
		Harts:      1,
		Virtualize: true,
		Offload:    true,
		Policy:     govfm.ACEPolicy(),
		Kernel:     host,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.LoadExtra(guestBase, guest); err != nil {
		log.Fatal(err)
	}
	if ok, reason := sys.Run(0); !ok || reason != "guest-exit-pass" {
		log.Fatalf("run failed: %v %q", ok, reason)
	}

	read := func(i int) uint64 {
		v, _ := sys.ReadMem(govfm.DemoResultAddr + uint64(8*i))
		return v
	}
	fmt.Printf("cvm id:                   %d\n", read(0))
	fmt.Printf("guest exit value:         %#x (want 0x600d)\n", read(1))
	fmt.Printf("shared page value:        %#x (want 0x9a9a9a)\n", read(2))
	fmt.Printf("host read of private mem: faulted=%v (confidentiality held)\n", read(3) == 1)
	fmt.Printf("destroy:                  rc=%d\n", read(4))
}
