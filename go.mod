module govfm

go 1.22
