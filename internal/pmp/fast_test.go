package pmp

import (
	"math/rand"
	"testing"

	"govfm/internal/mem"
	"govfm/internal/rv"
)

// randomFile fills a PMP file with a random mix of OFF/TOR/NA4/NAPOT
// entries, biased toward addresses that cluster so regions overlap and
// partial matches occur.
func randomFile(rng *rand.Rand, n int) *File {
	f := NewFile(n)
	for i := 0; i < n; i++ {
		var addr uint64
		switch rng.Intn(3) {
		case 0:
			addr = rng.Uint64() >> (rng.Intn(40) + 10)
		case 1:
			addr = uint64(rng.Intn(1 << 16))
		case 2:
			addr = 0x80000000>>2 + uint64(rng.Intn(64))
		}
		f.ForceAddr(i, addr)
		cfg := byte(rng.Intn(256))
		if rng.Intn(4) == 0 {
			cfg &^= CfgL // bias toward unlocked
		}
		f.ForceCfg(i, cfg)
	}
	return f
}

// TestCheckFastMatchesScan is the differential oracle for the flattened
// segment lookup: on random register files and random accesses, the fast
// path must agree with the architectural scan byte for byte.
func TestCheckFastMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	accs := []mem.AccessType{mem.Read, mem.Write, mem.Exec}
	modes := []rv.Mode{rv.ModeM, rv.ModeS, rv.ModeU}
	sizes := []int{1, 2, 4, 8}
	for trial := 0; trial < 400; trial++ {
		f := randomFile(rng, []int{0, 1, 4, 16, 64}[rng.Intn(5)])
		f.SetFast(true)
		for q := 0; q < 200; q++ {
			var addr uint64
			switch rng.Intn(4) {
			case 0:
				addr = rng.Uint64()
			case 1:
				addr = rng.Uint64() >> (rng.Intn(40) + 8) << 2
			case 2:
				// Land near a region boundary to stress partial matches.
				i := rng.Intn(f.n + 1)
				if i < f.n {
					if lo, last, ok := f.Region(i); ok {
						if rng.Intn(2) == 0 {
							addr = lo - uint64(rng.Intn(8))
						} else {
							addr = last - uint64(rng.Intn(8))
						}
					}
				}
			case 3:
				addr = ^uint64(0) - uint64(rng.Intn(16)) // wrap-around shapes
			}
			size := sizes[rng.Intn(len(sizes))]
			acc := accs[rng.Intn(len(accs))]
			mode := modes[rng.Intn(len(modes))]
			got := f.Check(addr, size, acc, mode)
			want := f.checkScan(addr, size, acc, mode)
			if got != want {
				t.Fatalf("trial %d: Check(addr=%#x size=%d acc=%v mode=%v) fast=%v scan=%v\ncfg=%v\naddr=%v",
					trial, addr, size, acc, mode, got, want, f.cfg[:f.n], f.addr[:f.n])
			}
		}
	}
}

// TestCheckFastAfterMutation verifies the segment table is invalidated by
// every mutator, including the lock-ignoring Force variants and Reset.
func TestCheckFastAfterMutation(t *testing.T) {
	f := NewFile(16)
	f.SetFast(true)
	f.ForceAddr(0, NAPOTAddr(0x80000000, 0x1000))
	f.ForceCfg(0, CfgR|CfgW|CfgX|ANapot<<3)
	if !f.Check(0x80000000, 8, mem.Read, rv.ModeS) {
		t.Fatal("expected allow inside NAPOT region")
	}
	// Revoke read permission; the cached segments must not be consulted
	// with stale permissions.
	f.ForceCfg(0, CfgW|CfgR&0|ANapot<<3)
	if f.Check(0x80000000, 8, mem.Read, rv.ModeS) {
		t.Fatal("stale allow after ForceCfg revoked read")
	}
	f.ForceAddr(0, NAPOTAddr(0x90000000, 0x1000))
	f.ForceCfg(0, CfgR|ANapot<<3)
	if f.Check(0x80000000, 8, mem.Read, rv.ModeS) {
		t.Fatal("stale region after ForceAddr move")
	}
	if !f.Check(0x90000000, 8, mem.Read, rv.ModeS) {
		t.Fatal("moved region not visible")
	}
	f.Reset()
	if f.Check(0x90000000, 8, mem.Read, rv.ModeS) {
		t.Fatal("stale match after Reset")
	}
}

// TestEpochAdvances checks that every mutator bumps the epoch so external
// caches keyed on it (the hart's software TLB) observe PMP reprogramming.
func TestEpochAdvances(t *testing.T) {
	f := NewFile(4)
	e := f.Epoch()
	step := func(name string, fn func()) {
		fn()
		if f.Epoch() <= e {
			t.Fatalf("%s did not advance epoch", name)
		}
		e = f.Epoch()
	}
	step("SetAddr", func() { f.SetAddr(0, 0x100) })
	step("SetCfg", func() { f.SetCfg(0, CfgR|ATor<<3) })
	step("ForceAddr", func() { f.ForceAddr(1, 0x200) })
	step("ForceCfg", func() { f.ForceCfg(1, CfgR|CfgW|ATor<<3) })
	step("SetCfgReg", func() { f.SetCfgReg(0, 0x0f0f) })
	step("Reset", func() { f.Reset() })
}

// BenchmarkCheck compares the scan and flattened lookups on a file shaped
// like the monitor's world-switch PMP programming (a few active regions).
func BenchmarkCheck(b *testing.B) {
	build := func(fast bool) *File {
		f := NewFile(16)
		f.ForceAddr(0, NAPOTAddr(0x80000000, 0x40000))
		f.ForceCfg(0, ANapot<<3) // deny firmware region to lower modes
		f.ForceAddr(1, NAPOTAddr(0x80000000, 0x8000000))
		f.ForceCfg(1, CfgR|CfgW|CfgX|ANapot<<3)
		f.ForceAddr(2, ^uint64(0))
		f.ForceCfg(2, CfgR|CfgW|ANapot<<3)
		f.SetFast(fast)
		return f
	}
	for _, cfg := range []struct {
		name string
		fast bool
	}{{"scan", false}, {"fast", true}} {
		f := build(cfg.fast)
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.Check(0x80100000+uint64(i%4096)*8, 8, mem.Read, rv.ModeS)
			}
		})
	}
}
