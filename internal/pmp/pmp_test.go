package pmp

import (
	"testing"
	"testing/quick"

	"govfm/internal/mem"
	"govfm/internal/rv"
)

func TestLegalizeCfg(t *testing.T) {
	cases := []struct{ in, want byte }{
		{CfgR | CfgW | CfgX, CfgR | CfgW | CfgX},
		{CfgW, 0},           // W=1,R=0 reserved -> W cleared
		{CfgW | CfgX, CfgX}, // same with X
		{CfgL | CfgW, CfgL}, // lock preserved, W cleared
		{0x60, 0},           // reserved bits cleared
		{0xFF, CfgL | ANapot<<3 | CfgR | CfgW | CfgX},
	}
	for _, c := range cases {
		if got := LegalizeCfg(c.in); got != c.want {
			t.Errorf("LegalizeCfg(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestNAPOTDecode(t *testing.T) {
	f := NewFile(8)
	// 4KiB region at 0x8000_0000.
	f.SetAddr(0, NAPOTAddr(0x8000_0000, 0x1000))
	f.SetCfg(0, CfgR|CfgW|ANapot<<3)
	lo, last, ok := f.Region(0)
	if !ok || lo != 0x8000_0000 || last != 0x8000_0FFF {
		t.Errorf("NAPOT region = [%#x,%#x] ok=%v", lo, last, ok)
	}
	// Smallest NAPOT region: 8 bytes.
	f.SetAddr(1, NAPOTAddr(0x1000, 8))
	f.SetCfg(1, CfgR|ANapot<<3)
	lo, last, ok = f.Region(1)
	if !ok || lo != 0x1000 || last != 0x1007 {
		t.Errorf("8-byte NAPOT = [%#x,%#x]", lo, last)
	}
	// All-ones address covers everything.
	f.SetAddr(2, rv.Mask(54))
	f.SetCfg(2, CfgR|ANapot<<3)
	lo, last, ok = f.Region(2)
	if !ok || lo != 0 || last != ^uint64(0) {
		t.Errorf("all-ones NAPOT = [%#x,%#x]", lo, last)
	}
}

func TestNAPOTAddrPanics(t *testing.T) {
	for _, c := range []struct{ base, size uint64 }{
		{0x1000, 4},  // too small
		{0x1000, 24}, // not a power of two
		{0x1004, 8},  // misaligned
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NAPOTAddr(%#x,%#x) must panic", c.base, c.size)
				}
			}()
			NAPOTAddr(c.base, c.size)
		}()
	}
}

func TestTORDecode(t *testing.T) {
	f := NewFile(8)
	f.SetAddr(0, 0x8000_0000>>2)
	f.SetAddr(1, 0x8800_0000>>2)
	f.SetCfg(1, CfgR|CfgX|ATor<<3)
	lo, last, ok := f.Region(1)
	if !ok || lo != 0x8000_0000 || last != 0x87FF_FFFF {
		t.Errorf("TOR region = [%#x,%#x]", lo, last)
	}
	// Entry 0 in TOR mode: base hardwired to 0.
	f.SetCfg(0, CfgR|ATor<<3)
	lo, last, ok = f.Region(0)
	if !ok || lo != 0 || last != 0x7FFF_FFFF {
		t.Errorf("TOR entry0 = [%#x,%#x]", lo, last)
	}
	// Empty TOR range (top <= base) never matches.
	f.SetAddr(2, 0x100)
	f.SetAddr(3, 0x100)
	f.SetCfg(3, CfgR|ATor<<3)
	if _, _, ok := f.Region(3); ok {
		t.Error("empty TOR range must not decode")
	}
}

func TestNA4Decode(t *testing.T) {
	f := NewFile(8)
	f.SetAddr(0, 0x2000>>2)
	f.SetCfg(0, CfgR|ANa4<<3)
	lo, last, ok := f.Region(0)
	if !ok || lo != 0x2000 || last != 0x2003 {
		t.Errorf("NA4 region = [%#x,%#x]", lo, last)
	}
}

func TestCheckPriority(t *testing.T) {
	f := NewFile(8)
	// Entry 0: deny RW on [0x1000, 0x2000) for S/U.
	f.SetAddr(0, NAPOTAddr(0x1000, 0x1000))
	f.SetCfg(0, ANapot<<3) // no permissions
	// Entry 1: allow all on [0, 0x4000_0000).
	f.SetAddr(1, NAPOTAddr(0, 0x4000_0000))
	f.SetCfg(1, CfgR|CfgW|CfgX|ANapot<<3)

	if f.Check(0x1800, 8, mem.Read, rv.ModeS) {
		t.Error("entry 0 must take priority and deny")
	}
	if !f.Check(0x2000, 8, mem.Read, rv.ModeS) {
		t.Error("entry 1 must allow outside entry 0")
	}
	// M-mode ignores unlocked entries.
	if !f.Check(0x1800, 8, mem.Write, rv.ModeM) {
		t.Error("unlocked entry must not constrain M-mode")
	}
}

func TestCheckLockedConstrainsM(t *testing.T) {
	f := NewFile(8)
	f.SetAddr(0, NAPOTAddr(0x8000_0000, 0x10000))
	f.SetCfg(0, CfgL|ANapot<<3) // locked, no permissions: Miralis-style self-protection
	if f.Check(0x8000_0100, 8, mem.Read, rv.ModeM) {
		t.Error("locked no-permission entry must deny M-mode reads")
	}
	if f.Check(0x8000_0100, 4, mem.Exec, rv.ModeM) {
		t.Error("locked no-permission entry must deny M-mode exec")
	}
	if !f.Check(0x8001_0000, 8, mem.Read, rv.ModeM) {
		t.Error("M-mode must still access outside the locked region")
	}
}

func TestCheckNoMatchDefaults(t *testing.T) {
	f := NewFile(8)
	if !f.Check(0x1234, 4, mem.Read, rv.ModeM) {
		t.Error("M-mode default allow")
	}
	if f.Check(0x1234, 4, mem.Read, rv.ModeS) {
		t.Error("S-mode with implemented entries and no match must deny")
	}
	if f.Check(0x1234, 4, mem.Exec, rv.ModeU) {
		t.Error("U-mode with implemented entries and no match must deny")
	}
	empty := NewFile(0)
	if !empty.Check(0x1234, 4, mem.Write, rv.ModeU) {
		t.Error("zero implemented entries must allow everything")
	}
}

func TestPartialMatchFaults(t *testing.T) {
	f := NewFile(8)
	f.SetAddr(0, NAPOTAddr(0x1000, 8))
	f.SetCfg(0, CfgR|CfgW|ANapot<<3)
	f.SetAddr(1, rv.Mask(54))
	f.SetCfg(1, CfgR|CfgW|CfgX|ANapot<<3)
	// 8-byte access straddling the end of entry 0 partially matches -> fault,
	// even in M-mode for locked entries; here unlocked so M passes through to
	// the PartialMatch rule. The spec says partial matches fail regardless of
	// privilege only when the entry applies; for unlocked entries M-mode is
	// not constrained... but priority matching happens first. We follow the
	// spec: partial match fails for modes the entry applies to.
	if f.Check(0x1004, 8, mem.Read, rv.ModeS) {
		t.Error("partial match must fault for S-mode")
	}
	if !f.Check(0x1000, 8, mem.Read, rv.ModeS) {
		t.Error("full match must pass")
	}
}

func TestLockSemantics(t *testing.T) {
	f := NewFile(8)
	f.SetAddr(0, 0x111)
	f.SetCfg(0, CfgL|CfgR|ANapot<<3)
	f.SetCfg(0, CfgR|CfgW|CfgX|ANapot<<3) // ignored: locked
	if f.Cfg(0) != CfgL|CfgR|ANapot<<3 {
		t.Errorf("locked cfg overwritten: %#x", f.Cfg(0))
	}
	f.SetAddr(0, 0x222) // ignored: locked
	if f.Addr(0) != 0x111 {
		t.Errorf("locked addr overwritten: %#x", f.Addr(0))
	}
	// TOR lock freezes the previous address register.
	g := NewFile(8)
	g.SetAddr(2, 0x333)
	g.SetCfg(3, CfgL|CfgR|ATor<<3)
	g.SetAddr(2, 0x444) // ignored: entry 3 is locked TOR
	if g.Addr(2) != 0x333 {
		t.Errorf("TOR-locked base overwritten: %#x", g.Addr(2))
	}
	// ForceCfg bypasses locks (reset path).
	f.ForceCfg(0, 0)
	if f.Cfg(0) != 0 {
		t.Error("ForceCfg must bypass locks")
	}
}

func TestCfgRegPacking(t *testing.T) {
	f := NewFile(16)
	for i := 0; i < 16; i++ {
		f.SetCfg(i, byte(CfgR|ANapot<<3))
	}
	want := uint64(0)
	for k := 0; k < 8; k++ {
		want |= uint64(CfgR|ANapot<<3) << (8 * k)
	}
	if f.CfgReg(0) != want || f.CfgReg(2) != want {
		t.Errorf("CfgReg packing: %#x / %#x", f.CfgReg(0), f.CfgReg(2))
	}
	f.SetCfgReg(0, 0)
	if f.CfgReg(0) != 0 {
		t.Error("SetCfgReg(0,0) must clear entries 0-7")
	}
	if f.CfgReg(2) != want {
		t.Error("SetCfgReg(0,..) must not touch entries 8-15")
	}
}

func TestUnimplementedEntriesReadZeroIgnoreWrites(t *testing.T) {
	f := NewFile(4)
	f.SetCfg(5, 0xFF)
	f.SetAddr(5, 0x123)
	if f.Cfg(5) != 0 || f.Addr(5) != 0 {
		t.Error("unimplemented entries must read zero")
	}
	if f.CfgReg(0)>>32 != 0 {
		t.Error("unimplemented cfg bytes must read zero in packed reg")
	}
}

func TestAddrWARLMask(t *testing.T) {
	f := NewFile(1)
	f.SetAddr(0, ^uint64(0))
	if f.Addr(0) != rv.Mask(54) {
		t.Errorf("pmpaddr must mask to 54 bits: %#x", f.Addr(0))
	}
}

func TestSnapshotAndReset(t *testing.T) {
	f := NewFile(4)
	f.SetCfg(1, CfgR|ANa4<<3)
	f.SetAddr(1, 0x99)
	cfg, addr := f.Snapshot()
	if len(cfg) != 4 || cfg[1] != CfgR|ANa4<<3 || addr[1] != 0x99 {
		t.Error("snapshot content wrong")
	}
	cfg[1] = 0 // must not alias
	if f.Cfg(1) == 0 {
		t.Error("snapshot must not alias internal state")
	}
	f.SetCfg(2, CfgL|CfgR)
	f.Reset()
	if f.Cfg(2) != 0 || f.Cfg(1) != 0 || f.Addr(1) != 0 {
		t.Error("reset must clear everything, including locked entries")
	}
}

// Property: the first matching entry fully determines the verdict — adding
// lower-priority entries after a full match never changes the outcome.
func TestPriorityProperty(t *testing.T) {
	f := func(addrSeed uint64, cfg0, cfg1 byte, acc8 uint8) bool {
		acc := mem.AccessType(acc8 % 3)
		pf := NewFile(2)
		pf.SetAddr(0, rv.Mask(54)) // entry 0 matches everything (NAPOT all)
		pf.SetCfg(0, WithAMode(cfg0, ANapot))
		got1 := pf.Check(addrSeed%(1<<40), 4, acc, rv.ModeS)
		pf.SetAddr(1, rv.Mask(54))
		pf.SetCfg(1, WithAMode(cfg1, ANapot))
		got2 := pf.Check(addrSeed%(1<<40), 4, acc, rv.ModeS)
		return got1 == got2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Check never allows an S/U access that a no-permission
// full-matching first entry denies.
func TestDenyFirstEntryProperty(t *testing.T) {
	f := func(off uint16, acc8 uint8) bool {
		acc := mem.AccessType(acc8 % 3)
		pf := NewFile(4)
		pf.SetAddr(0, NAPOTAddr(0x10000, 0x10000))
		pf.SetCfg(0, ANapot<<3)
		pf.SetAddr(1, rv.Mask(54))
		pf.SetCfg(1, CfgR|CfgW|CfgX|ANapot<<3)
		addr := 0x10000 + uint64(off)%0xFFF8
		return !pf.Check(addr, 4, acc, rv.ModeU)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTopOfAddressSpace regression: the final bytes of the address space
// must be matchable by an all-ones NAPOT entry (a wrap bug found by the
// faithful-execution differential tests).
func TestTopOfAddressSpace(t *testing.T) {
	f := NewFile(2)
	f.SetAddr(0, rv.Mask(54))
	f.SetCfg(0, CfgR|CfgW|CfgX|ANapot<<3)
	if !f.Check(^uint64(0)-7, 8, mem.Read, rv.ModeS) {
		t.Error("top-of-space access must match the all-ones entry")
	}
	if !f.Check(^uint64(0), 1, mem.Write, rv.ModeU) {
		t.Error("very last byte must match")
	}
}

func TestNewFilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFile(65) must panic")
		}
	}()
	NewFile(65)
}

// Epoch regression tests: the mutation epoch is host-cache bookkeeping and
// must be monotonic on a live file across resets and restores, while
// snapshot copies normalize it away so architectural comparisons stay
// bit-exact.

func TestEpochAdvanceIsMonotonic(t *testing.T) {
	f := NewFile(4)
	if f.Epoch() != 0 {
		t.Fatalf("fresh file epoch = %d", f.Epoch())
	}
	f.SetCfg(0, CfgR|ANapot<<3)
	f.SetAddr(0, 0x100)
	e := f.Epoch()
	if e == 0 {
		t.Fatal("mutations must advance the epoch")
	}
	f.AdvanceEpoch(e - 1) // rewind attempt is a no-op
	if f.Epoch() != e {
		t.Errorf("AdvanceEpoch rewound the epoch: %d -> %d", e, f.Epoch())
	}
	f.AdvanceEpoch(e + 10)
	if f.Epoch() != e+10 {
		t.Errorf("AdvanceEpoch(%d) left epoch %d", e+10, f.Epoch())
	}
	f.Reset()
	if f.Epoch() <= e+10 {
		t.Errorf("Reset must advance, not rewind, the epoch: %d", f.Epoch())
	}
}

func TestCloneSnapshotNormalizesEpoch(t *testing.T) {
	f := NewFile(4)
	f.SetCfg(0, CfgL|CfgR|ANapot<<3)
	f.SetAddr(1, 0x42) // note: SetAddr before a locked cfg on the same entry
	live := f.Epoch()
	if live == 0 {
		t.Fatal("expected nonzero live epoch")
	}
	s := f.CloneSnapshot()
	if s.Epoch() != 0 {
		t.Errorf("snapshot clone epoch = %d, want 0", s.Epoch())
	}
	if f.Epoch() != live {
		t.Errorf("CloneSnapshot mutated the source epoch: %d -> %d", live, f.Epoch())
	}
	// Architectural state is still a deep copy.
	if s.Cfg(0) != CfgL|CfgR|ANapot<<3 || s.Addr(1) != 0x42 {
		t.Error("snapshot clone lost architectural state")
	}
}

// TestCloneForkThenProbe is the fork-then-probe regression: Clone must
// carry lock bits, the epoch, and a coherent fast-path segment hint, and
// the clone's verdicts must be independent of later parent mutations.
func TestCloneForkThenProbe(t *testing.T) {
	f := NewFile(8)
	f.SetFast(true)
	// Entry 0: the monitor-style locked deny-all region.
	f.SetAddr(0, NAPOTAddr(0x8000_0000, 0x10_0000))
	f.SetCfg(0, CfgL|ANapot<<3)
	// Entry 1: an allow window.
	f.SetAddr(1, NAPOTAddr(0x9000_0000, 0x1000))
	f.SetCfg(1, CfgR|CfgW|ANapot<<3)
	// Entry 7: background allow-all.
	f.SetAddr(7, rv.Mask(54))
	f.SetCfg(7, CfgR|CfgW|CfgX|ANapot<<3)

	// Warm the fast path so lastSeg points at a high segment.
	if !f.Check(0x9000_0800, 8, mem.Read, rv.ModeS) {
		t.Fatal("warmup check failed")
	}
	epoch := f.Epoch()

	c := f.Clone()
	if c.Epoch() != epoch {
		t.Errorf("clone epoch = %d, want %d (fork preserves the epoch)", c.Epoch(), epoch)
	}
	if !c.Locked(0) || c.Cfg(0) != CfgL|ANapot<<3 {
		t.Errorf("clone lost the locked entry: cfg=%#x", c.Cfg(0))
	}

	// Mutate the parent: retarget the allow window and drop the background.
	f.SetAddr(1, NAPOTAddr(0xA000_0000, 0x1000))
	f.SetCfg(7, ANapot<<3)

	// The clone's verdicts must be the parent's pre-fork verdicts — probe
	// low addresses first so a stale shared lastSeg hint would be exposed.
	if c.Check(0x8000_0100, 8, mem.Read, rv.ModeM) {
		t.Error("clone must keep denying M-mode access to the locked region")
	}
	if !c.Check(0x9000_0800, 8, mem.Write, rv.ModeS) {
		t.Error("clone must keep the original allow window")
	}
	if !c.Check(0x1000, 8, mem.Exec, rv.ModeS) {
		t.Error("clone must keep the background allow-all")
	}
	if c.Epoch() != epoch {
		t.Errorf("probing mutated the clone epoch: %d", c.Epoch())
	}
	// And every clone verdict must agree with a scan-only file built from
	// the same architectural state (fast-path hint coherence).
	slow := c.Clone()
	slow.SetFast(false)
	for _, a := range []uint64{0x8000_0000, 0x8000_8000, 0x9000_0000, 0x9000_0FF8, 0x1000, 0xA000_0000} {
		for _, acc := range []mem.AccessType{mem.Read, mem.Write, mem.Exec} {
			for _, mode := range []rv.Mode{rv.ModeU, rv.ModeS, rv.ModeM} {
				if got, want := c.Check(a, 8, acc, mode), slow.Check(a, 8, acc, mode); got != want {
					t.Fatalf("fast/slow divergence at %#x %v %v: fast=%v scan=%v", a, acc, mode, got, want)
				}
			}
		}
	}
	// Locked entries survive in the parent too.
	if !f.Locked(0) {
		t.Error("parent lost its lock")
	}
}
