// Package pmp implements RISC-V Physical Memory Protection: decoding of
// pmpcfg/pmpaddr CSRs, address matching (TOR, NA4, NAPOT), lock semantics,
// WARL legalization of reserved permission combinations, and the access
// check used on every load, store, and fetch of the simulated machine.
//
// The same File type backs the machine's physical PMP (internal/hart) and
// Miralis's virtual PMP registers (internal/core); the reference model
// (internal/refmodel) implements its own independent check used as the
// verification oracle for "faithful execution".
package pmp

import (
	"fmt"
	"math/bits"

	"govfm/internal/mem"
	"govfm/internal/rv"
)

// MaxEntries is the architectural maximum number of PMP entries.
const MaxEntries = 64

// pmpcfg bit layout.
const (
	CfgR = 1 << 0
	CfgW = 1 << 1
	CfgX = 1 << 2
	CfgL = 1 << 7

	// A field (bits 4:3) values.
	AOff   = 0
	ATor   = 1
	ANa4   = 2
	ANapot = 3
)

// AMode extracts the address-matching mode from a cfg byte.
func AMode(cfg byte) byte { return cfg >> 3 & 3 }

// WithAMode returns cfg with the address-matching mode replaced.
func WithAMode(cfg, a byte) byte { return cfg&^0x18 | a<<3&0x18 }

// LegalizeCfg applies the WARL rules for a pmpcfg byte: bits 5 and 6 are
// hardwired to zero, and the reserved combination W=1,R=0 is legalized by
// clearing W (the combination is reserved unless Smepmp's rule-locking is
// active, which this machine does not implement). This is exactly the class
// of legalization in which the paper reports finding a bug (§6.5).
func LegalizeCfg(v byte) byte {
	v &^= 0x60 // reserved bits
	if v&CfgW != 0 && v&CfgR == 0 {
		v &^= CfgW
	}
	return v
}

// File is a set of PMP entries. The zero value has zero implemented
// entries, which performs no checking.
type File struct {
	n    int
	cfg  [MaxEntries]byte
	addr [MaxEntries]uint64

	// Decoded-region cache for the access-check hot path; rebuilt lazily
	// after any register write.
	regLo    [MaxEntries]uint64
	regLast  [MaxEntries]uint64
	regOK    [MaxEntries]bool
	regDirty bool

	// epoch counts register mutations. External caches that embed a
	// translation or permission decision derived from this file (the
	// hart's software TLB) tag their entries with the epoch at fill time
	// and treat any mismatch as a miss, which makes PMP reprogramming —
	// including the monitor's ForceCfg/ForceAddr world-switch writes —
	// an O(1) global invalidation with no explicit hook.
	epoch uint64

	// Flattened-range cache: the address space partitioned into segments
	// on which the "lowest-numbered matching entry" function is constant.
	// segBase[k] is the first address of segment k (segment k ends where
	// segment k+1 begins, the last one at the top of the address space);
	// segOwner[k] is the lowest-numbered entry covering that segment, or
	// -1 when none does. An access's verdict is decided by the minimum
	// owner over the segments it spans (see checkFast), replacing the
	// linear TOR/NAPOT scan with a binary search. All state lives in
	// fixed arrays so File copies (snapshot clone) stay self-contained.
	fast     bool
	segDirty bool
	nSeg     int
	lastSeg  int // hint: segment that resolved the previous check
	segBase  [2*MaxEntries + 2]uint64
	segOwner [2*MaxEntries + 2]int8

	// Perf counts access checks. Plain counters: Check runs on every
	// simulated access, single-goroutine per file, and metrics snapshots
	// read them between steps. Never consulted by the check itself.
	Perf struct {
		Checks   uint64 // total Check calls
		FastHits uint64 // resolved by the flattened-range lookup
	}
}

// NewFile returns a PMP file with n implemented entries (0..64).
func NewFile(n int) *File {
	if n < 0 || n > MaxEntries {
		panic(fmt.Sprintf("pmp: invalid entry count %d", n))
	}
	return &File{n: n, regDirty: true, segDirty: true}
}

// markDirty records a register mutation: both decode caches go stale and
// the epoch advances so external caches keyed on it miss.
func (f *File) markDirty() {
	f.regDirty = true
	f.segDirty = true
	f.epoch++
}

// Epoch returns the mutation counter. It increases on every cfg/addr
// write (locked-entry writes that hardware ignores may still bump it;
// spurious bumps only cost external caches a refill, never correctness).
func (f *File) Epoch() uint64 { return f.epoch }

// CloneSnapshot returns a deep copy with the mutation epoch cleared. The
// epoch is host-cache bookkeeping, not architectural state: two snapshots
// of the same architectural state must compare equal no matter when they
// were taken, and Restore re-derives a monotonic epoch on the live file
// (see AdvanceEpoch) rather than trusting a snapshot-time value.
func (f *File) CloneSnapshot() *File {
	c := *f
	c.epoch = 0
	return &c
}

// AdvanceEpoch raises the mutation counter to at least e. Machine reset
// and snapshot restore replace or rewind a hart's PMP file; carrying the
// epoch forward through those events keeps it monotonic per hart, so an
// external cache entry tagged with an epoch value can never be
// re-validated by a different (reset or restored) file that happens to
// reuse the number. Raising the counter never invalidates anything
// incorrectly — a mismatch is always just a refill.
func (f *File) AdvanceEpoch(e uint64) {
	if f.epoch < e {
		f.epoch = e
	}
}

// SetFast selects the flattened-range lookup (true) or the architectural
// linear scan (false) for Check. Both produce identical verdicts — the
// fastpath-equivalence fuzz gate runs them against each other — so this
// only trades host time.
func (f *File) SetFast(on bool) { f.fast = on }

// FastEnabled reports whether the flattened-range lookup is in use.
func (f *File) FastEnabled() bool { return f.fast }

// NumEntries returns the number of implemented entries.
func (f *File) NumEntries() int { return f.n }

// Cfg returns the cfg byte of entry i (zero for unimplemented entries).
func (f *File) Cfg(i int) byte {
	if i < 0 || i >= f.n {
		return 0
	}
	return f.cfg[i]
}

// Addr returns the pmpaddr value of entry i (zero for unimplemented).
func (f *File) Addr(i int) uint64 {
	if i < 0 || i >= f.n {
		return 0
	}
	return f.addr[i]
}

// Locked reports whether entry i is locked (L bit set).
func (f *File) Locked(i int) bool { return f.Cfg(i)&CfgL != 0 }

// SetCfg writes the cfg byte of entry i, honouring lock bits and WARL
// legalization. Writes to locked or unimplemented entries are ignored, as
// on hardware.
func (f *File) SetCfg(i int, v byte) {
	if i < 0 || i >= f.n || f.Locked(i) {
		return
	}
	f.cfg[i] = LegalizeCfg(v)
	f.markDirty()
}

// ForceCfg writes entry i's cfg ignoring locks; this models machine reset
// and is used by the monitor, never by guest-visible CSR writes.
func (f *File) ForceCfg(i int, v byte) {
	if i < 0 || i >= f.n {
		return
	}
	f.cfg[i] = LegalizeCfg(v)
	f.markDirty()
}

// SetAddr writes pmpaddr[i]. The write is ignored if entry i is locked, or
// if entry i+1 is locked in TOR mode (which freezes its base address).
// pmpaddr registers hold bits 55:2 of the address; higher bits are WARL
// zero.
func (f *File) SetAddr(i int, v uint64) {
	if i < 0 || i >= f.n || f.Locked(i) {
		return
	}
	if i+1 < f.n && f.Locked(i+1) && AMode(f.cfg[i+1]) == ATor {
		return
	}
	f.addr[i] = v & rv.Mask(54)
	f.markDirty()
}

// ForceAddr writes pmpaddr[i] ignoring locks (monitor/reset use only).
func (f *File) ForceAddr(i int, v uint64) {
	if i < 0 || i >= f.n {
		return
	}
	f.addr[i] = v & rv.Mask(54)
	f.markDirty()
}

// CfgReg reads the packed pmpcfg register (reg must be even on RV64):
// pmpcfg0 packs entries 0-7, pmpcfg2 packs 8-15, etc.
func (f *File) CfgReg(reg int) uint64 {
	var v uint64
	for k := 0; k < 8; k++ {
		v |= uint64(f.Cfg(reg*4+k)) << (8 * k)
	}
	return v
}

// SetCfgReg writes the packed pmpcfg register, byte by byte, applying
// per-entry lock and WARL rules.
func (f *File) SetCfgReg(reg int, v uint64) {
	for k := 0; k < 8; k++ {
		f.SetCfg(reg*4+k, byte(v>>(8*k)))
	}
}

// Region decodes entry i into the inclusive physical range [lo, last].
// ok is false when the entry is OFF or decodes to an empty range. The
// inclusive representation lets an all-ones NAPOT entry cover the very
// top of the address space without overflow.
func (f *File) Region(i int) (lo, last uint64, ok bool) {
	return decodeRegion(f.Cfg(i), f.Addr(i), f.prevAddr(i))
}

func (f *File) prevAddr(i int) uint64 {
	if i == 0 {
		return 0 // TOR base for entry 0 is hardwired to address 0
	}
	return f.Addr(i - 1)
}

func decodeRegion(cfg byte, addr, prevAddr uint64) (lo, last uint64, ok bool) {
	switch AMode(cfg) {
	case AOff:
		return 0, 0, false
	case ATor:
		lo, top := prevAddr<<2, addr<<2
		if lo >= top {
			return 0, 0, false
		}
		return lo, top - 1, true
	case ANa4:
		lo = addr << 2
		return lo, lo + 3, true
	case ANapot:
		ones := bits.TrailingZeros64(^addr)
		if ones >= 54 {
			// All-ones pmpaddr covers the whole address space.
			return 0, ^uint64(0), true
		}
		size := uint64(8) << uint(ones)
		lo = (addr &^ rv.Mask(uint(ones))) << 2
		return lo, lo + size - 1, true
	}
	return 0, 0, false
}

// MatchResult describes how an access relates to a single PMP entry.
type MatchResult int

const (
	NoMatch      MatchResult = iota // no byte of the access matches
	FullMatch                       // every byte matches
	PartialMatch                    // some but not all bytes match — always faults
)

// refreshRegions rebuilds the decoded-region cache.
func (f *File) refreshRegions() {
	for i := 0; i < f.n; i++ {
		f.regLo[i], f.regLast[i], f.regOK[i] = f.Region(i)
	}
	f.regDirty = false
}

// matchEntry classifies an access of size bytes at addr against entry i.
func (f *File) matchEntry(i int, addr uint64, size int) MatchResult {
	if f.regDirty {
		f.refreshRegions()
	}
	lo, last, ok := f.regLo[i], f.regLast[i], f.regOK[i]
	if !ok {
		return NoMatch
	}
	aLast := addr + uint64(size) - 1
	if aLast < addr {
		// The access itself wraps the address space: nothing sane matches
		// fully, so any overlap is a faulting partial match.
		if addr > last {
			return NoMatch
		}
		return PartialMatch
	}
	if aLast < lo || addr > last {
		return NoMatch
	}
	if addr >= lo && aLast <= last {
		return FullMatch
	}
	return PartialMatch
}

// Check performs the architectural PMP check for an access of size bytes at
// physical address addr, performed in the given privilege mode. It returns
// true when the access is allowed.
//
// Rules (privileged spec §3.7):
//   - entries are searched in priority order; the lowest-numbered matching
//     entry determines the result;
//   - a partial match always fails;
//   - a matching unlocked entry does not constrain M-mode;
//   - a matching locked entry constrains all modes, including M;
//   - if no entry matches: M-mode succeeds, S/U fail when at least one
//     entry is implemented.
func (f *File) Check(addr uint64, size int, acc mem.AccessType, mode rv.Mode) bool {
	f.Perf.Checks++
	if f.fast {
		if allowed, ok := f.checkFast(addr, size, acc, mode); ok {
			f.Perf.FastHits++
			return allowed
		}
	}
	return f.checkScan(addr, size, acc, mode)
}

// checkScan is the architectural priority scan over all entries; it is the
// reference Check implementation and the fallback for the rare access
// shapes checkFast declines (wrap-around).
func (f *File) checkScan(addr uint64, size int, acc mem.AccessType, mode rv.Mode) bool {
	for i := 0; i < f.n; i++ {
		switch f.matchEntry(i, addr, size) {
		case NoMatch:
			continue
		case PartialMatch:
			return false
		case FullMatch:
			cfg := f.cfg[i]
			if mode == rv.ModeM && cfg&CfgL == 0 {
				return true
			}
			switch acc {
			case mem.Read:
				return cfg&CfgR != 0
			case mem.Write:
				return cfg&CfgW != 0
			case mem.Exec:
				return cfg&CfgX != 0
			}
			return false
		}
	}
	if mode == rv.ModeM {
		return true
	}
	return f.n == 0
}

// rebuildSegs flattens the decoded regions into the sorted segment table.
// Boundary points are each region's first address and the address just past
// its last (omitted when the region reaches the top of the address space),
// plus 0; the owner of each resulting segment is the lowest-numbered entry
// covering it. With n ≤ 64 entries the point set is tiny, so a simple
// insertion sort avoids any allocation.
func (f *File) rebuildSegs() {
	if f.regDirty {
		f.refreshRegions()
	}
	var pts [2*MaxEntries + 2]uint64
	np := 1 // pts[0] = 0
	for i := 0; i < f.n; i++ {
		if !f.regOK[i] {
			continue
		}
		pts[np] = f.regLo[i]
		np++
		if f.regLast[i] != ^uint64(0) {
			pts[np] = f.regLast[i] + 1
			np++
		}
	}
	for i := 1; i < np; i++ {
		v := pts[i]
		j := i - 1
		for j >= 0 && pts[j] > v {
			pts[j+1] = pts[j]
			j--
		}
		pts[j+1] = v
	}
	f.nSeg = 0
	for k := 0; k < np; k++ {
		if k > 0 && pts[k] == pts[k-1] {
			continue
		}
		s := pts[k]
		owner := int8(-1)
		for i := 0; i < f.n; i++ {
			if f.regOK[i] && f.regLo[i] <= s && s <= f.regLast[i] {
				owner = int8(i)
				break
			}
		}
		f.segBase[f.nSeg] = s
		f.segOwner[f.nSeg] = owner
		f.nSeg++
	}
	f.lastSeg = 0
	f.segDirty = false
}

// checkFast resolves the access via the flattened segment table. It returns
// ok=false when it cannot decide (the access wraps the address space), in
// which case the caller falls back to the architectural scan.
//
// The matching entry, per the spec, is the lowest-numbered entry covering
// any byte of the access. Since each segment's owner is the lowest-numbered
// entry covering that segment, that matching entry is exactly the minimum
// owner over the segments the access spans (min over bytes of min over
// entries = min over the per-segment minima). Partial match is then a
// simple containment test of the access against that entry's region.
func (f *File) checkFast(addr uint64, size int, acc mem.AccessType, mode rv.Mode) (allowed, ok bool) {
	aLast := addr + uint64(size) - 1
	if aLast < addr {
		return false, false // wrap-around: let the scan handle it
	}
	if f.segDirty {
		f.rebuildSegs()
	}
	// Find the segment containing addr: greatest k with segBase[k] <= addr
	// (segment 0 starts at 0, so k is well-defined). Consecutive checks
	// overwhelmingly land in the segment that answered the last one — the
	// straight-line fetch stream, a superblock's data accesses — so a
	// one-entry hint short-circuits the binary search.
	lo := f.lastSeg
	if lo >= f.nSeg || f.segBase[lo] > addr ||
		(lo+1 < f.nSeg && f.segBase[lo+1] <= addr) {
		hi := f.nSeg - 1
		lo = 0
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if f.segBase[mid] <= addr {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		f.lastSeg = lo
	}
	m := -1 // lowest-numbered entry covering any byte of the access
	for k := lo; k < f.nSeg && f.segBase[k] <= aLast; k++ {
		if o := int(f.segOwner[k]); o >= 0 && (m < 0 || o < m) {
			m = o
		}
	}
	if m < 0 {
		if mode == rv.ModeM {
			return true, true
		}
		return f.n == 0, true
	}
	if addr < f.regLo[m] || aLast > f.regLast[m] {
		return false, true // partial match always faults
	}
	cfg := f.cfg[m]
	if mode == rv.ModeM && cfg&CfgL == 0 {
		return true, true
	}
	switch acc {
	case mem.Read:
		return cfg&CfgR != 0, true
	case mem.Write:
		return cfg&CfgW != 0, true
	case mem.Exec:
		return cfg&CfgX != 0, true
	}
	return false, true
}

// NAPOTAddr encodes the pmpaddr value covering the naturally aligned
// power-of-two region [base, base+size). It panics if base/size do not
// form a valid NAPOT region of at least 8 bytes.
func NAPOTAddr(base, size uint64) uint64 {
	if size < 8 || size&(size-1) != 0 || base&(size-1) != 0 {
		panic(fmt.Sprintf("pmp: invalid NAPOT region base=%#x size=%#x", base, size))
	}
	return base>>2 | (size/8 - 1)
}

// Snapshot copies all implemented entries into caller-owned slices, in
// entry order. Used for tracing and world-switch bookkeeping.
func (f *File) Snapshot() (cfg []byte, addr []uint64) {
	cfg = make([]byte, f.n)
	addr = make([]uint64, f.n)
	copy(cfg, f.cfg[:f.n])
	copy(addr, f.addr[:f.n])
	return cfg, addr
}

// Clone returns an independent copy of the file: entries (locked ones
// included), lock state, and every derived cache. All File state lives in
// fixed arrays, so a value copy is self-contained; cloned files diverge
// freely afterwards. Monitor forks use this to duplicate virtual PMP and
// protection files onto a child machine.
func (f *File) Clone() *File {
	c := *f
	return &c
}

// Reset clears all entries, including locked ones (power-on reset).
func (f *File) Reset() {
	f.cfg = [MaxEntries]byte{}
	f.addr = [MaxEntries]uint64{}
	f.markDirty()
}
