// Package pmp implements RISC-V Physical Memory Protection: decoding of
// pmpcfg/pmpaddr CSRs, address matching (TOR, NA4, NAPOT), lock semantics,
// WARL legalization of reserved permission combinations, and the access
// check used on every load, store, and fetch of the simulated machine.
//
// The same File type backs the machine's physical PMP (internal/hart) and
// Miralis's virtual PMP registers (internal/core); the reference model
// (internal/refmodel) implements its own independent check used as the
// verification oracle for "faithful execution".
package pmp

import (
	"fmt"
	"math/bits"

	"govfm/internal/mem"
	"govfm/internal/rv"
)

// MaxEntries is the architectural maximum number of PMP entries.
const MaxEntries = 64

// pmpcfg bit layout.
const (
	CfgR = 1 << 0
	CfgW = 1 << 1
	CfgX = 1 << 2
	CfgL = 1 << 7

	// A field (bits 4:3) values.
	AOff   = 0
	ATor   = 1
	ANa4   = 2
	ANapot = 3
)

// AMode extracts the address-matching mode from a cfg byte.
func AMode(cfg byte) byte { return cfg >> 3 & 3 }

// WithAMode returns cfg with the address-matching mode replaced.
func WithAMode(cfg, a byte) byte { return cfg&^0x18 | a<<3&0x18 }

// LegalizeCfg applies the WARL rules for a pmpcfg byte: bits 5 and 6 are
// hardwired to zero, and the reserved combination W=1,R=0 is legalized by
// clearing W (the combination is reserved unless Smepmp's rule-locking is
// active, which this machine does not implement). This is exactly the class
// of legalization in which the paper reports finding a bug (§6.5).
func LegalizeCfg(v byte) byte {
	v &^= 0x60 // reserved bits
	if v&CfgW != 0 && v&CfgR == 0 {
		v &^= CfgW
	}
	return v
}

// File is a set of PMP entries. The zero value has zero implemented
// entries, which performs no checking.
type File struct {
	n    int
	cfg  [MaxEntries]byte
	addr [MaxEntries]uint64

	// Decoded-region cache for the access-check hot path; rebuilt lazily
	// after any register write.
	regLo    [MaxEntries]uint64
	regLast  [MaxEntries]uint64
	regOK    [MaxEntries]bool
	regDirty bool
}

// NewFile returns a PMP file with n implemented entries (0..64).
func NewFile(n int) *File {
	if n < 0 || n > MaxEntries {
		panic(fmt.Sprintf("pmp: invalid entry count %d", n))
	}
	return &File{n: n, regDirty: true}
}

// NumEntries returns the number of implemented entries.
func (f *File) NumEntries() int { return f.n }

// Cfg returns the cfg byte of entry i (zero for unimplemented entries).
func (f *File) Cfg(i int) byte {
	if i < 0 || i >= f.n {
		return 0
	}
	return f.cfg[i]
}

// Addr returns the pmpaddr value of entry i (zero for unimplemented).
func (f *File) Addr(i int) uint64 {
	if i < 0 || i >= f.n {
		return 0
	}
	return f.addr[i]
}

// Locked reports whether entry i is locked (L bit set).
func (f *File) Locked(i int) bool { return f.Cfg(i)&CfgL != 0 }

// SetCfg writes the cfg byte of entry i, honouring lock bits and WARL
// legalization. Writes to locked or unimplemented entries are ignored, as
// on hardware.
func (f *File) SetCfg(i int, v byte) {
	if i < 0 || i >= f.n || f.Locked(i) {
		return
	}
	f.cfg[i] = LegalizeCfg(v)
	f.regDirty = true
}

// ForceCfg writes entry i's cfg ignoring locks; this models machine reset
// and is used by the monitor, never by guest-visible CSR writes.
func (f *File) ForceCfg(i int, v byte) {
	if i < 0 || i >= f.n {
		return
	}
	f.cfg[i] = LegalizeCfg(v)
	f.regDirty = true
}

// SetAddr writes pmpaddr[i]. The write is ignored if entry i is locked, or
// if entry i+1 is locked in TOR mode (which freezes its base address).
// pmpaddr registers hold bits 55:2 of the address; higher bits are WARL
// zero.
func (f *File) SetAddr(i int, v uint64) {
	if i < 0 || i >= f.n || f.Locked(i) {
		return
	}
	if i+1 < f.n && f.Locked(i+1) && AMode(f.cfg[i+1]) == ATor {
		return
	}
	f.addr[i] = v & rv.Mask(54)
	f.regDirty = true
}

// ForceAddr writes pmpaddr[i] ignoring locks (monitor/reset use only).
func (f *File) ForceAddr(i int, v uint64) {
	if i < 0 || i >= f.n {
		return
	}
	f.addr[i] = v & rv.Mask(54)
	f.regDirty = true
}

// CfgReg reads the packed pmpcfg register (reg must be even on RV64):
// pmpcfg0 packs entries 0-7, pmpcfg2 packs 8-15, etc.
func (f *File) CfgReg(reg int) uint64 {
	var v uint64
	for k := 0; k < 8; k++ {
		v |= uint64(f.Cfg(reg*4+k)) << (8 * k)
	}
	return v
}

// SetCfgReg writes the packed pmpcfg register, byte by byte, applying
// per-entry lock and WARL rules.
func (f *File) SetCfgReg(reg int, v uint64) {
	for k := 0; k < 8; k++ {
		f.SetCfg(reg*4+k, byte(v>>(8*k)))
	}
}

// Region decodes entry i into the inclusive physical range [lo, last].
// ok is false when the entry is OFF or decodes to an empty range. The
// inclusive representation lets an all-ones NAPOT entry cover the very
// top of the address space without overflow.
func (f *File) Region(i int) (lo, last uint64, ok bool) {
	return decodeRegion(f.Cfg(i), f.Addr(i), f.prevAddr(i))
}

func (f *File) prevAddr(i int) uint64 {
	if i == 0 {
		return 0 // TOR base for entry 0 is hardwired to address 0
	}
	return f.Addr(i - 1)
}

func decodeRegion(cfg byte, addr, prevAddr uint64) (lo, last uint64, ok bool) {
	switch AMode(cfg) {
	case AOff:
		return 0, 0, false
	case ATor:
		lo, top := prevAddr<<2, addr<<2
		if lo >= top {
			return 0, 0, false
		}
		return lo, top - 1, true
	case ANa4:
		lo = addr << 2
		return lo, lo + 3, true
	case ANapot:
		ones := bits.TrailingZeros64(^addr)
		if ones >= 54 {
			// All-ones pmpaddr covers the whole address space.
			return 0, ^uint64(0), true
		}
		size := uint64(8) << uint(ones)
		lo = (addr &^ rv.Mask(uint(ones))) << 2
		return lo, lo + size - 1, true
	}
	return 0, 0, false
}

// MatchResult describes how an access relates to a single PMP entry.
type MatchResult int

const (
	NoMatch      MatchResult = iota // no byte of the access matches
	FullMatch                       // every byte matches
	PartialMatch                    // some but not all bytes match — always faults
)

// refreshRegions rebuilds the decoded-region cache.
func (f *File) refreshRegions() {
	for i := 0; i < f.n; i++ {
		f.regLo[i], f.regLast[i], f.regOK[i] = f.Region(i)
	}
	f.regDirty = false
}

// matchEntry classifies an access of size bytes at addr against entry i.
func (f *File) matchEntry(i int, addr uint64, size int) MatchResult {
	if f.regDirty {
		f.refreshRegions()
	}
	lo, last, ok := f.regLo[i], f.regLast[i], f.regOK[i]
	if !ok {
		return NoMatch
	}
	aLast := addr + uint64(size) - 1
	if aLast < addr {
		// The access itself wraps the address space: nothing sane matches
		// fully, so any overlap is a faulting partial match.
		if addr > last {
			return NoMatch
		}
		return PartialMatch
	}
	if aLast < lo || addr > last {
		return NoMatch
	}
	if addr >= lo && aLast <= last {
		return FullMatch
	}
	return PartialMatch
}

// Check performs the architectural PMP check for an access of size bytes at
// physical address addr, performed in the given privilege mode. It returns
// true when the access is allowed.
//
// Rules (privileged spec §3.7):
//   - entries are searched in priority order; the lowest-numbered matching
//     entry determines the result;
//   - a partial match always fails;
//   - a matching unlocked entry does not constrain M-mode;
//   - a matching locked entry constrains all modes, including M;
//   - if no entry matches: M-mode succeeds, S/U fail when at least one
//     entry is implemented.
func (f *File) Check(addr uint64, size int, acc mem.AccessType, mode rv.Mode) bool {
	for i := 0; i < f.n; i++ {
		switch f.matchEntry(i, addr, size) {
		case NoMatch:
			continue
		case PartialMatch:
			return false
		case FullMatch:
			cfg := f.cfg[i]
			if mode == rv.ModeM && cfg&CfgL == 0 {
				return true
			}
			switch acc {
			case mem.Read:
				return cfg&CfgR != 0
			case mem.Write:
				return cfg&CfgW != 0
			case mem.Exec:
				return cfg&CfgX != 0
			}
			return false
		}
	}
	if mode == rv.ModeM {
		return true
	}
	return f.n == 0
}

// NAPOTAddr encodes the pmpaddr value covering the naturally aligned
// power-of-two region [base, base+size). It panics if base/size do not
// form a valid NAPOT region of at least 8 bytes.
func NAPOTAddr(base, size uint64) uint64 {
	if size < 8 || size&(size-1) != 0 || base&(size-1) != 0 {
		panic(fmt.Sprintf("pmp: invalid NAPOT region base=%#x size=%#x", base, size))
	}
	return base>>2 | (size/8 - 1)
}

// Snapshot copies all implemented entries into caller-owned slices, in
// entry order. Used for tracing and world-switch bookkeeping.
func (f *File) Snapshot() (cfg []byte, addr []uint64) {
	cfg = make([]byte, f.n)
	addr = make([]uint64, f.n)
	copy(cfg, f.cfg[:f.n])
	copy(addr, f.addr[:f.n])
	return cfg, addr
}

// Reset clears all entries, including locked ones (power-on reset).
func (f *File) Reset() {
	f.cfg = [MaxEntries]byte{}
	f.addr = [MaxEntries]uint64{}
	f.regDirty = true
}
