package pmp_test

// Differential fuzzing of the PMP access check against the reference
// model's independent implementation (internal/refmodel/pmp.go). The two
// were written from the spec separately — pmp.File with a decoded-region
// cache for the simulator hot path, refmodel.PMPCheck mirroring the Sail
// pmpCheck — so any disagreement is a real bug in one of them.

import (
	"encoding/binary"
	"flag"
	"math/rand"
	"testing"

	"govfm/internal/mem"
	"govfm/internal/pmp"
	"govfm/internal/refmodel"
	"govfm/internal/rv"
)

// -seed reseeds the randomized comparison; failures print the seed.
var seedFlag = flag.Int64("seed", 1, "seed for randomized PMP model comparison")

const fuzzEntries = 8

// pmpInputLen is the byte budget one fuzz input consumes: 9 bytes per
// entry (cfg + addr) plus 8 probe addresses.
const pmpInputLen = fuzzEntries*9 + 8*8

var pmpAccs = []struct {
	m mem.AccessType
	r int
}{
	{mem.Read, refmodel.AccRead},
	{mem.Write, refmodel.AccWrite},
	{mem.Exec, refmodel.AccExec},
}

var pmpModes = []struct {
	m rv.Mode
	r uint8
}{
	{rv.ModeU, refmodel.U},
	{rv.ModeS, refmodel.S},
	{rv.ModeM, refmodel.M},
}

// checkPMPAgainstModel installs fuzz-chosen entries into both
// implementations and compares every (probe, width, access, privilege)
// verdict.
func checkPMPAgainstModel(t *testing.T, data []byte) {
	t.Helper()
	if len(data) < pmpInputLen {
		return // not enough material; skip rather than invent structure
	}
	f := pmp.NewFile(fuzzEntries)
	c := &refmodel.Config{PMPCount: fuzzEntries}
	s := &refmodel.State{}
	for i := 0; i < fuzzEntries; i++ {
		f.ForceCfg(i, data[i*9])
		f.ForceAddr(i, binary.LittleEndian.Uint64(data[i*9+1:]))
		// The model holds the registers as installed (post-WARL), exactly
		// as the lockstep engine snapshots them from a live hart.
		s.PmpCfg[i] = f.Cfg(i)
		s.PmpAddr[i] = f.Addr(i)
	}

	probes := make([]uint64, 0, 8+4*fuzzEntries)
	for i := 0; i < 8; i++ {
		probes = append(probes, binary.LittleEndian.Uint64(data[fuzzEntries*9+i*8:]))
	}
	// Region boundaries are where off-by-one bugs live: probe just
	// outside, first and last byte of every decoded region.
	for i := 0; i < fuzzEntries; i++ {
		if lo, last, ok := f.Region(i); ok {
			probes = append(probes, lo-1, lo, last, last+1)
		}
	}

	for _, pa := range probes {
		for _, w := range []int{1, 2, 4, 8} {
			for _, acc := range pmpAccs {
				for _, mode := range pmpModes {
					got := f.Check(pa, w, acc.m, mode.m)
					want := refmodel.PMPCheck(c, s, pa, w, acc.r, mode.r)
					if got != want {
						t.Fatalf("pmp.Check(%#x, %d, %v, %v) = %v, model says %v\ncfg=%v addr=%x",
							pa, w, acc.m, mode.m, got, want, s.PmpCfg[:fuzzEntries], s.PmpAddr[:fuzzEntries])
					}
				}
			}
		}
	}
}

func FuzzPMPCheck(f *testing.F) {
	f.Add(make([]byte, pmpInputLen))
	// One NAPOT entry over low RAM plus a TOR pair.
	seed := make([]byte, pmpInputLen)
	seed[0] = pmp.CfgR | pmp.CfgW | pmp.ANapot<<3
	binary.LittleEndian.PutUint64(seed[1:], pmp.NAPOTAddr(0x8000_0000, 0x10000))
	seed[9] = pmp.CfgX | pmp.ATor<<3 | pmp.CfgL
	binary.LittleEndian.PutUint64(seed[10:], 0x8010_0000>>2)
	binary.LittleEndian.PutUint64(seed[fuzzEntries*9:], 0x8000_0420)
	f.Add(seed)
	f.Fuzz(checkPMPAgainstModel)
}

// TestPMPCheckAgainstModel exercises the same differential property for a
// fixed number of random inputs on every ordinary `go test` run, so the
// comparison doesn't rely on anyone invoking -fuzz.
func TestPMPCheckAgainstModel(t *testing.T) {
	iters := 2000
	if testing.Short() {
		iters = 300
	}
	rng := rand.New(rand.NewSource(*seedFlag))
	data := make([]byte, pmpInputLen)
	for n := 0; n < iters; n++ {
		rng.Read(data)
		// Bias the A-field and addresses toward meaningful regions: raw
		// random bytes leave most entries OFF and most probes unmatched.
		for i := 0; i < fuzzEntries; i++ {
			if rng.Intn(2) == 0 {
				data[i*9] = byte(rng.Intn(32)) | byte(rng.Intn(4))<<3
			}
			if rng.Intn(2) == 0 {
				addr := 0x8000_0000>>2 + uint64(rng.Intn(1<<20))
				binary.LittleEndian.PutUint64(data[i*9+1:], addr)
			}
		}
		for i := 0; i < 8; i++ {
			if rng.Intn(2) == 0 {
				pa := 0x8000_0000 + uint64(rng.Intn(1<<22))
				binary.LittleEndian.PutUint64(data[fuzzEntries*9+i*8:], pa)
			}
		}
		checkPMPAgainstModel(t, data)
		if t.Failed() {
			t.Fatalf("failing input found at iteration %d (seed %d)", n, *seedFlag)
		}
	}
}
