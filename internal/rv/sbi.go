package rv

// SBI extension IDs (a7 on ecall) from the RISC-V SBI specification. These
// are used by the synthetic firmware, the guest kernels, Miralis's fast-path
// offload, and the sandbox policy's per-call register allow-list.
const (
	SBIExtBase   uint64 = 0x10
	SBIExtTimer  uint64 = 0x54494D45 // "TIME"
	SBIExtIPI    uint64 = 0x735049   // "sPI"
	SBIExtRfence uint64 = 0x52464E43 // "RFNC"
	SBIExtHSM    uint64 = 0x48534D   // "HSM"
	SBIExtReset  uint64 = 0x53525354 // "SRST"
	SBIExtDebug  uint64 = 0x4442434E // "DBCN" debug console

	// Legacy extensions (single-function, EID == function).
	SBILegacySetTimer     uint64 = 0x00
	SBILegacyConsolePut   uint64 = 0x01
	SBILegacyConsoleGet   uint64 = 0x02
	SBILegacyClearIPI     uint64 = 0x03
	SBILegacySendIPI      uint64 = 0x04
	SBILegacyRemoteFenceI uint64 = 0x05
	SBILegacySfenceVMA    uint64 = 0x06
	SBILegacyShutdown     uint64 = 0x08

	// Vendor-specific experimental space used by the Keystone policy, same
	// EID as the original Keystone security monitor.
	SBIExtKeystone uint64 = 0x08424b45
	// ACE's COVE-style extension IDs.
	SBIExtCoveHost  uint64 = 0x434F5648 // "COVH"
	SBIExtCoveGuest uint64 = 0x434F5647 // "COVG"
)

// SBI base-extension function IDs (a6).
const (
	SBIBaseGetSpecVersion uint64 = 0
	SBIBaseGetImplID      uint64 = 1
	SBIBaseGetImplVersion uint64 = 2
	SBIBaseProbeExt       uint64 = 3
	SBIBaseGetMvendorid   uint64 = 4
	SBIBaseGetMarchid     uint64 = 5
	SBIBaseGetMimpid      uint64 = 6
)

// Timer extension function IDs.
const SBITimerSetTimer uint64 = 0

// IPI extension function IDs.
const SBIIPISendIPI uint64 = 0

// Rfence extension function IDs.
const (
	SBIRfenceFenceI        uint64 = 0
	SBIRfenceSfenceVMA     uint64 = 1
	SBIRfenceSfenceVMAAsid uint64 = 2
)

// HSM extension function IDs.
const (
	SBIHSMHartStart   uint64 = 0
	SBIHSMHartStop    uint64 = 1
	SBIHSMHartStatus  uint64 = 2
	SBIHSMHartSuspend uint64 = 3
)

// Debug-console function IDs.
const (
	SBIDebugWrite     uint64 = 0
	SBIDebugRead      uint64 = 1
	SBIDebugWriteByte uint64 = 2
)

// SBI error codes (a0 on return).
const (
	SBISuccess           int64 = 0
	SBIErrFailed         int64 = -1
	SBIErrNotSupported   int64 = -2
	SBIErrInvalidParam   int64 = -3
	SBIErrDenied         int64 = -4
	SBIErrInvalidAddress int64 = -5
	SBIErrAlreadyAvail   int64 = -6
)

// SBIImplIDGosbi identifies the synthetic gosbi firmware, in the spirit of
// OpenSBI's implementation ID 1.
const (
	SBIImplIDGosbi  uint64 = 1
	SBIImplIDMinsbi uint64 = 4       // RustSBI's registered ID
	SBISpecVersion  uint64 = 2 << 24 // v2.0
)

// SBICallArgRegs returns how many argument registers (a0..) the given SBI
// extension/function pair legitimately consumes, per the SBI specification.
// The sandbox policy derives its register allow-list from this table
// (paper §5.2: "automatically generate the per-SBI call register allow-list
// from the SBI specification").
func SBICallArgRegs(ext, fn uint64) int {
	switch ext {
	case SBIExtBase:
		if fn == SBIBaseProbeExt {
			return 1
		}
		return 0
	case SBIExtTimer:
		return 1 // stime_value
	case SBIExtIPI:
		return 2 // hart_mask, hart_mask_base
	case SBIExtRfence:
		switch fn {
		case SBIRfenceFenceI:
			return 2
		case SBIRfenceSfenceVMA:
			return 4 // mask, base, start, size
		case SBIRfenceSfenceVMAAsid:
			return 5
		}
		return 5
	case SBIExtHSM:
		switch fn {
		case SBIHSMHartStart:
			return 3 // hartid, start_addr, opaque
		case SBIHSMHartStop:
			return 0
		case SBIHSMHartStatus:
			return 1
		case SBIHSMHartSuspend:
			return 3
		}
		return 3
	case SBIExtReset:
		return 2 // type, reason
	case SBIExtDebug:
		switch fn {
		case SBIDebugWriteByte:
			return 1
		default:
			return 3 // len, addr_lo, addr_hi
		}
	case SBILegacySetTimer, SBILegacyConsolePut, SBILegacySendIPI:
		return 1
	case SBILegacyConsoleGet, SBILegacyClearIPI, SBILegacyRemoteFenceI,
		SBILegacyShutdown:
		return 0
	case SBILegacySfenceVMA:
		return 3
	}
	// Unknown extension: allow the full standard argument set; the firmware
	// will reject the call itself.
	return 6
}
