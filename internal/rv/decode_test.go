package rv

import (
	"math/rand"
	"testing"
)

// TestDecodeFields checks Decode against the individual field accessors on
// random words, including the per-format immediates.
func TestDecodeFields(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		raw := rng.Uint32()
		d := Decode(raw)
		if !d.Valid {
			t.Fatalf("Decode(%#x): Valid not set", raw)
		}
		if d.Raw != raw || d.Op != OpcodeOf(raw) || d.Rd != RdOf(raw) ||
			d.Rs1 != Rs1Of(raw) || d.Rs2 != Rs2Of(raw) ||
			d.F3 != Funct3Of(raw) || d.F7 != Funct7Of(raw) {
			t.Fatalf("Decode(%#x): field mismatch: %+v", raw, d)
		}
		var want uint64
		switch d.Op {
		case OpLui, OpAuipc:
			want = ImmU(raw)
		case OpJal:
			want = ImmJ(raw)
		case OpJalr, OpLoad, OpImm, OpImm32:
			want = ImmI(raw)
		case OpBranch:
			want = ImmB(raw)
		case OpStore:
			want = ImmS(raw)
		}
		if d.Imm != want {
			t.Fatalf("Decode(%#x): imm = %#x, want %#x", raw, d.Imm, want)
		}
	}
}

// TestDecodeKnownWords spot-checks a few hand-assembled encodings.
func TestDecodeKnownWords(t *testing.T) {
	// addi x1, x2, -3
	d := Decode(0xFFD10093)
	if d.Op != OpImm || d.Rd != 1 || d.Rs1 != 2 || d.Imm != ^uint64(2) {
		t.Fatalf("addi decode: %+v", d)
	}
	// ecall
	d = Decode(InstrEcall)
	if d.Op != OpSystem || d.F3 != F3Priv || d.Raw != InstrEcall {
		t.Fatalf("ecall decode: %+v", d)
	}
}
