package rv

// A-extension funct5 values (bits 31:27 of the instruction word).
const (
	AmoAdd  = 0x00
	AmoSwap = 0x01
	AmoLr   = 0x02
	AmoSc   = 0x03
	AmoXor  = 0x04
	AmoOr   = 0x08
	AmoAnd  = 0x0C
	AmoMin  = 0x10
	AmoMax  = 0x14
	AmoMinu = 0x18
	AmoMaxu = 0x1C
)

// AmoCompute returns the value a read-modify-write AMO stores back, given
// its funct5, the access size in bytes (4 or 8), the old memory value, and
// the rs2 operand. ok is false when funct5 does not name an RMW AMO
// (including LR/SC, which have their own semantics). Shared by the hart
// and by the monitor's trap-and-emulate paths so both worlds compute
// identical results.
func AmoCompute(f5 uint32, size int, old, b uint64) (newVal uint64, ok bool) {
	switch f5 {
	case AmoSwap:
		return b, true
	case AmoAdd:
		return old + b, true
	case AmoXor:
		return old ^ b, true
	case AmoAnd:
		return old & b, true
	case AmoOr:
		return old | b, true
	case AmoMin, AmoMax:
		less := int64(old) < int64(b)
		if size == 4 {
			less = int32(old) < int32(b)
		}
		if less == (f5 == AmoMin) {
			return old, true
		}
		return b, true
	case AmoMinu, AmoMaxu:
		less := old < b
		if size == 4 {
			less = uint32(old) < uint32(b)
		}
		if less == (f5 == AmoMinu) {
			return old, true
		}
		return b, true
	}
	return 0, false
}
