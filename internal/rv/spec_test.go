package rv

// Specification conformance tests: immediates are checked by independent
// bit-by-bit re-encoding over random sweeps (the directed examples live in
// TestImmediateDecoders), and the architectural constants are compared
// against the literal values in the privileged and SBI specifications.

import (
	"math/rand"
	"testing"
)

// encodeI..encodeJ place a signed immediate into an instruction word
// following the spec's field layout tables, written independently of the
// decoders in encoding.go.
func encodeI(imm int64) uint32 { return uint32(imm&0xFFF) << 20 }

func encodeS(imm int64) uint32 {
	return uint32(imm>>5&0x7F)<<25 | uint32(imm&0x1F)<<7
}

func encodeB(imm int64) uint32 {
	return uint32(imm>>12&1)<<31 | uint32(imm>>5&0x3F)<<25 |
		uint32(imm>>1&0xF)<<8 | uint32(imm>>11&1)<<7
}

func encodeU(imm int64) uint32 { return uint32(imm) & 0xFFFFF000 }

func encodeJ(imm int64) uint32 {
	return uint32(imm>>20&1)<<31 | uint32(imm>>1&0x3FF)<<21 |
		uint32(imm>>11&1)<<20 | uint32(imm>>12&0xFF)<<12
}

// TestImmediateRoundTrip drives every decoder with encodings of the full
// signed range of its immediate (corners plus a random sweep) and checks
// the sign-extended value comes back exactly. Random bits are poured into
// the non-immediate fields to prove the decoders mask correctly.
func TestImmediateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name   string
		bits   uint
		stride int64 // immediate alignment the format can express
		enc    func(int64) uint32
		dec    func(uint32) uint64
		noise  uint32 // word bits outside the immediate fields
	}{
		{"I", 12, 1, encodeI, ImmI, 0x000FFFFF},
		{"S", 12, 1, encodeS, ImmS, 0x01FFF000},
		{"B", 13, 2, encodeB, ImmB, 0x01FFF07F},
		{"U", 32, 4096, encodeU, ImmU, 0x00000FFF},
		{"J", 21, 2, encodeJ, ImmJ, 0x00000FFF},
	}
	for _, c := range cases {
		lo := -(int64(1) << (c.bits - 1))
		hi := int64(1)<<(c.bits-1) - c.stride
		imms := []int64{lo, lo + c.stride, -c.stride, 0, c.stride, hi - c.stride, hi}
		for i := 0; i < 2000; i++ {
			imms = append(imms, (rng.Int63n(hi-lo+1)+lo)/c.stride*c.stride)
		}
		for _, imm := range imms {
			raw := c.enc(imm) | rng.Uint32()&c.noise
			if got := c.dec(raw); got != uint64(imm) {
				t.Fatalf("Imm%s(%#08x) = %#x, want %#x (%d)", c.name, raw, got, uint64(imm), imm)
			}
		}
	}
}

// TestFieldAccessorRoundTrip pours random values into every register and
// function field position and checks each accessor recovers its own field
// regardless of the others.
func TestFieldAccessorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		op, rd, f3 := rng.Uint32()&0x7F, rng.Uint32()&0x1F, rng.Uint32()&0x7
		rs1, rs2, f7 := rng.Uint32()&0x1F, rng.Uint32()&0x1F, rng.Uint32()&0x7F
		raw := f7<<25 | rs2<<20 | rs1<<15 | f3<<12 | rd<<7 | op
		if OpcodeOf(raw) != op || RdOf(raw) != rd || Funct3Of(raw) != f3 ||
			Rs1Of(raw) != rs1 || Rs2Of(raw) != rs2 || Funct7Of(raw) != f7 {
			t.Fatalf("accessor mismatch on %#08x", raw)
		}
		if uint32(CSROf(raw)) != f7<<5|rs2 {
			t.Fatalf("CSROf(%#08x) = %#x, want funct12 %#x", raw, CSROf(raw), f7<<5|rs2)
		}
	}
}

// TestInstrEncodings reassembles the fixed privileged encodings from their
// spec fields (funct12 | rs1 | funct3 | rd | opcode).
func TestInstrEncodings(t *testing.T) {
	mk := func(funct12 uint32) uint32 { return funct12<<20 | OpSystem }
	for _, c := range []struct {
		name string
		got  uint32
		want uint32
	}{
		{"ecall", InstrEcall, mk(0x000)},
		{"ebreak", InstrEbreak, mk(0x001)},
		{"sret", InstrSret, mk(0x102)},
		{"mret", InstrMret, mk(0x302)},
		{"wfi", InstrWfi, mk(0x105)},
		{"nop", InstrNop, 0x13}, // addi x0, x0, 0
		{"fence iorw,iorw", InstrFence, 0xFF<<20 | OpMiscMem},
		{"fence.i", InstrFenceI, 1<<12 | OpMiscMem},
	} {
		if c.got != c.want {
			t.Errorf("%s encoding %#08x, want %#08x", c.name, c.got, c.want)
		}
	}
	if SfenceVMAFunct7 != 0x09 || HfenceVVMAFunct7 != 0x11 || HfenceGVMAFunct7 != 0x31 {
		t.Error("fence funct7 constants disagree with the spec")
	}
}

// TestPrivConstants pins the cause codes, interrupt numbers, and mstatus
// bit positions to the privileged spec's tables.
func TestPrivConstants(t *testing.T) {
	excs := map[uint64]uint64{
		ExcInstrAddrMisaligned: 0, ExcInstrAccessFault: 1, ExcIllegalInstr: 2,
		ExcBreakpoint: 3, ExcLoadAddrMisaligned: 4, ExcLoadAccessFault: 5,
		ExcStoreAddrMisaligned: 6, ExcStoreAccessFault: 7,
		ExcEcallFromU: 8, ExcEcallFromS: 9, ExcEcallFromM: 11,
		ExcInstrPageFault: 12, ExcLoadPageFault: 13, ExcStorePageFault: 15,
	}
	for got, want := range excs {
		if got != want {
			t.Errorf("exception code %d, spec says %d", got, want)
		}
	}
	ints := map[int]int{IntSSoft: 1, IntMSoft: 3, IntSTimer: 5, IntMTimer: 7,
		IntSExt: 9, IntMExt: 11}
	for got, want := range ints {
		if got != want {
			t.Errorf("interrupt bit %d, spec says %d", got, want)
		}
	}
	if MIntMask != 0x888 || SIntMask != 0x222 {
		t.Errorf("interrupt masks M=%#x S=%#x, spec says 0x888/0x222", MIntMask, SIntMask)
	}
	mst := map[string][2]int{
		"SIE": {MstatusSIE, 1}, "MIE": {MstatusMIE, 3}, "SPIE": {MstatusSPIE, 5},
		"UBE": {MstatusUBE, 6}, "MPIE": {MstatusMPIE, 7}, "SPP": {MstatusSPP, 8},
		"MPP.lo": {MstatusMPPLo, 11}, "MPP.hi": {MstatusMPPHi, 12},
		"MPRV": {MstatusMPRV, 17}, "SUM": {MstatusSUM, 18}, "MXR": {MstatusMXR, 19},
		"TVM": {MstatusTVM, 20}, "TW": {MstatusTW, 21}, "TSR": {MstatusTSR, 22},
		"UXL.lo": {MstatusUXLLo, 32}, "SXL.lo": {MstatusSXLLo, 34}, "SD": {MstatusSD, 63},
	}
	for name, p := range mst {
		if p[0] != p[1] {
			t.Errorf("mstatus.%s at bit %d, spec says %d", name, p[0], p[1])
		}
	}
	if ModeU != 0 || ModeS != 1 || ModeM != 3 {
		t.Error("privilege mode encodings disagree with mstatus.MPP values")
	}
	if CauseInterruptBit != 1<<63 {
		t.Error("mcause interrupt bit must be bit 63 on RV64")
	}
	if SatpModeBare != 0 || SatpModeSv39 != 8 {
		t.Error("satp mode encodings disagree with the spec")
	}
	misa := map[uint64]uint{MisaA: 0, MisaC: 2, MisaD: 3, MisaF: 5, MisaH: 7,
		MisaI: 8, MisaM: 12, MisaS: 18, MisaU: 20}
	for got, bit := range misa {
		if got != 1<<bit {
			t.Errorf("misa bit %#x, spec says 1<<%d", got, bit)
		}
	}
}

// TestSBIConstants checks the ASCII-derived extension IDs byte by byte and
// the error codes against the SBI spec table.
func TestSBIConstants(t *testing.T) {
	ascii := func(s string) uint64 {
		var v uint64
		for i := 0; i < len(s); i++ {
			v = v<<8 | uint64(s[i])
		}
		return v
	}
	eids := map[string]struct {
		got  uint64
		name string
	}{
		"TIME": {SBIExtTimer, "timer"},
		"sPI":  {SBIExtIPI, "ipi"},
		"RFNC": {SBIExtRfence, "rfence"},
		"HSM":  {SBIExtHSM, "hsm"},
		"SRST": {SBIExtReset, "reset"},
		"DBCN": {SBIExtDebug, "debug console"},
		"COVH": {SBIExtCoveHost, "cove host"},
		"COVG": {SBIExtCoveGuest, "cove guest"},
	}
	for s, c := range eids {
		if c.got != ascii(s) {
			t.Errorf("%s EID %#x, want ASCII %q = %#x", c.name, c.got, s, ascii(s))
		}
	}
	if SBIExtBase != 0x10 {
		t.Errorf("base EID %#x, spec says 0x10", SBIExtBase)
	}
	errs := map[int64]int64{SBISuccess: 0, SBIErrFailed: -1, SBIErrNotSupported: -2,
		SBIErrInvalidParam: -3, SBIErrDenied: -4, SBIErrInvalidAddress: -5,
		SBIErrAlreadyAvail: -6}
	for got, want := range errs {
		if got != want {
			t.Errorf("SBI error code %d, spec says %d", got, want)
		}
	}
	if SBISpecVersion != 2<<24 {
		t.Errorf("SBI spec version %#x, want major 2 at bit 24", SBISpecVersion)
	}
	// Legacy EIDs are the function numbers 0..8 (7 reserved).
	legacy := []uint64{SBILegacySetTimer, SBILegacyConsolePut, SBILegacyConsoleGet,
		SBILegacyClearIPI, SBILegacySendIPI, SBILegacyRemoteFenceI, SBILegacySfenceVMA}
	for i, got := range legacy {
		if got != uint64(i) {
			t.Errorf("legacy EID %d, spec says %d", got, i)
		}
	}
	if SBILegacyShutdown != 8 {
		t.Errorf("legacy shutdown EID %d, spec says 8", SBILegacyShutdown)
	}
}
