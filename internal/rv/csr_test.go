package rv

import "testing"

func TestCSRPriv(t *testing.T) {
	cases := []struct {
		n    uint16
		want Mode
	}{
		{CSRCycle, ModeU},
		{CSRTime, ModeU},
		{CSRSstatus, ModeS},
		{CSRSatp, ModeS},
		{CSRHstatus, ModeS},
		{CSRVsatp, ModeS},
		{CSRMstatus, ModeM},
		{CSRPmpcfg0, ModeM},
		{CSRPmpaddr0, ModeM},
		{CSRMvendorid, ModeM},
		{CSRMseccfg, ModeM},
		{CSRCustomSpecCtl, ModeM},
	}
	for _, c := range cases {
		if got := CSRPriv(c.n); got != c.want {
			t.Errorf("CSRPriv(%s) = %v, want %v", CSRName(c.n), got, c.want)
		}
	}
}

func TestCSRReadOnly(t *testing.T) {
	ro := []uint16{CSRCycle, CSRTime, CSRInstret, CSRMvendorid, CSRMarchid,
		CSRMimpid, CSRMhartid, CSRHgeip}
	rw := []uint16{CSRMstatus, CSRSstatus, CSRSatp, CSRMepc, CSRPmpcfg0,
		CSRStimecmp, CSRMcycle}
	for _, n := range ro {
		if !CSRReadOnly(n) {
			t.Errorf("%s should be read-only", CSRName(n))
		}
	}
	for _, n := range rw {
		if CSRReadOnly(n) {
			t.Errorf("%s should be read-write", CSRName(n))
		}
	}
}

func TestIsPmpaddr(t *testing.T) {
	if i, ok := IsPmpaddr(CSRPmpaddr0); !ok || i != 0 {
		t.Error("pmpaddr0 not recognized")
	}
	if i, ok := IsPmpaddr(CSRPmpaddr0 + 17); !ok || i != 17 {
		t.Error("pmpaddr17 not recognized")
	}
	if i, ok := IsPmpaddr(CSRPmpaddr63); !ok || i != 63 {
		t.Error("pmpaddr63 not recognized")
	}
	if _, ok := IsPmpaddr(CSRPmpaddr63 + 1); ok {
		t.Error("pmpaddr64 must not exist")
	}
	if _, ok := IsPmpaddr(CSRPmpcfg0); ok {
		t.Error("pmpcfg0 is not a pmpaddr")
	}
}

func TestIsPmpcfg(t *testing.T) {
	if i, ok := IsPmpcfg(CSRPmpcfg0); !ok || i != 0 {
		t.Error("pmpcfg0 not recognized")
	}
	if i, ok := IsPmpcfg(CSRPmpcfg2); !ok || i != 2 {
		t.Error("pmpcfg2 not recognized")
	}
	if _, ok := IsPmpcfg(CSRPmpcfg0 + 16); ok {
		t.Error("pmpcfg16 must not exist")
	}
}

func TestCSRNameFallbacks(t *testing.T) {
	cases := map[uint16]string{
		CSRMstatus:       "mstatus",
		CSRPmpaddr0 + 5:  "pmpaddr5",
		CSRPmpcfg2:       "pmpcfg2",
		CSRMhpmcounter3:  "mhpmcounter3",
		CSRHpmcounter31:  "hpmcounter31",
		CSRMhpmevent3:    "mhpmevent3",
		0x123:            "csr#0x123",
		CSRCustomSpecCtl: "spec_ctl",
	}
	for n, want := range cases {
		if got := CSRName(n); got != want {
			t.Errorf("CSRName(%#x) = %q, want %q", n, got, want)
		}
	}
}

func TestSBICallArgRegs(t *testing.T) {
	cases := []struct {
		ext, fn uint64
		want    int
	}{
		{SBIExtBase, SBIBaseGetSpecVersion, 0},
		{SBIExtBase, SBIBaseProbeExt, 1},
		{SBIExtTimer, SBITimerSetTimer, 1},
		{SBIExtIPI, SBIIPISendIPI, 2},
		{SBIExtRfence, SBIRfenceFenceI, 2},
		{SBIExtRfence, SBIRfenceSfenceVMA, 4},
		{SBIExtRfence, SBIRfenceSfenceVMAAsid, 5},
		{SBIExtHSM, SBIHSMHartStart, 3},
		{SBIExtHSM, SBIHSMHartStop, 0},
		{SBIExtReset, 0, 2},
		{SBIExtDebug, SBIDebugWriteByte, 1},
		{SBIExtDebug, SBIDebugWrite, 3},
		{SBILegacySetTimer, 0, 1},
		{SBILegacyShutdown, 0, 0},
		{0xDEAD, 0, 6},
	}
	for _, c := range cases {
		if got := SBICallArgRegs(c.ext, c.fn); got != c.want {
			t.Errorf("SBICallArgRegs(%#x,%d) = %d, want %d", c.ext, c.fn, got, c.want)
		}
	}
}

func TestImmediateDecoders(t *testing.T) {
	// addi x1, x2, -1  => imm=0xFFF rs1=2 rd=1 f3=0 op=0x13
	raw := uint32(0xFFF<<20 | 2<<15 | 0<<12 | 1<<7 | 0x13)
	if ImmI(raw) != ^uint64(0) {
		t.Errorf("ImmI = %#x", ImmI(raw))
	}
	if RdOf(raw) != 1 || Rs1Of(raw) != 2 || Funct3Of(raw) != 0 || OpcodeOf(raw) != 0x13 {
		t.Error("field extraction broken")
	}
	// sd x3, -8(x4): imm = -8 = 0xFF8; imm[11:5]=0x7F, imm[4:0]=0x18
	sraw := uint32(0x7F<<25 | 3<<20 | 4<<15 | 3<<12 | 0x18<<7 | 0x23)
	if ImmS(sraw) != uint64(0xFFFFFFFFFFFFFFF8) {
		t.Errorf("ImmS = %#x", ImmS(sraw))
	}
	// beq offset -2: imm=0x1FFE (13-bit) -> -2
	var b uint32 = 0x63
	imm := uint64(0x1FFE)
	b |= uint32(imm>>12&1) << 31
	b |= uint32(imm>>5&0x3F) << 25
	b |= uint32(imm>>1&0xF) << 8
	b |= uint32(imm>>11&1) << 7
	if ImmB(b) != uint64(0xFFFFFFFFFFFFFFFE) {
		t.Errorf("ImmB = %#x", ImmB(b))
	}
	// lui x1, 0x80000 -> sign-extended negative
	lui := uint32(0x80000<<12 | 1<<7 | 0x37)
	if ImmU(lui) != 0xFFFFFFFF80000000 {
		t.Errorf("ImmU = %#x", ImmU(lui))
	}
	// jal offset -4: 21-bit imm 0x1FFFFC
	var j uint32 = 0x6F
	ji := uint64(0x1FFFFC)
	j |= uint32(ji>>20&1) << 31
	j |= uint32(ji>>1&0x3FF) << 21
	j |= uint32(ji>>11&1) << 20
	j |= uint32(ji>>12&0xFF) << 12
	if ImmJ(j) != uint64(0xFFFFFFFFFFFFFFFC) {
		t.Errorf("ImmJ = %#x", ImmJ(j))
	}
}

func TestCSROf(t *testing.T) {
	// csrrw x0, mscratch, x0
	raw := uint32(uint32(CSRMscratch)<<20 | 0<<15 | F3Csrrw<<12 | 0<<7 | OpSystem)
	if CSROf(raw) != CSRMscratch {
		t.Errorf("CSROf = %#x", CSROf(raw))
	}
}
