package rv

import "fmt"

// Mode is a RISC-V privilege mode. The encoding follows the privileged spec's
// two-bit mode numbers as used in mstatus.MPP.
type Mode uint8

const (
	ModeU Mode = 0 // user
	ModeS Mode = 1 // supervisor
	ModeM Mode = 3 // machine
)

func (m Mode) String() string {
	switch m {
	case ModeU:
		return "U"
	case ModeS:
		return "S"
	case ModeM:
		return "M"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Valid reports whether m is one of the three architected modes.
func (m Mode) Valid() bool { return m == ModeU || m == ModeS || m == ModeM }

// mstatus field positions (RV64).
const (
	MstatusSIE   = 1
	MstatusMIE   = 3
	MstatusSPIE  = 5
	MstatusUBE   = 6
	MstatusMPIE  = 7
	MstatusSPP   = 8
	MstatusVSLo  = 9 // VS[1:0] -> bits 10:9
	MstatusVSHi  = 10
	MstatusMPPLo = 11 // MPP[1:0] -> bits 12:11
	MstatusMPPHi = 12
	MstatusFSLo  = 13
	MstatusFSHi  = 14
	MstatusXSLo  = 15
	MstatusXSHi  = 16
	MstatusMPRV  = 17
	MstatusSUM   = 18
	MstatusMXR   = 19
	MstatusTVM   = 20
	MstatusTW    = 21
	MstatusTSR   = 22
	MstatusUXLLo = 32
	MstatusUXLHi = 33
	MstatusSXLLo = 34
	MstatusSXLHi = 35
	MstatusSBE   = 36
	MstatusMBE   = 37
	MstatusSD    = 63
)

// mstatus hypervisor-extension field positions (RV64, present when misa.H).
const (
	MstatusGVA = 38 // trap value was a guest virtual address
	MstatusMPV = 39 // virtualization mode before the trap to M
)

// hstatus field positions.
const (
	HstatusVSBE = 5  // VS-mode big-endian (hardwired 0)
	HstatusGVA  = 6  // trap value was a guest virtual address
	HstatusSPV  = 7  // virtualization mode before the trap to HS
	HstatusSPVP = 8  // privilege before the trap, when taken from V=1
	HstatusHU   = 9  // hlv/hsv usable from U-mode
	HstatusVTVM = 20 // trap VS-mode satp/sfence.vma accesses
	HstatusVTW  = 21 // trap VS-mode wfi
	HstatusVTSR = 22 // trap VS-mode sret
)

// MPP extracts mstatus.MPP as a Mode.
func MPP(mstatus uint64) Mode { return Mode(Bits(mstatus, MstatusMPPHi, MstatusMPPLo)) }

// WithMPP returns mstatus with MPP set to m.
func WithMPP(mstatus uint64, m Mode) uint64 {
	return SetBits(mstatus, MstatusMPPHi, MstatusMPPLo, uint64(m))
}

// SPP extracts mstatus.SPP as a Mode (U or S).
func SPP(mstatus uint64) Mode { return Mode(Bit(mstatus, MstatusSPP)) }

// Interrupt bit positions in mip/mie/mideleg (and sip/sie).
const (
	IntSSoft   = 1  // supervisor software interrupt (SSIP/SSIE)
	IntVSSoft  = 2  // virtual supervisor software interrupt (VSSIP/VSSIE)
	IntMSoft   = 3  // machine software interrupt (MSIP/MSIE)
	IntSTimer  = 5  // supervisor timer interrupt (STIP/STIE)
	IntVSTimer = 6  // virtual supervisor timer interrupt (VSTIP/VSTIE)
	IntMTimer  = 7  // machine timer interrupt (MTIP/MTIE)
	IntSExt    = 9  // supervisor external interrupt (SEIP/SEIE)
	IntVSExt   = 10 // virtual supervisor external interrupt (VSEIP/VSEIE)
	IntMExt    = 11 // machine external interrupt (MEIP/MEIE)
)

// MIntMask is the set of M-mode interrupt bits; SIntMask the S-mode ones;
// VSIntMask the VS-mode ones (hip/hie/hvip/hideleg).
const (
	MIntMask  uint64 = 1<<IntMSoft | 1<<IntMTimer | 1<<IntMExt
	SIntMask  uint64 = 1<<IntSSoft | 1<<IntSTimer | 1<<IntSExt
	VSIntMask uint64 = 1<<IntVSSoft | 1<<IntVSTimer | 1<<IntVSExt
)

// IsVSInt reports whether an interrupt code is one of the VS-level codes.
// When delivered in VS-mode their vscause code is the S-level one (code-1).
func IsVSInt(code uint64) bool {
	return code == IntVSSoft || code == IntVSTimer || code == IntVSExt
}

// Exception cause codes (mcause with interrupt bit clear).
const (
	ExcInstrAddrMisaligned uint64 = 0
	ExcInstrAccessFault    uint64 = 1
	ExcIllegalInstr        uint64 = 2
	ExcBreakpoint          uint64 = 3
	ExcLoadAddrMisaligned  uint64 = 4
	ExcLoadAccessFault     uint64 = 5
	ExcStoreAddrMisaligned uint64 = 6
	ExcStoreAccessFault    uint64 = 7
	ExcEcallFromU          uint64 = 8
	ExcEcallFromS          uint64 = 9
	ExcEcallFromVS         uint64 = 10
	ExcEcallFromM          uint64 = 11
	ExcInstrPageFault      uint64 = 12
	ExcLoadPageFault       uint64 = 13
	ExcStorePageFault      uint64 = 15
	ExcInstrGuestPageFault uint64 = 20
	ExcLoadGuestPageFault  uint64 = 21
	ExcVirtualInstr        uint64 = 22
	ExcStoreGuestPageFault uint64 = 23
)

// CauseWritesGVA reports whether a trap with this (exception) cause writes a
// guest virtual address into xtval, which is what the GVA bits latch when
// the trap was taken from V=1.
func CauseWritesGVA(code uint64) bool {
	switch code {
	case ExcInstrAddrMisaligned, ExcInstrAccessFault, ExcBreakpoint,
		ExcLoadAddrMisaligned, ExcLoadAccessFault,
		ExcStoreAddrMisaligned, ExcStoreAccessFault,
		ExcInstrPageFault, ExcLoadPageFault, ExcStorePageFault,
		ExcInstrGuestPageFault, ExcLoadGuestPageFault, ExcStoreGuestPageFault:
		return true
	}
	return false
}

// CauseInterruptBit is the top bit of mcause on RV64, set for interrupts.
const CauseInterruptBit uint64 = 1 << 63

// Cause packs an exception/interrupt code into an mcause value.
func Cause(code uint64, interrupt bool) uint64 {
	if interrupt {
		return code | CauseInterruptBit
	}
	return code
}

// CauseIsInterrupt reports whether an mcause value denotes an interrupt.
func CauseIsInterrupt(cause uint64) bool { return cause&CauseInterruptBit != 0 }

// CauseCode strips the interrupt bit from an mcause value.
func CauseCode(cause uint64) uint64 { return cause &^ CauseInterruptBit }

// CauseString renders an mcause value for logs and traces.
func CauseString(cause uint64) string {
	code := CauseCode(cause)
	if CauseIsInterrupt(cause) {
		switch code {
		case IntVSSoft:
			return "vs-software-interrupt"
		case IntVSTimer:
			return "vs-timer-interrupt"
		case IntVSExt:
			return "vs-external-interrupt"
		case IntSSoft:
			return "supervisor-software-interrupt"
		case IntMSoft:
			return "machine-software-interrupt"
		case IntSTimer:
			return "supervisor-timer-interrupt"
		case IntMTimer:
			return "machine-timer-interrupt"
		case IntSExt:
			return "supervisor-external-interrupt"
		case IntMExt:
			return "machine-external-interrupt"
		}
		return fmt.Sprintf("interrupt(%d)", code)
	}
	switch code {
	case ExcInstrAddrMisaligned:
		return "instr-addr-misaligned"
	case ExcInstrAccessFault:
		return "instr-access-fault"
	case ExcIllegalInstr:
		return "illegal-instruction"
	case ExcBreakpoint:
		return "breakpoint"
	case ExcLoadAddrMisaligned:
		return "load-addr-misaligned"
	case ExcLoadAccessFault:
		return "load-access-fault"
	case ExcStoreAddrMisaligned:
		return "store-addr-misaligned"
	case ExcStoreAccessFault:
		return "store-access-fault"
	case ExcEcallFromU:
		return "ecall-from-u"
	case ExcEcallFromS:
		return "ecall-from-s"
	case ExcEcallFromVS:
		return "ecall-from-vs"
	case ExcEcallFromM:
		return "ecall-from-m"
	case ExcInstrPageFault:
		return "instr-page-fault"
	case ExcLoadPageFault:
		return "load-page-fault"
	case ExcStorePageFault:
		return "store-page-fault"
	case ExcInstrGuestPageFault:
		return "instr-guest-page-fault"
	case ExcLoadGuestPageFault:
		return "load-guest-page-fault"
	case ExcVirtualInstr:
		return "virtual-instruction"
	case ExcStoreGuestPageFault:
		return "store-guest-page-fault"
	}
	return fmt.Sprintf("exception(%d)", code)
}

// misa extension bits.
const (
	MisaA = 1 << 0
	MisaC = 1 << 2
	MisaD = 1 << 3
	MisaF = 1 << 5
	MisaH = 1 << 7
	MisaI = 1 << 8
	MisaM = 1 << 12
	MisaS = 1 << 18
	MisaU = 1 << 20
)

// MisaMXL64 encodes MXL=2 (XLEN=64) in misa[63:62].
const MisaMXL64 uint64 = 2 << 62

// satp fields (Sv39). hgatp shares the layout with mode Sv39x4 and a
// 16KiB-aligned root (PPN[1:0] = 0).
const (
	SatpModeBare    uint64 = 0
	SatpModeSv39    uint64 = 8
	HgatpModeSv39x4 uint64 = 8
)

// SatpMode extracts satp.MODE (bits 63:60).
func SatpMode(satp uint64) uint64 { return Bits(satp, 63, 60) }

// SatpPPN extracts satp.PPN (bits 43:0).
func SatpPPN(satp uint64) uint64 { return Bits(satp, 43, 0) }

// SatpASID extracts satp.ASID (bits 59:44).
func SatpASID(satp uint64) uint64 { return Bits(satp, 59, 44) }
