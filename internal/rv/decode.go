package rv

// Decoded is a predecoded instruction: every field the interpreter needs,
// extracted once. The simulator caches Decoded records per physical PC so
// the shift-and-mask field extraction and immediate assembly happen a
// single time per instruction word instead of on every execution (the
// host-side acceleration is invisible to the architecture — see
// internal/hart's fast-path layer).
type Decoded struct {
	Raw uint32

	Op  uint32
	Rd  uint32
	Rs1 uint32
	Rs2 uint32
	F3  uint32
	F7  uint32

	// Imm is the format-appropriate immediate for the major opcode
	// (U for lui/auipc, J for jal, B for branches, S for stores, I for
	// everything else that has one). Opcodes without an immediate leave
	// it zero; SYSTEM consumers read the raw word instead.
	Imm uint64

	// Valid distinguishes a decoded record from an empty cache slot.
	Valid bool
}

// Decode predecodes one instruction word.
func Decode(raw uint32) Decoded {
	d := Decoded{
		Raw:   raw,
		Op:    OpcodeOf(raw),
		Rd:    RdOf(raw),
		Rs1:   Rs1Of(raw),
		Rs2:   Rs2Of(raw),
		F3:    Funct3Of(raw),
		F7:    Funct7Of(raw),
		Valid: true,
	}
	switch d.Op {
	case OpLui, OpAuipc:
		d.Imm = ImmU(raw)
	case OpJal:
		d.Imm = ImmJ(raw)
	case OpJalr, OpLoad, OpImm, OpImm32:
		d.Imm = ImmI(raw)
	case OpBranch:
		d.Imm = ImmB(raw)
	case OpStore:
		d.Imm = ImmS(raw)
	}
	return d
}
