package rv

// Major opcodes (bits 6:0 of a 32-bit instruction).
const (
	OpLoad    uint32 = 0x03
	OpMiscMem uint32 = 0x0F
	OpImm     uint32 = 0x13
	OpAuipc   uint32 = 0x17
	OpImm32   uint32 = 0x1B
	OpStore   uint32 = 0x23
	OpAmo     uint32 = 0x2F
	OpReg     uint32 = 0x33
	OpLui     uint32 = 0x37
	OpReg32   uint32 = 0x3B
	OpBranch  uint32 = 0x63
	OpJalr    uint32 = 0x67
	OpJal     uint32 = 0x6F
	OpSystem  uint32 = 0x73
)

// SYSTEM funct3 values.
const (
	F3Priv   uint32 = 0 // ecall/ebreak/mret/sret/wfi/sfence.vma/hfence
	F3Csrrw  uint32 = 1
	F3Csrrs  uint32 = 2
	F3Csrrc  uint32 = 3
	F3HLSV   uint32 = 4 // hypervisor virtual-machine load/store (hlv/hlvx/hsv)
	F3Csrrwi uint32 = 5
	F3Csrrsi uint32 = 6
	F3Csrrci uint32 = 7
)

// Full 32-bit encodings of the zero-operand privileged instructions.
const (
	InstrEcall  uint32 = 0x00000073
	InstrEbreak uint32 = 0x00100073
	InstrSret   uint32 = 0x10200073
	InstrMret   uint32 = 0x30200073
	InstrWfi    uint32 = 0x10500073
	InstrNop    uint32 = 0x00000013 // addi x0, x0, 0
	InstrFence  uint32 = 0x0FF0000F // fence iorw, iorw
	InstrFenceI uint32 = 0x0000100F
)

// SfenceVMAFunct7 is the funct7 of sfence.vma (rs1/rs2 vary).
const SfenceVMAFunct7 uint32 = 0x09

// HfenceVVMAFunct7 and HfenceGVMAFunct7 are the hypervisor fence funct7s.
const (
	HfenceVVMAFunct7 uint32 = 0x11
	HfenceGVMAFunct7 uint32 = 0x31
)

// HLSVDecode classifies a SYSTEM/F3HLSV word as a hypervisor load or store.
// Odd funct7 values are stores (hsv.b/h/w/d); even ones are loads, with the
// width in funct7 bits 2:1 and the rs2 field selecting unsigned (bit 0) and
// execute-permission (hlvx, bit 1) variants.
func HLSVDecode(raw uint32) (store bool, size int, signed, hlvx bool, ok bool) {
	f7 := Funct7Of(raw)
	if f7 < 0x30 || f7 > 0x37 {
		return false, 0, false, false, false
	}
	size = 1 << (f7 >> 1 & 3)
	if f7&1 != 0 { // hsv: rd must be 0
		return true, size, false, false, RdOf(raw) == 0
	}
	switch v := Rs2Of(raw); v {
	case 0: // hlv.b/h/w/d
		return false, size, true, false, true
	case 1: // hlv.bu/hu/wu (no hlv.du)
		return false, size, false, false, size < 8
	case 3: // hlvx.hu/wu
		return false, size, false, true, size == 2 || size == 4
	default:
		return false, 0, false, false, false
	}
}

// Field accessors on raw 32-bit instruction words.

// OpcodeOf returns bits 6:0.
func OpcodeOf(raw uint32) uint32 { return raw & 0x7F }

// RdOf returns bits 11:7.
func RdOf(raw uint32) uint32 { return raw >> 7 & 0x1F }

// Funct3Of returns bits 14:12.
func Funct3Of(raw uint32) uint32 { return raw >> 12 & 0x7 }

// Rs1Of returns bits 19:15.
func Rs1Of(raw uint32) uint32 { return raw >> 15 & 0x1F }

// Rs2Of returns bits 24:20.
func Rs2Of(raw uint32) uint32 { return raw >> 20 & 0x1F }

// Funct7Of returns bits 31:25.
func Funct7Of(raw uint32) uint32 { return raw >> 25 & 0x7F }

// CSROf returns the CSR number field (bits 31:20) of a SYSTEM instruction.
func CSROf(raw uint32) uint16 { return uint16(raw >> 20 & 0xFFF) }

// ImmI returns the sign-extended I-type immediate.
func ImmI(raw uint32) uint64 { return SignExtend(uint64(raw>>20), 12) }

// ImmS returns the sign-extended S-type immediate.
func ImmS(raw uint32) uint64 {
	imm := uint64(raw>>25)<<5 | uint64(raw>>7&0x1F)
	return SignExtend(imm, 12)
}

// ImmB returns the sign-extended B-type immediate.
func ImmB(raw uint32) uint64 {
	imm := uint64(raw>>31&1)<<12 | uint64(raw>>7&1)<<11 |
		uint64(raw>>25&0x3F)<<5 | uint64(raw>>8&0xF)<<1
	return SignExtend(imm, 13)
}

// ImmU returns the U-type immediate (upper 20 bits, sign-extended to 64).
func ImmU(raw uint32) uint64 { return SignExtend(uint64(raw&0xFFFFF000), 32) }

// ImmJ returns the sign-extended J-type immediate.
func ImmJ(raw uint32) uint64 {
	imm := uint64(raw>>31&1)<<20 | uint64(raw>>12&0xFF)<<12 |
		uint64(raw>>20&1)<<11 | uint64(raw>>21&0x3FF)<<1
	return SignExtend(imm, 21)
}
