package rv

import (
	"testing"
	"testing/quick"
)

func TestBits(t *testing.T) {
	cases := []struct {
		v      uint64
		hi, lo uint
		want   uint64
	}{
		{0xFF00, 15, 8, 0xFF},
		{0xFF00, 7, 0, 0},
		{^uint64(0), 63, 0, ^uint64(0)},
		{^uint64(0), 63, 63, 1},
		{0x12345678, 31, 28, 1},
		{0b1010, 3, 1, 0b101},
	}
	for _, c := range cases {
		if got := Bits(c.v, c.hi, c.lo); got != c.want {
			t.Errorf("Bits(%#x,%d,%d) = %#x, want %#x", c.v, c.hi, c.lo, got, c.want)
		}
	}
}

func TestBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bits with hi<lo should panic")
		}
	}()
	Bits(0, 1, 2)
}

func TestSetBitsRoundTrip(t *testing.T) {
	f := func(v, x uint64, hi8, lo8 uint8) bool {
		hi, lo := uint(hi8%64), uint(lo8%64)
		if hi < lo {
			hi, lo = lo, hi
		}
		out := SetBits(v, hi, lo, x)
		// The written field reads back (truncated), other bits unchanged.
		if Bits(out, hi, lo) != x&Mask(hi-lo+1) {
			return false
		}
		mask := Mask(hi-lo+1) << lo
		return out&^mask == v&^mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetBit(t *testing.T) {
	if got := SetBit(0, 5, true); got != 32 {
		t.Errorf("SetBit(0,5,true) = %d", got)
	}
	if got := SetBit(0xFF, 0, false); got != 0xFE {
		t.Errorf("SetBit(0xFF,0,false) = %#x", got)
	}
}

func TestSignExtend(t *testing.T) {
	cases := []struct {
		v    uint64
		bits uint
		want uint64
	}{
		{0x800, 12, 0xFFFFFFFFFFFFF800},
		{0x7FF, 12, 0x7FF},
		{0xFFFFFFFF, 32, 0xFFFFFFFFFFFFFFFF},
		{0x7FFFFFFF, 32, 0x7FFFFFFF},
		{1, 1, ^uint64(0)},
	}
	for _, c := range cases {
		if got := SignExtend(c.v, c.bits); got != c.want {
			t.Errorf("SignExtend(%#x,%d) = %#x, want %#x", c.v, c.bits, got, c.want)
		}
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != 0 || Mask(1) != 1 || Mask(64) != ^uint64(0) || Mask(12) != 0xFFF {
		t.Error("Mask basic values wrong")
	}
}

func TestModeString(t *testing.T) {
	if ModeU.String() != "U" || ModeS.String() != "S" || ModeM.String() != "M" {
		t.Error("mode names wrong")
	}
	if Mode(2).Valid() {
		t.Error("mode 2 must be invalid")
	}
	if Mode(2).String() != "Mode(2)" {
		t.Error("invalid mode string")
	}
}

func TestMPPRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeU, ModeS, ModeM} {
		if got := MPP(WithMPP(0, m)); got != m {
			t.Errorf("MPP round trip %v -> %v", m, got)
		}
	}
	// WithMPP must not disturb other bits.
	v := uint64(0xFFFF_FFFF_FFFF_FFFF)
	out := WithMPP(v, ModeU)
	if out != v&^(3<<MstatusMPPLo) {
		t.Errorf("WithMPP disturbed other bits: %#x", out)
	}
}

func TestCausePacking(t *testing.T) {
	c := Cause(IntMTimer, true)
	if !CauseIsInterrupt(c) || CauseCode(c) != IntMTimer {
		t.Error("interrupt cause packing broken")
	}
	c = Cause(ExcIllegalInstr, false)
	if CauseIsInterrupt(c) || CauseCode(c) != ExcIllegalInstr {
		t.Error("exception cause packing broken")
	}
}

func TestCauseString(t *testing.T) {
	cases := map[uint64]string{
		Cause(ExcIllegalInstr, false): "illegal-instruction",
		Cause(ExcEcallFromS, false):   "ecall-from-s",
		Cause(IntMTimer, true):        "machine-timer-interrupt",
		Cause(IntSExt, true):          "supervisor-external-interrupt",
		Cause(63, false):              "exception(63)",
		Cause(63, true):               "interrupt(63)",
	}
	for c, want := range cases {
		if got := CauseString(c); got != want {
			t.Errorf("CauseString(%#x) = %q, want %q", c, got, want)
		}
	}
}

func TestSatpFields(t *testing.T) {
	satp := SatpModeSv39<<60 | 0x1234<<44 | 0x8_0000
	if SatpMode(satp) != SatpModeSv39 {
		t.Error("satp mode")
	}
	if SatpASID(satp) != 0x1234 {
		t.Error("satp asid")
	}
	if SatpPPN(satp) != 0x8_0000 {
		t.Error("satp ppn")
	}
}
