package rv

import "fmt"

// CSR numbers from the RISC-V privileged specification, plus the four
// documented platform-custom CSRs exposed by the P550 platform profile
// (speculation and error-reporting controls, cf. paper §8.2).
const (
	// Unprivileged counters/timers.
	CSRCycle   uint16 = 0xC00
	CSRTime    uint16 = 0xC01
	CSRInstret uint16 = 0xC02

	// Supervisor trap setup.
	CSRSstatus    uint16 = 0x100
	CSRSie        uint16 = 0x104
	CSRStvec      uint16 = 0x105
	CSRScounteren uint16 = 0x106
	CSRSenvcfg    uint16 = 0x10A

	// Supervisor trap handling.
	CSRSscratch uint16 = 0x140
	CSRSepc     uint16 = 0x141
	CSRScause   uint16 = 0x142
	CSRStval    uint16 = 0x143
	CSRSip      uint16 = 0x144
	CSRStimecmp uint16 = 0x14D // Sstc extension

	// Supervisor protection and translation.
	CSRSatp uint16 = 0x180

	// Hypervisor CSRs (subset used by the ACE policy's shadow state).
	CSRHstatus    uint16 = 0x600
	CSRHedeleg    uint16 = 0x602
	CSRHideleg    uint16 = 0x603
	CSRHie        uint16 = 0x604
	CSRHcounteren uint16 = 0x606
	CSRHgeie      uint16 = 0x607
	CSRHtval      uint16 = 0x643
	CSRHip        uint16 = 0x644
	CSRHvip       uint16 = 0x645
	CSRHtinst     uint16 = 0x64A
	CSRHenvcfg    uint16 = 0x60A
	CSRHgatp      uint16 = 0x680
	CSRHgeip      uint16 = 0xE12

	// Virtual supervisor CSRs.
	CSRVsstatus  uint16 = 0x200
	CSRVsie      uint16 = 0x204
	CSRVstvec    uint16 = 0x205
	CSRVsscratch uint16 = 0x240
	CSRVsepc     uint16 = 0x241
	CSRVscause   uint16 = 0x242
	CSRVstval    uint16 = 0x243
	CSRVsip      uint16 = 0x244
	CSRVsatp     uint16 = 0x280

	// Machine information.
	CSRMvendorid  uint16 = 0xF11
	CSRMarchid    uint16 = 0xF12
	CSRMimpid     uint16 = 0xF13
	CSRMhartid    uint16 = 0xF14
	CSRMconfigptr uint16 = 0xF15

	// Machine trap setup.
	CSRMstatus    uint16 = 0x300
	CSRMisa       uint16 = 0x301
	CSRMedeleg    uint16 = 0x302
	CSRMideleg    uint16 = 0x303
	CSRMie        uint16 = 0x304
	CSRMtvec      uint16 = 0x305
	CSRMcounteren uint16 = 0x306
	CSRMenvcfg    uint16 = 0x30A

	// Machine trap handling.
	CSRMscratch uint16 = 0x340
	CSRMepc     uint16 = 0x341
	CSRMcause   uint16 = 0x342
	CSRMtval    uint16 = 0x343
	CSRMip      uint16 = 0x344
	CSRMtinst   uint16 = 0x34A
	CSRMtval2   uint16 = 0x34B

	// Machine configuration.
	CSRMseccfg uint16 = 0x747

	// PMP configuration: pmpcfg0/pmpcfg2 (RV64 uses even indices only) and
	// pmpaddr0..pmpaddr63.
	CSRPmpcfg0   uint16 = 0x3A0
	CSRPmpcfg2   uint16 = 0x3A2
	CSRPmpaddr0  uint16 = 0x3B0
	CSRPmpaddr63 uint16 = 0x3B0 + 63

	// Machine counters.
	CSRMcycle        uint16 = 0xB00
	CSRMinstret      uint16 = 0xB02
	CSRMhpmcounter3  uint16 = 0xB03
	CSRMhpmcounter31 uint16 = 0xB1F
	CSRMcountinhibit uint16 = 0x320
	CSRMhpmevent3    uint16 = 0x323
	CSRMhpmevent31   uint16 = 0x33F
	CSRHpmcounter3   uint16 = 0xC03
	CSRHpmcounter31  uint16 = 0xC1F

	// Platform-custom CSRs (P550 profile): speculation & error reporting.
	CSRCustomSpecCtl   uint16 = 0x7C0
	CSRCustomSpecBar   uint16 = 0x7C1
	CSRCustomErrInj    uint16 = 0x7C2
	CSRCustomErrStatus uint16 = 0x7C3
)

// CSRPriv returns the minimum privilege mode required to access CSR number n,
// per the standard address-space convention (bits 9:8).
func CSRPriv(n uint16) Mode {
	switch Bits(uint64(n), 9, 8) {
	case 0:
		return ModeU
	case 1, 2: // hypervisor CSRs require (H)S privilege
		return ModeS
	default:
		return ModeM
	}
}

// CSRReadOnly reports whether CSR number n is read-only by address convention
// (bits 11:10 == 3).
func CSRReadOnly(n uint16) bool { return Bits(uint64(n), 11, 10) == 3 }

// IsPmpaddr reports whether n addresses a pmpaddrN CSR, returning the index.
func IsPmpaddr(n uint16) (int, bool) {
	if n >= CSRPmpaddr0 && n <= CSRPmpaddr63 {
		return int(n - CSRPmpaddr0), true
	}
	return 0, false
}

// IsPmpcfg reports whether n addresses a pmpcfgN CSR, returning the (even)
// register index. On RV64 only even pmpcfg registers exist.
func IsPmpcfg(n uint16) (int, bool) {
	if n >= CSRPmpcfg0 && n < CSRPmpcfg0+16 {
		return int(n - CSRPmpcfg0), true
	}
	return 0, false
}

// IsHpmcounter reports whether n is an mhpmcounter/hpmcounter/mhpmevent CSR.
func IsHpmcounter(n uint16) bool {
	return (n >= CSRMhpmcounter3 && n <= CSRMhpmcounter31) ||
		(n >= CSRHpmcounter3 && n <= CSRHpmcounter31) ||
		(n >= CSRMhpmevent3 && n <= CSRMhpmevent31)
}

var csrNames = map[uint16]string{
	CSRCycle: "cycle", CSRTime: "time", CSRInstret: "instret",
	CSRSstatus: "sstatus", CSRSie: "sie", CSRStvec: "stvec",
	CSRScounteren: "scounteren", CSRSenvcfg: "senvcfg",
	CSRSscratch: "sscratch", CSRSepc: "sepc", CSRScause: "scause",
	CSRStval: "stval", CSRSip: "sip", CSRStimecmp: "stimecmp",
	CSRSatp:    "satp",
	CSRHstatus: "hstatus", CSRHedeleg: "hedeleg", CSRHideleg: "hideleg",
	CSRHie: "hie", CSRHcounteren: "hcounteren", CSRHgeie: "hgeie",
	CSRHtval: "htval", CSRHip: "hip", CSRHvip: "hvip", CSRHtinst: "htinst",
	CSRHenvcfg: "henvcfg", CSRHgatp: "hgatp", CSRHgeip: "hgeip",
	CSRVsstatus: "vsstatus", CSRVsie: "vsie", CSRVstvec: "vstvec",
	CSRVsscratch: "vsscratch", CSRVsepc: "vsepc", CSRVscause: "vscause",
	CSRVstval: "vstval", CSRVsip: "vsip", CSRVsatp: "vsatp",
	CSRMvendorid: "mvendorid", CSRMarchid: "marchid", CSRMimpid: "mimpid",
	CSRMhartid: "mhartid", CSRMconfigptr: "mconfigptr",
	CSRMstatus: "mstatus", CSRMisa: "misa", CSRMedeleg: "medeleg",
	CSRMideleg: "mideleg", CSRMie: "mie", CSRMtvec: "mtvec",
	CSRMcounteren: "mcounteren", CSRMenvcfg: "menvcfg",
	CSRMscratch: "mscratch", CSRMepc: "mepc", CSRMcause: "mcause",
	CSRMtval: "mtval", CSRMip: "mip", CSRMtinst: "mtinst",
	CSRMtval2: "mtval2", CSRMseccfg: "mseccfg",
	CSRMcycle: "mcycle", CSRMinstret: "minstret",
	CSRMcountinhibit:   "mcountinhibit",
	CSRCustomSpecCtl:   "spec_ctl",
	CSRCustomSpecBar:   "spec_bar",
	CSRCustomErrInj:    "err_inj",
	CSRCustomErrStatus: "err_status",
}

// CSRName renders a CSR number for logs, traces, and error messages.
func CSRName(n uint16) string {
	if s, ok := csrNames[n]; ok {
		return s
	}
	if i, ok := IsPmpaddr(n); ok {
		return fmt.Sprintf("pmpaddr%d", i)
	}
	if i, ok := IsPmpcfg(n); ok {
		return fmt.Sprintf("pmpcfg%d", i)
	}
	if n >= CSRMhpmcounter3 && n <= CSRMhpmcounter31 {
		return fmt.Sprintf("mhpmcounter%d", n-CSRMcycle)
	}
	if n >= CSRHpmcounter3 && n <= CSRHpmcounter31 {
		return fmt.Sprintf("hpmcounter%d", n-CSRCycle)
	}
	if n >= CSRMhpmevent3 && n <= CSRMhpmevent31 {
		return fmt.Sprintf("mhpmevent%d", n-0x320)
	}
	return fmt.Sprintf("csr#0x%03x", n)
}

// SstatusMask is the subset of mstatus bits visible through sstatus.
const SstatusMask uint64 = 1<<MstatusSIE | 1<<MstatusSPIE | 1<<MstatusUBE |
	1<<MstatusSPP | 3<<MstatusVSLo | 3<<MstatusFSLo | 3<<MstatusXSLo |
	1<<MstatusSUM | 1<<MstatusMXR | 3<<MstatusUXLLo | 1<<MstatusSD
