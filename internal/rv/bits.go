// Package rv defines RISC-V architectural constants shared by the machine
// simulator, the reference model, and the Miralis monitor: CSR numbers and
// field layouts, trap causes, privilege modes, and instruction encodings.
//
// The package is deliberately free of behaviour beyond pure bit manipulation
// so that the simulator (internal/hart) and the verification oracle
// (internal/refmodel) share *definitions* but not *semantics*.
package rv

// Bits extracts the inclusive bit range [lo, hi] from v, shifted down to
// bit 0.
func Bits(v uint64, hi, lo uint) uint64 {
	if hi < lo || hi > 63 {
		panic("rv: invalid bit range")
	}
	return (v >> lo) & ((1 << (hi - lo + 1)) - 1)
}

// Bit returns bit i of v as 0 or 1.
func Bit(v uint64, i uint) uint64 { return (v >> i) & 1 }

// SetBits returns v with the inclusive bit range [lo, hi] replaced by the low
// bits of x.
func SetBits(v uint64, hi, lo uint, x uint64) uint64 {
	if hi < lo || hi > 63 {
		panic("rv: invalid bit range")
	}
	mask := (uint64(1)<<(hi-lo+1) - 1) << lo
	return (v &^ mask) | ((x << lo) & mask)
}

// SetBit returns v with bit i set to b.
func SetBit(v uint64, i uint, b bool) uint64 {
	if b {
		return v | 1<<i
	}
	return v &^ (1 << i)
}

// SignExtend sign-extends the low `bits` bits of v to 64 bits.
func SignExtend(v uint64, bits uint) uint64 {
	shift := 64 - bits
	return uint64(int64(v<<shift) >> shift)
}

// Mask returns a mask with the low n bits set.
func Mask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<n - 1
}
