package core

import (
	"govfm/internal/asm"
	"govfm/internal/mem"
	"govfm/internal/rv"
)

// Fast-path offloading (paper §3.4): the five trap causes that account for
// 99.98% of OS-to-firmware traps on the evaluation platforms — time CSR
// reads, timer deadlines, misaligned loads and stores, IPIs, and remote
// fences — are software emulation of unimplemented standard hardware
// features, so the monitor handles them directly (10–100 lines each)
// instead of world-switching into the virtualized firmware. The whole file
// corresponds to the 190-line "fast path offload" row of Table 1.

// offloads reports whether the given operation class is enabled.
func (m *Monitor) offloads(op OffloadOp) bool {
	if m.forceOffload {
		// Degraded mode: the fast paths are the SBI implementation.
		return true
	}
	if !m.Opts.Offload {
		return false
	}
	mask := m.Opts.OffloadMask
	if mask == 0 {
		mask = OffloadAll
	}
	return mask&op != 0
}

// sbiRet writes the standard SBI return registers.
func sbiRet(ctx *HartCtx, err int64, value uint64) {
	ctx.Hart.SetReg(asm.A0, uint64(err))
	ctx.Hart.SetReg(asm.A1, value)
}

// fastPathEcall handles an SBI call from the OS when the extension is one
// of the offloaded ones. Returns (nextPC, true) when absorbed.
func (m *Monitor) fastPathEcall(ctx *HartCtx, epc uint64) (uint64, bool) {
	h := ctx.Hart
	ext := h.Reg(asm.A7)
	fn := h.Reg(asm.A6)
	switch ext {
	case rv.SBIExtTimer:
		if fn != rv.SBITimerSetTimer || !m.offloads(OffloadTimer) {
			return 0, false
		}
		m.fpSetTimer(ctx, h.Reg(asm.A0))
		sbiRet(ctx, rv.SBISuccess, 0)
		return epc + 4, true
	case rv.SBILegacySetTimer:
		if !m.offloads(OffloadTimer) {
			return 0, false
		}
		m.fpSetTimer(ctx, h.Reg(asm.A0))
		h.SetReg(asm.A0, 0)
		return epc + 4, true
	case rv.SBIExtIPI:
		if fn != rv.SBIIPISendIPI || !m.offloads(OffloadIPI) {
			return 0, false
		}
		m.fpSendIPI(ctx, h.Reg(asm.A0), h.Reg(asm.A1), IPIReasonOS)
		sbiRet(ctx, rv.SBISuccess, 0)
		return epc + 4, true
	case rv.SBILegacySendIPI:
		if !m.offloads(OffloadIPI) {
			return 0, false
		}
		// Legacy: a0 points at a hart mask in memory; treat the value as
		// the mask directly (the synthetic kernels use the new interface).
		m.fpSendIPI(ctx, h.Reg(asm.A0), 0, IPIReasonOS)
		h.SetReg(asm.A0, 0)
		return epc + 4, true
	case rv.SBIExtRfence:
		if !m.offloads(OffloadRfence) {
			return 0, false
		}
		switch fn {
		case rv.SBIRfenceFenceI, rv.SBIRfenceSfenceVMA, rv.SBIRfenceSfenceVMAAsid:
			m.fpSendIPI(ctx, h.Reg(asm.A0), h.Reg(asm.A1), IPIReasonRfence)
			// The local hart fences too.
			h.ChargeCycles(h.Cfg.Cost.TLBFlush)
			sbiRet(ctx, rv.SBISuccess, 0)
			return epc + 4, true
		}
		return 0, false
	case rv.SBILegacyRemoteFenceI, rv.SBILegacySfenceVMA:
		if !m.offloads(OffloadRfence) {
			return 0, false
		}
		m.fpSendIPI(ctx, ^uint64(0), 0, IPIReasonRfence)
		h.ChargeCycles(h.Cfg.Cost.TLBFlush)
		h.SetReg(asm.A0, 0)
		return epc + 4, true
	}
	return 0, false
}

// fpSetTimer programs the OS timer deadline: arm the virtual CLINT's OS
// slot and clear the pending supervisor timer interrupt, exactly what the
// OpenSBI handler does.
func (m *Monitor) fpSetTimer(ctx *HartCtx, deadline uint64) {
	h := ctx.Hart
	m.vclint.SetOSDeadline(h.ID, deadline)
	h.CSR.SetMip(h.CSR.Mip(h.Time()) &^ (1 << rv.IntSTimer))
	m.unmaskMTimer(ctx)
}

// fpSendIPI raises the machine software interrupt on every hart in the
// mask; each target's monitor converts it to a supervisor software
// interrupt (or a fence) on its own hart.
func (m *Monitor) fpSendIPI(ctx *HartCtx, mask, base uint64, reason uint32) {
	n := len(m.Ctx)
	for i := 0; i < 64; i++ {
		if mask>>i&1 == 0 {
			continue
		}
		target := int(base) + i
		if target < 0 || target >= n {
			continue
		}
		if target == ctx.Hart.ID && reason == IPIReasonRfence {
			continue // local fence handled by the caller
		}
		m.vclint.RaiseIPI(target, reason)
	}
}

// fastPathIllegal absorbs illegal-instruction traps from the OS caused by
// reads of the unimplemented time CSR — the single hottest trap cause on
// the VisionFive 2 (Fig. 3).
func (m *Monitor) fastPathIllegal(ctx *HartCtx, raw uint32, epc uint64) (uint64, bool) {
	h := ctx.Hart
	if !m.offloads(OffloadTimeRead) {
		return 0, false
	}
	if ctx.VirtV {
		// Guest (VS/VU) traps follow the architectural H routing through
		// re-injection; the fast path only answers for the host supervisor.
		return 0, false
	}
	if raw == 0 {
		raw = m.fetchGuestInstr(ctx, epc)
	}
	ins := decode(raw)
	switch ins.Op {
	case EmuCSRRS, EmuCSRRSI, EmuCSRRW, EmuCSRRC, EmuCSRRWI, EmuCSRRCI:
	default:
		return 0, false
	}
	if ins.CSR != rv.CSRTime {
		return 0, false
	}
	// Pure reads only (csrr rd, time); writes to time are not a thing the
	// fast path legitimizes.
	if !(ins.Op == EmuCSRRS || ins.Op == EmuCSRRSI) || ins.Rs1 != 0 {
		return 0, false
	}
	h.SetReg(ins.Rd, h.Time())
	return epc + 4, true
}

// fastPathMisaligned emulates a misaligned load or store from the OS
// byte by byte, as the vendor firmware's misaligned handler would.
func (m *Monitor) fastPathMisaligned(ctx *HartCtx, code, addr, epc uint64) (uint64, bool) {
	h := ctx.Hart
	if m.Opts.Offload && !m.forceOffload && !m.offloads(OffloadMisaligned) {
		return 0, false
	}
	if ctx.VirtV {
		// MPRV byte accesses below would use single-stage translation; a
		// guest's misaligned access takes the architectural re-injection
		// path instead.
		return 0, false
	}
	raw := m.fetchOSInstr(ctx, epc)
	if raw == 0 {
		return 0, false
	}
	ins := decode(raw)
	// Perform the byte accesses with MPRV semantics, exactly as the vendor
	// firmware's handler does: the effective privilege and translation are
	// the trapping context's (mstatus.MPP still holds it).
	saved := h.CSR.Mstatus
	h.CSR.Mstatus |= 1 << rv.MstatusMPRV
	defer func() { h.CSR.Mstatus = saved }()
	switch {
	case ins.Op == EmuLoad && code == rv.ExcLoadAddrMisaligned:
		var val uint64
		for b := 0; b < ins.Size; b++ {
			byteVal, ei := h.MemAccess(addr+uint64(b), 1, mem.Read, 0, false)
			if ei != nil {
				return m.injectVirtTrap(ctx, ei.Cause, ei.Tval, epc), true
			}
			val |= byteVal << (8 * b)
		}
		if ins.Signed {
			val = rv.SignExtend(val, uint(8*ins.Size))
		}
		h.SetReg(ins.Rd, val)
		return epc + 4, true
	case ins.Op == EmuStore && code == rv.ExcStoreAddrMisaligned:
		val := h.Reg(ins.Rs2)
		for b := 0; b < ins.Size; b++ {
			if _, ei := h.MemAccess(addr+uint64(b), 1, mem.Write, val>>(8*b)&0xFF, false); ei != nil {
				return m.injectVirtTrap(ctx, ei.Cause, ei.Tval, epc), true
			}
		}
		return epc + 4, true
	}
	return 0, false
}

// fetchOSInstr reads the trapping instruction from OS context, translating
// through the OS's live page tables when paging is on. The monitor uses
// MPRV-style access through the hart.
func (m *Monitor) fetchOSInstr(ctx *HartCtx, pc uint64) uint32 {
	h := ctx.Hart
	h.ChargeCycles(2 * h.Cfg.Cost.MemAccess)
	// Translate with the OS's privilege (the mode stacked in MPP).
	pa, ei := h.Translate(pc, mem.Exec, rv.MPP(h.CSR.Mstatus))
	if ei != nil {
		return 0
	}
	v, ok := h.Bus.Load(pa, 4)
	if !ok {
		return 0
	}
	return uint32(v)
}
