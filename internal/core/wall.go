package core

import (
	"fmt"
	"hash/fnv"

	"govfm/internal/mem"
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// The Dorami wall (PAPERS.md, "Privilege Separating Security Monitor on
// RISC-V TEEs"): the monitor's own memory — fault ring, boot snapshots,
// vPMP shadow, everything in [MiralisBase, MiralisBase+MiralisSize) — is
// covered by a LOCKED zero-permission PMP entry. A locked entry binds
// M-mode too, so even a hosted firmware that somehow reached physical
// M-mode privileges could not read or corrupt monitor state; only the
// monitor's own Force* reprogramming path (the hardware reset analogue)
// can touch the entry. CheckWall re-derives the invariant from the live
// PMP file after every world switch; a breach means the monitor can no
// longer trust its own state and the machine is halted.

// wallCfg is the exact cfg byte the wall entry must hold: locked, NAPOT
// address matching, no permissions.
const wallCfg = pmp.CfgL | pmp.ANapot<<3

// CheckWall asserts the Dorami-wall invariant on one hart's physical PMP
// file: the self-protection entry is present, locked, correctly sized,
// and actually denies access to monitor memory in every simulated mode.
// Returns nil when the wall holds.
func (m *Monitor) CheckWall(ctx *HartCtx) error {
	phys := ctx.Hart.CSR.PMP
	if phys.NumEntries() <= pmpSelf {
		return fmt.Errorf("wall: PMP file has no entry %d", pmpSelf)
	}
	if cfg := phys.Cfg(pmpSelf); cfg != wallCfg {
		return fmt.Errorf("wall: entry %d cfg=%#x, want %#x (locked NAPOT, no perms)",
			pmpSelf, cfg, wallCfg)
	}
	if addr := phys.Addr(pmpSelf); addr != pmp.NAPOTAddr(MiralisBase, MiralisSize) {
		return fmt.Errorf("wall: entry %d addr=%#x, want %#x (Miralis region)",
			pmpSelf, addr, pmp.NAPOTAddr(MiralisBase, MiralisSize))
	}
	// Behavioural probe: the cfg/addr fields could be right while a
	// higher-priority artifact still grants access, so ask the file for
	// actual verdicts at the region's edges and middle. A locked match
	// constrains every mode, M included.
	for _, addr := range []uint64{
		MiralisBase,
		MiralisBase + MiralisSize/2,
		MiralisBase + MiralisSize - 8,
	} {
		for _, acc := range []mem.AccessType{mem.Read, mem.Write, mem.Exec} {
			for _, mode := range []rv.Mode{rv.ModeU, rv.ModeS, rv.ModeM} {
				if phys.Check(addr, 8, acc, mode) {
					return fmt.Errorf("wall: %v %v allowed at %#x", mode, acc, addr)
				}
			}
		}
	}
	return nil
}

// MonitorStateHash fingerprints the monitor state the Dorami wall
// protects: the boot firmware image copy and the per-hart boot snapshots
// containment restarts from. Nothing the hosted firmware or OS does may
// ever change this value; the TEE chaos campaign compares it before and
// after every fault sweep. (The fault ring is deliberately excluded — it
// legitimately grows as faults are recorded.)
func (m *Monitor) MonitorStateHash() uint64 {
	fh := fnv.New64a()
	fh.Write(m.bootFW)
	for _, s := range m.bootSnaps {
		if s == nil {
			continue
		}
		fmt.Fprintf(fh, "%v %v %v %v %v %v %v %v",
			s.Regs, s.PC, s.Mode, s.CSR.Mstatus, s.CSR.Mtvec, s.CSR.Mepc,
			s.CSR.Medeleg, s.CSR.Satp)
		for i := 0; i < s.CSR.PMP.NumEntries(); i++ {
			fmt.Fprintf(fh, ";%d:%x:%x", i, s.CSR.PMP.Cfg(i), s.CSR.PMP.Addr(i))
		}
	}
	return fh.Sum64()
}

// checkWallAfterSwitch runs the wall invariant on the world-switch path.
// A passing check bumps the per-hart counter (campaigns assert
// WallChecks == WorldSwitches); a failing one records a FaultWallBreach
// and halts the machine.
func (m *Monitor) checkWallAfterSwitch(ctx *HartCtx) {
	if err := m.CheckWall(ctx); err != nil {
		f := m.newFault(ctx, FaultWallBreach, err.Error())
		m.recordFault(f)
		m.halt(ctx, "monitor wall breached: "+err.Error())
		return
	}
	ctx.Stats.WallChecks++
}
