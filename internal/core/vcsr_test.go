package core

import (
	"testing"
	"testing/quick"

	"govfm/internal/hart"
	"govfm/internal/rv"
)

func rvMode(m uint64) rv.Mode { return rv.Mode(m) }

// Property tests on the virtual CSR shadow: whatever is written, the
// stored state stays architecturally legal — the invariant the emulator's
// faithful-emulation proof relies on.

func TestWriteMstatusAlwaysLegal(t *testing.T) {
	f := func(v1, v2 uint64) bool {
		vc := newVirtCSRs(4)
		vc.writeMstatus(v1)
		vc.writeMstatus(v2)
		// MPP is never the reserved value 2.
		if vc.Mstatus>>11&3 == 2 {
			return false
		}
		// UXL/SXL are pinned to 64-bit.
		if vc.Mstatus>>32&3 != 2 || vc.Mstatus>>34&3 != 2 {
			return false
		}
		// Non-writable bits stay clear (FS/VS/XS, MBE/SBE, SD...).
		if vc.Mstatus&^(vMstatusWritable|vUXLFixed) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteMstatusIdempotent(t *testing.T) {
	f := func(v uint64) bool {
		vc := newVirtCSRs(4)
		vc.writeMstatus(v)
		once := vc.Mstatus
		vc.writeMstatus(once)
		return vc.Mstatus == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSstatusViewRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		vc := newVirtCSRs(4)
		vc.writeSstatus(v)
		view := vc.sstatus()
		vc.writeSstatus(view)
		return vc.sstatus() == view
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMidelegHardwired(t *testing.T) {
	f := func(v uint64) bool {
		vc := newVirtCSRs(4)
		vc.writeMideleg(v)
		return vc.Mideleg == 0x222
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMPPHelpers(t *testing.T) {
	vc := newVirtCSRs(4)
	for _, m := range []uint64{0, 1, 3} {
		vc.SetMPP(rvMode(m))
		if uint64(vc.MPP()) != m {
			t.Errorf("MPP round trip %d", m)
		}
	}
	if !func() bool { vc.Mstatus |= 1 << 3; return vc.MIE() }() {
		t.Error("MIE getter")
	}
}

// TestVirtualCSRCount pins the size of the virtual CSR surface: the paper
// reports support for 84 CSRs; this implementation's virtual hardware
// must expose at least that many (the exact count varies with the
// platform's PMP entries, custom CSRs, and the H extension).
func TestVirtualCSRCount(t *testing.T) {
	count := func(mk func() *hart.Config) int {
		cfg := mk()
		cfg.Harts = 1
		m, err := hart.NewMachine(cfg, DramSize)
		if err != nil {
			t.Fatal(err)
		}
		mon, err := Attach(m, Options{FirmwareEntry: FirmwareBase})
		if err != nil {
			t.Fatal(err)
		}
		mon.Boot()
		ctx := mon.Ctx[0]
		n := 0
		for csr := 0; csr < 0x1000; csr++ {
			if mon.vcsrAccessible(ctx, uint16(csr)) {
				n++
			}
		}
		return n
	}
	vf2 := count(hart.VisionFive2)
	p550 := count(hart.PremierP550)
	t.Logf("virtual CSRs: visionfive2=%d p550=%d (paper: 84)", vf2, p550)
	if vf2 < 84 {
		t.Errorf("VF2 virtual CSR surface %d < 84", vf2)
	}
	if p550 <= vf2 || p550 > vf2+60 {
		t.Errorf("the P550 surface (%d) must add exactly the H subset and "+
			"custom CSRs over the VF2's (%d)", p550, vf2)
	}
}
