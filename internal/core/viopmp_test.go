package core

import (
	"testing"

	"govfm/internal/asm"
	"govfm/internal/dev/iopmp"
	"govfm/internal/firmware"
	"govfm/internal/hart"
	"govfm/internal/kernel"
	"govfm/internal/rv"
)

// buildIOPMPMachine creates a machine with an IOPMP. Silicon shipping an
// IOPMP would be newer than the VisionFive 2, so the profile also carries
// 16 PMP entries — with the IOPMP MMIO window consuming one, the firmware
// still sees a workable virtual PMP file.
func buildIOPMPMachine(t *testing.T) *hart.Machine {
	t.Helper()
	cfg := hart.VisionFive2()
	cfg.Harts = 1
	cfg.NumPMP = 16
	cfg.HasIOPMP = true
	m, err := hart.NewMachine(cfg, DramSize)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestIOPMPBlocksEvilDMA: with a virtualized IOPMP the policy leaves the
// DMA controller reachable, but its IOPMP rule stops the copy — the attack
// fails silently (DMA status 2) instead of stopping the machine, and the
// run completes. (The sandbox-policy variant of this scenario lives in
// internal/policy to avoid an import cycle.)
func TestIOPMPBlocksEvilDMA(t *testing.T) {
	m := buildIOPMPMachine(t)
	fw := firmware.BuildGosbi(FirmwareBase, firmware.Options{
		OSEntry: OSBase, Harts: 1, FirmwareSize: FirmwareSize,
		EvilMode: "dma",
	})
	if err := m.LoadImage(FirmwareBase, fw.Bytes); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(OSBase, kernel.BuildEvilTrigger(OSBase)); err != nil {
		t.Fatal(err)
	}
	// Plant a marker in OS memory the DMA attack would exfiltrate.
	if !m.Bus.Store(OSBase+0x8000, 8, 0x5EC4E7) {
		t.Fatal("marker store failed")
	}
	mon, err := Attach(m, Options{
		Policy: &dmaDenyPolicy{}, Offload: true, FirmwareEntry: FirmwareBase,
		VirtualizeIOPMP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Boot()
	m.Run(10_000_000)
	if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
		t.Fatalf("run must complete (the attack fails silently): %v %q", ok, reason)
	}
	// The DMA engine must have reported the IOPMP denial.
	if st, _ := m.Bus.Load(hart.DMABase+hart.DMAStat, 8); st != 2 {
		t.Errorf("DMA status = %d, want 2 (IOPMP denial)", st)
	}
	if m.IOPMP.Denials == 0 {
		t.Error("the IOPMP must have recorded denials")
	}
	// The firmware scratch area must not contain the marker.
	scratch := fw.Symbols["scratch"]
	if v, _ := m.Bus.Load(scratch, 8); v == 0x5EC4E7 {
		t.Error("OS memory leaked into the firmware via DMA")
	}
}

// buildIOPMPFirmware: a firmware that programs its virtual IOPMP to allow
// DMA within its own region, performs a legitimate copy there, attempts a
// forbidden copy from OS memory, records both statuses, and exits.
func buildIOPMPFirmware(base uint64, osBase uint64) []byte {
	a := asm.New(base)
	a.Label("start")
	// Virtual IOPMP entry 0: allow RW over the firmware region.
	a.Li(asm.T0, hart.IOPMPBase+iopmp.AddrOff)
	a.Li(asm.T1, base>>2|(0x10_0000/8-1)) // NAPOT over 1 MiB
	a.Sd(asm.T1, asm.T0, 0)
	a.Li(asm.T0, hart.IOPMPBase+iopmp.CfgOff)
	a.Li(asm.T1, 0x1B) // R|W|NAPOT
	a.Sd(asm.T1, asm.T0, 0)
	// Seed a source value.
	a.La(asm.T0, "src")
	a.Li(asm.T1, 0xD0D0)
	a.Sd(asm.T1, asm.T0, 0)
	// Legitimate DMA: src -> dst inside the firmware region.
	a.Li(asm.S0, hart.DMABase)
	a.La(asm.T1, "src")
	a.Sd(asm.T1, asm.S0, 0x00)
	a.La(asm.T1, "dst")
	a.Sd(asm.T1, asm.S0, 0x08)
	a.Li(asm.T1, 8)
	a.Sd(asm.T1, asm.S0, 0x10)
	a.Sd(asm.X0, asm.S0, 0x18) // trigger
	a.Ld(asm.T2, asm.S0, 0x20) // status
	a.La(asm.T3, "stat_ok")
	a.Sd(asm.T2, asm.T3, 0)
	// Forbidden DMA: OS memory -> firmware.
	a.Li(asm.T1, osBase)
	a.Sd(asm.T1, asm.S0, 0x00)
	a.Sd(asm.X0, asm.S0, 0x18) // trigger
	a.Ld(asm.T2, asm.S0, 0x20)
	a.La(asm.T3, "stat_bad")
	a.Sd(asm.T2, asm.T3, 0)
	// Exit.
	a.Li(asm.T0, hart.ExitBase)
	a.Li(asm.T1, hart.ExitPass)
	a.Sd(asm.T1, asm.T0, 0)
	a.Label("hang")
	a.J("hang")
	a.Align(8)
	a.Label("src")
	a.Space(8)
	a.Label("dst")
	a.Space(8)
	a.Label("stat_ok")
	a.Space(8)
	a.Label("stat_bad")
	a.Space(8)
	return a.MustAssemble()
}

// TestIOPMPVirtualProgramming: the firmware's virtual IOPMP entries work
// for its own region while the policy rule still denies OS memory.
func TestIOPMPVirtualProgramming(t *testing.T) {
	m := buildIOPMPMachine(t)
	img := buildIOPMPFirmware(FirmwareBase, OSBase)
	if err := m.LoadImage(FirmwareBase, img); err != nil {
		t.Fatal(err)
	}
	// A sandbox-like DMA rule without the full sandbox: use a policy that
	// denies OS memory to DMA from the start.
	pol := &dmaDenyPolicy{}
	mon, err := Attach(m, Options{
		Policy: pol, FirmwareEntry: FirmwareBase, VirtualizeIOPMP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Boot()
	m.Run(5_000_000)
	if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
		t.Fatalf("%v %q (pc=%#x)", ok, reason, m.Harts[0].PC)
	}
	read := func(label string, off uint64) uint64 {
		v, _ := m.Bus.Load(FirmwareBase+uint64(len(img))-32+off, 8)
		_ = label
		return v
	}
	if v := read("src", 0); v != 0xD0D0 {
		t.Fatalf("src = %#x", v)
	}
	if v := read("dst", 8); v != 0xD0D0 {
		t.Errorf("legitimate DMA inside the firmware region must copy: dst=%#x", v)
	}
	if v := read("stat_ok", 16); v != 0 {
		t.Errorf("legitimate DMA status = %d, want 0", v)
	}
	if v := read("stat_bad", 24); v != 2 {
		t.Errorf("forbidden DMA status = %d, want 2 (IOPMP denial)", v)
	}
	if mon.viopmp.Writes == 0 {
		t.Error("virtual IOPMP writes must be mediated")
	}
}

// dmaDenyPolicy carries only an IOPMP rule: no DMA into OS memory.
type dmaDenyPolicy struct{ BasePolicy }

func (dmaDenyPolicy) Name() string { return "dma-deny" }

func (dmaDenyPolicy) PolicyIOPMP(c *HartCtx) PMPRule {
	return PMPRule{
		Cfg:  0x18, // NAPOT, no permissions
		Addr: OSBase>>2 | (OSSize/8 - 1),
	}
}

// TestIOPMPWindowCostsOneVPMP: like the vPLIC, the IOPMP MMIO window
// consumes one virtual PMP entry.
func TestIOPMPWindowCostsOneVPMP(t *testing.T) {
	m := buildIOPMPMachine(t)
	base, err := Attach(m, Options{FirmwareEntry: FirmwareBase})
	if err != nil {
		t.Fatal(err)
	}
	m2 := buildIOPMPMachine(t)
	with, err := Attach(m2, Options{FirmwareEntry: FirmwareBase, VirtualizeIOPMP: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.NumVirtPMP() != base.NumVirtPMP()-1 {
		t.Errorf("vIOPMP must cost one virtual PMP: %d vs %d",
			with.NumVirtPMP(), base.NumVirtPMP())
	}
}

// TestIOPMPRequiresHardware: virtualizing a nonexistent IOPMP is an error.
func TestIOPMPRequiresHardware(t *testing.T) {
	cfg := hart.VisionFive2()
	cfg.Harts = 1
	m, _ := hart.NewMachine(cfg, DramSize)
	if _, err := Attach(m, Options{FirmwareEntry: FirmwareBase, VirtualizeIOPMP: true}); err == nil {
		t.Error("VirtualizeIOPMP without hardware must fail")
	}
}

// TestIOPMPNeverAllowsMonitorMemory: even if the firmware programs an
// allow-all virtual entry, DMA into monitor memory stays blocked.
func TestIOPMPNeverAllowsMonitorMemory(t *testing.T) {
	m := buildIOPMPMachine(t)
	mon, err := Attach(m, Options{FirmwareEntry: FirmwareBase, VirtualizeIOPMP: true})
	if err != nil {
		t.Fatal(err)
	}
	mon.Boot()
	// Firmware programs allow-all through the virtual file.
	mon.viopmp.Virt().SetAddr(0, rv.Mask(54))
	mon.viopmp.Virt().SetCfg(0, 0x1B) // R|W|NAPOT
	mon.installIOPMP(mon.Ctx[0])
	if m.IOPMP.Check(MiralisBase+0x100, 8, true) {
		t.Error("DMA into monitor memory must always be denied")
	}
	if !m.IOPMP.Check(OSBase, 8, true) {
		t.Error("the allow-all virtual entry must apply elsewhere")
	}
}
