package core

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"govfm/internal/hart"
)

// monitorsEqual compares the architectural observables of two monitored
// machines plus the monitor-side counters that must travel with a fork.
func monitorsEqual(t *testing.T, tag string, a, b *hart.Machine, ma, mb *Monitor) {
	t.Helper()
	for i := range a.Harts {
		ha, hb := a.Harts[i], b.Harts[i]
		if ha.Cycles != hb.Cycles || ha.Instret != hb.Instret {
			t.Errorf("%s: hart %d cycles/instret %d/%d vs %d/%d",
				tag, i, ha.Cycles, ha.Instret, hb.Cycles, hb.Instret)
		}
		if ha.PC != hb.PC || ha.Mode != hb.Mode || ha.Regs != hb.Regs {
			t.Errorf("%s: hart %d pc/mode differ: %#x/%v vs %#x/%v",
				tag, i, ha.PC, ha.Mode, hb.PC, hb.Mode)
		}
	}
	if a.Uart.Output() != b.Uart.Output() {
		t.Errorf("%s: uart %q vs %q", tag, a.Uart.Output(), b.Uart.Output())
	}
	if ma.TotalStats() != mb.TotalStats() {
		t.Errorf("%s: monitor stats %+v vs %+v", tag, ma.TotalStats(), mb.TotalStats())
	}
	for i := range ma.Ctx {
		ca, cb := ma.Ctx[i], mb.Ctx[i]
		if ca.VirtMode != cb.VirtMode || ca.VirtWaiting != cb.VirtWaiting {
			t.Errorf("%s: hart %d virt mode %v/%v vs %v/%v",
				tag, i, ca.VirtMode, ca.VirtWaiting, cb.VirtMode, cb.VirtWaiting)
		}
		va, vb := *ca.V, *cb.V
		va.Custom, vb.Custom = nil, nil
		va.PMP, vb.PMP = nil, nil
		if !reflect.DeepEqual(va, vb) {
			t.Errorf("%s: hart %d virtual CSR files differ:\n%+v\n%+v", tag, i, va, vb)
		}
		if !reflect.DeepEqual(ca.V.Custom, cb.V.Custom) {
			t.Errorf("%s: hart %d custom CSRs differ", tag, i)
		}
		ac, aa := ca.V.PMP.Snapshot()
		bc, ba := cb.V.PMP.Snapshot()
		if !reflect.DeepEqual(ac, bc) || !reflect.DeepEqual(aa, ba) {
			t.Errorf("%s: hart %d virtual PMP files differ", tag, i)
		}
	}
}

// TestMonitorForkMatchesColdReplay is the monitored half of the fork
// contract: a monitored system forked mid-boot must finish bit-identically
// — cycles, console, monitor counters, virtual CSR state — to a cold
// monitored machine replayed through the same trajectory; and the parent
// must be unperturbed by the child.
func TestMonitorForkMatchesColdReplay(t *testing.T) {
	for _, offload := range []bool{true, false} {
		name := "offload"
		if !offload {
			name = "emulate"
		}
		t.Run(name, func(t *testing.T) {
			const k1, total = 3_000, 3_000_000

			parent, pmon := scenario(t, hart.VisionFive2(), true, offload, 1)
			parent.Run(k1)
			if ok, _ := parent.Halted(); ok {
				t.Fatal("fork point must be mid-boot")
			}

			img, err := parent.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			child, err := hart.SpawnFromImage(img)
			if err != nil {
				t.Fatal(err)
			}
			cmon, err := pmon.Fork(child)
			if err != nil {
				t.Fatal(err)
			}
			runToExit(t, child, total)
			runToExit(t, parent, total)

			cold, coldMon := scenario(t, hart.VisionFive2(), true, offload, 1)
			cold.Run(k1)
			runToExit(t, cold, total)

			monitorsEqual(t, "child-vs-cold", child, cold, cmon, coldMon)
			monitorsEqual(t, "parent-vs-cold", parent, cold, pmon, coldMon)
		})
	}
}

// TestMonitorForkFamilyConcurrent runs a monitored parent and forked
// children concurrently — the monitor-level COW/-race gate. Each child
// carries its own monitor clone; all must reach the same end state.
func TestMonitorForkFamilyConcurrent(t *testing.T) {
	parent, pmon := scenario(t, hart.VisionFive2(), true, true, 1)
	parent.Run(4_000)
	if ok, _ := parent.Halted(); ok {
		t.Fatal("fork point must be mid-boot")
	}

	const children = 3
	machines := []*hart.Machine{parent}
	monitors := []*Monitor{pmon}
	for i := 0; i < children; i++ {
		c, err := parent.Fork()
		if err != nil {
			t.Fatal(err)
		}
		cm, err := pmon.Fork(c)
		if err != nil {
			t.Fatal(err)
		}
		machines = append(machines, c)
		monitors = append(monitors, cm)
	}
	var wg sync.WaitGroup
	for _, m := range machines {
		wg.Add(1)
		go func(m *hart.Machine) {
			defer wg.Done()
			m.Run(3_000_000)
		}(m)
	}
	wg.Wait()
	for i, m := range machines {
		if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
			t.Fatalf("machine %d: halted=%v reason=%q uart=%q", i, ok, reason, m.Uart.Output())
		}
	}
	for i := 1; i < len(machines); i++ {
		monitorsEqual(t, "family", machines[0], machines[i], monitors[0], monitors[i])
	}
}

// statefulPolicy is a policy with state and no ForkPolicy.
type statefulPolicy struct {
	BasePolicy
	n int
}

func (*statefulPolicy) Name() string { return "stateful" }

// forkablePolicy adds the PolicyForker hook.
type forkablePolicy struct{ statefulPolicy }

func (p *forkablePolicy) ForkPolicy() Policy {
	c := *p
	return &c
}

// TestMonitorForkPolicyContract: stateful policies without PolicyForker
// are rejected; with it, the clone is independent.
func TestMonitorForkPolicyContract(t *testing.T) {
	m, mon := scenario(t, hart.VisionFive2(), true, false, 1)
	child, err := m.Fork()
	if err != nil {
		t.Fatal(err)
	}

	mon.Policy = &statefulPolicy{n: 7}
	if _, err := mon.Fork(child); err == nil || !strings.Contains(err.Error(), "PolicyForker") {
		t.Fatalf("stateful policy must be rejected, got %v", err)
	}

	fp := &forkablePolicy{statefulPolicy{n: 7}}
	mon.Policy = fp
	cm, err := mon.Fork(child)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := cm.Policy.(*forkablePolicy)
	if !ok || got == fp || got.n != 7 {
		t.Fatalf("forked policy not an independent copy: %T %v", cm.Policy, got)
	}

	// Hart-count mismatch guard.
	cfg := hart.VisionFive2()
	cfg.Harts = 2
	m2, err := hart.NewMachine(cfg, DramSize)
	if err != nil {
		t.Fatal(err)
	}
	mon.Policy = BasePolicy{}
	if _, err := mon.Fork(m2); err == nil {
		t.Fatal("hart-count mismatch must be rejected")
	}
}
