package core

import (
	"strings"
	"testing"

	"govfm/internal/firmware"
	"govfm/internal/hart"
	"govfm/internal/kernel"
	"govfm/internal/pmp"
)

// containScenario boots gosbi + the boot kernel under the monitor with
// crash containment armed — the configuration the wall, restart, and
// degraded-mode regressions exercise.
func containScenario(t *testing.T, pol Policy) (*hart.Machine, *Monitor) {
	t.Helper()
	cfg := hart.VisionFive2()
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, DramSize)
	if err != nil {
		t.Fatal(err)
	}
	fw := firmware.BuildGosbi(FirmwareBase, firmware.Options{
		OSEntry: OSBase, Harts: 1, FirmwareSize: FirmwareSize,
	})
	kern := kernel.BuildBoot(OSBase, kernel.BootOptions{
		Harts: 1, TimeReads: 5, TimerSets: 2, Misaligned: 3,
	})
	if err := m.LoadImage(FirmwareBase, fw.Bytes); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(OSBase, kern); err != nil {
		t.Fatal(err)
	}
	mon, err := Attach(m, Options{
		Policy:        pol,
		Offload:       true,
		FirmwareEntry: FirmwareBase,
		Containment:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Boot()
	return m, mon
}

// TestWallHeldThroughBoot asserts the Dorami wall from boot to guest
// exit: the self-protection entry is locked from the first instruction,
// the invariant checker passes after every world switch, and tampering
// with the entry is detected.
func TestWallHeldThroughBoot(t *testing.T) {
	m, mon := containScenario(t, nil)
	ctx := mon.Ctx[0]
	if err := mon.CheckWall(ctx); err != nil {
		t.Fatalf("wall must hold right after Boot: %v", err)
	}
	if !ctx.Hart.CSR.PMP.Locked(pmpSelf) {
		t.Fatal("self-protection entry must be locked at boot")
	}
	runToExit(t, m, 3_000_000)
	if err := mon.CheckWall(ctx); err != nil {
		t.Errorf("wall must hold at guest exit: %v", err)
	}
	st := mon.TotalStats()
	if st.WallChecks == 0 || st.WallChecks != st.WorldSwitches {
		t.Errorf("wall checked on %d of %d world switches", st.WallChecks, st.WorldSwitches)
	}

	// Tampering must be detected: unlock, regrant, or resize the entry.
	phys := ctx.Hart.CSR.PMP
	goodCfg, goodAddr := phys.Cfg(pmpSelf), phys.Addr(pmpSelf)
	phys.ForceCfg(pmpSelf, pmp.ANapot<<3) // unlocked
	if mon.CheckWall(ctx) == nil {
		t.Error("CheckWall must reject an unlocked wall entry")
	}
	phys.ForceCfg(pmpSelf, goodCfg|pmp.CfgR) // locked but readable
	if mon.CheckWall(ctx) == nil {
		t.Error("CheckWall must reject a readable wall entry")
	}
	phys.ForceCfg(pmpSelf, goodCfg)
	phys.ForceAddr(pmpSelf, pmp.NAPOTAddr(MiralisBase, MiralisSize/2))
	if mon.CheckWall(ctx) == nil {
		t.Error("CheckWall must reject a shrunk wall entry")
	}
	phys.ForceAddr(pmpSelf, goodAddr)
	if err := mon.CheckWall(ctx); err != nil {
		t.Errorf("restored wall must pass again: %v", err)
	}
}

// TestBootRestartReprogramsWall is the boot → restart → reprogram
// regression: a containment restart from the boot snapshot must come back
// with the wall locked and the PMP epoch advanced (never rewound), and a
// full power cycle (Machine.Reset, which legitimately clears locks) must
// re-lock on the next Boot, still without rewinding the epoch.
func TestBootRestartReprogramsWall(t *testing.T) {
	m, mon := containScenario(t, nil)
	ctx := mon.Ctx[0]
	h := ctx.Hart
	epochBoot := h.CSR.PMP.Epoch()

	// Declare the firmware dead right out of Boot, before the OS launches:
	// containment must restart it from the boot snapshot. (No Run first —
	// gosbi hands off to the OS within a few hundred steps.)
	if ctx.osLive {
		t.Fatal("test premise: OS must not be live yet")
	}
	epochPre := h.CSR.PMP.Epoch()
	f := mon.newFault(ctx, FaultDoubleFault, "test-induced crash")
	vpc := mon.misbehave(ctx, f, h.PC)
	if vpc != FirmwareBase {
		t.Errorf("pre-OS containment must restart at the firmware entry, got %#x", vpc)
	}
	if ctx.Stats.FirmwareRestarts != 1 {
		t.Errorf("FirmwareRestarts = %d, want 1", ctx.Stats.FirmwareRestarts)
	}
	if err := mon.CheckWall(ctx); err != nil {
		t.Errorf("wall must be re-locked after a snapshot restart: %v", err)
	}
	if !h.CSR.PMP.Locked(pmpSelf) {
		t.Error("restart must come back with the wall entry locked")
	}
	if e := h.CSR.PMP.Epoch(); e <= epochPre {
		t.Errorf("snapshot restore must advance the epoch: %d -> %d", epochPre, e)
	}
	// The restarted firmware must boot all the way to a passing guest.
	runToExit(t, m, 3_000_000)

	// Power cycle: Reset clears every PMP entry, locks included, per spec —
	// but the epoch is host bookkeeping and keeps counting up.
	epochRun := h.CSR.PMP.Epoch()
	if epochRun <= epochBoot {
		t.Fatalf("epoch did not advance across the run: %d -> %d", epochBoot, epochRun)
	}
	m.Reset(FirmwareBase)
	if h.CSR.PMP.Cfg(pmpSelf) != 0 {
		t.Error("power-on reset must clear the locked wall entry")
	}
	if e := h.CSR.PMP.Epoch(); e <= epochRun {
		t.Errorf("Reset must advance, not rewind, the epoch: %d -> %d", epochRun, e)
	}
	epochReset := h.CSR.PMP.Epoch()
	mon.Boot()
	if err := mon.CheckWall(mon.Ctx[0]); err != nil {
		t.Errorf("Boot after Reset must re-lock the wall: %v", err)
	}
	if e := h.CSR.PMP.Epoch(); e <= epochReset {
		t.Errorf("Boot must advance the epoch past the reset point: %d -> %d", epochReset, e)
	}
}

// misbehaviorPolicy scripts OnFirmwareMisbehavior for the degraded-mode
// double-fault regression.
type misbehaviorPolicy struct {
	BasePolicy
	act   Action
	calls int
}

func (p *misbehaviorPolicy) OnFirmwareMisbehavior(*HartCtx, *MonitorFault) Action {
	p.calls++
	return p.act
}

// TestDegradedReentryNoDoubleFire is the degraded-mode re-entry
// regression: once the firmware is written off, a second misbehavior
// must not re-enter containment (no restart slot burned, no virtual
// M-state rebuild) and must leave exactly one fault ring entry per event.
func TestDegradedReentryNoDoubleFire(t *testing.T) {
	pol := &misbehaviorPolicy{act: ActDefault}
	m, mon := containScenario(t, pol)
	ctx := mon.Ctx[0]
	h := ctx.Hart

	// Run until the OS is live so containment diverts to degraded mode.
	m.RunUntil(func() bool { return h.SInstret > 64 }, 3_000_000)
	if h.SInstret <= 64 {
		t.Fatal("OS never launched")
	}
	f1 := mon.newFault(ctx, FaultDoubleFault, "induced fault #1")
	mon.misbehave(ctx, f1, h.PC)
	if !ctx.Degraded {
		t.Fatal("first post-OS misbehavior must enter degraded mode")
	}
	restarts, faults := ctx.Stats.FirmwareRestarts, mon.FaultCount
	vBefore := ctx.V

	// Second misbehavior while degraded: recorded once, no containment.
	h.Cycles += 1000 // a distinct detection instant
	f2 := mon.newFault(ctx, FaultWatchdog, "induced fault #2")
	mon.misbehave(ctx, f2, h.PC)
	if h.Halted {
		t.Fatal("ActDefault in degraded mode must not halt")
	}
	if mon.FaultCount != faults+1 {
		t.Errorf("second fault left %d ring entries, want exactly 1", mon.FaultCount-faults)
	}
	if ctx.Stats.FirmwareRestarts != restarts {
		t.Errorf("degraded re-entry burned a restart: %d -> %d", restarts, ctx.Stats.FirmwareRestarts)
	}
	if !ctx.Degraded || ctx.V != vBefore {
		t.Error("degraded re-entry must not rebuild the virtual M-state the OS depends on")
	}
	if !f2.Contained {
		t.Error("a degraded-mode fault the policy did not block counts as contained")
	}

	// The same event escalating to halt at the same instant (e.g. the halt
	// path running right after the record) must not add a second entry.
	mon.halt(ctx, "escalation at the same instant")
	h.Halted, h.HaltReason = false, "" // undo for the next phase
	mon.HaltedReason = ""
	if mon.FaultCount != faults+1 {
		t.Errorf("same-instant escalation added a ring entry: %d", mon.FaultCount-faults)
	}

	// ActBlock while degraded: halt with one fault entry, still no restart.
	pol.act = ActBlock
	h.Cycles += 1000
	f3 := mon.newFault(ctx, FaultWatchdog, "induced fault #3")
	mon.misbehave(ctx, f3, h.PC)
	if !h.Halted || !strings.Contains(h.HaltReason, "policy blocked") {
		t.Errorf("ActBlock in degraded mode must halt with attribution, got halted=%v %q", h.Halted, h.HaltReason)
	}
	if mon.FaultCount != faults+2 {
		t.Errorf("blocked fault left %d ring entries for the event, want 1", mon.FaultCount-faults-1)
	}
	if ctx.Stats.FirmwareRestarts != restarts {
		t.Errorf("blocked degraded fault burned a restart: %d", ctx.Stats.FirmwareRestarts)
	}
	if f3.Contained {
		t.Error("a blocked fault must not be marked contained")
	}
	if pol.calls != 3 {
		t.Errorf("policy saw %d misbehavior callbacks, want 3", pol.calls)
	}
}

// TestForkPreservesWall is the fork-then-probe regression at the monitor
// level: a forked monitor must carry the locked wall, the PMP epoch, and
// the protected-state fingerprint, and stay independent of the parent.
func TestForkPreservesWall(t *testing.T) {
	m, mon := containScenario(t, nil)
	ctx := mon.Ctx[0]
	m.Run(20_000) // boot far enough that PMP state is warm

	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	child, err := hart.SpawnFromImage(img)
	if err != nil {
		t.Fatal(err)
	}
	fmon, err := mon.Fork(child)
	if err != nil {
		t.Fatal(err)
	}
	fctx := fmon.Ctx[0]
	if err := fmon.CheckWall(fctx); err != nil {
		t.Fatalf("forked monitor must inherit the wall: %v", err)
	}
	if !fctx.Hart.CSR.PMP.Locked(pmpSelf) {
		t.Error("fork lost the wall entry's lock bit")
	}
	// The child spawns from a normalized image, so its live epoch restarts
	// low — what matters is that it is nonzero (caches key off it) and
	// advances monotonically under the child's own execution.
	childEpoch := fctx.Hart.CSR.PMP.Epoch()
	if childEpoch == 0 {
		t.Error("spawned child must start with a nonzero PMP epoch")
	}
	if fmon.MonitorStateHash() != mon.MonitorStateHash() {
		t.Error("fork changed the monitor-state fingerprint")
	}

	// Independence: wrecking the parent's wall must not touch the child.
	ctx.Hart.CSR.PMP.ForceCfg(pmpSelf, 0)
	if mon.CheckWall(ctx) == nil {
		t.Fatal("sanity: parent wall should now be broken")
	}
	if err := fmon.CheckWall(fctx); err != nil {
		t.Errorf("parent tamper leaked into the fork: %v", err)
	}
	// And the fork still boots to a passing guest on its own.
	runToExit(t, child, 3_000_000)
	if err := fmon.CheckWall(fctx); err != nil {
		t.Errorf("fork wall must hold at guest exit: %v", err)
	}
	// A clean guest run never reprograms PMP, so the epoch must not have
	// moved backwards (monotonicity survives the spawn).
	if e := fctx.Hart.CSR.PMP.Epoch(); e < childEpoch {
		t.Errorf("child epoch moved backwards across its run: %d -> %d", childEpoch, e)
	}
	if got := fmon.TotalStats(); got.WallChecks != got.WorldSwitches {
		t.Errorf("fork wall checked on %d of %d world switches", got.WallChecks, got.WorldSwitches)
	}
}

// TestWallBreachHaltsAndRecords drives a world switch with a sabotaged
// reinstall path and asserts the monitor classifies it: since installPMP
// itself always re-locks, simulate the breach by corrupting the wall and
// calling the post-switch checker directly.
func TestWallBreachHaltsAndRecords(t *testing.T) {
	m, mon := containScenario(t, nil)
	ctx := mon.Ctx[0]
	ctx.Hart.CSR.PMP.ForceCfg(pmpSelf, pmp.CfgR|pmp.CfgW|pmp.CfgX|pmp.ANapot<<3)
	mon.checkWallAfterSwitch(ctx)
	h := ctx.Hart
	if !h.Halted || !strings.Contains(h.HaltReason, "wall breached") {
		t.Fatalf("breach must halt with attribution, got halted=%v %q", h.Halted, h.HaltReason)
	}
	_ = m
	if len(mon.Faults) == 0 || mon.Faults[len(mon.Faults)-1].Kind != FaultWallBreach {
		t.Fatal("breach must leave a FaultWallBreach record")
	}
	if mon.Faults[len(mon.Faults)-1].Contained {
		t.Error("a wall breach is not containable")
	}
}
