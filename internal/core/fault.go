package core

import (
	"fmt"
	"strings"

	"govfm/internal/rv"
)

// Monitor fault records: every failure the monitor detects in the virtual
// firmware — or in itself — is reported as a structured MonitorFault with a
// full machine-state dump, whether the outcome is containment (restart the
// firmware, enter degraded mode) or a halt. The chaos harness
// (internal/inject) asserts that no injected fault ever escapes this
// classification as a raw Go panic.

// FaultKind classifies a monitor-detected failure.
type FaultKind int

const (
	// FaultPanic is a Go panic caught at a monitor boundary (trap entry or
	// emulation dispatch) — the software equivalent of a machine check.
	FaultPanic FaultKind = iota
	// FaultDoubleFault is an exception taken during virtual M-mode trap
	// handling (or with an unprogrammed mtvec): the firmware can no longer
	// make progress on its own.
	FaultDoubleFault
	// FaultWatchdog is a firmware-world residency past the configured
	// cycle budget: the firmware is stuck or runaway.
	FaultWatchdog
	// FaultLockup is a virtual wfi with every virtual M interrupt masked:
	// nothing can ever wake the firmware.
	FaultLockup
	// FaultHalt is a monitor-initiated machine stop (policy ActBlock or an
	// unrecoverable condition).
	FaultHalt
	// FaultWallBreach is a violation of the Dorami-style monitor wall: the
	// locked PMP entries that isolate the monitor's own state from hosted
	// firmware were found missing, unlocked, or misprogrammed after a
	// world switch. The monitor cannot trust its own state past this
	// point, so the machine is halted.
	FaultWallBreach
)

func (k FaultKind) String() string {
	switch k {
	case FaultPanic:
		return "panic"
	case FaultDoubleFault:
		return "double-fault"
	case FaultWatchdog:
		return "watchdog"
	case FaultLockup:
		return "lockup"
	case FaultHalt:
		return "halt"
	case FaultWallBreach:
		return "wall-breach"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// MonitorFault is the structured record of one detected failure.
type MonitorFault struct {
	Kind   FaultKind
	Hart   int
	Reason string

	// Machine state at detection.
	PC       uint64
	VirtMode rv.Mode
	Cycles   uint64

	// Residency is the cycles spent in the firmware world when the fault
	// was detected — for watchdog faults, the detection latency.
	Residency uint64

	// Contained reports whether the monitor recovered (firmware restarted
	// or degraded mode entered) rather than halting the machine.
	Contained bool

	// Dump is the full machine-state dump at detection.
	Dump string
}

// Error implements error.
func (f *MonitorFault) Error() string {
	return fmt.Sprintf("monitor fault [%s] hart%d at pc=%#x (v%s): %s",
		f.Kind, f.Hart, f.PC, f.VirtMode, f.Reason)
}

// maxFaults bounds the fault log so a fault storm cannot exhaust memory;
// FaultCount keeps the true total.
const maxFaults = 256

// newFault snapshots the machine state into a fault record.
func (m *Monitor) newFault(ctx *HartCtx, kind FaultKind, reason string) *MonitorFault {
	h := ctx.Hart
	res := uint64(0)
	if ctx.World() == WorldFirmware && h.Cycles >= ctx.fwEnterCycles {
		res = h.Cycles - ctx.fwEnterCycles
	}
	return &MonitorFault{
		Kind:      kind,
		Hart:      h.ID,
		Reason:    reason,
		PC:        h.PC,
		VirtMode:  ctx.VirtMode,
		Cycles:    h.Cycles,
		Residency: res,
		Dump:      dumpState(ctx),
	}
}

// recordFault appends to the bounded fault log.
func (m *Monitor) recordFault(f *MonitorFault) {
	m.FaultCount++
	m.observeFault(f)
	if len(m.Faults) < maxFaults {
		m.Faults = append(m.Faults, f)
	}
}

// faultJustRecorded reports whether the most recent fault was recorded on
// this hart at the current cycle count — used by halt to avoid recording
// the same event twice when a containment path escalates to a stop.
func (m *Monitor) faultJustRecorded(ctx *HartCtx) bool {
	if len(m.Faults) == 0 {
		return false
	}
	last := m.Faults[len(m.Faults)-1]
	return last.Hart == ctx.Hart.ID && last.Cycles == ctx.Hart.Cycles
}

// dumpState renders a full machine-state dump: physical hart, virtual CSR
// shadow, and monitor bookkeeping.
func dumpState(ctx *HartCtx) string {
	h, v := ctx.Hart, ctx.V
	var b strings.Builder
	fmt.Fprintf(&b, "hart%d pc=%#x mode=%v vmode=%v world=%v cycles=%d instret=%d sinstret=%d\n",
		h.ID, h.PC, h.Mode, ctx.VirtMode, ctx.World(), h.Cycles, h.Instret, h.SInstret)
	fmt.Fprintf(&b, "flags: waiting=%v vwaiting=%v degraded=%v oslive=%v vtrapdepth=%d\n",
		h.Waiting, ctx.VirtWaiting, ctx.Degraded, ctx.osLive, ctx.vTrapDepth)
	for i := 0; i < 32; i += 4 {
		fmt.Fprintf(&b, "x%-2d %016x %016x %016x %016x\n",
			i, h.Regs[i], h.Regs[i+1], h.Regs[i+2], h.Regs[i+3])
	}
	c := &h.CSR
	fmt.Fprintf(&b, "phys: mstatus=%#x mie=%#x mip=%#x mepc=%#x mcause=%#x mtval=%#x mtvec=%#x\n",
		c.Mstatus, c.Mie, c.Mip(h.Time()), c.Mepc, c.Mcause, c.Mtval, c.Mtvec)
	fmt.Fprintf(&b, "phys: medeleg=%#x mideleg=%#x satp=%#x stvec=%#x sepc=%#x scause=%#x\n",
		c.Medeleg, c.Mideleg, c.Satp, c.Stvec, c.Sepc, c.Scause)
	fmt.Fprintf(&b, "virt: mstatus=%#x mie=%#x mipSW=%#x mepc=%#x mcause=%#x mtval=%#x mtvec=%#x\n",
		v.Mstatus, v.Mie, v.MipSW, v.Mepc, v.Mcause, v.Mtval, v.Mtvec)
	fmt.Fprintf(&b, "virt: medeleg=%#x mscratch=%#x satp=%#x stvec=%#x sepc=%#x scause=%#x\n",
		v.Medeleg, v.Mscratch, v.Satp, v.Stvec, v.Sepc, v.Scause)
	for i := 0; i < v.PMP.NumEntries(); i++ {
		if v.PMP.Cfg(i) != 0 || v.PMP.Addr(i) != 0 {
			fmt.Fprintf(&b, "vpmp%d: cfg=%#x addr=%#x\n", i, v.PMP.Cfg(i), v.PMP.Addr(i))
		}
	}
	return b.String()
}
