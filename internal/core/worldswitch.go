package core

import (
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// World switches (paper §4.1): from firmware to the OS the monitor installs
// the virtual CSRs into the physical registers — except those required for
// emulation or isolation, such as PMP and mie — and from the OS to firmware
// it loads the physical CSRs into the virtual copies and installs
// well-defined values in the physical registers. Both directions reprogram
// the PMP file and flush the TLB.

// monitorMIE is the physical mie value the monitor keeps for itself: it
// intercepts all M-mode interrupts.
const monitorMIE = rv.MIntMask

// physTrapCtl is the set of mstatus trap-control bits the monitor mirrors
// from the virtual mstatus into the physical one when entering the OS
// world, so TVM/TW/TSR-gated supervisor instructions trap back to the
// virtual firmware exactly as they would on the reference machine.
const physTrapCtl = uint64(1)<<rv.MstatusTVM | 1<<rv.MstatusTW | 1<<rv.MstatusTSR

// switchWorld performs the transition bookkeeping for entering `to`.
func (m *Monitor) switchWorld(ctx *HartCtx, to World) {
	ctx.Stats.WorldSwitches++
	m.observeWorldSwitch(ctx, to) // before fwEnterCycles is re-armed below
	m.Policy.OnWorldSwitch(ctx, to)
	if m.Opts.OnWorldSwitch != nil {
		m.Opts.OnWorldSwitch(ctx, to)
	}
	if to == WorldFirmware {
		m.saveOSState(ctx)
		// Arm the watchdog budget and remember where the OS resumes if the
		// firmware never comes back: the trap entry latched the OS PC in
		// mepc and its mode in MPP.
		ctx.fwEnterCycles = ctx.Hart.Cycles
		ctx.osEntry = osResume{
			PC:   ctx.Hart.CSR.Mepc,
			Mode: rv.MPP(ctx.Hart.CSR.Mstatus),
		}
	} else {
		// Resync the OS-progress baseline so the firmware's own retirement
		// is not mistaken for OS progress. The cycle clock is only armed on
		// the first entry — sliding it per-entry would blind the watchdog
		// to trap ping-pong, where the worlds alternate rapidly but the OS
		// never retires an instruction.
		ctx.lastOSInstret = ctx.Hart.Instret
		if !ctx.osLive {
			ctx.osLive = true
			ctx.osProgressCycles = ctx.Hart.Cycles
		}
		ctx.pendingSBI = nil
	}
	m.installPhysCSRs(ctx, to)
	m.installPMP(ctx, to)
	m.checkWallAfterSwitch(ctx)
	ctx.Hart.ChargeCycles(ctx.Hart.Cfg.Cost.TLBFlush)
	if m.Opts.Trace != nil { // skip building the event string when nobody listens
		m.trace("world-switch:"+to.String(), ctx)
	}
}

// saveOSState loads the physical S-mode CSRs into the virtual copies
// (OS → firmware direction). While the firmware world runs, the virtual
// shadow is the authoritative home of the OS's supervisor state, and the
// firmware may access it through emulated CSR instructions exactly as
// M-mode software could on hardware.
func (m *Monitor) saveOSState(ctx *HartCtx) {
	h, v := ctx.Hart, ctx.V
	c := &h.CSR
	v.Stvec = c.Stvec
	v.Scounteren = c.Scounteren
	v.Senvcfg = c.Senvcfg
	v.Sscratch = c.Sscratch
	v.Sepc = c.Sepc
	v.Scause = c.Scause
	v.Stval = c.Stval
	v.Satp = c.Satp
	if h.Cfg.HasSstc {
		v.Stimecmp = c.Stimecmp
	}
	// The OS's sstatus fields move into the virtual mstatus.
	v.Mstatus = v.Mstatus&^vSstatusMask | c.Sstatus()&vSstatusMask
	// The OS's sie bits live in the virtual mie (sie == mie & mideleg, and
	// the virtual mideleg hardwires the S bits).
	v.Mie = v.Mie&^rv.SIntMask | c.Mie&rv.SIntMask
	// The OS's software-pending S bits (SSIP, and STIP set by the fast
	// path) are carried over too — losing them here is exactly the
	// "losses of virtual interrupts" bug class the paper's verification
	// caught (§1, §6.5).
	v.MipSW = v.MipSW&^rv.SIntMask |
		c.Mip(h.Time())&(1<<rv.IntSSoft|1<<rv.IntSTimer)
	if h.Cfg.HasH {
		m.saveHState(ctx)
	}
	m.chargeCSRTransfer(ctx)
}

// installPhysCSRs programs the physical registers for the target world.
func (m *Monitor) installPhysCSRs(ctx *HartCtx, to World) {
	h, v := ctx.Hart, ctx.V
	c := &h.CSR
	if to == WorldFirmware {
		// Well-defined values for vM execution: nothing delegated (all
		// traps reach the monitor), bare addressing, no S-state visible.
		c.Medeleg = 0
		c.Mideleg = 0
		c.Mcounteren = 0 // vM counter reads are emulated
		c.Mie = monitorMIE
		c.WriteSatp(0)
		// Clear the supervisor-visible status bits; firmware state is
		// entirely virtual.
		c.WriteSstatus(0)
		c.Mstatus &^= physTrapCtl // physical U-mode traps regardless
		c.SetMip(0)
		if h.Cfg.HasH {
			// VS-interrupt sources must not fire while the firmware world
			// runs (mideleg is 0, so a pending VS bit would reach the
			// monitor as an M interrupt storm); the guest's hvip lives in
			// the shadow until the OS world returns. A stale hstatus.HU
			// would let the deprivileged vM execute hlv/hsv natively.
			c.Hvip = 0
			c.Hstatus &^= 1 << rv.HstatusHU
			c.Mstatus &^= 1 << rv.MstatusMPV // vM always runs with V=0
		}
		return
	}
	// Entering the OS: install the virtual supervisor state physically.
	c.Stvec = v.Stvec
	c.Scounteren = v.Scounteren
	c.Senvcfg = v.Senvcfg
	c.Sscratch = v.Sscratch
	c.Sepc = v.Sepc
	c.Scause = v.Scause
	c.Stval = v.Stval
	c.WriteSatp(v.Satp)
	if h.Cfg.HasSstc {
		c.Stimecmp = v.Stimecmp
		c.Menvcfg = v.Menvcfg & (1 << 63)
	}
	c.WriteSstatus(v.sstatus())
	// The trap-control bits (TVM, TW, TSR) the firmware configured must
	// bind the physical supervisor too: a virtual TSR=1 means the OS's
	// sret has to reach the firmware, so the physical bit mirrors the
	// virtual one. (Without this the OS would execute wfi/sret/satp
	// accesses natively that the reference machine traps — a faithfulness
	// gap the lockstep fuzzer flags immediately.)
	c.Mstatus = c.Mstatus&^physTrapCtl | v.Mstatus&physTrapCtl
	// Counter enables as the firmware configured them, so OS reads of
	// cycle/instret run natively.
	c.Mcounteren = v.Mcounteren
	// Exceptions the firmware delegated go natively to the OS; all others
	// trap to the monitor for re-injection.
	c.Medeleg = v.Medeleg
	// All S interrupts are force-delegated (paper §4.3); with H the VS
	// interrupts are hardwired-delegated too.
	c.Mideleg = rv.SIntMask
	if h.Cfg.HasH {
		c.Mideleg |= rv.VSIntMask
	}
	c.Mie = monitorMIE | v.Mie&rv.SIntMask
	c.SetMip(v.MipSW & (1<<rv.IntSSoft | 1<<rv.IntSTimer))
	if h.Cfg.HasH {
		m.installHState(ctx)
	}
	m.chargeCSRTransfer(ctx)
}

// chargeCSRTransfer accounts the cost of moving the shadow CSR file.
func (m *Monitor) chargeCSRTransfer(ctx *HartCtx) {
	n := uint64(csrTransferCount)
	if ctx.Hart.Cfg.HasH {
		n += hCSRCount
	}
	ctx.Hart.ChargeCycles(n * ctx.Hart.Cfg.Cost.CSRXfer)
}

// csrTransferCount approximates the number of CSRs moved per world switch;
// the paper's Miralis supports 84 CSRs, a large share of which are copied
// on each transition.
const (
	csrTransferCount = 84
	hCSRCount        = 21
)

func (m *Monitor) saveHState(ctx *HartCtx) {
	c, v := &ctx.Hart.CSR, ctx.V
	v.Hstatus, v.Hedeleg, v.Hideleg = c.Hstatus, c.Hedeleg, c.Hideleg
	v.Hie, v.Hcounteren, v.Hgeie = c.Hie, c.Hcounteren, c.Hgeie
	v.Htval, v.Hip, v.Hvip, v.Htinst = c.Htval, c.Hip, c.Hvip, c.Htinst
	v.Hgatp, v.Henvcfg = c.Hgatp, c.Henvcfg
	v.Vsstatus, v.Vsie, v.Vstvec, v.Vsscratch = c.Vsstatus, c.Vsie, c.Vstvec, c.Vsscratch
	v.Vsepc, v.Vscause, v.Vstval, v.Vsip, v.Vsatp = c.Vsepc, c.Vscause, c.Vstval, c.Vsip, c.Vsatp
}

func (m *Monitor) installHState(ctx *HartCtx) {
	c, v := &ctx.Hart.CSR, ctx.V
	c.Hstatus, c.Hedeleg, c.Hideleg = v.Hstatus, v.Hedeleg, v.Hideleg
	c.Hie, c.Hcounteren, c.Hgeie = v.Hie, v.Hcounteren, v.Hgeie
	c.Htval, c.Hip, c.Hvip, c.Htinst = v.Htval, v.Hip, v.Hvip, v.Htinst
	c.Hgatp, c.Henvcfg = v.Hgatp, v.Henvcfg
	c.Vsstatus, c.Vsie, c.Vstvec, c.Vsscratch = v.Vsstatus, v.Vsie, v.Vstvec, v.Vsscratch
	c.Vsepc, c.Vscause, c.Vstval, c.Vsip, c.Vsatp = v.Vsepc, v.Vscause, v.Vstval, v.Vsip, v.Vsatp
}

// installPMP programs the physical PMP file for the target world
// (paper Fig. 5). This is the cfg function of the faithful-execution
// criterion: internal/verif checks it against the reference model.
func (m *Monitor) installPMP(ctx *HartCtx, to World) {
	h := ctx.Hart
	phys := h.CSR.PMP
	cost := &h.Cfg.Cost
	n := phys.NumEntries()

	// Entry 0: Miralis self-protection — the Dorami wall. No permissions
	// and LOCKED: the monitor's own state (fault ring, boot snapshots,
	// vPMP shadow — everything inside [MiralisBase, MiralisBase+MiralisSize))
	// is walled off from every simulated mode, M included. The monitor
	// itself runs as host code and reprograms entries through Force*,
	// which models the hardware reset path and ignores locks; no simulated
	// instruction can weaken this entry short of a power cycle.
	phys.ForceAddr(pmpSelf, pmp.NAPOTAddr(MiralisBase, MiralisSize))
	phys.ForceCfg(pmpSelf, wallCfg)

	// Entry 1: virtual-device window over the CLINT: all firmware/OS
	// accesses trap for emulation.
	phys.ForceAddr(pmpDevices, pmp.NAPOTAddr(clintBase, clintSize))
	phys.ForceCfg(pmpDevices, pmp.ANapot<<3)

	// Optional PLIC window (experimental vPLIC, §4.3).
	if i := m.pmpPlic(); i >= 0 {
		phys.ForceAddr(i, pmp.NAPOTAddr(plicBase, plicSize))
		phys.ForceCfg(i, pmp.ANapot<<3)
	}
	// Optional IOPMP window (§4.3).
	if i := m.pmpIOPMP(); i >= 0 {
		phys.ForceAddr(i, pmp.NAPOTAddr(iopmpBase, iopmpSize))
		phys.ForceCfg(i, pmp.ANapot<<3)
	}

	// Policy slots.
	rules := m.Policy.PolicyPMP(ctx, to)
	p0 := m.pmpPolicy0()
	for i := 0; i < PolicySlots; i++ {
		if i < len(rules) {
			phys.ForceAddr(p0+i, rules[i].Addr)
			phys.ForceCfg(p0+i, rules[i].Cfg)
		} else {
			phys.ForceCfg(p0+i, 0)
			phys.ForceAddr(p0+i, 0)
		}
	}

	// Hardwired zero address so virtual PMP 0 in ToR mode sees a base of
	// 0, as the architecture defines for physical PMP 0.
	phys.ForceCfg(m.pmpZero(), 0)
	phys.ForceAddr(m.pmpZero(), 0)

	// Virtual PMP entries, installed at lower priority.
	mprv := to == WorldFirmware && ctx.mprvEmulationActive()
	vFirst := m.pmpVirtFirst()
	vp := ctx.V.PMP
	for i := 0; i < vp.NumEntries(); i++ {
		cfg := vp.Cfg(i)
		if to == WorldFirmware && cfg&pmp.CfgL == 0 {
			// Unlocked PMP entries do not constrain M-mode: grant RWX
			// while preserving the address-matching mode so the virtual
			// hardware behaves like the reference machine.
			if pmp.AMode(cfg) != pmp.AOff {
				cfg = cfg&^0x7 | pmp.CfgR | pmp.CfgW | pmp.CfgX
			}
		}
		if mprv {
			// Under MPRV emulation every firmware load and store must
			// trap: strip the data permissions so no higher-priority
			// virtual entry shadows the execute-only window below.
			cfg &^= pmp.CfgR | pmp.CfgW
		}
		phys.ForceAddr(vFirst+i, vp.Addr(i))
		phys.ForceCfg(vFirst+i, cfg)
	}

	// Last entry: the all-memory window.
	last := n - 1
	switch {
	case to == WorldFirmware && ctx.mprvEmulationActive():
		// MPRV emulation (paper §4.2): execute-only over all memory makes
		// every firmware load/store trap so the monitor can perform the
		// translated access on its behalf.
		phys.ForceAddr(last, rv.Mask(54))
		phys.ForceCfg(last, pmp.CfgX|pmp.ANapot<<3)
		ctx.mprvActive = true
	case to == WorldFirmware:
		// vM-mode sees all memory RWX, as M-mode would on hardware.
		phys.ForceAddr(last, rv.Mask(54))
		phys.ForceCfg(last, pmp.CfgR|pmp.CfgW|pmp.CfgX|pmp.ANapot<<3)
		ctx.mprvActive = false
	default:
		// Direct execution: S/U see exactly the virtual PMP verdicts.
		phys.ForceCfg(last, 0)
		phys.ForceAddr(last, 0)
		ctx.mprvActive = false
	}

	h.ChargeCycles(uint64(n) * cost.PMPWrite)

	// Rebuild the protection-only view used by MPRV emulation: the same
	// self/device/policy entries, backed by an allow-all entry so only the
	// monitor's and policy's protections decide. The file is reused across
	// world switches (every entry below is rewritten each time).
	pf := ctx.protFile
	if pf == nil {
		pf = pmp.NewFile(PolicySlots + 3)
	}
	pf.ForceAddr(0, pmp.NAPOTAddr(MiralisBase, MiralisSize))
	pf.ForceCfg(0, wallCfg)
	pf.ForceAddr(1, pmp.NAPOTAddr(clintBase, clintSize))
	pf.ForceCfg(1, pmp.ANapot<<3)
	for i := 0; i < PolicySlots; i++ {
		if i < len(rules) {
			pf.ForceAddr(2+i, rules[i].Addr)
			pf.ForceCfg(2+i, rules[i].Cfg)
		} else {
			pf.ForceCfg(2+i, 0)
			pf.ForceAddr(2+i, 0)
		}
	}
	pf.ForceAddr(2+PolicySlots, rv.Mask(54))
	pf.ForceCfg(2+PolicySlots, pmp.CfgR|pmp.CfgW|pmp.CfgX|pmp.ANapot<<3)
	ctx.protFile = pf
}

// mprvEmulationActive reports whether the virtual firmware has MPRV set
// with an effective privilege below M, requiring the trap-everything
// window.
func (c *HartCtx) mprvEmulationActive() bool {
	return c.V.Mstatus&(1<<rv.MstatusMPRV) != 0 && c.V.MPP() != rv.ModeM
}

// Device location constants (mirrors hart's memory map without importing
// the values into every call site).
const (
	clintBase = 0x0200_0000
	clintSize = 0x10000
	plicBase  = 0x0C00_0000
	plicSize  = 0x40_0000
	iopmpBase = 0x3100_0000
	iopmpSize = 0x1000
)

// resume returns control to the hart: if the virtual mode changed worlds,
// the world switch is performed; then the hart is launched at the virtual
// machine's PC in the appropriate physical mode.
func (m *Monitor) resume(ctx *HartCtx, prevWorld World, vpc uint64) {
	h := ctx.Hart
	if ctx.World() != prevWorld {
		m.switchWorld(ctx, ctx.World())
	} else if ctx.World() == WorldFirmware && ctx.mprvActive != ctx.mprvEmulationActive() {
		// MPRV toggled without a world switch: reprogram the window.
		m.installPMP(ctx, WorldFirmware)
		h.ChargeCycles(h.Cfg.Cost.TLBFlush)
	}
	var physMode rv.Mode
	if ctx.World() == WorldFirmware {
		physMode = rv.ModeU // vM executes in physical U
	} else {
		physMode = ctx.VirtMode
	}
	h.CSR.Mepc = vpc &^ 3
	h.CSR.Mstatus = rv.WithMPP(h.CSR.Mstatus, physMode)
	if h.Cfg.HasH {
		// ReturnMRET derives the physical V bit from mstatus.MPV: set it
		// for a guest (VS/VU) resuming direct execution, clear it for the
		// firmware world and for the host supervisor.
		h.CSR.Mstatus &^= 1 << rv.MstatusMPV
		if ctx.World() == WorldOS && ctx.VirtV {
			h.CSR.Mstatus |= 1 << rv.MstatusMPV
		}
	}
	// Park the physical hart while the virtual firmware waits in wfi; any
	// hardware interrupt re-enters the monitor, which re-evaluates the
	// virtual wait condition.
	h.Waiting = ctx.World() == WorldFirmware && ctx.VirtWaiting
	h.ChargeCycles(h.Cfg.Cost.MonitorExit)
	h.ReturnMRET()
}
