package core

import (
	"testing"

	"govfm/internal/asm"
	"govfm/internal/dev/plic"
	"govfm/internal/hart"
	"govfm/internal/rv"
)

// buildPlicFirmware assembles a firmware that routes PLIC source 5 to its
// machine context, waits for the external interrupt, claims it, records
// the claimed source, completes it, and exits.
func buildPlicFirmware(base uint64) []byte {
	a := asm.New(base)
	a.Label("start")
	a.La(asm.T0, "trap")
	a.Csrw(rv.CSRMtvec, asm.T0)
	// priority[5] = 3
	a.Li(asm.T0, hart.PlicBase+4*5)
	a.Li(asm.T1, 3)
	a.Sw(asm.T1, asm.T0, 0)
	// enable source 5 in hart 0's M context
	a.Li(asm.T0, hart.PlicBase+plic.EnableOff)
	a.Li(asm.T1, 1<<5)
	a.Sw(asm.T1, asm.T0, 0)
	// MEIE + global MIE
	a.Li(asm.T0, 1<<rv.IntMExt)
	a.Csrw(rv.CSRMie, asm.T0)
	a.Csrrsi(asm.X0, rv.CSRMstatus, 1<<rv.MstatusMIE)
	a.Label("wait")
	a.Wfi()
	a.J("wait")
	a.Label("trap")
	// claim
	a.Li(asm.T0, hart.PlicBase+plic.ContextOff+4)
	a.Lw(asm.T1, asm.T0, 0)
	a.La(asm.T2, "result")
	a.Sd(asm.T1, asm.T2, 0)
	// complete
	a.Sw(asm.T1, asm.T0, 0)
	// exit pass
	a.Li(asm.T0, hart.ExitBase)
	a.Li(asm.T1, hart.ExitPass)
	a.Sd(asm.T1, asm.T0, 0)
	a.Label("hang")
	a.J("hang")
	a.Align(8)
	a.Label("result")
	a.Space(8)
	return a.MustAssemble()
}

// runPlicFirmware executes the PLIC firmware (native or under the monitor
// with the virtual PLIC) and returns the recorded claim plus the monitor.
func runPlicFirmware(t *testing.T, virtualize bool) (uint64, *Monitor) {
	t.Helper()
	cfg := hart.VisionFive2()
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, DramSize)
	if err != nil {
		t.Fatal(err)
	}
	img := buildPlicFirmware(FirmwareBase)
	if err := m.LoadImage(FirmwareBase, img); err != nil {
		t.Fatal(err)
	}
	var mon *Monitor
	if virtualize {
		mon, err = Attach(m, Options{
			FirmwareEntry: FirmwareBase, VirtualizePLIC: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		mon.Boot()
	} else {
		m.Reset(FirmwareBase)
	}
	// Let the firmware set up and park, then assert the device line.
	m.Run(5000)
	if ok, _ := m.Halted(); ok {
		t.Fatal("machine halted before the interrupt fired")
	}
	m.Plic.Raise(5)
	m.Run(500_000)
	if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
		t.Fatalf("virtualize=%v: %v %q (pc=%#x)", virtualize, ok, reason, m.Harts[0].PC)
	}
	// The result lives right after the code in the firmware image.
	resultAddr := FirmwareBase + uint64(len(img)) - 8
	v, okLoad := m.Bus.Load(resultAddr, 8)
	if !okLoad {
		t.Fatal("result unreadable")
	}
	return v, mon
}

func TestVirtualPLICNative(t *testing.T) {
	claimed, _ := runPlicFirmware(t, false)
	if claimed != 5 {
		t.Errorf("native claim = %d, want 5", claimed)
	}
}

func TestVirtualPLICVirtualized(t *testing.T) {
	claimed, mon := runPlicFirmware(t, true)
	if claimed != 5 {
		t.Errorf("virtualized claim = %d, want 5", claimed)
	}
	if mon.vplic.Loads == 0 || mon.vplic.Writes == 0 {
		t.Error("firmware PLIC accesses must be mediated by the virtual PLIC")
	}
	if mon.TotalStats().VirtInterrupts == 0 {
		t.Error("the external interrupt must be injected virtually")
	}
}

func TestVirtualPLICCostsOneVPMP(t *testing.T) {
	cfg := hart.VisionFive2()
	cfg.Harts = 1
	m, _ := hart.NewMachine(cfg, DramSize)
	base, err := Attach(m, Options{FirmwareEntry: FirmwareBase})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := hart.VisionFive2()
	cfg2.Harts = 1
	m2, _ := hart.NewMachine(cfg2, DramSize)
	withPlic, err := Attach(m2, Options{FirmwareEntry: FirmwareBase, VirtualizePLIC: true})
	if err != nil {
		t.Fatal(err)
	}
	if withPlic.NumVirtPMP() != base.NumVirtPMP()-1 {
		t.Errorf("vPLIC must cost exactly one virtual PMP entry: %d vs %d",
			withPlic.NumVirtPMP(), base.NumVirtPMP())
	}
}

// TestVirtualPLICFiltersCrossHartWrites: the mediation filter must drop a
// firmware write to another hart's machine context.
func TestVirtualPLICFiltersCrossHartWrites(t *testing.T) {
	cfg := hart.VisionFive2()
	cfg.Harts = 2
	m, _ := hart.NewMachine(cfg, DramSize)
	mon, err := Attach(m, Options{FirmwareEntry: FirmwareBase, VirtualizePLIC: true})
	if err != nil {
		t.Fatal(err)
	}
	vp := mon.vplic
	// Hart 0 writing hart 1's M-context enable word (context 2).
	off := uint64(plic.EnableOff + 2*0x80)
	if !vp.Store(0, off, 4, 1<<7) {
		t.Fatal("filtered store must still be accepted")
	}
	if v, _ := m.Plic.Load(off, 4); v != 0 {
		t.Error("cross-hart M-context write must be filtered, not forwarded")
	}
	// Its own context is forwarded.
	if !vp.Store(0, plic.EnableOff, 4, 1<<7) {
		t.Fatal("own-context store failed")
	}
	if v, _ := m.Plic.Load(plic.EnableOff, 4); v != 1<<7 {
		t.Error("own-context write must be forwarded")
	}
}
