package core

import (
	"govfm/internal/obs"
	"govfm/internal/rv"
)

// Observability wiring for the monitor: metric collectors over the Stats
// the monitor already keeps, per-extension SBI and per-op emulation
// counters, and structured events on the simulated timeline — world
// residency spans, SBI instants, containment/watchdog/fault instants.
// Everything here follows the invisibility discipline: no simulated
// cycles are charged and no architectural or virtual state is touched,
// so runs are bit-identical with an observer attached or not.

// emuNumOps is the number of EmuOp values (EmuHLSV is the last).
const emuNumOps = int(EmuHLSV) + 1

// emuOpNames labels each EmuOp for metrics.
var emuOpNames = [emuNumOps]string{
	EmuIllegal: "illegal",
	EmuCSRRW:   "csrrw",
	EmuCSRRS:   "csrrs",
	EmuCSRRC:   "csrrc",
	EmuCSRRWI:  "csrrwi",
	EmuCSRRSI:  "csrrsi",
	EmuCSRRCI:  "csrrci",
	EmuMRET:    "mret",
	EmuSRET:    "sret",
	EmuWFI:     "wfi",
	EmuECALL:   "ecall",
	EmuEBREAK:  "ebreak",
	EmuSFENCE:  "sfence",
	EmuFENCE:   "fence",
	EmuFENCEI:  "fencei",
	EmuLoad:    "load",
	EmuStore:   "store",
	EmuAmo:     "amo",
	EmuHFenceV: "hfence.vvma",
	EmuHFenceG: "hfence.gvma",
	EmuHLSV:    "hlsv",
}

// sbiExtNames labels the SBI extensions the guests exercise; unknown EIDs
// fall back to "other". The table doubles as the precomputed event-name
// source so the per-call paths never build strings.
var sbiExtNames = map[uint64]string{
	rv.SBIExtBase:          "BASE",
	rv.SBIExtTimer:         "TIME",
	rv.SBIExtIPI:           "IPI",
	rv.SBIExtRfence:        "RFNC",
	rv.SBIExtHSM:           "HSM",
	rv.SBIExtReset:         "SRST",
	rv.SBIExtDebug:         "DBCN",
	rv.SBILegacySetTimer:   "legacy-timer",
	rv.SBILegacyConsolePut: "legacy-putchar",
	rv.SBILegacyConsoleGet: "legacy-getchar",
	rv.SBILegacyClearIPI:   "legacy-clear-ipi",
	rv.SBILegacySendIPI:    "legacy-send-ipi",
	rv.SBILegacyShutdown:   "legacy-shutdown",
	rv.SBIExtKeystone:      "keystone",
	rv.SBIExtCoveHost:      "COVH",
	rv.SBIExtCoveGuest:     "COVG",
}

// sbiEventNames precomputes the "sbi:<ext>" instant names.
var sbiEventNames = func() map[uint64]string {
	m := make(map[uint64]string, len(sbiExtNames))
	for eid, n := range sbiExtNames {
		m[eid] = "sbi:" + n
	}
	return m
}()

func sbiExtName(eid uint64) string {
	if n, ok := sbiExtNames[eid]; ok {
		return n
	}
	return "other"
}

// faultEventNames precomputes the "fault:<kind>" instant names.
var faultEventNames = func() map[FaultKind]string {
	m := map[FaultKind]string{}
	for _, k := range []FaultKind{FaultPanic, FaultDoubleFault, FaultWatchdog, FaultLockup, FaultHalt, FaultWallBreach} {
		m[k] = "fault:" + k.String()
	}
	return m
}()

// World span names, precomputed.
var worldSpanNames = [2]string{WorldFirmware: "world:firmware", WorldOS: "world:os"}

// worldTrack returns hart id's world-residency track.
func worldTrack(id int) int32 { return obs.WorldTrackBase + int32(id) }

// tr returns the tracer, or nil when no observer is attached (all tracer
// methods are nil-safe, so call sites stay unconditional).
func (m *Monitor) tr() *obs.Tracer {
	if m.obsv == nil {
		return nil
	}
	return m.obsv.Trace
}

// attachObs wires an observer into the monitor (called from Attach when
// Options.Obs is set): the registry learns a collector over the per-hart
// Stats and SBI/emulation breakdowns, and the firmware-residency
// histogram is created.
func (m *Monitor) attachObs(o *obs.Observer) {
	m.obsv = o
	r := o.Metrics
	if r == nil {
		return
	}
	m.fwResidency = r.Histogram("mon.fw_residency_cycles")
	r.Collect(func(emit func(name string, value uint64)) {
		s := m.TotalStats()
		emit("mon.fw_traps", s.FirmwareTraps)
		emit("mon.os_traps", s.OSTraps)
		emit("mon.emulations", s.Emulations)
		emit("mon.world_switches", s.WorldSwitches)
		emit("mon.fastpath_hits", s.FastPathHits)
		emit("mon.virt_interrupts", s.VirtInterrupts)
		emit("mon.mmio_emulations", s.MMIOEmulations)
		emit("mon.fw_restarts", s.FirmwareRestarts)
		emit("mon.watchdog_fires", s.WatchdogFires)
		emit("mon.degraded_calls", s.DegradedCalls)
		emit("mon.faults", uint64(m.FaultCount))
		var contained, degraded uint64
		for _, f := range m.Faults {
			if f.Contained {
				contained++
			}
		}
		emit("mon.faults.contained", contained)
		emuByOp := [emuNumOps]uint64{}
		sbiByExt := map[string]uint64{}
		for _, c := range m.Ctx {
			if c.Degraded {
				degraded++
			}
			for op, n := range c.EmuByOp {
				emuByOp[op] += n
			}
			for ext, n := range c.SBIByExt {
				sbiByExt[ext] += n
			}
		}
		emit("mon.degraded_harts", degraded)
		for op, n := range emuByOp {
			if n != 0 {
				emit("mon.emu."+emuOpNames[op], n)
			}
		}
		for ext, n := range sbiByExt {
			emit("mon.sbi."+ext, n)
		}
	})
}

// observeSBI counts an OS SBI call by extension and emits its instant on
// the monitor track (args: EID, FID, a0).
func (m *Monitor) observeSBI(ctx *HartCtx, ext, fn, a0 uint64) {
	if ctx.SBIByExt != nil {
		ctx.SBIByExt[sbiExtName(ext)]++
	}
	t := m.tr()
	if t == nil {
		return
	}
	name, ok := sbiEventNames[ext]
	if !ok {
		name = "sbi:other"
	}
	t.Emit(obs.Event{
		Kind: obs.KInstant, Track: obs.MonitorTrack, TS: ctx.Hart.Cycles,
		Name: name, Args: [4]uint64{ext, fn, a0, 0},
	})
}

// observeWorldSwitch maintains hart's world-residency span and, when the
// firmware world is being left, feeds the residency histogram. Called
// before switchWorld's own bookkeeping so fwEnterCycles still marks the
// entry point of the span being closed.
func (m *Monitor) observeWorldSwitch(ctx *HartCtx, to World) {
	if to == WorldOS && m.fwResidency != nil &&
		ctx.Hart.Cycles >= ctx.fwEnterCycles {
		m.fwResidency.Observe(ctx.Hart.Cycles - ctx.fwEnterCycles)
	}
	t := m.tr()
	if t == nil {
		return
	}
	wt := worldTrack(ctx.Hart.ID)
	t.End(wt, ctx.Hart.Cycles) // orphan at the first switch; exporter drops it
	t.Begin(wt, ctx.Hart.Cycles, worldSpanNames[to])
}

// observeBoot opens the initial firmware world span for every hart.
func (m *Monitor) observeBoot() {
	t := m.tr()
	if t == nil {
		return
	}
	for _, ctx := range m.Ctx {
		t.Instant(obs.MonitorTrack, ctx.Hart.Cycles, "boot")
		t.Begin(worldTrack(ctx.Hart.ID), ctx.Hart.Cycles, worldSpanNames[WorldFirmware])
	}
}

// observeContain emits a containment-outcome instant on the monitor track.
func (m *Monitor) observeContain(ctx *HartCtx, name string) {
	t := m.tr()
	if t == nil {
		return
	}
	t.Instant(obs.MonitorTrack, ctx.Hart.Cycles, name)
}

// observeFault emits a fault instant; recordFault calls it so every
// structured fault shows on the timeline.
func (m *Monitor) observeFault(f *MonitorFault) {
	t := m.tr()
	if t == nil {
		return
	}
	name, ok := faultEventNames[f.Kind]
	if !ok {
		name = "fault:other"
	}
	t.Emit(obs.Event{
		Kind: obs.KInstant, Track: obs.MonitorTrack, TS: f.Cycles,
		Name: name, Args: [4]uint64{uint64(f.Hart), f.PC, 0, 0},
	})
}
