package core

import (
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// VirtCSRs is the shadow copy of the virtual machine's control and status
// registers (paper §4.1: "Miralis maintains a shadow copy of the CSRs on
// which the instruction emulator operates"). The virtual firmware only ever
// sees and mutates these; the physical registers are configured separately
// by the world-switch code.
//
// The WARL semantics implemented here are the monitor's own rendering of
// the privileged specification — this is exactly the code verified against
// internal/refmodel by the faithful-emulation tests.
type VirtCSRs struct {
	Mstatus       uint64
	Medeleg       uint64
	Mideleg       uint64 // S bits hardwired 1: Miralis forces delegation (§4.3)
	Mie           uint64
	Mtvec         uint64
	Mcounteren    uint64
	Menvcfg       uint64
	Mcountinhibit uint64
	Mscratch      uint64
	Mepc          uint64
	Mcause        uint64
	Mtval         uint64
	Mtinst        uint64
	Mtval2        uint64
	Mseccfg       uint64

	Stvec      uint64
	Scounteren uint64
	Senvcfg    uint64
	Sscratch   uint64
	Sepc       uint64
	Scause     uint64
	Stval      uint64
	Satp       uint64
	Stimecmp   uint64

	// Hypervisor shadow state (present when the platform has H).
	Hstatus, Hedeleg, Hideleg, Hie, Hcounteren, Hgeie uint64
	Htval, Hip, Hvip, Htinst, Hgatp, Henvcfg          uint64
	Vsstatus, Vsie, Vstvec, Vsscratch                 uint64
	Vsepc, Vscause, Vstval, Vsip, Vsatp               uint64

	Custom map[uint16]uint64

	// MipSW holds the software-writable virtual pending bits; the virtual
	// CLINT contributes vMSIP/vMTIP on reads (see VirtClint).
	MipSW uint64

	// PMP is the virtual PMP file exposed to the firmware.
	PMP *pmp.File

	// Counter state for the virtual machine.
	Mcycle, Minstret uint64

	// hasH records that the platform implements the hypervisor extension
	// (set once at construction; drives the H-aware WARL masks).
	hasH bool
}

// Writable-field masks, written out independently of internal/hart (these
// are the monitor's own reading of the spec and are cross-checked against
// the reference model).
const (
	vMstatusWritable = uint64(1)<<1 | 1<<3 | 1<<5 | 1<<7 | 1<<8 |
		3<<11 | 1<<17 | 1<<18 | 1<<19 | 1<<20 | 1<<21 | 1<<22
	vMedelegMask = uint64(0xB3FF)
	vMieMask     = uint64(0xAAA)
	vMipSWMask   = uint64(0x222)
	vUXLFixed    = uint64(2)<<32 | uint64(2)<<34
	vSstatusMask = uint64(1)<<1 | 1<<5 | 1<<8 | 1<<18 | 1<<19 | uint64(3)<<32 | 1<<63

	// Hypervisor CSR masks (only live when hasH).
	vMedelegHMask    = uint64(1)<<10 | 1<<20 | 1<<21 | 1<<22 | 1<<23
	vHstatusWritable = uint64(1)<<rv.HstatusGVA | 1<<rv.HstatusSPV |
		1<<rv.HstatusSPVP | 1<<rv.HstatusHU | 1<<rv.HstatusVTVM |
		1<<rv.HstatusVTW | 1<<rv.HstatusVTSR
	vHstatusVSXL  = uint64(2) << 32
	vHedelegMask  = uint64(0xB1FF)
	vVsstatusMask = uint64(1)<<1 | 1<<5 | 1<<8 | 1<<18 | 1<<19
)

func newVirtCSRs(nvpmp int) *VirtCSRs {
	return &VirtCSRs{
		Mstatus: vUXLFixed,
		Mideleg: 0x222, // forced delegation of all S interrupts
		Custom:  make(map[uint16]uint64),
		PMP:     pmp.NewFile(nvpmp),
	}
}

// writeMstatus applies the virtual mstatus WARL rules.
func (v *VirtCSRs) writeMstatus(val uint64) {
	writable := vMstatusWritable
	if v.hasH {
		writable |= 1<<38 | 1<<39 // GVA, MPV
	}
	next := v.Mstatus&^writable | val&writable
	if mpp := next >> 11 & 3; mpp == 2 {
		next = next&^(3<<11) | v.Mstatus&(3<<11)
	}
	v.Mstatus = next&^(uint64(3)<<32|uint64(3)<<34) | vUXLFixed
}

func (v *VirtCSRs) sstatus() uint64 { return v.Mstatus & vSstatusMask }

func (v *VirtCSRs) writeSstatus(val uint64) {
	v.writeMstatus(v.Mstatus&^vSstatusMask | val&vSstatusMask)
}

func (v *VirtCSRs) writeMideleg(val uint64) {
	// The S-interrupt bits are hardwired to 1 (forced delegation); with H
	// the VS bits are hardwired-delegated too. Other writable bits do not
	// exist, so mideleg is effectively constant.
	v.Mideleg = 0x222 | val&0
	if v.hasH {
		v.Mideleg |= rv.VSIntMask
	}
}

func vLegalizeTvec(val uint64) uint64 {
	if val&3 > 1 {
		return val &^ 3
	}
	return val
}

func vLegalizeEpc(val uint64) uint64 { return val &^ 3 }

func (v *VirtCSRs) writeSatp(val uint64) {
	if m := val >> 60; m == 0 || m == 8 {
		v.Satp = val
	}
}

// enableH marks the virtual machine as implementing the hypervisor
// extension: the VS interrupt bits become hardwired-delegated in the
// virtual mideleg and MPV/GVA become writable mstatus fields.
func (v *VirtCSRs) enableH() {
	v.hasH = true
	v.Mideleg |= rv.VSIntMask
}

// MPP returns the virtual mstatus.MPP as a mode.
func (v *VirtCSRs) MPP() rv.Mode { return rv.Mode(v.Mstatus >> 11 & 3) }

// SetMPP overwrites the virtual MPP field.
func (v *VirtCSRs) SetMPP(m rv.Mode) {
	v.Mstatus = v.Mstatus&^(3<<11) | uint64(m)<<11
}

// MIE reports the virtual global machine-interrupt enable.
func (v *VirtCSRs) MIE() bool { return v.Mstatus&(1<<3) != 0 }
