package core

import "govfm/internal/rv"

// Verification entry points (paper §6): internal/verif drives the
// emulation and PMP-installation subsystems directly through these
// wrappers, comparing every transition against the reference model. They
// exist so the verified surface is exactly the production code paths, not
// test doubles.

// VerifEmulate runs the instruction emulator on the current virtual state
// exactly as a trap from vM-mode would, returning the next virtual PC.
func (m *Monitor) VerifEmulate(ctx *HartCtx, raw uint32, epc uint64) uint64 {
	return m.emulate(ctx, raw, epc)
}

// VerifInjectTrap performs virtual trap entry (the re-injection path).
func (m *Monitor) VerifInjectTrap(ctx *HartCtx, cause, tval, epc uint64) uint64 {
	return m.injectVirtTrap(ctx, cause, tval, epc)
}

// VerifCheckVirtInterrupt runs the post-trap virtual interrupt check.
func (m *Monitor) VerifCheckVirtInterrupt(ctx *HartCtx, vpc uint64) uint64 {
	return m.checkVirtInterrupt(ctx, vpc)
}

// VerifInstallPMP recomputes the physical PMP file for the given world —
// the cfg function of the faithful-execution criterion.
func (m *Monitor) VerifInstallPMP(ctx *HartCtx, w World) {
	m.installPMP(ctx, w)
}

// VClint exposes the virtual CLINT for state setup in verification.
func (m *Monitor) VClint() *VirtClint { return m.vclint }

// ProtectedRegions returns the physical ranges the monitor reserves for
// itself and its virtual devices; faithful execution requires accesses to
// them to fault in every non-monitor context.
func ProtectedRegions() [][2]uint64 {
	return [][2]uint64{
		{MiralisBase, MiralisBase + MiralisSize},
		{clintBase, clintBase + clintSize},
	}
}

// VerifWorldSwitch drives the world-switch CSR save/install path directly.
func (m *Monitor) VerifWorldSwitch(ctx *HartCtx, to World) {
	m.switchWorld(ctx, to)
}

// ReinstallPMP reprograms the physical PMP file for ctx's current world;
// policies call it when their rules change outside a world switch.
func (m *Monitor) ReinstallPMP(ctx *HartCtx) { m.installPMP(ctx, ctx.World()) }

// ReinstallIOPMP reprograms the physical IOPMP (no-op when the platform
// has none or it is not virtualized); policies call it when their DMA rule
// changes.
func (m *Monitor) ReinstallIOPMP(ctx *HartCtx) { m.installIOPMP(ctx) }

// VerifSyncVirtState refreshes the virtual CSR file from the physical hart
// when the hart is executing in the OS world, exactly as the world-switch
// save path would. At a step boundary this is idempotent (a pure
// physical→virtual copy), so differential harnesses may call it after
// every retired instruction to obtain the architectural virtual state.
func (m *Monitor) VerifSyncVirtState(ctx *HartCtx) {
	if ctx.World() == WorldOS {
		m.saveOSState(ctx)
	}
}

// VerifInstallState reinstalls the physical CSRs and PMP file for ctx's
// current world, propagating virtual state that a harness wrote directly
// into ctx.V onto the physical hart.
func (m *Monitor) VerifInstallState(ctx *HartCtx) {
	w := ctx.World()
	m.installPhysCSRs(ctx, w)
	m.installPMP(ctx, w)
}

// ResetVirt rewinds ctx's virtual hart to its power-on state: fresh
// virtual CSRs, vM-mode, no pending virtual-device state. Differential
// harnesses use it between test cases; Boot does not reset this state.
func (m *Monitor) ResetVirt(ctx *HartCtx) {
	ctx.V = newVirtCSRs(m.NumVirtPMP())
	if ctx.Hart.Cfg.HasH {
		ctx.V.enableH()
	}
	ctx.VirtMode = rv.ModeM
	ctx.VirtV = false
	ctx.VirtWaiting = false
	ctx.Stats = Stats{}
	ctx.mprvActive = false
	ctx.resumeOverride = nil
	ctx.vTrapDepth = 0
	ctx.Degraded = false
	ctx.osLive = false
	ctx.osEntry = osResume{}
	ctx.pendingSBI = nil
	ctx.fwEnterCycles = ctx.Hart.Cycles
	ctx.lastOSInstret = ctx.Hart.Instret
	ctx.osProgressCycles = ctx.Hart.Cycles
	m.vclint.Reset(ctx.Hart.ID)
	m.HaltedReason = ""
	m.Faults = nil
	m.FaultCount = 0
}

// EmulateMisaligned performs the monitor's misaligned load/store emulation
// on behalf of a policy (paper §5.2: the sandbox policy implements
// misaligned emulation directly instead of letting the confined firmware
// reach through OS memory). Returns the resume PC and whether the trap was
// handled.
func (m *Monitor) EmulateMisaligned(ctx *HartCtx, code, tval, epc uint64) (uint64, bool) {
	return m.fastPathMisaligned(ctx, code, tval, epc)
}
