package core

import (
	"fmt"

	"govfm/internal/asm"
	"govfm/internal/rv"
)

// handleTrap is the monitor's top-level trap handler, invoked by the hart
// after architectural M-mode trap entry. It plays the role of Miralis's
// assembly entry point plus the Rust dispatch loop (paper Fig. 4): traps
// from the virtual firmware go to the emulation subsystem, traps from the
// OS either hit the fast path or are re-injected into vM-mode, and
// intercepted M-mode interrupts are routed to their consumer. After every
// trap the monitor checks for pending virtual interrupts and world
// switches before returning.
func (m *Monitor) handleTrap(ctx *HartCtx) {
	h := ctx.Hart
	h.ChargeCycles(h.Cfg.Cost.MonitorEntry)

	// During direct execution the OS changes privilege without monitor
	// involvement (delegated trap entry raises U to S, a native sret
	// lowers S to U), so the virtual mode is resynchronized from the
	// physical trap entry: mstatus.MPP holds the mode the trap came from.
	if ctx.VirtMode != rv.ModeM {
		ctx.VirtMode = rv.MPP(h.CSR.Mstatus)
		if h.Cfg.HasH {
			// mstatus.MPV holds the virtualization mode the trap came from.
			ctx.VirtV = h.CSR.Mstatus>>rv.MstatusMPV&1 != 0
		}
	}

	prevWorld := ctx.World()
	cause := h.CSR.Mcause
	tval := h.CSR.Mtval
	epc := h.CSR.Mepc
	ctx.resumeOverride = nil
	vpc := epc // default resume point: the trapping instruction

	switch {
	case rv.CauseIsInterrupt(cause):
		vpc = m.handleInterrupt(ctx, rv.CauseCode(cause), epc)
	case prevWorld == WorldFirmware:
		ctx.Stats.FirmwareTraps++
		vpc = m.handleFirmwareTrap(ctx, rv.CauseCode(cause), tval, epc)
	default:
		ctx.Stats.OSTraps++
		vpc = m.handleOSTrap(ctx, rv.CauseCode(cause), tval, epc)
	}
	if h.Halted {
		return
	}

	// Check for virtual interrupts after emulation: traps and privileged
	// instructions can mask or unmask them (paper §4.1).
	vpc = m.checkVirtInterrupt(ctx, vpc)

	m.resume(ctx, prevWorld, vpc)
}

// handleFirmwareTrap processes a synchronous trap taken in vM-mode.
func (m *Monitor) handleFirmwareTrap(ctx *HartCtx, code, tval, epc uint64) uint64 {
	switch code {
	case rv.ExcIllegalInstr:
		// The trapping instruction's encoding is latched in mtval.
		raw := uint32(tval)
		if raw == 0 {
			// Some hardware leaves mtval zero; fetch the instruction.
			raw = m.fetchGuestInstr(ctx, epc)
		}
		return m.emulate(ctx, raw, epc)
	case rv.ExcLoadAccessFault, rv.ExcStoreAccessFault:
		// A PMP-trapped access: virtual MMIO window or MPRV emulation.
		if vpc, ok := m.emulateMemTrap(ctx, code, tval, epc); ok {
			return vpc
		}
		switch m.Policy.OnFirmwareTrap(ctx, code, tval) {
		case ActHandled:
			return ctx.takeOverride(epc)
		case ActBlock:
			m.halt(ctx, fmt.Sprintf("policy blocked firmware %s at %#x",
				rv.CauseString(code), tval))
			return epc
		}
		return m.injectVirtTrap(ctx, code, tval, epc)
	case rv.ExcEcallFromU:
		// An ecall in vM-mode is virtually an ecall-from-M.
		if m.Policy.OnFirmwareEcall(ctx) == ActHandled {
			return ctx.takeOverride(epc + 4)
		}
		return m.injectVirtTrap(ctx, rv.ExcEcallFromM, 0, epc)
	default:
		switch m.Policy.OnFirmwareTrap(ctx, code, tval) {
		case ActHandled:
			return ctx.takeOverride(epc)
		case ActBlock:
			m.halt(ctx, fmt.Sprintf("policy blocked firmware trap %s",
				rv.CauseString(code)))
			return epc
		}
		return m.injectVirtTrap(ctx, code, tval, epc)
	}
}

// handleOSTrap processes a trap from direct execution that reached M-mode:
// an SBI call, a software-emulated operation, or an exception the firmware
// did not delegate.
func (m *Monitor) handleOSTrap(ctx *HartCtx, code, tval, epc uint64) uint64 {
	switch code {
	case rv.ExcEcallFromS, rv.ExcEcallFromU:
		h := ctx.Hart
		m.observeSBI(ctx, h.Reg(asm.A7), h.Reg(asm.A6), h.Reg(asm.A0))
		switch m.Policy.OnOSEcall(ctx) {
		case ActHandled:
			return ctx.takeOverride(epc + 4)
		case ActBlock:
			m.halt(ctx, "policy blocked OS ecall")
			return epc
		}
		if ctx.Degraded {
			// The firmware has been written off: the monitor answers.
			return m.degradedEcall(ctx, epc)
		}
		if m.Opts.Offload && !ctx.VirtV {
			if vpc, ok := m.fastPathEcall(ctx, epc); ok {
				ctx.Stats.FastPathHits++
				return vpc
			}
		}
		// Re-inject into the virtual firmware: a world switch. Capture the
		// call first so containment can answer it if the firmware dies.
		cause := code
		m.capturePendingSBI(ctx, cause, epc)
		return m.injectVirtTrap(ctx, cause, 0, epc)
	case rv.ExcIllegalInstr:
		if m.Opts.Offload {
			if vpc, ok := m.fastPathIllegal(ctx, uint32(tval), epc); ok {
				ctx.Stats.FastPathHits++
				return vpc
			}
		}
		switch m.Policy.OnOSTrap(ctx, code, tval) {
		case ActHandled:
			return ctx.takeOverride(epc)
		case ActBlock:
			m.halt(ctx, "policy blocked OS illegal instruction")
			return epc
		}
		return m.rejectToFirmware(ctx, code, tval, epc)
	case rv.ExcLoadAddrMisaligned, rv.ExcStoreAddrMisaligned:
		if m.Opts.Offload {
			if vpc, ok := m.fastPathMisaligned(ctx, code, tval, epc); ok {
				ctx.Stats.FastPathHits++
				return vpc
			}
		}
		switch m.Policy.OnOSTrap(ctx, code, tval) {
		case ActHandled:
			return ctx.takeOverride(epc)
		case ActBlock:
			m.halt(ctx, "policy blocked OS misaligned access")
			return epc
		}
		return m.rejectToFirmware(ctx, code, tval, epc)
	default:
		switch m.Policy.OnOSTrap(ctx, code, tval) {
		case ActHandled:
			return ctx.takeOverride(epc)
		case ActBlock:
			m.halt(ctx, fmt.Sprintf("policy blocked OS trap %s", rv.CauseString(code)))
			return epc
		}
		return m.rejectToFirmware(ctx, code, tval, epc)
	}
}

// handleInterrupt routes an intercepted physical M-mode interrupt.
func (m *Monitor) handleInterrupt(ctx *HartCtx, code, epc uint64) uint64 {
	h := ctx.Hart
	if m.Policy.OnInterrupt(ctx, code) == ActHandled {
		return ctx.takeOverride(epc)
	}
	switch code {
	case rv.IntMTimer:
		// The physical comparator fired: deliver to whichever consumer is
		// due — the OS deadline armed by the fast path becomes STIP, the
		// firmware's own virtual deadline becomes a virtual M-timer
		// interrupt (checked by checkVirtInterrupt via VirtPending).
		if m.vclint.OSDeadlineDue(h.ID) {
			m.vclint.ClearOSDeadline(h.ID)
			h.CSR.SetMip(h.CSR.Mip(h.Time()) | 1<<rv.IntSTimer)
		} else {
			// Nothing for the OS: silence the physical comparator so the
			// interrupt does not spin; the virtual deadline stays visible
			// through VirtPending.
			m.vclint.reprogram(h.ID)
			if m.vclint.VirtPending(h.ID)&(1<<rv.IntMTimer) != 0 {
				// Stop the storm while the firmware decides: mask MTIE
				// until the firmware reprograms its comparator.
				h.CSR.Mie &^= 1 << rv.IntMTimer
			}
		}
	case rv.IntMSoft:
		reasons, virtIPI := m.vclint.TakeIPIReasons(h.ID)
		if reasons&IPIReasonOS != 0 {
			// OS-to-OS IPI: surfaces as a supervisor software interrupt.
			h.CSR.SetMip(h.CSR.Mip(h.Time()) | 1<<rv.IntSSoft)
		}
		if reasons&IPIReasonRfence != 0 {
			// Remote fence: perform the flush on this hart.
			h.ChargeCycles(h.Cfg.Cost.TLBFlush)
		}
		_ = virtIPI // firmware vMSIP handled by checkVirtInterrupt
	case rv.IntMExt:
		// External M interrupts are re-injected virtually (rare: vendor
		// firmware delegates external interrupts to the OS). Mask the
		// physical line until the firmware claims or re-routes, so an
		// undeliverable virtual interrupt cannot storm the monitor.
		h.CSR.Mie &^= 1 << rv.IntMExt
	}
	// A policy may have rescheduled execution (e.g. an enclave preempted
	// by the timer) while still wanting the default interrupt handling.
	return ctx.takeOverride(epc)
}

// checkVirtInterrupt injects a pending, enabled virtual interrupt into
// vM-mode (paper §4.1: "a virtual interrupt must be injected if it is both
// pending and enabled", checked after each trap). Returns the updated
// resume PC.
func (m *Monitor) checkVirtInterrupt(ctx *HartCtx, vpc uint64) uint64 {
	v := ctx.V
	if ctx.Degraded {
		// No firmware left to deliver to.
		return vpc
	}
	pending := m.virtMip(ctx) & v.Mie & rv.MIntMask
	if pending == 0 {
		return vpc
	}
	// A pending-and-enabled interrupt wakes a virtual wfi even when it is
	// not deliverable (the architectural wfi wake rule).
	ctx.VirtWaiting = false
	// Deliverability to vM-mode: below vM always, in vM only with vMIE.
	if ctx.VirtMode == rv.ModeM && !v.MIE() {
		return vpc
	}
	var code uint64
	for _, c := range []uint64{rv.IntMExt, rv.IntMSoft, rv.IntMTimer} {
		if pending&(1<<c) != 0 {
			code = c
			break
		}
	}
	ctx.Stats.VirtInterrupts++
	ctx.VirtWaiting = false
	return m.injectVirtTrap(ctx, rv.Cause(code, true), 0, vpc)
}

// injectVirtTrap performs virtual trap entry and returns the new virtual
// PC (the trap vector). epc is the virtual PC at the trap point. Like the
// hardware it models, the entry honours the virtual medeleg: exceptions
// raised below vM that the firmware delegated enter virtual S-mode. (In
// production that path is exercised only transitively — delegated
// exceptions are handled natively because the physical medeleg mirrors the
// virtual one — but the emulator is total so faithful emulation holds for
// every state.)
func (m *Monitor) injectVirtTrap(ctx *HartCtx, cause, tval, epc uint64) uint64 {
	return m.injectVirtTrapG(ctx, cause, tval, 0, epc)
}

// injectVirtTrapG is injectVirtTrap with an explicit guest-physical trap
// value (already shifted right by 2, as the htval/mtval2 registers hold
// it); guest-page faults raised on the firmware's behalf carry one.
func (m *Monitor) injectVirtTrapG(ctx *HartCtx, cause, tval, tval2, epc uint64) uint64 {
	if m.Opts.OnVirtTrap != nil {
		m.Opts.OnVirtTrap(ctx, cause, tval)
	}
	v := ctx.V
	if !rv.CauseIsInterrupt(cause) && ctx.VirtMode != rv.ModeM &&
		v.Medeleg>>rv.CauseCode(cause)&1 != 0 {
		if ctx.VirtV && v.Hedeleg>>rv.CauseCode(cause)&1 != 0 {
			// Delegated twice: the virtual guest handles its own trap.
			return m.injectVirtVSTrap(ctx, cause, tval, epc)
		}
		// Virtual supervisor trap entry.
		return m.injectVirtSTrap(ctx, cause, tval, tval2, epc)
	}
	// Double-fault detection (containment only): an exception raised while
	// the firmware is already handling a virtual M trap, or with no trap
	// vector programmed, means the firmware cannot recover on its own —
	// on hardware it would vector into its own fault path forever.
	if m.Opts.Containment && !rv.CauseIsInterrupt(cause) && ctx.VirtMode == rv.ModeM &&
		(ctx.vTrapDepth >= 1 || v.Mtvec&^3 == 0) {
		f := m.newFault(ctx, FaultDoubleFault, fmt.Sprintf(
			"virtual %s at depth %d (mtvec=%#x)",
			rv.CauseString(rv.CauseCode(cause)), ctx.vTrapDepth, v.Mtvec))
		return m.misbehave(ctx, f, epc)
	}
	if ctx.VirtMode == rv.ModeM {
		ctx.vTrapDepth++
	} else {
		ctx.vTrapDepth = 1
	}
	v.Mcause = cause
	v.Mepc = vLegalizeEpc(epc)
	v.Mtval = tval
	// Stack the virtual interrupt enables, as hardware trap entry does.
	if v.MIE() {
		v.Mstatus |= 1 << 7 // MPIE
	} else {
		v.Mstatus &^= 1 << 7
	}
	v.Mstatus &^= 1 << 3 // MIE = 0
	v.SetMPP(ctx.VirtMode)
	if ctx.Hart.Cfg.HasH {
		v.Mstatus &^= 1<<rv.MstatusMPV | 1<<rv.MstatusGVA
		if ctx.VirtV {
			v.Mstatus |= 1 << rv.MstatusMPV
			if !rv.CauseIsInterrupt(cause) &&
				rv.CauseWritesGVA(rv.CauseCode(cause)) {
				v.Mstatus |= 1 << rv.MstatusGVA
			}
		}
		v.Mtval2 = tval2
		v.Mtinst = 0
		ctx.VirtV = false
	}
	ctx.VirtMode = rv.ModeM
	ctx.VirtWaiting = false
	base := v.Mtvec &^ 3
	if v.Mtvec&3 == 1 && rv.CauseIsInterrupt(cause) {
		return base + 4*rv.CauseCode(cause)
	}
	return base
}

// injectVirtVSTrap performs virtual VS-mode trap entry: an exception the
// virtual firmware delegated by both its medeleg and its hedeleg while the
// guest of the virtualized hypervisor (VirtV) was running. The raw
// vsstatus shadow stacks SIE/SPP and the guest stays in V.
func (m *Monitor) injectVirtVSTrap(ctx *HartCtx, cause, tval, epc uint64) uint64 {
	v := ctx.V
	v.Vscause = cause // exceptions only; no VS interrupt code transform
	v.Vsepc = vLegalizeEpc(epc)
	v.Vstval = tval
	vs := v.Vsstatus
	vs = vs&^(1<<5) | vs>>1&1<<5 // SPIE <- SIE
	vs &^= 1 << 1                // SIE = 0
	vs &^= 1 << 8                // SPP <- from
	if ctx.VirtMode == rv.ModeS {
		vs |= 1 << 8
	}
	v.Vsstatus = vs
	ctx.VirtMode = rv.ModeS
	ctx.VirtWaiting = false
	return v.Vstvec &^ 3 // synchronous: always the base
}

// fetchGuestInstr reads the instruction word at a guest PC. In firmware
// world addressing is bare, so the virtual PC is a physical address.
func (m *Monitor) fetchGuestInstr(ctx *HartCtx, pc uint64) uint32 {
	h := ctx.Hart
	h.ChargeCycles(2 * h.Cfg.Cost.MemAccess)
	v, ok := h.Bus.Load(pc, 4)
	if !ok {
		return 0
	}
	return uint32(v)
}
