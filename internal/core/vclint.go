package core

import (
	"govfm/internal/dev/clint"
	"govfm/internal/rv"
)

// VirtClint is Miralis's virtual CLINT (paper §4.3): it multiplexes the
// physical timer and software-interrupt hardware between the monitor's two
// consumers — the virtual firmware's own mtimecmp/msip registers and the
// OS deadlines managed by the fast path — by programming the physical
// mtimecmp to the earliest pending deadline.
type VirtClint struct {
	phys *clint.Clint

	// vmtimecmp and vmsip are the virtual firmware's CLINT registers.
	vmtimecmp []uint64
	vmsip     []uint32

	// osDeadline is the OS timer deadline managed by the fast path
	// (all-ones = none).
	osDeadline []uint64

	// ipiReason records why msip was raised on a hart, so the receiving
	// monitor knows whom to notify.
	ipiReason []uint32
}

// IPI reasons (bitmask).
const (
	IPIReasonOS     = 1 << 0 // OS-requested IPI: convert to SSIP
	IPIReasonRfence = 1 << 1 // remote fence request: flush and complete
)

// NewVirtClint creates the virtual CLINT over the physical one.
func NewVirtClint(phys *clint.Clint, harts int) *VirtClint {
	v := &VirtClint{
		phys:       phys,
		vmtimecmp:  make([]uint64, harts),
		vmsip:      make([]uint32, harts),
		osDeadline: make([]uint64, harts),
		ipiReason:  make([]uint32, harts),
	}
	for i := range v.vmtimecmp {
		v.vmtimecmp[i] = ^uint64(0)
		v.osDeadline[i] = ^uint64(0)
	}
	return v
}

// Time returns the shared physical mtime (the virtual machine's time is
// the host's — there is a single clock).
func (v *VirtClint) Time() uint64 { return v.phys.Time() }

// Reset rewinds hart's virtual CLINT registers to their power-on values
// (no virtual deadline, no virtual IPI, no fast-path deadline) and
// reprograms the physical comparator accordingly.
func (v *VirtClint) Reset(hartID int) {
	v.vmtimecmp[hartID] = ^uint64(0)
	v.vmsip[hartID] = 0
	v.osDeadline[hartID] = ^uint64(0)
	v.ipiReason[hartID] = 0
	v.reprogram(hartID)
}

// reprogram installs the earliest pending deadline for hart in the
// physical comparator.
func (v *VirtClint) reprogram(hartID int) {
	d := v.vmtimecmp[hartID]
	if v.osDeadline[hartID] < d {
		d = v.osDeadline[hartID]
	}
	v.phys.SetMtimecmp(hartID, d)
}

// SetOSDeadline arms the fast-path timer for hart.
func (v *VirtClint) SetOSDeadline(hartID int, deadline uint64) {
	v.osDeadline[hartID] = deadline
	v.reprogram(hartID)
}

// SetVirtMtimecmp handles the firmware's write to its virtual mtimecmp.
func (v *VirtClint) SetVirtMtimecmp(hartID int, deadline uint64) {
	v.vmtimecmp[hartID] = deadline
	v.reprogram(hartID)
}

// VirtMtimecmp returns the firmware's virtual deadline.
func (v *VirtClint) VirtMtimecmp(hartID int) uint64 { return v.vmtimecmp[hartID] }

// OSDeadline returns the fast path's armed deadline (all-ones = none).
func (v *VirtClint) OSDeadline(hartID int) uint64 { return v.osDeadline[hartID] }

// OSDeadlineDue reports whether the OS deadline for hart has expired.
func (v *VirtClint) OSDeadlineDue(hartID int) bool {
	return v.phys.Time() >= v.osDeadline[hartID]
}

// ClearOSDeadline disarms the OS deadline after delivery.
func (v *VirtClint) ClearOSDeadline(hartID int) {
	v.osDeadline[hartID] = ^uint64(0)
	v.reprogram(hartID)
}

// SetVirtMsip sets or clears the firmware's virtual software-interrupt bit
// for a target hart, raising the physical msip so the target's monitor
// gets control.
func (v *VirtClint) SetVirtMsip(target int, set bool) {
	if target < 0 || target >= len(v.vmsip) {
		return
	}
	if set {
		v.vmsip[target] = 1
		v.phys.SetMsip(target, true)
	} else {
		v.vmsip[target] = 0
	}
}

// RaiseIPI raises the physical msip on target with the given reason so the
// target hart's monitor is interrupted.
func (v *VirtClint) RaiseIPI(target int, reason uint32) {
	if target < 0 || target >= len(v.ipiReason) {
		return
	}
	v.ipiReason[target] |= reason
	v.phys.SetMsip(target, true)
}

// TakeIPIReasons consumes and clears the pending IPI reasons for hart,
// also clearing the physical msip line.
func (v *VirtClint) TakeIPIReasons(hartID int) (reasons uint32, virtIPI bool) {
	reasons = v.ipiReason[hartID]
	v.ipiReason[hartID] = 0
	virtIPI = v.vmsip[hartID] != 0
	v.phys.SetMsip(hartID, false)
	return reasons, virtIPI
}

// VirtPending returns the virtual CLINT's contribution to the virtual mip:
// vMTIP when the firmware's deadline expired, vMSIP when its virtual
// software-interrupt bit is set.
func (v *VirtClint) VirtPending(hartID int) uint64 {
	var p uint64
	if v.phys.Time() >= v.vmtimecmp[hartID] {
		p |= 1 << rv.IntMTimer
	}
	if v.vmsip[hartID] != 0 {
		p |= 1 << rv.IntMSoft
	}
	return p
}

// MMIO emulation of the virtual CLINT: the firmware's loads and stores to
// the (PMP-protected) CLINT region are decoded and applied to the virtual
// registers.

// Load emulates a firmware read at the given CLINT-relative offset.
func (v *VirtClint) Load(hartID int, off uint64, size int) (uint64, bool) {
	n := len(v.vmsip)
	switch {
	case off >= clint.MsipOff && off < clint.MsipOff+uint64(4*n):
		if size != 4 || off%4 != 0 {
			return 0, false
		}
		return uint64(v.vmsip[(off-clint.MsipOff)/4]), true
	case off >= clint.MtimecmpOff && off < clint.MtimecmpOff+uint64(8*n):
		return readVReg(v.vmtimecmp[(off-clint.MtimecmpOff)/8], off%8, size)
	case off >= clint.MtimeOff && off < clint.MtimeOff+8:
		return readVReg(v.phys.Time(), off-clint.MtimeOff, size)
	}
	return 0, false
}

// Store emulates a firmware write at the given CLINT-relative offset.
func (v *VirtClint) Store(hartID int, off uint64, size int, val uint64) bool {
	n := len(v.vmsip)
	switch {
	case off >= clint.MsipOff && off < clint.MsipOff+uint64(4*n):
		if size != 4 || off%4 != 0 {
			return false
		}
		v.SetVirtMsip(int((off-clint.MsipOff)/4), val&1 != 0)
		return true
	case off >= clint.MtimecmpOff && off < clint.MtimecmpOff+uint64(8*n):
		hart := int((off - clint.MtimecmpOff) / 8)
		cur := v.vmtimecmp[hart]
		if !writeVReg(&cur, off%8, size, val) {
			return false
		}
		v.SetVirtMtimecmp(hart, cur)
		return true
	case off >= clint.MtimeOff && off < clint.MtimeOff+8:
		// Firmware writes to mtime are filtered: the monitor does not let
		// deprivileged firmware warp the shared clock (access control per
		// paper §3.3 — the write is accepted and ignored).
		return true
	}
	return false
}

func readVReg(reg, off uint64, size int) (uint64, bool) {
	switch {
	case size == 8 && off == 0:
		return reg, true
	case size == 4 && off == 0:
		return reg & 0xFFFF_FFFF, true
	case size == 4 && off == 4:
		return reg >> 32, true
	}
	return 0, false
}

func writeVReg(reg *uint64, off uint64, size int, v uint64) bool {
	switch {
	case size == 8 && off == 0:
		*reg = v
	case size == 4 && off == 0:
		*reg = *reg&^uint64(0xFFFF_FFFF) | v&0xFFFF_FFFF
	case size == 4 && off == 4:
		*reg = *reg&0xFFFF_FFFF | v<<32
	default:
		return false
	}
	return true
}
