package core

import (
	"strings"
	"testing"

	"govfm/internal/firmware"
	"govfm/internal/hart"
	"govfm/internal/kernel"
)

// scenario boots gosbi + the boot kernel on a platform, optionally under
// the monitor, and returns the machine and monitor (nil when native).
func scenario(t *testing.T, cfg *hart.Config, virtualize, offload bool, harts int) (*hart.Machine, *Monitor) {
	t.Helper()
	cfg.Harts = harts
	m, err := hart.NewMachine(cfg, DramSize)
	if err != nil {
		t.Fatal(err)
	}
	fw := firmware.BuildGosbi(FirmwareBase, firmware.Options{
		OSEntry: OSBase, Harts: harts, FirmwareSize: FirmwareSize,
	})
	kern := kernel.BuildBoot(OSBase, kernel.BootOptions{
		Harts: harts, TimeReads: 5, TimerSets: 2, Misaligned: 3,
	})
	if err := m.LoadImage(FirmwareBase, fw.Bytes); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(OSBase, kern); err != nil {
		t.Fatal(err)
	}
	if !virtualize {
		m.Reset(FirmwareBase)
		return m, nil
	}
	mon, err := Attach(m, Options{Offload: offload, FirmwareEntry: FirmwareBase})
	if err != nil {
		t.Fatal(err)
	}
	mon.Boot()
	return m, mon
}

func runToExit(t *testing.T, m *hart.Machine, maxSteps uint64) {
	t.Helper()
	m.Run(maxSteps)
	ok, reason := m.Halted()
	if !ok {
		t.Fatalf("machine did not halt within %d steps (hart0 pc=%#x mode=%v uart=%q)",
			maxSteps, m.Harts[0].PC, m.Harts[0].Mode, m.Uart.Output())
	}
	if reason != "guest-exit-pass" {
		t.Fatalf("machine halted with %q (uart=%q)", reason, m.Uart.Output())
	}
	if got := m.Uart.Output(); !strings.Contains(got, "boot") || !strings.Contains(got, "ok") {
		t.Fatalf("console output %q missing boot markers", got)
	}
}

func TestNativeBoot(t *testing.T) {
	m, _ := scenario(t, hart.VisionFive2(), false, false, 1)
	runToExit(t, m, 3_000_000)
}

func TestVirtualizedBootWithOffload(t *testing.T) {
	m, mon := scenario(t, hart.VisionFive2(), true, true, 1)
	runToExit(t, m, 3_000_000)
	st := mon.TotalStats()
	if st.FastPathHits == 0 {
		t.Error("offload enabled but no fast-path hits")
	}
	if st.Emulations == 0 {
		t.Error("the firmware boot itself must require emulation")
	}
	t.Logf("stats: %+v", st)
}

func TestVirtualizedBootNoOffload(t *testing.T) {
	m, mon := scenario(t, hart.VisionFive2(), true, false, 1)
	runToExit(t, m, 10_000_000)
	st := mon.TotalStats()
	if st.FastPathHits != 0 {
		t.Error("offload disabled but fast path hit")
	}
	if st.WorldSwitches < 10 {
		t.Errorf("no-offload boot must world-switch for every SBI op, got %d", st.WorldSwitches)
	}
	t.Logf("stats: %+v", st)
}

func TestVirtualizedBootMultiHart(t *testing.T) {
	for _, offload := range []bool{true, false} {
		m, mon := scenario(t, hart.VisionFive2(), true, offload, 2)
		runToExit(t, m, 20_000_000)
		if mon.TotalStats().Emulations == 0 {
			t.Error("no emulations recorded")
		}
	}
}

func TestNativeBootMultiHart(t *testing.T) {
	m, _ := scenario(t, hart.VisionFive2(), false, false, 2)
	runToExit(t, m, 20_000_000)
}

func TestVirtualizedBootP550(t *testing.T) {
	m, mon := scenario(t, hart.PremierP550(), true, true, 1)
	runToExit(t, m, 3_000_000)
	if mon.NumVirtPMP() != 16-pmpOverhead {
		t.Errorf("P550 virtual PMP count = %d", mon.NumVirtPMP())
	}
}

// TestSameBinaryNativeAndVirtualized is the paper's Q1 in miniature: the
// byte-identical firmware image must produce the same guest-visible
// behaviour natively and under the monitor.
func TestSameBinaryNativeAndVirtualized(t *testing.T) {
	native, _ := scenario(t, hart.VisionFive2(), false, false, 1)
	runToExit(t, native, 3_000_000)
	virt, _ := scenario(t, hart.VisionFive2(), true, true, 1)
	runToExit(t, virt, 3_000_000)
	if native.Uart.Output() != virt.Uart.Output() {
		t.Errorf("console output diverged: native %q vs virtualized %q",
			native.Uart.Output(), virt.Uart.Output())
	}
}

func TestOffloadReducesWorldSwitches(t *testing.T) {
	// Use a time-read-heavy kernel: the Fig. 3 profile where offloading
	// matters (console SBI calls world-switch in both configurations).
	build := func(offload bool) *Monitor {
		cfg := hart.VisionFive2()
		cfg.Harts = 1
		m, err := hart.NewMachine(cfg, DramSize)
		if err != nil {
			t.Fatal(err)
		}
		fw := firmware.BuildGosbi(FirmwareBase, firmware.Options{
			OSEntry: OSBase, Harts: 1, FirmwareSize: FirmwareSize,
		})
		kern := kernel.BuildBoot(OSBase, kernel.BootOptions{
			Harts: 1, TimeReads: 200, TimerSets: 1, Misaligned: 50,
		})
		if err := m.LoadImage(FirmwareBase, fw.Bytes); err != nil {
			t.Fatal(err)
		}
		if err := m.LoadImage(OSBase, kern); err != nil {
			t.Fatal(err)
		}
		mon, err := Attach(m, Options{Offload: offload, FirmwareEntry: FirmwareBase})
		if err != nil {
			t.Fatal(err)
		}
		mon.Boot()
		runToExit(t, m, 30_000_000)
		return mon
	}
	w1 := build(true).TotalStats().WorldSwitches
	w2 := build(false).TotalStats().WorldSwitches
	if w1*10 >= w2 {
		t.Errorf("offload must cut world switches dramatically: offload=%d no-offload=%d", w1, w2)
	}
}
