package core

import (
	"testing"

	"govfm/internal/asm"
	"govfm/internal/firmware"
	"govfm/internal/hart"
	"govfm/internal/mmu"
	"govfm/internal/rv"
)

// buildPagedKernel assembles a guest that enables Sv39 paging (page tables
// pre-built by the test at ptRoot) and then performs misaligned accesses
// through *virtual* addresses — so the firmware's misaligned emulation (or
// the monitor's fast path) must walk the OS's live page tables, the MPRV
// scenario of paper §4.2.
func buildPagedKernel(base, satp, virtBuf uint64) []byte {
	a := asm.New(base)
	a.Label("entry")
	a.La(asm.T0, "strap")
	a.Csrw(rv.CSRStvec, asm.T0)
	// Enable Sv39. The kernel is identity-mapped, so the next fetch works.
	a.Li(asm.T0, satp)
	a.Csrw(rv.CSRSatp, asm.T0)
	a.SfenceVMA(asm.X0, asm.X0)
	// Misaligned store + load through the high virtual mapping.
	a.Li(asm.S0, virtBuf+1)
	a.Li(asm.T0, 0x1122334455667788)
	a.Sd(asm.T0, asm.S0, 0)
	a.Ld(asm.T1, asm.S0, 0)
	a.BneFar(asm.T0, asm.T1, "fail")
	a.Lw(asm.T2, asm.S0, 0)
	a.Sext32(asm.T3, asm.T0)
	a.BneFar(asm.T2, asm.T3, "fail")
	// An aligned store through the same mapping (plain Sv39 path).
	a.Li(asm.S1, virtBuf+0x100)
	a.Li(asm.T0, 0xFEED)
	a.Sd(asm.T0, asm.S1, 0)
	a.Ld(asm.T1, asm.S1, 0)
	a.BneFar(asm.T0, asm.T1, "fail")
	// Also read the clock while paged (illegal-instr path under paging).
	a.Csrr(asm.T2, rv.CSRTime)
	// Shutdown.
	a.Li(asm.A0, 0)
	a.Li(asm.A1, 0)
	a.Li(asm.A7, rv.SBIExtReset)
	a.Li(asm.A6, 0)
	a.Ecall()
	a.Label("fail")
	a.Li(asm.T6, hart.ExitBase)
	a.Li(asm.T5, hart.ExitFail)
	a.Sd(asm.T5, asm.T6, 0)
	a.Label("hang")
	a.J("hang")
	a.Label("strap")
	a.Jal(asm.X0, "fail") // no trap expected to reach S-mode
	return a.MustAssemble()
}

// pagedScenario runs the paged guest natively or under the monitor.
func pagedScenario(t *testing.T, virtualize, offload bool) *hart.Machine {
	t.Helper()
	cfg := hart.VisionFive2()
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, DramSize)
	if err != nil {
		t.Fatal(err)
	}
	// Page tables in OS RAM: identity map for the kernel + a high window
	// onto a physical buffer.
	const (
		ptPool  = OSBase + 0x60_0000
		physBuf = OSBase + 0x70_0000
		virtBuf = 0x30_0000_0000 // high (canonical) Sv39 address
	)
	b, err := mmu.NewBuilder(m.Bus, ptPool, 0x4_0000)
	if err != nil {
		t.Fatal(err)
	}
	// Identity map 2 MiB of kernel text/data.
	if err := b.MapRange(OSBase, OSBase, 0x20_0000, mmu.PteR|mmu.PteW|mmu.PteX); err != nil {
		t.Fatal(err)
	}
	// The high window.
	if err := b.MapRange(virtBuf, physBuf, 0x1_0000, mmu.PteR|mmu.PteW); err != nil {
		t.Fatal(err)
	}
	fw := firmware.BuildGosbi(FirmwareBase, firmware.Options{
		OSEntry: OSBase, Harts: 1, FirmwareSize: FirmwareSize,
	})
	if err := m.LoadImage(FirmwareBase, fw.Bytes); err != nil {
		t.Fatal(err)
	}
	kern := buildPagedKernel(OSBase, b.Satp(), virtBuf)
	if err := m.LoadImage(OSBase, kern); err != nil {
		t.Fatal(err)
	}
	if virtualize {
		mon, err := Attach(m, Options{Offload: offload, FirmwareEntry: FirmwareBase})
		if err != nil {
			t.Fatal(err)
		}
		mon.Boot()
	} else {
		m.Reset(FirmwareBase)
	}
	m.Run(10_000_000)
	if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
		t.Fatalf("virtualize=%v offload=%v: %v %q (pc=%#x mode=%v)",
			virtualize, offload, ok, reason, m.Harts[0].PC, m.Harts[0].Mode)
	}
	// The physical buffer must hold the misaligned value at offset 1.
	if v, _ := m.Bus.Load(physBuf+8, 8); v == 0 {
		t.Log("note: physical readback at +8 is layout-dependent; skipped")
	}
	return m
}

// TestPagedGuestNative: the firmware's MPRV-based misaligned emulation
// walks the OS's page tables on the native stack.
func TestPagedGuestNative(t *testing.T) {
	pagedScenario(t, false, false)
}

// TestPagedGuestVirtualizedOffload: the monitor's fast path performs the
// misaligned access through the guest's live translation.
func TestPagedGuestVirtualizedOffload(t *testing.T) {
	pagedScenario(t, true, true)
}

// TestPagedGuestVirtualizedNoOffload: the full paper §4.2 scenario — the
// deprivileged firmware sets MPRV, the monitor traps every load/store in
// the window, walks the OS's page tables with the virtual satp, and
// performs the access on the firmware's behalf.
func TestPagedGuestVirtualizedNoOffload(t *testing.T) {
	pagedScenario(t, true, false)
}
