package core

// Differential fuzzing of the monitor's instruction decoder against the
// reference model's Decode (paper §6.4: the emulator's decoder is verified
// against the specification model). The model only specifies the
// privileged subset (SYSTEM + MISC-MEM); for those opcodes the two
// decoders must agree exactly, while the monitor may additionally classify
// plain loads/stores and A-extension instructions for its MMIO and MPRV
// emulation paths.

import (
	"flag"
	"math/rand"
	"testing"

	"govfm/internal/refmodel"
	"govfm/internal/rv"
)

var decodeSeed = flag.Int64("seed", 1, "seed for randomized decoder comparison")

// modelToEmu maps every reference-model op to the monitor's op.
var modelToEmu = map[refmodel.Op]EmuOp{
	refmodel.OpIllegal: EmuIllegal,
	refmodel.OpCSRRW:   EmuCSRRW,
	refmodel.OpCSRRS:   EmuCSRRS,
	refmodel.OpCSRRC:   EmuCSRRC,
	refmodel.OpCSRRWI:  EmuCSRRWI,
	refmodel.OpCSRRSI:  EmuCSRRSI,
	refmodel.OpCSRRCI:  EmuCSRRCI,
	refmodel.OpMRET:    EmuMRET,
	refmodel.OpSRET:    EmuSRET,
	refmodel.OpWFI:     EmuWFI,
	refmodel.OpECALL:   EmuECALL,
	refmodel.OpEBREAK:  EmuEBREAK,
	refmodel.OpSFENCE:  EmuSFENCE,
	refmodel.OpFENCE:   EmuFENCE,
	refmodel.OpFENCEI:  EmuFENCEI,

	refmodel.OpHFenceVVMA: EmuHFenceV,
	refmodel.OpHFenceGVMA: EmuHFenceG,
}

func isCSROp(op refmodel.Op) bool {
	return op >= refmodel.OpCSRRW && op <= refmodel.OpCSRRCI
}

func checkDecodeAgainstModel(t *testing.T, raw uint32) {
	t.Helper()
	got := decode(raw)
	want := refmodel.Decode(raw)
	op := rv.OpcodeOf(raw)
	if op != rv.OpSystem && op != rv.OpMiscMem {
		// Outside the model's scope the monitor may only see the memory
		// instructions its emulation paths need — never a privileged op.
		switch got.Op {
		case EmuIllegal, EmuLoad, EmuStore, EmuAmo:
		default:
			t.Fatalf("decode(%#08x): op %v for non-privileged opcode %#x", raw, got.Op, op)
		}
		return
	}
	if op == rv.OpSystem && rv.Funct3Of(raw) == rv.F3HLSV {
		// Hypervisor loads/stores are outside the model's scope (the
		// model has no memory, so hlv/hsv stay OpIllegal there); the
		// monitor classifies the whole f3=4 space as EmuHLSV and lets
		// rv.HLSVDecode reject bad encodings at emulation time.
		if got.Op != EmuHLSV || want.Op != refmodel.OpIllegal {
			t.Fatalf("decode(%#08x) = %v, model decodes %v (hlsv space)", raw, got.Op, want.Op)
		}
		return
	}
	if got.Op != modelToEmu[want.Op] {
		t.Fatalf("decode(%#08x) = %v, model decodes %v", raw, got.Op, want.Op)
	}
	if isCSROp(want.Op) {
		if got.Rd != want.Rd || got.Rs1 != want.Rs1 || got.CSR != want.CSR || got.Zimm != want.Zimm {
			t.Fatalf("decode(%#08x): fields rd=%d rs1=%d csr=%#x zimm=%d, model rd=%d rs1=%d csr=%#x zimm=%d",
				raw, got.Rd, got.Rs1, got.CSR, got.Zimm, want.Rd, want.Rs1, want.CSR, want.Zimm)
		}
	}
}

func FuzzDecode(f *testing.F) {
	for _, w := range []uint32{
		rv.InstrEcall, rv.InstrEbreak, rv.InstrMret, rv.InstrSret, rv.InstrWfi,
		rv.InstrNop, rv.InstrFence, rv.InstrFenceI,
		0x12000073, // sfence.vma x0, x0
		0x30529073, // csrrw x0, mtvec, x5
		0x300027f3, // csrrs x15, mstatus, x0
		0x3042b073, // csrrc
		0x304f5073, // csrrwi
		0x1007ef73, // csrrsi on sscratch
		0xc0007073, // csrrci on cycle
		0x0000100f, // fence.i
		0xffffffff,
		0x00000000,
	} {
		f.Add(w)
	}
	f.Fuzz(checkDecodeAgainstModel)
}

// TestDecodeMatchesModel runs the same differential property over directed
// corners plus a fixed volume of random words on every `go test` run.
func TestDecodeMatchesModel(t *testing.T) {
	// Every SYSTEM f3 with every funct12 corner, all register fields set.
	for f3 := uint32(0); f3 < 8; f3++ {
		for _, funct12 := range []uint32{0x000, 0x001, 0x102, 0x105, 0x302, 0x120,
			0x300, 0x305, 0x341, 0x180, 0xC00, 0x3A0, 0x3B0, 0xFFF} {
			raw := funct12<<20 | 0x1F<<15 | f3<<12 | 0x1F<<7 | rv.OpSystem
			checkDecodeAgainstModel(t, raw)
			checkDecodeAgainstModel(t, funct12<<20|f3<<12|rv.OpSystem)
		}
	}
	iters := 200000
	if testing.Short() {
		iters = 20000
	}
	rng := rand.New(rand.NewSource(*decodeSeed))
	for n := 0; n < iters; n++ {
		checkDecodeAgainstModel(t, rng.Uint32())
		if t.Failed() {
			t.Fatalf("failing word at iteration %d (seed %d)", n, *decodeSeed)
		}
	}
}
