package core

import (
	"govfm/internal/dev/plic"
	"govfm/internal/rv"
)

// VirtPlic is the experimental virtual PLIC (paper §4.3): the PLIC MMIO
// region is protected with a PMP entry so firmware accesses trap, the
// monitor mediates them, and M-mode external interrupts are intercepted
// and re-injected into vM-mode.
//
// The mediation model follows §3.3's access-control taxonomy: the firmware
// programs real interrupt routing (priorities, its machine-context enables
// and thresholds, claim/complete are forwarded so devices actually work),
// but the monitor observes everything, can filter, and owns the physical
// MEIP delivery: the hardware line always vectors to the monitor, which
// re-injects a virtual machine-external interrupt when the virtual state
// allows.
type VirtPlic struct {
	phys  *plic.Plic
	harts int

	// Writes/Loads count mediated firmware accesses (tracing/tests).
	Writes uint64
	Loads  uint64
}

// NewVirtPlic wraps the physical controller.
func NewVirtPlic(phys *plic.Plic, harts int) *VirtPlic {
	return &VirtPlic{phys: phys, harts: harts}
}

// VirtPending returns the virtual mip contribution (vMEIP) for hart: the
// physical machine-context line, re-exposed virtually.
func (v *VirtPlic) VirtPending(hartID int) uint64 {
	return v.phys.Pending(hartID) & (1 << rv.IntMExt)
}

// Load mediates a firmware read of the PLIC region.
func (v *VirtPlic) Load(hartID int, off uint64, size int) (uint64, bool) {
	v.Loads++
	return v.phys.Load(off, size)
}

// Store mediates a firmware write of the PLIC region. Writes are forwarded
// — the firmware legitimately configures interrupt routing — except writes
// to *other* harts' machine contexts, which a confined firmware has no
// business touching on behalf of this hart.
func (v *VirtPlic) Store(hartID int, off uint64, size int, val uint64) bool {
	v.Writes++
	foreignMCtx := func(ctx int) bool { return ctx%2 == 0 && ctx/2 != hartID }
	switch {
	case off >= plic.ContextOff:
		if foreignMCtx(int((off - plic.ContextOff) / plic.ContextSize)) {
			// Filtered: accepted and ignored (paper §3.3).
			return true
		}
	case off >= plic.EnableOff:
		if foreignMCtx(int((off - plic.EnableOff) / 0x80)) {
			return true
		}
	}
	return v.phys.Store(off, size, val)
}

// emulatePlicTrap handles a firmware load/store that hit the PLIC window.
func (m *Monitor) emulatePlicTrap(ctx *HartCtx, ins EmuInstr, addr, epc uint64) (uint64, bool) {
	if m.vplic == nil {
		return 0, false
	}
	h := ctx.Hart
	off := addr - plicBase
	ctx.Stats.MMIOEmulations++
	if ins.Op == EmuLoad {
		val, ok := m.vplic.Load(h.ID, off, ins.Size)
		if !ok {
			return 0, false
		}
		if ins.Signed {
			val = rv.SignExtend(val, uint(8*ins.Size))
		}
		h.SetReg(ins.Rd, val)
	} else {
		if !m.vplic.Store(h.ID, off, ins.Size, h.Reg(ins.Rs2)) {
			return 0, false
		}
		// The firmware may have re-routed or completed an interrupt:
		// re-enable external-interrupt interception.
		h.CSR.Mie |= 1 << rv.IntMExt
	}
	return epc + 4, true
}
