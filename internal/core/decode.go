package core

import "govfm/internal/rv"

// The monitor's own instruction decoder for the privileged subset it
// emulates (paper Table 1 counts the decoder in the emulator subsystem;
// paper §6.4 verifies it against the reference model's decoder).

// EmuOp classifies an instruction the emulator understands.
type EmuOp int

const (
	EmuIllegal EmuOp = iota
	EmuCSRRW
	EmuCSRRS
	EmuCSRRC
	EmuCSRRWI
	EmuCSRRSI
	EmuCSRRCI
	EmuMRET
	EmuSRET
	EmuWFI
	EmuECALL
	EmuEBREAK
	EmuSFENCE
	EmuFENCE
	EmuFENCEI
	EmuLoad // for MPRV and MMIO emulation paths
	EmuStore
	EmuAmo     // A-extension (AMO/LR/SC); funct5 lives in Raw bits 31:27
	EmuHFenceV // hfence.vvma
	EmuHFenceG // hfence.gvma
	EmuHLSV    // hlv/hlvx/hsv (decoded further by rv.HLSVDecode)
)

// EmuInstr is a decoded instruction.
type EmuInstr struct {
	Op     EmuOp
	Rd     uint32
	Rs1    uint32
	Rs2    uint32
	CSR    uint16
	Zimm   uint64
	Imm    uint64 // sign-extended load/store offset
	Size   int    // access width for loads/stores
	Signed bool   // sign-extending load
	Raw    uint32
}

// decode classifies raw. It accepts the privileged subset plus plain
// loads/stores (needed to emulate firmware accesses to virtual MMIO and
// MPRV windows); everything else is EmuIllegal and gets re-injected.
func decode(raw uint32) EmuInstr {
	ins := EmuInstr{Op: EmuIllegal, Raw: raw}
	switch rv.OpcodeOf(raw) {
	case rv.OpMiscMem:
		switch rv.Funct3Of(raw) {
		case 0:
			ins.Op = EmuFENCE
		case 1:
			ins.Op = EmuFENCEI
		}
		return ins
	case rv.OpLoad:
		ins.Rd = rv.RdOf(raw)
		ins.Rs1 = rv.Rs1Of(raw)
		ins.Imm = rv.ImmI(raw)
		switch rv.Funct3Of(raw) {
		case 0:
			ins.Op, ins.Size, ins.Signed = EmuLoad, 1, true
		case 1:
			ins.Op, ins.Size, ins.Signed = EmuLoad, 2, true
		case 2:
			ins.Op, ins.Size, ins.Signed = EmuLoad, 4, true
		case 3:
			ins.Op, ins.Size = EmuLoad, 8
		case 4:
			ins.Op, ins.Size = EmuLoad, 1
		case 5:
			ins.Op, ins.Size = EmuLoad, 2
		case 6:
			ins.Op, ins.Size = EmuLoad, 4
		}
		return ins
	case rv.OpStore:
		ins.Rs1 = rv.Rs1Of(raw)
		ins.Rs2 = rv.Rs2Of(raw)
		ins.Imm = rv.ImmS(raw)
		if f3 := rv.Funct3Of(raw); f3 <= 3 {
			ins.Op, ins.Size = EmuStore, 1<<f3
		}
		return ins
	case rv.OpAmo:
		ins.Rd = rv.RdOf(raw)
		ins.Rs1 = rv.Rs1Of(raw)
		ins.Rs2 = rv.Rs2Of(raw)
		switch rv.Funct3Of(raw) {
		case 2:
			ins.Op, ins.Size, ins.Signed = EmuAmo, 4, true
		case 3:
			ins.Op, ins.Size = EmuAmo, 8
		}
		return ins
	case rv.OpSystem:
	default:
		return ins
	}

	ins.Rd = rv.RdOf(raw)
	ins.Rs1 = rv.Rs1Of(raw)
	ins.Rs2 = rv.Rs2Of(raw)
	ins.CSR = rv.CSROf(raw)
	ins.Zimm = uint64(ins.Rs1)
	switch rv.Funct3Of(raw) {
	case rv.F3Priv:
		switch {
		case raw == rv.InstrEcall:
			ins.Op = EmuECALL
		case raw == rv.InstrEbreak:
			ins.Op = EmuEBREAK
		case raw == rv.InstrMret:
			ins.Op = EmuMRET
		case raw == rv.InstrSret:
			ins.Op = EmuSRET
		case raw == rv.InstrWfi:
			ins.Op = EmuWFI
		case rv.Funct7Of(raw) == rv.SfenceVMAFunct7 && ins.Rd == 0:
			ins.Op = EmuSFENCE
		case rv.Funct7Of(raw) == rv.HfenceVVMAFunct7 && ins.Rd == 0:
			ins.Op = EmuHFenceV
		case rv.Funct7Of(raw) == rv.HfenceGVMAFunct7 && ins.Rd == 0:
			ins.Op = EmuHFenceG
		}
	case rv.F3HLSV:
		ins.Op = EmuHLSV
	case rv.F3Csrrw:
		ins.Op = EmuCSRRW
	case rv.F3Csrrs:
		ins.Op = EmuCSRRS
	case rv.F3Csrrc:
		ins.Op = EmuCSRRC
	case rv.F3Csrrwi:
		ins.Op = EmuCSRRWI
	case rv.F3Csrrsi:
		ins.Op = EmuCSRRSI
	case rv.F3Csrrci:
		ins.Op = EmuCSRRCI
	}
	return ins
}
