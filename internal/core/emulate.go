package core

import (
	"fmt"

	"govfm/internal/mem"
	"govfm/internal/mmu"
	"govfm/internal/rv"
)

// The instruction emulator (paper §4.1): the biggest subsystem of the
// monitor and the largest attack surface exposed to the firmware. It
// executes privileged instructions on the virtual CSR shadow while the
// firmware runs deprivileged. Every path here is covered by the
// faithful-emulation differential tests in internal/verif.

// emulate executes the instruction that trapped out of vM-mode and returns
// the next virtual PC. Under containment it is a panic boundary: the
// emulator is the largest attack surface the firmware can reach, so a Go
// panic here is converted into a MonitorFault and handled as firmware
// misbehavior instead of killing the process.
func (m *Monitor) emulate(ctx *HartCtx, raw uint32, epc uint64) (vpc uint64) {
	if m.Opts.Containment {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			f := m.newFault(ctx, FaultPanic,
				fmt.Sprintf("panic emulating %#08x: %v", raw, r))
			vpc = m.misbehave(ctx, f, epc)
		}()
	}
	vpc = m.emulateInstr(ctx, raw, epc)
	if m.Opts.OnEmulate != nil {
		m.Opts.OnEmulate(ctx, raw)
	}
	return vpc
}

func (m *Monitor) emulateInstr(ctx *HartCtx, raw uint32, epc uint64) uint64 {
	h := ctx.Hart
	h.ChargeCycles(h.Cfg.Cost.EmuOp)
	ctx.Stats.Emulations++

	ins := decode(raw)
	ctx.EmuByOp[ins.Op]++
	switch ins.Op {
	case EmuMRET:
		return m.emulateMRET(ctx, raw, epc)
	case EmuSRET:
		return m.emulateSRET(ctx, raw, epc)
	case EmuWFI:
		return m.emulateWFI(ctx, raw, epc)
	case EmuSFENCE:
		if ctx.VirtV {
			// Guest context: sfence.vma is trapped virtually from VU, and
			// from VS under hstatus.VTVM.
			if ctx.VirtMode == rv.ModeU ||
				ctx.V.Hstatus&(1<<rv.HstatusVTVM) != 0 {
				return m.injectVirtTrap(ctx, rv.ExcVirtualInstr, uint64(raw), epc)
			}
		} else if ctx.VirtMode == rv.ModeU ||
			(ctx.VirtMode == rv.ModeS && ctx.V.Mstatus&(1<<rv.MstatusTVM) != 0) {
			return m.injectVirtTrap(ctx, rv.ExcIllegalInstr, uint64(raw), epc)
		}
		// Address-translation fence: nothing to do for the shadow state;
		// charge the flush the real instruction would cost.
		h.ChargeCycles(h.Cfg.Cost.TLBFlush)
		return epc + 4
	case EmuHFenceV, EmuHFenceG:
		if !h.Cfg.HasH {
			return m.injectVirtTrap(ctx, rv.ExcIllegalInstr, uint64(raw), epc)
		}
		if ctx.VirtV {
			return m.injectVirtTrap(ctx, rv.ExcVirtualInstr, uint64(raw), epc)
		}
		if ctx.VirtMode == rv.ModeU ||
			(ins.Op == EmuHFenceG && ctx.VirtMode == rv.ModeS &&
				ctx.V.Mstatus&(1<<rv.MstatusTVM) != 0) {
			return m.injectVirtTrap(ctx, rv.ExcIllegalInstr, uint64(raw), epc)
		}
		h.ChargeCycles(h.Cfg.Cost.TLBFlush)
		return epc + 4
	case EmuHLSV:
		return m.emulateHLSV(ctx, ins, epc)
	case EmuFENCE, EmuFENCEI:
		return epc + 4
	case EmuCSRRW, EmuCSRRS, EmuCSRRC, EmuCSRRWI, EmuCSRRSI, EmuCSRRCI:
		return m.emulateCSR(ctx, ins, epc)
	case EmuECALL:
		cause := rv.ExcEcallFromU
		switch ctx.VirtMode {
		case rv.ModeS:
			cause = rv.ExcEcallFromS
			if ctx.VirtV {
				cause = rv.ExcEcallFromVS
			}
		case rv.ModeM:
			cause = rv.ExcEcallFromM
		}
		return m.injectVirtTrap(ctx, cause, 0, epc)
	case EmuEBREAK:
		return m.injectVirtTrap(ctx, rv.ExcBreakpoint, epc, epc)
	default:
		// Not a privileged instruction the virtual hardware implements:
		// the reference machine would raise an illegal-instruction trap.
		return m.injectVirtTrap(ctx, rv.ExcIllegalInstr, uint64(raw), epc)
	}
}

// emulateMRET performs the virtual mret. When the virtual MPP is below M
// this is a world switch: the firmware hands control to the OS.
func (m *Monitor) emulateMRET(ctx *HartCtx, raw uint32, epc uint64) uint64 {
	v := ctx.V
	if ctx.VirtMode != rv.ModeM {
		return m.injectVirtTrap(ctx, rv.ExcIllegalInstr, uint64(raw), epc)
	}
	prev := v.MPP()
	// Virtual interrupt-enable stack.
	if v.Mstatus&(1<<7) != 0 { // MPIE
		v.Mstatus |= 1 << 3
	} else {
		v.Mstatus &^= 1 << 3
	}
	v.Mstatus |= 1 << 7 // MPIE = 1
	v.SetMPP(rv.ModeU)
	if prev != rv.ModeM {
		v.Mstatus &^= 1 << rv.MstatusMPRV
	}
	if ctx.Hart.Cfg.HasH {
		ctx.VirtV = prev != rv.ModeM && v.Mstatus>>rv.MstatusMPV&1 != 0
		v.Mstatus &^= 1 << rv.MstatusMPV
	}
	if ctx.vTrapDepth > 0 {
		ctx.vTrapDepth--
	}
	ctx.VirtMode = prev
	return v.Mepc
}

// emulateSRET performs the virtual sret (vM-mode may execute it, as real
// M-mode may).
func (m *Monitor) emulateSRET(ctx *HartCtx, raw uint32, epc uint64) uint64 {
	v := ctx.V
	if ctx.VirtV {
		// Guest sret: trapped virtually from VU, and from VS under
		// hstatus.VTSR; otherwise it unstacks vsstatus and stays in V.
		if ctx.VirtMode == rv.ModeU ||
			v.Hstatus&(1<<rv.HstatusVTSR) != 0 {
			return m.injectVirtTrap(ctx, rv.ExcVirtualInstr, uint64(raw), epc)
		}
		vs := v.Vsstatus
		prev := rv.Mode(vs >> 8 & 1)
		vs = vs&^(1<<1) | vs>>4&(1<<1) // SIE <- SPIE
		vs |= 1 << 5                   // SPIE = 1
		vs &^= 1 << 8                  // SPP = U
		v.Vsstatus = vs
		ctx.VirtMode = prev
		return v.Vsepc
	}
	if ctx.VirtMode == rv.ModeU ||
		(ctx.VirtMode == rv.ModeS && v.Mstatus&(1<<rv.MstatusTSR) != 0) {
		return m.injectVirtTrap(ctx, rv.ExcIllegalInstr, uint64(raw), epc)
	}
	prev := rv.Mode(v.Mstatus >> 8 & 1)
	if v.Mstatus&(1<<5) != 0 { // SPIE
		v.Mstatus |= 1 << 1 // SIE
	} else {
		v.Mstatus &^= 1 << 1
	}
	v.Mstatus |= 1 << 5  // SPIE = 1
	v.Mstatus &^= 1 << 8 // SPP = U
	v.Mstatus &^= 1 << rv.MstatusMPRV
	if ctx.Hart.Cfg.HasH {
		ctx.VirtV = v.Hstatus&(1<<rv.HstatusSPV) != 0
		v.Hstatus &^= 1 << rv.HstatusSPV
	}
	ctx.VirtMode = prev
	return v.Sepc
}

// emulateWFI puts the virtual firmware to sleep until a virtual interrupt
// pends; the physical hart is parked in its own wait state so the machine
// does not spin.
func (m *Monitor) emulateWFI(ctx *HartCtx, raw uint32, epc uint64) uint64 {
	if ctx.VirtV {
		// Guest wfi: mstatus.TW traps it as illegal from any guest mode;
		// otherwise VU, and VS under hstatus.VTW, trap virtually.
		if ctx.V.Mstatus&(1<<rv.MstatusTW) != 0 {
			return m.injectVirtTrap(ctx, rv.ExcIllegalInstr, uint64(raw), epc)
		}
		if ctx.VirtMode == rv.ModeU ||
			ctx.V.Hstatus&(1<<rv.HstatusVTW) != 0 {
			return m.injectVirtTrap(ctx, rv.ExcVirtualInstr, uint64(raw), epc)
		}
	} else if ctx.VirtMode == rv.ModeU ||
		(ctx.VirtMode == rv.ModeS && ctx.V.Mstatus&(1<<rv.MstatusTW) != 0) {
		return m.injectVirtTrap(ctx, rv.ExcIllegalInstr, uint64(raw), epc)
	}
	if m.Opts.Containment && ctx.VirtMode == rv.ModeM &&
		ctx.V.Mie&rv.MIntMask == 0 {
		// No virtual M interrupt source is enabled: nothing can ever wake
		// this wfi (checkVirtInterrupt wakes on pending & vmie only), so
		// the firmware has locked itself up.
		f := m.newFault(ctx, FaultLockup,
			"wfi in vM-mode with all virtual M interrupts masked")
		return m.misbehave(ctx, f, epc)
	}
	ctx.VirtWaiting = true
	// The physical hart waits too; the monitor's M-mode interrupt enables
	// stay armed, so any hardware interrupt wakes it and re-enters the
	// monitor, which re-evaluates virtual interrupts.
	ctx.Hart.Waiting = true
	return epc + 4
}

// emulateCSR executes a virtual CSR instruction.
func (m *Monitor) emulateCSR(ctx *HartCtx, ins EmuInstr, epc uint64) uint64 {
	h := ctx.Hart
	wantWrite := true
	wantRead := true
	switch ins.Op {
	case EmuCSRRW, EmuCSRRWI:
		wantRead = ins.Rd != 0
	case EmuCSRRS, EmuCSRRC, EmuCSRRSI, EmuCSRRCI:
		wantWrite = ins.Rs1 != 0
	}
	if wantWrite && rv.CSRReadOnly(ins.CSR) {
		return m.injectVirtTrap(ctx, rv.ExcIllegalInstr, uint64(ins.Raw), epc)
	}
	csr, cause := m.vcsrCheck(ctx, ins.CSR)
	if cause != 0 {
		return m.injectVirtTrap(ctx, cause, uint64(ins.Raw), epc)
	}
	old, ok := m.vcsrRead(ctx, csr)
	if !ok {
		return m.injectVirtTrap(ctx, rv.ExcIllegalInstr, uint64(ins.Raw), epc)
	}
	if wantWrite {
		src := h.Reg(ins.Rs1)
		if ins.Op >= EmuCSRRWI {
			src = ins.Zimm
		}
		var newVal uint64
		switch ins.Op {
		case EmuCSRRW, EmuCSRRWI:
			newVal = src
		case EmuCSRRS, EmuCSRRSI:
			newVal = old | src
		case EmuCSRRC, EmuCSRRCI:
			newVal = old &^ src
		}
		if !m.vcsrWrite(ctx, csr, newVal) {
			return m.injectVirtTrap(ctx, rv.ExcIllegalInstr, uint64(ins.Raw), epc)
		}
	}
	if wantRead {
		h.SetReg(ins.Rd, old)
	}
	return epc + 4
}

// emulateHLSV executes a virtual hlv/hlvx/hsv: a single guest memory
// access performed with the virtual machine's two-stage translation
// context (virtual vsatp + hgatp) at the privilege selected by the
// virtual hstatus.SPVP, mirroring Hart.hlsv against the shadow CSRs.
func (m *Monitor) emulateHLSV(ctx *HartCtx, ins EmuInstr, epc uint64) uint64 {
	h := ctx.Hart
	v := ctx.V
	raw := ins.Raw
	store, size, signed, hlvx, ok := rv.HLSVDecode(raw)
	if !ok || !h.Cfg.HasH {
		return m.injectVirtTrap(ctx, rv.ExcIllegalInstr, uint64(raw), epc)
	}
	if ctx.VirtV {
		return m.injectVirtTrap(ctx, rv.ExcVirtualInstr, uint64(raw), epc)
	}
	if ctx.VirtMode == rv.ModeU && rv.Bit(v.Hstatus, rv.HstatusHU) == 0 {
		return m.injectVirtTrap(ctx, rv.ExcIllegalInstr, uint64(raw), epc)
	}
	priv := rv.ModeU
	if rv.Bit(v.Hstatus, rv.HstatusSPVP) != 0 {
		priv = rv.ModeS
	}
	acc := mem.Read
	faultCause := rv.ExcLoadAccessFault
	misCause := rv.ExcLoadAddrMisaligned
	if store {
		acc = mem.Write
		faultCause = rv.ExcStoreAccessFault
		misCause = rv.ExcStoreAddrMisaligned
	}
	va := h.Reg(ins.Rs1)
	if va%uint64(size) != 0 && !h.Cfg.HWMisaligned {
		return m.injectVirtTrap(ctx, misCause, va, epc)
	}
	env := &mmu.Env{
		Bus:   h.Bus,
		PMP:   v.PMP,
		Satp:  v.Vsatp,
		Priv:  priv,
		SUM:   rv.Bit(v.Vsstatus, rv.MstatusSUM) != 0,
		MXR:   rv.Bit(v.Vsstatus, rv.MstatusMXR) != 0,
		V:     true,
		Hgatp: v.Hgatp,
		HLVX:  hlvx,
	}
	res := mmu.Translate(env, va, acc)
	if !res.OK {
		return m.injectVirtTrapG(ctx, res.Cause, va, res.GPA>>2, epc)
	}
	if !v.PMP.Check(res.PA, size, acc, priv) {
		return m.injectVirtTrap(ctx, faultCause, va, epc)
	}
	h.ChargeCycles(h.Cfg.Cost.MemAccess)
	if store {
		if !h.Bus.Store(res.PA, size, h.Reg(ins.Rs2)) {
			return m.injectVirtTrap(ctx, rv.ExcStoreAccessFault, va, epc)
		}
		h.KillReservation(res.PA)
		return epc + 4
	}
	val, loaded := h.Bus.Load(res.PA, size)
	if !loaded {
		return m.injectVirtTrap(ctx, rv.ExcLoadAccessFault, va, epc)
	}
	if signed {
		val = rv.SignExtend(val, uint(8*size))
	}
	h.SetReg(ins.Rd, val)
	return epc + 4
}

// vcsrAccessible reports whether a CSR access from the current virtual
// mode would succeed. In production the emulator only ever runs for
// vM-mode (which passes every check), but the emulator is total over
// modes so the faithful-emulation criterion holds state-for-state
// against the reference model.
func (m *Monitor) vcsrAccessible(ctx *HartCtx, csr uint16) bool {
	_, cause := m.vcsrCheck(ctx, csr)
	return cause == 0
}

// vcsrCheck performs the existence, V=1 S-to-VS substitution, privilege,
// and gating checks for a virtual CSR access (the monitor's rendering of
// the Zicsr chapter extended by the hypervisor chapter, cross-checked
// against refmodel's csrCheck). It returns the CSR number the access
// actually touches plus a zero cause on success, or the denial cause
// (illegal-instruction or virtual-instruction).
func (m *Monitor) vcsrCheck(ctx *HartCtx, csr uint16) (uint16, uint64) {
	v := ctx.V
	if !m.vcsrExists(ctx, csr) {
		return csr, rv.ExcIllegalInstr
	}
	mapped := csr
	if ctx.VirtV {
		// From V=1, S-level CSRs are virtual-instruction faults for VU
		// code and for the hypervisor's own registers; the architectural
		// S CSRs are substituted by their VS shadows.
		if rv.CSRPriv(csr) == rv.ModeS && (ctx.VirtMode == rv.ModeU || vcsrIsHypLevel(csr)) {
			return csr, rv.ExcVirtualInstr
		}
		switch csr {
		case rv.CSRSstatus:
			mapped = rv.CSRVsstatus
		case rv.CSRSie:
			mapped = rv.CSRVsie
		case rv.CSRStvec:
			mapped = rv.CSRVstvec
		case rv.CSRSscratch:
			mapped = rv.CSRVsscratch
		case rv.CSRSepc:
			mapped = rv.CSRVsepc
		case rv.CSRScause:
			mapped = rv.CSRVscause
		case rv.CSRStval:
			mapped = rv.CSRVstval
		case rv.CSRSip:
			mapped = rv.CSRVsip
		case rv.CSRSatp:
			if v.Hstatus&(1<<rv.HstatusVTVM) != 0 {
				return csr, rv.ExcVirtualInstr
			}
			mapped = rv.CSRVsatp
		case rv.CSRStimecmp:
			// No vstimecmp: the access traps to the hypervisor when
			// Sstc is live and is illegal otherwise.
			if v.Menvcfg>>63&1 != 0 {
				return csr, rv.ExcVirtualInstr
			}
			return csr, rv.ExcIllegalInstr
		}
	}
	if ctx.VirtMode < rv.CSRPriv(mapped) {
		return mapped, rv.ExcIllegalInstr
	}
	switch mapped {
	case rv.CSRCycle, rv.CSRTime, rv.CSRInstret:
		bit := uint(mapped - rv.CSRCycle)
		if ctx.VirtMode < rv.ModeM && rv.Bit(v.Mcounteren, bit) == 0 {
			return mapped, rv.ExcIllegalInstr
		}
		if ctx.VirtV && rv.Bit(v.Hcounteren, bit) == 0 {
			return mapped, rv.ExcVirtualInstr
		}
		if ctx.VirtMode == rv.ModeU && rv.Bit(v.Scounteren, bit) == 0 {
			if ctx.VirtV {
				return mapped, rv.ExcVirtualInstr
			}
			return mapped, rv.ExcIllegalInstr
		}
	case rv.CSRSatp, rv.CSRHgatp:
		if ctx.VirtMode == rv.ModeS && v.Mstatus&(1<<rv.MstatusTVM) != 0 {
			return mapped, rv.ExcIllegalInstr
		}
	case rv.CSRStimecmp:
		if ctx.VirtMode == rv.ModeS && v.Menvcfg>>63&1 == 0 {
			return mapped, rv.ExcIllegalInstr
		}
	}
	return mapped, 0
}

// vcsrExists reports whether the virtual hardware implements csr at all,
// independent of privilege and gating.
func (m *Monitor) vcsrExists(ctx *HartCtx, csr uint16) bool {
	cfg := ctx.Hart.Cfg
	switch csr {
	case rv.CSRTime:
		return cfg.HasTimeCSR
	case rv.CSRStimecmp:
		return cfg.HasSstc
	}
	if i, ok := rv.IsPmpaddr(csr); ok {
		return i < ctx.V.PMP.NumEntries()
	}
	if i, ok := rv.IsPmpcfg(csr); ok {
		return i%2 == 0 && i*4 < ctx.V.PMP.NumEntries()
	}
	if vcsrIsH(csr) {
		return cfg.HasH
	}
	if _, custom := ctx.V.Custom[csr]; custom {
		return true
	}
	if cfg.HasCustomCSR(csr) {
		return true
	}
	return vcsrKnown(csr)
}

// vcsrIsHypLevel mirrors refmodel csrIsHyp: the hypervisor and VS CSRs
// that always raise a virtual-instruction exception when touched from
// V=1 (the monitor's mtinst/mtval2 are M-level and excluded).
func vcsrIsHypLevel(csr uint16) bool {
	switch csr {
	case rv.CSRMtinst, rv.CSRMtval2:
		return false
	}
	return vcsrIsH(csr)
}

// vcsrIsH reports whether csr belongs to the hypervisor-extension subset,
// which exists only on platforms with H.
func vcsrIsH(csr uint16) bool {
	switch csr {
	case rv.CSRHstatus, rv.CSRHedeleg, rv.CSRHideleg, rv.CSRHie,
		rv.CSRHcounteren, rv.CSRHgeie, rv.CSRHtval, rv.CSRHip, rv.CSRHvip,
		rv.CSRHtinst, rv.CSRHenvcfg, rv.CSRHgatp, rv.CSRHgeip,
		rv.CSRMtinst, rv.CSRMtval2,
		rv.CSRVsstatus, rv.CSRVsie, rv.CSRVstvec, rv.CSRVsscratch,
		rv.CSRVsepc, rv.CSRVscause, rv.CSRVstval, rv.CSRVsip, rv.CSRVsatp:
		return true
	}
	return false
}

// vcsrKnown enumerates the standard CSRs the virtual hardware implements.
func vcsrKnown(csr uint16) bool {
	switch csr {
	case rv.CSRMstatus, rv.CSRMisa, rv.CSRMedeleg, rv.CSRMideleg, rv.CSRMie,
		rv.CSRMtvec, rv.CSRMcounteren, rv.CSRMenvcfg, rv.CSRMcountinhibit,
		rv.CSRMscratch, rv.CSRMepc, rv.CSRMcause, rv.CSRMtval, rv.CSRMip,
		rv.CSRMseccfg, rv.CSRMvendorid, rv.CSRMarchid, rv.CSRMimpid,
		rv.CSRMhartid, rv.CSRMconfigptr, rv.CSRMcycle, rv.CSRMinstret,
		rv.CSRSstatus, rv.CSRSie, rv.CSRStvec, rv.CSRScounteren,
		rv.CSRSenvcfg, rv.CSRSscratch, rv.CSRSepc, rv.CSRScause,
		rv.CSRStval, rv.CSRSip, rv.CSRSatp, rv.CSRCycle, rv.CSRInstret,
		rv.CSRHstatus, rv.CSRHedeleg, rv.CSRHideleg, rv.CSRHie,
		rv.CSRHcounteren, rv.CSRHgeie, rv.CSRHtval, rv.CSRHip, rv.CSRHvip,
		rv.CSRHtinst, rv.CSRHenvcfg, rv.CSRHgatp,
		rv.CSRVsstatus, rv.CSRVsie, rv.CSRVstvec, rv.CSRVsscratch,
		rv.CSRVsepc, rv.CSRVscause, rv.CSRVstval, rv.CSRVsip, rv.CSRVsatp:
		return true
	}
	return rv.IsHpmcounter(csr)
}

// vcsrRead returns the virtual CSR value.
func (m *Monitor) vcsrRead(ctx *HartCtx, csr uint16) (uint64, bool) {
	v := ctx.V
	h := ctx.Hart
	switch csr {
	case rv.CSRMstatus:
		return v.Mstatus, true
	case rv.CSRMisa:
		misa := rv.MisaMXL64 | rv.MisaI | rv.MisaM | rv.MisaA | rv.MisaS | rv.MisaU
		if h.Cfg.HasH {
			misa |= rv.MisaH
		}
		return misa, true
	case rv.CSRMedeleg:
		return v.Medeleg, true
	case rv.CSRMideleg:
		return v.Mideleg, true
	case rv.CSRMie:
		return v.Mie, true
	case rv.CSRMtvec:
		return v.Mtvec, true
	case rv.CSRMcounteren:
		return v.Mcounteren, true
	case rv.CSRMenvcfg:
		return v.Menvcfg, true
	case rv.CSRMcountinhibit:
		return v.Mcountinhibit, true
	case rv.CSRMscratch:
		return v.Mscratch, true
	case rv.CSRMepc:
		return v.Mepc, true
	case rv.CSRMcause:
		return v.Mcause, true
	case rv.CSRMtval:
		return v.Mtval, true
	case rv.CSRMip:
		return m.virtMip(ctx), true
	case rv.CSRMseccfg:
		return v.Mseccfg, true
	case rv.CSRMvendorid:
		return h.Cfg.Mvendorid, true
	case rv.CSRMarchid:
		return h.Cfg.Marchid, true
	case rv.CSRMimpid:
		return h.Cfg.Mimpid, true
	case rv.CSRMhartid:
		return uint64(h.ID), true
	case rv.CSRMconfigptr:
		return 0, true
	case rv.CSRMcycle, rv.CSRCycle:
		return h.Cycles, true
	case rv.CSRMinstret, rv.CSRInstret:
		return h.Instret, true
	case rv.CSRTime:
		return h.Time(), true
	case rv.CSRSstatus:
		return v.sstatus(), true
	case rv.CSRSie:
		return v.Mie & v.Mideleg & rv.SIntMask, true
	case rv.CSRStvec:
		return v.Stvec, true
	case rv.CSRScounteren:
		return v.Scounteren, true
	case rv.CSRSenvcfg:
		return v.Senvcfg, true
	case rv.CSRSscratch:
		return v.Sscratch, true
	case rv.CSRSepc:
		return v.Sepc, true
	case rv.CSRScause:
		return v.Scause, true
	case rv.CSRStval:
		return v.Stval, true
	case rv.CSRSip:
		return m.virtMip(ctx) & v.Mideleg & rv.SIntMask, true
	case rv.CSRSatp:
		return v.Satp, true
	case rv.CSRStimecmp:
		return v.Stimecmp, true
	case rv.CSRHstatus:
		return v.Hstatus, true
	case rv.CSRHedeleg:
		return v.Hedeleg, true
	case rv.CSRHideleg:
		return v.Hideleg, true
	case rv.CSRHie:
		return v.Hie, true
	case rv.CSRHcounteren:
		return v.Hcounteren, true
	case rv.CSRHgeie:
		return 0, true // no guest-external interrupt files
	case rv.CSRHtval:
		return v.Htval, true
	case rv.CSRHip:
		// hip is a view of the virtual-interrupt pending bits.
		return v.Hvip & rv.VSIntMask, true
	case rv.CSRHvip:
		return v.Hvip, true
	case rv.CSRHtinst:
		return v.Htinst, true
	case rv.CSRHenvcfg:
		return 0, true // no henvcfg-gated features for guests
	case rv.CSRHgatp:
		return v.Hgatp, true
	case rv.CSRHgeip:
		return 0, true
	case rv.CSRMtinst:
		return v.Mtinst, true
	case rv.CSRMtval2:
		return v.Mtval2, true
	case rv.CSRVsstatus:
		return v.Vsstatus, true
	case rv.CSRVsie:
		return (v.Hie & v.Hideleg & rv.VSIntMask) >> 1, true
	case rv.CSRVstvec:
		return v.Vstvec, true
	case rv.CSRVsscratch:
		return v.Vsscratch, true
	case rv.CSRVsepc:
		return v.Vsepc, true
	case rv.CSRVscause:
		return v.Vscause, true
	case rv.CSRVstval:
		return v.Vstval, true
	case rv.CSRVsip:
		return (v.Hvip & v.Hideleg & rv.VSIntMask) >> 1, true
	case rv.CSRVsatp:
		return v.Vsatp, true
	}
	if i, ok := rv.IsPmpaddr(csr); ok {
		return v.PMP.Addr(i), true
	}
	if i, ok := rv.IsPmpcfg(csr); ok {
		return v.PMP.CfgReg(i), true
	}
	if rv.IsHpmcounter(csr) {
		return 0, true
	}
	if h.Cfg.HasCustomCSR(csr) {
		return v.Custom[csr], true
	}
	return 0, false
}

// vcsrWrite stores into the virtual CSR, applying the virtual WARL rules.
func (m *Monitor) vcsrWrite(ctx *HartCtx, csr uint16, val uint64) bool {
	v := ctx.V
	h := ctx.Hart
	switch csr {
	case rv.CSRMstatus:
		v.writeMstatus(val)
	case rv.CSRMisa:
		// WARL; the virtual misa is hardwired.
	case rv.CSRMedeleg:
		mask := vMedelegMask
		if v.hasH {
			mask |= vMedelegHMask
		}
		v.Medeleg = val & mask
	case rv.CSRMideleg:
		v.writeMideleg(val)
	case rv.CSRMie:
		v.Mie = val & vMieMask
	case rv.CSRMtvec:
		v.Mtvec = vLegalizeTvec(val)
	case rv.CSRMcounteren:
		v.Mcounteren = val & 0xFFFF_FFFF
	case rv.CSRMenvcfg:
		var mask uint64
		if h.Cfg.HasSstc {
			mask |= 1 << 63
		}
		v.Menvcfg = val & mask
	case rv.CSRMcountinhibit:
		v.Mcountinhibit = val & 0xFFFF_FFFD
	case rv.CSRMscratch:
		v.Mscratch = val
	case rv.CSRMepc:
		v.Mepc = vLegalizeEpc(val)
	case rv.CSRMcause:
		v.Mcause = val
	case rv.CSRMtval:
		v.Mtval = val
	case rv.CSRMtinst:
		v.Mtinst = val
	case rv.CSRMtval2:
		v.Mtval2 = val
	case rv.CSRMip:
		m.writeVirtMip(ctx, val)
	case rv.CSRMseccfg:
		v.Mseccfg = val & 7
	case rv.CSRMcycle:
		// The virtual cycle counter is the physical one; writes are
		// filtered (the firmware must not warp the host's counters).
	case rv.CSRMinstret:
	case rv.CSRSstatus:
		v.writeSstatus(val)
	case rv.CSRSie:
		mask := v.Mideleg & rv.SIntMask
		v.Mie = v.Mie&^mask | val&mask
	case rv.CSRStvec:
		v.Stvec = vLegalizeTvec(val)
	case rv.CSRScounteren:
		v.Scounteren = val & 0xFFFF_FFFF
	case rv.CSRSenvcfg:
		v.Senvcfg = val & 1
	case rv.CSRSscratch:
		v.Sscratch = val
	case rv.CSRSepc:
		v.Sepc = vLegalizeEpc(val)
	case rv.CSRScause:
		v.Scause = val
	case rv.CSRStval:
		v.Stval = val
	case rv.CSRSip:
		if ctx.VirtMode == rv.ModeM {
			m.writeVirtMip(ctx, val)
		} else {
			mask := v.Mideleg & (1 << rv.IntSSoft)
			v.MipSW = v.MipSW&^mask | val&mask
		}
	case rv.CSRSatp:
		v.writeSatp(val)
	case rv.CSRStimecmp:
		v.Stimecmp = val
	case rv.CSRHstatus:
		v.Hstatus = val&vHstatusWritable | vHstatusVSXL
	case rv.CSRHedeleg:
		v.Hedeleg = val & vHedelegMask
	case rv.CSRHideleg:
		v.Hideleg = val & rv.VSIntMask
	case rv.CSRHie:
		v.Hie = val & rv.VSIntMask
	case rv.CSRHcounteren:
		v.Hcounteren = val & 0xFFFF_FFFF
	case rv.CSRHgeie:
		// Hardwired zero: no guest-external interrupt files.
	case rv.CSRHtval:
		v.Htval = val
	case rv.CSRHip:
		// Only VSSIP is writable; it aliases hvip.VSSIP.
		v.Hvip = v.Hvip&^(1<<rv.IntVSSoft) | val&(1<<rv.IntVSSoft)
	case rv.CSRHvip:
		v.Hvip = val & rv.VSIntMask
	case rv.CSRHtinst:
		v.Htinst = val
	case rv.CSRHenvcfg:
		// Hardwired zero: no henvcfg-gated features for guests.
	case rv.CSRHgatp:
		if mode := val >> 60; mode == 0 || mode == 8 {
			v.Hgatp = val &^ (uint64(3)<<58 | 3) // VMID[1:0], PPN[1:0] zero
		}
	case rv.CSRVsstatus:
		v.Vsstatus = val&vVsstatusMask | uint64(2)<<32
	case rv.CSRVsie:
		mask := v.Hideleg & rv.VSIntMask
		v.Hie = v.Hie&^mask | val<<1&mask
	case rv.CSRVstvec:
		v.Vstvec = vLegalizeTvec(val)
	case rv.CSRVsscratch:
		v.Vsscratch = val
	case rv.CSRVsepc:
		v.Vsepc = vLegalizeEpc(val)
	case rv.CSRVscause:
		v.Vscause = val
	case rv.CSRVstval:
		v.Vstval = val
	case rv.CSRVsip:
		mask := v.Hideleg & (1 << rv.IntVSSoft)
		v.Hvip = v.Hvip&^mask | val<<1&mask
	case rv.CSRVsatp:
		if mode := val >> 60; mode == 0 || mode == 8 {
			v.Vsatp = val
		}
	default:
		if i, ok := rv.IsPmpaddr(csr); ok {
			v.PMP.SetAddr(i, val)
			m.syncPMPIfNeeded(ctx)
			return true
		}
		if i, ok := rv.IsPmpcfg(csr); ok {
			v.PMP.SetCfgReg(i, val)
			m.syncPMPIfNeeded(ctx)
			return true
		}
		if rv.IsHpmcounter(csr) {
			return true
		}
		if h.Cfg.HasCustomCSR(csr) {
			// Platform-custom CSRs are explicitly allow-listed and written
			// through to the shadow (paper §8.2: the P550's documented
			// speculation/error CSRs).
			v.Custom[csr] = val
			return true
		}
		return false
	}
	if csr == rv.CSRMstatus {
		// MPRV may have toggled; resume() reinstalls the PMP window.
		return true
	}
	return true
}

// syncPMPIfNeeded reinstalls the physical PMP file after a virtual PMP
// write: locked virtual entries constrain vM-mode immediately, so the
// change must be visible before the firmware resumes.
func (m *Monitor) syncPMPIfNeeded(ctx *HartCtx) {
	m.installPMP(ctx, ctx.World())
	ctx.Hart.ChargeCycles(ctx.Hart.Cfg.Cost.TLBFlush)
}

// emulateMemTrap handles a load/store access fault from vM-mode: either a
// virtual-device (CLINT) access or an MPRV-window access. Returns the next
// virtual PC and whether the trap was consumed.
func (m *Monitor) emulateMemTrap(ctx *HartCtx, code, addr, epc uint64) (uint64, bool) {
	h := ctx.Hart
	raw := m.fetchGuestInstr(ctx, epc)
	ins := decode(raw)
	if ins.Op != EmuLoad && ins.Op != EmuStore && ins.Op != EmuAmo {
		return 0, false
	}
	h.ChargeCycles(h.Cfg.Cost.EmuOp)

	// Virtual CLINT MMIO?
	if addr >= clintBase && addr < clintBase+clintSize {
		ctx.Stats.MMIOEmulations++
		off := addr - clintBase
		switch ins.Op {
		case EmuLoad:
			val, ok := m.vclint.Load(h.ID, off, ins.Size)
			if !ok {
				return m.injectVirtTrap(ctx, code, addr, epc), true
			}
			if ins.Signed {
				val = rv.SignExtend(val, uint(8*ins.Size))
			}
			h.SetReg(ins.Rd, val)
		case EmuStore:
			if !m.vclint.Store(h.ID, off, ins.Size, h.Reg(ins.Rs2)) {
				return m.injectVirtTrap(ctx, code, addr, epc), true
			}
			m.unmaskMTimer(ctx)
		default: // EmuAmo
			return m.emulateClintAmo(ctx, ins, off, code, addr, epc)
		}
		return epc + 4, true
	}

	// Virtual IOPMP window (§4.3)?
	if addr >= iopmpBase && addr < iopmpBase+iopmpSize {
		if vpc, ok := m.emulateIOPMPTrap(ctx, ins, addr, epc); ok {
			return vpc, true
		}
		return m.injectVirtTrap(ctx, code, addr, epc), true
	}

	// Virtual PLIC window (experimental, §4.3)?
	if addr >= plicBase && addr < plicBase+plicSize {
		if vpc, ok := m.emulatePlicTrap(ctx, ins, addr, epc); ok {
			return vpc, true
		}
		return m.injectVirtTrap(ctx, code, addr, epc), true
	}

	// MPRV emulation (paper §4.2): perform the access with the firmware's
	// virtual privilege and page tables.
	if ctx.mprvActive && ctx.mprvEmulationActive() {
		return m.emulateMPRVAccess(ctx, ins, addr, epc)
	}
	return 0, false
}

// emulateMPRVAccess performs a load/store on behalf of the firmware with
// MPRV semantics: the effective privilege is the virtual MPP, using the
// virtual satp for translation — the monitor "installs the page tables and
// performs the access on behalf of the firmware using MPRV itself"; here
// the software page-table walk makes the equivalence explicit.
func (m *Monitor) emulateMPRVAccess(ctx *HartCtx, ins EmuInstr, addr, epc uint64) (uint64, bool) {
	h := ctx.Hart
	v := ctx.V
	env := &mmu.Env{
		Bus:  h.Bus,
		PMP:  v.PMP, // the *virtual* protections govern the firmware
		Satp: v.Satp,
		Priv: v.MPP(),
		SUM:  v.Mstatus&(1<<rv.MstatusSUM) != 0,
		MXR:  v.Mstatus&(1<<rv.MstatusMXR) != 0,
	}
	if ins.Op == EmuAmo {
		return m.emulateMPRVAmo(ctx, env, ins, addr, epc)
	}
	acc := mem.Read
	if ins.Op == EmuStore {
		acc = mem.Write
	}
	pa, vpc, done := m.mprvCheck(ctx, env, addr, ins.Size, acc, epc)
	if done {
		return vpc, true
	}
	h.ChargeCycles(3 * h.Cfg.Cost.MemAccess) // walk + access
	if acc == mem.Write {
		if !h.Bus.Store(pa, ins.Size, h.Reg(ins.Rs2)) {
			return m.injectVirtTrap(ctx, rv.ExcStoreAccessFault, addr, epc), true
		}
		h.KillReservation(pa)
		return epc + 4, true
	}
	val, ok := h.Bus.Load(pa, ins.Size)
	if !ok {
		return m.injectVirtTrap(ctx, rv.ExcLoadAccessFault, addr, epc), true
	}
	if ins.Signed {
		val = rv.SignExtend(val, uint(8*ins.Size))
	}
	h.SetReg(ins.Rd, val)
	return epc + 4, true
}

// mprvCheck translates and permission-checks one access made on the
// firmware's behalf. On a fault it injects the virtual trap (or halts per
// policy) and reports done=true with the next virtual PC.
func (m *Monitor) mprvCheck(ctx *HartCtx, env *mmu.Env, addr uint64, size int, acc mem.AccessType, epc uint64) (pa, vpc uint64, done bool) {
	v := ctx.V
	res := mmu.Translate(env, addr, acc)
	if !res.OK {
		return 0, m.injectVirtTrap(ctx, res.Cause, addr, epc), true
	}
	cause := rv.ExcLoadAccessFault
	if acc == mem.Write {
		cause = rv.ExcStoreAccessFault
	}
	if !v.PMP.Check(res.PA, size, acc, v.MPP()) {
		return 0, m.injectVirtTrap(ctx, cause, addr, epc), true
	}
	// Policy PMP and self-protection still bind: the protection-only view
	// excludes the MPRV trap window itself (on hardware the monitor would
	// perform the access with its PMP reconfigured for exactly this).
	if ctx.protFile != nil && !ctx.protFile.Check(res.PA, size, acc, v.MPP()) {
		if m.Policy.OnFirmwareTrap(ctx, cause, addr) == ActBlock {
			m.halt(ctx, fmt.Sprintf("policy blocked MPRV access to %#x", res.PA))
			return 0, epc, true
		}
		return 0, m.injectVirtTrap(ctx, cause, addr, epc), true
	}
	return res.PA, 0, false
}

// emulateMPRVAmo mirrors Hart.amo for a trapped A-extension access: read
// check + load, compute, write check + store, with LR/SC reservation
// bookkeeping forwarded to the physical hart so mixed direct/emulated
// sequences behave exactly as they would on bare hardware.
func (m *Monitor) emulateMPRVAmo(ctx *HartCtx, env *mmu.Env, ins EmuInstr, addr, epc uint64) (uint64, bool) {
	h := ctx.Hart
	f5 := ins.Raw >> 27
	switch f5 {
	case rv.AmoLr: // load and acquire the reservation
		pa, vpc, done := m.mprvCheck(ctx, env, addr, ins.Size, mem.Read, epc)
		if done {
			return vpc, true
		}
		h.ChargeCycles(3 * h.Cfg.Cost.MemAccess)
		val, ok := h.Bus.Load(pa, ins.Size)
		if !ok {
			return m.injectVirtTrap(ctx, rv.ExcLoadAccessFault, addr, epc), true
		}
		h.SetReservation(addr)
		if ins.Size == 4 {
			val = rv.SignExtend(val, 32)
		}
		h.SetReg(ins.Rd, val)
		return epc + 4, true
	case rv.AmoSc:
		// The hart only traps an SC whose reservation was valid (and it
		// consumed the reservation on the way out), so the store proceeds.
		pa, vpc, done := m.mprvCheck(ctx, env, addr, ins.Size, mem.Write, epc)
		if done {
			return vpc, true
		}
		h.ChargeCycles(3 * h.Cfg.Cost.MemAccess)
		if !h.Bus.Store(pa, ins.Size, h.Reg(ins.Rs2)) {
			return m.injectVirtTrap(ctx, rv.ExcStoreAccessFault, addr, epc), true
		}
		h.SetReg(ins.Rd, 0)
		return epc + 4, true
	}
	// Read-modify-write AMO: read side first, as the hart does.
	if _, ok := rv.AmoCompute(f5, ins.Size, 0, 0); !ok {
		return 0, false // not an AMO the hart could have executed
	}
	pa, vpc, done := m.mprvCheck(ctx, env, addr, ins.Size, mem.Read, epc)
	if done {
		return vpc, true
	}
	old, ok := h.Bus.Load(pa, ins.Size)
	if !ok {
		return m.injectVirtTrap(ctx, rv.ExcLoadAccessFault, addr, epc), true
	}
	newVal, _ := rv.AmoCompute(f5, ins.Size, old, h.Reg(ins.Rs2))
	wpa, vpc, done := m.mprvCheck(ctx, env, addr, ins.Size, mem.Write, epc)
	if done {
		return vpc, true
	}
	h.ChargeCycles(4 * h.Cfg.Cost.MemAccess)
	if !h.Bus.Store(wpa, ins.Size, newVal) {
		return m.injectVirtTrap(ctx, rv.ExcStoreAccessFault, addr, epc), true
	}
	h.KillReservation(wpa)
	if ins.Size == 4 {
		old = rv.SignExtend(old, 32)
	}
	h.SetReg(ins.Rd, old)
	return epc + 4, true
}

// emulateClintAmo performs a trapped A-extension access to the virtual
// CLINT, mirroring what the hart would do against the physical device.
func (m *Monitor) emulateClintAmo(ctx *HartCtx, ins EmuInstr, off, code, addr, epc uint64) (uint64, bool) {
	h := ctx.Hart
	f5 := ins.Raw >> 27
	switch f5 {
	case rv.AmoLr:
		val, ok := m.vclint.Load(h.ID, off, ins.Size)
		if !ok {
			return m.injectVirtTrap(ctx, code, addr, epc), true
		}
		h.SetReservation(addr)
		if ins.Size == 4 {
			val = rv.SignExtend(val, 32)
		}
		h.SetReg(ins.Rd, val)
	case rv.AmoSc: // reservation validated and consumed by the hart
		if !m.vclint.Store(h.ID, off, ins.Size, h.Reg(ins.Rs2)) {
			return m.injectVirtTrap(ctx, code, addr, epc), true
		}
		m.unmaskMTimer(ctx)
		h.SetReg(ins.Rd, 0)
	default:
		old, ok := m.vclint.Load(h.ID, off, ins.Size)
		if !ok {
			return m.injectVirtTrap(ctx, code, addr, epc), true
		}
		newVal, okc := rv.AmoCompute(f5, ins.Size, old, h.Reg(ins.Rs2))
		if !okc {
			return 0, false
		}
		if !m.vclint.Store(h.ID, off, ins.Size, newVal) {
			return m.injectVirtTrap(ctx, code, addr, epc), true
		}
		m.unmaskMTimer(ctx)
		if ins.Size == 4 {
			old = rv.SignExtend(old, 32)
		}
		h.SetReg(ins.Rd, old)
	}
	return epc + 4, true
}

// unmaskMTimer re-enables the machine timer interception after the
// firmware reprogrammed its virtual comparator.
func (m *Monitor) unmaskMTimer(ctx *HartCtx) {
	ctx.Hart.CSR.Mie |= 1 << rv.IntMTimer
}

// sstcEnabled reports whether the virtual Sstc comparator is active.
func (m *Monitor) sstcEnabled(ctx *HartCtx) bool {
	return ctx.Hart.Cfg.HasSstc && ctx.V.Menvcfg>>63 != 0
}

// virtMip composes the virtual mip value: software-writable bits, the
// virtual CLINT lines, and — under Sstc — the stimecmp comparator driving
// a read-only STIP.
func (m *Monitor) virtMip(ctx *HartCtx) uint64 {
	v := ctx.V
	val := v.MipSW | m.vclint.VirtPending(ctx.Hart.ID)
	if m.vplic != nil {
		val |= m.vplic.VirtPending(ctx.Hart.ID)
	}
	if m.sstcEnabled(ctx) {
		val &^= 1 << rv.IntSTimer
		if ctx.Hart.Time() >= v.Stimecmp {
			val |= 1 << rv.IntSTimer
		}
	}
	return val
}

// writeVirtMip applies an M-mode write to the virtual mip: SSIP, STIP,
// and SEIP are writable, except STIP under Sstc.
func (m *Monitor) writeVirtMip(ctx *HartCtx, val uint64) {
	mask := vMipSWMask
	if m.sstcEnabled(ctx) {
		mask &^= 1 << rv.IntSTimer
	}
	ctx.V.MipSW = ctx.V.MipSW&^mask | val&mask
}
