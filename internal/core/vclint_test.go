package core

import (
	"testing"

	"govfm/internal/dev/clint"
	"govfm/internal/rv"
)

func newVClint() (*clint.Clint, *VirtClint) {
	phys := clint.New(2)
	return phys, NewVirtClint(phys, 2)
}

func TestVClintDeadlineMultiplexing(t *testing.T) {
	phys, v := newVClint()
	// The physical comparator must always hold the earliest deadline.
	v.SetOSDeadline(0, 1000)
	if phys.Mtimecmp(0) != 1000 {
		t.Errorf("mtimecmp = %d", phys.Mtimecmp(0))
	}
	v.SetVirtMtimecmp(0, 500)
	if phys.Mtimecmp(0) != 500 {
		t.Errorf("mtimecmp = %d, want the earlier firmware deadline", phys.Mtimecmp(0))
	}
	v.SetVirtMtimecmp(0, 2000)
	if phys.Mtimecmp(0) != 1000 {
		t.Errorf("mtimecmp = %d, want the OS deadline again", phys.Mtimecmp(0))
	}
	v.ClearOSDeadline(0)
	if phys.Mtimecmp(0) != 2000 {
		t.Errorf("mtimecmp = %d after OS clear", phys.Mtimecmp(0))
	}
	// Per-hart independence.
	if phys.Mtimecmp(1) != ^uint64(0) {
		t.Error("hart 1 must be untouched")
	}
}

func TestVClintOSDeadlineDue(t *testing.T) {
	phys, v := newVClint()
	v.SetOSDeadline(0, 100)
	phys.SetTime(99)
	if v.OSDeadlineDue(0) {
		t.Error("not due yet")
	}
	phys.SetTime(100)
	if !v.OSDeadlineDue(0) {
		t.Error("due at the deadline")
	}
}

func TestVClintVirtPending(t *testing.T) {
	phys, v := newVClint()
	if v.VirtPending(0) != 0 {
		t.Error("nothing pending at reset")
	}
	v.SetVirtMtimecmp(0, 50)
	phys.SetTime(50)
	if v.VirtPending(0)&(1<<rv.IntMTimer) == 0 {
		t.Error("vMTIP must assert at the firmware deadline")
	}
	v.SetVirtMsip(1, true)
	if v.VirtPending(1)&(1<<rv.IntMSoft) == 0 {
		t.Error("vMSIP must assert")
	}
	if !phys.Msip(1) {
		t.Error("the physical msip line must rise so the target monitor runs")
	}
	v.SetVirtMsip(1, false)
	if v.VirtPending(1)&(1<<rv.IntMSoft) != 0 {
		t.Error("vMSIP must clear")
	}
}

func TestVClintIPIReasons(t *testing.T) {
	phys, v := newVClint()
	v.RaiseIPI(1, IPIReasonOS)
	v.RaiseIPI(1, IPIReasonRfence)
	if !phys.Msip(1) {
		t.Error("physical msip must rise")
	}
	reasons, virtIPI := v.TakeIPIReasons(1)
	if reasons != IPIReasonOS|IPIReasonRfence {
		t.Errorf("reasons = %#x", reasons)
	}
	if virtIPI {
		t.Error("no firmware vMSIP was set")
	}
	if phys.Msip(1) {
		t.Error("TakeIPIReasons must clear the physical line")
	}
	if r, _ := v.TakeIPIReasons(1); r != 0 {
		t.Error("reasons must be consumed")
	}
	// Out-of-range targets are ignored.
	v.RaiseIPI(7, IPIReasonOS)
	v.SetVirtMsip(-1, true)
}

func TestVClintMMIO(t *testing.T) {
	phys, v := newVClint()
	phys.SetTime(0xAABBCCDD_00112233)
	// mtime reads (full and halves).
	if val, ok := v.Load(0, clint.MtimeOff, 8); !ok || val != 0xAABBCCDD_00112233 {
		t.Errorf("mtime read %#x", val)
	}
	if val, _ := v.Load(0, clint.MtimeOff+4, 4); val != 0xAABBCCDD {
		t.Errorf("mtime high half %#x", val)
	}
	// mtimecmp write through the virtual registers (halves).
	if !v.Store(0, clint.MtimecmpOff, 4, 0x1111) {
		t.Fatal("low half store")
	}
	if !v.Store(0, clint.MtimecmpOff+4, 4, 0x2222) {
		t.Fatal("high half store")
	}
	if v.VirtMtimecmp(0) != 0x2222_0000_1111 {
		t.Errorf("vmtimecmp = %#x", v.VirtMtimecmp(0))
	}
	// msip write routes to the virtual line of the addressed hart.
	if !v.Store(0, clint.MsipOff+4, 4, 1) {
		t.Fatal("msip store")
	}
	if v.VirtPending(1)&(1<<rv.IntMSoft) == 0 {
		t.Error("virtual msip for hart 1")
	}
	if val, _ := v.Load(0, clint.MsipOff+4, 4); val != 1 {
		t.Error("msip readback")
	}
	// Writes to mtime are filtered (accepted, ignored).
	if !v.Store(0, clint.MtimeOff, 8, 42) {
		t.Fatal("mtime store must be accepted")
	}
	if phys.Time() != 0xAABBCCDD_00112233 {
		t.Error("mtime write must be filtered, not forwarded")
	}
	// Bad accesses rejected.
	if _, ok := v.Load(0, 0x9000, 4); ok {
		t.Error("hole must fail")
	}
	if v.Store(0, clint.MsipOff, 8, 1) {
		t.Error("8-byte msip must fail")
	}
}
