package core

import (
	"govfm/internal/dev/iopmp"
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// Virtual IOPMP (paper §4.3): "On platforms with IOPMP support, Miralis
// would virtualize the IOPMP to restrict which memory regions can be
// accessed through DMA by the firmware, similarly to how Miralis restricts
// direct memory accesses through PMP virtualization." The paper's boards
// lacked the hardware; the simulated platform can have one
// (hart.Config.HasIOPMP), and this file implements exactly the design the
// paper sketches:
//
//   - the IOPMP MMIO region is protected with a PMP entry, so firmware
//     accesses trap and are emulated against a *virtual* entry file;
//   - the physical unit is multiplexed like the CPU's PMP (Fig. 5):
//     entry 0 denies DMA into monitor memory, entry 1 carries the
//     policy's DMA rule, the firmware's virtual entries follow at lower
//     priority, and a final allow-all entry keeps legitimate OS DMA
//     working once the unit is enabled;
//   - overhead accrues only on IOPMP modification (each trapped write
//     reinstall), matching the paper's cost claim.

// DMAPolicy is the optional policy extension supplying an IOPMP rule with
// priority over the firmware's virtual entries.
type DMAPolicy interface {
	// PolicyIOPMP returns the policy's DMA rule; a zero rule means none.
	PolicyIOPMP(c *HartCtx) PMPRule
}

// viopmpReserved counts the physical entries the monitor keeps for itself:
// self-protection, the policy rule, and the trailing allow-all.
const viopmpReserved = 3

// VirtIOPMP is the virtual entry file exposed to the firmware.
type VirtIOPMP struct {
	phys *iopmp.IOPMP
	virt *pmp.File

	// Writes counts mediated firmware stores (each one reinstalls the
	// physical unit).
	Writes uint64
}

// NewVirtIOPMP wraps the physical unit.
func NewVirtIOPMP(phys *iopmp.IOPMP) *VirtIOPMP {
	n := phys.NumEntries() - viopmpReserved
	if n < 1 {
		n = 1
	}
	return &VirtIOPMP{phys: phys, virt: pmp.NewFile(n)}
}

// NumVirtEntries returns the number of virtual IOPMP entries.
func (v *VirtIOPMP) NumVirtEntries() int { return v.virt.NumEntries() }

// Virt exposes the virtual file (tests).
func (v *VirtIOPMP) Virt() *pmp.File { return v.virt }

// load reads the virtual register file with the device's layout.
func (v *VirtIOPMP) load(off uint64, size int) (uint64, bool) {
	if size != 8 || off%8 != 0 {
		return 0, false
	}
	switch {
	case off >= iopmp.CfgOff && off < iopmp.CfgOff+uint64(v.virt.NumEntries()):
		return v.virt.CfgReg(int(off-iopmp.CfgOff) / 4), true
	case off >= iopmp.AddrOff && off < iopmp.AddrOff+uint64(8*v.virt.NumEntries()):
		return v.virt.Addr(int(off-iopmp.AddrOff) / 8), true
	}
	return 0, false
}

// store writes the virtual register file.
func (v *VirtIOPMP) store(off uint64, size int, val uint64) bool {
	if size != 8 || off%8 != 0 {
		return false
	}
	v.Writes++
	switch {
	case off >= iopmp.CfgOff && off < iopmp.CfgOff+uint64(v.virt.NumEntries()):
		v.virt.SetCfgReg(int(off-iopmp.CfgOff)/4, val)
		return true
	case off >= iopmp.AddrOff && off < iopmp.AddrOff+uint64(8*v.virt.NumEntries()):
		v.virt.SetAddr(int(off-iopmp.AddrOff)/8, val)
		return true
	}
	return false
}

// installIOPMP programs the physical unit: monitor rule, policy rule,
// virtual entries, allow-all backstop. The unit stays unprogrammed (and
// thus permissive) until either the policy or the firmware wants rules, so
// platforms that never use it pay nothing (§4.3).
func (m *Monitor) installIOPMP(ctx *HartCtx) {
	if m.viopmp == nil {
		return
	}
	f := m.viopmp.phys.File()
	var policyRule PMPRule
	if dp, ok := m.Policy.(DMAPolicy); ok {
		policyRule = dp.PolicyIOPMP(ctx)
	}
	virtActive := false
	for i := 0; i < m.viopmp.virt.NumEntries(); i++ {
		if pmp.AMode(m.viopmp.virt.Cfg(i)) != pmp.AOff {
			virtActive = true
			break
		}
	}
	if policyRule == (PMPRule{}) && !virtActive {
		for i := 0; i < f.NumEntries(); i++ {
			f.ForceCfg(i, 0)
		}
		return
	}
	// Entry 0: no DMA into monitor memory, ever.
	f.ForceAddr(0, pmp.NAPOTAddr(MiralisBase, MiralisSize))
	f.ForceCfg(0, pmp.ANapot<<3)
	// Entry 1: the policy's DMA rule.
	f.ForceAddr(1, policyRule.Addr)
	f.ForceCfg(1, policyRule.Cfg)
	// Firmware's virtual entries.
	for i := 0; i < m.viopmp.virt.NumEntries(); i++ {
		f.ForceAddr(2+i, m.viopmp.virt.Addr(i))
		f.ForceCfg(2+i, m.viopmp.virt.Cfg(i))
	}
	// Backstop: everything not explicitly constrained stays reachable for
	// legitimate OS-driven DMA.
	last := f.NumEntries() - 1
	f.ForceAddr(last, rv.Mask(54))
	f.ForceCfg(last, pmp.CfgR|pmp.CfgW|pmp.ANapot<<3)
	ctx.Hart.ChargeCycles(uint64(f.NumEntries()) * ctx.Hart.Cfg.Cost.PMPWrite)
}

// emulateIOPMPTrap handles a firmware load/store that hit the IOPMP
// window.
func (m *Monitor) emulateIOPMPTrap(ctx *HartCtx, ins EmuInstr, addr, epc uint64) (uint64, bool) {
	if m.viopmp == nil {
		return 0, false
	}
	h := ctx.Hart
	off := addr - iopmpBase
	ctx.Stats.MMIOEmulations++
	if ins.Op == EmuLoad {
		val, ok := m.viopmp.load(off, ins.Size)
		if !ok {
			return 0, false
		}
		h.SetReg(ins.Rd, val)
	} else {
		if !m.viopmp.store(off, ins.Size, h.Reg(ins.Rs2)) {
			return 0, false
		}
		m.installIOPMP(ctx)
	}
	return epc + 4, true
}
