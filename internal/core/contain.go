package core

import (
	"fmt"

	"govfm/internal/asm"
	"govfm/internal/hart"
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// Crash containment and watchdog recovery. The paper's isolation story
// (§5) keeps a misbehaving firmware from *corrupting* the OS; this file
// keeps it from *wedging* the machine: a firmware that double-faults,
// spins past its cycle budget, or sleeps with every wakeup masked is
// written off and the monitor recovers — by restarting the firmware from
// its boot snapshot while the OS has not launched yet, or by switching to
// a degraded mode where the monitor itself answers the OS's SBI calls.
// Dorami and VOSySmonitoRV make the same argument for their monitor
// layers: isolation without recovery still loses availability.

// defaultMaxRestarts bounds containment-driven firmware restarts when
// Options.MaxRestarts is zero.
const defaultMaxRestarts = 8

// degradedMedeleg is the exception delegation installed for the OS once
// the firmware is written off: everything the OS handles natively is
// delegated; ecalls, illegal instructions (time-CSR emulation), and
// misaligned accesses stay with the monitor, which services them in place
// of the firmware.
const degradedMedeleg = (uint64(1)<<rv.ExcInstrAddrMisaligned |
	1<<rv.ExcInstrAccessFault |
	1<<rv.ExcBreakpoint |
	1<<rv.ExcLoadAccessFault |
	1<<rv.ExcStoreAccessFault |
	1<<rv.ExcEcallFromU |
	1<<rv.ExcInstrPageFault |
	1<<rv.ExcLoadPageFault |
	1<<rv.ExcStorePageFault) & vMedelegMask

// misbehave dispatches a detected firmware failure: the policy sees it
// first (OnFirmwareMisbehavior), then the monitor's default containment
// runs. Returns the PC execution resumes at.
func (m *Monitor) misbehave(ctx *HartCtx, f *MonitorFault, fallback uint64) uint64 {
	m.trace("misbehavior:"+f.Kind.String(), ctx)
	if ctx.Degraded {
		// Already degraded: the firmware is written off, so there is no
		// containment left to fire. Whatever the policy answers, record the
		// fault exactly once and never re-enter containFirmware — a second
		// pass would burn a restart slot, rebuild the virtual M-state the
		// degraded OS depends on, and (with an unlucky policy Action) leave
		// two ring entries for one event.
		act := m.Policy.OnFirmwareMisbehavior(ctx, f)
		f.Contained = act != ActBlock
		if !m.faultJustRecorded(ctx) {
			m.recordFault(f)
		}
		if act == ActBlock {
			m.halt(ctx, "policy blocked misbehaving firmware (degraded): "+f.Reason)
			return fallback
		}
		// Re-arm the progress clocks so the surviving OS gets a full budget.
		ctx.lastOSInstret = ctx.Hart.Instret
		ctx.osProgressCycles = ctx.Hart.Cycles
		return ctx.takeOverride(fallback)
	}
	switch m.Policy.OnFirmwareMisbehavior(ctx, f) {
	case ActHandled:
		// The policy claims the recovery; re-arm the budgets for it.
		f.Contained = true
		m.recordFault(f)
		ctx.fwEnterCycles = ctx.Hart.Cycles
		ctx.lastOSInstret = ctx.Hart.Instret
		ctx.osProgressCycles = ctx.Hart.Cycles
		return ctx.takeOverride(fallback)
	case ActBlock:
		m.recordFault(f)
		m.halt(ctx, "policy blocked misbehaving firmware: "+f.Reason)
		return fallback
	}
	return m.containFirmware(ctx, f, fallback)
}

// containFirmware is the monitor's default recovery: reinitialize the
// virtual firmware from the boot snapshot, preserving the OS's supervisor
// shadow, and either restart the firmware (no OS yet) or abandon it for
// degraded mode (OS live). Returns the resume PC.
func (m *Monitor) containFirmware(ctx *HartCtx, f *MonitorFault, fallback uint64) uint64 {
	h := ctx.Hart
	fromWorld := ctx.World()
	if fromWorld == WorldOS {
		// The fault fired while the OS held the hart (starvation watchdog):
		// the physical S CSRs are live and the virtual shadow is stale, so
		// sync it before rebuilding around it.
		m.saveOSState(ctx)
	}
	max := m.Opts.MaxRestarts
	if max <= 0 {
		max = defaultMaxRestarts
	}
	if ctx.Stats.FirmwareRestarts >= uint64(max) {
		m.recordFault(f)
		m.halt(ctx, fmt.Sprintf("firmware restart limit (%d) exceeded: %s", max, f.Reason))
		return fallback
	}
	ctx.Stats.FirmwareRestarts++
	f.Contained = true
	m.recordFault(f)
	m.trace("contain:"+f.Kind.String(), ctx)

	// Reload the firmware image: the crash may have corrupted its text.
	if m.bootFW != nil {
		_ = m.Machine.Bus.WriteBytes(FirmwareBase, m.bootFW)
	}

	// Rebuild the virtual M-state from scratch while carrying over the
	// S-mode shadow — that state belongs to the OS, not the firmware.
	old := ctx.V
	nv := newVirtCSRs(m.NumVirtPMP())
	if ctx.Hart.Cfg.HasH {
		nv.enableH()
	}
	nv.Stvec, nv.Scounteren, nv.Senvcfg = old.Stvec, old.Scounteren, old.Senvcfg
	nv.Sscratch, nv.Sepc, nv.Scause = old.Sscratch, old.Sepc, old.Scause
	nv.Stval, nv.Satp, nv.Stimecmp = old.Stval, old.Satp, old.Stimecmp
	nv.Mstatus = nv.Mstatus&^vSstatusMask | old.Mstatus&vSstatusMask
	nv.Mie = old.Mie & rv.SIntMask
	nv.MipSW = old.MipSW & rv.SIntMask
	nv.Menvcfg = old.Menvcfg // Sstc enable is OS-visible state
	ctx.V = nv
	ctx.vTrapDepth = 0
	ctx.VirtWaiting = false
	ctx.mprvActive = false
	// Drop firmware-owned virtual CLINT state; the OS deadline armed by
	// the fast path survives untouched.
	m.vclint.SetVirtMtimecmp(h.ID, ^uint64(0))
	m.vclint.SetVirtMsip(h.ID, false)

	// Degraded mode only makes sense when a supervisor OS exists for the
	// monitor to serve: it needs a trap vector to deliver into and SBI
	// calls to answer. A firmware whose payload never reached S-mode (the
	// M-mode RTOS and its U-mode app, or a crash before the OS programmed
	// stvec) gets the whole-system restart instead — resuming "the OS" at
	// a zero stvec would just fault-loop at address 0.
	hasOS := ctx.osLive && (nv.Stvec != 0 || h.SInstret > 0)
	if !hasOS {
		// The OS has not (meaningfully) launched: restart the firmware from
		// its boot snapshot. Time is monotonic, so the counters are not
		// rewound.
		if s := m.bootSnap(h.ID); s != nil {
			cyc, ins, sins := h.Cycles, h.Instret, h.SInstret
			h.Restore(s)
			h.Cycles, h.Instret, h.SInstret = cyc, ins, sins
		}
		ctx.VirtMode = rv.ModeM
		ctx.osLive = false // the reboot gets the boot-regime watchdog again
		ctx.fwEnterCycles = h.Cycles
		m.installPhysCSRs(ctx, WorldFirmware)
		m.installPMP(ctx, WorldFirmware)
		m.trace("contain:restart", ctx)
		m.observeContain(ctx, "contain:restart")
		return m.Opts.FirmwareEntry
	}

	// The OS is live: enter degraded mode. The firmware world is never
	// re-entered; from here on the monitor answers SBI calls itself.
	ctx.Degraded = true
	nv.Medeleg = degradedMedeleg
	nv.Mcounteren = ^uint64(0)
	// Grant the OS all memory through the rebuilt virtual PMP. The grant
	// the OS ran under came from the dead firmware's PMP programming; with
	// the virtual file zeroed, no entry matches and S-mode would be denied
	// every access — an invisible, fully-delegated fault loop. The policy's
	// own rules sit at higher priority and still apply.
	last := nv.PMP.NumEntries() - 1
	nv.PMP.ForceAddr(last, rv.Mask(54))
	nv.PMP.ForceCfg(last, pmp.CfgR|pmp.CfgW|pmp.CfgX|pmp.ANapot<<3)
	// Re-arm the starvation clock for the recovered OS.
	ctx.lastOSInstret = h.Instret
	ctx.osProgressCycles = h.Cycles
	m.trace("contain:degraded", ctx)
	m.observeContain(ctx, "contain:degraded")
	if fromWorld == WorldOS {
		// No world switch will happen on resume (OS → OS), so push the
		// repaired state — degraded delegation, allow-all virtual PMP —
		// into the physical registers here, and resume exactly where the
		// OS was stalled.
		m.installPhysCSRs(ctx, WorldOS)
		m.installPMP(ctx, WorldOS)
		return fallback
	}
	if ps := ctx.pendingSBI; ps != nil {
		// The firmware died mid-call: answer it now. The virtual mcause
		// keeps the ecall cause so policy GPR bookkeeping (sandbox scrub/
		// restore) still recognizes an SBI return path.
		ctx.pendingSBI = nil
		nv.Mcause = ps.Cause
		copy(h.Regs[asm.A0:asm.A7+1], ps.Args[:])
		ctx.VirtMode = ps.callerMode()
		return m.degradedEcall(ctx, ps.EPC)
	}
	ctx.VirtMode = ctx.osEntry.Mode
	if ctx.VirtMode == rv.ModeM {
		// Defensive: an uncaptured resume point cannot target vM.
		ctx.VirtMode = rv.ModeS
	}
	return ctx.osEntry.PC
}

// callerMode maps the pending call's ecall cause to the calling mode.
func (p *pendingCall) callerMode() rv.Mode {
	if p.Cause == rv.ExcEcallFromU {
		return rv.ModeU
	}
	return rv.ModeS
}

// bootSnap returns the boot snapshot for hart id, if captured.
func (m *Monitor) bootSnap(id int) *hart.Snapshot {
	if id < len(m.bootSnaps) {
		return m.bootSnaps[id]
	}
	return nil
}

// capturePendingSBI records the OS's SBI call before it is re-injected
// into the firmware, so containment can answer it if the firmware dies.
func (m *Monitor) capturePendingSBI(ctx *HartCtx, cause, epc uint64) {
	if !m.Opts.Containment {
		return
	}
	p := &pendingCall{Cause: cause, EPC: epc}
	copy(p.Args[:], ctx.Hart.Regs[asm.A0:asm.A7+1])
	ctx.pendingSBI = p
}

// rejectToFirmware re-injects an OS trap the monitor did not absorb. In
// normal operation it enters the virtual firmware; in degraded mode the
// firmware no longer exists, so the monitor services what the firmware
// would have (time-CSR reads, misaligned accesses) and delivers the rest
// to the OS's own handler, as a fully-delegating recovery firmware would.
func (m *Monitor) rejectToFirmware(ctx *HartCtx, code, tval, epc uint64) uint64 {
	// The physical mtval2 is still live from the trap that got us here; a
	// guest-page fault re-injected into the virtual firmware carries it.
	var tval2 uint64
	if ctx.Hart.Cfg.HasH {
		tval2 = ctx.Hart.CSR.Mtval2
	}
	if !ctx.Degraded {
		return m.injectVirtTrapG(ctx, code, tval, tval2, epc)
	}
	m.forceOffload = true
	defer func() { m.forceOffload = false }()
	switch code {
	case rv.ExcIllegalInstr:
		if vpc, ok := m.fastPathIllegal(ctx, uint32(tval), epc); ok {
			ctx.Stats.FastPathHits++
			return vpc
		}
	case rv.ExcLoadAddrMisaligned, rv.ExcStoreAddrMisaligned:
		if vpc, ok := m.fastPathMisaligned(ctx, code, tval, epc); ok {
			ctx.Stats.FastPathHits++
			return vpc
		}
	}
	return m.injectVirtSTrap(ctx, code, tval, tval2, epc)
}

// degradedEcall answers an OS SBI call with the monitor's own fallback
// implementation: the five fast paths (forced on), plus a minimal Base /
// console / reset / HSM surface. Anything else returns NOT_SUPPORTED —
// degraded mode trades SBI coverage for availability.
func (m *Monitor) degradedEcall(ctx *HartCtx, epc uint64) uint64 {
	h := ctx.Hart
	ctx.Stats.DegradedCalls++
	m.forceOffload = true
	vpc, ok := m.fastPathEcall(ctx, epc)
	m.forceOffload = false
	if ok {
		ctx.Stats.FastPathHits++
		return vpc
	}
	ext, fn := h.Reg(asm.A7), h.Reg(asm.A6)
	switch ext {
	case rv.SBIExtBase:
		switch fn {
		case rv.SBIBaseGetSpecVersion:
			sbiRet(ctx, rv.SBISuccess, 2<<24) // SBI v2.0
		case rv.SBIBaseProbeExt:
			var avail uint64
			switch h.Reg(asm.A0) {
			case rv.SBIExtBase, rv.SBIExtTimer, rv.SBIExtIPI, rv.SBIExtRfence,
				rv.SBIExtReset, rv.SBIExtDebug:
				avail = 1
			}
			sbiRet(ctx, rv.SBISuccess, avail)
		default:
			// Impl id/version, mvendorid/marchid/mimpid: all zero for the
			// degraded fallback.
			sbiRet(ctx, rv.SBISuccess, 0)
		}
	case rv.SBIExtDebug:
		switch fn {
		case rv.SBIDebugWriteByte:
			h.Bus.Store(hart.UartBase, 1, h.Reg(asm.A0)&0xFF)
			sbiRet(ctx, rv.SBISuccess, 0)
		default:
			sbiRet(ctx, rv.SBIErrNotSupported, 0)
		}
	case rv.SBIExtReset:
		// Any reset request from a degraded machine ends the run: a clean
		// shutdown passes, everything else reports the reason.
		if h.Reg(asm.A0) == 0 && h.Reg(asm.A1) == 0 {
			h.Bus.Store(hart.ExitBase, 4, hart.ExitPass)
		} else {
			h.Bus.Store(hart.ExitBase, 4, hart.ExitFail|h.Reg(asm.A1)<<16)
		}
	case rv.SBIExtHSM:
		if fn == rv.SBIHSMHartStatus {
			sbiRet(ctx, rv.SBISuccess, 1) // STOPPED: no new harts come up
		} else {
			sbiRet(ctx, rv.SBIErrNotSupported, 0)
		}
	case rv.SBILegacyConsolePut:
		h.Bus.Store(hart.UartBase, 1, h.Reg(asm.A0)&0xFF)
		h.SetReg(asm.A0, 0)
	case rv.SBILegacyShutdown:
		h.Bus.Store(hart.ExitBase, 4, hart.ExitPass)
	default:
		sbiRet(ctx, rv.SBIErrNotSupported, 0)
	}
	return epc + 4
}

// injectVirtSTrap performs virtual supervisor trap entry: scause/sepc/
// stval latched, SIE stacked into SPIE, SPP set, resume at stvec. Shared
// by the delegated branch of injectVirtTrap and degraded-mode delivery.
func (m *Monitor) injectVirtSTrap(ctx *HartCtx, cause, tval, tval2, epc uint64) uint64 {
	v := ctx.V
	v.Scause = cause
	v.Sepc = vLegalizeEpc(epc)
	v.Stval = tval
	if v.Mstatus&(1<<1) != 0 { // SIE -> SPIE
		v.Mstatus |= 1 << 5
	} else {
		v.Mstatus &^= 1 << 5
	}
	v.Mstatus &^= 1 << 1 // SIE = 0
	if ctx.VirtMode == rv.ModeS {
		v.Mstatus |= 1 << 8
	} else {
		v.Mstatus &^= 1 << 8
	}
	if ctx.Hart.Cfg.HasH {
		hs := v.Hstatus &^ (uint64(1)<<rv.HstatusSPV | 1<<rv.HstatusGVA)
		if ctx.VirtV {
			hs |= 1 << rv.HstatusSPV
			hs &^= 1 << rv.HstatusSPVP
			if ctx.VirtMode == rv.ModeS {
				hs |= 1 << rv.HstatusSPVP
			}
			if !rv.CauseIsInterrupt(cause) &&
				rv.CauseWritesGVA(rv.CauseCode(cause)) {
				hs |= 1 << rv.HstatusGVA
			}
		}
		v.Hstatus = hs
		v.Htval = tval2
		v.Htinst = 0
		ctx.VirtV = false
	}
	ctx.VirtMode = rv.ModeS
	ctx.VirtWaiting = false
	return v.Stvec &^ 3
}

// watchdogHook builds the per-hart watchdog closure installed on
// hart.Watchdog: it runs after every machine step, outside the trap path,
// because a runaway firmware takes no traps the monitor could observe.
func (m *Monitor) watchdogHook(ctx *HartCtx) func(*hart.Hart) {
	return func(h *hart.Hart) { m.watchdogPoll(ctx) }
}

// watchdogPoll charges the watchdog budget and fires on exhaustion. Two
// regimes share one budget value:
//
//   - Before the OS launches, the budget bounds a single firmware-world
//     residency (a stuck boot), sliding while the firmware idles in wfi
//     with a wakeup armed.
//
//   - Once the OS is live, the budget bounds cycles without a single
//     retired S-mode instruction, in *either* world. A per-entry budget
//     cannot see trap ping-pong (every firmware entry is short, but the
//     OS never advances) or fully-delegated fault loops (the monitor is
//     never entered at all); the starvation clock catches both. The
//     clock slides while the OS itself idles in wfi.
func (m *Monitor) watchdogPoll(ctx *HartCtx) {
	budget := m.Opts.WatchdogBudget
	h := ctx.Hart
	if budget == 0 || !m.Opts.Containment || h.Halted || h.Stopped {
		return
	}
	if ctx.Degraded {
		// Degraded regime: the monitor is already the OS's service layer of
		// last resort. If the OS still starves, there is nothing further to
		// contain — stop with a diagnosable fault instead of spinning
		// forever.
		if h.Instret != ctx.lastOSInstret {
			ctx.lastOSInstret = h.Instret
			ctx.osProgressCycles = h.Cycles
			return
		}
		if h.Waiting {
			ctx.osProgressCycles = h.Cycles
			return
		}
		if h.Cycles-ctx.osProgressCycles <= budget {
			return
		}
		ctx.Stats.WatchdogFires++
		m.halt(ctx, fmt.Sprintf(
			"no OS progress in %d cycles under degraded mode", budget))
		return
	}
	if ctx.World() == WorldFirmware && ctx.VirtWaiting && m.fwWakeupPossible(ctx) {
		// Legitimately idle: a wakeup will (or still can) arrive, so the
		// firmware is waiting, not stuck. Slide both clocks.
		ctx.fwEnterCycles = h.Cycles
		ctx.osProgressCycles = h.Cycles
		return
	}
	if !ctx.osLive {
		if ctx.World() != WorldFirmware {
			return
		}
		if h.Cycles-ctx.fwEnterCycles <= budget {
			return
		}
		m.watchdogFire(ctx, fmt.Sprintf(
			"firmware exceeded its %d-cycle budget before OS launch", budget))
		return
	}
	if ctx.World() == WorldOS {
		if h.Instret != ctx.lastOSInstret {
			// The OS retired something: progress. (The baseline is resynced
			// at every OS-world entry, so this can only be OS retirement.)
			ctx.lastOSInstret = h.Instret
			ctx.osProgressCycles = h.Cycles
			return
		}
		if h.Waiting {
			// The OS parked itself in wfi: idle, not starved.
			ctx.osProgressCycles = h.Cycles
			return
		}
	}
	if h.Cycles-ctx.osProgressCycles <= budget {
		return
	}
	m.watchdogFire(ctx, fmt.Sprintf(
		"no OS progress in %d cycles (firmware stuck or OS starved)", budget))
}

// fwWakeupPossible reports whether anything can still wake the firmware's
// virtual wfi: an enabled virtual interrupt already pending, an enabled
// virtual timer with an armed comparator (time is monotonic, so it will
// fire), or an enabled software interrupt with another hart still running
// to send it. An enabled mie alone is not enough — a firmware sleeping on
// interrupt sources that no longer exist is stuck, not idle.
func (m *Monitor) fwWakeupPossible(ctx *HartCtx) bool {
	v := ctx.V
	enabled := v.Mie & rv.MIntMask
	if enabled == 0 {
		return false
	}
	if m.virtMip(ctx)&enabled != 0 {
		return true
	}
	if enabled&(1<<rv.IntMTimer) != 0 &&
		m.vclint.VirtMtimecmp(ctx.Hart.ID) != ^uint64(0) {
		return true
	}
	if enabled&(1<<rv.IntMSoft) != 0 {
		for _, other := range m.Ctx {
			if other != ctx && !other.Hart.Halted && !other.Hart.Stopped {
				return true
			}
		}
	}
	return false
}

// watchdogFire records the expiry and runs containment.
func (m *Monitor) watchdogFire(ctx *HartCtx, reason string) {
	h := ctx.Hart
	ctx.Stats.WatchdogFires++
	m.observeContain(ctx, "watchdog:fire")
	h.ChargeCycles(h.Cfg.Cost.MonitorEntry)
	f := m.newFault(ctx, FaultWatchdog, reason)
	prev := ctx.World()
	vpc := m.misbehave(ctx, f, h.PC)
	if h.Halted {
		return
	}
	m.resume(ctx, prev, vpc)
}
