// Package core implements Miralis, the virtual firmware monitor: it runs
// unmodified firmware images in a virtual M-mode (physical U-mode) through
// trap-and-emulate, multiplexes the physical PMP file between its own
// protection, policy protection, and the firmware's virtual PMP registers,
// emulates the CLINT, injects virtual interrupts, performs world switches
// between the firmware and the natively executing OS, and offloads the five
// hot SBI/emulation paths (paper §3.4) when fast-path offloading is on.
//
// The monitor attaches to a simulated machine through the hart.Monitor
// hook: every trap that architecturally enters M-mode is delivered to Go
// code here, exactly the position the Rust Miralis occupies on hardware.
package core

import (
	"fmt"

	"govfm/internal/hart"
	"govfm/internal/obs"
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// Memory layout of the monitored machine. The regions are naturally
// aligned powers of two so single NAPOT entries cover them.
const (
	MiralisBase  = hart.DramBase              // monitor text/data/stacks
	MiralisSize  = 0x10_0000                  // 1 MiB
	FirmwareBase = MiralisBase + MiralisSize  // virtual firmware image
	FirmwareSize = 0x10_0000                  // 1 MiB
	OSBase       = hart.DramBase + 0x800_0000 // OS region
	OSSize       = 0x800_0000                 // 128 MiB
	DramSize     = 0x1000_0000                // 256 MiB total
)

// Physical PMP layout (paper Fig. 5). Entries in priority order:
//
//	0             Miralis self-protection (no permissions)
//	1             virtual-device MMIO (the CLINT)
//	2, 3          policy slots (higher priority than the virtual PMP)
//	4             hardwired address-0 entry: ToR base for virtual PMP 0
//	5 .. n-2      virtual PMP entries
//	n-1           all-memory entry: RWX in vM-mode (M ignores unlocked
//	              PMP), execute-only under MPRV emulation, off for the OS
const (
	pmpSelf     = 0
	pmpDevices  = 1
	pmpOverhead = 6 // self + devices + 2 policy + zero + all-memory
	PolicySlots = 2
)

// Dynamic layout accessors: virtualizing the PLIC consumes one extra
// physical entry for its MMIO window, shifting everything below it.
func (m *Monitor) pmpPlic() int {
	if !m.Opts.VirtualizePLIC {
		return -1
	}
	return 2
}

func (m *Monitor) pmpIOPMP() int {
	if !m.Opts.VirtualizeIOPMP {
		return -1
	}
	i := 2
	if m.Opts.VirtualizePLIC {
		i++
	}
	return i
}

func (m *Monitor) pmpPolicy0() int {
	i := 2
	if m.Opts.VirtualizePLIC {
		i++
	}
	if m.Opts.VirtualizeIOPMP {
		i++
	}
	return i
}

func (m *Monitor) pmpZero() int      { return m.pmpPolicy0() + PolicySlots }
func (m *Monitor) pmpVirtFirst() int { return m.pmpZero() + 1 }

func (m *Monitor) overheadEntries() int {
	n := pmpOverhead
	if m.Opts.VirtualizePLIC {
		n++
	}
	if m.Opts.VirtualizeIOPMP {
		n++
	}
	return n
}

// World identifies which side of the world switch a hart is executing.
type World int

const (
	WorldFirmware World = iota // virtual M-mode (physical U)
	WorldOS                    // direct execution (physical S/U)
)

func (w World) String() string {
	if w == WorldFirmware {
		return "firmware"
	}
	return "os"
}

// Action is a policy hook's verdict.
type Action int

const (
	// ActDefault lets the monitor's default handling proceed.
	ActDefault Action = iota
	// ActHandled means the policy fully handled the event; the monitor
	// resumes without its default behaviour.
	ActHandled
	// ActBlock denies the operation: the monitor stops the machine (the
	// paper's development behaviour for sandbox violations).
	ActBlock
)

// PMPRule is a policy-owned physical PMP entry.
type PMPRule struct {
	Cfg  byte
	Addr uint64
}

// Policy is the isolation-policy module interface (paper §5.1): seven
// optional hooks — three for firmware events, three for OS events, one for
// interrupts — plus policy PMP slots with priority over the virtual PMPs.
// Embed BasePolicy to implement only the hooks a policy needs.
type Policy interface {
	Name() string
	// OnFirmwareEcall runs when the virtual firmware executes ecall.
	OnFirmwareEcall(c *HartCtx) Action
	// OnFirmwareTrap runs on any other trap taken while in vM-mode.
	OnFirmwareTrap(c *HartCtx, cause, tval uint64) Action
	// OnOSEcall runs when the OS performs an SBI call.
	OnOSEcall(c *HartCtx) Action
	// OnOSTrap runs on any other trap from the OS that reaches M-mode.
	OnOSTrap(c *HartCtx, cause, tval uint64) Action
	// OnInterrupt runs when a physical M-mode interrupt is intercepted.
	OnInterrupt(c *HartCtx, code uint64) Action
	// OnWorldSwitch runs on every transition between worlds, after the
	// monitor's own bookkeeping and before CSR installation; to is the
	// world being entered.
	OnWorldSwitch(c *HartCtx, to World)
	// OnFirmwareMisbehavior runs when the monitor detects that the virtual
	// firmware can no longer be trusted to make progress: watchdog budget
	// exhaustion, a virtual double fault, a hopeless wfi, or a panic inside
	// emulation performed on the firmware's behalf. ActDefault lets the
	// monitor contain the fault (restart the firmware, or answer SBI calls
	// itself in degraded mode); ActHandled claims the recovery (the budget
	// is re-armed); ActBlock stops the machine.
	OnFirmwareMisbehavior(c *HartCtx, f *MonitorFault) Action
	// PolicyPMP returns the policy's physical PMP slots (at most
	// PolicySlots rules) for the given world.
	PolicyPMP(c *HartCtx, w World) []PMPRule
}

// BasePolicy is a no-op Policy for embedding.
type BasePolicy struct{}

// Name implements Policy.
func (BasePolicy) Name() string { return "default" }

// OnFirmwareEcall implements Policy.
func (BasePolicy) OnFirmwareEcall(*HartCtx) Action { return ActDefault }

// OnFirmwareTrap implements Policy.
func (BasePolicy) OnFirmwareTrap(*HartCtx, uint64, uint64) Action { return ActDefault }

// OnOSEcall implements Policy.
func (BasePolicy) OnOSEcall(*HartCtx) Action { return ActDefault }

// OnOSTrap implements Policy.
func (BasePolicy) OnOSTrap(*HartCtx, uint64, uint64) Action { return ActDefault }

// OnInterrupt implements Policy.
func (BasePolicy) OnInterrupt(*HartCtx, uint64) Action { return ActDefault }

// OnWorldSwitch implements Policy.
func (BasePolicy) OnWorldSwitch(*HartCtx, World) {}

// OnFirmwareMisbehavior implements Policy.
func (BasePolicy) OnFirmwareMisbehavior(*HartCtx, *MonitorFault) Action { return ActDefault }

// PolicyPMP implements Policy.
func (BasePolicy) PolicyPMP(*HartCtx, World) []PMPRule { return nil }

// OffloadOp selects individual fast-path operations for the offload
// ablation (paper §3.4 lists the five; each is 10-100 lines of monitor
// code).
type OffloadOp uint32

// The five offloadable operation classes.
const (
	OffloadTimeRead OffloadOp = 1 << iota
	OffloadTimer
	OffloadIPI
	OffloadRfence
	OffloadMisaligned

	// OffloadAll enables every fast path.
	OffloadAll = OffloadTimeRead | OffloadTimer | OffloadIPI |
		OffloadRfence | OffloadMisaligned
)

// Options configures the monitor.
type Options struct {
	// Policy is the isolation policy module; nil means BasePolicy.
	Policy Policy
	// Offload enables fast-path offloading of the five hot operations.
	Offload bool
	// OffloadMask restricts offloading to a subset of the operations
	// (zero means all five). Used by the fast-path ablation.
	OffloadMask OffloadOp
	// VirtualizePLIC enables the experimental virtual PLIC (paper §4.3):
	// the PLIC MMIO region is trapped, M-context accesses are mediated,
	// and M-mode external interrupts are re-injected virtually. It costs
	// one physical PMP entry (one fewer virtual PMP for the firmware).
	VirtualizePLIC bool
	// VirtualizeIOPMP virtualizes the platform's IOPMP (paper §4.3): the
	// firmware programs virtual DMA-protection entries, multiplexed onto
	// the physical unit below the monitor's and the policy's rules. The
	// machine must have been built with hart.Config.HasIOPMP. Costs one
	// physical PMP entry for the MMIO window.
	VirtualizeIOPMP bool
	// FirmwareEntry is the virtual firmware's entry point.
	FirmwareEntry uint64
	// Trace, when non-nil, receives monitor events.
	Trace func(event string, c *HartCtx)
	// Obs, when non-nil, receives the monitor's metrics (via registry
	// collectors) and structured events (world spans, SBI instants,
	// containment outcomes) on the simulated timeline. Purely
	// observational: attaching it never changes cycle counts.
	Obs *obs.Observer

	// Containment enables crash containment and recovery: double faults
	// and fatal conditions in the virtual firmware restart it from the
	// boot snapshot (or divert to degraded-mode SBI once the OS runs)
	// instead of wedging the simulation, and monitor panics become
	// structured MonitorFaults. It is off by default because containment
	// intentionally departs from faithful emulation — the lockstep fuzzer
	// must see the reference machine's behaviour, wedges included.
	Containment bool
	// WatchdogBudget, when non-zero and Containment is on, is the cycle
	// budget the firmware world may consume per entry before the watchdog
	// declares it stuck and fires OnFirmwareMisbehavior. A firmware idling
	// in wfi with a wakeup source armed re-arms the budget (it is waiting,
	// not stuck).
	WatchdogBudget uint64
	// MaxRestarts caps containment-driven firmware reinitializations per
	// hart before the monitor gives up and halts (0 means a default of 8).
	MaxRestarts int

	// Divergence hooks for differential harnesses (internal/verif/fuzz):
	// they observe the emulation path without perturbing it, letting a
	// lockstep fuzzer attribute architectural-state changes to monitor
	// decisions and feed its coverage signal.

	// OnEmulate, when non-nil, is called after the monitor emulates a
	// privileged instruction (or rejects it as illegal) for the virtual
	// hart, with the raw encoding that trapped.
	OnEmulate func(c *HartCtx, raw uint32)
	// OnVirtTrap, when non-nil, is called on every virtual trap injection
	// with the virtual cause and tval, before the entry mutates the
	// virtual state.
	OnVirtTrap func(c *HartCtx, cause, tval uint64)
	// OnWorldSwitch, when non-nil, is called on every world switch with
	// the world being entered (in addition to any Policy hook).
	OnWorldSwitch func(c *HartCtx, to World)
}

// Stats aggregates per-hart monitor counters.
type Stats struct {
	FirmwareTraps  uint64 // traps taken while in vM-mode
	OSTraps        uint64 // traps from the OS intercepted by the monitor
	Emulations     uint64 // privileged instructions emulated
	WorldSwitches  uint64 // world-switch transitions (each direction counts)
	FastPathHits   uint64 // traps absorbed by the fast path
	VirtInterrupts uint64 // virtual interrupts injected into vM-mode
	MMIOEmulations uint64 // virtual CLINT accesses emulated

	FirmwareRestarts uint64 // containment-driven firmware reinitializations
	WatchdogFires    uint64 // watchdog budget exhaustions
	DegradedCalls    uint64 // SBI calls answered by the degraded-mode fallback

	WallChecks uint64 // Dorami-wall invariant checks passed after world switches
}

// HartCtx is the monitor's per-hart state.
type HartCtx struct {
	Mon  *Monitor
	Hart *hart.Hart
	V    *VirtCSRs

	// VirtMode is the virtual machine's current privilege mode: M while
	// the firmware executes (vM), S/U during direct execution of the OS.
	VirtMode rv.Mode

	// VirtV is the virtual machine's virtualization mode (hypervisor
	// extension): true while the guest of the virtualized hypervisor runs
	// in VS/VU. Always false in vM; during direct execution it mirrors the
	// physical V bit and is resynchronized from mstatus.MPV on trap entry.
	VirtV bool

	// VirtWaiting marks that the virtual firmware executed wfi.
	VirtWaiting bool

	// osSIE caches nothing — the OS's sie lives in V.Mie S bits while in
	// firmware world (see world switch); this field tracks the physical
	// mstatus S bits saved across the firmware world.
	Stats Stats

	// mprvActive mirrors whether the MPRV emulation window is installed.
	mprvActive bool

	// protFile holds only the monitor's and policy's protections (self,
	// virtual devices, policy slots, then allow-all); it is rebuilt with
	// every PMP install and consulted when the monitor performs accesses
	// on the firmware's behalf (MPRV emulation).
	protFile *pmp.File

	// resumeOverride, when set by a policy hook that returns ActHandled,
	// replaces the default resume PC for the current trap.
	resumeOverride *uint64

	// vTrapDepth counts nested virtual M-mode trap entries that have not
	// been matched by a virtual mret: an exception from vM at depth ≥ 1 is
	// a virtual double fault.
	vTrapDepth int

	// Degraded marks that the firmware has been written off: the monitor
	// answers the OS's SBI calls itself and the firmware world is never
	// re-entered.
	Degraded bool

	// osLive records that the firmware has handed control to the OS at
	// least once; containment before that point restarts the firmware from
	// boot, after it diverts to degraded mode.
	osLive bool

	// osEntry is where the OS resumes if the firmware dies while the
	// monitor is in the firmware world: the OS PC and mode captured at the
	// last OS→firmware switch.
	osEntry osResume

	// pendingSBI holds the OS's in-flight SBI call while the firmware
	// services it, so containment can answer it in degraded mode.
	pendingSBI *pendingCall

	// fwEnterCycles is the hart cycle count when the firmware world was
	// last entered (or the watchdog budget last re-armed).
	fwEnterCycles uint64

	// lastOSInstret / osProgressCycles drive the OS-starvation clock: once
	// the OS is live, the watchdog charges its budget against cycles spent
	// without a single instruction retired *in the OS world*, regardless
	// of which world currently holds the hart. This catches livelocks no
	// per-entry budget can: trap ping-pong between the worlds (each
	// firmware entry is short, the OS never advances) and fully-delegated
	// fault loops that never re-enter the monitor at all. lastOSInstret is
	// a baseline of Hart.Instret resynced on every OS-world entry, so
	// firmware-world retirement never masquerades as OS progress; the
	// cycle clock only slides on retirement beyond that baseline.
	lastOSInstret    uint64
	osProgressCycles uint64

	// EmuByOp counts emulated instructions by decoded class; SBIByExt
	// counts OS SBI calls by extension label. Both are surfaced through
	// the metrics collector registered by attachObs.
	EmuByOp  [emuNumOps]uint64
	SBIByExt map[string]uint64
}

// osResume is the OS-side resume point captured at an OS→firmware switch.
type osResume struct {
	PC   uint64
	Mode rv.Mode
}

// pendingCall is an OS SBI call the firmware was servicing.
type pendingCall struct {
	Cause uint64    // ecall-from-S or ecall-from-U
	EPC   uint64    // the ecall's PC
	Args  [8]uint64 // a0..a7 at the call
}

// OverrideResume makes the current trap resume at pc; meaningful only from
// a policy hook that returns ActHandled.
func (c *HartCtx) OverrideResume(pc uint64) {
	c.resumeOverride = &pc
}

func (c *HartCtx) takeOverride(def uint64) uint64 {
	if c.resumeOverride != nil {
		pc := *c.resumeOverride
		c.resumeOverride = nil
		return pc
	}
	return def
}

// World reports which world the hart is in, derived from the virtual mode.
func (c *HartCtx) World() World {
	if c.VirtMode == rv.ModeM {
		return WorldFirmware
	}
	return WorldOS
}

// Monitor is the virtual firmware monitor instance for one machine.
type Monitor struct {
	Machine *hart.Machine
	Opts    Options
	Policy  Policy

	Ctx []*HartCtx

	vclint *VirtClint
	vplic  *VirtPlic  // non-nil when Options.VirtualizePLIC
	viopmp *VirtIOPMP // non-nil when Options.VirtualizeIOPMP

	// Halted latches a monitor-initiated stop (policy ActBlock).
	HaltedReason string

	// Faults is the bounded log of structured fault records (see fault.go);
	// FaultCount is the unbounded total.
	Faults     []*MonitorFault
	FaultCount int

	// forceOffload makes every fast path eligible regardless of Options,
	// while the degraded-mode fallback answers an SBI call.
	forceOffload bool

	// Boot snapshot for crash containment: the firmware image bytes and
	// per-hart state captured at Boot, restored when containment
	// reinitializes a crashed firmware.
	bootFW    []byte
	bootSnaps []*hart.Snapshot

	// obsv/fwResidency hold the attached observer (see obs.go).
	obsv        *obs.Observer
	fwResidency *obs.Histogram
}

// Attach installs a monitor on every hart of the machine. The machine must
// have been created but not yet started; call Boot afterwards.
func Attach(m *hart.Machine, opts Options) (*Monitor, error) {
	if opts.Policy == nil {
		opts.Policy = BasePolicy{}
	}
	mon := &Monitor{
		Machine: m,
		Opts:    opts,
		Policy:  opts.Policy,
		vclint:  NewVirtClint(m.Clint, m.Cfg.Harts),
	}
	if opts.VirtualizePLIC {
		mon.vplic = NewVirtPlic(m.Plic, m.Cfg.Harts)
	}
	if opts.VirtualizeIOPMP {
		if m.IOPMP == nil {
			return nil, fmt.Errorf("core: VirtualizeIOPMP requires a platform with an IOPMP")
		}
		mon.viopmp = NewVirtIOPMP(m.IOPMP)
	}
	nvpmp := m.Cfg.NumPMP - mon.overheadEntries()
	if nvpmp < 1 {
		return nil, fmt.Errorf("core: platform has %d PMP entries; at least %d required",
			m.Cfg.NumPMP, mon.overheadEntries()+1)
	}
	for _, h := range m.Harts {
		ctx := &HartCtx{
			Mon:      mon,
			Hart:     h,
			V:        newVirtCSRs(nvpmp),
			VirtMode: rv.ModeM,
			SBIByExt: map[string]uint64{},
		}
		if h.Cfg.HasH {
			ctx.V.enableH()
		}
		mon.Ctx = append(mon.Ctx, ctx)
		h.Monitor = &hartMonitor{mon: mon, ctx: ctx}
	}
	if opts.Obs != nil {
		mon.attachObs(opts.Obs)
	}
	return mon, nil
}

// hartMonitor adapts the per-hart hook to the monitor.
type hartMonitor struct {
	mon *Monitor
	ctx *HartCtx
}

// HandleMTrap implements hart.Monitor. It is the monitor's outermost panic
// boundary: a Go panic anywhere in trap handling is converted into a
// structured MonitorFault and a machine halt instead of killing the
// process — the software analogue of a machine-check handler.
func (hm *hartMonitor) HandleMTrap(h *hart.Hart) {
	m, ctx := hm.mon, hm.ctx
	if m.Opts.Containment {
		defer func() {
			if r := recover(); r != nil {
				m.recordFault(m.newFault(ctx, FaultPanic,
					fmt.Sprintf("panic in monitor trap handler: %v", r)))
				m.halt(ctx, fmt.Sprintf("monitor panic: %v", r))
			}
		}()
	}
	m.handleTrap(ctx)
}

// NumVirtPMP returns the number of virtual PMP entries exposed to the
// firmware.
func (m *Monitor) NumVirtPMP() int { return m.Machine.Cfg.NumPMP - m.overheadEntries() }

// Boot resets the machine and enters the virtual firmware on every hart:
// physical U-mode at the firmware entry with a0 = hartid, monitor PMP
// installed, and well-defined physical CSR values — the state Miralis
// leaves the machine in when it jumps to the second firmware stage
// (paper Fig. 9).
func (m *Monitor) Boot() {
	m.Machine.Reset(m.Opts.FirmwareEntry)
	for _, ctx := range m.Ctx {
		h := ctx.Hart
		ctx.VirtMode = rv.ModeM
		h.Mode = rv.ModeU
		h.PC = m.Opts.FirmwareEntry
		m.installPhysCSRs(ctx, WorldFirmware)
		m.installPMP(ctx, WorldFirmware)
		m.installIOPMP(ctx)
	}
	m.observeBoot()
	if m.Opts.Containment {
		// Capture the boot snapshot containment restores a crashed firmware
		// from: the image bytes plus each hart's post-install state.
		fw, err := m.Machine.Bus.ReadBytes(FirmwareBase, FirmwareSize)
		if err == nil {
			m.bootFW = fw
		}
		m.bootSnaps = m.bootSnaps[:0]
		for _, ctx := range m.Ctx {
			m.bootSnaps = append(m.bootSnaps, ctx.Hart.Checkpoint())
			ctx.fwEnterCycles = ctx.Hart.Cycles
			ctx.Hart.Watchdog = m.watchdogHook(ctx)
		}
	}
}

// trace emits a monitor event if tracing is enabled.
func (m *Monitor) trace(event string, ctx *HartCtx) {
	if m.Opts.Trace != nil {
		m.Opts.Trace(event, ctx)
	}
}

// halt stops the machine with a monitor-attributed reason. Under
// containment every monitor-initiated stop also leaves a structured fault
// record (unless the triggering path just recorded one).
func (m *Monitor) halt(ctx *HartCtx, reason string) {
	if m.Opts.Containment && !m.faultJustRecorded(ctx) {
		m.recordFault(m.newFault(ctx, FaultHalt, reason))
	}
	m.HaltedReason = reason
	ctx.Hart.Halt("miralis: " + reason)
}

// TotalStats sums the per-hart counters.
func (m *Monitor) TotalStats() Stats {
	var t Stats
	for _, c := range m.Ctx {
		t.FirmwareTraps += c.Stats.FirmwareTraps
		t.OSTraps += c.Stats.OSTraps
		t.Emulations += c.Stats.Emulations
		t.WorldSwitches += c.Stats.WorldSwitches
		t.FastPathHits += c.Stats.FastPathHits
		t.VirtInterrupts += c.Stats.VirtInterrupts
		t.MMIOEmulations += c.Stats.MMIOEmulations
		t.FirmwareRestarts += c.Stats.FirmwareRestarts
		t.WatchdogFires += c.Stats.WatchdogFires
		t.DegradedCalls += c.Stats.DegradedCalls
		t.WallChecks += c.Stats.WallChecks
	}
	return t
}
