package core

// Monitor forking: the monitor half of the cheap-fork contract. A machine
// image (hart.Image) carries only architectural state; a monitored system
// also has host-side monitor state — virtual CSR files, virtual device
// registers, world/containment bookkeeping — that must travel with a fork
// for the child to continue bit-identically. Monitor.Fork deep-copies all
// of it onto a child machine spawned from the parent's image.

import (
	"fmt"

	"govfm/internal/hart"
	"govfm/internal/obs"
)

// PolicyForker is implemented by stateful policies that know how to clone
// themselves for a forked monitor. The stateless BasePolicy needs no
// clone; any other policy must implement this for Monitor.Fork to accept
// it, because sharing mutable policy state between a parent and a child
// that run concurrently would be a data race.
type PolicyForker interface {
	// ForkPolicy returns an independent copy of the policy's state.
	ForkPolicy() Policy
}

// clone deep-copies a virtual CSR file, including the custom-CSR map and
// the virtual PMP file.
func (v *VirtCSRs) clone() *VirtCSRs {
	nv := *v
	if v.Custom != nil {
		nv.Custom = make(map[uint16]uint64, len(v.Custom))
		for k, val := range v.Custom {
			nv.Custom[k] = val
		}
	}
	if v.PMP != nil {
		nv.PMP = v.PMP.Clone()
	}
	return &nv
}

// forkOnto copies the virtual CLINT's register state over a child
// machine's physical CLINT.
func (v *VirtClint) forkOnto(m *hart.Machine) *VirtClint {
	return &VirtClint{
		phys:       m.Clint,
		vmtimecmp:  append([]uint64(nil), v.vmtimecmp...),
		vmsip:      append([]uint32(nil), v.vmsip...),
		osDeadline: append([]uint64(nil), v.osDeadline...),
		ipiReason:  append([]uint32(nil), v.ipiReason...),
	}
}

// forkOnto copies the virtual PLIC's mediation state over a child
// machine's physical PLIC.
func (v *VirtPlic) forkOnto(m *hart.Machine) *VirtPlic {
	return &VirtPlic{phys: m.Plic, harts: v.harts, Writes: v.Writes, Loads: v.Loads}
}

// forkOnto copies the virtual IOPMP entry file over a child machine's
// physical unit.
func (v *VirtIOPMP) forkOnto(m *hart.Machine) *VirtIOPMP {
	return &VirtIOPMP{phys: m.IOPMP, virt: v.virt.Clone(), Writes: v.Writes}
}

// forkOnto deep-copies one hart's monitor context onto the matching child
// hart.
func (c *HartCtx) forkOnto(nm *Monitor, h *hart.Hart) *HartCtx {
	nc := &HartCtx{
		Mon:              nm,
		Hart:             h,
		V:                c.V.clone(),
		VirtMode:         c.VirtMode,
		VirtV:            c.VirtV,
		VirtWaiting:      c.VirtWaiting,
		Stats:            c.Stats,
		mprvActive:       c.mprvActive,
		vTrapDepth:       c.vTrapDepth,
		Degraded:         c.Degraded,
		osLive:           c.osLive,
		osEntry:          c.osEntry,
		fwEnterCycles:    c.fwEnterCycles,
		lastOSInstret:    c.lastOSInstret,
		osProgressCycles: c.osProgressCycles,
		EmuByOp:          c.EmuByOp,
		SBIByExt:         make(map[string]uint64, len(c.SBIByExt)),
	}
	for k, v := range c.SBIByExt {
		nc.SBIByExt[k] = v
	}
	if c.protFile != nil {
		nc.protFile = c.protFile.Clone()
	}
	if c.resumeOverride != nil {
		pc := *c.resumeOverride
		nc.resumeOverride = &pc
	}
	if c.pendingSBI != nil {
		call := *c.pendingSBI
		nc.pendingSBI = &call
	}
	return nc
}

// Fork clones this monitor onto child, a machine spawned from an image of
// m.Machine (Machine.Fork / hart.SpawnFromImage with the same shape). The
// child monitor gets deep copies of every virtual CSR file, virtual
// device, and per-hart context, so parent and child may run concurrently
// and diverge freely afterwards.
//
// Host-side hooks deliberately do not travel, mirroring hart.Image's
// contract: the child's Opts carry no Obs and no Trace/divergence
// callbacks (attach an observer with AttachObs, set callbacks on the
// returned monitor's Opts before running). The policy must be the
// stateless BasePolicy or implement PolicyForker.
func (m *Monitor) Fork(child *hart.Machine) (*Monitor, error) {
	if len(child.Harts) != len(m.Machine.Harts) {
		return nil, fmt.Errorf("core: fork onto a %d-hart machine, monitor has %d harts",
			len(child.Harts), len(m.Machine.Harts))
	}
	if m.viopmp != nil && child.IOPMP == nil {
		return nil, fmt.Errorf("core: fork of an IOPMP-virtualizing monitor onto a machine without an IOPMP")
	}
	pol := m.Policy
	switch p := pol.(type) {
	case BasePolicy:
		// Stateless: safe to share.
	case PolicyForker:
		pol = p.ForkPolicy()
	default:
		return nil, fmt.Errorf("core: policy %q holds state and does not implement PolicyForker", pol.Name())
	}

	opts := m.Opts
	opts.Policy = pol
	opts.Obs = nil
	opts.Trace = nil
	opts.OnEmulate = nil
	opts.OnVirtTrap = nil
	opts.OnWorldSwitch = nil

	nm := &Monitor{
		Machine:      child,
		Opts:         opts,
		Policy:       pol,
		vclint:       m.vclint.forkOnto(child),
		HaltedReason: m.HaltedReason,
		Faults:       append([]*MonitorFault(nil), m.Faults...),
		FaultCount:   m.FaultCount,
		forceOffload: m.forceOffload,
		bootFW:       m.bootFW, // immutable after Boot: shared
		bootSnaps:    m.bootSnaps,
	}
	if m.vplic != nil {
		nm.vplic = m.vplic.forkOnto(child)
	}
	if m.viopmp != nil {
		nm.viopmp = m.viopmp.forkOnto(child)
	}
	for i, c := range m.Ctx {
		nc := c.forkOnto(nm, child.Harts[i])
		nm.Ctx = append(nm.Ctx, nc)
		child.Harts[i].Monitor = &hartMonitor{mon: nm, ctx: nc}
		if m.Opts.Containment && c.Hart.Watchdog != nil {
			child.Harts[i].Watchdog = nm.watchdogHook(nc)
		}
	}
	return nm, nil
}

// AttachObs attaches an observer to the monitor after the fact — a forked
// monitor deliberately does not inherit its parent's observer, since
// metric collectors register against a specific machine's timeline.
func (m *Monitor) AttachObs(o *obs.Observer) {
	m.Opts.Obs = o
	m.attachObs(o)
}
