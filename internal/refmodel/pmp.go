package refmodel

// This file is the model's independent rendering of the PMP chapter,
// mirroring the Sail model's pmpCheck function. It is the oracle for the
// "faithful execution" criterion (paper §6.3): loads and stores executed
// directly by deprivileged firmware must see exactly the protection the
// virtual PMP file specifies.

// Access kinds for PMPCheck.
const (
	AccRead = iota
	AccWrite
	AccExec
)

// pmpMatchRange decodes entry i of the state's PMP file into the
// inclusive range [lo, last]. The boolean is false for OFF or empty
// ranges. Inclusive bounds avoid overflow for regions reaching the top of
// the address space.
func pmpMatchRange(s *State, i int) (uint64, uint64, bool) {
	cfg := s.PmpCfg[i]
	addr := s.PmpAddr[i]
	switch cfg >> 3 & 3 {
	case 0: // OFF
		return 0, 0, false
	case 1: // TOR
		var base uint64
		if i > 0 {
			base = s.PmpAddr[i-1] << 2
		}
		top := addr << 2
		if base >= top {
			return 0, 0, false
		}
		return base, top - 1, true
	case 2: // NA4
		base := addr << 2
		return base, base + 3, true
	default: // NAPOT
		// Count trailing ones without bits helpers, as the Sail code does
		// with a recursive function.
		g := 0
		for addr>>uint(g)&1 == 1 && g < 54 {
			g++
		}
		if g >= 54 {
			return 0, ^uint64(0), true
		}
		size := uint64(8) << uint(g)
		base := addr &^ (1<<uint(g) - 1) << 2
		return base, base + size - 1, true
	}
}

// PMPCheck reports whether an access of width bytes at physical address
// addr, in privilege mode priv, passes the PMP file in s under config c.
func PMPCheck(c *Config, s *State, addr uint64, width int, acc int, priv uint8) bool {
	for i := 0; i < c.PMPCount; i++ {
		lo, last, ok := pmpMatchRange(s, i)
		if !ok {
			continue
		}
		aLast := addr + uint64(width) - 1
		if aLast < addr { // access wraps the address space
			if addr > last {
				continue
			}
			return false
		}
		if aLast < lo || addr > last {
			continue // no overlap
		}
		if addr < lo || aLast > last {
			return false // partial overlap always fails
		}
		cfg := s.PmpCfg[i]
		locked := cfg&0x80 != 0
		if priv == M && !locked {
			return true
		}
		switch acc {
		case AccRead:
			return cfg&1 != 0
		case AccWrite:
			return cfg&2 != 0
		default:
			return cfg&4 != 0
		}
	}
	if priv == M {
		return true
	}
	return c.PMPCount == 0
}
