package refmodel

// CSR numbers are written literally in this file (as the Sail model spells
// them) rather than shared with the simulator, keeping the two derivations
// of the specification independent.

// csrMinPriv decodes the address-encoded minimum privilege.
func csrMinPriv(csr uint16) uint8 {
	switch csr >> 8 & 3 {
	case 1, 2:
		return S
	case 3:
		return M
	}
	return U
}

// csrIsHyp reports whether csr is a hypervisor or VS-level CSR, which from
// V=1 always raises the virtual-instruction exception.
func csrIsHyp(csr uint16) bool {
	switch csr {
	case 0x600, 0x602, 0x603, 0x604, 0x606, 0x607, 0x60A, 0x643, 0x644,
		0x645, 0x64A, 0x680, 0xE12,
		0x200, 0x204, 0x205, 0x240, 0x241, 0x242, 0x243, 0x244, 0x280:
		return true
	}
	return false
}

// csrCheck performs the existence, substitution, and privilege checks of
// the Zicsr chapter extended by the hypervisor chapter: read-only top bits,
// address-encoded minimum privilege, the V=1 S-to-VS CSR substitution,
// counter enables (mcounteren, then hcounteren, then scounteren), TVM, and
// Sstc gating. It returns the CSR number the access actually touches plus
// a zero cause on success, or causeIllegal/causeVirtual on denial.
func csrCheck(c *Config, s *State, csr uint16, write bool) (uint16, uint64) {
	if write && csr>>10&3 == 3 {
		return csr, causeIllegal
	}
	if !csrExists(c, csr) {
		return csr, causeIllegal
	}
	mapped := csr
	if s.V {
		if csrMinPriv(csr) == S && (s.Priv == U || csrIsHyp(csr)) {
			return csr, causeVirtual
		}
		switch csr {
		case 0x100:
			mapped = 0x200
		case 0x104:
			mapped = 0x204
		case 0x105:
			mapped = 0x205
		case 0x140:
			mapped = 0x240
		case 0x141:
			mapped = 0x241
		case 0x142:
			mapped = 0x242
		case 0x143:
			mapped = 0x243
		case 0x144:
			mapped = 0x244
		case 0x180:
			if s.Hstatus&hstatusVTVM != 0 {
				return csr, causeVirtual
			}
			mapped = 0x280
		case 0x14D:
			// No vstimecmp in this model: the access traps to the
			// hypervisor when Sstc is live, and is illegal otherwise.
			if s.Menvcfg>>63&1 != 0 {
				return csr, causeVirtual
			}
			return csr, causeIllegal
		}
	}
	if s.Priv < csrMinPriv(mapped) {
		return mapped, causeIllegal
	}
	switch mapped {
	case 0xC00, 0xC01, 0xC02: // cycle, time, instret
		bit := uint(mapped - 0xC00)
		if s.Priv < M && s.Mcounteren>>bit&1 == 0 {
			return mapped, causeIllegal
		}
		if s.V && s.Hcounteren>>bit&1 == 0 {
			return mapped, causeVirtual
		}
		if s.Priv == U && s.Scounteren>>bit&1 == 0 {
			if s.V {
				return mapped, causeVirtual
			}
			return mapped, causeIllegal
		}
	case 0x180, 0x680: // satp, hgatp
		if s.Priv == S && s.Status.TVM {
			return mapped, causeIllegal
		}
	case 0x14D: // stimecmp
		if s.Priv == S && s.Menvcfg>>63&1 == 0 {
			return mapped, causeIllegal
		}
	}
	return mapped, 0
}

func csrExists(c *Config, csr uint16) bool {
	switch csr {
	case 0x100, 0x104, 0x105, 0x106, 0x10A, // sstatus..senvcfg
		0x140, 0x141, 0x142, 0x143, 0x144, // sscratch..sip
		0x180, // satp
		0x300, 0x301, 0x302, 0x303, 0x304, 0x305, 0x306, 0x30A,
		0x320, // mcountinhibit
		0x340, 0x341, 0x342, 0x343, 0x344,
		0x747,        // mseccfg
		0xB00, 0xB02, // mcycle, minstret
		0xC00, 0xC02, // cycle, instret
		0xF11, 0xF12, 0xF13, 0xF14, 0xF15:
		return true
	case 0xC01: // time
		return c.HasTimeCSR
	case 0x14D: // stimecmp
		return c.HasSstc
	case 0x600, 0x602, 0x603, 0x604, 0x606, 0x607, 0x60A, 0x643, 0x644,
		0x645, 0x64A, 0x680, 0xE12, // hypervisor
		0x200, 0x204, 0x205, 0x240, 0x241, 0x242, 0x243, 0x244, 0x280, // vs
		0x34A, 0x34B: // mtinst, mtval2
		return c.HasH
	}
	if csr >= 0x3A0 && csr < 0x3B0 { // pmpcfg0..15
		return csr%2 == 0 && int(csr-0x3A0)*4 < c.PMPCount
	}
	if csr >= 0x3B0 && csr < 0x3F0 { // pmpaddr0..63
		return int(csr-0x3B0) < c.PMPCount
	}
	if csr >= 0xB03 && csr <= 0xB1F { // mhpmcounters
		return true
	}
	if csr >= 0xC03 && csr <= 0xC1F { // hpmcounters
		return true
	}
	if csr >= 0x323 && csr <= 0x33F { // mhpmevents
		return true
	}
	return c.HasCustom(csr)
}

// sstatus view: the subset of status fields visible to supervisor mode.
func sstatusBits(m Mstatus) uint64 {
	var v uint64
	if m.SIE {
		v |= 1 << 1
	}
	if m.SPIE {
		v |= 1 << 5
	}
	v |= uint64(m.SPP&1) << 8
	if m.SUM {
		v |= 1 << 18
	}
	if m.MXR {
		v |= 1 << 19
	}
	v |= 2 << 32 // UXL
	return v
}

func legalizeMstatusWrite(c *Config, old Mstatus, v uint64) Mstatus {
	n := MstatusFromBits(v)
	if v>>11&3 == 2 { // MPP=H is not a supported mode: keep the old value
		n.MPP = old.MPP
	}
	if !c.HasH { // MPV/GVA exist only with the hypervisor extension
		n.GVA = false
		n.MPV = false
	}
	return n
}

func legalizeSstatusWrite(old Mstatus, v uint64) Mstatus {
	n := old
	n.SIE = v>>1&1 != 0
	n.SPIE = v>>5&1 != 0
	n.SPP = uint8(v >> 8 & 1)
	n.SUM = v>>18&1 != 0
	n.MXR = v>>19&1 != 0
	return n
}

func legalizeTvecWrite(v uint64) uint64 {
	if v&3 >= 2 {
		return v &^ 3
	}
	return v
}

func legalizeXepc(v uint64) uint64 { return v &^ 3 }

// legalizePmpCfgByte implements the pmpcfg WARL rule: reserved bits clear,
// and the reserved R=0/W=1 combination loses its W bit.
func legalizePmpCfgByte(v uint8) uint8 {
	v &= 0x9F
	if v&2 != 0 && v&1 == 0 {
		v &^= 2
	}
	return v
}

// readCSR returns the architectural value; access must already be checked.
func readCSR(c *Config, s *State, csr uint16) uint64 {
	switch csr {
	case 0x100:
		return sstatusBits(s.Status)
	case 0x104:
		// The VS bits forced into mideleg are not visible through sie.
		return s.Mie & s.Mideleg & 0x222
	case 0x105:
		return s.Stvec
	case 0x106:
		return s.Scounteren
	case 0x10A:
		return s.Senvcfg
	case 0x140:
		return s.Sscratch
	case 0x141:
		return s.Sepc
	case 0x142:
		return s.Scause
	case 0x143:
		return s.Stval
	case 0x144:
		return s.Mip(c) & s.Mideleg & 0x222
	case 0x14D:
		return s.Stimecmp
	case 0x180:
		return s.Satp
	case 0x300:
		return s.Status.Bits()
	case 0x301:
		misa := uint64(2)<<62 | 1<<8 | 1<<12 | 1<<0 | 1<<18 | 1<<20
		if c.HasH {
			misa |= 1 << 7
		}
		return misa
	case 0x302:
		return s.Medeleg
	case 0x303:
		return s.Mideleg
	case 0x304:
		return s.Mie
	case 0x305:
		return s.Mtvec
	case 0x306:
		return s.Mcounteren
	case 0x30A:
		return s.Menvcfg
	case 0x320:
		return s.Mcountinhibit
	case 0x340:
		return s.Mscratch
	case 0x341:
		return s.Mepc
	case 0x342:
		return s.Mcause
	case 0x343:
		return s.Mtval
	case 0x344:
		return s.Mip(c)
	case 0x747:
		return s.Mseccfg
	case 0xB00, 0xC00:
		return s.Cycle
	case 0xB02, 0xC02:
		return s.Instret
	case 0xC01:
		return s.Time
	case 0xF11:
		return c.Mvendorid
	case 0xF12:
		return c.Marchid
	case 0xF13:
		return c.Mimpid
	case 0xF14:
		return c.Mhartid
	case 0xF15:
		return 0
	case 0x34A:
		return s.Mtinst
	case 0x34B:
		return s.Mtval2
	case 0x600:
		return s.Hstatus
	case 0x602:
		return s.Hedeleg
	case 0x603:
		return s.Hideleg
	case 0x604:
		return s.Hie
	case 0x606:
		return s.Hcounteren
	case 0x607:
		return 0 // hgeie: no guest external interrupts modelled
	case 0x60A:
		return 0 // henvcfg: no guest-visible extensions to enable
	case 0x643:
		return s.Htval
	case 0x644:
		// hip is a view of the injectable VS interrupt lines.
		return s.Hvip & vsIntMask
	case 0x645:
		return s.Hvip
	case 0x64A:
		return s.Htinst
	case 0x680:
		return s.Hgatp
	case 0xE12:
		return 0 // hgeip: read-only, no guest external interrupts modelled
	case 0x200:
		return s.Vsstatus
	case 0x204:
		// vsie is the guest's sie view: hie gated by hideleg, shifted to
		// the S-level bit positions.
		return (s.Hie & s.Hideleg & vsIntMask) >> 1
	case 0x205:
		return s.Vstvec
	case 0x240:
		return s.Vsscratch
	case 0x241:
		return s.Vsepc
	case 0x242:
		return s.Vscause
	case 0x243:
		return s.Vstval
	case 0x244:
		return (s.Hvip & s.Hideleg & vsIntMask) >> 1
	case 0x280:
		return s.Vsatp
	}
	if csr >= 0x3A0 && csr < 0x3B0 {
		reg := int(csr - 0x3A0)
		var v uint64
		for k := 0; k < 8; k++ {
			i := reg*4 + k
			if i < c.PMPCount {
				v |= uint64(s.PmpCfg[i]) << (8 * k)
			}
		}
		return v
	}
	if csr >= 0x3B0 && csr < 0x3F0 {
		return s.PmpAddr[csr-0x3B0]
	}
	if v, ok := s.Custom[csr]; ok && c.HasCustom(csr) {
		return v
	}
	return 0 // hardwired-zero hpm counters
}

// writeCSR applies the architectural write; access must already be checked.
func writeCSR(c *Config, s *State, csr uint16, v uint64) {
	switch csr {
	case 0x100:
		s.Status = legalizeSstatusWrite(s.Status, v)
	case 0x104:
		mask := s.Mideleg & 0x222 // sie cannot reach the forced VS bits
		s.Mie = s.Mie&^mask | v&mask
	case 0x105:
		s.Stvec = legalizeTvecWrite(v)
	case 0x106:
		s.Scounteren = v & 0xFFFFFFFF
	case 0x10A:
		s.Senvcfg = v & 1
	case 0x140:
		s.Sscratch = v
	case 0x141:
		s.Sepc = legalizeXepc(v)
	case 0x142:
		s.Scause = v
	case 0x143:
		s.Stval = v
	case 0x144:
		if s.Priv == M {
			writeMip(c, s, v)
		} else {
			mask := s.Mideleg & (1 << 1)
			s.MipSW = s.MipSW&^mask | v&mask
		}
	case 0x14D:
		s.Stimecmp = v
	case 0x180:
		if mode := v >> 60; mode == 0 || mode == 8 {
			s.Satp = v
		}
	case 0x300:
		s.Status = legalizeMstatusWrite(c, s.Status, v)
	case 0x301:
		// misa is hardwired in this model.
	case 0x302:
		mask := uint64(0xB3FF)
		if c.HasH {
			// ecall-from-VS plus the virtual-instruction and guest-page
			// fault causes become delegatable.
			mask |= 1<<10 | 1<<20 | 1<<21 | 1<<22 | 1<<23
		}
		s.Medeleg = v & mask
	case 0x303:
		if c.MidelegForced {
			s.Mideleg = 1<<1 | 1<<5 | 1<<9
		} else {
			s.Mideleg = v & (1<<1 | 1<<5 | 1<<9)
		}
		if c.HasH {
			// The VS interrupt bits are hardwired delegated.
			s.Mideleg |= vsIntMask
		}
	case 0x304:
		s.Mie = v & 0xAAA
	case 0x305:
		s.Mtvec = legalizeTvecWrite(v)
	case 0x306:
		s.Mcounteren = v & 0xFFFFFFFF
	case 0x30A:
		var mask uint64
		if c.HasSstc {
			mask |= 1 << 63
		}
		s.Menvcfg = v & mask
	case 0x320:
		s.Mcountinhibit = v & 0xFFFFFFFD
	case 0x340:
		s.Mscratch = v
	case 0x341:
		s.Mepc = legalizeXepc(v)
	case 0x342:
		s.Mcause = v
	case 0x343:
		s.Mtval = v
	case 0x344:
		writeMip(c, s, v)
	case 0x747:
		s.Mseccfg = v & 7
	case 0xB00:
		s.Cycle = v
	case 0xB02:
		s.Instret = v
	case 0x34A:
		s.Mtinst = v
	case 0x34B:
		s.Mtval2 = v
	case 0x600:
		wmask := hstatusGVA | hstatusSPV | hstatusSPVP | hstatusHU |
			hstatusVTVM | hstatusVTW | hstatusVTSR
		s.Hstatus = v&wmask | 2<<32 // VSXL hardwired to 64-bit
	case 0x602:
		s.Hedeleg = v & 0xB1FF
	case 0x603:
		s.Hideleg = v & vsIntMask
	case 0x604:
		s.Hie = v & vsIntMask
	case 0x606:
		s.Hcounteren = v & 0xFFFFFFFF
	case 0x607:
		// hgeie: hardwired zero, writes discarded
	case 0x60A:
		// henvcfg: hardwired zero, writes discarded
	case 0x643:
		s.Htval = v
	case 0x644:
		// Only VSSIP is software-writable through hip; it aliases hvip.
		s.Hvip = s.Hvip&^(1<<2) | v&(1<<2)
	case 0x645:
		s.Hvip = v & vsIntMask
	case 0x64A:
		s.Htinst = v
	case 0x680:
		if mode := v >> 60; mode == 0 || mode == 8 {
			s.Hgatp = v &^ (3<<58 | 3) // low VMID bits hardwired zero
		}
	case 0x200:
		wmask := uint64(1<<1 | 1<<5 | 1<<8 | 1<<18 | 1<<19)
		s.Vsstatus = v&wmask | 2<<32 // UXL hardwired to 64-bit
	case 0x204:
		mask := s.Hideleg & vsIntMask
		s.Hie = s.Hie&^mask | v<<1&mask
	case 0x205:
		s.Vstvec = legalizeTvecWrite(v)
	case 0x240:
		s.Vsscratch = v
	case 0x241:
		s.Vsepc = legalizeXepc(v)
	case 0x242:
		s.Vscause = v
	case 0x243:
		s.Vstval = v
	case 0x244:
		// Only VSSIP is writable through vsip, and only when delegated.
		mask := s.Hideleg & (1 << 2)
		s.Hvip = s.Hvip&^mask | v<<1&mask
	case 0x280:
		if mode := v >> 60; mode == 0 || mode == 8 {
			s.Vsatp = v
		}
	default:
		if csr >= 0x3A0 && csr < 0x3B0 {
			writePmpCfgReg(c, s, int(csr-0x3A0), v)
			return
		}
		if csr >= 0x3B0 && csr < 0x3F0 {
			writePmpAddr(c, s, int(csr-0x3B0), v)
			return
		}
		if c.HasCustom(csr) {
			s.Custom[csr] = v
		}
		// hpm counters: hardwired zero, writes discarded
	}
}

func writeMip(c *Config, s *State, v uint64) {
	mask := uint64(1<<1 | 1<<5 | 1<<9)
	if c.HasSstc && s.Menvcfg>>63 != 0 {
		mask &^= 1 << 5
	}
	s.MipSW = s.MipSW&^mask | v&mask
}

func writePmpCfgReg(c *Config, s *State, reg int, v uint64) {
	for k := 0; k < 8; k++ {
		i := reg*4 + k
		if i >= c.PMPCount {
			continue
		}
		if s.PmpCfg[i]&0x80 != 0 { // locked
			continue
		}
		s.PmpCfg[i] = legalizePmpCfgByte(uint8(v >> (8 * k)))
	}
}

func writePmpAddr(c *Config, s *State, i int, v uint64) {
	if i >= c.PMPCount {
		return
	}
	if s.PmpCfg[i]&0x80 != 0 {
		return
	}
	// A TOR-locked successor freezes this address register.
	if i+1 < c.PMPCount && s.PmpCfg[i+1]&0x80 != 0 && s.PmpCfg[i+1]>>3&3 == 1 {
		return
	}
	s.PmpAddr[i] = v & (1<<54 - 1)
}
