package refmodel

import "fmt"

// Delta is a single architectural field that differs between two states.
type Delta struct {
	Field string
	A, B  uint64
}

func (d Delta) String() string {
	return fmt.Sprintf("%s: %#x vs %#x", d.Field, d.A, d.B)
}

// TakeException performs synchronous-exception trap entry at the current
// PC, honouring medeleg. It is the exported face of the model's internal
// trap-entry rule, used by differential harnesses to advance a shadow
// state past instructions the model does not itself decode (plain loads,
// stores, ALU ops): the harness observes the concrete machine trap and
// replays the architectural consequence here.
func TakeException(c *Config, s *State, cause, tval uint64) Event {
	return takeException(c, s, cause, tval)
}

// Diff compares two states field by field and returns every mismatch.
// The free-running counters (time, cycle, instret) are excluded: they are
// timing artefacts, not architectural results, and differential harnesses
// compare them separately if at all. Hypervisor CSRs are compared only
// when the configuration implements them, PMP entries only up to
// c.PMPCount, and custom CSRs only for the documented numbers.
func Diff(c *Config, a, b *State) []Delta {
	var ds []Delta
	add := func(f string, x, y uint64) {
		if x != y {
			ds = append(ds, Delta{f, x, y})
		}
	}
	b2u := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	for i := 1; i < 32; i++ {
		add(fmt.Sprintf("x%d", i), a.Regs[i], b.Regs[i])
	}
	add("pc", a.PC, b.PC)
	add("priv", uint64(a.Priv), uint64(b.Priv))
	add("mstatus", a.Status.Bits(), b.Status.Bits())
	add("mie", a.Mie, b.Mie)
	add("mideleg", a.Mideleg, b.Mideleg)
	add("medeleg", a.Medeleg, b.Medeleg)
	add("mip.sw", a.MipSW, b.MipSW)
	add("mip.hw", a.MipHW, b.MipHW)
	add("mtvec", a.Mtvec, b.Mtvec)
	add("stvec", a.Stvec, b.Stvec)
	add("mepc", a.Mepc, b.Mepc)
	add("sepc", a.Sepc, b.Sepc)
	add("mcause", a.Mcause, b.Mcause)
	add("scause", a.Scause, b.Scause)
	add("mtval", a.Mtval, b.Mtval)
	add("stval", a.Stval, b.Stval)
	add("mscratch", a.Mscratch, b.Mscratch)
	add("sscratch", a.Sscratch, b.Sscratch)
	add("mcounteren", a.Mcounteren, b.Mcounteren)
	add("scounteren", a.Scounteren, b.Scounteren)
	add("menvcfg", a.Menvcfg, b.Menvcfg)
	add("senvcfg", a.Senvcfg, b.Senvcfg)
	add("mseccfg", a.Mseccfg, b.Mseccfg)
	add("mcountinhibit", a.Mcountinhibit, b.Mcountinhibit)
	add("satp", a.Satp, b.Satp)
	if c.HasSstc {
		add("stimecmp", a.Stimecmp, b.Stimecmp)
	}
	add("wfi", b2u(a.WFI), b2u(b.WFI))
	for i := 0; i < c.PMPCount && i < len(a.PmpCfg); i++ {
		add(fmt.Sprintf("pmpcfg[%d]", i), uint64(a.PmpCfg[i]), uint64(b.PmpCfg[i]))
		add(fmt.Sprintf("pmpaddr[%d]", i), a.PmpAddr[i], b.PmpAddr[i])
	}
	for _, n := range c.CustomCSRs {
		add(fmt.Sprintf("custom[%#x]", n), a.Custom[n], b.Custom[n])
	}
	if c.HasH {
		add("v", b2u(a.V), b2u(b.V))
		add("hstatus", a.Hstatus, b.Hstatus)
		add("hedeleg", a.Hedeleg, b.Hedeleg)
		add("hideleg", a.Hideleg, b.Hideleg)
		add("hie", a.Hie, b.Hie)
		add("hcounteren", a.Hcounteren, b.Hcounteren)
		add("hgeie", a.Hgeie, b.Hgeie)
		add("htval", a.Htval, b.Htval)
		add("hip", a.Hip, b.Hip)
		add("hvip", a.Hvip, b.Hvip)
		add("htinst", a.Htinst, b.Htinst)
		add("hgatp", a.Hgatp, b.Hgatp)
		add("henvcfg", a.Henvcfg, b.Henvcfg)
		add("mtinst", a.Mtinst, b.Mtinst)
		add("mtval2", a.Mtval2, b.Mtval2)
		add("vsstatus", a.Vsstatus, b.Vsstatus)
		add("vsie", a.Vsie, b.Vsie)
		add("vstvec", a.Vstvec, b.Vstvec)
		add("vsscratch", a.Vsscratch, b.Vsscratch)
		add("vsepc", a.Vsepc, b.Vsepc)
		add("vscause", a.Vscause, b.Vscause)
		add("vstval", a.Vstval, b.Vstval)
		add("vsip", a.Vsip, b.Vsip)
		add("vsatp", a.Vsatp, b.Vsatp)
	}
	return ds
}
