package refmodel

// Event reports what a transition did, so differential tests can compare
// control flow as well as state.
type Event int

const (
	EvRetired Event = iota // instruction completed
	EvTrap                 // synchronous exception taken
	EvIntr                 // interrupt taken
	EvWFI                  // entered wait-for-interrupt
)

// Op identifies a decoded privileged instruction.
type Op int

const (
	OpIllegal Op = iota
	OpCSRRW
	OpCSRRS
	OpCSRRC
	OpCSRRWI
	OpCSRRSI
	OpCSRRCI
	OpMRET
	OpSRET
	OpWFI
	OpECALL
	OpEBREAK
	OpSFENCE
	OpFENCE
	OpFENCEI
	OpHFenceVVMA
	OpHFenceGVMA
)

// Instr is a decoded privileged instruction.
type Instr struct {
	Op   Op
	Rd   uint32
	Rs1  uint32
	CSR  uint16
	Zimm uint64
	Raw  uint32
}

// Decode decodes the privileged-instruction subset. Anything else decodes
// to OpIllegal (the reference model only specifies the instructions the
// monitor emulates, mirroring the paper's scope).
func Decode(raw uint32) Instr {
	ins := Instr{Op: OpIllegal, Raw: raw}
	opcode := raw & 0x7F
	if opcode == 0x0F {
		switch raw >> 12 & 7 {
		case 0:
			ins.Op = OpFENCE
		case 1:
			ins.Op = OpFENCEI
		}
		return ins
	}
	if opcode != 0x73 {
		return ins
	}
	f3 := raw >> 12 & 7
	ins.Rd = raw >> 7 & 0x1F
	ins.Rs1 = raw >> 15 & 0x1F
	ins.CSR = uint16(raw >> 20)
	ins.Zimm = uint64(ins.Rs1)
	switch f3 {
	case 0:
		switch {
		case raw == 0x00000073:
			ins.Op = OpECALL
		case raw == 0x00100073:
			ins.Op = OpEBREAK
		case raw == 0x30200073:
			ins.Op = OpMRET
		case raw == 0x10200073:
			ins.Op = OpSRET
		case raw == 0x10500073:
			ins.Op = OpWFI
		case raw>>25 == 0x09 && ins.Rd == 0:
			ins.Op = OpSFENCE
		case raw>>25 == 0x11 && ins.Rd == 0:
			ins.Op = OpHFenceVVMA
		case raw>>25 == 0x31 && ins.Rd == 0:
			ins.Op = OpHFenceGVMA
		}
	case 1:
		ins.Op = OpCSRRW
	case 2:
		ins.Op = OpCSRRS
	case 3:
		ins.Op = OpCSRRC
	case 5:
		ins.Op = OpCSRRWI
	case 6:
		ins.Op = OpCSRRSI
	case 7:
		ins.Op = OpCSRRCI
	}
	return ins
}

// Exception cause numbers, spelled out as the spec tables do.
const (
	causeIllegal = 2
	causeBreak   = 3
	causeEcallU  = 8
	causeEcallS  = 9
	causeEcallVS = 10
	causeEcallM  = 11
	causeVirtual = 22
)

// hstatus field bits (the model keeps hstatus as a raw register).
const (
	hstatusGVA  = uint64(1) << 6
	hstatusSPV  = uint64(1) << 7
	hstatusSPVP = uint64(1) << 8
	hstatusHU   = uint64(1) << 9
	hstatusVTVM = uint64(1) << 20
	hstatusVTW  = uint64(1) << 21
	hstatusVTSR = uint64(1) << 22
)

// vsIntMask selects the VS-level interrupt codes (VSSIP, VSTIP, VSEIP).
const vsIntMask = uint64(1<<2 | 1<<6 | 1<<10)

// HW is the hardware transition function hw(c, s, i): execute the (decoded)
// privileged instruction i from state s under configuration c. The state is
// mutated in place; the returned Event classifies the outcome.
func HW(c *Config, s *State, raw uint32) Event {
	ins := Decode(raw)
	switch ins.Op {
	case OpIllegal:
		return takeException(c, s, causeIllegal, uint64(raw))
	case OpFENCE, OpFENCEI:
		s.PC += 4
		s.Instret++
		return EvRetired
	case OpECALL:
		cause := uint64(causeEcallU)
		switch s.Priv {
		case S:
			cause = causeEcallS
			if s.V {
				cause = causeEcallVS
			}
		case M:
			cause = causeEcallM
		}
		return takeException(c, s, cause, 0)
	case OpEBREAK:
		return takeException(c, s, causeBreak, s.PC)
	case OpMRET:
		if s.Priv != M {
			return takeException(c, s, causeIllegal, uint64(raw))
		}
		execMRET(c, s)
		s.Instret++
		return EvRetired
	case OpSRET:
		if s.V {
			// From the guest: VU always traps, VS traps under hstatus.VTSR
			// (mstatus.TSR governs HS-mode only).
			if s.Priv == U || s.Hstatus&hstatusVTSR != 0 {
				return takeException(c, s, causeVirtual, uint64(raw))
			}
		} else if s.Priv == U || (s.Priv == S && s.Status.TSR) {
			return takeException(c, s, causeIllegal, uint64(raw))
		}
		execSRET(c, s)
		s.Instret++
		return EvRetired
	case OpWFI:
		if s.V {
			// TW traps any less-privileged wfi as illegal; below it, VU-mode
			// and hstatus.VTW raise the virtual-instruction exception.
			if s.Status.TW {
				return takeException(c, s, causeIllegal, uint64(raw))
			}
			if s.Priv == U || s.Hstatus&hstatusVTW != 0 {
				return takeException(c, s, causeVirtual, uint64(raw))
			}
		} else if s.Priv == U || (s.Priv == S && s.Status.TW) {
			return takeException(c, s, causeIllegal, uint64(raw))
		}
		s.WFI = true
		s.PC += 4
		s.Instret++
		return EvWFI
	case OpSFENCE:
		if s.V {
			if s.Priv == U || s.Hstatus&hstatusVTVM != 0 {
				return takeException(c, s, causeVirtual, uint64(raw))
			}
		} else if s.Priv == U || (s.Priv == S && s.Status.TVM) {
			return takeException(c, s, causeIllegal, uint64(raw))
		}
		s.PC += 4
		s.Instret++
		return EvRetired
	case OpHFenceVVMA, OpHFenceGVMA:
		if !c.HasH {
			return takeException(c, s, causeIllegal, uint64(raw))
		}
		if s.V {
			return takeException(c, s, causeVirtual, uint64(raw))
		}
		if s.Priv == U {
			return takeException(c, s, causeIllegal, uint64(raw))
		}
		// TVM traps hfence.gvma from HS-mode, like hgatp accesses.
		if ins.Op == OpHFenceGVMA && s.Priv == S && s.Status.TVM {
			return takeException(c, s, causeIllegal, uint64(raw))
		}
		s.PC += 4
		s.Instret++
		return EvRetired
	}

	// CSR instructions.
	write, read := true, true
	switch ins.Op {
	case OpCSRRW, OpCSRRWI:
		read = ins.Rd != 0
	case OpCSRRS, OpCSRRC, OpCSRRSI, OpCSRRCI:
		write = ins.Rs1 != 0
	}
	mapped, deny := csrCheck(c, s, ins.CSR, write)
	if deny != 0 {
		return takeException(c, s, deny, uint64(raw))
	}
	old := readCSR(c, s, mapped)
	if write {
		src := s.Reg(ins.Rs1)
		if ins.Op >= OpCSRRWI {
			src = ins.Zimm
		}
		var newVal uint64
		switch ins.Op {
		case OpCSRRW, OpCSRRWI:
			newVal = src
		case OpCSRRS, OpCSRRSI:
			newVal = old | src
		case OpCSRRC, OpCSRRCI:
			newVal = old &^ src
		}
		writeCSR(c, s, mapped, newVal)
	}
	if read {
		s.SetReg(ins.Rd, old)
	}
	s.PC += 4
	s.Instret++
	return EvRetired
}

// takeException performs trap entry for a synchronous exception at the
// current PC, honouring medeleg and (from V=1) hedeleg.
func takeException(c *Config, s *State, cause, tval uint64) Event {
	return takeExceptionG(c, s, cause, tval, 0)
}

// takeExceptionG is takeException with a guest-physical address for the
// guest-page-fault causes; HS/M entry latches gpa>>2 into htval/mtval2.
func takeExceptionG(c *Config, s *State, cause, tval, gpa uint64) Event {
	toS := s.Priv != M && s.Medeleg>>cause&1 != 0
	toVS := toS && s.V && s.Hedeleg>>cause&1 != 0
	enterTrap(c, s, cause, tval, gpa, toS, toVS)
	return EvTrap
}

// TakeInterrupt performs trap entry for interrupt code, honouring mideleg
// and (from V=1) hideleg. The caller is responsible for having checked
// deliverability (this is the trap-entry half of the interrupt rules;
// PendingInterrupt is the check).
func TakeInterrupt(c *Config, s *State, code uint64) {
	toS := s.Priv != M && s.Mideleg>>code&1 != 0
	toVS := toS && s.V && s.Hideleg>>code&1 != 0
	enterTrap(c, s, code|1<<63, 0, 0, toS, toVS)
}

// causeWritesGVA reports whether an exception cause carries a guest virtual
// address in xtval, which is what mstatus.GVA/hstatus.GVA latch on traps
// taken from V=1.
func causeWritesGVA(code uint64) bool {
	switch code {
	case 0, 1, 3, 4, 5, 6, 7, 12, 13, 15, 20, 21, 23:
		return true
	}
	return false
}

func enterTrap(c *Config, s *State, cause, tval, gpa uint64, toS, toVS bool) {
	intr := cause>>63 != 0
	code := cause &^ (uint64(1) << 63)
	fromV := s.V
	if toVS {
		// VS-mode entry: the guest sees the S-level view, so delegated VS
		// interrupts write the S-level code (VS code - 1) into vscause.
		vcause := cause
		if intr {
			vcause = (code - 1) | 1<<63
		}
		s.Vscause = vcause
		s.Vsepc = legalizeXepc(s.PC)
		s.Vstval = tval
		vs := s.Vsstatus
		vs = vs&^(1<<5) | vs>>1&1<<5 // SPIE <- SIE
		vs &^= 1 << 1                // SIE <- 0
		vs &^= 1 << 8                // SPP <- from
		if s.Priv == S {
			vs |= 1 << 8
		}
		s.Vsstatus = vs
		s.Priv = S
		s.PC = trapVector(s.Vstvec, vcause)
		return
	}
	if toS {
		s.Scause = cause
		s.Sepc = legalizeXepc(s.PC)
		s.Stval = tval
		s.Status.SPIE = s.Status.SIE
		s.Status.SIE = false
		s.Status.SPP = 0
		if s.Priv == S {
			s.Status.SPP = 1
		}
		if c.HasH {
			hs := s.Hstatus &^ (hstatusSPV | hstatusGVA)
			if fromV {
				hs |= hstatusSPV
				hs &^= hstatusSPVP
				if s.Priv == S {
					hs |= hstatusSPVP
				}
				if !intr && causeWritesGVA(code) {
					hs |= hstatusGVA
				}
			}
			s.Hstatus = hs
			s.Htval = gpa >> 2
			s.Htinst = 0
			s.V = false
		}
		s.Priv = S
		s.PC = trapVector(s.Stvec, cause)
		return
	}
	s.Mcause = cause
	s.Mepc = legalizeXepc(s.PC)
	s.Mtval = tval
	s.Status.MPIE = s.Status.MIE
	s.Status.MIE = false
	s.Status.MPP = s.Priv
	if c.HasH {
		s.Status.MPV = fromV
		s.Status.GVA = fromV && !intr && causeWritesGVA(code)
		s.Mtval2 = gpa >> 2
		s.Mtinst = 0
		s.V = false
	}
	s.Priv = M
	s.PC = trapVector(s.Mtvec, cause)
}

func trapVector(tvec, cause uint64) uint64 {
	base := tvec &^ 3
	if tvec&3 == 1 && cause>>63 != 0 {
		return base + 4*(cause&^(1<<63))
	}
	return base
}

func execMRET(c *Config, s *State) {
	prev := s.Status.MPP
	s.Status.MIE = s.Status.MPIE
	s.Status.MPIE = true
	s.Status.MPP = U
	if prev != M {
		s.Status.MPRV = false
	}
	if c.HasH {
		s.V = prev != M && s.Status.MPV
		s.Status.MPV = false
	}
	s.Priv = prev
	s.PC = s.Mepc
}

func execSRET(c *Config, s *State) {
	if s.V {
		// sret executed by the guest: unstack vsstatus, stay in V.
		vs := s.Vsstatus
		prev := vs >> 8 & 1
		vs = vs&^(1<<1) | vs>>4&(1<<1) // SIE <- SPIE
		vs |= 1 << 5                   // SPIE <- 1
		vs &^= 1 << 8                  // SPP <- 0
		s.Vsstatus = vs
		s.Priv = uint8(prev)
		s.PC = s.Vsepc
		return
	}
	prev := s.Status.SPP
	s.Status.SIE = s.Status.SPIE
	s.Status.SPIE = true
	s.Status.SPP = 0
	if prev != M { // SPP can only be U or S, both below M
		s.Status.MPRV = false
	}
	if c.HasH {
		s.V = s.Hstatus&hstatusSPV != 0
		s.Hstatus &^= hstatusSPV
	}
	s.Priv = prev
	s.PC = s.Sepc
}

// PendingInterrupt returns the interrupt code the machine would take from
// state s, applying the priority and delegation rules of the privileged
// spec, or -1 when none is deliverable. VS-level interrupt sources live in
// hvip&hie (the model's simplification: mip/mie exclude the VS bits).
func PendingInterrupt(c *Config, s *State) int {
	pending := s.Mip(c) & s.Mie
	if c.HasH {
		pending |= s.Hvip & s.Hie
	}
	if pending == 0 {
		return -1
	}
	mEnabled := s.Priv != M || s.Status.MIE
	sEnabled := s.V || s.Priv == U || (s.Priv == S && s.Status.SIE)

	if mPending := pending &^ s.Mideleg; mEnabled && mPending != 0 {
		for _, code := range []int{11, 3, 7, 9, 1, 5, 10, 2, 6} {
			if mPending>>code&1 != 0 {
				return code
			}
		}
	}
	sPending := pending & s.Mideleg &^ (s.Hideleg & vsIntMask)
	if s.Priv != M && sEnabled && sPending != 0 {
		for _, code := range []int{9, 1, 5, 10, 2, 6} {
			if sPending>>code&1 != 0 {
				return code
			}
		}
	}
	if s.V && (s.Priv == U || s.Vsstatus>>1&1 != 0) {
		if vsPending := pending & s.Mideleg & s.Hideleg & vsIntMask; vsPending != 0 {
			for _, code := range []int{10, 2, 6} {
				if vsPending>>code&1 != 0 {
					return code
				}
			}
		}
	}
	return -1
}
