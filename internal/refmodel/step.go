package refmodel

// Event reports what a transition did, so differential tests can compare
// control flow as well as state.
type Event int

const (
	EvRetired Event = iota // instruction completed
	EvTrap                 // synchronous exception taken
	EvIntr                 // interrupt taken
	EvWFI                  // entered wait-for-interrupt
)

// Op identifies a decoded privileged instruction.
type Op int

const (
	OpIllegal Op = iota
	OpCSRRW
	OpCSRRS
	OpCSRRC
	OpCSRRWI
	OpCSRRSI
	OpCSRRCI
	OpMRET
	OpSRET
	OpWFI
	OpECALL
	OpEBREAK
	OpSFENCE
	OpFENCE
	OpFENCEI
)

// Instr is a decoded privileged instruction.
type Instr struct {
	Op   Op
	Rd   uint32
	Rs1  uint32
	CSR  uint16
	Zimm uint64
	Raw  uint32
}

// Decode decodes the privileged-instruction subset. Anything else decodes
// to OpIllegal (the reference model only specifies the instructions the
// monitor emulates, mirroring the paper's scope).
func Decode(raw uint32) Instr {
	ins := Instr{Op: OpIllegal, Raw: raw}
	opcode := raw & 0x7F
	if opcode == 0x0F {
		switch raw >> 12 & 7 {
		case 0:
			ins.Op = OpFENCE
		case 1:
			ins.Op = OpFENCEI
		}
		return ins
	}
	if opcode != 0x73 {
		return ins
	}
	f3 := raw >> 12 & 7
	ins.Rd = raw >> 7 & 0x1F
	ins.Rs1 = raw >> 15 & 0x1F
	ins.CSR = uint16(raw >> 20)
	ins.Zimm = uint64(ins.Rs1)
	switch f3 {
	case 0:
		switch {
		case raw == 0x00000073:
			ins.Op = OpECALL
		case raw == 0x00100073:
			ins.Op = OpEBREAK
		case raw == 0x30200073:
			ins.Op = OpMRET
		case raw == 0x10200073:
			ins.Op = OpSRET
		case raw == 0x10500073:
			ins.Op = OpWFI
		case raw>>25 == 0x09 && ins.Rd == 0:
			ins.Op = OpSFENCE
		}
	case 1:
		ins.Op = OpCSRRW
	case 2:
		ins.Op = OpCSRRS
	case 3:
		ins.Op = OpCSRRC
	case 5:
		ins.Op = OpCSRRWI
	case 6:
		ins.Op = OpCSRRSI
	case 7:
		ins.Op = OpCSRRCI
	}
	return ins
}

// Exception cause numbers, spelled out as the spec tables do.
const (
	causeIllegal = 2
	causeBreak   = 3
	causeEcallU  = 8
	causeEcallS  = 9
	causeEcallM  = 11
)

// HW is the hardware transition function hw(c, s, i): execute the (decoded)
// privileged instruction i from state s under configuration c. The state is
// mutated in place; the returned Event classifies the outcome.
func HW(c *Config, s *State, raw uint32) Event {
	ins := Decode(raw)
	switch ins.Op {
	case OpIllegal:
		return takeException(s, causeIllegal, uint64(raw))
	case OpFENCE, OpFENCEI:
		s.PC += 4
		s.Instret++
		return EvRetired
	case OpECALL:
		cause := uint64(causeEcallU)
		switch s.Priv {
		case S:
			cause = causeEcallS
		case M:
			cause = causeEcallM
		}
		return takeException(s, cause, 0)
	case OpEBREAK:
		return takeException(s, causeBreak, s.PC)
	case OpMRET:
		if s.Priv != M {
			return takeException(s, causeIllegal, uint64(raw))
		}
		execMRET(s)
		s.Instret++
		return EvRetired
	case OpSRET:
		if s.Priv == U || (s.Priv == S && s.Status.TSR) {
			return takeException(s, causeIllegal, uint64(raw))
		}
		execSRET(s)
		s.Instret++
		return EvRetired
	case OpWFI:
		if s.Priv == U || (s.Priv == S && s.Status.TW) {
			return takeException(s, causeIllegal, uint64(raw))
		}
		s.WFI = true
		s.PC += 4
		s.Instret++
		return EvWFI
	case OpSFENCE:
		if s.Priv == U || (s.Priv == S && s.Status.TVM) {
			return takeException(s, causeIllegal, uint64(raw))
		}
		s.PC += 4
		s.Instret++
		return EvRetired
	}

	// CSR instructions.
	write, read := true, true
	switch ins.Op {
	case OpCSRRW, OpCSRRWI:
		read = ins.Rd != 0
	case OpCSRRS, OpCSRRC, OpCSRRSI, OpCSRRCI:
		write = ins.Rs1 != 0
	}
	if !csrAccessOK(c, s, ins.CSR, write) {
		return takeException(s, causeIllegal, uint64(raw))
	}
	old := readCSR(c, s, ins.CSR)
	if write {
		src := s.Reg(ins.Rs1)
		if ins.Op >= OpCSRRWI {
			src = ins.Zimm
		}
		var newVal uint64
		switch ins.Op {
		case OpCSRRW, OpCSRRWI:
			newVal = src
		case OpCSRRS, OpCSRRSI:
			newVal = old | src
		case OpCSRRC, OpCSRRCI:
			newVal = old &^ src
		}
		writeCSR(c, s, ins.CSR, newVal)
	}
	if read {
		s.SetReg(ins.Rd, old)
	}
	s.PC += 4
	s.Instret++
	return EvRetired
}

// takeException performs trap entry for a synchronous exception at the
// current PC, honouring medeleg.
func takeException(s *State, cause, tval uint64) Event {
	deleg := s.Priv != M && s.Medeleg>>cause&1 != 0
	enterTrap(s, cause, tval, deleg)
	return EvTrap
}

// TakeInterrupt performs trap entry for interrupt code, honouring mideleg.
// The caller is responsible for having checked deliverability (this is the
// trap-entry half of the interrupt rules; PendingInterrupt is the check).
func TakeInterrupt(s *State, code uint64) {
	deleg := s.Priv != M && s.Mideleg>>code&1 != 0
	enterTrap(s, code|1<<63, 0, deleg)
}

func enterTrap(s *State, cause, tval uint64, toS bool) {
	if toS {
		s.Scause = cause
		s.Sepc = legalizeXepc(s.PC)
		s.Stval = tval
		s.Status.SPIE = s.Status.SIE
		s.Status.SIE = false
		s.Status.SPP = 0
		if s.Priv == S {
			s.Status.SPP = 1
		}
		s.Priv = S
		s.PC = trapVector(s.Stvec, cause)
		return
	}
	s.Mcause = cause
	s.Mepc = legalizeXepc(s.PC)
	s.Mtval = tval
	s.Status.MPIE = s.Status.MIE
	s.Status.MIE = false
	s.Status.MPP = s.Priv
	s.Priv = M
	s.PC = trapVector(s.Mtvec, cause)
}

func trapVector(tvec, cause uint64) uint64 {
	base := tvec &^ 3
	if tvec&3 == 1 && cause>>63 != 0 {
		return base + 4*(cause&^(1<<63))
	}
	return base
}

func execMRET(s *State) {
	prev := s.Status.MPP
	s.Status.MIE = s.Status.MPIE
	s.Status.MPIE = true
	s.Status.MPP = U
	if prev != M {
		s.Status.MPRV = false
	}
	s.Priv = prev
	s.PC = s.Mepc
}

func execSRET(s *State) {
	prev := s.Status.SPP
	s.Status.SIE = s.Status.SPIE
	s.Status.SPIE = true
	s.Status.SPP = 0
	if prev != M { // SPP can only be U or S, both below M
		s.Status.MPRV = false
	}
	s.Priv = prev
	s.PC = s.Sepc
}

// PendingInterrupt returns the interrupt code the machine would take from
// state s, applying the priority and delegation rules of the privileged
// spec, or -1 when none is deliverable.
func PendingInterrupt(c *Config, s *State) int {
	pending := s.Mip(c) & s.Mie
	if pending == 0 {
		return -1
	}
	mEnabled := s.Priv != M || s.Status.MIE
	sEnabled := s.Priv == U || (s.Priv == S && s.Status.SIE)

	if mPending := pending &^ s.Mideleg; mEnabled && mPending != 0 {
		for _, code := range []int{11, 3, 7, 9, 1, 5} {
			if mPending>>code&1 != 0 {
				return code
			}
		}
	}
	if sPending := pending & s.Mideleg; s.Priv != M && sEnabled && sPending != 0 {
		for _, code := range []int{9, 1, 5} {
			if sPending>>code&1 != 0 {
				return code
			}
		}
	}
	return -1
}
