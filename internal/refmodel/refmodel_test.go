package refmodel

import (
	"testing"
	"testing/quick"
)

func cfgVF2() *Config {
	return &Config{PMPCount: 8, Mvendorid: 0x489, Marchid: 7, Mimpid: 1}
}

func TestMstatusRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		m := MstatusFromBits(v)
		m2 := MstatusFromBits(m.Bits())
		return m == m2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodePrivileged(t *testing.T) {
	cases := map[uint32]Op{
		0x00000073: OpECALL,
		0x00100073: OpEBREAK,
		0x30200073: OpMRET,
		0x10200073: OpSRET,
		0x10500073: OpWFI,
		0x12000073: OpSFENCE, // sfence.vma x0, x0
		0x0000100F: OpFENCEI,
		0x0FF0000F: OpFENCE,
		0x34011073: OpCSRRW, // csrw mscratch, x2
		0x30002573: OpCSRRS, // csrr a0, mstatus
		0x30003573: OpCSRRC,
		0x30015073: OpCSRRWI,
		0x30016073: OpCSRRSI,
		0x30017073: OpCSRRCI,
		0x00000013: OpIllegal, // addi: not in the privileged subset
		0xFFFFFFFF: OpIllegal,
		0x30200077: OpIllegal,
	}
	for raw, want := range cases {
		if got := Decode(raw).Op; got != want {
			t.Errorf("Decode(%#x).Op = %d, want %d", raw, got, want)
		}
	}
	ins := Decode(0x34011073)
	if ins.CSR != 0x340 || ins.Rs1 != 2 || ins.Rd != 0 {
		t.Error("csrw field decode")
	}
}

func TestEcallTrapEntry(t *testing.T) {
	c := cfgVF2()
	s := NewState()
	s.Priv = S
	s.PC = 0x1000
	s.Mtvec = 0x2000
	s.Status.MIE = true
	ev := HW(c, s, 0x00000073)
	if ev != EvTrap {
		t.Fatal("ecall must trap")
	}
	if s.Priv != M || s.PC != 0x2000 {
		t.Error("trap must enter M at mtvec")
	}
	if s.Mcause != 9 || s.Mepc != 0x1000 {
		t.Errorf("mcause=%d mepc=%#x", s.Mcause, s.Mepc)
	}
	if s.Status.MPP != S || !s.Status.MPIE || s.Status.MIE {
		t.Error("status stacking wrong")
	}
}

func TestDelegatedEcall(t *testing.T) {
	c := cfgVF2()
	s := NewState()
	s.Priv = U
	s.PC = 0x1000
	s.Stvec = 0x3000
	s.Medeleg = 1 << 8
	s.Status.SIE = true
	if ev := HW(c, s, 0x00000073); ev != EvTrap {
		t.Fatal("must trap")
	}
	if s.Priv != S || s.PC != 0x3000 || s.Scause != 8 {
		t.Error("delegation must land in S")
	}
	if s.Status.SPP != 0 || !s.Status.SPIE || s.Status.SIE {
		t.Error("sstatus stacking wrong")
	}
	// Ecall from M never delegates.
	s2 := NewState()
	s2.Medeleg = 0xB3FF
	s2.Mtvec = 0x4000
	if HW(c, s2, 0x00000073); s2.Priv != M || s2.PC != 0x4000 {
		t.Error("M-mode ecall must stay in M")
	}
}

func TestMretSemantics(t *testing.T) {
	c := cfgVF2()
	s := NewState()
	s.Status.MPP = U
	s.Status.MPIE = true
	s.Status.MPRV = true
	s.Mepc = 0x5000
	if ev := HW(c, s, 0x30200073); ev != EvRetired {
		t.Fatal("mret must retire")
	}
	if s.Priv != U || s.PC != 0x5000 {
		t.Error("mret destination")
	}
	if !s.Status.MIE || !s.Status.MPIE || s.Status.MPP != U {
		t.Error("mret status update")
	}
	if s.Status.MPRV {
		t.Error("mret to non-M must clear MPRV")
	}
	// mret from S is illegal.
	s2 := NewState()
	s2.Priv = S
	s2.Mtvec = 0x100
	if ev := HW(c, s2, 0x30200073); ev != EvTrap || s2.Mcause != 2 {
		t.Error("mret from S must be illegal")
	}
}

func TestSretTSR(t *testing.T) {
	c := cfgVF2()
	s := NewState()
	s.Priv = S
	s.Status.TSR = true
	s.Mtvec = 0x100
	if ev := HW(c, s, 0x10200073); ev != EvTrap {
		t.Error("sret with TSR must trap")
	}
	s2 := NewState()
	s2.Priv = S
	s2.Status.SPP = 0
	s2.Sepc = 0x900
	if ev := HW(c, s2, 0x10200073); ev != EvRetired || s2.Priv != U || s2.PC != 0x900 {
		t.Error("sret to U failed")
	}
}

func TestWFIRules(t *testing.T) {
	c := cfgVF2()
	s := NewState()
	s.Priv = U
	s.Mtvec = 0x100
	if ev := HW(c, s, 0x10500073); ev != EvTrap {
		t.Error("wfi from U must be illegal")
	}
	s2 := NewState()
	s2.Priv = S
	s2.Status.TW = true
	s2.Mtvec = 0x100
	if ev := HW(c, s2, 0x10500073); ev != EvTrap {
		t.Error("wfi from S with TW must be illegal")
	}
	s3 := NewState()
	if ev := HW(c, s3, 0x10500073); ev != EvWFI || !s3.WFI {
		t.Error("wfi from M must wait")
	}
}

func TestCSRPrivilegeChecks(t *testing.T) {
	c := cfgVF2()
	s := NewState()
	s.Priv = S
	s.Mtvec = 0x100
	// S-mode read of mstatus is illegal.
	if ev := HW(c, s, 0x30002573); ev != EvTrap || s.Mcause != 2 {
		t.Error("S read of mstatus must trap")
	}
	// Write to a read-only CSR (mvendorid = 0xF11) is illegal even in M.
	s2 := NewState()
	s2.Mtvec = 0x100
	raw := uint32(0xF11)<<20 | 1<<15 | 1<<12 | 0x73 // csrrw x0, mvendorid, x1
	if ev := HW(c, s2, raw); ev != EvTrap {
		t.Error("write to read-only CSR must trap")
	}
	// csrrs with rs1=x0 to a read-only CSR is a pure read and is legal.
	s3 := NewState()
	raw = uint32(0xF11)<<20 | 0<<15 | 2<<12 | 10<<7 | 0x73
	if ev := HW(c, s3, raw); ev != EvRetired || s3.Regs[10] != 0x489 {
		t.Error("read of mvendorid failed")
	}
}

func TestCSRWriteSemantics(t *testing.T) {
	c := cfgVF2()
	s := NewState()
	s.Regs[5] = 0xFFFF_FFFF_FFFF_FFFF
	// csrrw x0, medeleg, x5: write all ones, read back the WARL mask.
	HW(c, s, uint32(0x302)<<20|5<<15|1<<12|0x73)
	if s.Medeleg != 0xB3FF {
		t.Errorf("medeleg = %#x", s.Medeleg)
	}
	// mideleg masks to S-interrupt bits.
	HW(c, s, uint32(0x303)<<20|5<<15|1<<12|0x73)
	if s.Mideleg != 0x222 {
		t.Errorf("mideleg = %#x", s.Mideleg)
	}
	// mtvec reserved mode legalizes to direct.
	s.Regs[6] = 0x8003
	HW(c, s, uint32(0x305)<<20|6<<15|1<<12|0x73)
	if s.Mtvec != 0x8000 {
		t.Errorf("mtvec = %#x", s.Mtvec)
	}
	// mepc clears the low two bits.
	s.Regs[7] = 0x1007
	HW(c, s, uint32(0x341)<<20|7<<15|1<<12|0x73)
	if s.Mepc != 0x1004 {
		t.Errorf("mepc = %#x", s.Mepc)
	}
	// MPP=2 write keeps the old MPP.
	s.Status.MPP = S
	s.Regs[8] = 2 << 11
	HW(c, s, uint32(0x300)<<20|8<<15|1<<12|0x73)
	if s.Status.MPP != S {
		t.Errorf("MPP legalization: %d", s.Status.MPP)
	}
	// satp with a reserved mode is ignored entirely.
	s.Satp = 0
	s.Regs[9] = 5 << 60
	HW(c, s, uint32(0x180)<<20|9<<15|1<<12|0x73)
	if s.Satp != 0 {
		t.Error("satp reserved mode must be ignored")
	}
}

func TestPendingInterruptPriority(t *testing.T) {
	c := cfgVF2()
	s := NewState()
	s.Priv = M
	s.Status.MIE = true
	s.Mie = 0xAAA
	s.MipHW = 1<<7 | 1<<3 | 1<<11 // MTIP, MSIP, MEIP
	if code := PendingInterrupt(c, s); code != 11 {
		t.Errorf("priority: got %d want MEI(11)", code)
	}
	s.MipHW = 1<<7 | 1<<3
	if code := PendingInterrupt(c, s); code != 3 {
		t.Errorf("priority: got %d want MSI(3)", code)
	}
	s.MipHW = 1 << 7
	if code := PendingInterrupt(c, s); code != 7 {
		t.Errorf("priority: got %d want MTI(7)", code)
	}
	// Disabled globally in M.
	s.Status.MIE = false
	if code := PendingInterrupt(c, s); code != -1 {
		t.Error("M-mode with MIE=0 must not take M interrupts")
	}
	// But from S-mode, M interrupts fire regardless of SIE.
	s.Priv = S
	if code := PendingInterrupt(c, s); code != 7 {
		t.Error("M interrupts always deliverable from below M")
	}
	// Delegated interrupts respect SIE.
	s2 := NewState()
	s2.Priv = S
	s2.Mie = 0xAAA
	s2.Mideleg = 0x222
	s2.MipSW = 1 << 1
	if code := PendingInterrupt(c, s2); code != -1 {
		t.Error("delegated SSI with SIE=0 must wait")
	}
	s2.Status.SIE = true
	if code := PendingInterrupt(c, s2); code != 1 {
		t.Error("delegated SSI with SIE=1 must fire")
	}
	// Delegated interrupts never fire in M-mode.
	s2.Priv = M
	s2.Status.MIE = true
	if code := PendingInterrupt(c, s2); code != -1 {
		t.Error("delegated interrupts must not preempt M-mode")
	}
}

func TestTakeInterruptEntry(t *testing.T) {
	s := NewState()
	s.Priv = S
	s.PC = 0x1234
	s.Mtvec = 0x8001 // vectored
	TakeInterrupt(&Config{}, s, 7)
	if s.Priv != M {
		t.Error("must enter M")
	}
	if s.PC != 0x8000+4*7 {
		t.Errorf("vectored entry PC %#x", s.PC)
	}
	if s.Mcause != 7|1<<63 {
		t.Errorf("mcause %#x", s.Mcause)
	}
}

func TestSstcMipComposition(t *testing.T) {
	c := &Config{PMPCount: 8, HasSstc: true}
	s := NewState()
	s.Menvcfg = 1 << 63
	s.Stimecmp = 100
	s.Time = 99
	if s.Mip(c)&(1<<5) != 0 {
		t.Error("STIP before deadline")
	}
	s.Time = 100
	if s.Mip(c)&(1<<5) == 0 {
		t.Error("STIP at deadline")
	}
	// Software writes to STIP are ignored under Sstc.
	writeMip(c, s, 1<<5)
	s.Time = 0
	if s.Mip(c)&(1<<5) != 0 {
		t.Error("STIP must be read-only under Sstc")
	}
}

func TestPMPCheckModel(t *testing.T) {
	c := cfgVF2()
	s := NewState()
	// Entry 0: NAPOT no-perm over [0x1000,0x2000); entry 1 all-RWX.
	s.PmpAddr[0] = 0x1000>>2 | (0x1000/8 - 1)
	s.PmpCfg[0] = 3 << 3
	s.PmpAddr[1] = 1<<54 - 1
	s.PmpCfg[1] = 3<<3 | 7
	if PMPCheck(c, s, 0x1800, 8, AccRead, S) {
		t.Error("denied region must fail for S")
	}
	if !PMPCheck(c, s, 0x1800, 8, AccRead, M) {
		t.Error("unlocked entry must not bind M")
	}
	if !PMPCheck(c, s, 0x2000, 8, AccWrite, U) {
		t.Error("allowed region must pass")
	}
	// Partial overlap fails.
	if PMPCheck(c, s, 0xFFC, 8, AccRead, S) {
		t.Error("straddling access must fail")
	}
	// Locked entry binds M.
	s.PmpCfg[0] = 0x80 | 3<<3
	if PMPCheck(c, s, 0x1800, 8, AccRead, M) {
		t.Error("locked no-perm entry must deny M")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewState()
	s.Custom[0x7C0] = 7
	s.Regs[1] = 1
	c := s.Clone()
	c.Custom[0x7C0] = 9
	c.Regs[1] = 2
	if s.Custom[0x7C0] != 7 || s.Regs[1] != 1 {
		t.Error("clone must not alias")
	}
}

func TestCounterGatingModel(t *testing.T) {
	c := &Config{PMPCount: 8, HasTimeCSR: true}
	s := NewState()
	s.Priv = U
	s.Mtvec = 0x100
	s.Time = 42
	// U read of time with both enables clear: illegal.
	raw := uint32(0xC01)<<20 | 0<<15 | 2<<12 | 10<<7 | 0x73
	if ev := HW(c, s, raw); ev != EvTrap {
		t.Error("gated time read must trap")
	}
	s2 := NewState()
	s2.Priv = U
	s2.Mcounteren = 2
	s2.Scounteren = 2
	s2.Time = 42
	if ev := HW(c, s2, raw); ev != EvRetired || s2.Regs[10] != 42 {
		t.Error("enabled time read must succeed")
	}
}
