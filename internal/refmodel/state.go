// Package refmodel is an executable reference model of the RISC-V
// privileged architecture, playing the role the official Sail model plays
// in the paper's verification methodology (§6): an authoritative
// specification hw : C × S × I → S against which the monitor's emulator is
// checked for "faithful emulation", and whose PMPCheck function anchors
// "faithful execution" of loads and stores.
//
// The model is written independently of internal/hart and internal/core —
// different state representation (decomposed status fields, in the style
// of Sail's Mstatus record), different decoder, different PMP matcher — so
// that differential testing compares two genuinely separate derivations of
// the specification.
package refmodel

// Mode numbers (avoid importing the simulator's types; the model stands
// alone like the Sail spec does).
const (
	U = 0
	S = 1
	M = 3
)

// Config is the platform configuration C: which optional features exist
// and how many PMP entries are implemented.
type Config struct {
	PMPCount   int
	HasSstc    bool
	HasTimeCSR bool
	HasH       bool
	// MidelegForced models a machine whose mideleg hardwires the three
	// S-interrupt bits to 1 (WARL), which is how the monitor's virtual
	// hardware forces delegation (paper §4.3).
	MidelegForced bool
	CustomCSRs    []uint16

	Mvendorid uint64
	Marchid   uint64
	Mimpid    uint64
	Mhartid   uint64
}

// HasCustom reports whether csr is a documented platform-custom CSR.
func (c *Config) HasCustom(csr uint16) bool {
	for _, n := range c.CustomCSRs {
		if n == csr {
			return true
		}
	}
	return false
}

// Mstatus is the decomposed machine-status register, one field per
// architectural field (the Sail representation).
type Mstatus struct {
	SIE, MIE     bool
	SPIE, MPIE   bool
	SPP          uint8 // 0 or 1
	MPP          uint8 // 0, 1, or 3
	MPRV         bool
	SUM, MXR     bool
	TVM, TW, TSR bool
	GVA, MPV     bool // hypervisor extension (writable only when HasH)
}

// Bits reassembles the architectural mstatus value (RV64, UXL=SXL=2,
// FS/VS/XS hardwired zero).
func (m Mstatus) Bits() uint64 {
	var v uint64
	set := func(b bool, pos uint) {
		if b {
			v |= 1 << pos
		}
	}
	set(m.SIE, 1)
	set(m.MIE, 3)
	set(m.SPIE, 5)
	set(m.MPIE, 7)
	v |= uint64(m.SPP&1) << 8
	v |= uint64(m.MPP&3) << 11
	set(m.MPRV, 17)
	set(m.SUM, 18)
	set(m.MXR, 19)
	set(m.TVM, 20)
	set(m.TW, 21)
	set(m.TSR, 22)
	set(m.GVA, 38)
	set(m.MPV, 39)
	v |= 2<<32 | 2<<34 // UXL, SXL
	return v
}

// MstatusFromBits decomposes an architectural mstatus value. Unsupported
// fields are dropped, mirroring the WARL behaviour of the modelled machine.
func MstatusFromBits(v uint64) Mstatus {
	get := func(pos uint) bool { return v&(1<<pos) != 0 }
	m := Mstatus{
		SIE:  get(1),
		MIE:  get(3),
		SPIE: get(5),
		MPIE: get(7),
		SPP:  uint8(v >> 8 & 1),
		MPP:  uint8(v >> 11 & 3),
		MPRV: get(17),
		SUM:  get(18),
		MXR:  get(19),
		TVM:  get(20),
		TW:   get(21),
		TSR:  get(22),
		GVA:  get(38),
		MPV:  get(39),
	}
	if m.MPP == 2 {
		m.MPP = U // never constructed by hardware; normalize
	}
	return m
}

// State is the machine state S the privileged specification operates on.
type State struct {
	Regs [32]uint64
	PC   uint64
	Priv uint8

	// V is the virtualization mode (hypervisor extension): set while the
	// hart executes in VS- or VU-mode. Always false when Priv is M.
	V bool

	Status Mstatus

	Mie, Mideleg, Medeleg uint64
	MipSW                 uint64 // software-writable pending bits
	MipHW                 uint64 // hardware-driven lines (MSIP/MTIP/MEIP/SEIP)

	Mtvec, Stvec           uint64
	Mepc, Sepc             uint64
	Mcause, Scause         uint64
	Mtval, Stval           uint64
	Mscratch, Sscratch     uint64
	Mcounteren, Scounteren uint64
	Menvcfg, Senvcfg       uint64
	Mseccfg                uint64
	Mcountinhibit          uint64
	Satp                   uint64
	Stimecmp               uint64
	Mtinst, Mtval2         uint64

	// Hypervisor-extension state (present when Config.HasH).
	Hstatus, Hedeleg, Hideleg, Hie, Hcounteren, Hgeie uint64
	Htval, Hip, Hvip, Htinst, Hgatp, Henvcfg          uint64
	Vsstatus, Vsie, Vstvec, Vsscratch                 uint64
	Vsepc, Vscause, Vstval, Vsip, Vsatp               uint64

	PmpCfg  [64]uint8
	PmpAddr [64]uint64

	Custom map[uint16]uint64

	Time    uint64
	Cycle   uint64
	Instret uint64

	// WFI latches that the hart entered the wait state.
	WFI bool
}

// NewState returns a reset-state machine.
func NewState() *State {
	return &State{Priv: M, Custom: make(map[uint16]uint64)}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	t := *s
	t.Custom = make(map[uint16]uint64, len(s.Custom))
	for k, v := range s.Custom {
		t.Custom[k] = v
	}
	return &t
}

// Mip composes the architectural mip value, including the Sstc comparator.
func (s *State) Mip(c *Config) uint64 {
	v := s.MipSW | s.MipHW
	if c.HasSstc && s.Menvcfg>>63 != 0 {
		v &^= 1 << 5
		if s.Time >= s.Stimecmp {
			v |= 1 << 5
		}
	}
	return v
}

// Reg reads a GPR with x0 hardwired to zero.
func (s *State) Reg(i uint32) uint64 {
	if i == 0 {
		return 0
	}
	return s.Regs[i]
}

// SetReg writes a GPR, discarding writes to x0.
func (s *State) SetReg(i uint32, v uint64) {
	if i != 0 {
		s.Regs[i] = v
	}
}
