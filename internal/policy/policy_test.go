// Package policy_test exercises the three isolation policies end to end:
// full boots of unmodified firmware with guest kernels driving enclaves,
// confidential VMs, and sandbox-violation scenarios.
package policy_test

import (
	"strings"
	"testing"

	"govfm/internal/core"
	"govfm/internal/firmware"
	"govfm/internal/hart"
	"govfm/internal/kernel"
	"govfm/internal/policy/ace"
	"govfm/internal/policy/keystone"
	"govfm/internal/policy/sandbox"
)

// boot brings up gosbi + the given kernel image under the monitor with the
// given policy and runs to halt.
func boot(t *testing.T, cfg *hart.Config, pol core.Policy, kern []byte,
	fwOpt firmware.Options, maxSteps uint64) (*hart.Machine, *core.Monitor) {
	t.Helper()
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		t.Fatal(err)
	}
	fwOpt.OSEntry = core.OSBase
	fwOpt.Harts = 1
	fwOpt.FirmwareSize = core.FirmwareSize
	fw := firmware.BuildGosbi(core.FirmwareBase, fwOpt)
	if err := m.LoadImage(core.FirmwareBase, fw.Bytes); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(core.OSBase, kern); err != nil {
		t.Fatal(err)
	}
	mon, err := core.Attach(m, core.Options{
		Policy: pol, Offload: true, FirmwareEntry: core.FirmwareBase,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Boot()
	m.Run(maxSteps)
	return m, mon
}

func results(t *testing.T, m *hart.Machine, n int) []uint64 {
	t.Helper()
	out := make([]uint64, n)
	for i := range out {
		v, ok := m.Bus.Load(kernel.DemoResultAddr+uint64(8*i), 8)
		if !ok {
			t.Fatalf("result %d unreadable", i)
		}
		out[i] = v
	}
	return out
}

func mustExitPass(t *testing.T, m *hart.Machine) {
	t.Helper()
	ok, reason := m.Halted()
	if !ok || reason != "guest-exit-pass" {
		t.Fatalf("halted=%v reason=%q hart0=%v", ok, reason, m.Harts[0])
	}
}

// --- Sandbox policy (paper §5.2) ---

func TestSandboxBootsCleanFirmware(t *testing.T) {
	pol := sandbox.New(sandbox.Options{})
	kern := kernel.BuildBoot(core.OSBase, kernel.BootOptions{
		Harts: 1, TimeReads: 5, TimerSets: 1, Misaligned: 0,
	})
	m, _ := boot(t, hart.VisionFive2(), pol, kern, firmware.Options{}, 5_000_000)
	mustExitPass(t, m)
	if pol.BootHash == 0 {
		t.Error("lockdown must hash the initial S-mode image")
	}
	if pol.Violations != 0 {
		t.Errorf("clean firmware produced %d violations", pol.Violations)
	}
}

func TestSandboxBlocksOSMemoryRead(t *testing.T) {
	pol := sandbox.New(sandbox.Options{})
	kern := kernel.BuildEvilTrigger(core.OSBase)
	m, _ := boot(t, hart.VisionFive2(), pol, kern,
		firmware.Options{EvilMode: "read-os", EvilTarget: core.OSBase + 0x8000},
		5_000_000)
	ok, reason := m.Halted()
	if !ok || !strings.Contains(reason, "miralis") {
		t.Fatalf("sandbox must stop the machine on firmware OS-memory read, got %q", reason)
	}
}

func TestSandboxBlocksOSMemoryWrite(t *testing.T) {
	pol := sandbox.New(sandbox.Options{})
	kern := kernel.BuildEvilTrigger(core.OSBase)
	m, _ := boot(t, hart.VisionFive2(), pol, kern,
		firmware.Options{EvilMode: "write-os", EvilTarget: core.OSBase + 0x8000},
		5_000_000)
	ok, reason := m.Halted()
	if !ok || !strings.Contains(reason, "miralis") {
		t.Fatalf("sandbox must stop the machine on firmware OS-memory write, got %q", reason)
	}
}

func TestSandboxBlocksDMAExfiltration(t *testing.T) {
	pol := sandbox.New(sandbox.Options{})
	kern := kernel.BuildEvilTrigger(core.OSBase)
	m, _ := boot(t, hart.VisionFive2(), pol, kern,
		firmware.Options{EvilMode: "dma"}, 5_000_000)
	ok, reason := m.Halted()
	if !ok || !strings.Contains(reason, "miralis") {
		t.Fatalf("sandbox must stop the machine on firmware DMA access, got %q", reason)
	}
}

func TestWithoutSandboxEvilFirmwareSucceeds(t *testing.T) {
	// Control experiment: without the sandbox the same malicious firmware
	// reads OS memory unimpeded — the exact gap the policy closes.
	kern := kernel.BuildEvilTrigger(core.OSBase)
	m, _ := boot(t, hart.VisionFive2(), nil, kern,
		firmware.Options{EvilMode: "read-os", EvilTarget: core.OSBase}, 5_000_000)
	mustExitPass(t, m)
}

func TestSandboxReportMode(t *testing.T) {
	var logged []string
	pol := sandbox.New(sandbox.Options{
		Report: true,
		Log:    func(f string, a ...any) { logged = append(logged, f) },
	})
	kern := kernel.BuildEvilTrigger(core.OSBase)
	m, _ := boot(t, hart.VisionFive2(), pol, kern,
		firmware.Options{EvilMode: "read-os", EvilTarget: core.OSBase + 0x8000},
		5_000_000)
	// Production behaviour: log, skip, keep running to a clean exit.
	mustExitPass(t, m)
	if pol.Violations == 0 || len(logged) == 0 {
		t.Error("report mode must record the violation")
	}
}

func TestSandboxGPRAllowList(t *testing.T) {
	const secret = 0xDEADBEEFCAFE
	// Without the sandbox the evil echo extension leaks the caller's s7.
	kern := kernel.BuildSecretCaller(core.OSBase, secret)
	m, _ := boot(t, hart.VisionFive2(), nil, kern,
		firmware.Options{EvilMode: "echo-s7"}, 5_000_000)
	mustExitPass(t, m)
	r := results(t, m, 2)
	if r[0] != secret {
		t.Fatalf("control run: firmware should see s7=%#x, got %#x", secret, r[0])
	}
	// With the sandbox, s7 is outside the SBI register allow-list: the
	// firmware sees zero, and the OS's s7 survives the round trip.
	pol := sandbox.New(sandbox.Options{})
	kern = kernel.BuildSecretCaller(core.OSBase, secret)
	m, _ = boot(t, hart.VisionFive2(), pol, kern,
		firmware.Options{EvilMode: "echo-s7"}, 5_000_000)
	mustExitPass(t, m)
	r = results(t, m, 2)
	if r[0] == secret {
		t.Error("sandbox failed to scrub s7 from the firmware's view")
	}
	if r[0] != 0 {
		t.Errorf("scrubbed register should read 0, got %#x", r[0])
	}
	if r[1] != secret {
		t.Errorf("OS's s7 must be restored after the call, got %#x", r[1])
	}
}

// --- Keystone policy (paper §5.3) ---

func TestKeystoneEnclaveLifecycle(t *testing.T) {
	pol := keystone.New()
	host := kernel.BuildKeystoneHost(core.OSBase, 100, false)
	enclave := kernel.BuildEnclavePayload(kernel.EnclaveBase, 100)

	cfg := hart.VisionFive2()
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		t.Fatal(err)
	}
	fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
		OSEntry: core.OSBase, Harts: 1, FirmwareSize: core.FirmwareSize,
	})
	for _, img := range []struct {
		base uint64
		b    []byte
	}{{core.FirmwareBase, fw.Bytes}, {core.OSBase, host}, {kernel.EnclaveBase, enclave}} {
		if err := m.LoadImage(img.base, img.b); err != nil {
			t.Fatal(err)
		}
	}
	mon, err := core.Attach(m, core.Options{
		Policy: pol, Offload: true, FirmwareEntry: core.FirmwareBase,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Boot()
	m.Run(10_000_000)
	mustExitPass(t, m)

	r := results(t, m, 6)
	if r[0] != 0 {
		t.Errorf("create returned %#x", r[0])
	}
	if r[1] != 5050 { // sum 1..100
		t.Errorf("enclave result = %d, want 5050", r[1])
	}
	if r[3] != 1 {
		t.Error("host read of enclave memory must fault")
	}
	if r[4] != 0 {
		t.Errorf("destroy returned %#x", r[4])
	}
	if r[5] != 0 {
		t.Errorf("enclave memory must be scrubbed on destroy, read %#x", r[5])
	}
}

func TestKeystonePreemption(t *testing.T) {
	pol := keystone.New()
	host := kernel.BuildKeystoneHost(core.OSBase, 0, true)
	enclave := kernel.BuildEnclavePayload(kernel.EnclaveBase, 40000)

	cfg := hart.VisionFive2()
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		t.Fatal(err)
	}
	fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
		OSEntry: core.OSBase, Harts: 1, FirmwareSize: core.FirmwareSize,
	})
	_ = m.LoadImage(core.FirmwareBase, fw.Bytes)
	_ = m.LoadImage(core.OSBase, host)
	_ = m.LoadImage(kernel.EnclaveBase, enclave)
	mon, err := core.Attach(m, core.Options{
		Policy: pol, Offload: true, FirmwareEntry: core.FirmwareBase,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Boot()
	m.Run(30_000_000)
	mustExitPass(t, m)
	r := results(t, m, 3)
	want := uint64(40000) * 40001 / 2
	if r[1] != want {
		t.Errorf("enclave result = %d, want %d", r[1], want)
	}
	if r[2] == 0 {
		t.Error("the enclave must have been preempted at least once")
	}
	t.Logf("preemptions: %d", r[2])
}

// --- ACE policy (paper §5.4) ---

func testACE(t *testing.T, cfg *hart.Config) {
	pol := ace.New()
	host := kernel.BuildACEHost(core.OSBase)
	guest := kernel.BuildCVMGuest(kernel.CVMBase)

	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		t.Fatal(err)
	}
	fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
		OSEntry: core.OSBase, Harts: 1, FirmwareSize: core.FirmwareSize,
	})
	_ = m.LoadImage(core.FirmwareBase, fw.Bytes)
	_ = m.LoadImage(core.OSBase, host)
	_ = m.LoadImage(kernel.CVMBase, guest)
	mon, err := core.Attach(m, core.Options{
		Policy: pol, Offload: true, FirmwareEntry: core.FirmwareBase,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Boot()
	m.Run(10_000_000)
	mustExitPass(t, m)

	r := results(t, m, 6)
	if r[0] != 0 {
		t.Errorf("promote returned %#x", r[0])
	}
	if r[1] != 0x600D {
		t.Errorf("guest exit value = %#x", r[1])
	}
	if r[2] != 0x9A9A9A {
		t.Errorf("shared page value = %#x", r[2])
	}
	if r[3] != 1 {
		t.Error("host read of CVM private memory must fault")
	}
	if r[4] != 0 {
		t.Errorf("destroy returned %#x", r[4])
	}
	if r[5] == 0 || r[5] == ace.ErrInvalidParam {
		t.Errorf("attest returned %#x, want a nonzero measurement", r[5])
	}
	if err := pol.CheckInvariants(); err != nil {
		t.Errorf("ace invariants after demo: %v", err)
	}
}

func TestACEConfidentialVM(t *testing.T) {
	testACE(t, hart.VisionFive2())
}

func TestACEConfidentialVMOnP550(t *testing.T) {
	// The P550 has the hypervisor extension: the policy additionally
	// shadows the host's H CSRs away from the CVM.
	testACE(t, hart.PremierP550())
}

// TestSandboxWithIOPMP: on a platform with a (virtualized) IOPMP, the
// sandbox leaves the DMA controller usable and relies on its IOPMP rule:
// the DMA exfiltration attempt fails silently and the system keeps
// running — the paper's preferred §4.3 design point.
func TestSandboxWithIOPMP(t *testing.T) {
	cfg := hart.VisionFive2()
	cfg.Harts = 1
	cfg.NumPMP = 16
	cfg.HasIOPMP = true
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		t.Fatal(err)
	}
	fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
		OSEntry: core.OSBase, Harts: 1, FirmwareSize: core.FirmwareSize,
		EvilMode: "dma", EvilTarget: core.OSBase + 0x8000,
	})
	_ = m.LoadImage(core.FirmwareBase, fw.Bytes)
	_ = m.LoadImage(core.OSBase, kernel.BuildEvilTrigger(core.OSBase))
	if !m.Bus.Store(core.OSBase+0x8000, 8, 0x5EC4E7) {
		t.Fatal("marker store failed")
	}
	pol := sandbox.New(sandbox.Options{})
	mon, err := core.Attach(m, core.Options{
		Policy: pol, Offload: true, FirmwareEntry: core.FirmwareBase,
		VirtualizeIOPMP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Boot()
	m.Run(10_000_000)
	mustExitPass(t, m) // the attack fails silently; the machine is fine
	if st, _ := m.Bus.Load(hart.DMABase+hart.DMAStat, 8); st != 2 {
		t.Errorf("DMA status = %d, want 2 (IOPMP denial)", st)
	}
	if pol.Violations != 0 {
		t.Errorf("no PMP violation expected (the IOPMP handled it), got %d", pol.Violations)
	}
	scratch := fw.Symbols["scratch"]
	if v, _ := m.Bus.Load(scratch, 8); v == 0x5EC4E7 {
		t.Error("OS memory leaked into the firmware via DMA")
	}
}
