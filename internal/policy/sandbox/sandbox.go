// Package sandbox implements the paper's firmware sandbox policy (§5.2):
// it confines the virtual firmware to its own memory range, blocks its
// access to OS memory and DMA-capable devices, scrubs general-purpose
// registers on world switches using a per-SBI-call register allow-list
// generated from the SBI specification, grants OS memory during the boot
// window (until the first jump to S-mode) and then locks it down and
// hashes the initial S-mode image.
package sandbox

import (
	"fmt"
	"hash/fnv"

	"govfm/internal/core"
	"govfm/internal/hart"
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// Options configures the sandbox.
type Options struct {
	// OSBase/OSSize is the protected OS memory range (NAPOT).
	OSBase, OSSize uint64
	// FirmwareBase/FirmwareSize is the firmware's own allowed range.
	FirmwareBase, FirmwareSize uint64
	// HashWindow is how many bytes of the initial S-mode image are hashed
	// at lockdown (0 means 64 KiB).
	HashWindow uint64
	// Report, when true, logs violations and returns to the OS instead of
	// stopping the machine — the paper's envisioned production behaviour
	// (§5.2: "log the invalid action and return arbitrary values").
	Report bool
	// Log receives violation reports (defaults to discarding them).
	Log func(format string, args ...any)
}

// Policy is the firmware sandbox.
type Policy struct {
	core.BasePolicy
	opt Options

	// lockedDown flips when the firmware first enters S-mode; from then on
	// firmware access to OS memory is a violation.
	lockedDown bool
	// BootHash is the FNV-64a hash of the initial S-mode image, computed
	// at lockdown.
	BootHash uint64

	// saved per-hart GPR snapshots across firmware world entries.
	saved map[int][32]uint64
	// Violations counts blocked firmware actions (Report mode).
	Violations uint64
}

// New builds a sandbox policy with the standard memory layout when fields
// are zero.
func New(opt Options) *Policy {
	if opt.OSBase == 0 {
		opt.OSBase, opt.OSSize = core.OSBase, core.OSSize
	}
	if opt.FirmwareBase == 0 {
		opt.FirmwareBase, opt.FirmwareSize = core.FirmwareBase, core.FirmwareSize
	}
	if opt.HashWindow == 0 {
		opt.HashWindow = 64 << 10
	}
	if opt.Log == nil {
		opt.Log = func(string, ...any) {}
	}
	return &Policy{opt: opt, saved: make(map[int][32]uint64)}
}

// Name implements core.Policy.
func (p *Policy) Name() string { return "sandbox" }

// ForkPolicy implements core.PolicyForker: the clone carries the lockdown
// state, boot hash, and saved per-hart contexts, so a forked monitor's
// sandbox picks up exactly where the parent's stood.
func (p *Policy) ForkPolicy() core.Policy {
	c := *p
	c.saved = make(map[int][32]uint64, len(p.saved))
	for k, v := range p.saved {
		c.saved[k] = v
	}
	return &c
}

// PolicyPMP implements core.Policy: while the firmware runs (after
// lockdown), OS memory and the DMA controller are inaccessible; while the
// OS runs, the firmware's memory is inaccessible (defence in depth on top
// of the firmware's own virtual PMP).
func (p *Policy) PolicyPMP(c *core.HartCtx, w core.World) []core.PMPRule {
	if w == core.WorldFirmware {
		var rules []core.PMPRule
		if !c.Mon.Opts.VirtualizeIOPMP {
			// Without an IOPMP the only defence is revoking the DMA
			// controller's MMIO window from the firmware (paper §4.3);
			// with a virtualized IOPMP the firmware may drive DMA and the
			// IOPMP rule below constrains where it can reach.
			rules = append(rules, core.PMPRule{
				Cfg:  pmp.ANapot << 3, // no permissions
				Addr: pmp.NAPOTAddr(hart.DMABase, hart.DMARegionSize),
			})
		}
		if p.lockedDown {
			rules = append(rules, core.PMPRule{
				Cfg:  pmp.ANapot << 3,
				Addr: pmp.NAPOTAddr(p.opt.OSBase, p.opt.OSSize),
			})
		}
		return rules
	}
	return []core.PMPRule{{
		Cfg:  pmp.ANapot << 3,
		Addr: pmp.NAPOTAddr(p.opt.FirmwareBase, p.opt.FirmwareSize),
	}}
}

// OnWorldSwitch implements core.Policy: GPR scrubbing per direction and
// the one-shot boot lockdown.
func (p *Policy) OnWorldSwitch(c *core.HartCtx, to core.World) {
	h := c.Hart
	if to == core.WorldOS {
		if !p.lockedDown {
			p.lockdown(c)
		}
		p.restoreGPRs(c)
		return
	}
	// Entering the firmware: snapshot all GPRs, then expose only the
	// registers the SBI call legitimately consumes.
	p.saved[h.ID] = h.Regs
	cause := c.V.Mcause
	if !rv.CauseIsInterrupt(cause) &&
		(rv.CauseCode(cause) == rv.ExcEcallFromS || rv.CauseCode(cause) == rv.ExcEcallFromU) {
		p.scrubForSBI(c)
	} else {
		p.scrubAll(c)
	}
}

// scrubForSBI zeroes every register outside the per-call allow-list
// derived from the SBI specification (rv.SBICallArgRegs).
func (p *Policy) scrubForSBI(c *core.HartCtx) {
	h := c.Hart
	ext, fn := h.Regs[17], h.Regs[16] // a7, a6
	nargs := rv.SBICallArgRegs(ext, fn)
	for i := 1; i < 32; i++ {
		switch {
		case i == 17 || i == 16: // a7, a6: extension and function
		case i >= 10 && i < 10+nargs: // allowed a0..a(n-1)
		default:
			h.Regs[i] = 0
		}
	}
}

func (p *Policy) scrubAll(c *core.HartCtx) {
	h := c.Hart
	for i := 1; i < 32; i++ {
		h.Regs[i] = 0
	}
}

// restoreGPRs reinstates the OS's registers on the way back, keeping a0/a1
// (the SBI return values) from the firmware.
func (p *Policy) restoreGPRs(c *core.HartCtx) {
	h := c.Hart
	snap, ok := p.saved[h.ID]
	if !ok {
		return
	}
	a0, a1 := h.Regs[10], h.Regs[11]
	h.Regs = snap
	cause := c.V.Mcause
	if !rv.CauseIsInterrupt(cause) &&
		(rv.CauseCode(cause) == rv.ExcEcallFromS || rv.CauseCode(cause) == rv.ExcEcallFromU) {
		h.Regs[10], h.Regs[11] = a0, a1
	}
	delete(p.saved, h.ID)
}

// OnOSTrap implements core.Policy: the sandbox emulates misaligned loads
// and stores itself (paper §5.2) — the confined firmware can no longer
// reach through OS memory with MPRV to do it.
func (p *Policy) OnOSTrap(c *core.HartCtx, cause, tval uint64) core.Action {
	switch cause {
	case rv.ExcLoadAddrMisaligned, rv.ExcStoreAddrMisaligned:
		if vpc, ok := c.Mon.EmulateMisaligned(c, cause, tval, c.Hart.CSR.Mepc); ok {
			c.OverrideResume(vpc)
			return core.ActHandled
		}
	}
	return core.ActDefault
}

// lockdown fires on the first firmware-to-OS transition: from here on the
// firmware loses access to OS memory, and the initial S-mode image is
// hashed for later attestation (paper §5.2).
func (p *Policy) lockdown(c *core.HartCtx) {
	p.lockedDown = true
	img, err := c.Hart.Bus.ReadBytes(p.opt.OSBase, int(p.opt.HashWindow))
	if err == nil {
		fh := fnv.New64a()
		fh.Write(img)
		p.BootHash = fh.Sum64()
	}
	// Reinstall every hart's PMP so the lockdown applies machine-wide,
	// and push the DMA rule into the (virtualized) IOPMP.
	for _, ctx := range c.Mon.Ctx {
		c.Mon.ReinstallPMP(ctx)
	}
	c.Mon.ReinstallIOPMP(c)
}

// OnFirmwareTrap implements core.Policy: a PMP fault from the firmware on
// a sandboxed region is a violation.
func (p *Policy) OnFirmwareTrap(c *core.HartCtx, cause, tval uint64) core.Action {
	switch cause {
	case rv.ExcLoadAccessFault, rv.ExcStoreAccessFault, rv.ExcInstrAccessFault:
		if p.inSandboxedRange(c, tval) {
			p.Violations++
			p.opt.Log("sandbox: firmware %s at %#x blocked",
				rv.CauseString(cause), tval)
			if p.opt.Report {
				// Production mode: skip the faulting instruction; loads see
				// arbitrary (zero) values.
				c.OverrideResume(c.Hart.CSR.Mepc + 4)
				return core.ActHandled
			}
			return core.ActBlock
		}
	}
	return core.ActDefault
}

// OnFirmwareMisbehavior implements core.Policy: a contained firmware fault
// (double fault, lockup, watchdog expiry, monitor panic) counts as a
// violation — the sandbox's job is to keep a misbehaving firmware from
// taking the OS down with it, so the default containment (restart or
// degraded mode) is exactly the right response.
func (p *Policy) OnFirmwareMisbehavior(c *core.HartCtx, f *core.MonitorFault) core.Action {
	p.Violations++
	p.opt.Log("sandbox: firmware misbehavior: %v", f)
	return core.ActDefault
}

func (p *Policy) inSandboxedRange(c *core.HartCtx, addr uint64) bool {
	if p.lockedDown && addr >= p.opt.OSBase && addr < p.opt.OSBase+p.opt.OSSize {
		return true
	}
	if c.Mon.Opts.VirtualizeIOPMP {
		return false // the DMA window is mediated, not revoked
	}
	return addr >= hart.DMABase && addr < hart.DMABase+hart.DMARegionSize
}

// PolicyIOPMP implements core.DMAPolicy: once locked down, no DMA master
// may touch OS memory regardless of how the firmware programs its virtual
// IOPMP entries.
func (p *Policy) PolicyIOPMP(c *core.HartCtx) core.PMPRule {
	if !p.lockedDown {
		return core.PMPRule{}
	}
	return core.PMPRule{
		Cfg:  pmp.ANapot << 3,
		Addr: pmp.NAPOTAddr(p.opt.OSBase, p.opt.OSSize),
	}
}

// String summarizes the sandbox state for logs.
func (p *Policy) String() string {
	return fmt.Sprintf("sandbox{locked=%v hash=%#x violations=%d}",
		p.lockedDown, p.BootHash, p.Violations)
}
