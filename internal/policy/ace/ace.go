// Package ace ports the ACE security monitor as a Miralis policy module
// (paper §5.4): confidential VMs whose memory is inaccessible to the host
// hypervisor/OS — and, unlike the original ACE, also to the vendor
// firmware, which the policy removes from the TCB.
//
// The policy follows the paper's co-location approach: while the host or a
// CVM runs, the ACE policy handles traps directly (its hooks fire before
// the monitor's default handling) and yields to the monitor only for
// firmware interactions. The lifecycle mirrors the ACE-RISCV monitor FSM:
//
//	free ──promote──▶ ready ──run──▶ running
//	 ▲                  │ ▲             │
//	 └─────destroy──────┘ └─exit/trap/──┘
//	                         interrupt
//
// Promote measures the donated pages (an attestation hash the host and
// guest can both query), records every 4 KiB page in a global donation
// ledger (double donation is structurally impossible), and scrubbing plus
// ledger reclamation happen on destroy. Every hart steal (run) and return
// (exit/preempt/fault) performs ACE's heavy context switch: the full GPR
// file and supervisor CSRs are zeroed before the other world's context is
// loaded, so no register state ever leaks across the confidential
// boundary. The CVM executes with its own complete supervisor context; on
// platforms with the hypervisor extension the host's H-state is shadowed
// away from the CVM on every switch (the paper's "saving and restoring
// the new CSRs on world switches").
package ace

import (
	"fmt"
	"hash/fnv"

	"govfm/internal/core"
	"govfm/internal/hart"
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// COVH (host-side) function IDs, in the spirit of the CoVE spec.
const (
	FnPromoteToCVM = 0x10 // a0=base, a1=size, a2=entry -> cvm id
	FnDestroyCVM   = 0x11 // a0=id: scrub, reclaim pages, free the slot
	FnRunCVM       = 0x12 // a0=id: steal this hart for the CVM
	FnReclaimPage  = 0x13 // a0=id: revoke the shared-page window
	FnAttestCVM    = 0x14 // a0=id -> measurement of the donated pages
)

// COVG (guest-side) function IDs.
const (
	FnGuestExit      = 0x20 // a0=value: voluntary exit to host
	FnGuestSharePage = 0x21 // a0=guest page addr: make one page host-visible
	FnGuestAttest    = 0x22 // -> own measurement (local attestation)
)

// Host return codes.
const (
	OK              = 0
	ErrInvalidParam = ^uint64(0)
	// ErrCVMBusy: the operation needs the CVM stopped, but it is running
	// on a hart (destroy-while-running, reclaim-while-running).
	ErrCVMBusy = ^uint64(1)
	// Interrupted: the CVM was preempted; run again to resume.
	Interrupted = 0x0FF1
)

// MaxCVMs bounds the CVM table (one policy slot is reserved for the
// deny-all rule while a CVM executes).
const MaxCVMs = 4

// pageSize is the donation granule.
const pageSize = 4096

type cvmState int

const (
	stFree cvmState = iota
	stReady
	stRunning
)

func (s cvmState) String() string {
	switch s {
	case stFree:
		return "free"
	case stReady:
		return "ready"
	case stRunning:
		return "running"
	}
	return fmt.Sprintf("cvmState(%d)", int(s))
}

// sContext is a complete supervisor-mode register context.
type sContext struct {
	regs                                 [32]uint64
	pc                                   uint64
	stvec, sscratch, sepc, scause, stval uint64
	satp, scounteren, senvcfg            uint64
	sstatusBits                          uint64
	sie                                  uint64
}

// cvm is one confidential VM.
type cvm struct {
	state      cvmState
	base, size uint64
	guest      sContext
	started    bool
	// measure is the attestation measurement: an FNV-64a hash of the
	// donated pages' contents taken at promote time, before the host
	// loses access. Nonzero for every live CVM.
	measure uint64
	// sharedPage, when nonzero, is a single guest page the host may access
	// (the CoVE shared-memory mechanism, minimally).
	sharedPage uint64
}

// hostSlot remembers the host context while a CVM occupies a hart.
type hostSlot struct {
	host    sContext
	medeleg uint64
	mie     uint64
	active  int
	// hShadow holds the host's hypervisor CSRs, hidden from the CVM.
	hShadow [21]uint64
}

// Policy is the ACE monitor as a policy module.
type Policy struct {
	core.BasePolicy
	cvms [MaxCVMs]cvm
	host map[int]*hostSlot
	// donated is the global page-donation ledger: 4 KiB page base -> owning
	// CVM id. Promote fails if any page of the candidate region is already
	// donated, making double donation structurally impossible; destroy is
	// the only operation that returns pages to the host.
	donated map[uint64]int

	// HeavySwitches counts full GPR+CSR scrub context switches (one per
	// hart steal and one per return), and Violations counts rejected
	// forged or ill-ordered lifecycle calls. Both are cheap evidence for
	// the chaos/fuzz harnesses that the FSM actually exercised its guards.
	HeavySwitches uint64
	Violations    uint64
}

// New returns an empty ACE policy.
func New() *Policy {
	return &Policy{host: make(map[int]*hostSlot), donated: make(map[uint64]int)}
}

// Name implements core.Policy.
func (p *Policy) Name() string { return "ace" }

// ForkPolicy implements core.PolicyForker: confidential VMs, saved host
// slots, and the donation ledger are deep-copied, so a forked monitor's
// CVM world is independent of the parent's.
func (p *Policy) ForkPolicy() core.Policy {
	c := *p
	c.host = make(map[int]*hostSlot, len(p.host))
	for k, v := range p.host {
		sv := *v
		c.host[k] = &sv
	}
	c.donated = make(map[uint64]int, len(p.donated))
	for k, v := range p.donated {
		c.donated[k] = v
	}
	return &c
}

func (p *Policy) running(hartID int) (*hostSlot, bool) {
	s, ok := p.host[hartID]
	return s, ok
}

// PolicyPMP implements core.Policy.
func (p *Policy) PolicyPMP(c *core.HartCtx, w core.World) []core.PMPRule {
	if hs, ok := p.running(c.Hart.ID); ok {
		v := &p.cvms[hs.active]
		return []core.PMPRule{
			{Cfg: pmp.CfgR | pmp.CfgW | pmp.CfgX | pmp.ANapot<<3,
				Addr: pmp.NAPOTAddr(v.base, v.size)},
			{Cfg: pmp.ANapot << 3, Addr: rv.Mask(54)},
		}
	}
	var rules []core.PMPRule
	for i := range p.cvms {
		v := &p.cvms[i]
		if v.state == stFree {
			continue
		}
		if v.sharedPage != 0 {
			// The shared page is carved out with a higher-priority allow
			// rule; the rest of the CVM stays dark to host and firmware.
			rules = append(rules, core.PMPRule{
				Cfg:  pmp.CfgR | pmp.CfgW | pmp.ANapot<<3,
				Addr: pmp.NAPOTAddr(v.sharedPage, pageSize),
			})
		}
		rules = append(rules, core.PMPRule{
			Cfg:  pmp.ANapot << 3,
			Addr: pmp.NAPOTAddr(v.base, v.size),
		})
	}
	if len(rules) > core.PolicySlots {
		rules = rules[:core.PolicySlots]
	}
	return rules
}

// OnOSEcall implements core.Policy: COVH from the host, COVG from a CVM.
// Calls arriving from the wrong side of the boundary — COVH from inside a
// CVM, COVG with no CVM on the hart — are forged lifecycle transitions
// and are denied without ever reaching the firmware.
func (p *Policy) OnOSEcall(c *core.HartCtx) core.Action {
	h := c.Hart
	ext := h.Regs[17]
	if _, ok := p.running(h.ID); ok {
		switch ext {
		case rv.SBIExtCoveGuest:
			return p.guestCall(c)
		case rv.SBIExtTimer, rv.SBILegacySetTimer:
			// CVMs may use the timer; the default (fast-path) handling
			// applies.
			return core.ActDefault
		default:
			// Everything else — COVH included — is denied inside a CVM.
			p.Violations++
			h.Regs[10] = sbiErrDenied
			return core.ActHandled
		}
	}
	switch ext {
	case rv.SBIExtCoveGuest:
		// Forged guest call: no CVM occupies this hart, so whoever issued
		// this is the host impersonating a confidential guest.
		p.Violations++
		h.Regs[10] = sbiErrDenied
		return core.ActHandled
	case rv.SBIExtCoveHost:
	default:
		return core.ActDefault
	}
	switch h.Regs[16] {
	case FnPromoteToCVM:
		h.Regs[10] = p.promote(c, h.Regs[10], h.Regs[11], h.Regs[12])
	case FnDestroyCVM:
		h.Regs[10] = p.destroy(c, h.Regs[10])
	case FnRunCVM:
		return p.run(c, h.Regs[10])
	case FnReclaimPage:
		h.Regs[10] = p.reclaim(c, h.Regs[10])
	case FnAttestCVM:
		h.Regs[10] = p.attest(h.Regs[10])
	default:
		p.Violations++
		h.Regs[10] = ErrInvalidParam
	}
	return core.ActHandled
}

// promote converts a host memory range into a confidential VM: validate
// the geometry, refuse any page that is already donated, measure the
// contents, and register every page in the ledger. The range is scrubbed
// from the host's perspective by revoking access; its contents (the guest
// image the host loaded) remain for the guest and are what the
// measurement covers.
func (p *Policy) promote(c *core.HartCtx, base, size, entry uint64) uint64 {
	if size < pageSize || size&(size-1) != 0 || base&(size-1) != 0 {
		return ErrInvalidParam
	}
	if entry < base || entry >= base+size {
		return ErrInvalidParam
	}
	// The region must be ordinary host DRAM: inside the DRAM window and
	// clear of the monitor's and firmware's own images.
	if base < hart.DramBase || base+size > hart.DramBase+core.DramSize {
		return ErrInvalidParam
	}
	if base < core.FirmwareBase+core.FirmwareSize && base+size > core.MiralisBase {
		return ErrInvalidParam
	}
	// Double-donation check: every page must be free in the ledger.
	for page := base; page < base+size; page += pageSize {
		if _, taken := p.donated[page]; taken {
			p.Violations++
			return ErrInvalidParam
		}
	}
	for i := range p.cvms {
		v := &p.cvms[i]
		if v.state != stFree {
			continue
		}
		m := p.measurePages(c, base, size)
		*v = cvm{state: stReady, base: base, size: size, measure: m}
		v.guest.pc = entry
		v.guest.regs[10] = uint64(i) // a0: cvm id
		v.guest.regs[2] = base + size
		for page := base; page < base+size; page += pageSize {
			p.donated[page] = i
		}
		for _, ctx := range c.Mon.Ctx {
			c.Mon.ReinstallPMP(ctx)
		}
		return uint64(i)
	}
	return ErrInvalidParam
}

// measurePages hashes the donated pages' contents (FNV-64a over base and
// bytes). The hash is taken while the host still owns the range, so host
// and guest can later agree on what was launched.
func (p *Policy) measurePages(c *core.HartCtx, base, size uint64) uint64 {
	fh := fnv.New64a()
	var hdr [16]byte
	for i := 0; i < 8; i++ {
		hdr[i] = byte(base >> (8 * i))
		hdr[8+i] = byte(size >> (8 * i))
	}
	fh.Write(hdr[:])
	if img, err := c.Hart.Bus.ReadBytes(base, int(size)); err == nil {
		fh.Write(img)
	}
	m := fh.Sum64()
	if m == 0 {
		m = 1 // a live CVM's measurement is always nonzero
	}
	return m
}

// destroy scrubs a stopped CVM's memory, returns its pages to the host
// through the ledger, and frees the slot. A running CVM cannot be
// destroyed — the host must wait for (or force, via interrupt) a return.
func (p *Policy) destroy(c *core.HartCtx, id uint64) uint64 {
	if id >= MaxCVMs || p.cvms[id].state == stFree {
		return ErrInvalidParam
	}
	v := &p.cvms[id]
	if v.state == stRunning {
		p.Violations++
		return ErrCVMBusy
	}
	for off := uint64(0); off < v.size; off += 8 {
		c.Hart.Bus.Store(v.base+off, 8, 0)
	}
	for page := v.base; page < v.base+v.size; page += pageSize {
		delete(p.donated, page)
	}
	*v = cvm{}
	for _, ctx := range c.Mon.Ctx {
		c.Mon.ReinstallPMP(ctx)
	}
	return OK
}

// reclaim revokes the shared-page window of a stopped CVM, returning the
// page to confidential-only visibility. Reclaiming while the CVM runs is
// refused: the guest could be mid-write to the page under the assumption
// the host can see it.
func (p *Policy) reclaim(c *core.HartCtx, id uint64) uint64 {
	if id >= MaxCVMs || p.cvms[id].state == stFree {
		return ErrInvalidParam
	}
	v := &p.cvms[id]
	if v.state == stRunning {
		p.Violations++
		return ErrCVMBusy
	}
	if v.sharedPage == 0 {
		return ErrInvalidParam
	}
	v.sharedPage = 0
	for _, ctx := range c.Mon.Ctx {
		c.Mon.ReinstallPMP(ctx)
	}
	return OK
}

// attest returns the launch measurement of a live CVM.
func (p *Policy) attest(id uint64) uint64 {
	if id >= MaxCVMs || p.cvms[id].state == stFree {
		return ErrInvalidParam
	}
	return p.cvms[id].measure
}

// saveS/loadS move a full supervisor context between the hart and a slot.
func saveS(h *hart.Hart, s *sContext, pc uint64) {
	s.regs = h.Regs
	s.pc = pc
	c := &h.CSR
	s.stvec, s.sscratch, s.sepc = c.Stvec, c.Sscratch, c.Sepc
	s.scause, s.stval, s.satp = c.Scause, c.Stval, c.Satp
	s.scounteren, s.senvcfg = c.Scounteren, c.Senvcfg
	s.sstatusBits = c.Sstatus()
	s.sie = c.Sie()
}

func loadS(h *hart.Hart, s *sContext) {
	h.Regs = s.regs
	c := &h.CSR
	c.Stvec, c.Sscratch, c.Sepc = s.stvec, s.sscratch, s.sepc
	c.Scause, c.Stval = s.scause, s.stval
	c.WriteSatp(s.satp)
	c.Scounteren, c.Senvcfg = s.scounteren, s.senvcfg
	c.WriteSstatus(s.sstatusBits)
	c.WriteSie(s.sie)
}

// scrubHart is ACE's heavy context switch: zero every GPR and the whole
// supervisor CSR surface between saving one world and loading the other,
// so no residual register value can cross the confidential boundary even
// if a load path is ever incomplete.
func (p *Policy) scrubHart(h *hart.Hart) {
	for i := 1; i < 32; i++ {
		h.Regs[i] = 0
	}
	c := &h.CSR
	c.Stvec, c.Sscratch, c.Sepc, c.Scause, c.Stval = 0, 0, 0, 0, 0
	c.WriteSatp(0)
	c.Scounteren, c.Senvcfg = 0, 0
	c.WriteSstatus(0)
	c.WriteSie(0)
	p.HeavySwitches++
}

// run enters (or re-enters) a CVM on this hart — the ACE "hart steal".
func (p *Policy) run(c *core.HartCtx, id uint64) core.Action {
	h := c.Hart
	if _, busy := p.running(h.ID); busy || id >= MaxCVMs ||
		p.cvms[id].state != stReady {
		p.Violations++
		h.Regs[10] = ErrInvalidParam
		return core.ActHandled
	}
	v := &p.cvms[id]
	hs := &hostSlot{medeleg: h.CSR.Medeleg, mie: h.CSR.Mie, active: int(id)}
	saveS(h, &hs.host, h.CSR.Mepc+4)
	if h.Cfg.HasH {
		p.stashHState(h, hs)
	}
	p.host[h.ID] = hs
	p.scrubHart(h)
	// All CVM traps reach the security monitor.
	h.CSR.Medeleg = 0
	h.CSR.Mie = hs.mie & rv.MIntMask
	loadS(h, &v.guest)
	v.state = stRunning
	v.started = true
	c.VirtMode = rv.ModeS // the guest kernel runs at (virtual) S
	c.Mon.ReinstallPMP(c)
	c.OverrideResume(v.guest.pc)
	return core.ActHandled
}

// leave returns the hart to the host with retval in a0 — the ACE "hart
// return". The caller has already saved the guest context.
func (p *Policy) leave(c *core.HartCtx, retval uint64) {
	h := c.Hart
	hs := p.host[h.ID]
	delete(p.host, h.ID)
	p.scrubHart(h)
	loadS(h, &hs.host)
	h.Regs[10] = retval
	h.CSR.Medeleg = hs.medeleg
	h.CSR.Mie = hs.mie
	if h.Cfg.HasH {
		p.unstashHState(h, hs)
	}
	c.VirtMode = rv.ModeS
	c.Mon.ReinstallPMP(c)
	c.OverrideResume(hs.host.pc)
}

// guestCall dispatches COVG calls from a running CVM.
func (p *Policy) guestCall(c *core.HartCtx) core.Action {
	h := c.Hart
	hs := p.host[h.ID]
	v := &p.cvms[hs.active]
	switch h.Regs[16] {
	case FnGuestExit:
		value := h.Regs[10]
		saveS(h, &v.guest, h.CSR.Mepc+4)
		v.state = stReady
		p.leave(c, value)
	case FnGuestSharePage:
		page := h.Regs[10]
		if page%pageSize != 0 || page < v.base || page+pageSize > v.base+v.size {
			p.Violations++
			h.Regs[10] = ErrInvalidParam
			return core.ActHandled
		}
		v.sharedPage = page
		h.Regs[10] = OK
		for _, ctx := range c.Mon.Ctx {
			c.Mon.ReinstallPMP(ctx)
		}
	case FnGuestAttest:
		h.Regs[10] = v.measure
	default:
		p.Violations++
		h.Regs[10] = ErrInvalidParam
	}
	return core.ActHandled
}

// OnInterrupt implements core.Policy: preempt the CVM on machine
// interrupts, return Interrupted to the host.
func (p *Policy) OnInterrupt(c *core.HartCtx, code uint64) core.Action {
	hs, ok := p.running(c.Hart.ID)
	if !ok {
		return core.ActDefault
	}
	v := &p.cvms[hs.active]
	saveS(c.Hart, &v.guest, c.Hart.CSR.Mepc)
	v.state = stReady
	p.leave(c, Interrupted)
	return core.ActDefault
}

// OnOSTrap implements core.Policy: a CVM fault terminates the run and
// reports the cause to the host.
func (p *Policy) OnOSTrap(c *core.HartCtx, cause, tval uint64) core.Action {
	hs, ok := p.running(c.Hart.ID)
	if !ok {
		return core.ActDefault
	}
	v := &p.cvms[hs.active]
	saveS(c.Hart, &v.guest, c.Hart.CSR.Mepc)
	v.state = stReady
	p.leave(c, 0xF000+cause)
	return core.ActHandled
}

// stashHState hides the host's hypervisor CSRs from the CVM.
func (p *Policy) stashHState(h *hart.Hart, hs *hostSlot) {
	c := &h.CSR
	src := []*uint64{
		&c.Hstatus, &c.Hedeleg, &c.Hideleg, &c.Hie, &c.Hcounteren, &c.Hgeie,
		&c.Htval, &c.Hip, &c.Hvip, &c.Htinst, &c.Hgatp, &c.Henvcfg,
		&c.Vsstatus, &c.Vsie, &c.Vstvec, &c.Vsscratch, &c.Vsepc,
		&c.Vscause, &c.Vstval, &c.Vsip, &c.Vsatp,
	}
	for i, reg := range src {
		hs.hShadow[i] = *reg
		*reg = 0
	}
}

func (p *Policy) unstashHState(h *hart.Hart, hs *hostSlot) {
	c := &h.CSR
	dst := []*uint64{
		&c.Hstatus, &c.Hedeleg, &c.Hideleg, &c.Hie, &c.Hcounteren, &c.Hgeie,
		&c.Htval, &c.Hip, &c.Hvip, &c.Htinst, &c.Hgatp, &c.Henvcfg,
		&c.Vsstatus, &c.Vsie, &c.Vstvec, &c.Vsscratch, &c.Vsepc,
		&c.Vscause, &c.Vstval, &c.Vsip, &c.Vsatp,
	}
	for i, reg := range dst {
		*reg = hs.hShadow[i]
	}
}

// CVMState exposes lifecycle state for tests and tooling.
func (p *Policy) CVMState(id int) (state int, shared uint64, err error) {
	if id < 0 || id >= MaxCVMs {
		return 0, 0, fmt.Errorf("ace: bad cvm id %d", id)
	}
	return int(p.cvms[id].state), p.cvms[id].sharedPage, nil
}

// Measurement exposes a CVM's launch measurement for tests and tooling
// (0 for a free slot).
func (p *Policy) Measurement(id int) uint64 {
	if id < 0 || id >= MaxCVMs {
		return 0
	}
	return p.cvms[id].measure
}

// CheckInvariants re-derives the FSM's structural invariants from the
// live state. The TEE chaos campaign and fuzzdiff -tee call it after
// every injected fault and lifecycle operation: any violation means a
// forged or ill-ordered transition corrupted confidential-domain state.
func (p *Policy) CheckInvariants() error {
	var counts [MaxCVMs]int
	for page, id := range p.donated {
		if id < 0 || id >= MaxCVMs {
			return fmt.Errorf("ace: ledger page %#x -> bad cvm id %d", page, id)
		}
		v := &p.cvms[id]
		if v.state == stFree {
			return fmt.Errorf("ace: ledger page %#x -> free cvm %d", page, id)
		}
		if page%pageSize != 0 || page < v.base || page >= v.base+v.size {
			return fmt.Errorf("ace: ledger page %#x outside cvm %d [%#x,%#x)",
				page, id, v.base, v.base+v.size)
		}
		counts[id]++
	}
	runningRef := make(map[int]int) // cvm id -> hart holding it
	for hartID, hs := range p.host {
		if hs == nil || hs.active < 0 || hs.active >= MaxCVMs {
			return fmt.Errorf("ace: hart %d host slot references bad cvm", hartID)
		}
		if p.cvms[hs.active].state != stRunning {
			return fmt.Errorf("ace: hart %d runs cvm %d in state %v",
				hartID, hs.active, p.cvms[hs.active].state)
		}
		if prev, dup := runningRef[hs.active]; dup {
			return fmt.Errorf("ace: cvm %d running on harts %d and %d",
				hs.active, prev, hartID)
		}
		runningRef[hs.active] = hartID
	}
	for i := range p.cvms {
		v := &p.cvms[i]
		if v.state == stFree {
			if counts[i] != 0 {
				return fmt.Errorf("ace: free cvm %d holds %d ledger pages", i, counts[i])
			}
			if v.sharedPage != 0 || v.measure != 0 {
				return fmt.Errorf("ace: free cvm %d has residual state", i)
			}
			continue
		}
		if want := int(v.size / pageSize); counts[i] != want {
			return fmt.Errorf("ace: cvm %d owns %d ledger pages, want %d",
				i, counts[i], want)
		}
		if v.measure == 0 {
			return fmt.Errorf("ace: live cvm %d has zero measurement", i)
		}
		if v.sharedPage != 0 &&
			(v.sharedPage%pageSize != 0 || v.sharedPage < v.base ||
				v.sharedPage+pageSize > v.base+v.size) {
			return fmt.Errorf("ace: cvm %d shared page %#x outside its region",
				i, v.sharedPage)
		}
		if v.state == stRunning {
			if _, ok := runningRef[i]; !ok {
				return fmt.Errorf("ace: cvm %d marked running but no hart holds it", i)
			}
		}
	}
	return nil
}

// sbiErrDenied widens the SBI denial code through a function call, since
// converting a negative constant to uint64 is a compile-time error.
var sbiErrDenied = widen(rv.SBIErrDenied)

func widen(v int64) uint64 { return uint64(v) }
