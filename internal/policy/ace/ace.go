// Package ace ports the ACE security monitor as a Miralis policy module
// (paper §5.4): confidential VMs whose memory is inaccessible to the host
// hypervisor/OS — and, unlike the original ACE, also to the vendor
// firmware, which the policy removes from the TCB.
//
// The policy follows the paper's co-location approach: while the host or a
// CVM runs, the ACE policy handles traps directly (its hooks fire before
// the monitor's default handling) and yields to the monitor only for
// firmware interactions. The CVM executes with its own complete supervisor
// context; on platforms with the hypervisor extension the host's H-state
// is shadowed away from the CVM on every switch (the paper's "saving and
// restoring the new CSRs on world switches").
package ace

import (
	"fmt"

	"govfm/internal/core"
	"govfm/internal/hart"
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// COVH (host-side) function IDs, in the spirit of the CoVE spec.
const (
	FnPromoteToCVM = 0x10 // a0=base, a1=size, a2=entry -> cvm id
	FnDestroyCVM   = 0x11
	FnRunCVM       = 0x12 // a0=id
)

// COVG (guest-side) function IDs.
const (
	FnGuestExit      = 0x20 // a0=value: voluntary exit to host
	FnGuestSharePage = 0x21 // a0=guest page addr: make one page host-visible
)

// Host return codes.
const (
	OK              = 0
	ErrInvalidParam = ^uint64(0)
	// Interrupted: the CVM was preempted; run again to resume.
	Interrupted = 0x0FF1
)

// MaxCVMs bounds the CVM table (one policy slot is reserved for the
// deny-all rule while a CVM executes).
const MaxCVMs = 4

type cvmState int

const (
	stFree cvmState = iota
	stReady
	stRunning
)

// sContext is a complete supervisor-mode register context.
type sContext struct {
	regs                                 [32]uint64
	pc                                   uint64
	stvec, sscratch, sepc, scause, stval uint64
	satp, scounteren, senvcfg            uint64
	sstatusBits                          uint64
	sie                                  uint64
}

// cvm is one confidential VM.
type cvm struct {
	state      cvmState
	base, size uint64
	guest      sContext
	started    bool
	// sharedPage, when nonzero, is a single guest page the host may access
	// (the CoVE shared-memory mechanism, minimally).
	sharedPage uint64
}

// hostSlot remembers the host context while a CVM occupies a hart.
type hostSlot struct {
	host    sContext
	medeleg uint64
	mie     uint64
	active  int
	// hShadow holds the host's hypervisor CSRs, hidden from the CVM.
	hShadow [21]uint64
}

// Policy is the ACE monitor as a policy module.
type Policy struct {
	core.BasePolicy
	cvms [MaxCVMs]cvm
	host map[int]*hostSlot
}

// New returns an empty ACE policy.
func New() *Policy { return &Policy{host: make(map[int]*hostSlot)} }

// Name implements core.Policy.
func (p *Policy) Name() string { return "ace" }

// ForkPolicy implements core.PolicyForker: confidential VMs and saved host
// slots are deep-copied, so a forked monitor's CVM world is independent of
// the parent's.
func (p *Policy) ForkPolicy() core.Policy {
	c := *p
	c.host = make(map[int]*hostSlot, len(p.host))
	for k, v := range p.host {
		sv := *v
		c.host[k] = &sv
	}
	return &c
}

func (p *Policy) running(hartID int) (*hostSlot, bool) {
	s, ok := p.host[hartID]
	return s, ok
}

// PolicyPMP implements core.Policy.
func (p *Policy) PolicyPMP(c *core.HartCtx, w core.World) []core.PMPRule {
	if hs, ok := p.running(c.Hart.ID); ok {
		v := &p.cvms[hs.active]
		return []core.PMPRule{
			{Cfg: pmp.CfgR | pmp.CfgW | pmp.CfgX | pmp.ANapot<<3,
				Addr: pmp.NAPOTAddr(v.base, v.size)},
			{Cfg: pmp.ANapot << 3, Addr: rv.Mask(54)},
		}
	}
	var rules []core.PMPRule
	for i := range p.cvms {
		v := &p.cvms[i]
		if v.state == stFree {
			continue
		}
		if v.sharedPage != 0 {
			// The shared page is carved out with a higher-priority allow
			// rule; the rest of the CVM stays dark to host and firmware.
			rules = append(rules, core.PMPRule{
				Cfg:  pmp.CfgR | pmp.CfgW | pmp.ANapot<<3,
				Addr: pmp.NAPOTAddr(v.sharedPage, 4096),
			})
		}
		rules = append(rules, core.PMPRule{
			Cfg:  pmp.ANapot << 3,
			Addr: pmp.NAPOTAddr(v.base, v.size),
		})
	}
	if len(rules) > core.PolicySlots {
		rules = rules[:core.PolicySlots]
	}
	return rules
}

// OnOSEcall implements core.Policy: COVH from the host, COVG from a CVM.
func (p *Policy) OnOSEcall(c *core.HartCtx) core.Action {
	h := c.Hart
	ext := h.Regs[17]
	if _, ok := p.running(h.ID); ok {
		switch ext {
		case rv.SBIExtCoveGuest:
			return p.guestCall(c)
		case rv.SBIExtTimer, rv.SBILegacySetTimer:
			// CVMs may use the timer; the default (fast-path) handling
			// applies.
			return core.ActDefault
		default:
			// Everything else is denied inside a CVM.
			h.Regs[10] = sbiErrDenied
			return core.ActHandled
		}
	}
	if ext != rv.SBIExtCoveHost {
		return core.ActDefault
	}
	switch h.Regs[16] {
	case FnPromoteToCVM:
		h.Regs[10] = p.promote(c, h.Regs[10], h.Regs[11], h.Regs[12])
	case FnDestroyCVM:
		h.Regs[10] = p.destroy(c, h.Regs[10])
	case FnRunCVM:
		return p.run(c, h.Regs[10])
	default:
		h.Regs[10] = ErrInvalidParam
	}
	return core.ActHandled
}

// promote converts a host memory range into a confidential VM. The range
// is scrubbed from host page-cache perspective by simply revoking access;
// its contents (the guest image the host loaded) remain for the guest.
func (p *Policy) promote(c *core.HartCtx, base, size, entry uint64) uint64 {
	if size < 4096 || size&(size-1) != 0 || base&(size-1) != 0 {
		return ErrInvalidParam
	}
	if entry < base || entry >= base+size {
		return ErrInvalidParam
	}
	for i := range p.cvms {
		v := &p.cvms[i]
		if v.state == stFree {
			*v = cvm{state: stReady, base: base, size: size}
			v.guest.pc = entry
			v.guest.regs[10] = uint64(i) // a0: cvm id
			v.guest.regs[2] = base + size
			for _, ctx := range c.Mon.Ctx {
				c.Mon.ReinstallPMP(ctx)
			}
			return uint64(i)
		}
	}
	return ErrInvalidParam
}

func (p *Policy) destroy(c *core.HartCtx, id uint64) uint64 {
	if id >= MaxCVMs || p.cvms[id].state != stReady {
		return ErrInvalidParam
	}
	v := &p.cvms[id]
	for off := uint64(0); off < v.size; off += 8 {
		c.Hart.Bus.Store(v.base+off, 8, 0)
	}
	*v = cvm{}
	for _, ctx := range c.Mon.Ctx {
		c.Mon.ReinstallPMP(ctx)
	}
	return OK
}

// saveS/loadS move a full supervisor context between the hart and a slot.
func saveS(h *hart.Hart, s *sContext, pc uint64) {
	s.regs = h.Regs
	s.pc = pc
	c := &h.CSR
	s.stvec, s.sscratch, s.sepc = c.Stvec, c.Sscratch, c.Sepc
	s.scause, s.stval, s.satp = c.Scause, c.Stval, c.Satp
	s.scounteren, s.senvcfg = c.Scounteren, c.Senvcfg
	s.sstatusBits = c.Sstatus()
	s.sie = c.Sie()
}

func loadS(h *hart.Hart, s *sContext) {
	h.Regs = s.regs
	c := &h.CSR
	c.Stvec, c.Sscratch, c.Sepc = s.stvec, s.sscratch, s.sepc
	c.Scause, c.Stval = s.scause, s.stval
	c.WriteSatp(s.satp)
	c.Scounteren, c.Senvcfg = s.scounteren, s.senvcfg
	c.WriteSstatus(s.sstatusBits)
	c.WriteSie(s.sie)
}

// run enters (or re-enters) a CVM on this hart.
func (p *Policy) run(c *core.HartCtx, id uint64) core.Action {
	h := c.Hart
	if _, busy := p.running(h.ID); busy || id >= MaxCVMs ||
		p.cvms[id].state != stReady {
		h.Regs[10] = ErrInvalidParam
		return core.ActHandled
	}
	v := &p.cvms[id]
	hs := &hostSlot{medeleg: h.CSR.Medeleg, mie: h.CSR.Mie, active: int(id)}
	saveS(h, &hs.host, h.CSR.Mepc+4)
	if h.Cfg.HasH {
		p.stashHState(h, hs)
	}
	p.host[h.ID] = hs
	// All CVM traps reach the security monitor.
	h.CSR.Medeleg = 0
	h.CSR.Mie = h.CSR.Mie & rv.MIntMask
	loadS(h, &v.guest)
	v.state = stRunning
	v.started = true
	c.VirtMode = rv.ModeS // the guest kernel runs at (virtual) S
	c.Mon.ReinstallPMP(c)
	c.OverrideResume(v.guest.pc)
	return core.ActHandled
}

// leave returns to the host with retval in a0.
func (p *Policy) leave(c *core.HartCtx, retval uint64) {
	h := c.Hart
	hs := p.host[h.ID]
	delete(p.host, h.ID)
	loadS(h, &hs.host)
	h.Regs[10] = retval
	h.CSR.Medeleg = hs.medeleg
	h.CSR.Mie = hs.mie
	if h.Cfg.HasH {
		p.unstashHState(h, hs)
	}
	c.VirtMode = rv.ModeS
	c.Mon.ReinstallPMP(c)
	c.OverrideResume(hs.host.pc)
}

// guestCall dispatches COVG calls from a running CVM.
func (p *Policy) guestCall(c *core.HartCtx) core.Action {
	h := c.Hart
	hs := p.host[h.ID]
	v := &p.cvms[hs.active]
	switch h.Regs[16] {
	case FnGuestExit:
		value := h.Regs[10]
		saveS(h, &v.guest, h.CSR.Mepc+4)
		v.state = stReady
		p.leave(c, value)
	case FnGuestSharePage:
		page := h.Regs[10]
		if page%4096 != 0 || page < v.base || page+4096 > v.base+v.size {
			h.Regs[10] = ErrInvalidParam
			return core.ActHandled
		}
		v.sharedPage = page
		h.Regs[10] = OK
		for _, ctx := range c.Mon.Ctx {
			c.Mon.ReinstallPMP(ctx)
		}
	default:
		h.Regs[10] = ErrInvalidParam
	}
	return core.ActHandled
}

// OnInterrupt implements core.Policy: preempt the CVM on machine
// interrupts, return Interrupted to the host.
func (p *Policy) OnInterrupt(c *core.HartCtx, code uint64) core.Action {
	hs, ok := p.running(c.Hart.ID)
	if !ok {
		return core.ActDefault
	}
	v := &p.cvms[hs.active]
	saveS(c.Hart, &v.guest, c.Hart.CSR.Mepc)
	v.state = stReady
	p.leave(c, Interrupted)
	return core.ActDefault
}

// OnOSTrap implements core.Policy: a CVM fault terminates the run and
// reports the cause to the host.
func (p *Policy) OnOSTrap(c *core.HartCtx, cause, tval uint64) core.Action {
	hs, ok := p.running(c.Hart.ID)
	if !ok {
		return core.ActDefault
	}
	v := &p.cvms[hs.active]
	saveS(c.Hart, &v.guest, c.Hart.CSR.Mepc)
	v.state = stReady
	p.leave(c, 0xF000+cause)
	return core.ActHandled
}

// stashHState hides the host's hypervisor CSRs from the CVM.
func (p *Policy) stashHState(h *hart.Hart, hs *hostSlot) {
	c := &h.CSR
	src := []*uint64{
		&c.Hstatus, &c.Hedeleg, &c.Hideleg, &c.Hie, &c.Hcounteren, &c.Hgeie,
		&c.Htval, &c.Hip, &c.Hvip, &c.Htinst, &c.Hgatp, &c.Henvcfg,
		&c.Vsstatus, &c.Vsie, &c.Vstvec, &c.Vsscratch, &c.Vsepc,
		&c.Vscause, &c.Vstval, &c.Vsip, &c.Vsatp,
	}
	for i, reg := range src {
		hs.hShadow[i] = *reg
		*reg = 0
	}
}

func (p *Policy) unstashHState(h *hart.Hart, hs *hostSlot) {
	c := &h.CSR
	dst := []*uint64{
		&c.Hstatus, &c.Hedeleg, &c.Hideleg, &c.Hie, &c.Hcounteren, &c.Hgeie,
		&c.Htval, &c.Hip, &c.Hvip, &c.Htinst, &c.Hgatp, &c.Henvcfg,
		&c.Vsstatus, &c.Vsie, &c.Vstvec, &c.Vsscratch, &c.Vsepc,
		&c.Vscause, &c.Vstval, &c.Vsip, &c.Vsatp,
	}
	for i, reg := range dst {
		*reg = hs.hShadow[i]
	}
}

// CVMState exposes lifecycle state for tests and tooling.
func (p *Policy) CVMState(id int) (state int, shared uint64, err error) {
	if id < 0 || id >= MaxCVMs {
		return 0, 0, fmt.Errorf("ace: bad cvm id %d", id)
	}
	return int(p.cvms[id].state), p.cvms[id].sharedPage, nil
}

// sbiErrDenied widens the SBI denial code through a function call, since
// converting a negative constant to uint64 is a compile-time error.
var sbiErrDenied = widen(rv.SBIErrDenied)

func widen(v int64) uint64 { return uint64(v) }
