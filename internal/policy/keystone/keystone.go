// Package keystone re-implements the Keystone security monitor as a
// Miralis policy module (paper §5.3): enclaves — user-level TEEs protected
// from both the OS and the (now untrusted) firmware — are created, run,
// and destroyed through the same SBI extension ID the original Keystone
// monitor exposes, and isolated with policy PMP entries that take priority
// over the virtual PMPs.
//
// Deviation from the original, as in the paper: no attestation.
package keystone

import (
	"fmt"

	"govfm/internal/core"
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// SBI function IDs on the Keystone extension (a6), following the original
// monitor's host interface.
const (
	FnCreate  = 2001
	FnDestroy = 2002
	FnRun     = 2003
	FnResume  = 2005
	// Enclave-side calls (issued from within the enclave).
	FnExit = 3006
)

// Host-visible return codes in a0.
const (
	OK              = 0
	ErrInvalidParam = ^uint64(0)     // -1
	ErrNoFreeSlot   = ^uint64(0) - 1 // -2
	// Interrupted is returned from run/resume when the enclave was
	// preempted by an interrupt; the host may call FnResume.
	Interrupted = 100011
)

// MaxEnclaves bounds the enclave table.
const MaxEnclaves = 8

// enclaveState is the per-enclave lifecycle.
type enclaveState int

const (
	stFree enclaveState = iota
	stCreated
	stRunning
	stStopped // preempted, resumable
)

// enclave is one TEE instance.
type enclave struct {
	state      enclaveState
	base, size uint64
	entry      uint64

	// Saved enclave execution context across preemptions.
	regs [32]uint64
	pc   uint64

	// exitValue passed by FnExit.
	exitValue uint64
}

// hostCtx is the host context saved while an enclave occupies the hart.
type hostCtx struct {
	regs    [32]uint64
	pc      uint64
	medeleg uint64
	mie     uint64
	active  int // running enclave id
}

// Policy is the Keystone security monitor as a policy module.
type Policy struct {
	core.BasePolicy
	enclaves [MaxEnclaves]enclave
	// host holds the saved host context per hart while an enclave runs
	// (nil entry = no enclave on that hart).
	host map[int]*hostCtx
}

// New returns an empty Keystone policy.
func New() *Policy {
	return &Policy{host: make(map[int]*hostCtx)}
}

// Name implements core.Policy.
func (p *Policy) Name() string { return "keystone" }

// ForkPolicy implements core.PolicyForker: enclaves and saved host
// contexts are deep-copied, so a forked monitor's enclave world is
// independent of the parent's.
func (p *Policy) ForkPolicy() core.Policy {
	c := *p
	c.host = make(map[int]*hostCtx, len(p.host))
	for k, v := range p.host {
		hv := *v
		c.host[k] = &hv
	}
	return &c
}

// inEnclave reports whether hart id is currently executing an enclave.
func (p *Policy) inEnclave(hartID int) (*hostCtx, bool) {
	h, ok := p.host[hartID]
	return h, ok
}

// PolicyPMP implements core.Policy.
//
// While an enclave runs, only its own region is accessible (everything
// else is denied above the virtual PMPs); otherwise every created enclave
// region is denied to the OS and the firmware alike.
func (p *Policy) PolicyPMP(c *core.HartCtx, w core.World) []core.PMPRule {
	if hc, ok := p.inEnclave(c.Hart.ID); ok {
		e := &p.enclaves[hc.active]
		return []core.PMPRule{
			{Cfg: pmp.CfgR | pmp.CfgW | pmp.CfgX | pmp.ANapot<<3,
				Addr: pmp.NAPOTAddr(e.base, e.size)},
			{Cfg: pmp.ANapot << 3, Addr: rv.Mask(54)}, // deny the rest
		}
	}
	// Protect every live enclave region. With PolicySlots slots, at most
	// that many enclaves can exist concurrently; create enforces it.
	var rules []core.PMPRule
	for i := range p.enclaves {
		e := &p.enclaves[i]
		if e.state != stFree {
			rules = append(rules, core.PMPRule{
				Cfg:  pmp.ANapot << 3,
				Addr: pmp.NAPOTAddr(e.base, e.size),
			})
		}
	}
	return rules
}

// OnOSEcall implements core.Policy: the Keystone host and enclave SBI.
func (p *Policy) OnOSEcall(c *core.HartCtx) core.Action {
	h := c.Hart
	if h.Regs[17] != rv.SBIExtKeystone {
		if _, ok := p.inEnclave(h.ID); ok {
			// Enclaves may only talk to the security monitor; other SBI
			// extensions return denied rather than leaking to firmware.
			h.Regs[10] = sbiErrDenied
			return core.ActHandled
		}
		return core.ActDefault
	}
	switch h.Regs[16] {
	case FnCreate:
		h.Regs[10] = p.create(h.Regs[10], h.Regs[11], h.Regs[12])
	case FnDestroy:
		h.Regs[10] = p.destroy(c, h.Regs[10])
	case FnRun:
		return p.enter(c, h.Regs[10], false)
	case FnResume:
		return p.enter(c, h.Regs[10], true)
	case FnExit:
		return p.exitEnclave(c, h.Regs[10])
	default:
		h.Regs[10] = ErrInvalidParam
	}
	return core.ActHandled
}

// create registers an enclave over [base, base+size) with the given entry.
func (p *Policy) create(base, size, entry uint64) uint64 {
	if size < 8 || size&(size-1) != 0 || base&(size-1) != 0 {
		return ErrInvalidParam
	}
	if entry < base || entry >= base+size {
		return ErrInvalidParam
	}
	live := 0
	for i := range p.enclaves {
		if p.enclaves[i].state != stFree {
			live++
		}
	}
	if live >= core.PolicySlots-1 {
		// One slot is reserved for the deny-all rule during execution.
		return ErrNoFreeSlot
	}
	for i := range p.enclaves {
		e := &p.enclaves[i]
		if e.state == stFree {
			*e = enclave{state: stCreated, base: base, size: size, entry: entry}
			return uint64(i)
		}
	}
	return ErrNoFreeSlot
}

func (p *Policy) destroy(c *core.HartCtx, id uint64) uint64 {
	if id >= MaxEnclaves || p.enclaves[id].state == stFree ||
		p.enclaves[id].state == stRunning {
		return ErrInvalidParam
	}
	// Scrub enclave memory before releasing it to the OS.
	e := &p.enclaves[id]
	for off := uint64(0); off < e.size; off += 8 {
		c.Hart.Bus.Store(e.base+off, 8, 0)
	}
	*e = enclave{}
	for _, ctx := range c.Mon.Ctx {
		c.Mon.ReinstallPMP(ctx)
	}
	return OK
}

// enter switches the hart into the enclave (run or resume).
func (p *Policy) enter(c *core.HartCtx, id uint64, resume bool) core.Action {
	h := c.Hart
	if _, busy := p.inEnclave(h.ID); busy || id >= MaxEnclaves {
		h.Regs[10] = ErrInvalidParam
		return core.ActHandled
	}
	e := &p.enclaves[id]
	if (resume && e.state != stStopped) || (!resume && e.state != stCreated) {
		h.Regs[10] = ErrInvalidParam
		return core.ActHandled
	}
	hc := &hostCtx{
		regs:    h.Regs,
		pc:      h.CSR.Mepc + 4, // past the run/resume ecall
		medeleg: h.CSR.Medeleg,
		mie:     h.CSR.Mie,
		active:  int(id),
	}
	p.host[h.ID] = hc
	// While the enclave runs, every trap must reach the security monitor:
	// nothing is delegated and no supervisor interrupt preempts silently.
	h.CSR.Medeleg = 0
	h.CSR.Mie &= rv.MIntMask
	var entryPC uint64
	if resume {
		h.Regs = e.regs
		entryPC = e.pc
	} else {
		h.Regs = [32]uint64{}
		h.Regs[10] = id             // a0: enclave id
		h.Regs[2] = e.base + e.size // sp: top of enclave memory
		entryPC = e.entry
	}
	e.state = stRunning
	c.VirtMode = rv.ModeU // enclaves execute in U-mode
	c.Mon.ReinstallPMP(c)
	c.OverrideResume(entryPC)
	return core.ActHandled
}

// leave restores the host context; retval lands in the host's a0.
func (p *Policy) leave(c *core.HartCtx, retval uint64) {
	h := c.Hart
	hc := p.host[h.ID]
	delete(p.host, h.ID)
	h.Regs = hc.regs
	h.Regs[10] = retval
	h.CSR.Medeleg = hc.medeleg
	h.CSR.Mie = hc.mie
	c.VirtMode = rv.ModeS
	c.Mon.ReinstallPMP(c)
	c.OverrideResume(hc.pc)
}

// exitEnclave handles the enclave's voluntary exit.
func (p *Policy) exitEnclave(c *core.HartCtx, value uint64) core.Action {
	hc, ok := p.inEnclave(c.Hart.ID)
	if !ok {
		c.Hart.Regs[10] = ErrInvalidParam
		return core.ActHandled
	}
	e := &p.enclaves[hc.active]
	e.state = stCreated // re-runnable
	e.exitValue = value
	p.leave(c, value)
	return core.ActHandled
}

// OnInterrupt implements core.Policy: a machine interrupt while an enclave
// runs preempts it — the enclave context is saved and the host resumes
// with the Interrupted code, exactly the Keystone preemption contract.
func (p *Policy) OnInterrupt(c *core.HartCtx, code uint64) core.Action {
	hc, ok := p.inEnclave(c.Hart.ID)
	if !ok {
		return core.ActDefault
	}
	e := &p.enclaves[hc.active]
	e.regs = c.Hart.Regs
	e.pc = c.Hart.CSR.Mepc
	e.state = stStopped
	p.leave(c, Interrupted)
	// Default handling still runs (the timer must reach the OS).
	return core.ActDefault
}

// OnOSTrap implements core.Policy: an enclave fault (its own bug or an
// attempted escape) terminates the enclave and returns the fault cause to
// the host.
func (p *Policy) OnOSTrap(c *core.HartCtx, cause, tval uint64) core.Action {
	hc, ok := p.inEnclave(c.Hart.ID)
	if !ok {
		return core.ActDefault
	}
	e := &p.enclaves[hc.active]
	e.state = stCreated
	p.leave(c, 200000+cause)
	return core.ActHandled
}

// EnclaveState exposes lifecycle state for tests and tooling.
func (p *Policy) EnclaveState(id int) (state int, exitValue uint64, err error) {
	if id < 0 || id >= MaxEnclaves {
		return 0, 0, fmt.Errorf("keystone: bad enclave id %d", id)
	}
	return int(p.enclaves[id].state), p.enclaves[id].exitValue, nil
}

// sbiErrDenied widens the SBI denial code through a function call, since
// converting a negative constant to uint64 is a compile-time error.
var sbiErrDenied = widen(rv.SBIErrDenied)

func widen(v int64) uint64 { return uint64(v) }
