package policy_test

import (
	"testing"

	"govfm/internal/core"
	"govfm/internal/hart"
	"govfm/internal/policy/ace"
	"govfm/internal/policy/keystone"
	"govfm/internal/rv"
)

// Unit tests for the policy state machines' error paths, driven directly
// through the hook interface on a bare monitor-attached machine.

func bareMonitor(t *testing.T, pol core.Policy) (*core.Monitor, *core.HartCtx) {
	t.Helper()
	cfg := hart.VisionFive2()
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := core.Attach(m, core.Options{Policy: pol, FirmwareEntry: core.FirmwareBase})
	if err != nil {
		t.Fatal(err)
	}
	mon.Boot()
	ctx := mon.Ctx[0]
	ctx.VirtMode = rv.ModeS // pretend the OS is running
	return mon, ctx
}

// call performs an OS ecall with the given registers through the policy.
func call(ctx *core.HartCtx, pol core.Policy, ext, fn, a0, a1, a2 uint64) uint64 {
	h := ctx.Hart
	h.Regs[17], h.Regs[16] = ext, fn
	h.Regs[10], h.Regs[11], h.Regs[12] = a0, a1, a2
	pol.OnOSEcall(ctx)
	return h.Regs[10]
}

func TestKeystoneCreateValidation(t *testing.T) {
	pol := keystone.New()
	_, ctx := bareMonitor(t, pol)
	const eid = rv.SBIExtKeystone

	// Misaligned base.
	if r := call(ctx, pol, eid, keystone.FnCreate, core.OSBase+4, 0x10000, core.OSBase+4); r != keystone.ErrInvalidParam {
		t.Errorf("misaligned create returned %#x", r)
	}
	// Non-power-of-two size.
	if r := call(ctx, pol, eid, keystone.FnCreate, core.OSBase, 0x18000, core.OSBase); r != keystone.ErrInvalidParam {
		t.Errorf("odd-size create returned %#x", r)
	}
	// Entry outside the region.
	if r := call(ctx, pol, eid, keystone.FnCreate, core.OSBase+0x10_0000, 0x10000, core.OSBase); r != keystone.ErrInvalidParam {
		t.Errorf("bad-entry create returned %#x", r)
	}
	// A valid create.
	if r := call(ctx, pol, eid, keystone.FnCreate, core.OSBase+0x10_0000, 0x10000, core.OSBase+0x10_0000); r != 0 {
		t.Fatalf("valid create returned %#x", r)
	}
	// The policy-slot budget holds one enclave; a second is refused.
	if r := call(ctx, pol, eid, keystone.FnCreate, core.OSBase+0x20_0000, 0x10000, core.OSBase+0x20_0000); r != keystone.ErrNoFreeSlot {
		t.Errorf("second create returned %#x", r)
	}
	// Running a nonexistent enclave.
	if r := call(ctx, pol, eid, keystone.FnRun, 5, 0, 0); r != keystone.ErrInvalidParam {
		t.Errorf("run of bogus id returned %#x", r)
	}
	// Resume before any preemption.
	if r := call(ctx, pol, eid, keystone.FnResume, 0, 0, 0); r != keystone.ErrInvalidParam {
		t.Errorf("resume of non-stopped enclave returned %#x", r)
	}
	// Exit without being in an enclave.
	if r := call(ctx, pol, eid, keystone.FnExit, 0, 0, 0); r != keystone.ErrInvalidParam {
		t.Errorf("stray exit returned %#x", r)
	}
	// Unknown function.
	if r := call(ctx, pol, eid, 9999, 0, 0, 0); r != keystone.ErrInvalidParam {
		t.Errorf("unknown fn returned %#x", r)
	}
	// State inspection.
	if st, _, err := pol.EnclaveState(0); err != nil || st == 0 {
		t.Errorf("enclave 0 state: %d %v", st, err)
	}
	if _, _, err := pol.EnclaveState(99); err == nil {
		t.Error("bad id must error")
	}
}

func TestKeystoneDestroyRules(t *testing.T) {
	pol := keystone.New()
	_, ctx := bareMonitor(t, pol)
	const eid = rv.SBIExtKeystone
	if r := call(ctx, pol, eid, keystone.FnCreate, core.OSBase+0x10_0000, 0x10000, core.OSBase+0x10_0000); r != 0 {
		t.Fatal("create failed")
	}
	// Destroy of a bogus id.
	if r := call(ctx, pol, eid, keystone.FnDestroy, 7, 0, 0); r != keystone.ErrInvalidParam {
		t.Errorf("bogus destroy returned %#x", r)
	}
	// Valid destroy.
	if r := call(ctx, pol, eid, keystone.FnDestroy, 0, 0, 0); r != keystone.OK {
		t.Errorf("destroy returned %#x", r)
	}
	// Double destroy.
	if r := call(ctx, pol, eid, keystone.FnDestroy, 0, 0, 0); r != keystone.ErrInvalidParam {
		t.Errorf("double destroy returned %#x", r)
	}
}

func TestACEPromoteValidation(t *testing.T) {
	pol := ace.New()
	_, ctx := bareMonitor(t, pol)
	const eid = rv.SBIExtCoveHost

	if r := call(ctx, pol, eid, ace.FnPromoteToCVM, core.OSBase+4, 1<<20, core.OSBase+4); r != ace.ErrInvalidParam {
		t.Errorf("misaligned promote returned %#x", r)
	}
	if r := call(ctx, pol, eid, ace.FnPromoteToCVM, core.OSBase, 100, core.OSBase); r != ace.ErrInvalidParam {
		t.Errorf("tiny promote returned %#x", r)
	}
	if r := call(ctx, pol, eid, ace.FnPromoteToCVM, core.OSBase+0x10_0000, 1<<20, core.OSBase); r != ace.ErrInvalidParam {
		t.Errorf("bad-entry promote returned %#x", r)
	}
	if r := call(ctx, pol, eid, ace.FnPromoteToCVM, core.OSBase+0x10_0000, 1<<20, core.OSBase+0x10_0000); r != 0 {
		t.Fatalf("valid promote returned %#x", r)
	}
	if r := call(ctx, pol, eid, ace.FnRunCVM, 3, 0, 0); r != ace.ErrInvalidParam {
		t.Errorf("run of bogus cvm returned %#x", r)
	}
	if r := call(ctx, pol, eid, ace.FnDestroyCVM, 0, 0, 0); r != ace.OK {
		t.Errorf("destroy returned %#x", r)
	}
	if st, _, err := pol.CVMState(0); err != nil || st != 0 {
		t.Errorf("cvm 0 must be free after destroy: %d %v", st, err)
	}
	if _, _, err := pol.CVMState(-1); err == nil {
		t.Error("bad id must error")
	}
}

func TestACESharePageValidation(t *testing.T) {
	pol := ace.New()
	mon, ctx := bareMonitor(t, pol)
	const hostEID, guestEID = rv.SBIExtCoveHost, rv.SBIExtCoveGuest
	base := uint64(core.OSBase + 0x10_0000)
	if r := call(ctx, pol, hostEID, ace.FnPromoteToCVM, base, 1<<20, base); r != 0 {
		t.Fatal("promote failed")
	}
	// Enter the CVM so guest calls are accepted.
	ctx.Hart.CSR.Mepc = 0x1000
	if r := call(ctx, pol, hostEID, ace.FnRunCVM, 0, 0, 0); r != 0 {
		// run returns via OverrideResume; a0 holds the guest's a0 (= id 0)
		_ = r
	}
	// Misaligned share from inside the CVM.
	if r := call(ctx, pol, guestEID, ace.FnGuestSharePage, base+12, 0, 0); r != ace.ErrInvalidParam {
		t.Errorf("misaligned share returned %#x", r)
	}
	// Out-of-region share.
	if r := call(ctx, pol, guestEID, ace.FnGuestSharePage, core.OSBase, 0, 0); r != ace.ErrInvalidParam {
		t.Errorf("foreign share returned %#x", r)
	}
	// Valid share.
	if r := call(ctx, pol, guestEID, ace.FnGuestSharePage, base+0x4000, 0, 0); r != ace.OK {
		t.Errorf("valid share returned %#x", r)
	}
	if _, shared, _ := pol.CVMState(0); shared != base+0x4000 {
		t.Errorf("shared page = %#x", shared)
	}
	// Non-COVE SBI from inside the CVM is denied.
	var deniedSigned int64 = rv.SBIErrDenied
	denied := uint64(deniedSigned)
	if r := call(ctx, pol, rv.SBIExtIPI, 0, 1, 0, 0); r != denied {
		t.Errorf("foreign SBI inside CVM returned %#x", r)
	}
	_ = mon
}
