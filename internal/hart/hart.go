// Package hart implements the RV64IMA_Zicsr machine simulator at the heart
// of this reproduction: privilege modes M/S/U, the full trap and interrupt
// architecture with delegation, PMP enforcement on every access, Sv39
// translation, and per-platform cycle accounting.
//
// The monitor hook is the load-bearing piece for the paper: when a Monitor
// is installed, every trap that architecturally enters M-mode transfers
// control to Go code instead of simulated code at mtvec — exactly the
// position Miralis occupies on real hardware. With no monitor installed the
// machine behaves natively (firmware handles its own M-mode traps), which
// is the paper's "Native" baseline.
package hart

import (
	"errors"
	"fmt"

	"govfm/internal/mem"
	"govfm/internal/mmu"
	"govfm/internal/obs"
	"govfm/internal/rv"
)

// ErrLockup is the halt reason for a hart sleeping in WFI with every
// interrupt source masked (mie == 0): no event can ever wake it, so
// continuing to simulate only burns the step budget. The condition is
// checked on the idle poll, not at WFI retirement, so a wfi immediately
// followed by an interrupt-enable update (checked by a re-entered monitor,
// for example) is not misflagged.
var ErrLockup = errors.New("wfi with all interrupts masked: no wakeup possible")

// Monitor is M-mode software implemented in Go. HandleMTrap is invoked
// after the architectural M-mode trap entry has completed (mepc/mcause/
// mtval latched, MPP/MPIE stacked, mode = M); the handler plays the role of
// the code at mtvec and must leave the hart in a runnable state, typically
// by emulating the trap and executing an mret via ReturnMRET.
type Monitor interface {
	HandleMTrap(h *Hart)
}

// TrapInfo describes a trap for tracing.
type TrapInfo struct {
	Hart     int
	Cause    uint64
	Tval     uint64
	EPC      uint64
	FromMode rv.Mode
	ToMode   rv.Mode
	Cycle    uint64
}

// Hart is one simulated core.
type Hart struct {
	ID  int
	Cfg *Config
	Bus *mem.Bus
	CSR CSRFile

	Regs [32]uint64
	PC   uint64
	Mode rv.Mode
	// V is the virtualization mode (hypervisor extension): with V set the
	// hart executes as a guest — VS-mode when Mode is S, VU-mode when U —
	// under two-stage address translation. Always false when !Cfg.HasH.
	V bool

	Cycles  uint64
	Instret uint64
	// SInstret counts instructions retired in S-mode. It is the OS
	// forward-progress signal the chaos harness asserts on: injected
	// firmware faults must not stop it from increasing.
	SInstret uint64

	// Waiting is set while the hart sleeps in WFI.
	Waiting bool
	// Stopped parks the hart entirely (HSM stopped state / not released).
	Stopped bool
	// Halted latches a permanent stop (test exit device, monitor panic).
	Halted bool
	// HaltReason records why the hart halted.
	HaltReason string

	// Monitor, when non-nil, receives all M-mode traps.
	Monitor Monitor
	// Watchdog, when non-nil, runs after every machine step of this hart;
	// the monitor uses it to charge the firmware's cycle budget outside
	// the trap path (a runaway firmware takes no traps to observe).
	Watchdog func(h *Hart)
	// TimeFn supplies mtime for the time CSR and the Sstc comparator.
	TimeFn func() uint64

	// OnTrap, when non-nil, is called for every trap taken (tracing).
	OnTrap func(TrapInfo)

	// Perf accumulates always-on observability counters (fast-path hit
	// rates, trap frequencies). Counting never feeds back into simulated
	// state: cycles are bit-identical whether or not anyone reads them.
	Perf PerfCounters
	// Trace, when non-nil, receives trap instants and monitor-handling
	// spans on this hart's track of the simulated timeline.
	Trace *obs.Tracer

	// LR/SC reservation.
	resValid bool
	resAddr  uint64

	// envCache is reused across memory accesses to keep the hot path
	// allocation-free.
	envCache mmu.Env

	// fast holds the host-side acceleration caches (predecoded
	// instructions, software TLB); excs is the allocation-free exception
	// scratch ring. See hostfast.go.
	fast fastState
	excs excScratch
	// sb holds the superblock binary-translation tier's dispatch state.
	// See superblock.go.
	sb sbState

	// mem is this hart's private port onto the bus: a pass-through in
	// sequential mode, a write-buffering frozen-RAM view during parallel
	// slices. All of the hart's own accesses go through it; Bus stays the
	// shared bus for external agents (monitor, harnesses), which only run
	// while the harts are quiesced.
	mem *mem.Port
	// peers lists the machine's other harts, for cross-hart LR/SC
	// reservation kills on stores (wired by NewMachine).
	peers []*Hart

	// inSlice is set while the hart executes inside a parallel quantum
	// slice; park records why the slice ended early. See sched.go.
	inSlice bool
	park    parkKind
}

// New creates a hart with reset state: M-mode, all CSRs at reset values.
func New(id int, cfg *Config, bus *mem.Bus) *Hart {
	h := &Hart{
		ID:   id,
		Cfg:  cfg,
		Bus:  bus,
		Mode: rv.ModeM,
		CSR:  newCSRFile(cfg),
	}
	h.TimeFn = func() uint64 { return 0 }
	h.fast.pages = make(map[uint64]*decPage)
	h.fast.ptePages = make(map[uint64]struct{})
	if bus != nil {
		h.mem = mem.NewPort(bus)
		bus.AddPageWatcher(h)
		h.SetFastPath(true)
		h.sb.on = true
	}
	return h
}

// Reg reads GPR i (x0 always reads zero).
func (h *Hart) Reg(i uint32) uint64 {
	if i == 0 {
		return 0
	}
	return h.Regs[i]
}

// SetReg writes GPR i (writes to x0 are discarded).
func (h *Hart) SetReg(i uint32, v uint64) {
	if i != 0 {
		h.Regs[i] = v
	}
}

func (h *Hart) charge(cycles uint64) { h.Cycles += cycles }

// ChargeCycles adds monitor-side work to the hart's cycle counter. The
// Miralis cost model charges its emulation work through this.
func (h *Hart) ChargeCycles(cycles uint64) { h.charge(cycles) }

// Time returns the current mtime.
func (h *Hart) Time() uint64 { return h.TimeFn() }

// Halt permanently stops the hart.
func (h *Hart) Halt(reason string) {
	h.Halted = true
	h.HaltReason = reason
}

// Exc carries a pending synchronous exception out of the execute path.
// Values returned as *Exc come from a small per-hart scratch ring (see
// hostfast.go) and must be consumed promptly, which all callers do.
type Exc struct {
	Cause uint64
	Tval  uint64
	// Gpa is the faulting guest-physical address for the guest-page-fault
	// causes; trap entry latches Gpa>>2 into htval/mtval2.
	Gpa uint64
}

// Exception takes a synchronous exception at the current PC.
func (h *Hart) Exception(cause, tval uint64) {
	h.trap(rv.Cause(cause, false), tval, 0, h.PC)
}

// raise takes the synchronous exception described by ei at the current PC,
// carrying its guest-physical address into trap entry.
func (h *Hart) raise(ei *Exc) {
	h.trap(rv.Cause(ei.Cause, false), ei.Tval, ei.Gpa, h.PC)
}

// trap performs architectural trap entry for the given cause, routing to
// VS-mode when doubly delegated (medeleg/mideleg then hedeleg/hideleg,
// from V=1 only), to HS-mode when delegated once, otherwise to M-mode.
// gpa is the guest-physical address for guest-page faults (zero otherwise);
// entry to HS/M latches gpa>>2 into htval/mtval2.
func (h *Hart) trap(cause, tval, gpa, epc uint64) {
	code := rv.CauseCode(cause)
	interrupt := rv.CauseIsInterrupt(cause)
	toS, toVS := false, false
	if h.Mode != rv.ModeM {
		if interrupt {
			toS = h.CSR.Mideleg&(1<<code) != 0
		} else {
			toS = h.CSR.Medeleg&(1<<code) != 0
		}
		if toS && h.V {
			if interrupt {
				toVS = h.CSR.Hideleg&(1<<code) != 0
			} else {
				toVS = h.CSR.Hedeleg&(1<<code) != 0
			}
		}
	}
	h.charge(h.Cfg.Cost.TrapEntry)
	from := h.Mode
	fromV := h.V
	if toVS {
		// VS-mode entry: the guest sees the S-level view, so delegated VS
		// interrupts write the S-level code (VS code - 1) into vscause.
		vcause := cause
		if interrupt {
			vcause = rv.Cause(code-1, true)
		}
		h.CSR.Vscause = vcause
		h.CSR.Vsepc = legalizeEpc(epc)
		h.CSR.Vstval = tval
		st := h.CSR.Vsstatus
		st = rv.SetBit(st, rv.MstatusSPIE, rv.Bit(st, rv.MstatusSIE) != 0)
		st = rv.SetBit(st, rv.MstatusSIE, false)
		st = rv.SetBit(st, rv.MstatusSPP, from == rv.ModeS)
		h.CSR.Vsstatus = st
		h.Mode = rv.ModeS
		h.PC = vectorPC(h.CSR.Vstvec, vcause)
		h.notifyTrap(cause, tval, epc, from, rv.ModeS)
		return
	}
	if toS {
		h.CSR.Scause = cause
		h.CSR.Sepc = legalizeEpc(epc)
		h.CSR.Stval = tval
		st := h.CSR.Mstatus
		st = rv.SetBit(st, rv.MstatusSPIE, rv.Bit(st, rv.MstatusSIE) != 0)
		st = rv.SetBit(st, rv.MstatusSIE, false)
		st = rv.SetBit(st, rv.MstatusSPP, from == rv.ModeS)
		h.CSR.Mstatus = st
		if h.Cfg.HasH {
			hs := h.CSR.Hstatus
			hs = rv.SetBit(hs, rv.HstatusSPV, fromV)
			if fromV {
				hs = rv.SetBit(hs, rv.HstatusSPVP, from == rv.ModeS)
			}
			hs = rv.SetBit(hs, rv.HstatusGVA,
				fromV && !interrupt && rv.CauseWritesGVA(code))
			h.CSR.Hstatus = hs
			h.CSR.Htval = gpa >> 2
			h.CSR.Htinst = 0
			h.V = false
		}
		h.Mode = rv.ModeS
		h.PC = vectorPC(h.CSR.Stvec, cause)
		h.notifyTrap(cause, tval, epc, from, rv.ModeS)
		return
	}
	h.CSR.Mcause = cause
	h.CSR.Mepc = legalizeEpc(epc)
	h.CSR.Mtval = tval
	st := h.CSR.Mstatus
	st = rv.SetBit(st, rv.MstatusMPIE, rv.Bit(st, rv.MstatusMIE) != 0)
	st = rv.SetBit(st, rv.MstatusMIE, false)
	st = rv.WithMPP(st, from)
	if h.Cfg.HasH {
		st = rv.SetBit(st, rv.MstatusMPV, fromV)
		st = rv.SetBit(st, rv.MstatusGVA,
			fromV && !interrupt && rv.CauseWritesGVA(code))
		h.CSR.Mtval2 = gpa >> 2
		h.CSR.Mtinst = 0
		h.V = false
	}
	h.CSR.Mstatus = st
	h.Mode = rv.ModeM
	h.PC = vectorPC(h.CSR.Mtvec, cause)
	h.notifyTrap(cause, tval, epc, from, rv.ModeM)
	if h.Monitor != nil {
		if h.inSlice {
			// Parallel slice: architectural M-trap entry is complete, but
			// the monitor is shared host-side state — defer HandleMTrap to
			// the quantum barrier, where harts run in deterministic order.
			h.park = parkMonitor
			return
		}
		// The "m-trap" span brackets the monitor's handling of this trap:
		// it closes when HandleMTrap returns, which encloses the mret
		// (ReturnMRET runs inside the handler), so the span reads as
		// trap-to-mret on the simulated timeline however the monitor exits
		// (emulate+mret, world switch, firmware restart).
		h.Trace.Begin(int32(h.ID), h.Cycles, "m-trap")
		h.Monitor.HandleMTrap(h)
		h.Trace.End(int32(h.ID), h.Cycles)
	}
}

func (h *Hart) notifyTrap(cause, tval, epc uint64, from, to rv.Mode) {
	h.Perf.Traps++
	h.Perf.TrapsByCause[trapCauseIndex(cause)]++
	if h.Trace != nil {
		h.Trace.Emit(obs.Event{
			Kind: obs.KInstant, Track: int32(h.ID), TS: h.Cycles,
			Name: trapNames[trapCauseIndex(cause)],
			Args: [4]uint64{cause, tval, h.Reg(17), uint64(from)<<8 | uint64(to)},
		})
	}
	if h.OnTrap != nil {
		h.OnTrap(TrapInfo{
			Hart: h.ID, Cause: cause, Tval: tval, EPC: epc,
			FromMode: from, ToMode: to, Cycle: h.Cycles,
		})
	}
}

func vectorPC(tvec, cause uint64) uint64 {
	base := tvec &^ 3
	if tvec&3 == 1 && rv.CauseIsInterrupt(cause) {
		return base + 4*rv.CauseCode(cause)
	}
	return base
}

// ReturnMRET performs the mret state transition: restores the privilege
// stack and jumps to mepc. Exposed for the monitor, which executes its
// "mret" in Go.
func (h *Hart) ReturnMRET() {
	st := h.CSR.Mstatus
	prev := rv.MPP(st)
	st = rv.SetBit(st, rv.MstatusMIE, rv.Bit(st, rv.MstatusMPIE) != 0)
	st = rv.SetBit(st, rv.MstatusMPIE, true)
	st = rv.WithMPP(st, rv.ModeU)
	if prev != rv.ModeM {
		st = rv.SetBit(st, rv.MstatusMPRV, false)
	}
	if h.Cfg.HasH {
		h.V = prev != rv.ModeM && rv.Bit(st, rv.MstatusMPV) != 0
		st = rv.SetBit(st, rv.MstatusMPV, false)
	}
	h.CSR.Mstatus = st
	h.Mode = prev
	h.PC = h.CSR.Mepc
	h.charge(h.Cfg.Cost.XRet)
}

// returnSRET performs the sret state transition. From VS-mode it operates
// on the vsstatus stack and stays in the guest; from HS-mode it restores
// the virtualization mode from hstatus.SPV.
func (h *Hart) returnSRET() {
	if h.V {
		st := h.CSR.Vsstatus
		prev := rv.SPP(st)
		st = rv.SetBit(st, rv.MstatusSIE, rv.Bit(st, rv.MstatusSPIE) != 0)
		st = rv.SetBit(st, rv.MstatusSPIE, true)
		st = rv.SetBit(st, rv.MstatusSPP, false)
		h.CSR.Vsstatus = st
		h.Mode = prev
		h.PC = h.CSR.Vsepc
		h.charge(h.Cfg.Cost.XRet)
		return
	}
	st := h.CSR.Mstatus
	prev := rv.SPP(st)
	st = rv.SetBit(st, rv.MstatusSIE, rv.Bit(st, rv.MstatusSPIE) != 0)
	st = rv.SetBit(st, rv.MstatusSPIE, true)
	st = rv.SetBit(st, rv.MstatusSPP, false)
	if prev != rv.ModeM {
		st = rv.SetBit(st, rv.MstatusMPRV, false)
	}
	h.CSR.Mstatus = st
	if h.Cfg.HasH {
		h.V = rv.Bit(h.CSR.Hstatus, rv.HstatusSPV) != 0
		h.CSR.Hstatus = rv.SetBit(h.CSR.Hstatus, rv.HstatusSPV, false)
	}
	h.Mode = prev
	h.PC = h.CSR.Sepc
	h.charge(h.Cfg.Cost.XRet)
}

// pendingInterrupt returns the cause of the highest-priority deliverable
// interrupt, or 0,false. Priority order per the spec: MEI, MSI, MTI, SEI,
// SSI, STI, then the VS interrupts. VS-level pending state lives in
// hvip&hie; mideleg routes each code to M or (H)S, and hideleg splits the
// supervisor tier into HS targets and in-guest VS delivery.
func (h *Hart) pendingInterrupt() (uint64, bool) {
	pending := h.CSR.Mip(h.Time()) & h.CSR.Mie
	if h.Cfg.HasH {
		pending |= h.CSR.Hvip & h.CSR.Hie
	}
	if pending == 0 {
		return 0, false
	}
	mEnabled := h.Mode != rv.ModeM || rv.Bit(h.CSR.Mstatus, rv.MstatusMIE) != 0
	mPending := pending &^ h.CSR.Mideleg
	if mEnabled && mPending != 0 {
		for _, code := range mIntPriority {
			if mPending&(1<<code) != 0 {
				return rv.Cause(code, true), true
			}
		}
	}
	// (H)S-level targets: delegated by mideleg, minus the VS codes hideleg
	// sends on into the guest. From V=1 they always preempt the guest.
	sPending := pending & h.CSR.Mideleg &^ (h.CSR.Hideleg & rv.VSIntMask)
	sEnabled := h.V || h.Mode == rv.ModeU ||
		(h.Mode == rv.ModeS && rv.Bit(h.CSR.Mstatus, rv.MstatusSIE) != 0)
	if h.Mode != rv.ModeM && sEnabled && sPending != 0 {
		for _, code := range sIntPriority {
			if sPending&(1<<code) != 0 {
				return rv.Cause(code, true), true
			}
		}
	}
	// VS-level targets deliver only inside the guest.
	if h.V {
		vsPending := pending & h.CSR.Mideleg & h.CSR.Hideleg & rv.VSIntMask
		vsEnabled := h.Mode == rv.ModeU ||
			rv.Bit(h.CSR.Vsstatus, rv.MstatusSIE) != 0
		if vsEnabled && vsPending != 0 {
			for _, code := range vsIntPriority {
				if vsPending&(1<<code) != 0 {
					return rv.Cause(code, true), true
				}
			}
		}
	}
	return 0, false
}

// Interrupt priority orders, hoisted so pendingInterrupt allocates nothing.
var (
	mIntPriority = [...]uint64{rv.IntMExt, rv.IntMSoft, rv.IntMTimer,
		rv.IntSExt, rv.IntSSoft, rv.IntSTimer,
		rv.IntVSExt, rv.IntVSSoft, rv.IntVSTimer}
	sIntPriority = [...]uint64{rv.IntSExt, rv.IntSSoft, rv.IntSTimer,
		rv.IntVSExt, rv.IntVSSoft, rv.IntVSTimer}
	vsIntPriority = [...]uint64{rv.IntVSExt, rv.IntVSSoft, rv.IntVSTimer}
)

// Step advances the hart by one instruction (or one interrupt/idle poll).
// The caller (Machine) refreshes hardware interrupt lines beforehand.
// When the scheduler armed the superblock tier (h.sb.armed), one Step call
// may retire a whole translated block; h.sb.retired reports how many
// sequential steps the call was equivalent to (1 otherwise, no-op steps of
// halted or stopped harts included).
func (h *Hart) Step() {
	h.sb.retired = 1
	if h.Stopped || h.Halted {
		return
	}
	if cause, ok := h.pendingInterrupt(); ok {
		h.Waiting = false
		h.trap(cause, 0, 0, h.PC)
		return
	}
	if h.Waiting {
		// WFI wakes when any enabled interrupt pends, regardless of global
		// enables; that case was handled above only for *deliverable*
		// interrupts, so also check the raw pending set (including VS-level
		// sources injected through hvip).
		wake := h.CSR.Mip(h.Time())&h.CSR.Mie != 0
		if h.Cfg.HasH && h.CSR.Hvip&h.CSR.Hie != 0 {
			wake = true
		}
		if wake {
			h.Waiting = false
		} else {
			// No wakeup is possible once every enable is clear: hvip only
			// changes by this hart's own CSR writes, so pending VS state
			// cannot appear while it sleeps.
			if h.CSR.Mie == 0 && (!h.Cfg.HasH || h.CSR.Hie == 0) {
				h.Halt(ErrLockup.Error())
				return
			}
			h.charge(h.Cfg.Cost.WFIIdle)
			return
		}
	}
	if h.fast.on {
		d, ei := h.fetchFast()
		if ei != nil {
			if ei == errParked {
				h.park = parkReplay
				return
			}
			h.raise(ei)
			return
		}
		// Superblock dispatch point: the pending-interrupt check above has
		// already run for this step, and the scheduler's cycle/step limits
		// (set when it armed us) bound the block so later latch points
		// land exactly where per-instruction stepping would put them.
		if h.sb.armed {
			if n := h.sbTry(); n > 0 {
				h.sb.retired = n
				return
			}
		}
		h.exec(d)
		return
	}
	raw, ei := h.fetch()
	if ei != nil {
		if ei == errParked {
			h.park = parkReplay
			return
		}
		h.raise(ei)
		return
	}
	h.execute(raw)
}

// fetch reads the 32-bit instruction at PC (reference path; fetchFast is
// the accelerated equivalent).
func (h *Hart) fetch() (uint32, *Exc) {
	if h.PC&3 != 0 {
		return 0, h.exc(rv.ExcInstrAddrMisaligned, h.PC)
	}
	// Fetch always uses the true privilege mode; MPRV affects data only.
	env := h.mmuEnv(h.Mode, h.V)
	res := mmu.Translate(env, h.PC, mem.Exec)
	if !res.OK {
		if h.inSlice && h.mem.TakeBlocked() {
			return 0, errParked
		}
		ei := h.exc(res.Cause, h.PC)
		ei.Gpa = res.GPA
		return 0, ei
	}
	if !h.CSR.PMP.Check(res.PA, 4, mem.Exec, h.Mode) {
		return 0, h.exc(rv.ExcInstrAccessFault, h.PC)
	}
	v, ok := h.mem.Load(res.PA, 4)
	if !ok {
		if h.inSlice && h.mem.TakeBlocked() {
			return 0, errParked
		}
		return 0, h.exc(rv.ExcInstrAccessFault, h.PC)
	}
	return uint32(v), nil
}

func (h *Hart) mmuEnv(priv rv.Mode, virt bool) *mmu.Env {
	e := &h.envCache
	e.Bus = h.mem
	e.PMP = h.CSR.PMP
	e.Priv = priv
	e.HLVX = false
	if virt {
		// Guest context: VS-stage translation under vsatp with the guest's
		// SUM/MXR, composed with the G-stage under hgatp.
		e.Satp = h.CSR.Vsatp
		e.V = true
		e.Hgatp = h.CSR.Hgatp
		e.SUM = rv.Bit(h.CSR.Vsstatus, rv.MstatusSUM) != 0
		e.MXR = rv.Bit(h.CSR.Vsstatus, rv.MstatusMXR) != 0
		return e
	}
	e.Satp = h.CSR.Satp
	e.V = false
	e.Hgatp = 0
	e.SUM = rv.Bit(h.CSR.Mstatus, rv.MstatusSUM) != 0
	e.MXR = rv.Bit(h.CSR.Mstatus, rv.MstatusMXR) != 0
	return e
}

// effectivePriv returns the privilege mode governing a data access,
// honouring mstatus.MPRV.
func (h *Hart) effectivePriv() rv.Mode {
	if rv.Bit(h.CSR.Mstatus, rv.MstatusMPRV) != 0 {
		return rv.MPP(h.CSR.Mstatus)
	}
	return h.Mode
}

// effectivePrivV returns the privilege mode and virtualization mode
// governing a data access: MPRV substitutes MPP (and, with the hypervisor
// extension, MPV unless MPP is M); otherwise the hart's current pair.
func (h *Hart) effectivePrivV() (rv.Mode, bool) {
	if rv.Bit(h.CSR.Mstatus, rv.MstatusMPRV) != 0 {
		mpp := rv.MPP(h.CSR.Mstatus)
		virt := h.Cfg.HasH && mpp != rv.ModeM &&
			rv.Bit(h.CSR.Mstatus, rv.MstatusMPV) != 0
		return mpp, virt
	}
	return h.Mode, h.V
}

// misalignedCause maps an access type to its misaligned-exception cause.
func misalignedCause(acc mem.AccessType) uint64 {
	if acc == mem.Write {
		return rv.ExcStoreAddrMisaligned
	}
	return rv.ExcLoadAddrMisaligned
}

func accessFaultCause(acc mem.AccessType) uint64 {
	if acc == mem.Write {
		return rv.ExcStoreAccessFault
	}
	return rv.ExcLoadAccessFault
}

// MemAccess performs a data access at virtual address va with full
// architectural checking (alignment, translation, PMP). For writes, value
// is stored and the returned value is 0. Exposed (capitalized) because the
// monitor uses it to perform accesses on behalf of the firmware (MPRV
// emulation) — with the *hart's* current state, exactly like hardware MPRV.
func (h *Hart) MemAccess(va uint64, size int, acc mem.AccessType, value uint64, requireAligned bool) (uint64, *Exc) {
	if va%uint64(size) != 0 {
		if requireAligned || !h.Cfg.HWMisaligned {
			return 0, h.exc(misalignedCause(acc), va)
		}
	}
	priv, virt := h.effectivePrivV()
	pa, ei := h.translate(va, acc, priv, virt)
	if ei != nil {
		return 0, ei
	}
	if !h.CSR.PMP.Check(pa, size, acc, priv) {
		return 0, h.exc(accessFaultCause(acc), va)
	}
	h.charge(h.Cfg.Cost.MemAccess)
	if acc == mem.Write {
		if !h.mem.Store(pa, size, value) {
			if h.inSlice && h.mem.TakeBlocked() {
				return 0, errParked
			}
			return 0, h.exc(rv.ExcStoreAccessFault, va)
		}
		// A store to the reservation's region kills it — this hart's
		// immediately, and every peer's, as cache coherence would. During a
		// parallel slice the store is buffered; peers' reservations are
		// killed when it commits at the barrier.
		if h.resValid && pa&^7 == h.resAddr&^7 {
			h.resValid = false
		}
		if !h.inSlice {
			for _, p := range h.peers {
				p.KillReservation(pa)
			}
		}
		return 0, nil
	}
	v, ok := h.mem.Load(pa, size)
	if !ok {
		if h.inSlice && h.mem.TakeBlocked() {
			return 0, errParked
		}
		return 0, h.exc(rv.ExcLoadAccessFault, va)
	}
	return v, nil
}

// SetReservation registers an LR reservation at addr on behalf of the
// hart. The monitor uses it when it emulates a trapped LR (MPRV or MMIO
// window) so that a later, directly-executed SC still succeeds.
func (h *Hart) SetReservation(addr uint64) {
	h.resValid, h.resAddr = true, addr
}

// KillReservation invalidates the reservation if pa falls in its 8-byte
// region, mirroring what a store through MemAccess does. The monitor calls
// it after stores it performs on the hart's behalf.
func (h *Hart) KillReservation(pa uint64) {
	if h.resValid && pa&^7 == h.resAddr&^7 {
		h.resValid = false
	}
}

// Translate exposes address translation with the hart's current state; the
// monitor uses it for MPRV emulation (software page-table walk on behalf of
// the firmware).
func (h *Hart) Translate(va uint64, acc mem.AccessType, priv rv.Mode) (uint64, *Exc) {
	return h.TranslateV(va, acc, priv, false)
}

// TranslateV is Translate with an explicit virtualization mode: with virt
// set the walk runs in the guest's two-stage context (vsatp + hgatp).
func (h *Hart) TranslateV(va uint64, acc mem.AccessType, priv rv.Mode, virt bool) (uint64, *Exc) {
	env := h.mmuEnv(priv, virt)
	res := mmu.Translate(env, va, acc)
	if !res.OK {
		ei := h.exc(res.Cause, va)
		ei.Gpa = res.GPA
		return 0, ei
	}
	return res.PA, nil
}

// String renders a one-line hart state summary for debugging.
func (h *Hart) String() string {
	return fmt.Sprintf("hart%d pc=%#x mode=%v cycles=%d", h.ID, h.PC, h.Mode, h.Cycles)
}
