package hart

import (
	"fmt"

	"govfm/internal/dev/clint"
	"govfm/internal/dev/iopmp"
	"govfm/internal/dev/plic"
	"govfm/internal/dev/uart"
	"govfm/internal/mem"
)

// DMASnapshot is a copy of the DMA engine's register state. The IOPMP hook
// (host wiring) is not captured; NewMachine rewires it.
type DMASnapshot struct {
	Src, Dst, Len, Stat uint64
}

// Checkpoint captures the DMA engine's registers for later Restore.
func (d *DMAEngine) Checkpoint() DMASnapshot {
	return DMASnapshot{Src: d.src, Dst: d.dst, Len: d.len, Stat: d.stat}
}

// Restore rewinds the DMA engine's registers to a checkpoint.
func (d *DMAEngine) Restore(s DMASnapshot) {
	d.src, d.dst, d.len, d.stat = s.Src, s.Dst, s.Len, s.Stat
}

// Image is a complete machine image: RAM shared copy-on-write with the
// origin machine (mem.RAMSnapshot), every hart's architectural state, and
// every device — CLINT, PLIC, UART, DMA, and IOPMP. Unlike the narrower
// MachineSnapshot (which rewinds one machine in place for replay
// harnesses), an Image is self-contained: SpawnFromImage builds an
// independent machine from it, and any number of machines may be spawned
// from one image and run concurrently with the origin.
//
// Host-side state deliberately travels outside the image: predecode/TLB
// caches, PMP fast segments, watch bits, Perf counters, and the
// Monitor/Watchdog/Trace hooks all belong to a machine, not an image. A
// spawned machine starts with cold caches that re-arm on first use, which
// the fork-equivalence gate proves is invisible in simulated time.
type Image struct {
	Cfg      *Config
	DramSize uint64

	Mem   *mem.RAMSnapshot
	Harts []*Snapshot
	Clint clint.Snapshot
	Plic  plic.Snapshot
	Uart  uart.Snapshot
	DMA   DMASnapshot
	IOPMP *iopmp.Snapshot // nil when the platform has no IOPMP

	TimeRemainder uint64
	Halted        bool
	HaltReason    string

	Sched      SchedKind
	Quantum    uint64
	FastPath   bool
	Superblock bool
}

// Snapshot captures the complete machine as an Image in O(pages touched
// since the last snapshot), sealing the current RAM generation. It must be
// taken at a quiescent point: under SchedPar, mid-quantum snapshots (e.g.
// from a monitor handler running at the barrier's replay stage) are
// refused rather than risking a torn view of the per-hart store buffers.
func (m *Machine) Snapshot() (*Image, error) {
	if m.inRound.Load() {
		return nil, fmt.Errorf("hart: Snapshot mid-quantum under the parallel scheduler; snapshot only at round boundaries")
	}
	for _, h := range m.Harts {
		if h.mem.Buffered() != 0 {
			return nil, fmt.Errorf("hart: Snapshot with hart %d holding %d uncommitted buffered words", h.ID, h.mem.Buffered())
		}
	}
	img := &Image{
		Cfg:           m.Cfg,
		DramSize:      m.DramSize,
		Mem:           m.Bus.Snapshot(),
		Clint:         m.Clint.Checkpoint(),
		Plic:          m.Plic.Checkpoint(),
		Uart:          m.Uart.Checkpoint(),
		DMA:           m.DMA.Checkpoint(),
		TimeRemainder: m.timeRemainder,
		Halted:        m.halted,
		HaltReason:    m.haltReason,
		Sched:         m.Sched,
		Quantum:       m.Quantum,
		FastPath:      m.Harts[0].fast.on,
		Superblock:    m.Harts[0].sb.on,
	}
	if m.IOPMP != nil {
		s := m.IOPMP.Checkpoint()
		img.IOPMP = &s
	}
	for _, h := range m.Harts {
		img.Harts = append(img.Harts, h.Checkpoint())
	}
	return img, nil
}

// LoadImageState installs img into m. The machine must have the same shape
// (profile hart count, DRAM size, IOPMP presence) as the image's origin.
// RAM stays page-shared with every other holder of the image; the machine
// copy-on-writes pages as it runs. Host caches are flushed and re-arm
// against this machine's own bus.
func (m *Machine) LoadImageState(img *Image) error {
	if len(img.Harts) != len(m.Harts) {
		return fmt.Errorf("hart: image has %d harts, machine has %d", len(img.Harts), len(m.Harts))
	}
	if (img.IOPMP != nil) != (m.IOPMP != nil) {
		return fmt.Errorf("hart: image and machine disagree on IOPMP presence")
	}
	if err := m.Bus.LoadSnapshot(img.Mem); err != nil {
		return err
	}
	for i, h := range m.Harts {
		h.Restore(img.Harts[i]) // flushes predecode/TLB, reapplies PMP fast mode
		h.mem.Discard()
	}
	m.Clint.Restore(img.Clint)
	m.Plic.Restore(img.Plic)
	m.Uart.Restore(img.Uart)
	m.DMA.Restore(img.DMA)
	if m.IOPMP != nil {
		m.IOPMP.Restore(*img.IOPMP)
	}
	m.timeRemainder = img.TimeRemainder
	m.halted = img.Halted
	m.haltReason = img.HaltReason
	m.SetFastPath(img.FastPath)
	// Only the tier switch travels in the image: translated blocks are host
	// state, dropped with the predecode pages above; the child re-heats and
	// re-translates (bit-identical — the fork-equivalence gate sweeps this).
	m.SetSuperblock(img.Superblock)
	return nil
}

// SpawnFromImage builds a fresh, independent machine from an image. The
// child shares every clean RAM page with the image (and hence with the
// origin machine and its other children); pages are copied off on first
// write by whoever writes first. The child carries no monitor, watchdog,
// or trace hooks — attach those after spawning.
func SpawnFromImage(img *Image) (*Machine, error) {
	m, err := NewMachine(img.Cfg, img.DramSize)
	if err != nil {
		return nil, err
	}
	m.Sched = img.Sched
	m.Quantum = img.Quantum
	if err := m.LoadImageState(img); err != nil {
		return nil, err
	}
	return m, nil
}

// Fork snapshots the machine and spawns a child from the image in one
// step. Parent and child may run concurrently afterwards: the pages they
// share are sealed by the snapshot, and each side copy-on-writes its own
// divergence.
func (m *Machine) Fork() (*Machine, error) {
	img, err := m.Snapshot()
	if err != nil {
		return nil, err
	}
	return SpawnFromImage(img)
}
