package hart

import (
	"strings"
	"testing"

	"govfm/internal/asm"
)

func newTestMachine(t *testing.T, harts int) *Machine {
	t.Helper()
	cfg := VisionFive2()
	cfg.Harts = harts
	m, err := NewMachine(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExitFailDevice(t *testing.T) {
	m := newTestMachine(t, 1)
	a := asm.New(DramBase)
	a.Li(asm.T0, ExitBase)
	a.Li(asm.T1, uint64(7)<<16|ExitFail) // code 7
	a.Sd(asm.T1, asm.T0, 0)
	_ = m.LoadImage(DramBase, a.MustAssemble())
	m.Reset(DramBase)
	m.Run(100)
	ok, reason := m.Halted()
	if !ok || !strings.Contains(reason, "fail") || !strings.Contains(reason, "7") {
		t.Errorf("halted=%v reason=%q", ok, reason)
	}
}

func TestExitUnknownCode(t *testing.T) {
	m := newTestMachine(t, 1)
	a := asm.New(DramBase)
	a.Li(asm.T0, ExitBase)
	a.Li(asm.T1, 0x1234)
	a.Sd(asm.T1, asm.T0, 0)
	_ = m.LoadImage(DramBase, a.MustAssemble())
	m.Reset(DramBase)
	m.Run(100)
	ok, reason := m.Halted()
	if !ok || !strings.Contains(reason, "0x1234") {
		t.Errorf("halted=%v reason=%q", ok, reason)
	}
}

func TestRunUntil(t *testing.T) {
	m := newTestMachine(t, 1)
	a := asm.New(DramBase)
	a.Li(asm.S0, DramBase+0x1000)
	a.Li(asm.T0, 1)
	for i := 0; i < 50; i++ {
		a.Nop()
	}
	a.Sd(asm.T0, asm.S0, 0)
	a.Label("hang")
	a.J("hang")
	_ = m.LoadImage(DramBase, a.MustAssemble())
	m.Reset(DramBase)
	hit := m.RunUntil(func() bool {
		v, _ := m.Bus.Load(DramBase+0x1000, 8)
		return v == 1
	}, 10_000)
	if !hit {
		t.Error("RunUntil must observe the store")
	}
	// A condition that never holds returns false.
	if m.RunUntil(func() bool { return false }, 100) {
		t.Error("impossible condition must report false")
	}
}

func TestResetClearsState(t *testing.T) {
	m := newTestMachine(t, 2)
	h := m.Harts[1]
	h.Regs[5] = 42
	h.Waiting = true
	h.Halted = true
	m.halt("test")
	m.Reset(DramBase)
	if h.Regs[5] != 0 || h.Waiting || h.Halted {
		t.Error("reset must clear hart state")
	}
	if h.Regs[10] != 1 {
		t.Error("a0 must hold the hart id")
	}
	if ok, _ := m.Halted(); ok {
		t.Error("reset must clear the halt latch")
	}
}

func TestDMAErrorStatus(t *testing.T) {
	m := newTestMachine(t, 1)
	d := m.DMA
	// Copy from unmapped memory: status 1.
	d.Store(DMASrc, 8, 0x4000_0000)
	d.Store(DMADst, 8, DramBase)
	d.Store(DMALen, 8, 16)
	d.Store(DMACtl, 8, 0)
	if st, _ := d.Load(DMAStat, 8); st != 1 {
		t.Errorf("status = %d, want 1 (bus error)", st)
	}
	// Copy into a device region: also an error.
	d.Store(DMASrc, 8, DramBase)
	d.Store(DMADst, 8, ClintBase)
	d.Store(DMACtl, 8, 0)
	if st, _ := d.Load(DMAStat, 8); st != 1 {
		t.Errorf("status = %d, want 1", st)
	}
	// Register access constraints.
	if _, ok := d.Load(DMASrc, 4); ok {
		t.Error("4-byte DMA register access must fail")
	}
	if d.Store(0x99, 8, 0) {
		t.Error("unknown register must fail")
	}
	if d.Name() != "dma" {
		t.Error("name")
	}
}

func TestTimeAdvancesAcrossHarts(t *testing.T) {
	m := newTestMachine(t, 2)
	a := asm.New(DramBase)
	for i := 0; i < 2000; i++ {
		a.Nop()
	}
	a.Li(asm.T0, ExitBase)
	a.Li(asm.T1, ExitPass)
	a.Sd(asm.T1, asm.T0, 0)
	_ = m.LoadImage(DramBase, a.MustAssemble())
	m.Reset(DramBase)
	m.Run(3000)
	if m.Clint.Time() == 0 {
		t.Error("mtime must advance from consumed cycles")
	}
	// Both harts ran in lockstep.
	if m.Harts[0].Instret == 0 || m.Harts[1].Instret == 0 {
		t.Error("both harts must retire instructions")
	}
}
