package hart

import (
	"strings"
	"testing"

	"govfm/internal/asm"
	"govfm/internal/rv"
)

// schedNames enumerates both schedulers for table-driven tests.
var schedNames = []struct {
	name string
	kind SchedKind
}{
	{"seq", SchedSeq},
	{"par", SchedPar},
}

// bootResetProg dirties everything Reset must clear — a CSR, a locked PMP
// entry, an LR reservation, the CLINT comparator, the UART — then exits.
func bootResetProg() []byte {
	a := asm.New(DramBase)
	a.Li(asm.T0, 0xDEAD)
	a.Csrw(rv.CSRMscratch, asm.T0)
	// Lock PMP entry 0 over all of memory (NAPOT, L|X|W|R): only a reset
	// can clear a locked entry, so a weak Reset leaves it behind.
	a.Li(asm.T0, rv.Mask(53))
	a.Csrw(rv.CSRPmpaddr0, asm.T0)
	a.Li(asm.T0, 0x9F)
	a.Csrw(rv.CSRPmpcfg0, asm.T0)
	// Take an LR reservation.
	a.Li(asm.S0, DramBase+0x6000)
	a.LrD(asm.T1, asm.S0)
	// Program mtimecmp[0] and print one byte.
	a.Li(asm.T0, ClintBase+0x4000)
	a.Li(asm.T1, 123)
	a.Sd(asm.T1, asm.T0, 0)
	a.Li(asm.T0, UartBase)
	a.Li(asm.T1, 'A')
	a.Sb(asm.T1, asm.T0, 0)
	a.Li(asm.T0, ExitBase)
	a.Li(asm.T1, ExitPass)
	a.Sd(asm.T1, asm.T0, 0)
	return a.MustAssemble()
}

// TestResetFullMachineState is the boot-twice regression for the Reset
// bugfix: a second boot after Reset must be indistinguishable from the
// first — CSRs (including locked PMP entries), cycle counters, LR/SC
// reservations, and device state must all return to power-on values.
func TestResetFullMachineState(t *testing.T) {
	m := newTestMachine(t, 1)
	_ = m.LoadImage(DramBase, bootResetProg())
	m.Reset(DramBase)
	m.Run(1000)
	if ok, reason := m.Halted(); !ok || !strings.Contains(reason, "pass") {
		t.Fatalf("first boot: halted=%v reason=%q", ok, reason)
	}
	h := m.Harts[0]
	firstCycles, firstInstret := h.Cycles, h.Instret
	firstOut := m.Uart.Output()
	if firstOut != "A" {
		t.Fatalf("first boot uart = %q, want %q", firstOut, "A")
	}

	m.Reset(DramBase)

	if ok, _ := m.Halted(); ok {
		t.Error("reset must clear the machine halt latch")
	}
	if h.Cycles != 0 || h.Instret != 0 || h.SInstret != 0 {
		t.Errorf("reset left counters: cycles=%d instret=%d sinstret=%d",
			h.Cycles, h.Instret, h.SInstret)
	}
	if h.CSR.Mscratch != 0 {
		t.Errorf("reset left mscratch = %#x", h.CSR.Mscratch)
	}
	if h.CSR.PMP.Cfg(0) != 0 || h.CSR.PMP.Addr(0) != 0 {
		t.Errorf("reset left locked PMP entry: cfg=%#x addr=%#x",
			h.CSR.PMP.Cfg(0), h.CSR.PMP.Addr(0))
	}
	if h.resValid {
		t.Error("reset left an LR reservation")
	}
	if m.Clint.Time() != 0 {
		t.Errorf("reset left mtime = %d", m.Clint.Time())
	}
	if m.Clint.Mtimecmp(0) != ^uint64(0) {
		t.Errorf("reset left mtimecmp = %#x", m.Clint.Mtimecmp(0))
	}
	if m.Uart.Output() != "" {
		t.Errorf("reset left uart output %q", m.Uart.Output())
	}

	// Second boot: bit-identical to the first.
	m.Run(1000)
	if ok, reason := m.Halted(); !ok || !strings.Contains(reason, "pass") {
		t.Fatalf("second boot: halted=%v reason=%q", ok, reason)
	}
	if h.Cycles != firstCycles || h.Instret != firstInstret {
		t.Errorf("second boot diverged: cycles %d vs %d, instret %d vs %d",
			h.Cycles, firstCycles, h.Instret, firstInstret)
	}
	if m.Uart.Output() != firstOut {
		t.Errorf("second boot uart = %q, want %q", m.Uart.Output(), firstOut)
	}
}

// ipiProg builds a two-hart program where hart sender posts an MSIP IPI to
// hart receiver, which sleeps in WFI and raises a flag at flagAddr on wake.
func ipiProg(sender, receiver int, flagAddr uint64) []byte {
	a := asm.New(DramBase)
	a.Li(asm.T0, uint64(sender))
	a.BeqFar(asm.A0, asm.T0, "sender")
	// Receiver: enable MSIE, sleep, flag, hang.
	a.Li(asm.T0, 1<<rv.IntMSoft)
	a.Csrw(rv.CSRMie, asm.T0)
	a.Wfi()
	a.Li(asm.S0, flagAddr)
	a.Li(asm.T1, 1)
	a.Sd(asm.T1, asm.S0, 0)
	a.Label("hang")
	a.J("hang")
	a.Label("sender")
	for i := 0; i < 8; i++ {
		a.Nop()
	}
	a.Li(asm.T1, ClintBase+uint64(4*receiver))
	a.Li(asm.T2, 1)
	a.Sw(asm.T2, asm.T1, 0)
	a.Label("shang")
	a.J("shang")
	return a.MustAssemble()
}

// runIPI boots ipiProg under the given scheduler and returns the
// receiver's cycle count at the moment the wake flag becomes visible.
func runIPI(t *testing.T, kind SchedKind, sender, receiver int) uint64 {
	t.Helper()
	const flagAddr = DramBase + 0x3000
	m := newTestMachine(t, 2)
	m.Sched = kind
	m.Quantum = 64
	_ = m.LoadImage(DramBase, ipiProg(sender, receiver, flagAddr))
	m.Reset(DramBase)
	ok := m.RunUntil(func() bool {
		v, _ := m.Bus.Load(flagAddr, 8)
		return v == 1
	}, 100_000)
	if !ok {
		t.Fatalf("sched=%v sender=%d: receiver never woke from the IPI",
			kind, sender)
	}
	return m.Harts[receiver].Cycles
}

// TestIPIDeliverySymmetric is the regression for the interrupt-latch
// bugfix: hart 1's IPI to hart 0 must be observed with exactly the same
// latency as hart 0's IPI to hart 1. Before the fix the sequential
// scheduler latched hart lines asymmetrically within a machine step.
func TestIPIDeliverySymmetric(t *testing.T) {
	for _, s := range schedNames {
		t.Run(s.name, func(t *testing.T) {
			c01 := runIPI(t, s.kind, 0, 1)
			c10 := runIPI(t, s.kind, 1, 0)
			if c01 != c10 {
				t.Errorf("asymmetric IPI latency: hart0→hart1 woke at %d cycles, hart1→hart0 at %d",
					c01, c10)
			}
		})
	}
}

// wfiTimerProg arms each hart's own mtimecmp at a small tick count, sleeps
// in WFI on MTIE, and raises a per-hart flag on wake.
func wfiTimerProg(flagBase uint64) []byte {
	a := asm.New(DramBase)
	a.Li(asm.T0, ClintBase+0x4000)
	a.Slli(asm.T1, asm.A0, 3)
	a.Add(asm.T0, asm.T0, asm.T1)
	a.Li(asm.T2, 5)
	a.Sd(asm.T2, asm.T0, 0) // mtimecmp[id] = 5 ticks
	a.Li(asm.T0, 1<<rv.IntMTimer)
	a.Csrw(rv.CSRMie, asm.T0)
	a.Wfi()
	a.Li(asm.S0, flagBase)
	a.Slli(asm.T1, asm.A0, 3)
	a.Add(asm.S0, asm.S0, asm.T1)
	a.Li(asm.T1, 1)
	a.Sd(asm.T1, asm.S0, 0)
	a.Label("hang")
	a.J("hang")
	return a.MustAssemble()
}

// TestAllHartsWFIAdvancesTime checks that mtime keeps advancing when every
// hart is asleep in WFI: with all harts waiting on their timers the idle
// polls must still drive the shared wall clock forward until the
// comparators fire, under both schedulers.
func TestAllHartsWFIAdvancesTime(t *testing.T) {
	const flagBase = DramBase + 0x5000
	for _, s := range schedNames {
		t.Run(s.name, func(t *testing.T) {
			m := newTestMachine(t, 2)
			m.Sched = s.kind
			_ = m.LoadImage(DramBase, wfiTimerProg(flagBase))
			m.Reset(DramBase)
			ok := m.RunUntil(func() bool {
				a, _ := m.Bus.Load(flagBase, 8)
				b, _ := m.Bus.Load(flagBase+8, 8)
				return a == 1 && b == 1
			}, 1_000_000)
			if !ok {
				t.Fatalf("harts never woke: mtime=%d (all-WFI must still advance time)",
					m.Clint.Time())
			}
			if m.Clint.Time() < 5 {
				t.Errorf("mtime = %d after both timers fired, want >= 5", m.Clint.Time())
			}
		})
	}
}

// lrscProg: a full handshake proving the cross-hart store lands between
// the LR and the SC. Hart 0 takes an LR reservation on a shared
// doubleword and raises reserved; hart 1 waits for reserved, stores to the
// reserved doubleword, and raises stored; hart 0 waits for stored, then
// attempts the SC and records its result.
func lrscProg(shared, reserved, stored, result uint64) []byte {
	a := asm.New(DramBase)
	a.BnezFar(asm.A0, "hart1")
	a.Li(asm.S0, shared)
	a.LrD(asm.T0, asm.S0)
	a.Li(asm.S1, reserved)
	a.Li(asm.T1, 1)
	a.Sd(asm.T1, asm.S1, 0)
	a.Li(asm.S1, stored)
	a.Label("wait0")
	a.Ld(asm.T1, asm.S1, 0)
	a.Beqz(asm.T1, "wait0")
	a.ScD(asm.T2, asm.S0, asm.T0)
	a.Li(asm.S1, result)
	a.Sd(asm.T2, asm.S1, 0)
	a.Li(asm.T0, ExitBase)
	a.Li(asm.T1, ExitPass)
	a.Sd(asm.T1, asm.T0, 0)
	a.Label("hart1")
	a.Li(asm.S1, reserved)
	a.Label("wait1")
	a.Ld(asm.T1, asm.S1, 0)
	a.Beqz(asm.T1, "wait1")
	a.Li(asm.S0, shared)
	a.Li(asm.T0, 99)
	a.Sd(asm.T0, asm.S0, 0)
	a.Li(asm.S1, stored)
	a.Li(asm.T1, 1)
	a.Sd(asm.T1, asm.S1, 0)
	a.Label("hang")
	a.J("hang")
	return a.MustAssemble()
}

// TestCrossHartStoreKillsReservation is the regression for the cross-hart
// LR/SC bugfix: another hart's store to the reserved doubleword must
// invalidate the reservation, so the SC fails, under both schedulers. (In
// parallel mode hart 1's store and flag commit at the same barrier, so a
// visible flag implies the reservation kill already happened.)
func TestCrossHartStoreKillsReservation(t *testing.T) {
	const (
		shared   = DramBase + 0x4000
		reserved = DramBase + 0x4008
		stored   = DramBase + 0x4010
		result   = DramBase + 0x4018
	)
	for _, s := range schedNames {
		t.Run(s.name, func(t *testing.T) {
			m := newTestMachine(t, 2)
			m.Sched = s.kind
			m.Quantum = 64
			_ = m.LoadImage(DramBase, lrscProg(shared, reserved, stored, result))
			m.Reset(DramBase)
			m.Run(100_000)
			if ok, reason := m.Halted(); !ok || !strings.Contains(reason, "pass") {
				t.Fatalf("halted=%v reason=%q", ok, reason)
			}
			sc, _ := m.Bus.Load(result, 8)
			if sc == 0 {
				t.Error("SC succeeded despite a cross-hart store to the reserved doubleword")
			}
			v, _ := m.Bus.Load(shared, 8)
			if v != 99 {
				t.Errorf("shared doubleword = %d, want hart 1's store (99) to survive", v)
			}
		})
	}
}

// computeProg is a never-halting per-hart compute loop in disjoint memory
// windows: each hart hashes a counter and stores into its own window.
func computeProg() []byte {
	a := asm.New(DramBase)
	a.Li(asm.S0, DramBase+0x10000)
	a.Slli(asm.T0, asm.A0, 12)
	a.Add(asm.S0, asm.S0, asm.T0)
	a.Li(asm.T1, 0)
	a.Li(asm.T2, 7)
	a.Label("loop")
	a.Addi(asm.T1, asm.T1, 1)
	a.Mul(asm.T3, asm.T1, asm.T2)
	a.Xor(asm.T4, asm.T4, asm.T3)
	a.Sd(asm.T4, asm.S0, 0)
	a.Sd(asm.T1, asm.S0, 8)
	a.J("loop")
	return a.MustAssemble()
}

// hartEndState captures the architecturally visible per-hart end state a
// scheduler-equivalence check compares.
type hartEndState struct {
	pc, cycles, instret uint64
	regs                [32]uint64
	mem0, mem1          uint64
}

func captureEndState(m *Machine) []hartEndState {
	out := make([]hartEndState, len(m.Harts))
	for i, h := range m.Harts {
		out[i] = hartEndState{pc: h.PC, cycles: h.Cycles, instret: h.Instret, regs: h.Regs}
		base := uint64(DramBase+0x10000) + uint64(i)<<12
		out[i].mem0, _ = m.Bus.Load(base, 8)
		out[i].mem1, _ = m.Bus.Load(base+8, 8)
	}
	return out
}

// TestParBudgetMatchesSeq is the in-tree slice of the fuzzdiff equivalence
// gate: on a closed compute workload, RunParBudget(k) must land every hart
// on exactly the state k sequential machine steps produce, for any quantum,
// and twice in a row (run-to-run determinism).
func TestParBudgetMatchesSeq(t *testing.T) {
	const k = 2000
	prog := computeProg()

	ref := newTestMachine(t, 4)
	_ = ref.LoadImage(DramBase, prog)
	ref.Reset(DramBase)
	ref.Run(k)
	want := captureEndState(ref)

	for _, q := range []uint64{1, 7, 64, 1024} {
		for rep := 0; rep < 2; rep++ {
			m := newTestMachine(t, 4)
			m.Sched = SchedPar
			m.Quantum = q
			_ = m.LoadImage(DramBase, prog)
			m.Reset(DramBase)
			m.RunParBudget(k)
			got := captureEndState(m)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("quantum=%d rep=%d hart%d diverged from seq:\n got %+v\nwant %+v",
						q, rep, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParRunSmoke checks that the ordinary Run entry point works under the
// parallel scheduler end to end: a multi-hart program that halts through
// the exit device reaches the same verdict as under seq.
func TestParRunSmoke(t *testing.T) {
	a := asm.New(DramBase)
	a.BnezFar(asm.A0, "hang")
	for i := 0; i < 40; i++ {
		a.Nop()
	}
	a.Li(asm.T0, ExitBase)
	a.Li(asm.T1, ExitPass)
	a.Sd(asm.T1, asm.T0, 0)
	a.Label("hang")
	a.J("hang")
	prog := a.MustAssemble()

	for _, s := range schedNames {
		t.Run(s.name, func(t *testing.T) {
			m := newTestMachine(t, 4)
			m.Sched = s.kind
			_ = m.LoadImage(DramBase, prog)
			m.Reset(DramBase)
			m.Run(100_000)
			if ok, reason := m.Halted(); !ok || !strings.Contains(reason, "pass") {
				t.Errorf("halted=%v reason=%q", ok, reason)
			}
		})
	}
}
