package hart

import (
	"testing"

	"govfm/internal/asm"
	"govfm/internal/rv"
)

// These tests pin down the trap-virtualization status bits (TSR, TW, TVM),
// vectored trap entry, platform-custom CSRs, and the remaining A-extension
// and counter corners.

func TestTSRTrapsSretFromS(t *testing.T) {
	m, h := run(t, 3000, func(a *asm.Asm) {
		a.La(asm.T0, "handler")
		a.Csrw(rv.CSRMtvec, asm.T0)
		pmpOpen(a)
		// Set TSR, drop to S, attempt sret.
		a.Li(asm.T1, 1<<rv.MstatusTSR)
		a.Csrrs(asm.X0, rv.CSRMstatus, asm.T1)
		a.La(asm.T0, "svisor")
		a.Csrw(rv.CSRMepc, asm.T0)
		a.Li(asm.T3, 3<<11)
		a.Csrrc(asm.X0, rv.CSRMstatus, asm.T3)
		a.Li(asm.T3, 1<<11)
		a.Csrrs(asm.X0, rv.CSRMstatus, asm.T3)
		a.Mret()
		a.Label("svisor")
		a.Sret() // must trap: TSR
		a.Label("handler")
		a.Csrr(asm.S0, rv.CSRMcause)
		a.Csrr(asm.S1, rv.CSRMtval)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.S0] != rv.ExcIllegalInstr {
		t.Errorf("mcause %d", h.Regs[asm.S0])
	}
	if h.Regs[asm.S1] != uint64(rv.InstrSret) {
		t.Errorf("mtval %#x", h.Regs[asm.S1])
	}
}

func TestTWTrapsWfiFromS(t *testing.T) {
	m, h := run(t, 3000, func(a *asm.Asm) {
		a.La(asm.T0, "handler")
		a.Csrw(rv.CSRMtvec, asm.T0)
		pmpOpen(a)
		a.Li(asm.T1, 1<<rv.MstatusTW)
		a.Csrrs(asm.X0, rv.CSRMstatus, asm.T1)
		a.La(asm.T0, "svisor")
		a.Csrw(rv.CSRMepc, asm.T0)
		a.Li(asm.T3, 3<<11)
		a.Csrrc(asm.X0, rv.CSRMstatus, asm.T3)
		a.Li(asm.T3, 1<<11)
		a.Csrrs(asm.X0, rv.CSRMstatus, asm.T3)
		a.Mret()
		a.Label("svisor")
		a.Wfi() // must trap: TW
		a.Label("handler")
		a.Csrr(asm.S0, rv.CSRMcause)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.S0] != rv.ExcIllegalInstr {
		t.Errorf("mcause %d", h.Regs[asm.S0])
	}
}

func TestTVMTrapsSatpAndSfence(t *testing.T) {
	m, h := run(t, 3000, func(a *asm.Asm) {
		a.La(asm.T0, "handler")
		a.Csrw(rv.CSRMtvec, asm.T0)
		pmpOpen(a)
		a.Li(asm.T1, 1<<rv.MstatusTVM)
		a.Csrrs(asm.X0, rv.CSRMstatus, asm.T1)
		a.La(asm.T0, "svisor")
		a.Csrw(rv.CSRMepc, asm.T0)
		a.Li(asm.T3, 3<<11)
		a.Csrrc(asm.X0, rv.CSRMstatus, asm.T3)
		a.Li(asm.T3, 1<<11)
		a.Csrrs(asm.X0, rv.CSRMstatus, asm.T3)
		a.Li(asm.S2, 0) // trap counter
		a.Mret()
		a.Label("svisor")
		a.Csrr(asm.T0, rv.CSRSatp)  // must trap: TVM
		a.SfenceVMA(asm.X0, asm.X0) // must trap: TVM
		a.Li(asm.T6, 1)
		exit(a)
		a.Label("handler")
		// Count the trap, skip the instruction, return to S.
		a.Addi(asm.S2, asm.S2, 1)
		a.Csrr(asm.T4, rv.CSRMepc)
		a.Addi(asm.T4, asm.T4, 4)
		a.Csrw(rv.CSRMepc, asm.T4)
		a.Mret()
	})
	mustHalt(t, m)
	if h.Regs[asm.S2] != 2 {
		t.Errorf("TVM must trap both satp access and sfence.vma, got %d traps", h.Regs[asm.S2])
	}
}

func TestVectoredInterruptEntry(t *testing.T) {
	m, h := run(t, 200000, func(a *asm.Asm) {
		// mtvec vectored: base at "vtable", mode 1. The machine-timer
		// entry is at base + 4*7.
		a.La(asm.T0, "vtable")
		a.Ori(asm.T0, asm.T0, 1)
		a.Csrw(rv.CSRMtvec, asm.T0)
		a.Li(asm.S1, ClintBase+0xBFF8)
		a.Ld(asm.T1, asm.S1, 0)
		a.Addi(asm.T1, asm.T1, 5)
		a.Li(asm.S2, ClintBase+0x4000)
		a.Sd(asm.T1, asm.S2, 0)
		a.Li(asm.T2, 1<<rv.IntMTimer)
		a.Csrw(rv.CSRMie, asm.T2)
		a.Csrrsi(asm.X0, rv.CSRMstatus, 1<<rv.MstatusMIE)
		a.Label("wait")
		a.Wfi()
		a.J("wait")
		a.Align(128) // vector table alignment
		a.Label("vtable")
		for i := 0; i < 16; i++ {
			if i == rv.IntMTimer {
				a.J("timer_entry")
			} else {
				a.J("wrong_entry")
			}
		}
		a.Label("timer_entry")
		a.Li(asm.S3, 0x600D)
		exit(a)
		a.Label("wrong_entry")
		a.Li(asm.T6, ExitBase)
		a.Li(asm.T5, ExitFail)
		a.Sd(asm.T5, asm.T6, 0)
	})
	mustHalt(t, m)
	if h.Regs[asm.S3] != 0x600D {
		t.Error("vectored interrupt must land on the per-cause entry")
	}
}

func TestVectoredExceptionsUseBase(t *testing.T) {
	m, h := run(t, 3000, func(a *asm.Asm) {
		a.La(asm.T0, "vtable")
		a.Ori(asm.T0, asm.T0, 1)
		a.Csrw(rv.CSRMtvec, asm.T0)
		a.Word(0xFFFFFFFF) // illegal: exceptions vector to base even in vectored mode
		a.Align(128)
		a.Label("vtable")
		a.Li(asm.S3, 0xBA5E)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.S3] != 0xBA5E {
		t.Error("exceptions must use the vector base")
	}
}

func TestCustomCSRsOnP550(t *testing.T) {
	cfg := PremierP550()
	cfg.Harts = 1
	m, err := NewMachine(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	a := asm.New(DramBase)
	// Write and read back a custom speculation-control CSR.
	a.Li(asm.T0, 0x1234)
	a.Csrw(0x7C0, asm.T0)
	a.Csrr(asm.A0, 0x7C0)
	a.Csrr(asm.A1, 0x7C3) // err_status reads back zero
	exit(a)
	if err := m.LoadImage(DramBase, a.MustAssemble()); err != nil {
		t.Fatal(err)
	}
	m.Reset(DramBase)
	m.Run(1000)
	mustHalt(t, m)
	if m.Harts[0].Regs[asm.A0] != 0x1234 {
		t.Errorf("custom CSR readback %#x", m.Harts[0].Regs[asm.A0])
	}
	if m.Harts[0].Regs[asm.A1] != 0 {
		t.Errorf("err_status = %#x", m.Harts[0].Regs[asm.A1])
	}
}

func TestCustomCSRsAbsentOnVF2(t *testing.T) {
	m, h := run(t, 2000, func(a *asm.Asm) {
		a.La(asm.T0, "handler")
		a.Csrw(rv.CSRMtvec, asm.T0)
		a.Csrr(asm.A0, 0x7C0) // not implemented on the VisionFive 2
		a.Label("handler")
		a.Csrr(asm.S0, rv.CSRMcause)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.S0] != rv.ExcIllegalInstr {
		t.Errorf("mcause %d", h.Regs[asm.S0])
	}
}

func TestLRSCReservationInvalidation(t *testing.T) {
	m, h := run(t, 2000, func(a *asm.Asm) {
		a.Li(asm.S0, DramBase+0x2000)
		a.Li(asm.T0, 7)
		a.Sd(asm.T0, asm.S0, 0)
		// LR, then an intervening store to the same address kills the
		// reservation: SC must fail.
		a.LrD(asm.T1, asm.S0)
		a.Li(asm.T2, 9)
		a.Sd(asm.T2, asm.S0, 0)
		a.Li(asm.T3, 11)
		a.ScD(asm.A0, asm.S0, asm.T3) // a0 = 1 (failure)
		a.Ld(asm.A1, asm.S0, 0)       // memory holds 9
		// Word-sized LR/SC pair succeeds.
		a.LrW(asm.T1, asm.S0)
		a.Li(asm.T3, 13)
		a.ScW(asm.A2, asm.S0, asm.T3) // a2 = 0 (success)
		a.Lw(asm.A3, asm.S0, 0)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.A0] != 1 {
		t.Error("sc after intervening store must fail")
	}
	if h.Regs[asm.A1] != 9 {
		t.Errorf("memory = %d", h.Regs[asm.A1])
	}
	if h.Regs[asm.A2] != 0 || h.Regs[asm.A3] != 13 {
		t.Error("word-sized lr/sc pair must succeed")
	}
}

func TestWordAMOs(t *testing.T) {
	m, h := run(t, 2000, func(a *asm.Asm) {
		a.Li(asm.S0, DramBase+0x2000)
		a.Li(asm.T0, 0xFFFFFFFF) // -1 as a word
		a.Sw(asm.T0, asm.S0, 0)
		a.Li(asm.T1, 1)
		a.AmoaddW(asm.A0, asm.S0, asm.T1) // returns sign-extended -1, mem=0
		a.Lw(asm.A1, asm.S0, 0)
		a.Li(asm.T2, 0x55)
		a.AmoswapW(asm.A2, asm.S0, asm.T2) // returns 0, mem=0x55
		a.Lw(asm.A3, asm.S0, 0)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.A0] != ^uint64(0) {
		t.Errorf("amoadd.w old value %#x, want sign-extended -1", h.Regs[asm.A0])
	}
	if h.Regs[asm.A1] != 0 {
		t.Errorf("memory after amoadd.w = %#x", h.Regs[asm.A1])
	}
	if h.Regs[asm.A2] != 0 || h.Regs[asm.A3] != 0x55 {
		t.Error("amoswap.w wrong")
	}
}

func TestMisalignedAMOAlwaysTraps(t *testing.T) {
	// AMOs require natural alignment even on HW-misaligned platforms.
	cfg := RVA23()
	cfg.Harts = 1
	m, err := NewMachine(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	a := asm.New(DramBase)
	a.La(asm.T0, "handler")
	a.Csrw(rv.CSRMtvec, asm.T0)
	a.Li(asm.S0, DramBase+0x2001)
	a.Li(asm.T1, 1)
	a.AmoaddD(asm.A0, asm.S0, asm.T1)
	a.Label("handler")
	a.Csrr(asm.S1, rv.CSRMcause)
	exit(a)
	if err := m.LoadImage(DramBase, a.MustAssemble()); err != nil {
		t.Fatal(err)
	}
	m.Reset(DramBase)
	m.Run(1000)
	mustHalt(t, m)
	if m.Harts[0].Regs[asm.S1] != rv.ExcLoadAddrMisaligned {
		t.Errorf("mcause %d, want misaligned", m.Harts[0].Regs[asm.S1])
	}
}

func TestCounterWriteFromM(t *testing.T) {
	m, h := run(t, 2000, func(a *asm.Asm) {
		a.Li(asm.T0, 1_000_000)
		a.Csrw(rv.CSRMcycle, asm.T0)
		a.Csrr(asm.A0, rv.CSRMcycle)
		a.Li(asm.T0, 500)
		a.Csrw(rv.CSRMinstret, asm.T0)
		a.Csrr(asm.A1, rv.CSRMinstret)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.A0] < 1_000_000 {
		t.Errorf("mcycle after write = %d", h.Regs[asm.A0])
	}
	if h.Regs[asm.A1] < 500 || h.Regs[asm.A1] > 520 {
		t.Errorf("minstret after write = %d", h.Regs[asm.A1])
	}
}
