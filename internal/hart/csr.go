package hart

import (
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// CSRFile holds the hart's control and status registers. WARL legalization
// is applied on writes, so stored values are always architecturally legal.
// mip is split into a software-writable part (mipSW) and hardware lines
// (hwLines, driven by the CLINT/PLIC each step); reads compose the two.
type CSRFile struct {
	cfg *Config

	Mstatus       uint64
	Misa          uint64
	Medeleg       uint64
	Mideleg       uint64
	Mie           uint64
	Mtvec         uint64
	Mcounteren    uint64
	Menvcfg       uint64
	Mscratch      uint64
	Mepc          uint64
	Mcause        uint64
	Mtval         uint64
	Mtinst        uint64
	Mtval2        uint64
	Mseccfg       uint64
	Mcountinhibit uint64

	Stvec      uint64
	Scounteren uint64
	Senvcfg    uint64
	Sscratch   uint64
	Sepc       uint64
	Scause     uint64
	Stval      uint64
	Satp       uint64
	Stimecmp   uint64

	// Hypervisor-extension state (HasH profiles). Hip, Vsie, Vsip, Hgeie,
	// and Henvcfg are raw storage only: their architectural values are
	// views computed from hvip/hie/hideleg (see Hip/Vsie/Vsip), and the
	// fields stay so world-switch save/restore and the verif field walkers
	// keep a stable layout.
	Hstatus, Hedeleg, Hideleg, Hie, Hcounteren, Hgeie uint64
	Htval, Hip, Hvip, Htinst, Hgatp, Henvcfg          uint64
	Vsstatus, Vsie, Vstvec, Vsscratch                 uint64
	Vsepc, Vscause, Vstval, Vsip, Vsatp               uint64

	Custom map[uint16]uint64

	mipSW   uint64 // software-writable mip bits (SSIP, STIP, SEIP)
	hwLines uint64 // interrupt lines from CLINT/PLIC (MSIP, MTIP, MEIP, SEIP)

	PMP *pmp.File
}

// Writable-bit masks.
const (
	mstatusWritable = uint64(1)<<rv.MstatusSIE | 1<<rv.MstatusMIE |
		1<<rv.MstatusSPIE | 1<<rv.MstatusMPIE | 1<<rv.MstatusSPP |
		3<<rv.MstatusMPPLo | 1<<rv.MstatusMPRV | 1<<rv.MstatusSUM |
		1<<rv.MstatusMXR | 1<<rv.MstatusTVM | 1<<rv.MstatusTW |
		1<<rv.MstatusTSR
	medelegMask = uint64(0xB3FF) // all exceptions except 10, 11, 14
	midelegMask = rv.SIntMask
	mieMask     = rv.MIntMask | rv.SIntMask
	mipSWMask   = rv.SIntMask // SSIP, STIP, SEIP writable by M-mode
	uxlFixed    = uint64(2)<<rv.MstatusUXLLo | 2<<rv.MstatusSXLLo
)

// Hypervisor-extension writable-bit masks (HasH profiles).
const (
	// mstatus gains MPV and GVA.
	mstatusHWritable = uint64(1)<<rv.MstatusMPV | 1<<rv.MstatusGVA
	// medeleg gains ecall-from-VS (10) and the guest-page-fault /
	// virtual-instruction causes (20-23).
	medelegHMask = medelegMask | 1<<rv.ExcEcallFromVS |
		1<<rv.ExcInstrGuestPageFault | 1<<rv.ExcLoadGuestPageFault |
		1<<rv.ExcVirtualInstr | 1<<rv.ExcStoreGuestPageFault
	// hstatus writable fields: GVA, SPV, SPVP, HU, VTVM, VTW, VTSR.
	// VSXL is read-only 64-bit; VGEIN/VSBE hardwired 0.
	hstatusMask = uint64(1)<<rv.HstatusGVA | 1<<rv.HstatusSPV |
		1<<rv.HstatusSPVP | 1<<rv.HstatusHU | 1<<rv.HstatusVTVM |
		1<<rv.HstatusVTW | 1<<rv.HstatusVTSR
	hstatusVSXL = uint64(2) << 32
	// hedeleg: causes a hypervisor may delegate onward to VS (no ecall-
	// from-S/VS/M, no guest-page faults, no virtual instruction).
	hedelegMask = uint64(0xB1FF)
	// vsstatus writable fields; UXL read-only 64-bit.
	vsstatusMask = uint64(1)<<rv.MstatusSIE | 1<<rv.MstatusSPIE |
		1<<rv.MstatusSPP | 1<<rv.MstatusSUM | 1<<rv.MstatusMXR
	vsstatusUXL = uint64(2) << rv.MstatusUXLLo
)

func newCSRFile(cfg *Config) CSRFile {
	misa := rv.MisaMXL64 | rv.MisaI | rv.MisaM | rv.MisaA | rv.MisaS | rv.MisaU
	if cfg.HasH {
		misa |= rv.MisaH
	}
	c := CSRFile{
		cfg:     cfg,
		Misa:    misa,
		Mstatus: uxlFixed,
		PMP:     pmp.NewFile(cfg.NumPMP),
		Custom:  make(map[uint16]uint64),
	}
	if cfg.HasH {
		// The VS interrupt bits of mideleg read as ones (always delegated
		// past M); hstatus.VSXL and vsstatus.UXL are read-only 64-bit.
		c.Mideleg = rv.VSIntMask
		c.Hstatus = hstatusVSXL
		c.Vsstatus = vsstatusUXL
	}
	for _, n := range cfg.CustomCSRs {
		c.Custom[n] = 0
	}
	return c
}

// SetHWLines installs the interrupt lines asserted by the platform
// interrupt controllers this cycle.
func (c *CSRFile) SetHWLines(lines uint64) {
	c.hwLines = lines & (rv.MIntMask | 1<<rv.IntSExt)
}

// HWLines returns the currently asserted lines.
func (c *CSRFile) HWLines() uint64 { return c.hwLines }

// Mip composes the architectural mip value. time is the current mtime,
// needed for the Sstc comparator when enabled.
func (c *CSRFile) Mip(time uint64) uint64 {
	v := c.mipSW | c.hwLines
	if c.SstcEnabled() {
		v &^= 1 << rv.IntSTimer
		if time >= c.Stimecmp {
			v |= 1 << rv.IntSTimer
		}
	}
	return v
}

// SetMip writes the software-writable mip bits (M-mode view).
func (c *CSRFile) SetMip(v uint64) {
	mask := mipSWMask
	if c.SstcEnabled() {
		mask &^= 1 << rv.IntSTimer // STIP is read-only under Sstc
	}
	c.mipSW = c.mipSW&^mask | v&mask
}

// SstcEnabled reports whether the Sstc stimecmp comparator is active.
func (c *CSRFile) SstcEnabled() bool {
	return c.cfg.HasSstc && c.Menvcfg&(1<<63) != 0
}

// mstatusMask returns the writable mstatus bits for this hart.
func (c *CSRFile) mstatusMask() uint64 {
	if c.cfg.HasH {
		return mstatusWritable | mstatusHWritable
	}
	return mstatusWritable
}

// MedelegMask returns the writable medeleg bits for this hart.
func (c *CSRFile) MedelegMask() uint64 {
	if c.cfg.HasH {
		return medelegHMask
	}
	return medelegMask
}

// WriteMstatus applies the WARL rules for mstatus.
func (c *CSRFile) WriteMstatus(v uint64) {
	mask := c.mstatusMask()
	next := c.Mstatus&^mask | v&mask
	// MPP must hold a supported mode; an illegal write keeps the old value.
	if !rv.MPP(next).Valid() {
		next = rv.WithMPP(next, rv.MPP(c.Mstatus))
	}
	// UXL/SXL are read-only 64-bit; FS/VS/XS hardwired 0 (no F/V), so SD=0.
	next = next&^(3<<rv.MstatusUXLLo|3<<rv.MstatusSXLLo) | uxlFixed
	c.Mstatus = next
}

// WriteSstatus applies a supervisor-view write to mstatus.
func (c *CSRFile) WriteSstatus(v uint64) {
	c.WriteMstatus(c.Mstatus&^rv.SstatusMask | v&rv.SstatusMask)
}

// Sstatus returns the supervisor view of mstatus.
func (c *CSRFile) Sstatus() uint64 { return c.Mstatus & rv.SstatusMask }

// legalizeTvec masks a tvec write: only direct (0) and vectored (1) modes
// are supported; reserved modes legalize to direct.
func legalizeTvec(v uint64) uint64 {
	if v&3 > 1 {
		v &^= 3
	}
	return v
}

// legalizeEpc clears the low bits of an epc write (IALIGN=32).
func legalizeEpc(v uint64) uint64 { return v &^ 3 }

// WriteSatp applies the WARL rule: writes programming an unsupported mode
// are ignored entirely.
func (c *CSRFile) WriteSatp(v uint64) {
	switch rv.SatpMode(v) {
	case rv.SatpModeBare, rv.SatpModeSv39:
		c.Satp = v
	}
}

// Sie returns the supervisor view of mie.
func (c *CSRFile) Sie() uint64 { return c.Mie & c.Mideleg & rv.SIntMask }

// WriteSie updates the delegated bits of mie.
func (c *CSRFile) WriteSie(v uint64) {
	// The VS bits forced into mideleg stay out of reach of sie.
	mask := c.Mideleg & rv.SIntMask
	c.Mie = c.Mie&^mask | v&mask
}

// Sip returns the supervisor view of mip.
func (c *CSRFile) Sip(time uint64) uint64 {
	return c.Mip(time) & c.Mideleg & rv.SIntMask
}

// WriteSip updates the S-writable bit of mip (only SSIP is S-writable).
func (c *CSRFile) WriteSip(v uint64) {
	mask := c.Mideleg & (1 << rv.IntSSoft)
	c.mipSW = c.mipSW&^mask | v&mask
}

// Hypervisor-extension CSR semantics. Writes legalize; hip/vsie/vsip are
// views over hvip/hie/hideleg (this machine has no guest external
// interrupts or VS timer lines, so hvip is the only VS interrupt source
// and hip mirrors it exactly).

// WriteMideleg applies the WARL rule: S bits writable, VS bits read-only
// one when the hypervisor extension is present.
func (c *CSRFile) WriteMideleg(v uint64) {
	c.Mideleg = v & midelegMask
	if c.cfg.HasH {
		c.Mideleg |= rv.VSIntMask
	}
}

// WriteHstatus applies the WARL rules for hstatus.
func (c *CSRFile) WriteHstatus(v uint64) {
	c.Hstatus = v&hstatusMask | hstatusVSXL
}

// WriteVsstatus applies the WARL rules for vsstatus.
func (c *CSRFile) WriteVsstatus(v uint64) {
	c.Vsstatus = v&vsstatusMask | vsstatusUXL
}

// WriteHgatp applies the WARL rules: only Bare and Sv39x4 are supported
// (writes of other modes are ignored), ASID bits 59:58 beyond this
// implementation's VMIDLEN read as zero, and the root is 16KiB-aligned
// (PPN[1:0] read-only zero).
func (c *CSRFile) WriteHgatp(v uint64) {
	switch rv.SatpMode(v) {
	case rv.SatpModeBare, rv.HgatpModeSv39x4:
		c.Hgatp = v &^ (3<<58 | 3)
	}
}

// WriteVsatp applies the satp WARL rule to vsatp.
func (c *CSRFile) WriteVsatp(v uint64) {
	switch rv.SatpMode(v) {
	case rv.SatpModeBare, rv.SatpModeSv39:
		c.Vsatp = v
	}
}

// HipView returns the architectural hip value: the VS interrupt bits
// pending in hvip (VSEIP/VSTIP/VSSIP aliases).
func (c *CSRFile) HipView() uint64 { return c.Hvip & rv.VSIntMask }

// WriteHipView writes hip: only VSSIP is writable, aliasing hvip.VSSIP.
func (c *CSRFile) WriteHipView(v uint64) {
	c.Hvip = c.Hvip&^(1<<rv.IntVSSoft) | v&(1<<rv.IntVSSoft)
}

// VsieView returns the architectural vsie value: the hideleg-selected VS
// bits of hie, shifted to S positions.
func (c *CSRFile) VsieView() uint64 {
	return (c.Hie & c.Hideleg & rv.VSIntMask) >> 1
}

// WriteVsieView writes vsie, updating the delegated VS bits of hie.
func (c *CSRFile) WriteVsieView(v uint64) {
	mask := c.Hideleg & rv.VSIntMask
	c.Hie = c.Hie&^mask | (v<<1)&mask
}

// VsipView returns the architectural vsip value: delegated hvip bits at
// S positions.
func (c *CSRFile) VsipView() uint64 {
	return (c.Hvip & c.Hideleg & rv.VSIntMask) >> 1
}

// WriteVsipView writes vsip: only VSSIP (via hideleg) is writable.
func (c *CSRFile) WriteVsipView(v uint64) {
	mask := c.Hideleg & (1 << rv.IntVSSoft)
	c.Hvip = c.Hvip&^mask | (v<<1)&mask
}
