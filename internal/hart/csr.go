package hart

import (
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// CSRFile holds the hart's control and status registers. WARL legalization
// is applied on writes, so stored values are always architecturally legal.
// mip is split into a software-writable part (mipSW) and hardware lines
// (hwLines, driven by the CLINT/PLIC each step); reads compose the two.
type CSRFile struct {
	cfg *Config

	Mstatus       uint64
	Misa          uint64
	Medeleg       uint64
	Mideleg       uint64
	Mie           uint64
	Mtvec         uint64
	Mcounteren    uint64
	Menvcfg       uint64
	Mscratch      uint64
	Mepc          uint64
	Mcause        uint64
	Mtval         uint64
	Mtinst        uint64
	Mtval2        uint64
	Mseccfg       uint64
	Mcountinhibit uint64

	Stvec      uint64
	Scounteren uint64
	Senvcfg    uint64
	Sscratch   uint64
	Sepc       uint64
	Scause     uint64
	Stval      uint64
	Satp       uint64
	Stimecmp   uint64

	// Hypervisor-extension shadow state (P550 profile; used by the ACE
	// policy for confidential-VM world switches).
	Hstatus, Hedeleg, Hideleg, Hie, Hcounteren, Hgeie uint64
	Htval, Hip, Hvip, Htinst, Hgatp, Henvcfg          uint64
	Vsstatus, Vsie, Vstvec, Vsscratch                 uint64
	Vsepc, Vscause, Vstval, Vsip, Vsatp               uint64

	Custom map[uint16]uint64

	mipSW   uint64 // software-writable mip bits (SSIP, STIP, SEIP)
	hwLines uint64 // interrupt lines from CLINT/PLIC (MSIP, MTIP, MEIP, SEIP)

	PMP *pmp.File
}

// Writable-bit masks.
const (
	mstatusWritable = uint64(1)<<rv.MstatusSIE | 1<<rv.MstatusMIE |
		1<<rv.MstatusSPIE | 1<<rv.MstatusMPIE | 1<<rv.MstatusSPP |
		3<<rv.MstatusMPPLo | 1<<rv.MstatusMPRV | 1<<rv.MstatusSUM |
		1<<rv.MstatusMXR | 1<<rv.MstatusTVM | 1<<rv.MstatusTW |
		1<<rv.MstatusTSR
	medelegMask = uint64(0xB3FF) // all exceptions except 10, 11, 14
	midelegMask = rv.SIntMask
	mieMask     = rv.MIntMask | rv.SIntMask
	mipSWMask   = rv.SIntMask // SSIP, STIP, SEIP writable by M-mode
	uxlFixed    = uint64(2)<<rv.MstatusUXLLo | 2<<rv.MstatusSXLLo
)

func newCSRFile(cfg *Config) CSRFile {
	misa := rv.MisaMXL64 | rv.MisaI | rv.MisaM | rv.MisaA | rv.MisaS | rv.MisaU
	if cfg.HasH {
		misa |= rv.MisaH
	}
	c := CSRFile{
		cfg:     cfg,
		Misa:    misa,
		Mstatus: uxlFixed,
		PMP:     pmp.NewFile(cfg.NumPMP),
		Custom:  make(map[uint16]uint64),
	}
	for _, n := range cfg.CustomCSRs {
		c.Custom[n] = 0
	}
	return c
}

// SetHWLines installs the interrupt lines asserted by the platform
// interrupt controllers this cycle.
func (c *CSRFile) SetHWLines(lines uint64) {
	c.hwLines = lines & (rv.MIntMask | 1<<rv.IntSExt)
}

// HWLines returns the currently asserted lines.
func (c *CSRFile) HWLines() uint64 { return c.hwLines }

// Mip composes the architectural mip value. time is the current mtime,
// needed for the Sstc comparator when enabled.
func (c *CSRFile) Mip(time uint64) uint64 {
	v := c.mipSW | c.hwLines
	if c.SstcEnabled() {
		v &^= 1 << rv.IntSTimer
		if time >= c.Stimecmp {
			v |= 1 << rv.IntSTimer
		}
	}
	return v
}

// SetMip writes the software-writable mip bits (M-mode view).
func (c *CSRFile) SetMip(v uint64) {
	mask := mipSWMask
	if c.SstcEnabled() {
		mask &^= 1 << rv.IntSTimer // STIP is read-only under Sstc
	}
	c.mipSW = c.mipSW&^mask | v&mask
}

// SstcEnabled reports whether the Sstc stimecmp comparator is active.
func (c *CSRFile) SstcEnabled() bool {
	return c.cfg.HasSstc && c.Menvcfg&(1<<63) != 0
}

// WriteMstatus applies the WARL rules for mstatus.
func (c *CSRFile) WriteMstatus(v uint64) {
	next := c.Mstatus&^mstatusWritable | v&mstatusWritable
	// MPP must hold a supported mode; an illegal write keeps the old value.
	if !rv.MPP(next).Valid() {
		next = rv.WithMPP(next, rv.MPP(c.Mstatus))
	}
	// UXL/SXL are read-only 64-bit; FS/VS/XS hardwired 0 (no F/V), so SD=0.
	next = next&^(3<<rv.MstatusUXLLo|3<<rv.MstatusSXLLo) | uxlFixed
	c.Mstatus = next
}

// WriteSstatus applies a supervisor-view write to mstatus.
func (c *CSRFile) WriteSstatus(v uint64) {
	c.WriteMstatus(c.Mstatus&^rv.SstatusMask | v&rv.SstatusMask)
}

// Sstatus returns the supervisor view of mstatus.
func (c *CSRFile) Sstatus() uint64 { return c.Mstatus & rv.SstatusMask }

// legalizeTvec masks a tvec write: only direct (0) and vectored (1) modes
// are supported; reserved modes legalize to direct.
func legalizeTvec(v uint64) uint64 {
	if v&3 > 1 {
		v &^= 3
	}
	return v
}

// legalizeEpc clears the low bits of an epc write (IALIGN=32).
func legalizeEpc(v uint64) uint64 { return v &^ 3 }

// WriteSatp applies the WARL rule: writes programming an unsupported mode
// are ignored entirely.
func (c *CSRFile) WriteSatp(v uint64) {
	switch rv.SatpMode(v) {
	case rv.SatpModeBare, rv.SatpModeSv39:
		c.Satp = v
	}
}

// Sie returns the supervisor view of mie.
func (c *CSRFile) Sie() uint64 { return c.Mie & c.Mideleg }

// WriteSie updates the delegated bits of mie.
func (c *CSRFile) WriteSie(v uint64) {
	c.Mie = c.Mie&^c.Mideleg | v&c.Mideleg
}

// Sip returns the supervisor view of mip.
func (c *CSRFile) Sip(time uint64) uint64 { return c.Mip(time) & c.Mideleg }

// WriteSip updates the S-writable bit of mip (only SSIP is S-writable).
func (c *CSRFile) WriteSip(v uint64) {
	mask := c.Mideleg & (1 << rv.IntSSoft)
	c.mipSW = c.mipSW&^mask | v&mask
}
