package hart

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"govfm/internal/asm"
	"govfm/internal/rv"
)

// Fast-vs-slow lockstep tests for the host acceleration caches. Each test
// assembles one program, runs it on two identical machines — host caches
// on and off — comparing the complete architectural state after every
// step, and targets a specific invalidation edge: self-modifying code,
// page-table rewrites under Sv39 (with and without sfence.vma), PMP
// reconfiguration under MPRV, and snapshot restore. The reference machine
// has no TLB and no decode cache, so the fast configuration must behave as
// if every fetch were decoded and every access walked fresh.

// fastSlowPair builds two identical single-hart machines loaded with body,
// one with host caches on and one with them off.
func fastSlowPair(t *testing.T, body func(a *asm.Asm)) (fast, slow *Machine) {
	t.Helper()
	a := asm.New(DramBase)
	body(a)
	img, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(on bool) *Machine {
		cfg := VisionFive2()
		cfg.Harts = 1
		m, err := NewMachine(cfg, 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadImage(DramBase, img); err != nil {
			t.Fatal(err)
		}
		m.Reset(DramBase)
		m.SetFastPath(on)
		return m
	}
	return mk(true), mk(false)
}

// runLockstep steps both machines together, comparing hart 0's state after
// every step, and returns the fast machine's hart for final assertions.
func runLockstep(t *testing.T, fast, slow *Machine, maxSteps int) *Hart {
	t.Helper()
	hf, hs := fast.Harts[0], slow.Harts[0]
	for step := 0; step < maxSteps; step++ {
		fh, _ := fast.Halted()
		sh, _ := slow.Halted()
		if fh != sh {
			t.Fatalf("step %d: halted fast=%v slow=%v", step, fh, sh)
		}
		if fh {
			break
		}
		fast.Step()
		slow.Step()
		if hf.PC != hs.PC || hf.Mode != hs.Mode {
			t.Fatalf("step %d: pc/mode fast=%#x/%v slow=%#x/%v",
				step, hf.PC, hf.Mode, hs.PC, hs.Mode)
		}
		if hf.Cycles != hs.Cycles || hf.Instret != hs.Instret {
			t.Fatalf("step %d (pc=%#x): counters fast=%d/%d slow=%d/%d",
				step, hf.PC, hf.Cycles, hf.Instret, hs.Cycles, hs.Instret)
		}
		if hf.Regs != hs.Regs {
			for i := range hf.Regs {
				if hf.Regs[i] != hs.Regs[i] {
					t.Fatalf("step %d (pc=%#x): x%d fast=%#x slow=%#x",
						step, hf.PC, i, hf.Regs[i], hs.Regs[i])
				}
			}
		}
	}
	if ok, reason := fast.Halted(); !ok || reason != "guest-exit-pass" {
		t.Fatalf("fast machine did not exit cleanly: %v %q (pc=%#x)", ok, reason, hf.PC)
	}
	mustHalt(t, slow)
	return hf
}

// encodeOne assembles a single instruction and returns its word.
func encodeOne(t *testing.T, emit func(a *asm.Asm)) uint32 {
	t.Helper()
	a := asm.New(0)
	emit(a)
	img, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return binary.LittleEndian.Uint32(img)
}

// selfModifyBody emits a loop whose first instruction is overwritten on the
// first pass: pass 1 executes "addi a0,a0,1" then patches the slot with
// "addi a0,a0,100", so pass 2 must fetch the new encoding. fence controls
// whether an explicit fence.i follows the patch (both must work: the
// simulated reference machine fetches from memory every cycle).
func selfModifyBody(patched uint32, fence bool) func(a *asm.Asm) {
	return func(a *asm.Asm) {
		a.Li(asm.A0, 0)
		a.Li(asm.S1, 2)
		a.La(asm.T0, "target")
		a.Li(asm.T1, uint64(patched))
		a.Label("loop")
		a.Label("target")
		a.Addi(asm.A0, asm.A0, 1)
		a.Sw(asm.T1, asm.T0, 0)
		if fence {
			a.FenceI()
		}
		a.Addi(asm.S1, asm.S1, -1)
		a.Bnez(asm.S1, "loop")
		exit(a)
	}
}

func TestFastPathSelfModifyingCode(t *testing.T) {
	patched := encodeOne(t, func(a *asm.Asm) { a.Addi(asm.A0, asm.A0, 100) })
	for _, tc := range []struct {
		name  string
		fence bool
	}{{"no-fence", false}, {"fence-i", true}} {
		t.Run(tc.name, func(t *testing.T) {
			fast, slow := fastSlowPair(t, selfModifyBody(patched, tc.fence))
			h := runLockstep(t, fast, slow, 100)
			if h.Regs[asm.A0] != 101 {
				t.Errorf("a0 = %d, want 101 (stale decode executed?)", h.Regs[asm.A0])
			}
		})
	}
}

// Sv39 scaffolding: a three-level table mapping testVA to frame P1 plus a
// 1 GiB identity gigapage over DRAM so S-mode keeps executing the test
// image at its physical addresses (and can rewrite its own page tables
// through the identity window).
const (
	ptRoot  = DramBase + 0x10000
	ptL1    = DramBase + 0x11000
	ptL0    = DramBase + 0x12000
	frameP1 = DramBase + 0x14000
	frameP2 = DramBase + 0x15000
	testVA  = 0x40_0000 // VPN2=0, VPN1=2, VPN0=0
)

const (
	pteV    = 1 << 0
	pteRWAD = pteV | 1<<1 | 1<<2 | 1<<6 | 1<<7
	pteRWX  = pteRWAD | 1<<3
)

func pte(pa uint64, flags uint64) uint64 { return pa>>12<<10 | flags }

// sv39Prologue emits the M-mode setup: PMP open, page tables and data
// frames written, mtvec pointing at an exit handler, then an mret into
// S-mode at "smain" with satp enabled.
func sv39Prologue(a *asm.Asm) {
	pmpOpen(a)
	for _, w := range []struct{ addr, val uint64 }{
		{ptRoot + 0*8, pte(ptL1, pteV)},
		{ptRoot + 2*8, pte(DramBase&^(1<<30-1), pteRWX)}, // 1 GiB identity leaf
		{ptL1 + 2*8, pte(ptL0, pteV)},
		{ptL0 + 0*8, pte(frameP1, pteRWAD)},
		{frameP1, 111},
		{frameP2, 222},
	} {
		a.Li(asm.T0, w.addr)
		a.Li(asm.T1, w.val)
		a.Sd(asm.T1, asm.T0, 0)
	}
	a.La(asm.T0, "mtrap")
	a.Csrw(rv.CSRMtvec, asm.T0)
	a.Li(asm.T0, 3<<11) // MPP := S
	a.Csrrc(asm.X0, rv.CSRMstatus, asm.T0)
	a.Li(asm.T0, 1<<11)
	a.Csrrs(asm.X0, rv.CSRMstatus, asm.T0)
	a.La(asm.T0, "smain")
	a.Csrw(rv.CSRMepc, asm.T0)
	a.Li(asm.T0, 8<<60|ptRoot>>12)
	a.Csrw(rv.CSRSatp, asm.T0)
	a.Mret()
}

func TestFastPathSv39PTERewrite(t *testing.T) {
	for _, tc := range []struct {
		name   string
		sfence func(a *asm.Asm)
	}{
		{"sfence-global", func(a *asm.Asm) { a.SfenceVMA(asm.X0, asm.X0) }},
		{"sfence-vaddr", func(a *asm.Asm) { a.SfenceVMA(asm.S2, asm.X0) }},
		// The reference machine walks on every access, so the new mapping
		// must be visible even without an sfence; the bus page watch is
		// what keeps the TLB honest here.
		{"no-sfence", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fast, slow := fastSlowPair(t, func(a *asm.Asm) {
				sv39Prologue(a)
				a.Label("smain")
				a.Li(asm.S2, testVA)
				a.Ld(asm.A0, asm.S2, 0) // 111, fills the TLB
				a.Li(asm.T0, ptL0)      // rewrite the leaf through the identity map
				a.Li(asm.T1, pte(frameP2, pteRWAD))
				a.Sd(asm.T1, asm.T0, 0)
				if tc.sfence != nil {
					tc.sfence(a)
				}
				a.Ld(asm.A1, asm.S2, 0) // must now read 222
				a.Ecall()
				a.Label("mtrap")
				exit(a)
			})
			h := runLockstep(t, fast, slow, 300)
			if h.Regs[asm.A0] != 111 || h.Regs[asm.A1] != 222 {
				t.Errorf("a0/a1 = %d/%d, want 111/222 (stale translation?)",
					h.Regs[asm.A0], h.Regs[asm.A1])
			}
		})
	}
}

func TestFastPathPMPReconfigUnderMPRV(t *testing.T) {
	const scratch = DramBase + 0x16000
	napot := uint64(scratch)>>2 | 4096>>3 - 1
	fast, slow := fastSlowPair(t, func(a *asm.Asm) {
		a.La(asm.T0, "mtrap")
		a.Csrw(rv.CSRMtvec, asm.T0)
		pmpOpen(a) // entry 7: allow-all backstop
		a.Li(asm.T0, scratch)
		a.Li(asm.T1, 77)
		a.Sd(asm.T1, asm.T0, 0)
		// Entry 0: R|W NAPOT over the scratch page.
		a.Li(asm.T1, napot)
		a.Csrw(rv.CSRPmpaddr0, asm.T1)
		a.Li(asm.T1, 0x1F<<56|0x1B) // keep entry 7; entry 0 = R|W|NAPOT
		a.Csrw(rv.CSRPmpcfg0, asm.T1)
		// MPRV with MPP=U: loads/stores check U-mode permissions.
		a.Li(asm.T1, 3<<11)
		a.Csrrc(asm.X0, rv.CSRMstatus, asm.T1) // MPP := U
		a.Li(asm.T1, 1<<17)
		a.Csrrs(asm.X0, rv.CSRMstatus, asm.T1) // MPRV := 1
		a.Ld(asm.A0, asm.T0, 0)                // allowed by entry 0
		// Revoke: entry 0 keeps matching but loses R|W, so the next load
		// must fault — the flattened PMP cache has to rebuild mid-run.
		a.Li(asm.T1, 0x1F<<56|0x18)
		a.Csrw(rv.CSRPmpcfg0, asm.T1)
		a.Ld(asm.A1, asm.T0, 0) // traps: load access fault
		exit(a)                 // unreachable
		a.Label("mtrap")
		a.Li(asm.T1, 1<<17)
		a.Csrrc(asm.X0, rv.CSRMstatus, asm.T1) // drop MPRV
		a.Csrr(asm.A5, rv.CSRMcause)
		exit(a)
	})
	h := runLockstep(t, fast, slow, 200)
	if h.Regs[asm.A0] != 77 {
		t.Errorf("a0 = %d, want 77", h.Regs[asm.A0])
	}
	if h.Regs[asm.A5] != uint64(rv.ExcLoadAccessFault) {
		t.Errorf("mcause = %d, want load access fault (%d)",
			h.Regs[asm.A5], rv.ExcLoadAccessFault)
	}
}

// TestFastPathSnapshotRestore checkpoints mid-run, finishes, restores, and
// finishes again: both completions must be bit-identical even though the
// first one patched code and remapped pages, which would poison a cache
// that survived the restore (the PMP epoch also rewinds, the one case the
// validity-by-comparison TLB cannot catch on its own).
func TestFastPathSnapshotRestore(t *testing.T) {
	patched := encodeOne(t, func(a *asm.Asm) { a.Addi(asm.A0, asm.A0, 100) })
	a := asm.New(DramBase)
	selfModifyBody(patched, false)(a)
	img, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	cfg := VisionFive2()
	cfg.Harts = 1
	m, err := NewMachine(cfg, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(DramBase, img); err != nil {
		t.Fatal(err)
	}
	m.Reset(DramBase)
	m.SetFastPath(true)
	m.Run(5) // partway into the first loop pass, caches warm
	ram, err := m.Bus.ReadBytes(DramBase, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Checkpoint()

	m.Run(1000)
	mustHalt(t, m)
	h := m.Harts[0]
	regs1, cycles1 := h.Regs, h.Cycles

	m.Restore(snap)
	if err := m.Bus.WriteBytes(DramBase, ram); err != nil {
		t.Fatal(err)
	}
	m.Run(1000)
	mustHalt(t, m)
	if h.Regs != regs1 || h.Cycles != cycles1 {
		t.Fatalf("replay diverged: regs1[a0]=%d regs2[a0]=%d cycles %d vs %d",
			regs1[asm.A0], h.Regs[asm.A0], cycles1, h.Cycles)
	}
	if h.Regs[asm.A0] != 101 {
		t.Errorf("a0 = %d, want 101", h.Regs[asm.A0])
	}
}

// TestFastPathSv39RandomizedLockstep drives random interleavings of
// loads/stores through testVA, leaf-PTE rewrites between two frames, and
// the three sfence.vma forms, comparing fast and slow machines after every
// instruction.
func TestFastPathSv39RandomizedLockstep(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fast, slow := fastSlowPair(t, func(a *asm.Asm) {
			sv39Prologue(a)
			a.Label("smain")
			a.Li(asm.S2, testVA)
			a.Li(asm.S3, ptL0)
			a.Li(asm.S4, pte(frameP1, pteRWAD))
			a.Li(asm.S5, pte(frameP2, pteRWAD))
			a.Li(asm.A0, 0) // running XOR of loads
			a.Li(asm.A1, 1) // store counter
			for i := 0; i < 120; i++ {
				switch rng.Intn(7) {
				case 0, 1:
					a.Ld(asm.T0, asm.S2, 0)
					a.Xor(asm.A0, asm.A0, asm.T0)
				case 2:
					a.Sd(asm.A1, asm.S2, 0)
					a.Addi(asm.A1, asm.A1, 1)
				case 3:
					a.Sd(asm.S4, asm.S3, 0) // leaf -> P1
				case 4:
					a.Sd(asm.S5, asm.S3, 0) // leaf -> P2
				case 5:
					a.SfenceVMA(asm.X0, asm.X0)
				default:
					a.SfenceVMA(asm.S2, asm.X0)
				}
			}
			a.Ecall()
			a.Label("mtrap")
			exit(a)
		})
		runLockstep(t, fast, slow, 2000)
	}
}
