package hart

// Superblock binary-translation tier. Rides the predecode cache in
// hostfast.go: once a straight-line region gets hot, its instructions are
// translated into a chain of fused Go closures (threaded code) executed
// whole per dispatch, collapsing the per-instruction fetch/decode/dispatch
// overhead while charging the exact documented per-instruction simulated
// cycles. Like everything in hostfast.go this trades host time only — the
// architectural state and cycle counters are bit-identical with the tier on
// or off (enforced by the superblock-equivalence fuzz gate in
// internal/verif/fuzz and the three-tier assertion in bench.SimHost).
//
// The safety argument has three legs (see DESIGN.md, "Superblock
// translation vs. the simulated cycle model"):
//
//  1. Entry guard. A block is only dispatched when its guard vector
//     matches: decode-page generation (catches self-modifying code),
//     privilege mode, satp, and PMP epoch (catch remapping and
//     reprotection). The dispatch point itself sits after Step's
//     pending-interrupt check, so a block never starts with a deliverable
//     interrupt pending. Data accesses re-validate per access against a
//     TLB key (mmu.Key) hoisted once per dispatch — sound because every
//     instruction that could change it (CSR writes, xRET, traps) is a
//     block terminator.
//
//  2. Cycle-budget headroom. Blocks stop before the point where a
//     per-instruction scheduler would have intervened: under SchedPar the
//     limit is the remaining quantum, under SchedSeq the distance to the
//     next timer comparator (Machine.sbSeqHeadroom), so interrupt latch
//     points — and therefore the whole architectural trace — land exactly
//     where the interpreter would put them.
//
//  3. Zero-residue fallback. Ops are compiled so that all failure checks
//     (alignment, translation, PMP, MMIO) precede every architectural
//     write; an op that cannot complete aborts the block with the
//     interpreter re-executing that op from scratch. Cycles charged by the
//     aborting op are rolled back; instructions already retired by the
//     block are exactly the instructions the interpreter would have
//     retired.
//
// Translations are host state: they are never snapshotted (hart.Image
// carries only the on/off switch) and a forked child re-translates from
// its own heat counters.

import (
	"govfm/internal/mem"
	"govfm/internal/mmu"
	"govfm/internal/rv"
)

const (
	// sbHotThreshold is how many dispatches a block-entry slot must see
	// before it is translated.
	sbHotThreshold = 16
	// sbMaxOps bounds the instructions per block (also bounded by the
	// 4KiB page end — blocks never cross a page).
	sbMaxOps = 32
	// sbMinOps is the minimum block length worth dispatching; shorter
	// regions stay on the interpreter (a sentinel block marks them so the
	// translator is not retried every dispatch).
	sbMinOps = 2
)

// sbOp is one fused instruction: it executes against the hart and returns
// the next PC, or ok=false when the instruction cannot complete in-block
// (fault, MMIO, translation miss that must park) and the interpreter must
// re-execute it.
type sbOp func(h *Hart) (uint64, bool)

// sblock is one translated superblock, keyed by (decPage, entry slot) —
// i.e. by physical location, so aliased virtual mappings share it. ops is
// nil for a sentinel recording an untranslatable entry point.
type sblock struct {
	gen      uint32 // decPage.gen at translation: stale bytes never run
	mode     rv.Mode
	satp     uint64
	pmpEpoch uint64
	ops      []sbOp
}

// sbState is the hart's per-dispatch superblock state. armed is set by the
// scheduler around a Step call that may run a block; cycleLimit/stepLimit
// bound the block so scheduling decisions land exactly where
// per-instruction stepping would put them; retired reports how many
// sequential steps the Step call was equivalent to (1 for every non-block
// step, including no-op steps of halted harts).
type sbState struct {
	on         bool
	armed      bool
	cycleLimit uint64
	stepLimit  uint64
	retired    uint64

	// lazyLimit, when set by the sequential scheduler, supplies cycleLimit
	// on demand (Machine.sbSeqHeadroom). Computing the timer headroom costs
	// a few divisions, so the scheduler defers it to the dispatch that
	// actually runs a block instead of paying it on every step; limitFn is
	// the per-hart closure, allocated once.
	lazyLimit bool
	limitFn   func() uint64

	// Per-dispatch hoisted data-access state: the effective privilege
	// (MPRV honoured), whether translation is bare, and the TLB validity
	// key. Invariant mid-block: CSR writes, traps, and xrets all
	// terminate blocks.
	priv rv.Mode
	bare bool
	key  mmu.Key

	// endAfter asks the running block to stop after the current op: set
	// by stores into (and page walks through) pages holding cached
	// decodes, where continuing could execute stale translations the
	// interpreter would re-fetch.
	endAfter bool
}

// SetSuperblock switches the superblock tier on or off, dropping every
// translated block either way (flushDecode drops the pages that own them).
func (h *Hart) SetSuperblock(on bool) {
	h.sb.on = on
	h.flushDecode()
}

// SuperblockEnabled reports whether the superblock tier is in use.
func (h *Hart) SuperblockEnabled() bool { return h.sb.on }

// sbTry attempts to run a superblock at the instruction fetchFast just
// returned. It returns the number of instructions retired (0 = no block
// ran; the caller interprets d as usual). Heat accounting, translation,
// and the entry guard all live here.
func (h *Hart) sbTry() uint64 {
	if h.V {
		// Guest (V=1) execution stays on the interpreter: superblocks are
		// keyed and guarded on single-stage state only, and the H-mode trap
		// funnels (virtual instructions, guest-page faults) are not worth a
		// third compiled encoding of the gating rules.
		return 0
	}
	if _, virt := h.effectivePrivV(); virt {
		return 0 // MPRV+MPV data accesses need the two-stage walk
	}
	dp := h.fast.fetchDP
	if dp == nil {
		return 0 // MMIO fetch: never translated
	}
	slot := h.fast.fetchSlot
	var sb *sblock
	if dp.blocks != nil {
		sb = dp.blocks[slot]
	}
	if sb == nil {
		if dp.hot == nil {
			dp.hot = new([1024]uint8)
		}
		if dp.hot[slot] < sbHotThreshold {
			dp.hot[slot]++
			return 0
		}
		dp.hot[slot] = 0
		sb = h.sbTranslate(dp, slot)
	} else if sb.gen != dp.gen {
		// Stale code bytes (self-modification): the translation is garbage.
		// Drop it and re-heat rather than retranslating immediately, so a
		// store-thrashed page cannot spend its time in the translator.
		h.Perf.SBGuardMisses++
		dp.blocks[slot] = nil
		return 0
	} else if sb.mode != h.Mode || sb.satp != h.CSR.Satp ||
		sb.pmpEpoch != h.CSR.PMP.Epoch() {
		// Environment guard miss. Unlike a gen miss the translation itself
		// is still good — these fields only protect the translation-time
		// per-op execute-permission checks (data accesses revalidate per
		// dispatch via sb.key, and blocks are keyed physically so satp
		// cannot change what they execute). Re-check the permissions under
		// the current environment and refresh the guard instead of
		// dropping the block: a monitor that swaps PMP views on every
		// world switch would otherwise force a re-heat + retranslation
		// per switch, costing far more than it saves.
		h.Perf.SBGuardMisses++
		if sb.ops == nil || !h.sbRevalidate(sb) {
			dp.blocks[slot] = nil
			return 0
		}
	}
	if sb.ops == nil {
		return 0 // sentinel: entry point known untranslatable
	}
	return h.runBlock(sb)
}

// sbRevalidate re-runs the translation-time execute-permission checks for
// every op of sb under the hart's current mode and PMP state, refreshing
// the guard vector on success. The fetch PA of the entry instruction is
// authoritative: the dispatcher only calls this right after fetchFast
// resolved the entry, and blocks never cross their 4KiB page.
func (h *Hart) sbRevalidate(sb *sblock) bool {
	pa := h.fast.fetchPA
	for i := range sb.ops {
		if !h.CSR.PMP.Check(pa+uint64(4*i), 4, mem.Exec, h.Mode) {
			return false
		}
	}
	sb.mode, sb.satp, sb.pmpEpoch = h.Mode, h.CSR.Satp, h.CSR.PMP.Epoch()
	return true
}

// sbTranslate builds (and installs) the superblock entered at slot of dp.
// The walk decodes forward from the fetch PA, reusing predecoded slots
// where valid, and stops at the first ineligible or illegal instruction, a
// block terminator (jal/jalr/branch), the page end, or sbMaxOps. Every
// op's encoding is validated here, so the compiled ALU closures are
// infallible; every op's PMP execute permission is checked here and
// revalidated wholesale by the pmpEpoch guard.
func (h *Hart) sbTranslate(dp *decPage, slot int) *sblock {
	sb := &sblock{
		gen:      dp.gen,
		mode:     h.Mode,
		satp:     h.CSR.Satp,
		pmpEpoch: h.CSR.PMP.Epoch(),
	}
	if dp.blocks == nil {
		dp.blocks = new([1024]*sblock)
	}
	dp.blocks[slot] = sb
	pageBase := h.fast.fetchPA &^ 4095
	ops := make([]sbOp, 0, sbMaxOps)
	for i := slot; i < 1024 && len(ops) < sbMaxOps; i++ {
		pa := pageBase | uint64(i)<<2
		if !h.CSR.PMP.Check(pa, 4, mem.Exec, h.Mode) {
			break
		}
		var d rv.Decoded
		if dp.tags[i] == dp.gen {
			d = dp.ins[i]
		} else {
			v, ok := h.mem.Load(pa, 4)
			if !ok {
				break
			}
			d = rv.Decode(uint32(v))
		}
		fn, term := h.sbCompile(&d)
		if fn == nil {
			break
		}
		ops = append(ops, fn)
		if term {
			break
		}
	}
	if len(ops) < sbMinOps {
		return sb // sentinel (ops stays nil)
	}
	sb.ops = ops
	h.Perf.SBTranslations++
	return sb
}

// runBlock executes a guarded block, retiring per-instruction cycle and
// instret counts identical to the interpreter's, and returns how many
// instructions retired. On an op failure the op's cycle charges are rolled
// back and the interpreter resumes at that op with zero residue.
func (h *Hart) runBlock(sb *sblock) uint64 {
	priv := h.effectivePriv()
	h.sb.priv = priv
	h.sb.bare = priv == rv.ModeM || rv.SatpMode(h.CSR.Satp) != rv.SatpModeSv39
	if !h.sb.bare {
		h.sb.key = h.tlbKey(priv, false)
	}
	h.sb.endAfter = false
	start := h.Cycles
	limitC, limitS := h.sb.cycleLimit, h.sb.stepLimit
	if h.sb.lazyLimit {
		limitC = h.sb.limitFn()
	}
	smode := h.Mode == rv.ModeS
	cInstr := h.Cfg.Cost.Instr
	var n uint64
	for _, fn := range sb.ops {
		// Pre-op scheduling check, mirroring the per-step loop conditions
		// of runSlice (quantum) and stepSeq (timer headroom, budget). The
		// entry op is exempt: the scheduler only armed us because one more
		// step was due.
		if n > 0 && (h.Cycles-start >= limitC || n >= limitS ||
			h.sb.endAfter || h.mem.Full()) {
			break
		}
		cyc0 := h.Cycles
		h.Cycles += cInstr
		next, ok := fn(h)
		if !ok {
			h.Cycles = cyc0 // roll back this op entirely; interpreter redoes it
			h.Perf.SBAborts++
			break
		}
		h.PC = next
		h.Instret++
		if smode {
			h.SInstret++
		}
		n++
	}
	if n > 0 {
		h.Perf.SBHits++
		h.Perf.SBRetired += n
	}
	return n
}

// sbTranslateData maps a data virtual address inside a block using the
// hoisted per-dispatch key, falling back to a full walk on a TLB miss —
// exactly translate()'s behaviour. A failed walk aborts the block (the
// interpreter re-runs the op and raises the fault or parks).
func (h *Hart) sbTranslateData(va uint64, acc mem.AccessType) (uint64, bool) {
	if h.sb.bare {
		return va, true
	}
	vpn := va >> 12
	if paPage, ok := h.fast.tlb.LookupK(acc, vpn, h.sb.key); ok {
		h.Perf.TLBHits++
		return paPage | va&4095, true
	}
	h.Perf.TLBMisses++
	h.Perf.PageWalks++
	res := mmu.Translate(h.mmuEnv(h.sb.priv, false), va, acc)
	if !res.OK {
		return 0, false
	}
	h.tlbFill(acc, vpn, h.sb.key, &res)
	// The walk may have stored A/D bits into a page that also holds
	// cached decodes — possibly this very block's — which the interpreter
	// would observe at its next fetch. Stop after this op.
	for i := 0; i < res.WalkLen; i++ {
		if _, cached := h.fast.pages[res.Walk[i]&^4095]; cached {
			h.sb.endAfter = true
			break
		}
	}
	return res.PA, true
}

// sbLoad performs an in-block data load. All checks precede the access;
// any failure aborts the block with nothing charged or written.
func (h *Hart) sbLoad(va uint64, size int) (uint64, bool) {
	if va%uint64(size) != 0 && !h.Cfg.HWMisaligned {
		return 0, false
	}
	pa, ok := h.sbTranslateData(va, mem.Read)
	if !ok {
		return 0, false
	}
	if !h.CSR.PMP.Check(pa, size, mem.Read, h.sb.priv) {
		return 0, false
	}
	if !h.mem.IsRAM(pa, size) {
		return 0, false // MMIO: interpreter handles (device or park)
	}
	h.charge(h.Cfg.Cost.MemAccess)
	return h.mem.Load(pa, size)
}

// sbStore performs an in-block data store, mirroring MemAccess(Write)
// including the LR/SC reservation kills. Stores into pages holding cached
// decodes end the block after this op (self-modifying code: in sequential
// mode the write watch has already invalidated the page synchronously; the
// interpreter refetches from the next instruction on, and so must we).
func (h *Hart) sbStore(va uint64, size int, value uint64) bool {
	if va%uint64(size) != 0 && !h.Cfg.HWMisaligned {
		return false
	}
	pa, ok := h.sbTranslateData(va, mem.Write)
	if !ok {
		return false
	}
	if !h.CSR.PMP.Check(pa, size, mem.Write, h.sb.priv) {
		return false
	}
	if !h.mem.IsRAM(pa, size) {
		return false
	}
	if _, cached := h.fast.pages[pa&^4095]; cached {
		h.sb.endAfter = true
	}
	h.charge(h.Cfg.Cost.MemAccess)
	if !h.mem.Store(pa, size, value) {
		return false
	}
	if h.resValid && pa&^7 == h.resAddr&^7 {
		h.resValid = false
	}
	if !h.inSlice {
		for _, p := range h.peers {
			p.KillReservation(pa)
		}
	}
	return true
}

// sbCompile translates one decoded instruction into a fused closure, or
// returns nil when the instruction is not block-eligible (CSR ops, AMOs,
// fences, WFI, xRET, ecall/ebreak, and every illegal encoding — all of
// which the interpreter must handle). term marks control transfers, which
// end a block. Closures capture decoded fields by value, never the hart.
func (h *Hart) sbCompile(d *rv.Decoded) (fn sbOp, term bool) {
	rd, rs1, rs2, f3, f7 := d.Rd, d.Rs1, d.Rs2, d.F3, d.F7
	imm := d.Imm
	raw := d.Raw
	cBranch := h.Cfg.Cost.Branch
	cMulDiv := h.Cfg.Cost.MulDiv

	switch d.Op {
	case rv.OpLui:
		return func(h *Hart) (uint64, bool) {
			h.SetReg(rd, imm)
			return h.PC + 4, true
		}, false
	case rv.OpAuipc:
		return func(h *Hart) (uint64, bool) {
			h.SetReg(rd, h.PC+imm)
			return h.PC + 4, true
		}, false
	case rv.OpJal:
		return func(h *Hart) (uint64, bool) {
			t := h.PC + imm
			h.SetReg(rd, h.PC+4)
			h.charge(cBranch)
			return t, true
		}, true
	case rv.OpJalr:
		if f3 != 0 {
			return nil, false
		}
		return func(h *Hart) (uint64, bool) {
			t := h.Reg(rs1) + imm
			h.SetReg(rd, h.PC+4)
			h.charge(cBranch)
			return t &^ 1, true
		}, true
	case rv.OpBranch:
		switch f3 {
		case 0:
			return func(h *Hart) (uint64, bool) {
				if h.Reg(rs1) == h.Reg(rs2) {
					h.charge(cBranch)
					return h.PC + imm, true
				}
				return h.PC + 4, true
			}, true
		case 1:
			return func(h *Hart) (uint64, bool) {
				if h.Reg(rs1) != h.Reg(rs2) {
					h.charge(cBranch)
					return h.PC + imm, true
				}
				return h.PC + 4, true
			}, true
		case 4:
			return func(h *Hart) (uint64, bool) {
				if int64(h.Reg(rs1)) < int64(h.Reg(rs2)) {
					h.charge(cBranch)
					return h.PC + imm, true
				}
				return h.PC + 4, true
			}, true
		case 5:
			return func(h *Hart) (uint64, bool) {
				if int64(h.Reg(rs1)) >= int64(h.Reg(rs2)) {
					h.charge(cBranch)
					return h.PC + imm, true
				}
				return h.PC + 4, true
			}, true
		case 6:
			return func(h *Hart) (uint64, bool) {
				if h.Reg(rs1) < h.Reg(rs2) {
					h.charge(cBranch)
					return h.PC + imm, true
				}
				return h.PC + 4, true
			}, true
		case 7:
			return func(h *Hart) (uint64, bool) {
				if h.Reg(rs1) >= h.Reg(rs2) {
					h.charge(cBranch)
					return h.PC + imm, true
				}
				return h.PC + 4, true
			}, true
		}
		return nil, false
	case rv.OpLoad:
		var size int
		var signed bool
		switch f3 {
		case 0:
			size, signed = 1, true
		case 1:
			size, signed = 2, true
		case 2:
			size, signed = 4, true
		case 3:
			size, signed = 8, false
		case 4:
			size, signed = 1, false
		case 5:
			size, signed = 2, false
		case 6:
			size, signed = 4, false
		default:
			return nil, false
		}
		if signed {
			bits := uint(8 * size)
			return func(h *Hart) (uint64, bool) {
				v, ok := h.sbLoad(h.Reg(rs1)+imm, size)
				if !ok {
					return 0, false
				}
				h.SetReg(rd, rv.SignExtend(v, bits))
				return h.PC + 4, true
			}, false
		}
		return func(h *Hart) (uint64, bool) {
			v, ok := h.sbLoad(h.Reg(rs1)+imm, size)
			if !ok {
				return 0, false
			}
			h.SetReg(rd, v)
			return h.PC + 4, true
		}, false
	case rv.OpStore:
		if f3 > 3 {
			return nil, false
		}
		size := 1 << f3
		return func(h *Hart) (uint64, bool) {
			if !h.sbStore(h.Reg(rs1)+imm, size, h.Reg(rs2)) {
				return 0, false
			}
			return h.PC + 4, true
		}, false
	case rv.OpImm:
		switch f3 {
		case 0:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, h.Reg(rs1)+imm)
				return h.PC + 4, true
			}, false
		case 1:
			if raw>>26 != 0 {
				return nil, false
			}
			sh := imm & 63
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, h.Reg(rs1)<<sh)
				return h.PC + 4, true
			}, false
		case 2:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, boolTo64(int64(h.Reg(rs1)) < int64(imm)))
				return h.PC + 4, true
			}, false
		case 3:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, boolTo64(h.Reg(rs1) < imm))
				return h.PC + 4, true
			}, false
		case 4:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, h.Reg(rs1)^imm)
				return h.PC + 4, true
			}, false
		case 5:
			sh := imm & 63
			switch raw >> 26 {
			case 0:
				return func(h *Hart) (uint64, bool) {
					h.SetReg(rd, h.Reg(rs1)>>sh)
					return h.PC + 4, true
				}, false
			case 0x10:
				return func(h *Hart) (uint64, bool) {
					h.SetReg(rd, uint64(int64(h.Reg(rs1))>>sh))
					return h.PC + 4, true
				}, false
			}
			return nil, false
		case 6:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, h.Reg(rs1)|imm)
				return h.PC + 4, true
			}, false
		case 7:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, h.Reg(rs1)&imm)
				return h.PC + 4, true
			}, false
		}
		return nil, false
	case rv.OpImm32:
		switch f3 {
		case 0:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, rv.SignExtend(uint64(uint32(h.Reg(rs1)+imm)), 32))
				return h.PC + 4, true
			}, false
		case 1:
			if f7 != 0 {
				return nil, false
			}
			sh := imm & 31
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, rv.SignExtend(uint64(uint32(h.Reg(rs1))<<sh), 32))
				return h.PC + 4, true
			}, false
		case 5:
			sh := imm & 31
			switch f7 {
			case 0:
				return func(h *Hart) (uint64, bool) {
					h.SetReg(rd, rv.SignExtend(uint64(uint32(h.Reg(rs1))>>sh), 32))
					return h.PC + 4, true
				}, false
			case 0x20:
				return func(h *Hart) (uint64, bool) {
					h.SetReg(rd, rv.SignExtend(uint64(int32(h.Reg(rs1))>>sh), 32))
					return h.PC + 4, true
				}, false
			}
			return nil, false
		}
		return nil, false
	case rv.OpReg:
		if f7 == 0x01 { // M extension (mulDiv64 is total for all f3)
			return func(h *Hart) (uint64, bool) {
				h.charge(cMulDiv)
				h.SetReg(rd, mulDiv64(f3, h.Reg(rs1), h.Reg(rs2)))
				return h.PC + 4, true
			}, false
		}
		switch {
		case f3 == 0 && f7 == 0:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, h.Reg(rs1)+h.Reg(rs2))
				return h.PC + 4, true
			}, false
		case f3 == 0 && f7 == 0x20:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, h.Reg(rs1)-h.Reg(rs2))
				return h.PC + 4, true
			}, false
		case f3 == 1 && f7 == 0:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, h.Reg(rs1)<<(h.Reg(rs2)&63))
				return h.PC + 4, true
			}, false
		case f3 == 2 && f7 == 0:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, boolTo64(int64(h.Reg(rs1)) < int64(h.Reg(rs2))))
				return h.PC + 4, true
			}, false
		case f3 == 3 && f7 == 0:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, boolTo64(h.Reg(rs1) < h.Reg(rs2)))
				return h.PC + 4, true
			}, false
		case f3 == 4 && f7 == 0:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, h.Reg(rs1)^h.Reg(rs2))
				return h.PC + 4, true
			}, false
		case f3 == 5 && f7 == 0:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, h.Reg(rs1)>>(h.Reg(rs2)&63))
				return h.PC + 4, true
			}, false
		case f3 == 5 && f7 == 0x20:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, uint64(int64(h.Reg(rs1))>>(h.Reg(rs2)&63)))
				return h.PC + 4, true
			}, false
		case f3 == 6 && f7 == 0:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, h.Reg(rs1)|h.Reg(rs2))
				return h.PC + 4, true
			}, false
		case f3 == 7 && f7 == 0:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, h.Reg(rs1)&h.Reg(rs2))
				return h.PC + 4, true
			}, false
		}
		return nil, false
	case rv.OpReg32:
		if f7 == 0x01 { // M extension word forms; mulDiv32 is total for valid f3
			switch f3 {
			case 0, 4, 5, 6, 7:
			default:
				return nil, false
			}
			return func(h *Hart) (uint64, bool) {
				h.charge(cMulDiv)
				v, _ := h.mulDiv32(f3, h.Reg(rs1), h.Reg(rs2), raw)
				h.SetReg(rd, v)
				return h.PC + 4, true
			}, false
		}
		switch {
		case f3 == 0 && f7 == 0:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, rv.SignExtend(uint64(uint32(h.Reg(rs1))+uint32(h.Reg(rs2))), 32))
				return h.PC + 4, true
			}, false
		case f3 == 0 && f7 == 0x20:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, rv.SignExtend(uint64(uint32(h.Reg(rs1))-uint32(h.Reg(rs2))), 32))
				return h.PC + 4, true
			}, false
		case f3 == 1 && f7 == 0:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, rv.SignExtend(uint64(uint32(h.Reg(rs1))<<(h.Reg(rs2)&31)), 32))
				return h.PC + 4, true
			}, false
		case f3 == 5 && f7 == 0:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, rv.SignExtend(uint64(uint32(h.Reg(rs1))>>(h.Reg(rs2)&31)), 32))
				return h.PC + 4, true
			}, false
		case f3 == 5 && f7 == 0x20:
			return func(h *Hart) (uint64, bool) {
				h.SetReg(rd, rv.SignExtend(uint64(int32(h.Reg(rs1))>>(h.Reg(rs2)&31)), 32))
				return h.PC + 4, true
			}, false
		}
		return nil, false
	}
	return nil, false
}
