package hart

import (
	"govfm/internal/rv"
)

// csrExists reports whether the CSR is implemented on this platform.
func (h *Hart) csrExists(n uint16) bool {
	switch n {
	case rv.CSRMstatus, rv.CSRMisa, rv.CSRMedeleg, rv.CSRMideleg, rv.CSRMie,
		rv.CSRMtvec, rv.CSRMcounteren, rv.CSRMenvcfg, rv.CSRMscratch,
		rv.CSRMepc, rv.CSRMcause, rv.CSRMtval, rv.CSRMip, rv.CSRMseccfg,
		rv.CSRMvendorid, rv.CSRMarchid, rv.CSRMimpid, rv.CSRMhartid,
		rv.CSRMconfigptr, rv.CSRMcycle, rv.CSRMinstret, rv.CSRMcountinhibit,
		rv.CSRSstatus, rv.CSRSie, rv.CSRStvec, rv.CSRScounteren,
		rv.CSRSenvcfg, rv.CSRSscratch, rv.CSRSepc, rv.CSRScause,
		rv.CSRStval, rv.CSRSip, rv.CSRSatp,
		rv.CSRCycle, rv.CSRInstret:
		return true
	case rv.CSRTime:
		return h.Cfg.HasTimeCSR
	case rv.CSRStimecmp:
		return h.Cfg.HasSstc
	case rv.CSRMtinst, rv.CSRMtval2,
		rv.CSRHstatus, rv.CSRHedeleg, rv.CSRHideleg, rv.CSRHie,
		rv.CSRHcounteren, rv.CSRHgeie, rv.CSRHtval, rv.CSRHip, rv.CSRHvip,
		rv.CSRHtinst, rv.CSRHenvcfg, rv.CSRHgatp, rv.CSRHgeip,
		rv.CSRVsstatus, rv.CSRVsie, rv.CSRVstvec, rv.CSRVsscratch,
		rv.CSRVsepc, rv.CSRVscause, rv.CSRVstval, rv.CSRVsip, rv.CSRVsatp:
		return h.Cfg.HasH
	}
	if i, ok := rv.IsPmpaddr(n); ok {
		return i < h.Cfg.NumPMP
	}
	if i, ok := rv.IsPmpcfg(n); ok {
		return i%2 == 0 && i*4 < h.Cfg.NumPMP
	}
	if rv.IsHpmcounter(n) {
		return true // hardwired-zero counters
	}
	return h.Cfg.HasCustomCSR(n)
}

// csrIsH reports whether n is one of the hypervisor or VS CSRs, which are
// HS-qualified: accessible from M and HS, virtual-instruction from V=1.
func csrIsH(n uint16) bool {
	switch n {
	case rv.CSRHstatus, rv.CSRHedeleg, rv.CSRHideleg, rv.CSRHie,
		rv.CSRHcounteren, rv.CSRHgeie, rv.CSRHtval, rv.CSRHip, rv.CSRHvip,
		rv.CSRHtinst, rv.CSRHenvcfg, rv.CSRHgatp, rv.CSRHgeip,
		rv.CSRVsstatus, rv.CSRVsie, rv.CSRVstvec, rv.CSRVsscratch,
		rv.CSRVsepc, rv.CSRVscause, rv.CSRVstval, rv.CSRVsip, rv.CSRVsatp:
		return true
	}
	return false
}

// csrMap applies the V=1 CSR substitutions: VS-mode accesses to the
// supervisor CSRs operate on their vs* counterparts, VU-mode accesses to
// any supervisor CSR raise a virtual instruction, and the hypervisor CSRs
// themselves are never reachable from a guest.
func (h *Hart) csrMap(n uint16) (uint16, *Exc) {
	if !h.V {
		return n, nil
	}
	if rv.CSRPriv(n) == rv.ModeS && (h.Mode == rv.ModeU || csrIsH(n)) {
		return n, h.exc(rv.ExcVirtualInstr, 0)
	}
	switch n {
	case rv.CSRSstatus:
		return rv.CSRVsstatus, nil
	case rv.CSRSie:
		return rv.CSRVsie, nil
	case rv.CSRStvec:
		return rv.CSRVstvec, nil
	case rv.CSRSscratch:
		return rv.CSRVsscratch, nil
	case rv.CSRSepc:
		return rv.CSRVsepc, nil
	case rv.CSRScause:
		return rv.CSRVscause, nil
	case rv.CSRStval:
		return rv.CSRVstval, nil
	case rv.CSRSip:
		return rv.CSRVsip, nil
	case rv.CSRSatp:
		// hstatus.VTVM traps the guest hypervisor's satp accesses.
		if rv.Bit(h.CSR.Hstatus, rv.HstatusVTVM) != 0 {
			return n, h.exc(rv.ExcVirtualInstr, 0)
		}
		return rv.CSRVsatp, nil
	case rv.CSRStimecmp:
		// No vstimecmp: with Sstc on, the VS access raises a virtual
		// instruction (henvcfg.STCE is hardwired 0); otherwise illegal.
		if h.CSR.SstcEnabled() {
			return n, h.exc(rv.ExcVirtualInstr, 0)
		}
		return n, h.exc(rv.ExcIllegalInstr, 0)
	}
	return n, nil
}

// csrGate checks the privilege and counter-enable gates for access,
// returning the exception to raise when the access is denied.
func (h *Hart) csrGate(n uint16) *Exc {
	if h.Mode < rv.CSRPriv(n) {
		return h.exc(rv.ExcIllegalInstr, 0)
	}
	switch n {
	case rv.CSRCycle, rv.CSRTime, rv.CSRInstret:
		bit := uint(n - rv.CSRCycle)
		if h.Mode < rv.ModeM && rv.Bit(h.CSR.Mcounteren, bit) == 0 {
			return h.exc(rv.ExcIllegalInstr, 0)
		}
		if h.V && rv.Bit(h.CSR.Hcounteren, bit) == 0 {
			return h.exc(rv.ExcVirtualInstr, 0)
		}
		if h.Mode == rv.ModeU && rv.Bit(h.CSR.Scounteren, bit) == 0 {
			if h.V {
				return h.exc(rv.ExcVirtualInstr, 0)
			}
			return h.exc(rv.ExcIllegalInstr, 0)
		}
	case rv.CSRSatp, rv.CSRHgatp:
		// TVM traps satp and hgatp accesses from HS-mode. (A V=1 satp
		// access was already redirected to vsatp by csrMap.)
		if h.Mode == rv.ModeS && rv.Bit(h.CSR.Mstatus, rv.MstatusTVM) != 0 {
			return h.exc(rv.ExcIllegalInstr, 0)
		}
	case rv.CSRStimecmp:
		// Sstc access from S-mode requires menvcfg.STCE.
		if h.Mode == rv.ModeS && !h.CSR.SstcEnabled() {
			return h.exc(rv.ExcIllegalInstr, 0)
		}
	}
	return nil
}

// csrRead returns the CSR value or the exception denying the access.
func (h *Hart) csrRead(n uint16) (uint64, *Exc) {
	if !h.csrExists(n) {
		return 0, h.exc(rv.ExcIllegalInstr, 0)
	}
	n, ei := h.csrMap(n)
	if ei != nil {
		return 0, ei
	}
	if ei := h.csrGate(n); ei != nil {
		return 0, ei
	}
	c := &h.CSR
	switch n {
	case rv.CSRMstatus:
		return c.Mstatus, nil
	case rv.CSRMisa:
		return c.Misa, nil
	case rv.CSRMedeleg:
		return c.Medeleg, nil
	case rv.CSRMideleg:
		return c.Mideleg, nil
	case rv.CSRMie:
		return c.Mie, nil
	case rv.CSRMtvec:
		return c.Mtvec, nil
	case rv.CSRMcounteren:
		return c.Mcounteren, nil
	case rv.CSRMenvcfg:
		return c.Menvcfg, nil
	case rv.CSRMscratch:
		return c.Mscratch, nil
	case rv.CSRMepc:
		return c.Mepc, nil
	case rv.CSRMcause:
		return c.Mcause, nil
	case rv.CSRMtval:
		return c.Mtval, nil
	case rv.CSRMip:
		return c.Mip(h.Time()), nil
	case rv.CSRMtinst:
		return c.Mtinst, nil
	case rv.CSRMtval2:
		return c.Mtval2, nil
	case rv.CSRMseccfg:
		return c.Mseccfg, nil
	case rv.CSRMvendorid:
		return h.Cfg.Mvendorid, nil
	case rv.CSRMarchid:
		return h.Cfg.Marchid, nil
	case rv.CSRMimpid:
		return h.Cfg.Mimpid, nil
	case rv.CSRMhartid:
		return uint64(h.ID), nil
	case rv.CSRMconfigptr:
		return 0, nil
	case rv.CSRMcycle, rv.CSRCycle:
		return h.Cycles, nil
	case rv.CSRMinstret, rv.CSRInstret:
		return h.Instret, nil
	case rv.CSRTime:
		return h.Time(), nil
	case rv.CSRMcountinhibit:
		return c.Mcountinhibit, nil
	case rv.CSRSstatus:
		return c.Sstatus(), nil
	case rv.CSRSie:
		return c.Sie(), nil
	case rv.CSRStvec:
		return c.Stvec, nil
	case rv.CSRScounteren:
		return c.Scounteren, nil
	case rv.CSRSenvcfg:
		return c.Senvcfg, nil
	case rv.CSRSscratch:
		return c.Sscratch, nil
	case rv.CSRSepc:
		return c.Sepc, nil
	case rv.CSRScause:
		return c.Scause, nil
	case rv.CSRStval:
		return c.Stval, nil
	case rv.CSRSip:
		return c.Sip(h.Time()), nil
	case rv.CSRSatp:
		return c.Satp, nil
	case rv.CSRStimecmp:
		return c.Stimecmp, nil
	case rv.CSRHstatus:
		return c.Hstatus, nil
	case rv.CSRHedeleg:
		return c.Hedeleg, nil
	case rv.CSRHideleg:
		return c.Hideleg, nil
	case rv.CSRHie:
		return c.Hie, nil
	case rv.CSRHcounteren:
		return c.Hcounteren, nil
	case rv.CSRHgeie:
		return 0, nil // no guest external interrupts
	case rv.CSRHtval:
		return c.Htval, nil
	case rv.CSRHip:
		return c.HipView(), nil
	case rv.CSRHvip:
		return c.Hvip, nil
	case rv.CSRHtinst:
		return c.Htinst, nil
	case rv.CSRHenvcfg:
		return 0, nil // hardwired: no VS-visible envcfg extensions
	case rv.CSRHgatp:
		return c.Hgatp, nil
	case rv.CSRHgeip:
		return 0, nil
	case rv.CSRVsstatus:
		return c.Vsstatus, nil
	case rv.CSRVsie:
		return c.VsieView(), nil
	case rv.CSRVstvec:
		return c.Vstvec, nil
	case rv.CSRVsscratch:
		return c.Vsscratch, nil
	case rv.CSRVsepc:
		return c.Vsepc, nil
	case rv.CSRVscause:
		return c.Vscause, nil
	case rv.CSRVstval:
		return c.Vstval, nil
	case rv.CSRVsip:
		return c.VsipView(), nil
	case rv.CSRVsatp:
		return c.Vsatp, nil
	}
	if i, ok := rv.IsPmpaddr(n); ok {
		return c.PMP.Addr(i), nil
	}
	if i, ok := rv.IsPmpcfg(n); ok {
		return c.PMP.CfgReg(i), nil
	}
	if rv.IsHpmcounter(n) {
		return 0, nil
	}
	if v, ok := c.Custom[n]; ok {
		return v, nil
	}
	return 0, h.exc(rv.ExcIllegalInstr, 0)
}

// csrWrite stores a value into the CSR, applying WARL legalization, or
// returns the exception denying the access.
func (h *Hart) csrWrite(n uint16, v uint64) *Exc {
	if !h.csrExists(n) || rv.CSRReadOnly(n) {
		return h.exc(rv.ExcIllegalInstr, 0)
	}
	n, ei := h.csrMap(n)
	if ei != nil {
		return ei
	}
	if ei := h.csrGate(n); ei != nil {
		return ei
	}
	c := &h.CSR
	switch n {
	case rv.CSRMstatus:
		c.WriteMstatus(v)
	case rv.CSRMisa:
		// misa is WARL; this implementation hardwires it.
	case rv.CSRMedeleg:
		c.Medeleg = v & c.MedelegMask()
	case rv.CSRMideleg:
		c.WriteMideleg(v)
	case rv.CSRMie:
		c.Mie = v & mieMask
	case rv.CSRMtvec:
		c.Mtvec = legalizeTvec(v)
	case rv.CSRMcounteren:
		c.Mcounteren = v & 0xFFFF_FFFF
	case rv.CSRMenvcfg:
		var mask uint64
		if h.Cfg.HasSstc {
			mask |= 1 << 63 // STCE
		}
		c.Menvcfg = v & mask
	case rv.CSRMscratch:
		c.Mscratch = v
	case rv.CSRMepc:
		c.Mepc = legalizeEpc(v)
	case rv.CSRMcause:
		c.Mcause = v
	case rv.CSRMtval:
		c.Mtval = v
	case rv.CSRMip:
		c.SetMip(v)
	case rv.CSRMtinst:
		c.Mtinst = v
	case rv.CSRMtval2:
		c.Mtval2 = v
	case rv.CSRMseccfg:
		c.Mseccfg = v & 0x7 // MML/MMWP/RLB only
	case rv.CSRMcycle:
		h.Cycles = v
	case rv.CSRMinstret:
		h.Instret = v
	case rv.CSRMcountinhibit:
		c.Mcountinhibit = v & 0xFFFF_FFFD // bit 1 (time) not inhibitable
	case rv.CSRSstatus:
		c.WriteSstatus(v)
	case rv.CSRSie:
		c.WriteSie(v)
	case rv.CSRStvec:
		c.Stvec = legalizeTvec(v)
	case rv.CSRScounteren:
		c.Scounteren = v & 0xFFFF_FFFF
	case rv.CSRSenvcfg:
		c.Senvcfg = v & 1 // FIOM only
	case rv.CSRSscratch:
		c.Sscratch = v
	case rv.CSRSepc:
		c.Sepc = legalizeEpc(v)
	case rv.CSRScause:
		c.Scause = v
	case rv.CSRStval:
		c.Stval = v
	case rv.CSRSip:
		if h.Mode == rv.ModeM {
			c.SetMip(v) // M-mode writes through sip reach all SW bits
		} else {
			c.WriteSip(v)
		}
	case rv.CSRSatp:
		c.WriteSatp(v)
		h.charge(h.Cfg.Cost.TLBFlush)
		h.flushTLB()
	case rv.CSRStimecmp:
		c.Stimecmp = v
	case rv.CSRHstatus:
		c.WriteHstatus(v)
	case rv.CSRHedeleg:
		c.Hedeleg = v & hedelegMask
	case rv.CSRHideleg:
		c.Hideleg = v & rv.VSIntMask
	case rv.CSRHie:
		c.Hie = v & rv.VSIntMask
	case rv.CSRHcounteren:
		c.Hcounteren = v & 0xFFFF_FFFF
	case rv.CSRHgeie:
		// hardwired 0: no guest external interrupts
	case rv.CSRHtval:
		c.Htval = v
	case rv.CSRHip:
		c.WriteHipView(v)
	case rv.CSRHvip:
		c.Hvip = v & rv.VSIntMask
	case rv.CSRHtinst:
		c.Htinst = v
	case rv.CSRHenvcfg:
		// hardwired 0
	case rv.CSRHgatp:
		c.WriteHgatp(v)
		h.charge(h.Cfg.Cost.TLBFlush)
		h.flushTLB()
	case rv.CSRVsstatus:
		c.WriteVsstatus(v)
	case rv.CSRVsie:
		c.WriteVsieView(v)
	case rv.CSRVstvec:
		c.Vstvec = legalizeTvec(v)
	case rv.CSRVsscratch:
		c.Vsscratch = v
	case rv.CSRVsepc:
		c.Vsepc = legalizeEpc(v)
	case rv.CSRVscause:
		c.Vscause = v
	case rv.CSRVstval:
		c.Vstval = v
	case rv.CSRVsip:
		c.WriteVsipView(v)
	case rv.CSRVsatp:
		c.WriteVsatp(v)
		h.charge(h.Cfg.Cost.TLBFlush)
		h.flushTLB()
	default:
		if i, ok := rv.IsPmpaddr(n); ok {
			c.PMP.SetAddr(i, v)
			h.charge(h.Cfg.Cost.TLBFlush)
			return nil
		}
		if i, ok := rv.IsPmpcfg(n); ok {
			c.PMP.SetCfgReg(i, v)
			h.charge(h.Cfg.Cost.TLBFlush)
			return nil
		}
		if rv.IsHpmcounter(n) {
			return nil // hardwired zero
		}
		if _, ok := c.Custom[n]; ok {
			c.Custom[n] = v
			return nil
		}
		return h.exc(rv.ExcIllegalInstr, 0)
	}
	return nil
}

// CSRRead exposes CSR reads to the monitor (M-mode software view).
func (h *Hart) CSRRead(n uint16) (uint64, bool) {
	v, ei := h.csrRead(n)
	return v, ei == nil
}

// CSRWrite exposes CSR writes to the monitor (M-mode software view).
// The monitor calls this while the hart is in M-mode, so privilege checks
// pass exactly as they would for Miralis's own csrw instructions.
func (h *Hart) CSRWrite(n uint16, v uint64) bool {
	return h.csrWrite(n, v) == nil
}
