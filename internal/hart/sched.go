package hart

// Quantum-based parallel scheduling (the MTTCG-style execution engine).
//
// In SchedPar mode each hart runs on its own goroutine for a slice of up to
// Quantum simulated cycles, then all harts meet at a barrier. During a
// slice the machine is frozen from the hart's point of view:
//
//   - shared RAM is read-only; the hart's stores go to a private
//     write buffer (mem.Port) with store→load forwarding, committed to RAM
//     at the barrier in hart-ID order;
//   - mtime and the interrupt lines hold the values latched when the round
//     started (mtime advances, and CLINT/PLIC state changes, only between
//     rounds);
//   - an instruction that needs anything beyond that — any MMIO access, or
//     an AMO (a globally ordered read-modify-write) — parks: the slice ends
//     with no architectural effect from that instruction, and the barrier
//     replays it with direct bus access (parkReplay);
//   - a trap that architecturally enters M-mode on a monitored machine
//     completes its trap entry, then parks so HandleMTrap (shared host-side
//     monitor state) runs at the barrier (parkMonitor).
//
// The barrier applies all cross-hart effects in ascending hart-ID order, so
// a parallel run is reproducible run-to-run regardless of how the host
// schedules the goroutines. Cross-hart visibility (IPIs, stores, timer
// programming) is quantum-granular: an effect produced in round r is seen
// by other harts in round r+1 — the parallel generalization of the
// sequential scheduler's latch-at-step-start contract.
//
// See DESIGN.md, "Parallel hart scheduling vs. the shared wall clock".

import (
	"fmt"
	"sync"
)

// SchedKind selects the machine's execution scheduler.
type SchedKind int

const (
	// SchedSeq is the classic deterministic round-robin: one instruction
	// per hart per machine step, all on one goroutine.
	SchedSeq SchedKind = iota
	// SchedPar runs each hart on its own goroutine for a quantum of
	// simulated cycles between deterministic barriers.
	SchedPar
)

func (k SchedKind) String() string {
	switch k {
	case SchedSeq:
		return "seq"
	case SchedPar:
		return "par"
	}
	return fmt.Sprintf("SchedKind(%d)", int(k))
}

// ParseSched maps a -sched flag value to a SchedKind.
func ParseSched(s string) (SchedKind, error) {
	switch s {
	case "seq", "":
		return SchedSeq, nil
	case "par":
		return SchedPar, nil
	}
	return SchedSeq, fmt.Errorf("unknown scheduler %q (want seq or par)", s)
}

// DefaultQuantum is the slice length in simulated cycles when
// Machine.Quantum is unset.
const DefaultQuantum = 1024

// parkKind records why a hart's slice ended before its quantum.
type parkKind uint8

const (
	parkNone parkKind = iota
	// parkReplay: the current instruction needs quiesced-machine resources
	// (a device access or an AMO). Nothing architectural changed; the
	// barrier replays the instruction with direct bus access.
	parkReplay
	// parkMonitor: a trap completed architectural M-mode entry; HandleMTrap
	// is deferred to the barrier.
	parkMonitor
)

// errParked is the sentinel the memory paths return when an access parked
// instead of faulting. It never reaches Exception: exec and Step intercept
// it. The impossible cause value makes any leak loudly visible.
var errParked = &Exc{Cause: ^uint64(0), Tval: ^uint64(0)}

// parScratch holds the per-round working state so rounds allocate nothing.
type parScratch struct {
	before   []uint64 // per-hart cycle counter at round start
	progress []uint64 // per-hart counted steps this round
	caps     []uint64 // per-hart step caps (budget mode)
	kill     []func(uint64)
	wg       sync.WaitGroup
}

func (m *Machine) initParScratch() {
	n := len(m.Harts)
	m.par.before = make([]uint64, n)
	m.par.progress = make([]uint64, n)
	m.par.caps = make([]uint64, n)
	m.par.kill = make([]func(uint64), n)
	for i, h := range m.Harts {
		h := h
		m.par.kill[i] = func(wordPA uint64) {
			for _, p := range h.peers {
				p.KillReservation(wordPA)
			}
		}
	}
}

// quantum returns the effective slice length.
func (m *Machine) quantum() uint64 {
	if m.Quantum > 0 {
		return m.Quantum
	}
	return DefaultQuantum
}

// runSlice executes hart h for one slice: until quantum cycles are
// consumed, stepCap instructions are counted, the write buffer fills, the
// hart halts or stops, or an instruction parks. It returns the number of
// counted steps; a parkReplay'd instruction is not counted (the barrier
// replay counts it instead).
func (h *Hart) runSlice(quantum, stepCap uint64) uint64 {
	h.inSlice = true
	h.park = parkNone
	h.mem.BeginSlice()
	start := h.Cycles
	// The superblock tier is armed per step with the remaining quantum and
	// step cap as limits, so a block stops exactly where this loop's own
	// conditions would have stopped per-instruction execution. The slice
	// is the natural home for blocks: interrupt lines and mtime are frozen
	// for the whole round, so no new interrupt can appear mid-block.
	arm := h.sb.on && h.fast.on
	var steps uint64
	for steps < stepCap && !h.Halted && !h.Stopped && h.Cycles-start < quantum {
		if arm && stepCap-steps > 1 {
			h.sb.armed = true
			h.sb.cycleLimit = quantum - (h.Cycles - start)
			h.sb.stepLimit = stepCap - steps
			h.Step()
			h.sb.armed = false
		} else {
			h.Step()
		}
		if h.park == parkReplay {
			break
		}
		steps += h.sb.retired
		if h.park != parkNone || h.mem.Full() {
			break
		}
	}
	h.inSlice = false
	return steps
}

// parRound runs one quantum round: latch lines, run every hart's slice
// concurrently, then apply all cross-hart effects at the barrier in
// ascending hart-ID order. caps bounds each hart's counted steps (the
// budget harness narrows it; runPar passes the quantum). Results land in
// m.par.progress; the return value is the slowest hart's cycle consumption.
func (m *Machine) parRound(quantum uint64, caps []uint64) uint64 {
	m.inRound.Store(true)
	defer m.inRound.Store(false)
	harts := m.Harts
	// Latch every hart's interrupt lines from the quiesced devices. The
	// lines stay frozen for the whole round; effects produced during the
	// round become visible at the next round's latch.
	for i, h := range harts {
		h.CSR.SetHWLines(m.Clint.Pending(h.ID) | m.Plic.Pending(h.ID))
		m.par.before[i] = h.Cycles
	}
	if len(harts) == 1 {
		m.par.progress[0] = harts[0].runSlice(quantum, caps[0])
	} else {
		for i, h := range harts {
			i, h := i, h
			m.par.wg.Add(1)
			go func() {
				defer m.par.wg.Done()
				m.par.progress[i] = h.runSlice(quantum, caps[i])
			}()
		}
		m.par.wg.Wait()
	}

	// Barrier. Stage 1: commit write buffers hart-by-hart (ascending ID —
	// on overlapping stores the highest hart ID wins, deterministically),
	// firing write watches and killing peers' LR/SC reservations.
	for i, h := range harts {
		h.mem.Commit(m.par.kill[i])
	}
	// Stage 2: replay parked instructions / run deferred monitor entries,
	// in hart-ID order, with direct bus access. A replayed step may take a
	// pending interrupt instead of the instruction, or trap into the
	// monitor inline — both fine, the machine is quiesced here.
	for i, h := range harts {
		switch h.park {
		case parkReplay:
			h.park = parkNone
			if caps[i] > 0 {
				h.Step()
				m.par.progress[i]++
			}
		case parkMonitor:
			h.park = parkNone
			h.Trace.Begin(int32(h.ID), h.Cycles, "m-trap")
			h.Monitor.HandleMTrap(h)
			h.Trace.End(int32(h.ID), h.Cycles)
		}
	}
	// Stage 3: watchdogs (quantum-granular in this mode) and halt
	// propagation.
	for _, h := range harts {
		if h.Watchdog != nil {
			h.Watchdog(h)
		}
		if h.Halted && !m.halted {
			m.halt("hart-halt: " + h.HaltReason)
		}
	}
	// Stage 4: advance the shared wall clock by the slowest hart's
	// consumption, exactly as the sequential scheduler does per step.
	var maxConsumed uint64
	for i, h := range harts {
		if c := h.Cycles - m.par.before[i]; c > maxConsumed {
			maxConsumed = c
		}
	}
	m.timeRemainder += maxConsumed
	if m.Cfg.CyclesPerTick > 0 {
		m.Clint.Advance(m.timeRemainder / m.Cfg.CyclesPerTick)
		m.timeRemainder %= m.Cfg.CyclesPerTick
	}
	if m.trace != nil {
		m.trace.Instant(0, harts[0].Cycles, "sched:barrier")
	}
	return maxConsumed
}

// runPar is Machine.Run under the parallel scheduler. maxSteps is a
// per-hart instruction budget, matching the sequential scheduler where one
// machine step is one instruction per hart.
func (m *Machine) runPar(maxSteps uint64) (uint64, bool) {
	if m.par.progress == nil {
		m.initParScratch()
	}
	q := m.quantum()
	var done uint64
	for done < maxSteps && !m.halted {
		cap := maxSteps - done
		if cap > q {
			cap = q
		}
		for i := range m.par.caps {
			m.par.caps[i] = cap
		}
		m.parRound(q, m.par.caps)
		var pmax uint64
		for _, p := range m.par.progress {
			if p > pmax {
				pmax = p
			}
		}
		if pmax == 0 {
			// Every hart is stopped, halted, or capped: the equivalent
			// sequential steps would all be no-ops. Burn the budget.
			pmax = cap
		}
		done += pmax
	}
	return done, m.halted
}

// runParUntil is Machine.RunUntil under the parallel scheduler; cond is
// evaluated at round boundaries.
func (m *Machine) runParUntil(cond func() bool, maxSteps uint64) bool {
	if m.par.progress == nil {
		m.initParScratch()
	}
	q := m.quantum()
	var done uint64
	for done < maxSteps && !m.halted {
		if cond() {
			return true
		}
		cap := maxSteps - done
		if cap > q {
			cap = q
		}
		for i := range m.par.caps {
			m.par.caps[i] = cap
		}
		m.parRound(q, m.par.caps)
		var pmax uint64
		for _, p := range m.par.progress {
			if p > pmax {
				pmax = p
			}
		}
		if pmax == 0 {
			pmax = cap
		}
		done += pmax
	}
	return cond()
}

// RunParBudget gives every hart exactly k step-calls under the parallel
// scheduler — the parallel analogue of k sequential Machine.Steps, where
// every hart receives exactly one Hart.Step call per machine step (halted
// or stopped harts no-op theirs). It does not stop early when the machine
// halts, for the same reason: the sequential round loop finishes its k
// steps regardless, with post-halt calls as no-ops. Differential harnesses
// use it to compare a parallel end state with a sequential run of exactly k
// steps.
func (m *Machine) RunParBudget(k uint64) {
	if m.par.progress == nil {
		m.initParScratch()
	}
	q := m.quantum()
	remaining := make([]uint64, len(m.Harts))
	for i := range remaining {
		remaining[i] = k
	}
	for {
		anyLeft := false
		for i := range remaining {
			c := remaining[i]
			if c > q {
				c = q
			}
			m.par.caps[i] = c
			if c > 0 {
				anyLeft = true
			}
		}
		if !anyLeft {
			return
		}
		m.parRound(q, m.par.caps)
		stuck := true
		for i, p := range m.par.progress {
			if p > remaining[i] {
				p = remaining[i]
			}
			remaining[i] -= p
			if p > 0 {
				stuck = false
			}
		}
		if stuck {
			// No hart can advance (all halted/stopped): the remaining
			// sequential calls would all be no-ops.
			return
		}
	}
}
