package hart

import (
	"govfm/internal/dev/clint"
	"govfm/internal/rv"
)

// Snapshot is a deep copy of one hart's architectural state, sufficient to
// restore the hart to an exact earlier point. Lockstep differential
// harnesses checkpoint a pristine machine once and restore before every
// test case, so each case starts from a bit-identical machine regardless
// of what the previous case did.
type Snapshot struct {
	Regs     [32]uint64
	PC       uint64
	Mode     uint64
	Cycles   uint64
	Instret  uint64
	SInstret uint64

	Waiting    bool
	Stopped    bool
	Halted     bool
	HaltReason string

	ResValid bool
	ResAddr  uint64

	CSR CSRFile
}

// clone deep-copies a CSR file: the embedded PMP file and the custom-CSR
// map are the only reference-typed members.
func (c *CSRFile) clone() CSRFile {
	t := *c
	if c.PMP != nil {
		t.PMP = c.PMP.CloneSnapshot()
	}
	t.Custom = make(map[uint16]uint64, len(c.Custom))
	for k, v := range c.Custom {
		t.Custom[k] = v
	}
	return t
}

// Checkpoint captures the hart's complete architectural state.
func (h *Hart) Checkpoint() *Snapshot {
	return &Snapshot{
		Regs:       h.Regs,
		PC:         h.PC,
		Mode:       uint64(h.Mode),
		Cycles:     h.Cycles,
		Instret:    h.Instret,
		SInstret:   h.SInstret,
		Waiting:    h.Waiting,
		Stopped:    h.Stopped,
		Halted:     h.Halted,
		HaltReason: h.HaltReason,
		ResValid:   h.resValid,
		ResAddr:    h.resAddr,
		CSR:        h.CSR.clone(),
	}
}

// Restore rewinds the hart to a checkpoint. The configuration pointer is
// preserved (a snapshot is only meaningful on the hart that took it or an
// identically configured one).
func (h *Hart) Restore(s *Snapshot) {
	cfg := h.CSR.cfg
	h.Regs = s.Regs
	h.PC = s.PC
	h.Mode = rv.Mode(s.Mode)
	h.Cycles = s.Cycles
	h.Instret = s.Instret
	h.SInstret = s.SInstret
	h.Waiting = s.Waiting
	h.Stopped = s.Stopped
	h.Halted = s.Halted
	h.HaltReason = s.HaltReason
	h.resValid = s.ResValid
	h.resAddr = s.ResAddr
	curEpoch := h.CSR.PMP.Epoch()
	h.CSR = s.CSR.clone()
	h.CSR.cfg = cfg
	// The restored PMP clone carries the snapshot-time fast flag and a
	// rewound mutation epoch. Advance the epoch past the pre-restore value
	// so it stays monotonic per hart (stale cache entries tagged with a
	// since-reused epoch can then never be re-validated), reapply the mode,
	// and drop every host cache.
	h.CSR.PMP.AdvanceEpoch(curEpoch + 1)
	h.CSR.PMP.SetFast(h.fast.on)
	h.flushDecode()
	h.flushTLB()
}

// MipSW returns the software-writable mip bits, for differential harnesses
// that need the raw component rather than the composed Mip view.
func (c *CSRFile) MipSW() uint64 { return c.mipSW }

// MachineSnapshot captures the state Machine.Restore needs for
// deterministic re-runs: every hart plus the CLINT (the one device whose
// state — mtime, mtimecmp, msip — feeds back into hart-visible behaviour
// through the interrupt lines and the time CSR). Other device state (PLIC,
// UART, DMA, IOPMP) is not captured; harnesses that program those devices
// must reset them separately.
type MachineSnapshot struct {
	Harts         []*Snapshot
	Clint         clint.Snapshot
	TimeRemainder uint64
	Halted        bool
	HaltReason    string
}

// Checkpoint captures the machine state needed for deterministic replay.
func (m *Machine) Checkpoint() *MachineSnapshot {
	s := &MachineSnapshot{
		Clint:         m.Clint.Checkpoint(),
		TimeRemainder: m.timeRemainder,
		Halted:        m.halted,
		HaltReason:    m.haltReason,
	}
	for _, h := range m.Harts {
		s.Harts = append(s.Harts, h.Checkpoint())
	}
	return s
}

// Restore rewinds the machine to a checkpoint taken on it earlier.
func (m *Machine) Restore(s *MachineSnapshot) {
	for i, h := range m.Harts {
		h.Restore(s.Harts[i])
	}
	m.Clint.Restore(s.Clint)
	m.timeRemainder = s.TimeRemainder
	m.halted = s.Halted
	m.haltReason = s.HaltReason
}
