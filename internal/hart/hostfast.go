package hart

// Host-side acceleration caches. Everything in this file trades host time
// only: the simulated machine's architectural state and cycle accounting
// are bit-identical with the fast paths on or off (the fastpath-equivalence
// fuzz gate in internal/verif/fuzz runs the two configurations in lockstep
// and fails on any divergence). See DESIGN.md, "Host fast paths vs. the
// simulated cycle model".

import (
	"govfm/internal/mem"
	"govfm/internal/mmu"
	"govfm/internal/rv"
)

// decPage caches the predecoded form of one 4KiB physical page of
// instruction memory (1024 potential 32-bit slots, filled on first fetch).
// A slot is valid iff its generation tag equals the page's current
// generation, so invalidation is an O(1) counter bump that keeps the 40KiB
// allocation alive — essential when code and data share a page (e.g. a
// firmware whose stack sits next to its text), where every store would
// otherwise free and reallocate the page.
type decPage struct {
	gen   uint32 // current generation; starts at 1 so zeroed tags are invalid
	armed bool   // bus write-watch currently armed for this page
	tags  [1024]uint32
	ins   [1024]rv.Decoded

	// Superblock tier state (superblock.go), lazily allocated: hot counts
	// dispatches per entry slot until translation; blocks holds the
	// translated superblocks by entry slot (a direct array, not a map —
	// the lookup is on the per-dispatch hot path), each guarded by the
	// gen it was translated under.
	hot    *[1024]uint8
	blocks *[1024]*sblock
}

// invalidate drops every slot and remembers that the consumed write-watch
// must be re-armed before the page is trusted again.
func (dp *decPage) invalidate() {
	dp.gen++
	if dp.gen == 0 { // tag wrap: make all stale tags unambiguously invalid
		clear(dp.tags[:])
		// Superblocks are gen-guarded too: after a wrap a stale block's
		// recorded gen could collide with a future value, so drop them all.
		dp.blocks = nil
		dp.gen = 1
	}
	dp.armed = false
}

// fastState bundles the per-hart host caches.
type fastState struct {
	on bool

	// tlb caches successful leaf translations (see mmu.TLB for the
	// validity-by-comparison scheme).
	tlb mmu.TLB

	// pages maps physical page base -> predecoded instructions, with a
	// 1-entry lookup cache in front (straight-line code stays on one
	// page). Pages are cached only when the bus can watch them (RAM);
	// any write into a cached page — this hart, another hart, DMA, the
	// fault injector — drops the page via InvalidatePhysPage.
	pages        map[uint64]*decPage
	lastPageBase uint64
	lastPage     *decPage

	// ptePages is the set of physical pages some cached TLB entry read
	// its PTEs from. A write to any of them flushes the whole TLB: page
	// tables change rarely, so precision is not worth per-entry tracking.
	ptePages map[uint64]struct{}

	// scratch holds the decode of fetches that cannot be cached (MMIO).
	scratch rv.Decoded

	// fetchDP/fetchSlot/fetchPA record where fetchFast found the current
	// instruction, so the superblock dispatcher (sbTry) can locate the
	// block keyed at that physical slot. fetchDP is nil for MMIO fetches.
	fetchDP   *decPage
	fetchSlot int
	fetchPA   uint64
}

// excScratch is a small ring of Exc values so the hot fault paths return
// pointers without heap allocation. Callers treat a returned *Exc as
// transient — consumed before the next handful of exceptions — which every
// consumer in this module does (checked by review: core, bench, fuzz all
// read Cause/Tval immediately).
type excScratch struct {
	buf [16]Exc
	i   int
}

// exc fills the next ring slot and returns it.
func (h *Hart) exc(cause, tval uint64) *Exc {
	e := &h.excs.buf[h.excs.i%len(h.excs.buf)]
	h.excs.i++
	e.Cause, e.Tval, e.Gpa = cause, tval, 0
	return e
}

// SetFastPath switches the host acceleration caches on or off, flushing
// them in both directions so stale state can never be consulted later.
func (h *Hart) SetFastPath(on bool) {
	h.fast.on = on
	h.CSR.PMP.SetFast(on)
	h.flushDecode()
	h.flushTLB()
}

// FastPathEnabled reports whether the host caches are in use.
func (h *Hart) FastPathEnabled() bool { return h.fast.on }

// InvalidatePhysPage implements mem.PageWatcher: a watched page was
// written, so drop any predecoded instructions on it and, if a cached
// translation walked through it, the TLB.
func (h *Hart) InvalidatePhysPage(page uint64) {
	if dp, ok := h.fast.pages[page]; ok {
		dp.invalidate()
		// Drop the 1-entry lookup cache too when it fronts this page, so
		// no later fetch can trust a stale pointer without going through
		// the map (and the re-arm/tag checks) again.
		if h.fast.lastPage == dp {
			h.fast.lastPage, h.fast.lastPageBase = nil, 0
		}
	}
	if _, ok := h.fast.ptePages[page]; ok {
		h.fast.tlb.Flush()
		clear(h.fast.ptePages)
	}
}

// flushDecode drops every predecoded page (fence.i, snapshot restore,
// fast-path toggle). The bus watch bits stay armed; a later notification
// for an already-dropped page is a no-op.
func (h *Hart) flushDecode() {
	clear(h.fast.pages)
	h.fast.lastPage, h.fast.lastPageBase = nil, 0
	h.fast.fetchDP = nil
}

// flushTLB drops every cached translation (sfence.vma, satp write,
// snapshot restore, fast-path toggle).
func (h *Hart) flushTLB() {
	h.fast.tlb.Flush()
	clear(h.fast.ptePages)
}

// tlbFill caches a successful translation, first arming a write watch on
// every page the walk read PTEs from so software page-table edits
// invalidate it. PTE pages outside RAM cannot be watched; such walks stay
// uncached. Arming happens after the walk so the walker's own A/D-bit
// store does not immediately kill the entry.
func (h *Hart) tlbFill(acc mem.AccessType, vpn uint64, k mmu.Key, res *mmu.Result) {
	for i := 0; i < res.WalkLen; i++ {
		p := res.Walk[i] &^ 4095
		if !h.mem.WatchPage(p) {
			return
		}
		h.fast.ptePages[p] = struct{}{}
	}
	h.fast.tlb.InsertK(acc, vpn, k, res.PA&^4095)
}

// tlbKey bundles the current translation-validity state for priv. With
// virt set the key carries the guest context (vsatp, hgatp, vsstatus
// SUM/MXR, V) so two-stage fills can never satisfy host-context lookups
// or vice versa — hgatp rewrites and V transitions miss by comparison.
func (h *Hart) tlbKey(priv rv.Mode, virt bool) mmu.Key {
	if virt {
		return mmu.Key{
			Satp:  h.CSR.Vsatp,
			Hgatp: h.CSR.Hgatp,
			Epoch: h.CSR.PMP.Epoch(),
			Priv:  priv,
			SUM:   rv.Bit(h.CSR.Vsstatus, rv.MstatusSUM) != 0,
			MXR:   rv.Bit(h.CSR.Vsstatus, rv.MstatusMXR) != 0,
			V:     true,
		}
	}
	return mmu.Key{
		Satp:  h.CSR.Satp,
		Epoch: h.CSR.PMP.Epoch(),
		Priv:  priv,
		SUM:   rv.Bit(h.CSR.Mstatus, rv.MstatusSUM) != 0,
		MXR:   rv.Bit(h.CSR.Mstatus, rv.MstatusMXR) != 0,
	}
}

// translationActive reports whether any translation stage applies for a
// (priv, virt) access context.
func (h *Hart) translationActive(priv rv.Mode, virt bool) bool {
	if priv == rv.ModeM {
		return false
	}
	if virt {
		return rv.SatpMode(h.CSR.Vsatp) == rv.SatpModeSv39 ||
			rv.SatpMode(h.CSR.Hgatp) == rv.HgatpModeSv39x4
	}
	return rv.SatpMode(h.CSR.Satp) == rv.SatpModeSv39
}

// translate maps a virtual address for an access at the given effective
// privilege and virtualization mode, using the TLB when the fast path is
// on. Architecturally identical to calling mmu.Translate directly: the TLB
// only ever caches what a full walk produced, keyed on all state the walk
// depends on, and walks charge no simulated cycles, so hits change host
// time only.
func (h *Hart) translate(va uint64, acc mem.AccessType, priv rv.Mode, virt bool) (uint64, *Exc) {
	if !h.translationActive(priv, virt) {
		return va, nil
	}
	if !h.fast.on {
		h.Perf.PageWalks++
		res := mmu.Translate(h.mmuEnv(priv, virt), va, acc)
		if !res.OK {
			if h.inSlice && h.mem.TakeBlocked() {
				return 0, errParked
			}
			ei := h.exc(res.Cause, va)
			ei.Gpa = res.GPA
			return 0, ei
		}
		return res.PA, nil
	}
	vpn := va >> 12
	k := h.tlbKey(priv, virt)
	if paPage, ok := h.fast.tlb.LookupK(acc, vpn, k); ok {
		h.Perf.TLBHits++
		return paPage | va&4095, nil
	}
	h.Perf.TLBMisses++
	h.Perf.PageWalks++
	res := mmu.Translate(h.mmuEnv(priv, virt), va, acc)
	if !res.OK {
		if h.inSlice && h.mem.TakeBlocked() {
			return 0, errParked
		}
		ei := h.exc(res.Cause, va)
		ei.Gpa = res.GPA
		return 0, ei
	}
	h.tlbFill(acc, vpn, k, &res)
	return res.PA, nil
}

// fetchFast returns the predecoded instruction at PC. It performs exactly
// the architectural work of fetch() — alignment check, translation, PMP,
// bus read — except that translation may hit the TLB and the decode may
// hit the per-page cache.
func (h *Hart) fetchFast() (*rv.Decoded, *Exc) {
	if h.PC&3 != 0 {
		return nil, h.exc(rv.ExcInstrAddrMisaligned, h.PC)
	}
	// Fetch always uses the true privilege mode; MPRV affects data only.
	pa, ei := h.translate(h.PC, mem.Exec, h.Mode, h.V)
	if ei != nil {
		return nil, ei
	}
	if !h.CSR.PMP.Check(pa, 4, mem.Exec, h.Mode) {
		return nil, h.exc(rv.ExcInstrAccessFault, h.PC)
	}
	pageBase := pa &^ 4095
	dp := h.fast.lastPage
	if dp == nil || h.fast.lastPageBase != pageBase {
		dp = h.fast.pages[pageBase]
		if dp == nil {
			if !h.mem.WatchPage(pageBase) {
				// Not RAM: execute-in-place from a device; never cache.
				h.Perf.DecodeMisses++
				v, ok := h.mem.Load(pa, 4)
				if !ok {
					if h.inSlice && h.mem.TakeBlocked() {
						return nil, errParked
					}
					return nil, h.exc(rv.ExcInstrAccessFault, h.PC)
				}
				h.fast.scratch = rv.Decode(uint32(v))
				h.fast.fetchDP = nil // never translated into superblocks
				return &h.fast.scratch, nil
			}
			dp = &decPage{gen: 1}
			h.fast.pages[pageBase] = dp
		}
		h.fast.lastPage, h.fast.lastPageBase = dp, pageBase
	}
	if !dp.armed {
		// First use, or a write consumed the watch: re-arm before trusting
		// any slot filled from here on. Always succeeds — the page was RAM
		// when it entered the cache and regions never go away.
		h.mem.WatchPage(pageBase)
		dp.armed = true
	}
	i := (pa & 4095) >> 2
	h.fast.fetchDP, h.fast.fetchSlot, h.fast.fetchPA = dp, int(i), pa
	if dp.tags[i] != dp.gen {
		h.Perf.DecodeMisses++
		v, ok := h.mem.Load(pa, 4)
		if !ok {
			return nil, h.exc(rv.ExcInstrAccessFault, h.PC)
		}
		dp.ins[i] = rv.Decode(uint32(v))
		dp.tags[i] = dp.gen
	} else {
		h.Perf.DecodeHits++
	}
	return &dp.ins[i], nil
}
