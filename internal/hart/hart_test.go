package hart

import (
	"testing"
	"testing/quick"

	"govfm/internal/asm"
	"govfm/internal/rv"
)

// run assembles body at DramBase on a single-hart VisionFive2-like machine,
// executes until the machine halts or maxSteps elapse, and returns hart 0.
func run(t *testing.T, maxSteps uint64, body func(a *asm.Asm)) (*Machine, *Hart) {
	t.Helper()
	cfg := VisionFive2()
	cfg.Harts = 1
	m, err := NewMachine(cfg, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	a := asm.New(DramBase)
	body(a)
	img, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(DramBase, img); err != nil {
		t.Fatal(err)
	}
	m.Reset(DramBase)
	m.Run(maxSteps)
	return m, m.Harts[0]
}

// exit emits a store of ExitPass to the exit device.
func exit(a *asm.Asm) {
	a.Li(asm.T6, ExitBase)
	a.Li(asm.T5, ExitPass)
	a.Sd(asm.T5, asm.T6, 0)
}

// pmpOpen programs PMP entry 7 to grant RWX on all memory, the minimal
// setup firmware performs before dropping below M-mode.
func pmpOpen(a *asm.Asm) {
	a.Li(asm.T6, ^uint64(0))
	a.Csrw(rv.CSRPmpaddr0+7, asm.T6)
	a.Li(asm.T6, 0x1F) // NAPOT | RWX
	a.Slli(asm.T6, asm.T6, 56)
	a.Csrw(rv.CSRPmpcfg0, asm.T6)
}

func mustHalt(t *testing.T, m *Machine) {
	t.Helper()
	if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
		t.Fatalf("machine did not exit cleanly: halted=%v reason=%q", ok, reason)
	}
}

func TestALUBasics(t *testing.T) {
	m, h := run(t, 1000, func(a *asm.Asm) {
		a.Li(asm.A0, 40)
		a.Li(asm.A1, 2)
		a.Add(asm.A2, asm.A0, asm.A1)  // 42
		a.Sub(asm.A3, asm.A0, asm.A1)  // 38
		a.Xor(asm.A4, asm.A0, asm.A1)  // 42
		a.Sltu(asm.A5, asm.A1, asm.A0) // 1
		a.Slli(asm.A6, asm.A1, 10)     // 2048
		a.Srai(asm.A7, asm.A0, 3)      // 5
		exit(a)
	})
	mustHalt(t, m)
	wants := map[int]uint64{asm.A2: 42, asm.A3: 38, asm.A4: 42, asm.A5: 1,
		asm.A6: 2048, asm.A7: 5}
	for r, want := range wants {
		if h.Regs[r] != want {
			t.Errorf("x%d = %d, want %d", r, h.Regs[r], want)
		}
	}
}

func TestLiProperty(t *testing.T) {
	f := func(v uint64) bool {
		var got uint64
		m, h := run(t, 1000, func(a *asm.Asm) {
			a.Li(asm.A0, v)
			exit(a)
		})
		if ok, _ := m.Halted(); !ok {
			return false
		}
		got = h.Regs[asm.A0]
		return got == v
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// Edge values.
	for _, v := range []uint64{0, 1, 0x7FF, 0x800, 0xFFF, 0x8000_0000,
		0x7FFF_FFFF, 0xFFFF_FFFF, 1 << 63, ^uint64(0), 0x1234_5678_9ABC_DEF0} {
		m, h := run(t, 1000, func(a *asm.Asm) {
			a.Li(asm.A0, v)
			exit(a)
		})
		mustHalt(t, m)
		if h.Regs[asm.A0] != v {
			t.Errorf("Li(%#x) loaded %#x", v, h.Regs[asm.A0])
		}
	}
}

func TestLoadsStores(t *testing.T) {
	m, h := run(t, 1000, func(a *asm.Asm) {
		a.Li(asm.S0, DramBase+0x1000)
		a.Li(asm.A0, 0x1122334455667788)
		a.Sd(asm.A0, asm.S0, 0)
		a.Ld(asm.A1, asm.S0, 0)
		a.Lw(asm.A2, asm.S0, 4)  // sign-extended 0x11223344
		a.Lwu(asm.A3, asm.S0, 0) // 0x55667788
		a.Lb(asm.A4, asm.S0, 0)  // sign-extended 0x88 -> negative
		a.Lbu(asm.A5, asm.S0, 0) // 0x88
		a.Lh(asm.A6, asm.S0, 0)  // sign-extended 0x7788
		a.Lhu(asm.A7, asm.S0, 0)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.A1] != 0x1122334455667788 {
		t.Errorf("ld %#x", h.Regs[asm.A1])
	}
	if h.Regs[asm.A2] != 0x11223344 {
		t.Errorf("lw %#x", h.Regs[asm.A2])
	}
	if h.Regs[asm.A3] != 0x55667788 {
		t.Errorf("lwu %#x", h.Regs[asm.A3])
	}
	if h.Regs[asm.A4] != rv.SignExtend(0x88, 8) {
		t.Errorf("lb %#x", h.Regs[asm.A4])
	}
	if h.Regs[asm.A5] != 0x88 {
		t.Errorf("lbu %#x", h.Regs[asm.A5])
	}
	if h.Regs[asm.A6] != 0x7788 {
		t.Errorf("lh %#x", h.Regs[asm.A6])
	}
	if h.Regs[asm.A7] != 0x7788 {
		t.Errorf("lhu %#x", h.Regs[asm.A7])
	}
}

func TestBranchesAndLoops(t *testing.T) {
	m, h := run(t, 5000, func(a *asm.Asm) {
		// Sum 1..10 with a loop.
		a.Li(asm.A0, 0)  // acc
		a.Li(asm.T0, 1)  // i
		a.Li(asm.T1, 10) // limit
		a.Label("loop")
		a.Add(asm.A0, asm.A0, asm.T0)
		a.Addi(asm.T0, asm.T0, 1)
		a.Bge(asm.T1, asm.T0, "loop")
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.A0] != 55 {
		t.Errorf("sum = %d", h.Regs[asm.A0])
	}
}

func TestMulDiv(t *testing.T) {
	m, h := run(t, 1000, func(a *asm.Asm) {
		a.Li(asm.A0, 7)
		a.Li(asm.A1, 6)
		a.Mul(asm.A2, asm.A0, asm.A1) // 42
		a.Li(asm.A3, 100)
		a.Li(asm.A4, 7)
		a.Div(asm.A5, asm.A3, asm.A4) // 14
		a.Rem(asm.A6, asm.A3, asm.A4) // 2
		a.Div(asm.A7, asm.A3, asm.X0) // div by zero -> -1
		a.Rem(asm.S2, asm.A3, asm.X0) // rem by zero -> dividend
		a.Li(asm.S3, 0xFFFFFFFFFFFFFFFF)
		a.Mulhu(asm.S4, asm.S3, asm.S3) // (2^64-1)^2 >> 64 = 2^64-2
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.A2] != 42 || h.Regs[asm.A5] != 14 || h.Regs[asm.A6] != 2 {
		t.Error("mul/div/rem wrong")
	}
	if h.Regs[asm.A7] != ^uint64(0) {
		t.Errorf("div by zero = %#x", h.Regs[asm.A7])
	}
	if h.Regs[asm.S2] != 100 {
		t.Errorf("rem by zero = %d", h.Regs[asm.S2])
	}
	if h.Regs[asm.S4] != ^uint64(0)-1 {
		t.Errorf("mulhu = %#x", h.Regs[asm.S4])
	}
}

func TestMulh64Property(t *testing.T) {
	// Cross-check mulh against big-integer arithmetic via mulhu identity.
	f := func(x, y int64) bool {
		got := mulh64(x, y)
		// Reference via 32-bit decomposition in big.Int-free arithmetic:
		// use Go's 128-bit-free check: (x*y) high bits via float is lossy,
		// so verify the identity mulh(x,y) == mulhsu adjusted... Instead
		// verify against mulhu with sign-correction identity:
		// mulh(x,y) = mulhu(x,y) - (x<0 ? y : 0) - (y<0 ? x : 0)
		ref := int64(mulhu64(uint64(x), uint64(y)))
		if x < 0 {
			ref -= y
		}
		if y < 0 {
			ref -= x
		}
		return got == ref
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAMOs(t *testing.T) {
	m, h := run(t, 1000, func(a *asm.Asm) {
		a.Li(asm.S0, DramBase+0x2000)
		a.Li(asm.A0, 10)
		a.Sd(asm.A0, asm.S0, 0)
		a.Li(asm.A1, 32)
		a.AmoaddD(asm.A2, asm.S0, asm.A1) // returns 10, mem=42
		a.Ld(asm.A3, asm.S0, 0)           // 42
		a.Li(asm.A4, 7)
		a.AmoswapD(asm.A5, asm.S0, asm.A4) // returns 42, mem=7
		a.Ld(asm.A6, asm.S0, 0)            // 7
		// LR/SC success path.
		a.LrD(asm.S2, asm.S0)
		a.Li(asm.S3, 99)
		a.ScD(asm.S4, asm.S0, asm.S3) // 0 = success
		a.Ld(asm.S5, asm.S0, 0)       // 99
		// SC without reservation fails.
		a.ScD(asm.S6, asm.S0, asm.A0) // 1 = failure
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.A2] != 10 || h.Regs[asm.A3] != 42 {
		t.Error("amoadd wrong")
	}
	if h.Regs[asm.A5] != 42 || h.Regs[asm.A6] != 7 {
		t.Error("amoswap wrong")
	}
	if h.Regs[asm.S4] != 0 || h.Regs[asm.S5] != 99 {
		t.Error("lr/sc success path wrong")
	}
	if h.Regs[asm.S6] != 1 {
		t.Error("sc without reservation must fail")
	}
}

func TestCSRInstructions(t *testing.T) {
	m, h := run(t, 1000, func(a *asm.Asm) {
		a.Li(asm.A0, 0xABCD)
		a.Csrw(rv.CSRMscratch, asm.A0)
		a.Csrr(asm.A1, rv.CSRMscratch)
		a.Csrrsi(asm.A2, rv.CSRMscratch, 2) // old value, set bit 1
		a.Csrr(asm.A3, rv.CSRMscratch)
		a.Csrrci(asm.A4, rv.CSRMscratch, 1) // clear bit 0
		a.Csrr(asm.A5, rv.CSRMscratch)
		a.Csrr(asm.A6, rv.CSRMhartid)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.A1] != 0xABCD {
		t.Errorf("csrr mscratch %#x", h.Regs[asm.A1])
	}
	if h.Regs[asm.A2] != 0xABCD || h.Regs[asm.A3] != 0xABCF {
		t.Error("csrrsi semantics")
	}
	if h.Regs[asm.A4] != 0xABCF || h.Regs[asm.A5] != 0xABCE {
		t.Error("csrrci semantics")
	}
	if h.Regs[asm.A6] != 0 {
		t.Error("mhartid")
	}
}

func TestEcallTrapAndMret(t *testing.T) {
	m, h := run(t, 2000, func(a *asm.Asm) {
		// M-mode sets up mtvec, drops to U-mode, U-mode ecalls, handler
		// inspects mcause and exits.
		a.La(asm.T0, "handler")
		a.Csrw(rv.CSRMtvec, asm.T0)
		pmpOpen(a)
		a.La(asm.T0, "user")
		a.Csrw(rv.CSRMepc, asm.T0)
		a.Li(asm.T3, 3<<11)
		a.Csrrc(asm.X0, rv.CSRMstatus, asm.T3) // MPP=U
		a.Mret()
		a.Label("user")
		a.Li(asm.A0, 77)
		a.Ecall()
		a.Label("handler")
		a.Csrr(asm.S0, rv.CSRMcause)
		a.Csrr(asm.S1, rv.CSRMepc)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.S0] != rv.ExcEcallFromU {
		t.Errorf("mcause = %d", h.Regs[asm.S0])
	}
	if h.Regs[asm.A0] != 77 {
		t.Error("user code did not run")
	}
	if h.Regs[asm.S1] == 0 {
		t.Error("mepc not latched")
	}
	if h.Mode != rv.ModeM {
		t.Error("handler must run in M-mode")
	}
}

func TestDelegationToSMode(t *testing.T) {
	m, h := run(t, 2000, func(a *asm.Asm) {
		// Delegate ecall-from-U to S-mode; set stvec; drop to U via S.
		a.Li(asm.T0, 1<<rv.ExcEcallFromU)
		a.Csrw(rv.CSRMedeleg, asm.T0)
		a.La(asm.T0, "shandler")
		a.Csrw(rv.CSRStvec, asm.T0)
		pmpOpen(a)
		a.La(asm.T0, "user")
		a.Csrw(rv.CSRMepc, asm.T0)
		a.Li(asm.T3, 3<<11)
		a.Csrrc(asm.X0, rv.CSRMstatus, asm.T3) // MPP=U
		a.Mret()
		a.Label("user")
		a.Ecall()
		a.Label("shandler")
		a.Csrr(asm.S0, rv.CSRScause)
		a.Csrr(asm.S1, rv.CSRSepc)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.S0] != rv.ExcEcallFromU {
		t.Errorf("scause = %d", h.Regs[asm.S0])
	}
	if h.Mode != rv.ModeS {
		t.Errorf("delegated handler must run in S-mode, got %v", h.Mode)
	}
}

func TestIllegalInstructionTval(t *testing.T) {
	m, h := run(t, 2000, func(a *asm.Asm) {
		a.La(asm.T0, "handler")
		a.Csrw(rv.CSRMtvec, asm.T0)
		a.Word(0xFFFF_FFFF) // illegal
		a.Label("handler")
		a.Csrr(asm.S0, rv.CSRMcause)
		a.Csrr(asm.S1, rv.CSRMtval)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.S0] != rv.ExcIllegalInstr {
		t.Errorf("mcause %d", h.Regs[asm.S0])
	}
	if h.Regs[asm.S1] != 0xFFFF_FFFF {
		t.Errorf("mtval %#x, want raw instruction", h.Regs[asm.S1])
	}
}

func TestMisalignedLoadTraps(t *testing.T) {
	m, h := run(t, 2000, func(a *asm.Asm) {
		a.La(asm.T0, "handler")
		a.Csrw(rv.CSRMtvec, asm.T0)
		a.Li(asm.S0, DramBase+0x1001)
		a.Ld(asm.A0, asm.S0, 0) // misaligned
		a.Label("handler")
		a.Csrr(asm.S1, rv.CSRMcause)
		a.Csrr(asm.S2, rv.CSRMtval)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.S1] != rv.ExcLoadAddrMisaligned {
		t.Errorf("mcause %d", h.Regs[asm.S1])
	}
	if h.Regs[asm.S2] != DramBase+0x1001 {
		t.Errorf("mtval %#x", h.Regs[asm.S2])
	}
}

func TestMisalignedOKWithHWSupport(t *testing.T) {
	cfg := RVA23()
	cfg.Harts = 1
	m, err := NewMachine(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	a := asm.New(DramBase)
	a.Li(asm.S0, DramBase+0x1001)
	a.Li(asm.A0, 0xDEAD)
	a.Sd(asm.A0, asm.S0, 0)
	a.Ld(asm.A1, asm.S0, 0)
	exit(a)
	if err := m.LoadImage(DramBase, a.MustAssemble()); err != nil {
		t.Fatal(err)
	}
	m.Reset(DramBase)
	m.Run(1000)
	mustHalt(t, m)
	if m.Harts[0].Regs[asm.A1] != 0xDEAD {
		t.Error("misaligned access must succeed on RVA23 profile")
	}
}

func TestTimerInterrupt(t *testing.T) {
	m, h := run(t, 200000, func(a *asm.Asm) {
		a.La(asm.T0, "handler")
		a.Csrw(rv.CSRMtvec, asm.T0)
		// Program mtimecmp = mtime + 10 via CLINT.
		a.Li(asm.S1, ClintBase+0xBFF8)
		a.Ld(asm.T1, asm.S1, 0)
		a.Addi(asm.T1, asm.T1, 10)
		a.Li(asm.S2, ClintBase+0x4000)
		a.Sd(asm.T1, asm.S2, 0)
		// Enable MTIE + MIE and wait.
		a.Li(asm.T2, 1<<rv.IntMTimer)
		a.Csrw(rv.CSRMie, asm.T2)
		a.Csrrsi(asm.X0, rv.CSRMstatus, 1<<rv.MstatusMIE)
		a.Label("wait")
		a.Wfi()
		a.J("wait")
		a.Label("handler")
		a.Csrr(asm.S3, rv.CSRMcause)
		exit(a)
	})
	mustHalt(t, m)
	want := rv.Cause(rv.IntMTimer, true)
	if h.Regs[asm.S3] != want {
		t.Errorf("mcause = %#x, want machine timer", h.Regs[asm.S3])
	}
}

func TestSoftwareInterruptViaMsip(t *testing.T) {
	m, h := run(t, 10000, func(a *asm.Asm) {
		a.La(asm.T0, "handler")
		a.Csrw(rv.CSRMtvec, asm.T0)
		a.Li(asm.T2, 1<<rv.IntMSoft)
		a.Csrw(rv.CSRMie, asm.T2)
		// Write own msip.
		a.Li(asm.S0, ClintBase)
		a.Li(asm.T3, 1)
		a.Sw(asm.T3, asm.S0, 0)
		// Enable interrupts; the IPI should fire immediately.
		a.Csrrsi(asm.X0, rv.CSRMstatus, 1<<rv.MstatusMIE)
		a.Nop()
		a.Nop()
		a.J("fail")
		a.Label("handler")
		a.Csrr(asm.S3, rv.CSRMcause)
		exit(a)
		a.Label("fail")
		a.Li(asm.T6, ExitBase)
		a.Li(asm.T5, ExitFail)
		a.Sd(asm.T5, asm.T6, 0)
	})
	mustHalt(t, m)
	if h.Regs[asm.S3] != rv.Cause(rv.IntMSoft, true) {
		t.Errorf("mcause %#x", h.Regs[asm.S3])
	}
}

func TestPMPDeniesUser(t *testing.T) {
	m, h := run(t, 3000, func(a *asm.Asm) {
		a.La(asm.T0, "handler")
		a.Csrw(rv.CSRMtvec, asm.T0)
		// PMP entry 0: NAPOT over all memory, RWX -- but first entry 0 as
		// a no-access window over DramBase+0x2000..0x3000.
		a.Li(asm.T1, (DramBase+0x2000)>>2|(0x1000/8-1))
		a.Csrw(rv.CSRPmpaddr0, asm.T1)
		a.Li(asm.T1, ^uint64(0))
		a.Csrw(rv.CSRPmpaddr0+1, asm.T1)
		a.Li(asm.T2, 0x18|0x1F00) // entry0: NAPOT no-perm; entry1: NAPOT RWX... compute below
		// cfg byte entry0 = A=NAPOT(3)<<3 = 0x18 (no RWX)
		// cfg byte entry1 = 0x18 | R|W|X = 0x1F
		a.Li(asm.T2, 0x1F18)
		a.Csrw(rv.CSRPmpcfg0, asm.T2)
		// Drop to U-mode at "user".
		a.La(asm.T0, "user")
		a.Csrw(rv.CSRMepc, asm.T0)
		a.Li(asm.T3, 3<<11)
		a.Csrrc(asm.X0, rv.CSRMstatus, asm.T3)
		a.Mret()
		a.Label("user")
		a.Li(asm.S0, DramBase+0x2010)
		a.Ld(asm.A0, asm.S0, 0) // must fault: no-perm PMP entry
		a.Label("handler")
		a.Csrr(asm.S1, rv.CSRMcause)
		a.Csrr(asm.S2, rv.CSRMtval)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.S1] != rv.ExcLoadAccessFault {
		t.Errorf("mcause %d, want load access fault", h.Regs[asm.S1])
	}
	if h.Regs[asm.S2] != DramBase+0x2010 {
		t.Errorf("mtval %#x", h.Regs[asm.S2])
	}
}

func TestWFIWakesOnPendingEvenWhenDisabled(t *testing.T) {
	// WFI must resume when an interrupt pends even with mstatus.MIE=0.
	m, h := run(t, 200000, func(a *asm.Asm) {
		a.Li(asm.S1, ClintBase+0xBFF8)
		a.Ld(asm.T1, asm.S1, 0)
		a.Addi(asm.T1, asm.T1, 5)
		a.Li(asm.S2, ClintBase+0x4000)
		a.Sd(asm.T1, asm.S2, 0)
		a.Li(asm.T2, 1<<rv.IntMTimer)
		a.Csrw(rv.CSRMie, asm.T2)
		// MIE stays 0: wfi should still wake, and no trap is taken.
		a.Wfi()
		a.Li(asm.A0, 123)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.A0] != 123 {
		t.Error("execution did not continue after wfi wake")
	}
}

func TestCounterGating(t *testing.T) {
	m, h := run(t, 3000, func(a *asm.Asm) {
		a.La(asm.T0, "handler")
		a.Csrw(rv.CSRMtvec, asm.T0)
		// mcounteren = 0: U/S reads of cycle trap.
		a.Csrw(rv.CSRMcounteren, asm.X0)
		pmpOpen(a)
		a.La(asm.T0, "user")
		a.Csrw(rv.CSRMepc, asm.T0)
		a.Li(asm.T3, 3<<11)
		a.Csrrc(asm.X0, rv.CSRMstatus, asm.T3)
		a.Mret()
		a.Label("user")
		a.Csrr(asm.A0, rv.CSRCycle) // must trap
		a.Label("handler")
		a.Csrr(asm.S1, rv.CSRMcause)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.S1] != rv.ExcIllegalInstr {
		t.Errorf("mcause %d, want illegal instruction", h.Regs[asm.S1])
	}
}

func TestTimeCSRUnimplementedOnVF2(t *testing.T) {
	// The VisionFive 2 profile has no time CSR: reads trap even in M-mode.
	// This is the paper's dominant Fig. 3 trap cause.
	m, h := run(t, 2000, func(a *asm.Asm) {
		a.La(asm.T0, "handler")
		a.Csrw(rv.CSRMtvec, asm.T0)
		a.Csrr(asm.A0, rv.CSRTime)
		a.Label("handler")
		a.Csrr(asm.S1, rv.CSRMcause)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.S1] != rv.ExcIllegalInstr {
		t.Errorf("time CSR read must trap on VF2 profile, mcause %d", h.Regs[asm.S1])
	}
}

func TestMretFromNonMTraps(t *testing.T) {
	m, h := run(t, 2000, func(a *asm.Asm) {
		a.La(asm.T0, "handler")
		a.Csrw(rv.CSRMtvec, asm.T0)
		pmpOpen(a)
		a.La(asm.T0, "user")
		a.Csrw(rv.CSRMepc, asm.T0)
		a.Li(asm.T3, 3<<11)
		a.Csrrc(asm.X0, rv.CSRMstatus, asm.T3)
		a.Mret()
		a.Label("user")
		a.Mret() // illegal from U-mode -> this is how vM-mode firmware traps
		a.Label("handler")
		a.Csrr(asm.S1, rv.CSRMcause)
		a.Csrr(asm.S2, rv.CSRMtval)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.S1] != rv.ExcIllegalInstr {
		t.Errorf("mret from U: mcause %d", h.Regs[asm.S1])
	}
	if h.Regs[asm.S2] != uint64(rv.InstrMret) {
		t.Errorf("mtval %#x, want mret encoding", h.Regs[asm.S2])
	}
}

type recordingMonitor struct {
	traps []TrapInfo
	hart  *Hart
}

func (r *recordingMonitor) HandleMTrap(h *Hart) {
	r.traps = append(r.traps, TrapInfo{Cause: h.CSR.Mcause, EPC: h.CSR.Mepc})
	// Emulate: skip the trapping instruction and return.
	h.CSR.Mepc += 4
	h.ReturnMRET()
}

func TestMonitorHookReceivesMTraps(t *testing.T) {
	cfg := VisionFive2()
	cfg.Harts = 1
	m, err := NewMachine(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	mon := &recordingMonitor{}
	m.Harts[0].Monitor = mon

	a := asm.New(DramBase)
	// From M-mode, drop to S and issue an ecall: it must reach the monitor,
	// not simulated code (mtvec is never programmed).
	pmpOpen(a)
	a.La(asm.T0, "svisor")
	a.Csrw(rv.CSRMepc, asm.T0)
	a.Li(asm.T3, 3<<11)
	a.Csrrc(asm.X0, rv.CSRMstatus, asm.T3)
	a.Li(asm.T3, 1<<11)
	a.Csrrs(asm.X0, rv.CSRMstatus, asm.T3) // MPP=S
	a.Mret()
	a.Label("svisor")
	a.Ecall()
	exit(a)
	if err := m.LoadImage(DramBase, a.MustAssemble()); err != nil {
		t.Fatal(err)
	}
	m.Reset(DramBase)
	m.Run(1000)
	mustHalt(t, m)
	if len(mon.traps) != 1 {
		t.Fatalf("monitor saw %d traps, want 1", len(mon.traps))
	}
	if mon.traps[0].Cause != rv.ExcEcallFromS {
		t.Errorf("monitor trap cause %d", mon.traps[0].Cause)
	}
}

func TestMultiHartIPI(t *testing.T) {
	cfg := VisionFive2()
	cfg.Harts = 2
	m, err := NewMachine(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	a := asm.New(DramBase)
	// Both harts start here; hart 1 waits for an IPI, hart 0 sends it.
	a.Csrr(asm.T0, rv.CSRMhartid)
	a.Bnez(asm.T0, "secondary")
	// Hart 0: send IPI to hart 1 (msip[1] at clint+4).
	a.Li(asm.S0, ClintBase+4)
	a.Li(asm.T1, 1)
	a.Sw(asm.T1, asm.S0, 0)
	a.Label("spin") // wait for hart 1 to signal completion in RAM
	a.Li(asm.S1, DramBase+0x3000)
	a.Ld(asm.T2, asm.S1, 0)
	a.Beqz(asm.T2, "spin")
	exit(a)
	a.Label("secondary")
	a.La(asm.T0, "s_handler")
	a.Csrw(rv.CSRMtvec, asm.T0)
	a.Li(asm.T2, 1<<rv.IntMSoft)
	a.Csrw(rv.CSRMie, asm.T2)
	a.Csrrsi(asm.X0, rv.CSRMstatus, 1<<rv.MstatusMIE)
	a.Label("s_wait")
	a.Wfi()
	a.J("s_wait")
	a.Label("s_handler")
	// Clear own msip, signal hart 0.
	a.Li(asm.S0, ClintBase+4)
	a.Sw(asm.X0, asm.S0, 0)
	a.Li(asm.S1, DramBase+0x3000)
	a.Li(asm.T3, 1)
	a.Sd(asm.T3, asm.S1, 0)
	a.Label("s_done")
	a.Wfi()
	a.J("s_done")
	if err := m.LoadImage(DramBase, a.MustAssemble()); err != nil {
		t.Fatal(err)
	}
	m.Reset(DramBase)
	m.Run(100000)
	if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
		t.Fatalf("IPI roundtrip did not complete: %v %q", ok, reason)
	}
}

func TestDMAEngineBypassesPMP(t *testing.T) {
	// DMA copies bypass PMP entirely — the property that motivates the
	// sandbox policy's revocation of DMA MMIO access.
	m, _ := run(t, 2000, func(a *asm.Asm) {
		a.Li(asm.S0, DramBase+0x4000)
		a.Li(asm.T0, 0xCAFE)
		a.Sd(asm.T0, asm.S0, 0)
		a.Li(asm.S1, DMABase)
		a.Li(asm.T1, DramBase+0x4000)
		a.Sd(asm.T1, asm.S1, DMASrc)
		a.Li(asm.T1, DramBase+0x5000)
		a.Sd(asm.T1, asm.S1, DMADst)
		a.Li(asm.T1, 8)
		a.Sd(asm.T1, asm.S1, DMALen)
		a.Sd(asm.X0, asm.S1, DMACtl) // trigger
		a.Li(asm.S2, DramBase+0x5000)
		a.Ld(asm.A0, asm.S2, 0)
		exit(a)
	})
	mustHalt(t, m)
	if m.Harts[0].Regs[asm.A0] != 0xCAFE {
		t.Error("DMA copy did not happen")
	}
}

func TestSretAndSPP(t *testing.T) {
	m, h := run(t, 3000, func(a *asm.Asm) {
		// M -> S -> U via sret; U ecall delegated to S.
		a.Li(asm.T0, 1<<rv.ExcEcallFromU)
		a.Csrw(rv.CSRMedeleg, asm.T0)
		a.La(asm.T0, "strap")
		a.Csrw(rv.CSRStvec, asm.T0)
		pmpOpen(a)
		a.La(asm.T0, "svisor")
		a.Csrw(rv.CSRMepc, asm.T0)
		a.Li(asm.T3, 3<<11)
		a.Csrrc(asm.X0, rv.CSRMstatus, asm.T3)
		a.Li(asm.T3, 1<<11)
		a.Csrrs(asm.X0, rv.CSRMstatus, asm.T3)
		a.Mret()
		a.Label("svisor")
		a.La(asm.T0, "user")
		a.Csrw(rv.CSRSepc, asm.T0)
		// sstatus.SPP=0 already (U).
		a.Sret()
		a.Label("user")
		a.Ecall()
		a.Label("strap")
		a.Csrr(asm.S0, rv.CSRScause)
		a.Csrr(asm.S1, rv.CSRSstatus)
		exit(a)
	})
	mustHalt(t, m)
	if h.Regs[asm.S0] != rv.ExcEcallFromU {
		t.Errorf("scause %d", h.Regs[asm.S0])
	}
	if rv.Bit(h.Regs[asm.S1], rv.MstatusSPP) != 0 {
		t.Error("SPP must record U-mode")
	}
	if h.Mode != rv.ModeS {
		t.Error("final mode")
	}
}

func TestCyclesAdvanceAndTimeDerivation(t *testing.T) {
	m, h := run(t, 5000, func(a *asm.Asm) {
		for i := 0; i < 100; i++ {
			a.Nop()
		}
		exit(a)
	})
	mustHalt(t, m)
	if h.Cycles == 0 {
		t.Error("cycles must advance")
	}
	if m.Clint.Time() == 0 && h.Cycles > m.Cfg.CyclesPerTick {
		t.Error("mtime must advance with cycles")
	}
}

func TestStimecmpOnRVA23(t *testing.T) {
	cfg := RVA23()
	cfg.Harts = 1
	m, err := NewMachine(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	a := asm.New(DramBase)
	// Enable STCE, program stimecmp from M-mode, delegate STI to S,
	// enable SIE+STIE in S... run in M for simplicity: STI is delegated, so
	// check the pending bit appears in sip instead of taking the trap.
	a.Li(asm.T0, 1)
	a.Slli(asm.T0, asm.T0, 63)
	a.Csrw(rv.CSRMenvcfg, asm.T0)  // STCE=1
	a.Csrw(rv.CSRStimecmp, asm.X0) // deadline 0: always pending
	a.Li(asm.T1, 1<<rv.IntSTimer)
	a.Csrw(rv.CSRMideleg, asm.T1)
	a.Csrr(asm.A0, rv.CSRSip)
	exit(a)
	if err := m.LoadImage(DramBase, a.MustAssemble()); err != nil {
		t.Fatal(err)
	}
	m.Reset(DramBase)
	m.Run(1000)
	mustHalt(t, m)
	if m.Harts[0].Regs[asm.A0]&(1<<rv.IntSTimer) == 0 {
		t.Error("Sstc comparator must assert STIP")
	}
}
