package hart

import (
	"testing"

	"govfm/internal/asm"
	"govfm/internal/rv"
)

// Superblock-tier tests. The tier only arms when a machine step carries a
// budget above one (Machine.Run under the sequential scheduler, or a
// parallel slice), so these tests compare END STATES after Run(budget)
// rather than stepping per-instruction — per-step lockstep would never
// execute a block. The interpreter configuration of the same program is
// the oracle; cycle and instret counters must match bit for bit.

// sbMachine builds one single-hart machine loaded with body, with the
// fast path and superblock tier set as given.
func sbMachine(t *testing.T, body func(a *asm.Asm), fast, sb bool) *Machine {
	t.Helper()
	return sbMachineN(t, 1, body, fast, sb)
}

func sbMachineN(t *testing.T, harts int, body func(a *asm.Asm), fast, sb bool) *Machine {
	t.Helper()
	a := asm.New(DramBase)
	body(a)
	img, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	cfg := VisionFive2()
	cfg.Harts = harts
	m, err := NewMachine(cfg, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(DramBase, img); err != nil {
		t.Fatal(err)
	}
	m.Reset(DramBase)
	m.SetFastPath(fast)
	m.SetSuperblock(sb)
	return m
}

// sbCompareEnd asserts two finished machines agree on every per-hart
// architectural observable, cycle counters included.
func sbCompareEnd(t *testing.T, want, got *Machine) {
	t.Helper()
	wh, wr := want.Halted()
	gh, gr := got.Halted()
	if wh != gh || wr != gr {
		t.Fatalf("halt: want=%v/%q got=%v/%q", wh, wr, gh, gr)
	}
	for i := range want.Harts {
		hw, hg := want.Harts[i], got.Harts[i]
		if hw.Cycles != hg.Cycles || hw.Instret != hg.Instret || hw.SInstret != hg.SInstret {
			t.Fatalf("hart%d counters: want cycles=%d instret=%d/%d got cycles=%d instret=%d/%d",
				i, hw.Cycles, hw.Instret, hw.SInstret, hg.Cycles, hg.Instret, hg.SInstret)
		}
		if hw.PC != hg.PC || hw.Mode != hg.Mode {
			t.Fatalf("hart%d pc/mode: want=%#x/%v got=%#x/%v", i, hw.PC, hw.Mode, hg.PC, hg.Mode)
		}
		if hw.Regs != hg.Regs {
			for r := range hw.Regs {
				if hw.Regs[r] != hg.Regs[r] {
					t.Fatalf("hart%d x%d: want=%#x got=%#x", i, r, hw.Regs[r], hg.Regs[r])
				}
			}
		}
		for _, c := range []struct {
			name   string
			wv, gv uint64
		}{
			{"mstatus", hw.CSR.Mstatus, hg.CSR.Mstatus},
			{"mcause", hw.CSR.Mcause, hg.CSR.Mcause},
			{"mepc", hw.CSR.Mepc, hg.CSR.Mepc},
			{"satp", hw.CSR.Satp, hg.CSR.Satp},
		} {
			if c.wv != c.gv {
				t.Fatalf("hart%d %s: want=%#x got=%#x", i, c.name, c.wv, c.gv)
			}
		}
	}
}

// hotLoopBody emits a straight-line ALU loop of `iters` passes — long
// enough to cross the translation heat threshold many times over.
func hotLoopBody(iters uint64) func(a *asm.Asm) {
	return func(a *asm.Asm) {
		a.Li(asm.A0, 0)
		a.Li(asm.A1, 3)
		a.Li(asm.S1, iters)
		a.Label("loop")
		a.Add(asm.A0, asm.A0, asm.A1)
		a.Xor(asm.A2, asm.A0, asm.S1)
		a.Slli(asm.A3, asm.A2, 1)
		a.Addi(asm.S1, asm.S1, -1)
		a.Bnez(asm.S1, "loop")
		exit(a)
	}
}

// TestSuperblockHotLoop runs a hot loop under the interpreter, the fast
// path, and the full stack, and requires bit-identical end states while
// the full stack actually retires instructions inside blocks.
func TestSuperblockHotLoop(t *testing.T) {
	interp := sbMachine(t, hotLoopBody(200), false, false)
	fast := sbMachine(t, hotLoopBody(200), true, false)
	full := sbMachine(t, hotLoopBody(200), true, true)
	for _, m := range []*Machine{interp, fast, full} {
		m.Run(5000)
		mustHalt(t, m)
	}
	sbCompareEnd(t, interp, fast)
	sbCompareEnd(t, interp, full)
	p := &full.Harts[0].Perf
	if p.SBTranslations == 0 || p.SBRetired == 0 {
		t.Fatalf("superblock tier never engaged: translations=%d retired=%d",
			p.SBTranslations, p.SBRetired)
	}
	if fast.Harts[0].Perf.SBRetired != 0 {
		t.Fatalf("superblocks retired with the tier off: %d", fast.Harts[0].Perf.SBRetired)
	}
}

// TestSuperblockSelfModify patches an instruction inside a loop that has
// already been translated into a superblock: the store must invalidate
// the block (via the predecode page watch) and the patched encoding must
// execute, with counters identical to the interpreter.
func TestSuperblockSelfModify(t *testing.T) {
	patched := encodeOne(t, func(a *asm.Asm) { a.Addi(asm.A0, asm.A0, 100) })
	body := func(a *asm.Asm) {
		a.Li(asm.A0, 0)
		a.Li(asm.S1, 40) // well past the heat threshold before the patch
		a.La(asm.T0, "target")
		a.Li(asm.T1, uint64(patched))
		a.Label("loop")
		a.Label("target")
		a.Addi(asm.A0, asm.A0, 1)
		a.Addi(asm.S1, asm.S1, -1)
		a.Bnez(asm.S1, "loop")
		a.Bnez(asm.T3, "done") // second fall-through: finished
		// Loop is hot and translated; patch its first instruction and run
		// it once more — the re-entry must fetch the patched encoding.
		a.Li(asm.T3, 1)
		a.Sw(asm.T1, asm.T0, 0)
		a.Li(asm.S1, 1)
		a.J("loop")
		a.Label("done")
		exit(a)
	}
	interp := sbMachine(t, body, false, false)
	full := sbMachine(t, body, true, true)
	interp.Run(5000)
	full.Run(5000)
	mustHalt(t, interp)
	mustHalt(t, full)
	sbCompareEnd(t, interp, full)
	h := full.Harts[0]
	if h.Regs[asm.A0] != 40+100 {
		t.Errorf("a0 = %d, want 140 (stale superblock executed?)", h.Regs[asm.A0])
	}
	if h.Perf.SBRetired == 0 {
		t.Fatalf("superblock tier never engaged")
	}
}

// TestSuperblockSv39Loop runs a hot S-mode loop through a translated
// address, rewrites the leaf PTE mid-run (with sfence.vma), and loops
// again: blocks translated under the old mapping must not survive, and
// counters must match the interpreter exactly.
func TestSuperblockSv39Loop(t *testing.T) {
	body := func(a *asm.Asm) {
		sv39Prologue(a)
		a.Label("smain")
		a.Li(asm.S2, testVA)
		a.Li(asm.A0, 0)
		a.Li(asm.S1, 40)
		a.Label("loop1")
		a.Ld(asm.T0, asm.S2, 0) // 111
		a.Add(asm.A0, asm.A0, asm.T0)
		a.Addi(asm.S1, asm.S1, -1)
		a.Bnez(asm.S1, "loop1")
		a.Li(asm.T0, ptL0) // remap the leaf through the identity window
		a.Li(asm.T1, pte(frameP2, pteRWAD))
		a.Sd(asm.T1, asm.T0, 0)
		a.SfenceVMA(asm.X0, asm.X0)
		a.Li(asm.S1, 40)
		a.Label("loop2")
		a.Ld(asm.T0, asm.S2, 0) // must read 222 now
		a.Add(asm.A1, asm.A1, asm.T0)
		a.Addi(asm.S1, asm.S1, -1)
		a.Bnez(asm.S1, "loop2")
		a.Ecall()
		a.Label("mtrap")
		exit(a)
	}
	interp := sbMachine(t, body, false, false)
	full := sbMachine(t, body, true, true)
	interp.Run(5000)
	full.Run(5000)
	mustHalt(t, interp)
	mustHalt(t, full)
	sbCompareEnd(t, interp, full)
	h := full.Harts[0]
	if h.Regs[asm.A0] != 40*111 || h.Regs[asm.A1] != 40*222 {
		t.Errorf("a0/a1 = %d/%d, want %d/%d (stale translation in a block?)",
			h.Regs[asm.A0], h.Regs[asm.A1], 40*111, 40*222)
	}
	if h.Perf.SBRetired == 0 {
		t.Fatalf("superblock tier never engaged under Sv39")
	}
}

// TestSuperblockPMPEpochGuard reconfigures a PMP entry on every loop pass:
// each reconfiguration bumps the PMP epoch, so every translated block's
// entry guard goes stale immediately. End state must still be identical,
// and guard misses must actually occur.
func TestSuperblockPMPEpochGuard(t *testing.T) {
	body := func(a *asm.Asm) {
		pmpOpen(a)
		a.Li(asm.A0, 0)
		a.Li(asm.S1, 200)
		a.Label("loop")
		a.Csrw(rv.CSRPmpaddr0+6, asm.S1) // entry 6 is OFF: inert, but bumps the epoch
		a.Addi(asm.A0, asm.A0, 1)
		a.Xor(asm.A2, asm.A0, asm.S1)
		a.Addi(asm.S1, asm.S1, -1)
		a.Bnez(asm.S1, "loop")
		exit(a)
	}
	interp := sbMachine(t, body, false, false)
	full := sbMachine(t, body, true, true)
	interp.Run(5000)
	full.Run(5000)
	mustHalt(t, interp)
	mustHalt(t, full)
	sbCompareEnd(t, interp, full)
	if full.Harts[0].Perf.SBGuardMisses == 0 {
		t.Fatalf("no guard misses despite per-pass PMP epoch bumps")
	}
}

// TestSuperblockTimerInterruptExact is the interrupt-placement regression
// test: a machine timer comparator crosses in the middle of a hot,
// translated loop, with the interrupt enabled. The superblock machine
// must take the trap after exactly the same retired instruction — same
// instret, same cycles, same loop counter — as the interpreter, i.e. a
// block never runs past the cycle at which the interpreter's per-step
// interrupt latch would have preempted.
func TestSuperblockTimerInterruptExact(t *testing.T) {
	body := func(a *asm.Asm) {
		a.La(asm.T0, "mtrap")
		a.Csrw(rv.CSRMtvec, asm.T0)
		a.Li(asm.T0, 1<<7) // MTIE
		a.Csrw(rv.CSRMie, asm.T0)
		a.Li(asm.T0, 1<<3) // MIE
		a.Csrrs(asm.X0, rv.CSRMstatus, asm.T0)
		a.Li(asm.A0, 0)
		a.Li(asm.S1, 100000)
		a.Label("loop")
		a.Addi(asm.A0, asm.A0, 1)
		a.Xor(asm.A2, asm.A0, asm.S1)
		a.Addi(asm.S1, asm.S1, -1)
		a.Bnez(asm.S1, "loop")
		exit(a) // only reached if the interrupt never fires
		a.Label("mtrap")
		a.Csrr(asm.A5, rv.CSRMcause)
		exit(a)
	}
	const cmp = 13 // mtime ticks; crosses a few thousand cycles in, mid-loop
	interp := sbMachine(t, body, false, false)
	full := sbMachine(t, body, true, true)
	interp.Clint.SetMtimecmp(0, cmp)
	full.Clint.SetMtimecmp(0, cmp)
	interp.Run(100000)
	full.Run(100000)
	mustHalt(t, interp)
	mustHalt(t, full)
	sbCompareEnd(t, interp, full)
	h := full.Harts[0]
	if h.Regs[asm.A5] != rv.Cause(7, true) {
		t.Fatalf("mcause = %#x, want machine timer interrupt", h.Regs[asm.A5])
	}
	if h.Regs[asm.A0] == 0 || h.Regs[asm.A0] >= 100000 {
		t.Fatalf("interrupt did not land mid-loop: a0 = %d", h.Regs[asm.A0])
	}
	if h.Perf.SBRetired == 0 {
		t.Fatalf("superblock tier never engaged before the interrupt")
	}
}

// TestSuperblockParQuantumBoundary runs the hot loop under the parallel
// scheduler with a deliberately odd quantum, superblocks on and off: a
// block must stop at exactly the cycle the per-instruction slice loop
// would have, so end states (cycles included) match bit for bit.
func TestSuperblockParQuantumBoundary(t *testing.T) {
	for _, q := range []uint64{7, 64, 1024} {
		off := sbMachine(t, hotLoopBody(300), true, false)
		on := sbMachine(t, hotLoopBody(300), true, true)
		for _, m := range []*Machine{off, on} {
			m.Sched = SchedPar
			m.Quantum = q
			m.RunParBudget(5000)
		}
		mustHalt(t, off)
		mustHalt(t, on)
		sbCompareEnd(t, off, on)
		if on.Harts[0].Perf.SBRetired == 0 {
			t.Fatalf("quantum %d: superblock tier never engaged under par", q)
		}
	}
}

// TestSuperblockForkDropsTranslations is the snapshot/fork satellite: a
// fork taken mid-run must not carry translated blocks (they are host
// state), the child must re-heat and re-translate, and parent and child
// must finish bit-identically.
func TestSuperblockForkDropsTranslations(t *testing.T) {
	parent := sbMachine(t, hotLoopBody(400), true, true)
	parent.Run(600) // hot: blocks translated and running
	if parent.Harts[0].Perf.SBTranslations == 0 {
		t.Fatalf("parent never translated before the fork")
	}
	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	hc := child.Harts[0]
	if !hc.sb.on {
		t.Fatalf("child lost the superblock tier switch")
	}
	if len(hc.fast.pages) != 0 || hc.fast.lastPage != nil {
		t.Fatalf("child carried host decode state across the fork")
	}
	parent.Run(5000)
	child.Run(5000)
	mustHalt(t, parent)
	mustHalt(t, child)
	sbCompareEnd(t, parent, child)
	if hc.Perf.SBTranslations == 0 {
		t.Fatalf("child never re-translated after the fork")
	}
}

// TestSuperblockImageRoundTrip checks the tier switch travels in the
// image both ways.
func TestSuperblockImageRoundTrip(t *testing.T) {
	for _, sb := range []bool{true, false} {
		m := sbMachine(t, hotLoopBody(50), true, sb)
		m.Run(100)
		img, err := m.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if img.Superblock != sb {
			t.Fatalf("image records superblock=%v, want %v", img.Superblock, sb)
		}
		spawned, err := SpawnFromImage(img)
		if err != nil {
			t.Fatal(err)
		}
		if spawned.SuperblockEnabled() != sb {
			t.Fatalf("spawned machine superblock=%v, want %v", spawned.SuperblockEnabled(), sb)
		}
	}
}

// TestInvalidatePhysPageDropsLastPage is the satellite-1 regression: the
// 1-entry page-lookup cache must be dropped when the page it fronts is
// invalidated, so no later fetch can trust the stale pointer without
// re-entering the map.
func TestInvalidatePhysPageDropsLastPage(t *testing.T) {
	m := sbMachine(t, hotLoopBody(100), true, true)
	m.Run(20)
	h := m.Harts[0]
	if h.fast.lastPage == nil {
		t.Fatalf("precondition: lookup cache not warm after 20 steps")
	}
	page := h.fast.lastPageBase
	h.InvalidatePhysPage(page)
	if h.fast.lastPage != nil || h.fast.lastPageBase != 0 {
		t.Fatalf("lookup cache survived InvalidatePhysPage of its own page")
	}
	// Invalidating an unrelated page must keep the cache.
	m.Run(20)
	if h.fast.lastPage == nil {
		t.Fatalf("precondition: lookup cache not re-warmed")
	}
	h.InvalidatePhysPage(h.fast.lastPageBase + 0x100000)
	if h.fast.lastPage == nil {
		t.Fatalf("lookup cache dropped by an unrelated page invalidation")
	}
}

// TestCrossHartCodePatch is the behavioral half of satellite 1: another
// hart stores into the page hart 0 is currently executing (and fronting
// with the 1-entry lookup cache); hart 0 must fetch the patched encoding.
func TestCrossHartCodePatch(t *testing.T) {
	patched := encodeOne(t, func(a *asm.Asm) { a.Addi(asm.A0, asm.A0, 100) })
	body := func(a *asm.Asm) {
		a.Csrr(asm.T0, rv.CSRMhartid)
		a.Bnez(asm.T0, "hart1")
		// Hart 0: delay loop long enough for hart 1's patch to land, then
		// fall through the patched slot.
		a.Li(asm.A0, 0)
		a.Li(asm.S1, 200)
		a.Label("delay")
		a.Addi(asm.S1, asm.S1, -1)
		a.Bnez(asm.S1, "delay")
		a.Label("slot")
		a.Nop() // hart 1 patches this to addi a0,a0,100
		exit(a)
		// Hart 1: patch hart 0's slot, then spin until the machine halts.
		a.Label("hart1")
		a.La(asm.T1, "slot")
		a.Li(asm.T2, uint64(patched))
		a.Sw(asm.T2, asm.T1, 0)
		a.Label("spin")
		a.J("spin")
	}
	for _, sb := range []bool{false, true} {
		m := sbMachineN(t, 2, body, true, sb)
		m.Run(2000)
		mustHalt(t, m)
		if got := m.Harts[0].Regs[asm.A0]; got != 100 {
			t.Errorf("sb=%v: a0 = %d, want 100 (stale decode after cross-hart patch)", sb, got)
		}
	}
}

// TestDecPageGenWrap is the satellite-2 regression: forcing the predecode
// generation counter through its uint32 wrap must leave no stale tag
// valid and no translated block alive.
func TestDecPageGenWrap(t *testing.T) {
	dp := &decPage{gen: ^uint32(0)}
	for i := range dp.tags {
		dp.tags[i] = dp.gen // every slot valid at the pre-wrap generation
	}
	dp.blocks = new([1024]*sblock)
	dp.blocks[3] = &sblock{gen: dp.gen}
	dp.invalidate()
	if dp.gen != 1 {
		t.Fatalf("gen after wrap = %d, want 1", dp.gen)
	}
	for i, tag := range dp.tags {
		if tag == dp.gen {
			t.Fatalf("slot %d still validates after generation wrap", i)
		}
	}
	if dp.blocks != nil {
		t.Fatalf("translated blocks survived the generation wrap")
	}
	// A non-wrapping invalidate must keep the block array (guard checks
	// catch the gen change) but advance the generation.
	dp2 := &decPage{gen: 7}
	dp2.tags[0] = 7
	dp2.blocks = new([1024]*sblock)
	dp2.blocks[0] = &sblock{gen: 7}
	dp2.invalidate()
	if dp2.gen != 8 || dp2.tags[0] == dp2.gen {
		t.Fatalf("plain invalidate broken: gen=%d tag=%d", dp2.gen, dp2.tags[0])
	}
	if b := dp2.blocks[0]; b == nil || b.gen == dp2.gen {
		t.Fatalf("plain invalidate must leave blocks to the entry guard")
	}
}
