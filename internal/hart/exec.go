package hart

import (
	"govfm/internal/mem"
	"govfm/internal/mmu"
	"govfm/internal/rv"
)

// execute decodes and executes one instruction (the slow-path entry;
// fetchFast hands exec a cached predecoded record directly).
func (h *Hart) execute(raw uint32) {
	d := rv.Decode(raw)
	h.exec(&d)
}

// exec executes one predecoded instruction. On success it retires the
// instruction (PC and instret update); on an exception it performs trap
// entry with the PC still pointing at the faulting instruction.
func (h *Hart) exec(d *rv.Decoded) {
	if h.inSlice && d.Op == rv.OpAmo {
		// AMOs are globally ordered read-modify-writes; park so the barrier
		// replays them with direct bus access, where cross-hart atomicity
		// holds trivially.
		h.park = parkReplay
		return
	}
	start := h.Cycles
	h.charge(h.Cfg.Cost.Instr)
	mode := h.Mode // retirement mode: sret/mret change h.Mode mid-execute
	next := h.PC + 4
	var ei *Exc

	raw := d.Raw
	op, rd, rs1, rs2, f3, f7 := d.Op, d.Rd, d.Rs1, d.Rs2, d.F3, d.F7

	switch op {
	case rv.OpLui:
		h.SetReg(rd, d.Imm)
	case rv.OpAuipc:
		h.SetReg(rd, h.PC+d.Imm)
	case rv.OpJal:
		h.SetReg(rd, h.PC+4)
		next = h.PC + d.Imm
		h.charge(h.Cfg.Cost.Branch)
	case rv.OpJalr:
		if f3 != 0 {
			ei = h.exc(rv.ExcIllegalInstr, uint64(raw))
			break
		}
		t := h.Reg(rs1) + d.Imm
		h.SetReg(rd, h.PC+4)
		next = t &^ 1
		h.charge(h.Cfg.Cost.Branch)
	case rv.OpBranch:
		a, b := h.Reg(rs1), h.Reg(rs2)
		var take bool
		switch f3 {
		case 0:
			take = a == b
		case 1:
			take = a != b
		case 4:
			take = int64(a) < int64(b)
		case 5:
			take = int64(a) >= int64(b)
		case 6:
			take = a < b
		case 7:
			take = a >= b
		default:
			ei = h.exc(rv.ExcIllegalInstr, uint64(raw))
		}
		if ei == nil && take {
			next = h.PC + d.Imm
			h.charge(h.Cfg.Cost.Branch)
		}
	case rv.OpLoad:
		va := h.Reg(rs1) + d.Imm
		var v uint64
		switch f3 {
		case 0: // lb
			v, ei = h.loadExt(va, 1, true)
		case 1: // lh
			v, ei = h.loadExt(va, 2, true)
		case 2: // lw
			v, ei = h.loadExt(va, 4, true)
		case 3: // ld
			v, ei = h.loadExt(va, 8, false)
		case 4: // lbu
			v, ei = h.loadExt(va, 1, false)
		case 5: // lhu
			v, ei = h.loadExt(va, 2, false)
		case 6: // lwu
			v, ei = h.loadExt(va, 4, false)
		default:
			ei = h.exc(rv.ExcIllegalInstr, uint64(raw))
		}
		if ei == nil {
			h.SetReg(rd, v)
		}
	case rv.OpStore:
		va := h.Reg(rs1) + d.Imm
		switch f3 {
		case 0, 1, 2, 3:
			_, ei = h.MemAccess(va, 1<<f3, mem.Write, h.Reg(rs2), false)
		default:
			ei = h.exc(rv.ExcIllegalInstr, uint64(raw))
		}
	case rv.OpImm:
		imm := d.Imm
		a := h.Reg(rs1)
		switch f3 {
		case 0:
			h.SetReg(rd, a+imm)
		case 1:
			if raw>>26 != 0 {
				ei = h.exc(rv.ExcIllegalInstr, uint64(raw))
				break
			}
			h.SetReg(rd, a<<(imm&63))
		case 2:
			h.SetReg(rd, boolTo64(int64(a) < int64(imm)))
		case 3:
			h.SetReg(rd, boolTo64(a < imm))
		case 4:
			h.SetReg(rd, a^imm)
		case 5:
			sh := imm & 63
			switch raw >> 26 {
			case 0:
				h.SetReg(rd, a>>sh)
			case 0x10:
				h.SetReg(rd, uint64(int64(a)>>sh))
			default:
				ei = h.exc(rv.ExcIllegalInstr, uint64(raw))
			}
		case 6:
			h.SetReg(rd, a|imm)
		case 7:
			h.SetReg(rd, a&imm)
		}
	case rv.OpImm32:
		imm := d.Imm
		a := h.Reg(rs1)
		switch f3 {
		case 0: // addiw
			h.SetReg(rd, rv.SignExtend(uint64(uint32(a+imm)), 32))
		case 1: // slliw
			if f7 != 0 {
				ei = h.exc(rv.ExcIllegalInstr, uint64(raw))
				break
			}
			h.SetReg(rd, rv.SignExtend(uint64(uint32(a)<<(imm&31)), 32))
		case 5:
			sh := imm & 31
			switch f7 {
			case 0: // srliw
				h.SetReg(rd, rv.SignExtend(uint64(uint32(a)>>sh), 32))
			case 0x20: // sraiw
				h.SetReg(rd, rv.SignExtend(uint64(int32(a)>>sh), 32))
			default:
				ei = h.exc(rv.ExcIllegalInstr, uint64(raw))
			}
		default:
			ei = h.exc(rv.ExcIllegalInstr, uint64(raw))
		}
	case rv.OpReg:
		a, b := h.Reg(rs1), h.Reg(rs2)
		switch {
		case f7 == 0x01: // M extension
			h.charge(h.Cfg.Cost.MulDiv)
			h.SetReg(rd, mulDiv64(f3, a, b))
		case f7 == 0x00 || f7 == 0x20:
			var v uint64
			v, ei = h.aluOp(f3, f7, a, b, raw)
			if ei == nil {
				h.SetReg(rd, v)
			}
		default:
			ei = h.exc(rv.ExcIllegalInstr, uint64(raw))
		}
	case rv.OpReg32:
		a, b := h.Reg(rs1), h.Reg(rs2)
		switch {
		case f7 == 0x01: // M extension, word forms
			h.charge(h.Cfg.Cost.MulDiv)
			var v uint64
			v, ei = h.mulDiv32(f3, a, b, raw)
			if ei == nil {
				h.SetReg(rd, v)
			}
		case f7 == 0x00 || f7 == 0x20:
			var v uint64
			v, ei = h.aluOp32(f3, f7, a, b, raw)
			if ei == nil {
				h.SetReg(rd, v)
			}
		default:
			ei = h.exc(rv.ExcIllegalInstr, uint64(raw))
		}
	case rv.OpMiscMem:
		switch f3 {
		case 0: // fence: no-op in this memory model
		case 1: // fence.i: synchronize the instruction stream with prior
			// stores — for the host that means dropping predecoded pages.
			h.flushDecode()
		default:
			ei = h.exc(rv.ExcIllegalInstr, uint64(raw))
		}
	case rv.OpAmo:
		var v uint64
		v, ei = h.amo(raw, f3, f7>>2, rs1, rs2)
		if ei == nil {
			h.SetReg(rd, v)
		}
	case rv.OpSystem:
		next, ei = h.system(raw, f3, rd, rs1, rs2, f7, next)
	default:
		ei = h.exc(rv.ExcIllegalInstr, uint64(raw))
	}

	if ei != nil {
		if ei == errParked {
			// The instruction needed a device mid-slice. Nothing
			// architectural changed before the refused access (registers,
			// PC, and the reservation are only touched on success); undo
			// the cycle charges and let the barrier replay it.
			h.Cycles = start
			h.park = parkReplay
			return
		}
		h.raise(ei)
		return
	}
	h.PC = next
	h.Instret++
	if mode == rv.ModeS {
		h.SInstret++
	}
}

func boolTo64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (h *Hart) loadExt(va uint64, size int, signed bool) (uint64, *Exc) {
	v, ei := h.MemAccess(va, size, mem.Read, 0, false)
	if ei != nil {
		return 0, ei
	}
	if signed {
		v = rv.SignExtend(v, uint(8*size))
	}
	return v, nil
}

func (h *Hart) aluOp(f3, f7 uint32, a, b uint64, raw uint32) (uint64, *Exc) {
	switch {
	case f3 == 0 && f7 == 0:
		return a + b, nil
	case f3 == 0 && f7 == 0x20:
		return a - b, nil
	case f3 == 1 && f7 == 0:
		return a << (b & 63), nil
	case f3 == 2 && f7 == 0:
		return boolTo64(int64(a) < int64(b)), nil
	case f3 == 3 && f7 == 0:
		return boolTo64(a < b), nil
	case f3 == 4 && f7 == 0:
		return a ^ b, nil
	case f3 == 5 && f7 == 0:
		return a >> (b & 63), nil
	case f3 == 5 && f7 == 0x20:
		return uint64(int64(a) >> (b & 63)), nil
	case f3 == 6 && f7 == 0:
		return a | b, nil
	case f3 == 7 && f7 == 0:
		return a & b, nil
	}
	return 0, h.exc(rv.ExcIllegalInstr, uint64(raw))
}

func (h *Hart) aluOp32(f3, f7 uint32, a, b uint64, raw uint32) (uint64, *Exc) {
	switch {
	case f3 == 0 && f7 == 0:
		return rv.SignExtend(uint64(uint32(a)+uint32(b)), 32), nil
	case f3 == 0 && f7 == 0x20:
		return rv.SignExtend(uint64(uint32(a)-uint32(b)), 32), nil
	case f3 == 1 && f7 == 0:
		return rv.SignExtend(uint64(uint32(a)<<(b&31)), 32), nil
	case f3 == 5 && f7 == 0:
		return rv.SignExtend(uint64(uint32(a)>>(b&31)), 32), nil
	case f3 == 5 && f7 == 0x20:
		return rv.SignExtend(uint64(int32(a)>>(b&31)), 32), nil
	}
	return 0, h.exc(rv.ExcIllegalInstr, uint64(raw))
}

func mulDiv64(f3 uint32, a, b uint64) uint64 {
	switch f3 {
	case 0: // mul
		return a * b
	case 1: // mulh
		return uint64(mulh64(int64(a), int64(b)))
	case 2: // mulhsu
		return mulhsu64(int64(a), b)
	case 3: // mulhu
		return mulhu64(a, b)
	case 4: // div
		if b == 0 {
			return ^uint64(0)
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return a // overflow: result = dividend
		}
		return uint64(int64(a) / int64(b))
	case 5: // divu
		if b == 0 {
			return ^uint64(0)
		}
		return a / b
	case 6: // rem
		if b == 0 {
			return a
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case 7: // remu
		if b == 0 {
			return a
		}
		return a % b
	}
	return 0
}

func (h *Hart) mulDiv32(f3 uint32, a, b uint64, raw uint32) (uint64, *Exc) {
	x, y := int32(a), int32(b)
	switch f3 {
	case 0: // mulw
		return rv.SignExtend(uint64(uint32(x*y)), 32), nil
	case 4: // divw
		if y == 0 {
			return ^uint64(0), nil
		}
		if x == -1<<31 && y == -1 {
			return rv.SignExtend(uint64(uint32(x)), 32), nil
		}
		return rv.SignExtend(uint64(uint32(x/y)), 32), nil
	case 5: // divuw
		if uint32(b) == 0 {
			return ^uint64(0), nil
		}
		return rv.SignExtend(uint64(uint32(a)/uint32(b)), 32), nil
	case 6: // remw
		if y == 0 {
			return rv.SignExtend(uint64(uint32(x)), 32), nil
		}
		if x == -1<<31 && y == -1 {
			return 0, nil
		}
		return rv.SignExtend(uint64(uint32(x%y)), 32), nil
	case 7: // remuw
		if uint32(b) == 0 {
			return rv.SignExtend(uint64(uint32(a)), 32), nil
		}
		return rv.SignExtend(uint64(uint32(a)%uint32(b)), 32), nil
	}
	return 0, h.exc(rv.ExcIllegalInstr, uint64(raw))
}

// 128-bit high-multiply helpers.
func mulhu64(a, b uint64) uint64 {
	aLo, aHi := a&0xFFFFFFFF, a>>32
	bLo, bHi := b&0xFFFFFFFF, b>>32
	t := aLo*bLo>>32 + aHi*bLo
	u := t&0xFFFFFFFF + aLo*bHi
	return aHi*bHi + t>>32 + u>>32
}

func mulh64(a, b int64) int64 {
	neg := (a < 0) != (b < 0)
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = uint64(-a)
	}
	if b < 0 {
		ub = uint64(-b)
	}
	hi, lo := mulhu64(ua, ub), ua*ub
	if neg {
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	return int64(hi)
}

func mulhsu64(a int64, b uint64) uint64 {
	if a >= 0 {
		return mulhu64(uint64(a), b)
	}
	ua := uint64(-a)
	hi, lo := mulhu64(ua, b), ua*b
	hi = ^hi
	if lo == 0 {
		hi++
	}
	return hi
}

// amo executes the A-extension instructions. AMOs and LR/SC require natural
// alignment regardless of platform misaligned-access support.
func (h *Hart) amo(raw, f3 uint32, f5 uint32, rs1, rs2 uint32) (uint64, *Exc) {
	var size int
	switch f3 {
	case 2:
		size = 4
	case 3:
		size = 8
	default:
		return 0, h.exc(rv.ExcIllegalInstr, uint64(raw))
	}
	va := h.Reg(rs1)
	switch f5 {
	case 0x02: // lr
		if rs2 != 0 {
			return 0, h.exc(rv.ExcIllegalInstr, uint64(raw))
		}
		v, ei := h.MemAccess(va, size, mem.Read, 0, true)
		if ei != nil {
			return 0, ei
		}
		h.resValid, h.resAddr = true, va
		if size == 4 {
			v = rv.SignExtend(v, 32)
		}
		return v, nil
	case 0x03: // sc
		if !h.resValid || h.resAddr != va {
			h.resValid = false
			// Still must be a valid access; probe alignment.
			if va%uint64(size) != 0 {
				return 0, h.exc(rv.ExcStoreAddrMisaligned, va)
			}
			return 1, nil // failure
		}
		h.resValid = false
		_, ei := h.MemAccess(va, size, mem.Write, h.Reg(rs2), true)
		if ei != nil {
			return 0, ei
		}
		return 0, nil // success
	}
	// Read-modify-write AMOs.
	if _, ok := rv.AmoCompute(f5, size, 0, 0); !ok {
		return 0, h.exc(rv.ExcIllegalInstr, uint64(raw))
	}
	old, ei := h.MemAccess(va, size, mem.Read, 0, true)
	if ei != nil {
		return 0, ei
	}
	newVal, _ := rv.AmoCompute(f5, size, old, h.Reg(rs2))
	if _, ei := h.MemAccess(va, size, mem.Write, newVal, true); ei != nil {
		return 0, ei
	}
	if size == 4 {
		old = rv.SignExtend(old, 32)
	}
	return old, nil
}

// system handles the SYSTEM opcode: CSR ops, ecall/ebreak, xRET, wfi, and
// sfence.vma. It returns the next PC (xRET and traps redirect).
func (h *Hart) system(raw uint32, f3, rd, rs1, rs2, f7 uint32, next uint64) (uint64, *Exc) {
	if f3 == rv.F3Priv {
		switch {
		case raw == rv.InstrEcall:
			var cause uint64
			switch h.Mode {
			case rv.ModeU:
				cause = rv.ExcEcallFromU
			case rv.ModeS:
				cause = rv.ExcEcallFromS
				if h.V {
					cause = rv.ExcEcallFromVS
				}
			default:
				cause = rv.ExcEcallFromM
			}
			return next, h.exc(cause, 0)
		case raw == rv.InstrEbreak:
			return next, h.exc(rv.ExcBreakpoint, h.PC)
		case raw == rv.InstrMret:
			if h.Mode != rv.ModeM {
				return next, h.exc(rv.ExcIllegalInstr, uint64(raw))
			}
			h.ReturnMRET()
			return h.PC, nil
		case raw == rv.InstrSret:
			if h.V {
				// From the guest: VU always traps, VS traps under VTSR
				// (mstatus.TSR governs HS-mode only).
				if h.Mode == rv.ModeU ||
					rv.Bit(h.CSR.Hstatus, rv.HstatusVTSR) != 0 {
					return next, h.exc(rv.ExcVirtualInstr, uint64(raw))
				}
			} else if h.Mode == rv.ModeU ||
				(h.Mode == rv.ModeS && rv.Bit(h.CSR.Mstatus, rv.MstatusTSR) != 0) {
				return next, h.exc(rv.ExcIllegalInstr, uint64(raw))
			}
			h.returnSRET()
			return h.PC, nil
		case raw == rv.InstrWfi:
			if h.V {
				// TW traps any less-privileged wfi as illegal; below it,
				// VU-mode and VTW raise the virtual-instruction exception.
				if rv.Bit(h.CSR.Mstatus, rv.MstatusTW) != 0 {
					return next, h.exc(rv.ExcIllegalInstr, uint64(raw))
				}
				if h.Mode == rv.ModeU ||
					rv.Bit(h.CSR.Hstatus, rv.HstatusVTW) != 0 {
					return next, h.exc(rv.ExcVirtualInstr, uint64(raw))
				}
			} else if h.Mode == rv.ModeU ||
				(h.Mode == rv.ModeS && rv.Bit(h.CSR.Mstatus, rv.MstatusTW) != 0) {
				return next, h.exc(rv.ExcIllegalInstr, uint64(raw))
			}
			h.Waiting = true
			return next, nil
		case f7 == rv.SfenceVMAFunct7 && rd == 0:
			if h.V {
				if h.Mode == rv.ModeU ||
					rv.Bit(h.CSR.Hstatus, rv.HstatusVTVM) != 0 {
					return next, h.exc(rv.ExcVirtualInstr, uint64(raw))
				}
			} else if h.Mode == rv.ModeU ||
				(h.Mode == rv.ModeS && rv.Bit(h.CSR.Mstatus, rv.MstatusTVM) != 0) {
				return next, h.exc(rv.ExcIllegalInstr, uint64(raw))
			}
			h.charge(h.Cfg.Cost.TLBFlush)
			// sfence.vma: drop cached translations. The host TLB has no
			// per-vaddr/ASID precision, so specific forms flush globally —
			// conservative, never wrong.
			h.flushTLB()
			return next, nil
		case (f7 == rv.HfenceVVMAFunct7 || f7 == rv.HfenceGVMAFunct7) && rd == 0:
			if !h.Cfg.HasH {
				return next, h.exc(rv.ExcIllegalInstr, uint64(raw))
			}
			if h.V {
				return next, h.exc(rv.ExcVirtualInstr, uint64(raw))
			}
			if h.Mode == rv.ModeU {
				return next, h.exc(rv.ExcIllegalInstr, uint64(raw))
			}
			// TVM traps hfence.gvma from HS-mode, like hgatp accesses.
			if f7 == rv.HfenceGVMAFunct7 && h.Mode == rv.ModeS &&
				rv.Bit(h.CSR.Mstatus, rv.MstatusTVM) != 0 {
				return next, h.exc(rv.ExcIllegalInstr, uint64(raw))
			}
			h.charge(h.Cfg.Cost.TLBFlush)
			h.flushTLB()
			return next, nil
		}
		return next, h.exc(rv.ExcIllegalInstr, uint64(raw))
	}

	if f3 == rv.F3HLSV {
		return h.hlsv(raw, rd, rs1, rs2, next)
	}

	// Zicsr.
	csr := rv.CSROf(raw)
	var wantWrite, wantRead bool
	var operand uint64
	switch f3 {
	case rv.F3Csrrw, rv.F3Csrrwi:
		wantWrite, wantRead = true, rd != 0
	case rv.F3Csrrs, rv.F3Csrrc, rv.F3Csrrsi, rv.F3Csrrci:
		wantWrite, wantRead = rs1 != 0, true
	default:
		return next, h.exc(rv.ExcIllegalInstr, uint64(raw))
	}
	if f3 >= rv.F3Csrrwi {
		operand = uint64(rs1) // zimm
	} else {
		operand = h.Reg(rs1)
	}

	if wantWrite && rv.CSRReadOnly(csr) {
		return next, h.exc(rv.ExcIllegalInstr, uint64(raw))
	}
	old, ei := h.csrRead(csr)
	if ei != nil {
		return next, h.exc(ei.Cause, uint64(raw))
	}
	if wantWrite {
		var newVal uint64
		switch f3 {
		case rv.F3Csrrw, rv.F3Csrrwi:
			newVal = operand
		case rv.F3Csrrs, rv.F3Csrrsi:
			newVal = old | operand
		case rv.F3Csrrc, rv.F3Csrrci:
			newVal = old &^ operand
		}
		if ei := h.csrWrite(csr, newVal); ei != nil {
			return next, h.exc(ei.Cause, uint64(raw))
		}
	}
	if wantRead {
		h.SetReg(rd, old)
	}
	return next, nil
}

// hlsv executes the hypervisor virtual-machine load/store instructions
// (hlv/hlvx/hsv): a single memory access performed with the guest's
// two-stage translation context from HS-mode (or from U-mode when
// hstatus.HU permits), at the privilege selected by hstatus.SPVP. hlvx
// checks execute permission at the VS stage in place of read.
func (h *Hart) hlsv(raw uint32, rd, rs1, rs2 uint32, next uint64) (uint64, *Exc) {
	store, size, signed, hlvx, ok := rv.HLSVDecode(raw)
	if !ok || !h.Cfg.HasH {
		return next, h.exc(rv.ExcIllegalInstr, uint64(raw))
	}
	if h.V {
		return next, h.exc(rv.ExcVirtualInstr, uint64(raw))
	}
	if h.Mode == rv.ModeU && rv.Bit(h.CSR.Hstatus, rv.HstatusHU) == 0 {
		return next, h.exc(rv.ExcIllegalInstr, uint64(raw))
	}
	priv := rv.ModeU
	if rv.Bit(h.CSR.Hstatus, rv.HstatusSPVP) != 0 {
		priv = rv.ModeS
	}
	acc := mem.Read
	if store {
		acc = mem.Write
	}
	va := h.Reg(rs1)
	if va%uint64(size) != 0 && !h.Cfg.HWMisaligned {
		return next, h.exc(misalignedCause(acc), va)
	}
	env := h.mmuEnv(priv, true)
	env.HLVX = hlvx
	res := mmu.Translate(env, va, acc)
	if !res.OK {
		if h.inSlice && h.mem.TakeBlocked() {
			return next, errParked
		}
		ei := h.exc(res.Cause, va)
		ei.Gpa = res.GPA
		return next, ei
	}
	if !h.CSR.PMP.Check(res.PA, size, acc, priv) {
		return next, h.exc(accessFaultCause(acc), va)
	}
	h.charge(h.Cfg.Cost.MemAccess)
	if store {
		if !h.mem.Store(res.PA, size, h.Reg(rs2)) {
			if h.inSlice && h.mem.TakeBlocked() {
				return next, errParked
			}
			return next, h.exc(rv.ExcStoreAccessFault, va)
		}
		if h.resValid && res.PA&^7 == h.resAddr&^7 {
			h.resValid = false
		}
		if !h.inSlice {
			for _, p := range h.peers {
				p.KillReservation(res.PA)
			}
		}
		return next, nil
	}
	v, loaded := h.mem.Load(res.PA, size)
	if !loaded {
		if h.inSlice && h.mem.TakeBlocked() {
			return next, errParked
		}
		return next, h.exc(rv.ExcLoadAccessFault, va)
	}
	if signed {
		v = rv.SignExtend(v, uint(8*size))
	}
	h.SetReg(rd, v)
	return next, nil
}
