package hart

import (
	"fmt"
	"sync/atomic"

	"govfm/internal/dev/clint"
	"govfm/internal/dev/iopmp"
	"govfm/internal/dev/plic"
	"govfm/internal/dev/uart"
	"govfm/internal/mem"
	"govfm/internal/obs"
	"govfm/internal/rv"
)

// Physical memory map of the simulated platforms (the usual RISC-V SoC
// layout both evaluation boards follow).
const (
	ExitBase  = 0x0010_0000 // test-finisher device (QEMU sifive_test style)
	ClintBase = 0x0200_0000
	PlicBase  = 0x0C00_0000
	UartBase  = 0x1000_0000
	DMABase   = 0x3000_0000 // DMA-capable device (sandbox policy target)
	IOPMPBase = 0x3100_0000 // IOPMP unit (when the platform has one)
	DramBase  = 0x8000_0000
)

// Exit-device command values.
const (
	ExitPass = 0x5555
	ExitFail = 0x3333
)

// exitDevice halts the machine when guest code stores a completion code,
// standing in for the SiFive test finisher used to end QEMU runs.
type exitDevice struct {
	m *Machine
}

func (d *exitDevice) Name() string { return "exit" }

func (d *exitDevice) Load(off uint64, size int) (uint64, bool) { return 0, true }

func (d *exitDevice) Store(off uint64, size int, v uint64) bool {
	switch uint32(v) & 0xFFFF {
	case ExitPass:
		d.m.halt("guest-exit-pass")
	case ExitFail:
		d.m.halt(fmt.Sprintf("guest-exit-fail(code=%d)", v>>16))
	default:
		d.m.halt(fmt.Sprintf("guest-exit(%#x)", v))
	}
	return true
}

// Machine is a full simulated platform: harts, DRAM, and devices, with a
// deterministic round-robin scheduler and a shared mtime derived from
// consumed cycles.
type Machine struct {
	Cfg   *Config
	Bus   *mem.Bus
	Harts []*Hart
	Clint *clint.Clint
	Plic  *plic.Plic
	Uart  *uart.Uart
	DMA   *DMAEngine
	IOPMP *iopmp.IOPMP // non-nil when Cfg.HasIOPMP

	DramSize uint64

	// Sched selects the execution engine: SchedSeq (default) is the
	// per-instruction round-robin; SchedPar runs each hart on its own
	// goroutine for Quantum simulated cycles between barriers (sched.go).
	Sched SchedKind
	// Quantum is the parallel slice length in simulated cycles
	// (0 = DefaultQuantum). Ignored under SchedSeq.
	Quantum uint64

	halted     bool
	haltReason string

	timeRemainder uint64

	// trace receives scheduler barrier instants (AttachObs).
	trace *obs.Tracer
	// par is the parallel scheduler's reusable round state.
	par parScratch
	// inRound is set for the duration of a parallel quantum round, during
	// which per-hart store buffers hold uncommitted state; Snapshot refuses
	// to run while it is set.
	inRound atomic.Bool
}

// NewMachine builds a platform from a profile with the given DRAM size.
func NewMachine(cfg *Config, dramSize uint64) (*Machine, error) {
	m := &Machine{
		Cfg:      cfg,
		Bus:      mem.NewBus(),
		Clint:    clint.New(cfg.Harts),
		Plic:     plic.New(cfg.Harts),
		Uart:     uart.New(),
		DramSize: dramSize,
	}
	m.DMA = NewDMAEngine(m.Bus)
	if err := m.Bus.AddRAM(DramBase, dramSize); err != nil {
		return nil, err
	}
	for _, d := range []struct {
		base, size uint64
		dev        mem.Device
	}{
		{ExitBase, 0x1000, &exitDevice{m}},
		{ClintBase, clint.Size, m.Clint},
		{PlicBase, plic.Size, m.Plic},
		{UartBase, uart.Size, m.Uart},
		{DMABase, DMARegionSize, m.DMA},
	} {
		if err := m.Bus.AddDevice(d.base, d.size, d.dev); err != nil {
			return nil, err
		}
	}
	if cfg.HasIOPMP {
		m.IOPMP = iopmp.New(8)
		if err := m.Bus.AddDevice(IOPMPBase, iopmp.Size, m.IOPMP); err != nil {
			return nil, err
		}
		m.DMA.Check = m.IOPMP.Check
	}
	for i := 0; i < cfg.Harts; i++ {
		h := New(i, cfg, m.Bus)
		h.TimeFn = m.Clint.Time
		m.Harts = append(m.Harts, h)
	}
	// Wire every hart to its peers so a store can kill their overlapping
	// LR/SC reservations, as cache coherence does on real hardware.
	if cfg.Harts > 1 {
		for _, h := range m.Harts {
			for _, p := range m.Harts {
				if p != h {
					h.peers = append(h.peers, p)
				}
			}
		}
	}
	return m, nil
}

func (m *Machine) halt(reason string) {
	m.halted = true
	m.haltReason = reason
}

// Halted reports whether the machine has stopped, and why.
func (m *Machine) Halted() (bool, string) { return m.halted, m.haltReason }

// SetFastPath toggles every host-side acceleration cache in the machine:
// the harts' predecode/TLB/flattened-PMP caches and the PLIC's pending
// memoization. Off reproduces the pre-acceleration simulator exactly; the
// architectural results are identical either way (enforced by the
// fastpath-equivalence fuzz gate).
func (m *Machine) SetFastPath(on bool) {
	for _, h := range m.Harts {
		h.SetFastPath(on)
	}
	m.Plic.SetCache(on)
}

// LoadImage copies a binary image into RAM at addr.
func (m *Machine) LoadImage(addr uint64, img []byte) error {
	return m.Bus.WriteBytes(addr, img)
}

// Reset returns the machine to power-on state: every hart at the reset
// vector with a0 = hartid, the standard RISC-V boot convention (a1, the
// devicetree pointer, is left zero); CSRs (including PMP) at reset values;
// cycle/instret counters zeroed; LR/SC reservations dropped; and the
// devices — CLINT, PLIC, UART, DMA, IOPMP — back to their power-on state
// with mtime zero. Host-side hooks (Monitor, Watchdog, Trace, TimeFn,
// OnTrap) and the Perf counters survive, so a harness can keep observing
// across boots. A second boot on a reused machine is indistinguishable
// from a first boot on a fresh one.
func (m *Machine) Reset(pc uint64) {
	for _, h := range m.Harts {
		h.PC = pc
		h.Mode = rv.ModeM
		h.Regs = [32]uint64{}
		h.Regs[10] = uint64(h.ID) // a0
		h.Waiting = false
		h.Stopped = false
		h.Halted = false
		h.HaltReason = ""
		h.Cycles, h.Instret, h.SInstret = 0, 0, 0
		h.resValid, h.resAddr = false, 0
		h.CSR = newCSRFile(h.Cfg)
		h.inSlice, h.park = false, parkNone
		if h.mem != nil {
			h.mem.Discard()
		}
		// The fresh CSR file brings a fresh PMP: reapply the fast-path mode
		// and drop every host cache keyed on the old file's epoch.
		h.SetFastPath(h.fast.on)
	}
	m.halted = false
	m.haltReason = ""
	m.timeRemainder = 0
	m.Clint.Reset()
	m.Plic.Reset()
	m.Uart.Reset()
	m.DMA.Reset()
	if m.IOPMP != nil {
		m.IOPMP.Reset()
	}
}

// Step advances every runnable hart by one instruction and the global time
// by the cycles the slowest hart consumed (cores share a wall clock). This
// is always the sequential scheduler; Run dispatches on Sched.
func (m *Machine) Step() {
	// Latch every hart's interrupt lines before any hart steps, so an MSIP
	// or mtimecmp write during this step becomes visible to every hart at
	// the same step boundary. (Sampling per hart just before its own step
	// made visibility asymmetric by hart ID: hart 0's IPI reached hart 1
	// within the step, but not vice versa.)
	for _, h := range m.Harts {
		h.CSR.SetHWLines(m.Clint.Pending(h.ID) | m.Plic.Pending(h.ID))
	}
	var maxConsumed uint64
	for _, h := range m.Harts {
		before := h.Cycles
		h.Step()
		if h.Watchdog != nil {
			h.Watchdog(h)
		}
		if c := h.Cycles - before; c > maxConsumed {
			maxConsumed = c
		}
		if h.Halted && !m.halted {
			m.halt("hart-halt: " + h.HaltReason)
		}
	}
	m.timeRemainder += maxConsumed
	if m.Cfg.CyclesPerTick > 0 {
		m.Clint.Advance(m.timeRemainder / m.Cfg.CyclesPerTick)
		m.timeRemainder %= m.Cfg.CyclesPerTick
	}
}

// Run advances the machine until it halts or maxSteps machine steps elapse
// (under SchedPar, until every hart has executed up to maxSteps
// instructions). It returns the number of steps taken and whether the
// machine halted.
func (m *Machine) Run(maxSteps uint64) (uint64, bool) {
	if m.Sched == SchedPar {
		return m.runPar(maxSteps)
	}
	var steps uint64
	for steps = 0; steps < maxSteps && !m.halted; steps++ {
		m.Step()
	}
	return steps, m.halted
}

// RunUntil steps until cond returns true, the machine halts, or maxSteps
// elapse; it reports whether cond was met. Under SchedPar, cond is
// evaluated at quantum-round boundaries.
func (m *Machine) RunUntil(cond func() bool, maxSteps uint64) bool {
	if m.Sched == SchedPar {
		return m.runParUntil(cond, maxSteps)
	}
	for steps := uint64(0); steps < maxSteps && !m.halted; steps++ {
		if cond() {
			return true
		}
		m.Step()
	}
	return cond()
}

// Cycles returns hart 0's cycle counter, the conventional clock for
// single-workload measurements. It deliberately reads only hart 0 — on a
// multi-hart machine, use HartCycles to name the hart you mean.
func (m *Machine) Cycles() uint64 { return m.HartCycles(0) }

// HartCycles returns hart i's cycle counter.
func (m *Machine) HartCycles(i int) uint64 { return m.Harts[i].Cycles }

// DMARegionSize is the size of the DMA engine's register window.
const DMARegionSize = 0x1000

// DMAEngine is a deliberately simple DMA-capable device: software programs
// source, destination, and length, then writes the control register to
// trigger a copy performed directly on the physical bus — bypassing PMP,
// exactly the threat the paper's sandbox policy closes by revoking firmware
// access to DMA-capable MMIO regions (§4.3, §7).
type DMAEngine struct {
	bus  *mem.Bus
	src  uint64
	dst  uint64
	len  uint64
	stat uint64 // 0 = idle/ok, 1 = error, 2 = IOPMP denial

	// Check, when non-nil, is the IOPMP hook consulted before every
	// master access.
	Check func(addr uint64, size int, write bool) bool
}

// DMA register offsets.
const (
	DMASrc  = 0x00
	DMADst  = 0x08
	DMALen  = 0x10
	DMACtl  = 0x18
	DMAStat = 0x20
)

// NewDMAEngine returns a DMA engine operating on bus.
func NewDMAEngine(bus *mem.Bus) *DMAEngine { return &DMAEngine{bus: bus} }

// Reset returns the engine to power-on register values.
func (d *DMAEngine) Reset() {
	d.src, d.dst, d.len, d.stat = 0, 0, 0, 0
}

// Name implements mem.Device.
func (d *DMAEngine) Name() string { return "dma" }

// Load implements mem.Device.
func (d *DMAEngine) Load(off uint64, size int) (uint64, bool) {
	if size != 8 {
		return 0, false
	}
	switch off {
	case DMASrc:
		return d.src, true
	case DMADst:
		return d.dst, true
	case DMALen:
		return d.len, true
	case DMAStat:
		return d.stat, true
	}
	return 0, false
}

// Store implements mem.Device. Writing any value to DMACtl triggers the
// copy.
func (d *DMAEngine) Store(off uint64, size int, v uint64) bool {
	if size != 8 {
		return false
	}
	switch off {
	case DMASrc:
		d.src = v
	case DMADst:
		d.dst = v
	case DMALen:
		d.len = v
	case DMACtl:
		d.stat = 0
		if d.Check != nil &&
			(!d.Check(d.src, int(d.len), false) || !d.Check(d.dst, int(d.len), true)) {
			d.stat = 2 // blocked by the IOPMP
			return true
		}
		data, err := d.bus.ReadBytes(d.src, int(d.len))
		if err != nil {
			d.stat = 1
			return true
		}
		if err := d.bus.WriteBytes(d.dst, data); err != nil {
			d.stat = 1
		}
	default:
		return false
	}
	return true
}
