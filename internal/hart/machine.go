package hart

import (
	"fmt"
	"sync/atomic"

	"govfm/internal/dev/clint"
	"govfm/internal/dev/iopmp"
	"govfm/internal/dev/plic"
	"govfm/internal/dev/uart"
	"govfm/internal/mem"
	"govfm/internal/obs"
	"govfm/internal/rv"
)

// Physical memory map of the simulated platforms (the usual RISC-V SoC
// layout both evaluation boards follow).
const (
	ExitBase  = 0x0010_0000 // test-finisher device (QEMU sifive_test style)
	ClintBase = 0x0200_0000
	PlicBase  = 0x0C00_0000
	UartBase  = 0x1000_0000
	DMABase   = 0x3000_0000 // DMA-capable device (sandbox policy target)
	IOPMPBase = 0x3100_0000 // IOPMP unit (when the platform has one)
	DramBase  = 0x8000_0000
)

// Exit-device command values.
const (
	ExitPass = 0x5555
	ExitFail = 0x3333
)

// exitDevice halts the machine when guest code stores a completion code,
// standing in for the SiFive test finisher used to end QEMU runs.
type exitDevice struct {
	m *Machine
}

func (d *exitDevice) Name() string { return "exit" }

func (d *exitDevice) Load(off uint64, size int) (uint64, bool) { return 0, true }

func (d *exitDevice) Store(off uint64, size int, v uint64) bool {
	switch uint32(v) & 0xFFFF {
	case ExitPass:
		d.m.halt("guest-exit-pass")
	case ExitFail:
		d.m.halt(fmt.Sprintf("guest-exit-fail(code=%d)", v>>16))
	default:
		d.m.halt(fmt.Sprintf("guest-exit(%#x)", v))
	}
	return true
}

// Machine is a full simulated platform: harts, DRAM, and devices, with a
// deterministic round-robin scheduler and a shared mtime derived from
// consumed cycles.
type Machine struct {
	Cfg   *Config
	Bus   *mem.Bus
	Harts []*Hart
	Clint *clint.Clint
	Plic  *plic.Plic
	Uart  *uart.Uart
	DMA   *DMAEngine
	IOPMP *iopmp.IOPMP // non-nil when Cfg.HasIOPMP

	DramSize uint64

	// Sched selects the execution engine: SchedSeq (default) is the
	// per-instruction round-robin; SchedPar runs each hart on its own
	// goroutine for Quantum simulated cycles between barriers (sched.go).
	Sched SchedKind
	// Quantum is the parallel slice length in simulated cycles
	// (0 = DefaultQuantum). Ignored under SchedSeq.
	Quantum uint64

	halted     bool
	haltReason string

	timeRemainder uint64

	// trace receives scheduler barrier instants (AttachObs).
	trace *obs.Tracer
	// par is the parallel scheduler's reusable round state.
	par parScratch
	// inRound is set for the duration of a parallel quantum round, during
	// which per-hart store buffers hold uncommitted state; Snapshot refuses
	// to run while it is set.
	inRound atomic.Bool
}

// NewMachine builds a platform from a profile with the given DRAM size.
func NewMachine(cfg *Config, dramSize uint64) (*Machine, error) {
	m := &Machine{
		Cfg:      cfg,
		Bus:      mem.NewBus(),
		Clint:    clint.New(cfg.Harts),
		Plic:     plic.New(cfg.Harts),
		Uart:     uart.New(),
		DramSize: dramSize,
	}
	m.DMA = NewDMAEngine(m.Bus)
	if err := m.Bus.AddRAM(DramBase, dramSize); err != nil {
		return nil, err
	}
	for _, d := range []struct {
		base, size uint64
		dev        mem.Device
	}{
		{ExitBase, 0x1000, &exitDevice{m}},
		{ClintBase, clint.Size, m.Clint},
		{PlicBase, plic.Size, m.Plic},
		{UartBase, uart.Size, m.Uart},
		{DMABase, DMARegionSize, m.DMA},
	} {
		if err := m.Bus.AddDevice(d.base, d.size, d.dev); err != nil {
			return nil, err
		}
	}
	if cfg.HasIOPMP {
		m.IOPMP = iopmp.New(8)
		if err := m.Bus.AddDevice(IOPMPBase, iopmp.Size, m.IOPMP); err != nil {
			return nil, err
		}
		m.DMA.Check = m.IOPMP.Check
	}
	for i := 0; i < cfg.Harts; i++ {
		h := New(i, cfg, m.Bus)
		h.TimeFn = m.Clint.Time
		m.Harts = append(m.Harts, h)
	}
	// Wire every hart to its peers so a store can kill their overlapping
	// LR/SC reservations, as cache coherence does on real hardware.
	if cfg.Harts > 1 {
		for _, h := range m.Harts {
			for _, p := range m.Harts {
				if p != h {
					h.peers = append(h.peers, p)
				}
			}
		}
	}
	return m, nil
}

func (m *Machine) halt(reason string) {
	m.halted = true
	m.haltReason = reason
}

// Halted reports whether the machine has stopped, and why.
func (m *Machine) Halted() (bool, string) { return m.halted, m.haltReason }

// SetFastPath toggles every host-side acceleration cache in the machine:
// the harts' predecode/TLB/flattened-PMP caches and the PLIC's pending
// memoization. Off reproduces the pre-acceleration simulator exactly; the
// architectural results are identical either way (enforced by the
// fastpath-equivalence fuzz gate).
func (m *Machine) SetFastPath(on bool) {
	for _, h := range m.Harts {
		h.SetFastPath(on)
	}
	m.Plic.SetCache(on)
}

// SetSuperblock toggles the superblock binary-translation tier on every
// hart (superblock.go). Translations are host state only; toggling drops
// them all and changes no architectural state.
func (m *Machine) SetSuperblock(on bool) {
	for _, h := range m.Harts {
		h.SetSuperblock(on)
	}
}

// SuperblockEnabled reports whether the superblock tier is on (hart 0
// stands for the machine; the setter applies uniformly).
func (m *Machine) SuperblockEnabled() bool {
	return len(m.Harts) > 0 && m.Harts[0].sb.on
}

// LoadImage copies a binary image into RAM at addr.
func (m *Machine) LoadImage(addr uint64, img []byte) error {
	return m.Bus.WriteBytes(addr, img)
}

// Reset returns the machine to power-on state: every hart at the reset
// vector with a0 = hartid, the standard RISC-V boot convention (a1, the
// devicetree pointer, is left zero); CSRs (including PMP) at reset values;
// cycle/instret counters zeroed; LR/SC reservations dropped; and the
// devices — CLINT, PLIC, UART, DMA, IOPMP — back to their power-on state
// with mtime zero. Host-side hooks (Monitor, Watchdog, Trace, TimeFn,
// OnTrap) and the Perf counters survive, so a harness can keep observing
// across boots. A second boot on a reused machine is indistinguishable
// from a first boot on a fresh one.
func (m *Machine) Reset(pc uint64) {
	for _, h := range m.Harts {
		h.PC = pc
		h.Mode = rv.ModeM
		h.Regs = [32]uint64{}
		h.Regs[10] = uint64(h.ID) // a0
		h.Waiting = false
		h.Stopped = false
		h.Halted = false
		h.HaltReason = ""
		h.Cycles, h.Instret, h.SInstret = 0, 0, 0
		h.resValid, h.resAddr = false, 0
		oldEpoch := h.CSR.PMP.Epoch()
		h.CSR = newCSRFile(h.Cfg)
		// Reset is a power cycle: PMP locks are legitimately cleared. The
		// mutation epoch, however, must stay monotonic per hart — a fresh
		// file restarts at zero, and external caches (TLB, decode) tag
		// entries with fill-time epochs that a rewound counter could
		// eventually re-validate.
		h.CSR.PMP.AdvanceEpoch(oldEpoch + 1)
		h.inSlice, h.park = false, parkNone
		h.sb.armed = false
		if h.mem != nil {
			h.mem.Discard()
		}
		// The fresh CSR file brings a fresh PMP: reapply the fast-path mode
		// and drop every host cache keyed on the old file's epoch.
		h.SetFastPath(h.fast.on)
	}
	m.halted = false
	m.haltReason = ""
	m.timeRemainder = 0
	m.Clint.Reset()
	m.Plic.Reset()
	m.Uart.Reset()
	m.DMA.Reset()
	if m.IOPMP != nil {
		m.IOPMP.Reset()
	}
}

// Step advances every runnable hart by one instruction and the global time
// by the cycles the slowest hart consumed (cores share a wall clock). This
// is always the sequential scheduler; Run dispatches on Sched.
func (m *Machine) Step() { m.stepSeq(1) }

// stepSeq runs one sequential machine step with a step budget. With a
// budget above one and an eligible machine — a single hart with the
// superblock tier and fast paths on, and no per-step watchdog — the hart
// may retire up to budget instructions from one translated superblock
// within this step. The block is bounded by sbSeqHeadroom so mtime, the
// interrupt latch points, and the whole architectural trace stay
// bit-identical to per-instruction stepping. The return value is the
// number of sequential steps this call was equivalent to (>= 1).
func (m *Machine) stepSeq(budget uint64) uint64 {
	// Latch every hart's interrupt lines before any hart steps, so an MSIP
	// or mtimecmp write during this step becomes visible to every hart at
	// the same step boundary. (Sampling per hart just before its own step
	// made visibility asymmetric by hart ID: hart 0's IPI reached hart 1
	// within the step, but not vice versa.)
	for _, h := range m.Harts {
		h.CSR.SetHWLines(m.Clint.Pending(h.ID) | m.Plic.Pending(h.ID))
	}
	stepEq := uint64(1)
	var maxConsumed uint64
	// Superblocks stay off on multi-hart machines under this scheduler:
	// one hart leaping ahead would change the per-instruction round-robin
	// interleaving the machine's memory model is defined by.
	arm := budget > 1 && len(m.Harts) == 1
	for _, h := range m.Harts {
		before := h.Cycles
		if arm && h.sb.on && h.fast.on && h.Watchdog == nil &&
			h.Waiting && !h.Stopped && !h.Halted {
			// WFI fast-forward: batch the idle polls this step's latch has
			// already proven identical (see wfiBatch). Falls through to a
			// normal step when the hart is waking or a comparator is close.
			if k := m.wfiBatch(h, budget); k > 0 {
				if k > stepEq {
					stepEq = k
				}
				if c := h.Cycles - before; c > maxConsumed {
					maxConsumed = c
				}
				continue
			}
		}
		if arm && h.sb.on && h.fast.on && h.Watchdog == nil &&
			!h.Waiting && !h.Stopped && !h.Halted {
			// The timer-headroom cycle limit is deferred to runBlock via
			// the lazy closure: most armed steps never dispatch a block
			// (cold code, untranslatable entries, waiting in a trap
			// handler), and paying sbSeqHeadroom's divisions on each of
			// them shows up on trap-heavy workloads.
			if h.sb.limitFn == nil {
				hh := h
				h.sb.limitFn = func() uint64 { return m.sbSeqHeadroom(hh) }
			}
			h.sb.armed = true
			h.sb.lazyLimit = true
			h.sb.stepLimit = budget
			h.Step()
			h.sb.armed = false
			h.sb.lazyLimit = false
			if h.sb.retired > stepEq {
				stepEq = h.sb.retired
			}
		} else {
			h.Step()
		}
		if h.Watchdog != nil {
			h.Watchdog(h)
		}
		if c := h.Cycles - before; c > maxConsumed {
			maxConsumed = c
		}
		if h.Halted && !m.halted {
			m.halt("hart-halt: " + h.HaltReason)
		}
	}
	m.timeRemainder += maxConsumed
	if m.Cfg.CyclesPerTick > 0 {
		m.Clint.Advance(m.timeRemainder / m.Cfg.CyclesPerTick)
		m.timeRemainder %= m.Cfg.CyclesPerTick
	}
	return stepEq
}

// wfiBatch advances a WFI-waiting hart by up to budget idle polls in one
// call, returning how many sequential steps it was equivalent to (0 = not
// applicable, the caller must take a normal step). It is the idle-tail
// counterpart of the superblock cycle-budget argument: an idle poll reads
// only state that is constant between timer-comparator crossings (devices
// change state on MMIO or mtime ticks, never spontaneously, and no other
// hart runs — the caller gates on a single-hart machine), so k identical
// polls can be charged at once provided every batched poll's latch point
// would still have seen the comparators in the future. sbSeqHeadroom gives
// exactly that horizon. Cycles, mtime advancement, and the wake step all
// land bit-identically with per-instruction stepping.
func (m *Machine) wfiBatch(h *Hart, budget uint64) uint64 {
	// Mirror the idle-poll preconditions of Hart.Step exactly: a deliverable
	// or merely-pending-and-enabled interrupt wakes the hart, and Mie == 0
	// is a lockup halt — all handled by the normal step path.
	if h.CSR.Mip(h.Time())&h.CSR.Mie != 0 || h.CSR.Mie == 0 {
		return 0
	}
	w := h.Cfg.Cost.WFIIdle
	if w == 0 {
		return 0
	}
	l := m.sbSeqHeadroom(h)
	if l == 0 {
		return 0 // a comparator crosses at this step's Advance: step normally
	}
	// Poll i (1-based) latches with consumed (i-1)*w, which must stay
	// strictly below the headroom, so at most ceil(l/w) polls batch.
	k := budget
	if l != ^uint64(0) && (l+w-1)/w < k {
		k = (l + w - 1) / w
	}
	if k > 1<<32 {
		k = 1 << 32 // bound the per-call leap; Run simply calls again
	}
	if k == 0 {
		return 0
	}
	h.Cycles += k * w
	return k
}

// sbSeqHeadroom returns how many cycles hart h may consume inside one
// sequential machine step before a timer comparator that is currently in
// the future would fire — i.e. before per-instruction stepping would have
// latched a newly pending timer interrupt between two instructions. Blocks
// must stop strictly below this limit. Timers are the only mip sources
// that can change mid-block: every other contributor needs an MMIO store,
// a CSR write, or a trap, all of which terminate a block (and external
// input from a harness arrives between Run calls, not mid-step).
func (m *Machine) sbSeqHeadroom(h *Hart) uint64 {
	cpt := m.Cfg.CyclesPerTick
	if cpt == 0 {
		return ^uint64(0) // frozen clock: no timer can ever fire
	}
	now := m.Clint.Time()
	limit := ^uint64(0)
	consider := func(t uint64) {
		if t <= now {
			// Already expired: pending (or masked) exactly as the
			// interpreter sees it; nothing new can fire mid-block.
			return
		}
		d := t - now
		if d > ^uint64(0)/cpt {
			return // unreachably far: d*cpt would overflow
		}
		// The interpreter latches before each instruction with
		// mtime = now + (timeRemainder+consumed)/cpt, so the comparator
		// stays in the future exactly while consumed < d*cpt - remainder.
		if l := d*cpt - m.timeRemainder; l < limit {
			limit = l
		}
	}
	consider(m.Clint.Mtimecmp(h.ID))
	if h.CSR.SstcEnabled() {
		consider(h.CSR.Stimecmp)
	}
	return limit
}

// Run advances the machine until it halts or maxSteps machine steps elapse
// (under SchedPar, until every hart has executed up to maxSteps
// instructions). It returns the number of steps taken and whether the
// machine halted. Under SchedSeq each iteration may retire a whole
// superblock, counted as the equivalent number of per-instruction steps.
func (m *Machine) Run(maxSteps uint64) (uint64, bool) {
	if m.Sched == SchedPar {
		return m.runPar(maxSteps)
	}
	var steps uint64
	for steps < maxSteps && !m.halted {
		steps += m.stepSeq(maxSteps - steps)
	}
	return steps, m.halted
}

// RunUntil steps until cond returns true, the machine halts, or maxSteps
// elapse; it reports whether cond was met. Under SchedPar, cond is
// evaluated at quantum-round boundaries.
func (m *Machine) RunUntil(cond func() bool, maxSteps uint64) bool {
	if m.Sched == SchedPar {
		return m.runParUntil(cond, maxSteps)
	}
	for steps := uint64(0); steps < maxSteps && !m.halted; steps++ {
		if cond() {
			return true
		}
		m.Step()
	}
	return cond()
}

// Cycles returns hart 0's cycle counter, the conventional clock for
// single-workload measurements. It deliberately reads only hart 0 — on a
// multi-hart machine, use HartCycles to name the hart you mean.
func (m *Machine) Cycles() uint64 { return m.HartCycles(0) }

// HartCycles returns hart i's cycle counter.
func (m *Machine) HartCycles(i int) uint64 { return m.Harts[i].Cycles }

// DMARegionSize is the size of the DMA engine's register window.
const DMARegionSize = 0x1000

// DMAEngine is a deliberately simple DMA-capable device: software programs
// source, destination, and length, then writes the control register to
// trigger a copy performed directly on the physical bus — bypassing PMP,
// exactly the threat the paper's sandbox policy closes by revoking firmware
// access to DMA-capable MMIO regions (§4.3, §7).
type DMAEngine struct {
	bus  *mem.Bus
	src  uint64
	dst  uint64
	len  uint64
	stat uint64 // 0 = idle/ok, 1 = error, 2 = IOPMP denial

	// Check, when non-nil, is the IOPMP hook consulted before every
	// master access.
	Check func(addr uint64, size int, write bool) bool
}

// DMA register offsets.
const (
	DMASrc  = 0x00
	DMADst  = 0x08
	DMALen  = 0x10
	DMACtl  = 0x18
	DMAStat = 0x20
)

// NewDMAEngine returns a DMA engine operating on bus.
func NewDMAEngine(bus *mem.Bus) *DMAEngine { return &DMAEngine{bus: bus} }

// Reset returns the engine to power-on register values.
func (d *DMAEngine) Reset() {
	d.src, d.dst, d.len, d.stat = 0, 0, 0, 0
}

// Name implements mem.Device.
func (d *DMAEngine) Name() string { return "dma" }

// Load implements mem.Device.
func (d *DMAEngine) Load(off uint64, size int) (uint64, bool) {
	if size != 8 {
		return 0, false
	}
	switch off {
	case DMASrc:
		return d.src, true
	case DMADst:
		return d.dst, true
	case DMALen:
		return d.len, true
	case DMAStat:
		return d.stat, true
	}
	return 0, false
}

// Store implements mem.Device. Writing any value to DMACtl triggers the
// copy.
func (d *DMAEngine) Store(off uint64, size int, v uint64) bool {
	if size != 8 {
		return false
	}
	switch off {
	case DMASrc:
		d.src = v
	case DMADst:
		d.dst = v
	case DMALen:
		d.len = v
	case DMACtl:
		d.stat = 0
		if d.Check != nil &&
			(!d.Check(d.src, int(d.len), false) || !d.Check(d.dst, int(d.len), true)) {
			d.stat = 2 // blocked by the IOPMP
			return true
		}
		data, err := d.bus.ReadBytes(d.src, int(d.len))
		if err != nil {
			d.stat = 1
			return true
		}
		if err := d.bus.WriteBytes(d.dst, data); err != nil {
			d.stat = 1
		}
	default:
		return false
	}
	return true
}
