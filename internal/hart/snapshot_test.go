package hart

import (
	"math/rand"
	"reflect"
	"testing"

	"govfm/internal/asm"
	"govfm/internal/rv"
)

// perturb scrambles one hart's architectural state with seeded randomness —
// the same surface the fault injector attacks.
func perturb(rng *rand.Rand, h *Hart) {
	for i := 1; i < 32; i++ {
		if rng.Intn(2) == 0 {
			h.Regs[i] ^= 1 << rng.Intn(64)
		}
	}
	h.PC = rng.Uint64() &^ 3
	h.Mode = rv.Mode(rng.Intn(3))
	h.Cycles += uint64(rng.Intn(1000))
	h.Instret += uint64(rng.Intn(1000))
	h.SInstret += uint64(rng.Intn(1000))
	h.Waiting = rng.Intn(2) == 0
	c := &h.CSR
	for _, p := range []*uint64{
		&c.Mstatus, &c.Medeleg, &c.Mideleg, &c.Mie, &c.Mtvec, &c.Mscratch,
		&c.Mepc, &c.Mcause, &c.Mtval, &c.Stvec, &c.Sscratch, &c.Sepc,
		&c.Scause, &c.Stval, &c.Satp,
	} {
		*p ^= rng.Uint64()
	}
	for k := range c.Custom {
		c.Custom[k] = rng.Uint64()
	}
	for i := 0; i < c.PMP.NumEntries(); i++ {
		c.PMP.ForceAddr(i, rng.Uint64()&rv.Mask(54))
		c.PMP.ForceCfg(i, byte(rng.Intn(256)))
	}
}

// TestSnapshotRoundTrip is the property behind every replay in the
// differential and chaos harnesses: Restore(Checkpoint()) is the identity,
// no matter how the state was scrambled in between.
func TestSnapshotRoundTrip(t *testing.T) {
	m, h := run(t, 500, func(a *asm.Asm) {
		a.Li(asm.A0, 1)
		a.Csrw(rv.CSRMscratch, asm.A0)
		a.Wfi() // park so run() returns with live, non-trivial state
	})
	rng := rand.New(rand.NewSource(0xC0FFEE))
	for iter := 0; iter < 25; iter++ {
		before := m.Checkpoint()
		perturb(rng, h)
		m.Clint.SetTime(rng.Uint64())
		m.Clint.SetMtimecmp(0, rng.Uint64())
		m.Clint.SetMsip(0, rng.Intn(2) == 0)
		m.Restore(before)
		after := m.Checkpoint()
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("iter %d: restore did not reproduce the checkpoint\nbefore: %+v\nafter:  %+v",
				iter, before.Harts[0], after.Harts[0])
		}
		// A second restore from the same snapshot must also be stable
		// (Restore must not alias snapshot-owned state into the hart).
		perturb(rng, h)
		m.Restore(before)
		if got := m.Checkpoint(); !reflect.DeepEqual(before, got) {
			t.Fatalf("iter %d: snapshot was corrupted by a restore/perturb cycle", iter)
		}
	}
}

// TestSnapshotIsDeep: mutating the hart after Checkpoint must not change
// the snapshot (the reference-typed members — PMP file, custom CSRs — have
// to be deep-copied).
func TestSnapshotIsDeep(t *testing.T) {
	m, h := run(t, 500, func(a *asm.Asm) {
		a.Wfi()
	})
	s := m.Checkpoint()
	pmpAddr := s.Harts[0].CSR.PMP.Addr(0)
	h.CSR.PMP.ForceAddr(0, pmpAddr^0xFFFF)
	h.CSR.Mscratch ^= 1
	if s.Harts[0].CSR.PMP.Addr(0) != pmpAddr {
		t.Error("snapshot PMP file aliases the live hart")
	}
	for k := range h.CSR.Custom {
		h.CSR.Custom[k] ^= 1
		if s.Harts[0].CSR.Custom[k] == h.CSR.Custom[k] {
			t.Error("snapshot custom-CSR map aliases the live hart")
		}
		break
	}
}
