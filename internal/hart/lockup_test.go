package hart

import (
	"strings"
	"testing"

	"govfm/internal/asm"
	"govfm/internal/rv"
)

// TestWFILockupHalts: wfi with mie == 0 can never wake; the machine must
// detect the lockup and halt with a diagnostic rather than spin forever.
func TestWFILockupHalts(t *testing.T) {
	m, h := run(t, 10_000, func(a *asm.Asm) {
		a.Csrw(rv.CSRMie, asm.X0)
		a.Wfi()
		exit(a) // unreachable
	})
	halted, reason := m.Halted()
	if !halted {
		t.Fatal("machine did not halt on a hopeless wfi")
	}
	if !strings.Contains(reason, ErrLockup.Error()) {
		t.Errorf("halt reason %q does not name the lockup", reason)
	}
	if reason == "guest-exit-pass" {
		t.Error("the instruction after wfi must never execute")
	}
	if !h.Halted {
		t.Error("hart not marked halted")
	}
}

// TestWFIWithEnabledSourceDoesNotLockup: the lockup detector must not fire
// when a wakeup source is armed — here a timer interrupt that eventually
// pends and resumes execution (mstatus.MIE stays 0, so no trap is taken).
func TestWFIWithEnabledSourceDoesNotLockup(t *testing.T) {
	m, _ := run(t, 200_000, func(a *asm.Asm) {
		a.Li(asm.S1, ClintBase+0xBFF8)
		a.Ld(asm.T1, asm.S1, 0)
		a.Addi(asm.T1, asm.T1, 20)
		a.Li(asm.S2, ClintBase+0x4000)
		a.Sd(asm.T1, asm.S2, 0)
		a.Li(asm.T2, 1<<rv.IntMTimer)
		a.Csrw(rv.CSRMie, asm.T2)
		a.Wfi()
		exit(a)
	})
	mustHalt(t, m)
}
