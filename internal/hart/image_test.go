package hart

import (
	"strings"
	"sync"
	"testing"

	"govfm/internal/asm"
)

// forkProg is a single-hart workload with a data-dependent store pattern:
// an LCG streamed into a 2-page ring buffer, then a UART byte and a clean
// exit. Every iteration both computes and dirties memory, so a fork in the
// middle exercises COW break-off on real pages.
func forkProg(iters int64) []byte {
	a := asm.New(DramBase)
	a.Li(asm.S0, DramBase+0x10000)
	a.Li(asm.S1, uint64(iters))
	a.Li(asm.T0, 0) // i
	a.Li(asm.T1, 1) // lcg state
	a.Li(asm.T4, 25)
	a.Label("loop")
	a.Mul(asm.T1, asm.T1, asm.T4)
	a.Addi(asm.T1, asm.T1, 7)
	a.Andi(asm.T2, asm.T0, 0x3FF)
	a.Slli(asm.T2, asm.T2, 3)
	a.Add(asm.T2, asm.T2, asm.S0)
	a.Sd(asm.T1, asm.T2, 0)
	a.Addi(asm.T0, asm.T0, 1)
	a.Blt(asm.T0, asm.S1, "loop")
	a.Li(asm.T2, UartBase)
	a.Li(asm.T3, '!')
	a.Sb(asm.T3, asm.T2, 0)
	a.Li(asm.T2, ExitBase)
	a.Li(asm.T3, ExitPass)
	a.Sd(asm.T3, asm.T2, 0)
	return a.MustAssemble()
}

// machinesEqual fails the test if two machines differ on any architectural
// observable: per-hart counters, registers, PC/mode, device-visible
// output, and the data region.
func machinesEqual(t *testing.T, tag string, a, b *Machine) {
	t.Helper()
	for i := range a.Harts {
		ha, hb := a.Harts[i], b.Harts[i]
		if ha.Cycles != hb.Cycles || ha.Instret != hb.Instret {
			t.Errorf("%s: hart %d cycles/instret %d/%d vs %d/%d",
				tag, i, ha.Cycles, ha.Instret, hb.Cycles, hb.Instret)
		}
		if ha.PC != hb.PC || ha.Mode != hb.Mode || ha.Regs != hb.Regs {
			t.Errorf("%s: hart %d pc/mode/regs differ: %#x/%v vs %#x/%v",
				tag, i, ha.PC, ha.Mode, hb.PC, hb.Mode)
		}
	}
	if a.Uart.Output() != b.Uart.Output() {
		t.Errorf("%s: uart %q vs %q", tag, a.Uart.Output(), b.Uart.Output())
	}
	if a.Clint.Time() != b.Clint.Time() {
		t.Errorf("%s: mtime %d vs %d", tag, a.Clint.Time(), b.Clint.Time())
	}
	ba, err1 := a.Bus.ReadBytes(DramBase, 1<<17)
	bb, err2 := b.Bus.ReadBytes(DramBase, 1<<17)
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: readback: %v %v", tag, err1, err2)
	}
	for i := range ba {
		if ba[i] != bb[i] {
			t.Errorf("%s: memory differs first at +%#x", tag, i)
			break
		}
	}
}

// TestForkMatchesColdReplay is the core fork contract at machine level: a
// child forked at step k1 and run to completion must be bit-identical —
// cycle counters included — to a cold machine replayed through the same
// trajectory, under both schedulers; and the parent, running on after the
// fork, must be equally unperturbed by the child.
func TestForkMatchesColdReplay(t *testing.T) {
	for _, sc := range schedNames {
		for _, fast := range []bool{true, false} {
			name := sc.name
			if !fast {
				name += "-nofast"
			}
			t.Run(name, func(t *testing.T) {
				prog := forkProg(4000)
				build := func() *Machine {
					m := newTestMachine(t, 1)
					m.Sched = sc.kind
					m.SetFastPath(fast)
					_ = m.LoadImage(DramBase, prog)
					m.Reset(DramBase)
					return m
				}
				const k1, k2 = 5000, 100000

				parent := build()
				parent.Run(k1)
				img, err := parent.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				child, err := SpawnFromImage(img)
				if err != nil {
					t.Fatal(err)
				}
				child.Run(k2)
				parent.Run(k2)

				cold := build()
				cold.Run(k1)
				cold.Run(k2)

				if ok, reason := child.Halted(); !ok || !strings.Contains(reason, "pass") {
					t.Fatalf("child did not finish: %v %q", ok, reason)
				}
				machinesEqual(t, "child-vs-cold", child, cold)
				machinesEqual(t, "parent-vs-cold", parent, cold)
			})
		}
	}
}

// TestForkFamilyRunsConcurrently runs a parent and several forked children
// at the same time on separate goroutines, parent and children all
// breaking pages off the shared snapshot backing. Under -race this is the
// machine-level COW isolation gate; the end states must still all agree.
func TestForkFamilyRunsConcurrently(t *testing.T) {
	for _, sc := range schedNames {
		t.Run(sc.name, func(t *testing.T) {
			prog := forkProg(20000)
			parent := newTestMachine(t, 1)
			parent.Sched = sc.kind
			_ = parent.LoadImage(DramBase, prog)
			parent.Reset(DramBase)
			parent.Run(3000)

			const children = 4
			kids := make([]*Machine, children)
			for i := range kids {
				c, err := parent.Fork()
				if err != nil {
					t.Fatal(err)
				}
				kids[i] = c
			}
			var wg sync.WaitGroup
			run := func(m *Machine) {
				defer wg.Done()
				m.Run(500000)
			}
			wg.Add(children + 1)
			go run(parent)
			for _, c := range kids {
				go run(c)
			}
			wg.Wait()

			if ok, reason := parent.Halted(); !ok || !strings.Contains(reason, "pass") {
				t.Fatalf("parent: %v %q", ok, reason)
			}
			for i, c := range kids {
				if ok, reason := c.Halted(); !ok || !strings.Contains(reason, "pass") {
					t.Fatalf("child %d: %v %q", i, ok, reason)
				}
				machinesEqual(t, "sibling", kids[0], c)
			}
			machinesEqual(t, "parent-vs-child", parent, kids[0])
		})
	}
}

// snapshotInTrap is a Monitor that tries to snapshot the machine from
// inside an M-trap handler, recording the outcome.
type snapshotInTrap struct {
	m    *Machine
	err  error
	img  *Image
	hits int
}

func (s *snapshotInTrap) HandleMTrap(h *Hart) {
	s.hits++
	s.img, s.err = s.m.Snapshot()
	h.Halted = true
	h.HaltReason = "monitor-done"
}

// TestSnapshotMidQuantumRefused is the regression test for torn parallel
// snapshots: under SchedPar a monitor handler runs at the quantum
// barrier's replay stage — still inside the round — and a Snapshot taken
// there must be refused rather than capturing half-committed store-buffer
// state. At a round boundary the same machine must snapshot cleanly.
func TestSnapshotMidQuantumRefused(t *testing.T) {
	a := asm.New(DramBase)
	a.Ecall()
	prog := a.MustAssemble()

	m := newTestMachine(t, 2)
	m.Sched = SchedPar
	mon := &snapshotInTrap{m: m}
	for _, h := range m.Harts {
		h.Monitor = mon
	}
	_ = m.LoadImage(DramBase, prog)
	m.Reset(DramBase)
	m.Run(100)

	if mon.hits == 0 {
		t.Fatal("monitor never ran")
	}
	if mon.err == nil || mon.img != nil {
		t.Fatalf("mid-quantum Snapshot must be refused, got img=%v err=%v", mon.img, mon.err)
	}
	if !strings.Contains(mon.err.Error(), "mid-quantum") {
		t.Fatalf("unexpected error: %v", mon.err)
	}
	// Quiesced at a round boundary: snapshot must succeed.
	if _, err := m.Snapshot(); err != nil {
		t.Fatalf("boundary Snapshot failed: %v", err)
	}
	// Under the sequential scheduler the machine is quiesced inside the
	// handler, so the same monitor snapshot succeeds.
	ms := newTestMachine(t, 1)
	mons := &snapshotInTrap{m: ms}
	ms.Harts[0].Monitor = mons
	_ = ms.LoadImage(DramBase, prog)
	ms.Reset(DramBase)
	ms.Run(100)
	if mons.hits == 0 || mons.err != nil {
		t.Fatalf("seq monitor snapshot: hits=%d err=%v", mons.hits, mons.err)
	}
}

// TestImageShapeMismatches checks LoadImageState's shape guards.
func TestImageShapeMismatches(t *testing.T) {
	m2 := newTestMachine(t, 2)
	img, err := m2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m1 := newTestMachine(t, 1)
	if err := m1.LoadImageState(img); err == nil {
		t.Fatal("hart-count mismatch must be rejected")
	}
	cfg := VisionFive2()
	cfg.HasIOPMP = true
	mi, err := NewMachine(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	img1, err := m2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	img1.Harts = img1.Harts[:1]
	if err := mi.LoadImageState(img1); err == nil {
		t.Fatal("IOPMP mismatch must be rejected")
	}
}

// TestDMASnapshotRoundTrip is the DMA engine's table-driven
// snapshot→mutate→restore→state-equal coverage (its registers live in
// internal/hart, unlike the other devices').
func TestDMASnapshotRoundTrip(t *testing.T) {
	m := newTestMachine(t, 1)
	_ = m.Bus.WriteBytes(DramBase, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	for _, w := range []struct{ off, v uint64 }{
		{DMASrc, DramBase}, {DMADst, DramBase + 0x100}, {DMALen, 8},
	} {
		if !m.Bus.Store(DMABase+w.off, 8, w.v) {
			t.Fatalf("store %#x failed", w.off)
		}
	}
	snap := m.DMA.Checkpoint()
	// Mutate: trigger the copy (stat changes) and repoint the registers.
	m.Bus.Store(DMABase+DMACtl, 8, 1)
	m.Bus.Store(DMABase+DMASrc, 8, 0x999)
	m.Bus.Store(DMABase+DMALen, 8, 0x40)
	m.DMA.Restore(snap)
	if got := m.DMA.Checkpoint(); got != snap {
		t.Fatalf("DMA round-trip: got %+v want %+v", got, snap)
	}
	if v, _ := m.Bus.Load(DMABase+DMASrc, 8); v != DramBase {
		t.Fatalf("restored src = %#x", v)
	}
}
