package hart

import (
	"fmt"

	"govfm/internal/obs"
	"govfm/internal/rv"
)

// PerfCounters holds the hart's always-on performance counters: plain
// (non-atomic) uint64s living next to the state they count, so the hot
// paths pay one increment and nothing else. A hart is stepped by a single
// goroutine and snapshots read the counters between steps, so no atomics
// are needed. None of these feed back into simulated state — cycle counts
// are bit-identical whether anyone ever reads them (the obs-overhead gate
// in scripts/verify.sh checks exactly that).
type PerfCounters struct {
	// Software-TLB outcomes in translate (fast path on; misses walk).
	TLBHits   uint64
	TLBMisses uint64
	// Predecode-cache outcomes in fetchFast (MMIO fetches count as misses).
	DecodeHits   uint64
	DecodeMisses uint64
	// Page-table walks performed by translate (TLB misses plus every
	// translation with the fast path off).
	PageWalks uint64
	// Traps taken, total and by cause (see trapCauseIndex).
	Traps        uint64
	TrapsByCause [64]uint64
	// Superblock tier outcomes (superblock.go): translations built, block
	// dispatches that retired at least one instruction, instructions
	// retired inside blocks, entry-guard misses, and in-block op aborts
	// that fell back to the interpreter.
	SBTranslations uint64
	SBHits         uint64
	SBRetired      uint64
	SBGuardMisses  uint64
	SBAborts       uint64
}

// trapCauseIndex maps an mcause value into TrapsByCause: exception codes
// occupy 0..31, interrupt codes 32..63.
func trapCauseIndex(cause uint64) int {
	i := int(rv.CauseCode(cause) & 31)
	if rv.CauseIsInterrupt(cause) {
		i += 32
	}
	return i
}

// trapCauseFromIndex inverts trapCauseIndex.
func trapCauseFromIndex(i int) uint64 {
	return rv.Cause(uint64(i&31), i >= 32)
}

// trapNames precomputes "trap:<cause>" event names so the per-trap trace
// path allocates nothing. Read-only after init, so concurrent harts may
// share it.
var trapNames = func() [64]string {
	var names [64]string
	for i := range names {
		names[i] = "trap:" + rv.CauseString(trapCauseFromIndex(i))
	}
	return names
}()

// AttachObs wires an observer into the machine: every hart's trap stream
// feeds the tracer, and the registry learns collectors that surface the
// harts' PerfCounters and the devices' counters at snapshot time. Call it
// once, before running; snapshots must be taken between machine steps
// (the counters are deliberately not atomic).
func (m *Machine) AttachObs(o *obs.Observer) {
	if o == nil {
		return
	}
	for _, h := range m.Harts {
		h.Trace = o.Trace
	}
	m.trace = o.Trace // scheduler barrier instants (SchedPar)
	r := o.Metrics
	if r == nil {
		return
	}
	r.Collect(func(emit func(name string, value uint64)) {
		var tlbH, tlbM, decH, decM, walks, traps, instret, cycles uint64
		var sbT, sbH, sbR, sbG, sbA uint64
		for _, h := range m.Harts {
			p := &h.Perf
			pfx := fmt.Sprintf("hart%d.", h.ID)
			emit(pfx+"cycles", h.Cycles)
			emit(pfx+"instret", h.Instret)
			emit(pfx+"sinstret", h.SInstret)
			emit(pfx+"tlb.hits", p.TLBHits)
			emit(pfx+"tlb.misses", p.TLBMisses)
			emit(pfx+"decode.hits", p.DecodeHits)
			emit(pfx+"decode.misses", p.DecodeMisses)
			emit(pfx+"pagewalks", p.PageWalks)
			emit(pfx+"traps", p.Traps)
			for i, n := range p.TrapsByCause {
				if n != 0 {
					emit(pfx+trapNames[i], n)
				}
			}
			emit(pfx+"pmp.checks", h.CSR.PMP.Perf.Checks)
			emit(pfx+"pmp.fast_hits", h.CSR.PMP.Perf.FastHits)
			emit(pfx+"sb.translations", p.SBTranslations)
			emit(pfx+"sb.hits", p.SBHits)
			emit(pfx+"sb.retired", p.SBRetired)
			emit(pfx+"sb.guard_misses", p.SBGuardMisses)
			emit(pfx+"sb.aborts", p.SBAborts)
			tlbH += p.TLBHits
			tlbM += p.TLBMisses
			decH += p.DecodeHits
			decM += p.DecodeMisses
			walks += p.PageWalks
			traps += p.Traps
			instret += h.Instret
			cycles += h.Cycles
			sbT += p.SBTranslations
			sbH += p.SBHits
			sbR += p.SBRetired
			sbG += p.SBGuardMisses
			sbA += p.SBAborts
		}
		emit("sim.cycles", cycles)
		emit("sim.instret", instret)
		emit("sim.traps", traps)
		emit("sim.pagewalks", walks)
		emit("sim.tlb.hits", tlbH)
		emit("sim.tlb.misses", tlbM)
		emit("sim.tlb.hit_pct", obs.HitRatePct(tlbH, tlbM))
		emit("sim.decode.hits", decH)
		emit("sim.decode.misses", decM)
		emit("sim.decode.hit_pct", obs.HitRatePct(decH, decM))
		emit("sim.sb.translations", sbT)
		emit("sim.sb.hits", sbH)
		emit("sim.sb.retired", sbR)
		emit("sim.sb.guard_misses", sbG)
		emit("sim.sb.aborts", sbA)
		// Share of all retired instructions that ran inside superblocks.
		// (Perf counters survive Machine.Reset while instret does not, so
		// guard the subtraction across reboots.)
		if instret >= sbR {
			emit("sim.sb.retired_pct", obs.HitRatePct(sbR, instret-sbR))
		}

		emit("dev.clint.timer_programs", m.Clint.Perf.TimerPrograms)
		emit("dev.clint.ipi_posts", m.Clint.Perf.IPIPosts)
		emit("dev.plic.claims", m.Plic.Perf.Claims)
		emit("dev.plic.completes", m.Plic.Perf.Completes)
		emit("dev.uart.tx_bytes", uint64(m.Uart.TxLen()))
		if m.IOPMP != nil {
			emit("dev.iopmp.checks", m.IOPMP.Checks)
			emit("dev.iopmp.denials", m.IOPMP.Denials)
		}
	})
}
