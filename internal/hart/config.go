package hart

// CostModel maps simulated operations to cycles. The numbers are calibrated
// per platform profile so that the monitor's measured costs land near the
// paper's Table 4 (emulation ≈483/271 cycles, world switch ≈2704/4098
// cycles on VisionFive 2 / Premier P550); everything downstream is emergent.
type CostModel struct {
	Instr     uint64 // base cost of any instruction
	MemAccess uint64 // extra for loads/stores/amo
	Branch    uint64 // extra for taken control transfers
	MulDiv    uint64 // extra for M-extension ops
	TrapEntry uint64 // hardware trap entry (mode switch, CSR latch)
	XRet      uint64 // mret/sret
	TLBFlush  uint64 // sfence.vma or PMP-induced flush
	WFIIdle   uint64 // cycles consumed per idle WFI poll

	// Monitor-side costs: the monitor is M-mode software whose own
	// instruction stream consumes cycles. These model the cost of its
	// straight-line Rust on each microarchitecture (the out-of-order P550
	// executes the monitor's code much faster but pays more for traps and
	// flushes, reproducing Table 4's inversion).
	MonitorEntry uint64 // GPR save + dispatch on trap entry
	MonitorExit  uint64 // GPR restore + return sequencing
	EmuOp        uint64 // decode + emulate one privileged instruction
	CSRXfer      uint64 // copy one CSR during a world switch
	PMPWrite     uint64 // reprogram one physical PMP entry
}

// Config describes a platform profile: which optional hardware the CPU
// implements and how expensive its microarchitectural operations are. The
// two profiles mirror the paper's evaluation boards; rva23 models the
// next-generation CPU the paper anticipates in §3.4.
type Config struct {
	Name  string
	Harts int

	// Optional architectural features.
	NumPMP       int  // implemented PMP entries (8 or 16 on real parts)
	HasSstc      bool // supervisor stimecmp CSR
	HasTimeCSR   bool // hardware time CSR (reads do not trap)
	HWMisaligned bool // hardware support for misaligned loads/stores
	HasH         bool // hypervisor extension (P550)
	HasIOPMP     bool // I/O PMP unit guarding DMA masters (§4.3)

	// Machine identity, reported via mvendorid/marchid/mimpid.
	Mvendorid uint64
	Marchid   uint64
	Mimpid    uint64

	// CustomCSRs lists platform-specific M-mode CSRs (paper §8.2: the P550
	// exposes four documented CSRs for speculation and error reporting).
	CustomCSRs []uint16

	// FreqMHz is the core clock; CyclesPerTick converts core cycles to
	// CLINT mtime ticks (clock / timebase).
	FreqMHz       uint64
	CyclesPerTick uint64

	Cost CostModel
}

// HasCustomCSR reports whether n is one of the platform's documented
// custom CSRs.
func (c *Config) HasCustomCSR(n uint16) bool {
	for _, m := range c.CustomCSRs {
		if m == n {
			return true
		}
	}
	return false
}

// VisionFive2 returns the profile of the StarFive VisionFive 2 board:
// four in-order U74 cores at 1.5 GHz, 8 PMP entries, no Sstc, no hardware
// time CSR, no hardware misaligned access support — so the OS traps to
// firmware for all five of the paper's Fig. 3 trap causes.
func VisionFive2() *Config {
	return &Config{
		Name:          "visionfive2",
		Harts:         4,
		NumPMP:        8,
		Mvendorid:     0x489, // SiFive JEDEC (U74 core IP)
		Marchid:       0x8000000000000007,
		Mimpid:        0x4210427,
		FreqMHz:       1500,
		CyclesPerTick: 375, // 4 MHz timebase
		Cost: CostModel{
			Instr:     1,
			MemAccess: 2,
			Branch:    2,
			MulDiv:    4,
			TrapEntry: 38,
			XRet:      24,
			TLBFlush:  100,
			WFIIdle:   16,

			MonitorEntry: 120,
			MonitorExit:  120,
			EmuOp:        180,
			CSRXfer:      2,
			PMPWrite:     12,
		},
	}
}

// PremierP550 returns the profile of the SiFive HiFive Premier P550 board:
// four out-of-order P550 cores at 1.8 GHz with the hypervisor extension,
// 16 PMP entries, and four documented custom CSRs. Like the VisionFive 2
// it lacks Sstc and a non-trapping time CSR.
func PremierP550() *Config {
	return &Config{
		Name:   "p550",
		Harts:  4,
		NumPMP: 16,
		HasH:   true,
		CustomCSRs: []uint16{
			0x7C0, 0x7C1, 0x7C2, 0x7C3,
		},
		Mvendorid:     0x489,
		Marchid:       0x8000000000000008,
		Mimpid:        0x10000,
		FreqMHz:       1800,
		CyclesPerTick: 450,
		Cost: CostModel{
			// Out-of-order core: cheaper straight-line emulation work but a
			// costlier pipeline flush on traps and world switches (Table 4
			// shows exactly this inversion: 271 vs 483 emulation, 4098 vs
			// 2704 world switch).
			Instr:     1,
			MemAccess: 1,
			Branch:    1,
			MulDiv:    2,
			TrapEntry: 95,
			XRet:      60,
			TLBFlush:  220,
			WFIIdle:   16,

			MonitorEntry: 45,
			MonitorExit:  45,
			EmuOp:        26,
			CSRXfer:      7,
			PMPWrite:     35,
		},
	}
}

// RVA23 returns a profile of a next-generation CPU implementing the RVA23
// profile: hardware time CSR, Sstc, and misaligned access support. On this
// profile the paper predicts fast-path offloading is unnecessary (§3.4).
func RVA23() *Config {
	c := VisionFive2()
	c.Name = "rva23"
	c.HasSstc = true
	c.HasTimeCSR = true
	c.HWMisaligned = true
	c.NumPMP = 16
	return c
}

// Profiles returns the built-in platform profiles by name.
func Profiles() map[string]func() *Config {
	return map[string]func() *Config{
		"visionfive2": VisionFive2,
		"p550":        PremierP550,
		"rva23":       RVA23,
	}
}
