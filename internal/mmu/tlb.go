package mmu

import (
	"govfm/internal/mem"
	"govfm/internal/rv"
)

// TLB is a host-side cache of successful leaf translations, direct-mapped
// per access type. It is purely a host accelerator: the simulated machine
// has no architectural TLB, and the cycle model charges translation costs
// identically whether an access hits here or performs the full walk (the
// Sv39 walk charges no cycles of its own — see DESIGN.md, "Host fast paths
// vs. simulated cycle model").
//
// Validity is established by comparison rather than eager invalidation:
// every entry is tagged with the satp value, effective privilege, SUM/MXR
// bits, the PMP file's mutation epoch, and this TLB's flush generation. A
// lookup under different state simply misses, so satp rewrites, privilege
// changes, mstatus edits, and PMP reprogramming all invalidate for free.
// Explicit flushes (sfence.vma, snapshot restore) bump the generation —
// O(1). Software edits of page-table memory are caught by the bus page
// watch: the hart watches every page a cached walk read its PTEs from and
// flushes on any write to one (see hart's InvalidatePhysPage).
//
// Entries are per 4KiB page even inside superpages; Sv39 maps each 4KiB
// virtual page to a fixed physical page regardless of leaf level, so this
// is lossless.
type TLB struct {
	gen  uint64
	sets [3][tlbSets]tlbEntry // indexed by AccessType
}

const tlbSets = 64

type tlbEntry struct {
	valid  bool
	priv   rv.Mode
	flags  uint8 // bit0 SUM, bit1 MXR, bit2 V
	vpn    uint64
	satp   uint64
	hgatp  uint64 // G-stage root at fill (zero for single-stage entries)
	epoch  uint64 // pmp.File.Epoch at fill
	gen    uint64
	paPage uint64
}

func tlbFlags(sum, mxr, v bool) uint8 {
	var f uint8
	if sum {
		f |= 1
	}
	if mxr {
		f |= 2
	}
	if v {
		f |= 4
	}
	return f
}

// Flush invalidates every entry in O(1) by advancing the generation.
func (t *TLB) Flush() { t.gen++ }

// Key bundles the translation-validity state a lookup is performed under.
// Callers that perform many lookups under unchanged state (the superblock
// tier hoists one Key per block dispatch — CSR writes, traps, and xrets are
// all block terminators, so the state cannot change mid-block) build it
// once and use LookupK/InsertK.
//
// Under two-stage translation V is set, Satp holds vsatp, and Hgatp the
// G-stage root: validity-by-comparison extends unchanged — an entry filled
// under a different hgatp (or the other virtualization mode) simply misses,
// so hgatp rewrites and V transitions invalidate for free, exactly like
// satp (see DESIGN.md, "Two-stage translation vs. the single-stage TLB").
type Key struct {
	Satp  uint64
	Hgatp uint64 // zero unless V
	Epoch uint64 // pmp.File.Epoch at lookup
	Priv  rv.Mode
	SUM   bool
	MXR   bool
	V     bool
}

// LookupK is Lookup with the validity state pre-bundled in a Key.
func (t *TLB) LookupK(acc mem.AccessType, vpn uint64, k Key) (uint64, bool) {
	e := &t.sets[acc][vpn%tlbSets]
	if e.valid && e.vpn == vpn && e.satp == k.Satp && e.hgatp == k.Hgatp &&
		e.epoch == k.Epoch && e.gen == t.gen && e.priv == k.Priv &&
		e.flags == tlbFlags(k.SUM, k.MXR, k.V) {
		return e.paPage, true
	}
	return 0, false
}

// InsertK is Insert with the validity state pre-bundled in a Key.
func (t *TLB) InsertK(acc mem.AccessType, vpn uint64, k Key, paPage uint64) {
	t.sets[acc][vpn%tlbSets] = tlbEntry{
		valid:  true,
		priv:   k.Priv,
		flags:  tlbFlags(k.SUM, k.MXR, k.V),
		vpn:    vpn,
		satp:   k.Satp,
		hgatp:  k.Hgatp,
		epoch:  k.Epoch,
		gen:    t.gen,
		paPage: paPage,
	}
}

// Lookup returns the cached physical page for virtual page vpn (va>>12)
// under the given single-stage translation state, if present.
func (t *TLB) Lookup(acc mem.AccessType, vpn, satp, epoch uint64, priv rv.Mode, sum, mxr bool) (uint64, bool) {
	return t.LookupK(acc, vpn, Key{Satp: satp, Epoch: epoch, Priv: priv, SUM: sum, MXR: mxr})
}

// Insert caches a successful single-stage leaf translation.
func (t *TLB) Insert(acc mem.AccessType, vpn, satp, epoch uint64, priv rv.Mode, sum, mxr bool, paPage uint64) {
	t.InsertK(acc, vpn, Key{Satp: satp, Epoch: epoch, Priv: priv, SUM: sum, MXR: mxr}, paPage)
}
