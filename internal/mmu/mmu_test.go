package mmu

import (
	"testing"

	"govfm/internal/mem"
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

const (
	ramBase = 0x8000_0000
	ramSize = 0x40_0000
	ptPool  = ramBase + 0x10_0000
)

func newEnv(t *testing.T) (*mem.Bus, *Builder, *Env) {
	t.Helper()
	bus := mem.NewBus()
	if err := bus.AddRAM(ramBase, ramSize); err != nil {
		t.Fatal(err)
	}
	b, err := NewBuilder(bus, ptPool, 0x2_0000)
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{Bus: bus, PMP: pmp.NewFile(0), Satp: b.Satp(), Priv: rv.ModeS}
	return bus, b, env
}

func TestBareModePassThrough(t *testing.T) {
	bus := mem.NewBus()
	_ = bus.AddRAM(ramBase, 0x1000)
	env := &Env{Bus: bus, PMP: pmp.NewFile(0), Satp: 0, Priv: rv.ModeS}
	r := Translate(env, 0x1234_5678, mem.Read)
	if !r.OK || r.PA != 0x1234_5678 {
		t.Error("bare mode must pass through")
	}
	// M-mode ignores satp even when Sv39 is programmed.
	env.Satp = rv.SatpModeSv39 << 60
	env.Priv = rv.ModeM
	if r := Translate(env, 0x42, mem.Write); !r.OK || r.PA != 0x42 {
		t.Error("M-mode must bypass translation")
	}
}

func TestBasic4KMapping(t *testing.T) {
	_, b, env := newEnv(t)
	va, pa := uint64(0x4000_0000), uint64(ramBase+0x2000)
	if err := b.Map(va, pa, PteR|PteW); err != nil {
		t.Fatal(err)
	}
	r := Translate(env, va+0x123, mem.Read)
	if !r.OK || r.PA != pa+0x123 {
		t.Fatalf("got PA %#x cause %d", r.PA, r.Cause)
	}
	// Unmapped neighbour page faults.
	r = Translate(env, va+PageSize, mem.Read)
	if r.OK || r.Cause != rv.ExcLoadPageFault {
		t.Errorf("unmapped page: cause %d", r.Cause)
	}
}

func TestPermissionChecks(t *testing.T) {
	_, b, env := newEnv(t)
	va := uint64(0x4000_0000)
	pa := uint64(ramBase + 0x3000)
	if err := b.Map(va, pa, PteR); err != nil { // read-only
		t.Fatal(err)
	}
	if r := Translate(env, va, mem.Write); r.OK || r.Cause != rv.ExcStorePageFault {
		t.Error("write to read-only page must fault")
	}
	if r := Translate(env, va, mem.Exec); r.OK || r.Cause != rv.ExcInstrPageFault {
		t.Error("exec of non-exec page must fault")
	}
	if r := Translate(env, va, mem.Read); !r.OK {
		t.Error("read must pass")
	}
}

func TestUserBitRules(t *testing.T) {
	_, b, env := newEnv(t)
	uva, sva := uint64(0x1000_0000), uint64(0x2000_0000)
	_ = b.Map(uva, ramBase+0x4000, PteR|PteW|PteX|PteU)
	_ = b.Map(sva, ramBase+0x5000, PteR|PteW|PteX)

	env.Priv = rv.ModeU
	if r := Translate(env, uva, mem.Exec); !r.OK {
		t.Error("U-mode on U page must pass")
	}
	if r := Translate(env, sva, mem.Read); r.OK {
		t.Error("U-mode on S page must fault")
	}

	env.Priv = rv.ModeS
	if r := Translate(env, uva, mem.Read); r.OK {
		t.Error("S-mode on U page without SUM must fault")
	}
	env.SUM = true
	if r := Translate(env, uva, mem.Read); !r.OK {
		t.Error("S-mode on U page with SUM must pass")
	}
	if r := Translate(env, uva, mem.Exec); r.OK {
		t.Error("S-mode must never execute U pages, even with SUM")
	}
}

func TestMXR(t *testing.T) {
	_, b, env := newEnv(t)
	va := uint64(0x3000_0000)
	_ = b.Map(va, ramBase+0x6000, PteX) // execute-only
	if r := Translate(env, va, mem.Read); r.OK {
		t.Error("read of X-only page without MXR must fault")
	}
	env.MXR = true
	if r := Translate(env, va, mem.Read); !r.OK {
		t.Error("read of X-only page with MXR must pass")
	}
}

func TestADBitsHardwareUpdate(t *testing.T) {
	bus, b, env := newEnv(t)
	va := uint64(0x5000_0000)
	_ = b.Map(va, ramBase+0x7000, PteR|PteW)
	// Locate the leaf PTE: walk manually.
	if r := Translate(env, va, mem.Read); !r.OK {
		t.Fatal("read failed")
	}
	pteAddr := findLeaf(t, bus, b.Root(), va)
	pte, _ := bus.Load(pteAddr, 8)
	if pte&PteA == 0 {
		t.Error("A bit must be set after read")
	}
	if pte&PteD != 0 {
		t.Error("D bit must not be set after read")
	}
	if r := Translate(env, va, mem.Write); !r.OK {
		t.Fatal("write failed")
	}
	pte, _ = bus.Load(pteAddr, 8)
	if pte&PteD == 0 {
		t.Error("D bit must be set after write")
	}
}

func findLeaf(t *testing.T, bus *mem.Bus, root, va uint64) uint64 {
	t.Helper()
	table := root
	for level := 2; level > 0; level-- {
		vpn := rv.Bits(va, uint(12+9*level+8), uint(12+9*level))
		pte, _ := bus.Load(table+vpn*8, 8)
		if pte&(PteR|PteX) != 0 {
			return table + vpn*8
		}
		table = rv.Bits(pte, 53, 10) * PageSize
	}
	return table + rv.Bits(va, 20, 12)*8
}

func TestNonCanonicalFaults(t *testing.T) {
	_, _, env := newEnv(t)
	if r := Translate(env, 1<<40, mem.Read); r.OK || r.Cause != rv.ExcLoadPageFault {
		t.Error("non-canonical va must page-fault")
	}
	if r := Translate(env, 1<<40, mem.Exec); r.OK || r.Cause != rv.ExcInstrPageFault {
		t.Error("non-canonical fetch must page-fault")
	}
}

func TestGigaPage(t *testing.T) {
	_, b, env := newEnv(t)
	if err := b.MapGiga(0, 0x8000_0000, PteR|PteW|PteX); err != nil {
		t.Fatal(err)
	}
	r := Translate(env, 0x123456, mem.Read)
	if !r.OK || r.PA != 0x8012_3456 {
		t.Fatalf("giga mapping: PA %#x", r.PA)
	}
}

func TestMisalignedSuperpageFaults(t *testing.T) {
	bus, b, env := newEnv(t)
	// Hand-craft a level-2 leaf with a misaligned PPN.
	vpn2 := uint64(3)
	badPPN := uint64(ramBase+0x8000) / PageSize // not 1GiB aligned
	bus.Store(b.Root()+vpn2*8, 8, badPPN<<10|PteR|PteV)
	r := Translate(env, vpn2<<30, mem.Read)
	if r.OK || r.Cause != rv.ExcLoadPageFault {
		t.Error("misaligned superpage must page-fault")
	}
}

func TestReservedWOnlyPTE(t *testing.T) {
	bus, b, env := newEnv(t)
	vpn2 := uint64(4)
	bus.Store(b.Root()+vpn2*8, 8, 0x80000<<10|PteW|PteV) // W without R: reserved
	if r := Translate(env, vpn2<<30, mem.Read); r.OK || r.Cause != rv.ExcLoadPageFault {
		t.Error("W-only PTE is reserved and must fault")
	}
}

func TestPTWRespectsPMP(t *testing.T) {
	_, b, env := newEnv(t)
	_ = b.Map(0x4000_0000, ramBase+0x2000, PteR)
	// Lock out the page-table pool with a no-permission locked entry.
	f := pmp.NewFile(8)
	f.SetAddr(0, pmp.NAPOTAddr(ptPool, 0x2_0000))
	f.SetCfg(0, pmp.CfgL|pmp.ANapot<<3)
	f.SetAddr(1, rv.Mask(54))
	f.SetCfg(1, pmp.CfgR|pmp.CfgW|pmp.CfgX|pmp.ANapot<<3)
	env.PMP = f
	r := Translate(env, 0x4000_0000, mem.Read)
	if r.OK || r.Cause != rv.ExcLoadAccessFault {
		t.Errorf("PTW through PMP-denied table must access-fault, got cause %d", r.Cause)
	}
}

func TestBuilderErrors(t *testing.T) {
	bus := mem.NewBus()
	_ = bus.AddRAM(ramBase, 0x4000)
	if _, err := NewBuilder(bus, ramBase+1, 0x2000); err == nil {
		t.Error("misaligned pool must be rejected")
	}
	if _, err := NewBuilder(bus, ramBase, 0); err == nil {
		t.Error("empty pool must be rejected")
	}
	b, err := NewBuilder(bus, ramBase, 0x1000) // room for root only
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Map(0x4000_0000, ramBase, PteR); err == nil {
		t.Error("pool exhaustion must surface")
	}
	if err := b.Map(0x123, ramBase, PteR); err == nil {
		t.Error("misaligned va must be rejected")
	}
	if err := b.Map(1<<40, ramBase, PteR); err == nil {
		t.Error("non-canonical va must be rejected")
	}
	if err := b.MapGiga(0x1000, 0, PteR); err == nil {
		t.Error("misaligned giga va must be rejected")
	}
}

func TestMapUnderSuperpageRejected(t *testing.T) {
	_, b, _ := newEnv(t)
	if err := b.MapGiga(1<<30, 0x4000_0000, PteR); err != nil {
		t.Fatal(err)
	}
	if err := b.Map(1<<30|0x1000, ramBase, PteR); err == nil {
		t.Error("mapping under an existing superpage must be rejected")
	}
}
