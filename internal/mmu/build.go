package mmu

import (
	"fmt"

	"govfm/internal/mem"
	"govfm/internal/rv"
)

// Builder constructs Sv39 page tables directly in simulated RAM. It is used
// by tests and by the synthetic kernels' setup code to create address
// spaces without hand-assembling a page-table walker in guest code.
type Builder struct {
	bus  *mem.Bus
	next uint64 // bump allocator for page-table pages
	end  uint64
	root uint64
}

// NewBuilder allocates page-table pages from [pool, pool+size), which must
// be RAM. The root table is allocated immediately.
func NewBuilder(bus *mem.Bus, pool, size uint64) (*Builder, error) {
	if pool%PageSize != 0 || size < PageSize {
		return nil, fmt.Errorf("mmu: pool must be page aligned and hold at least one page")
	}
	b := &Builder{bus: bus, next: pool, end: pool + size}
	root, err := b.allocPage()
	if err != nil {
		return nil, err
	}
	b.root = root
	return b, nil
}

// Root returns the physical address of the root page table.
func (b *Builder) Root() uint64 { return b.root }

// Satp returns the satp value activating this address space (ASID 0).
func (b *Builder) Satp() uint64 { return rv.SatpModeSv39<<60 | b.root/PageSize }

func (b *Builder) allocPage() (uint64, error) {
	if b.next+PageSize > b.end {
		return 0, fmt.Errorf("mmu: page-table pool exhausted")
	}
	p := b.next
	b.next += PageSize
	for off := uint64(0); off < PageSize; off += 8 {
		if !b.bus.Store(p+off, 8, 0) {
			return 0, fmt.Errorf("mmu: pool page %#x is not RAM", p)
		}
	}
	return p, nil
}

// Map establishes a 4KiB mapping va -> pa with the given PTE permission
// bits (PteR|PteW|..., PteV is implied). Existing intermediate tables are
// reused.
func (b *Builder) Map(va, pa uint64, flags uint64) error {
	if va%PageSize != 0 || pa%PageSize != 0 {
		return fmt.Errorf("mmu: Map requires page-aligned addresses")
	}
	if rv.SignExtend(va, 39) != va {
		return fmt.Errorf("mmu: va %#x is not Sv39-canonical", va)
	}
	table := b.root
	for level := 2; level > 0; level-- {
		vpn := rv.Bits(va, uint(12+9*level+8), uint(12+9*level))
		pteAddr := table + vpn*8
		pte, ok := b.bus.Load(pteAddr, 8)
		if !ok {
			return fmt.Errorf("mmu: table page %#x unreadable", pteAddr)
		}
		if pte&PteV == 0 {
			next, err := b.allocPage()
			if err != nil {
				return err
			}
			if !b.bus.Store(pteAddr, 8, next/PageSize<<10|PteV) {
				return fmt.Errorf("mmu: table store failed")
			}
			table = next
			continue
		}
		if pte&(PteR|PteX) != 0 {
			return fmt.Errorf("mmu: va %#x already mapped by a superpage", va)
		}
		table = rv.Bits(pte, 53, 10) * PageSize
	}
	vpn0 := rv.Bits(va, 20, 12)
	if !b.bus.Store(table+vpn0*8, 8, pa/PageSize<<10|flags|PteV) {
		return fmt.Errorf("mmu: leaf store failed")
	}
	return nil
}

// MapRange maps size bytes starting at va to pa (both page-aligned) with
// identical flags on every page.
func (b *Builder) MapRange(va, pa, size uint64, flags uint64) error {
	for off := uint64(0); off < size; off += PageSize {
		if err := b.Map(va+off, pa+off, flags); err != nil {
			return err
		}
	}
	return nil
}

// MapGiga installs a 1GiB superpage mapping (level-2 leaf).
func (b *Builder) MapGiga(va, pa uint64, flags uint64) error {
	const giga = 1 << 30
	if va%giga != 0 || pa%giga != 0 {
		return fmt.Errorf("mmu: MapGiga requires 1GiB alignment")
	}
	if rv.SignExtend(va, 39) != va {
		return fmt.Errorf("mmu: va %#x is not Sv39-canonical", va)
	}
	vpn2 := rv.Bits(va, 38, 30)
	if !b.bus.Store(b.root+vpn2*8, 8, pa/PageSize<<10|flags|PteV) {
		return fmt.Errorf("mmu: root store failed")
	}
	return nil
}
