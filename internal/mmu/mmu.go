// Package mmu implements Sv39 virtual-address translation for the simulated
// hart: the three-level page-table walk, permission checks (including SUM,
// MXR, and the U bit), hardware A/D-bit update, and superpage alignment
// rules. Page-table accesses are themselves checked against PMP, as the
// privileged spec requires.
package mmu

import (
	"govfm/internal/mem"
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// PTE bits.
const (
	PteV = 1 << 0
	PteR = 1 << 1
	PteW = 1 << 2
	PteX = 1 << 3
	PteU = 1 << 4
	PteG = 1 << 5
	PteA = 1 << 6
	PteD = 1 << 7
)

// PageSize is the base page size.
const PageSize = 4096

// Result of a translation attempt.
type Result struct {
	PA    uint64 // physical address; valid when Cause == 0 and OK
	Cause uint64 // exception cause on failure
	OK    bool

	// Walk records the physical address of each PTE read during the walk
	// (root first). A TLB caching this translation watches the pages these
	// live on so software page-table edits invalidate the cached entry.
	Walk    [3]uint64
	WalkLen int
}

func fault(acc mem.AccessType, pageFault bool) Result {
	var cause uint64
	switch acc {
	case mem.Read:
		cause = rv.ExcLoadAccessFault
		if pageFault {
			cause = rv.ExcLoadPageFault
		}
	case mem.Write:
		cause = rv.ExcStoreAccessFault
		if pageFault {
			cause = rv.ExcStorePageFault
		}
	case mem.Exec:
		cause = rv.ExcInstrAccessFault
		if pageFault {
			cause = rv.ExcInstrPageFault
		}
	}
	return Result{Cause: cause}
}

// Memory is the walker's view of physical memory: the shared bus, or a
// hart's private port during parallel slices (PTE reads then see the hart's
// own buffered stores; A/D updates buffer until the barrier).
type Memory interface {
	Load(addr uint64, size int) (uint64, bool)
	Store(addr uint64, size int, value uint64) bool
}

// Env carries the translation-relevant machine state.
type Env struct {
	Bus  Memory
	PMP  *pmp.File
	Satp uint64
	Priv rv.Mode // effective privilege of the access (after MPRV)
	SUM  bool
	MXR  bool
}

// Active reports whether translation applies: Sv39 enabled and effective
// privilege below M.
func (e *Env) Active() bool {
	return e.Priv != rv.ModeM && rv.SatpMode(e.Satp) == rv.SatpModeSv39
}

// Translate maps virtual address va for an access of the given type.
// When translation is not active the address passes through unchanged
// (PMP checking of the final access is the caller's job in both cases).
func Translate(e *Env, va uint64, acc mem.AccessType) Result {
	if !e.Active() {
		return Result{PA: va, OK: true}
	}
	// Sv39 canonical check: bits 63:39 must equal bit 38.
	if rv.SignExtend(va, 39) != va {
		return fault(acc, true)
	}
	a := rv.SatpPPN(e.Satp) * PageSize
	var walk [3]uint64
	walkLen := 0
	for level := 2; level >= 0; level-- {
		vpn := rv.Bits(va, uint(12+9*level+8), uint(12+9*level))
		pteAddr := a + vpn*8
		walk[walkLen] = pteAddr
		walkLen++
		// The walker's implicit accesses are checked against PMP with
		// effective privilege S.
		if !e.PMP.Check(pteAddr, 8, mem.Read, rv.ModeS) {
			return fault(acc, false)
		}
		pte, ok := e.Bus.Load(pteAddr, 8)
		if !ok {
			return fault(acc, false)
		}
		if pte&PteV == 0 || (pte&PteR == 0 && pte&PteW != 0) {
			return fault(acc, true)
		}
		if pte&(PteR|PteX) == 0 {
			// Pointer to next level.
			a = rv.Bits(pte, 53, 10) * PageSize
			continue
		}
		// Leaf PTE.
		if !leafPermits(pte, acc, e.Priv, e.SUM, e.MXR) {
			return fault(acc, true)
		}
		ppn := rv.Bits(pte, 53, 10)
		// Superpage alignment: low PPN fields must be zero.
		if level > 0 && ppn&rv.Mask(uint(9*level)) != 0 {
			return fault(acc, true)
		}
		// Hardware A/D update (Svadu-style behaviour).
		newPte := pte | PteA
		if acc == mem.Write {
			newPte |= PteD
		}
		if newPte != pte {
			if !e.PMP.Check(pteAddr, 8, mem.Write, rv.ModeS) {
				return fault(acc, false)
			}
			if !e.Bus.Store(pteAddr, 8, newPte) {
				return fault(acc, false)
			}
		}
		pageMask := rv.Mask(uint(12 + 9*level))
		pa := ppn*PageSize&^pageMask | va&pageMask
		return Result{PA: pa, OK: true, Walk: walk, WalkLen: walkLen}
	}
	// All three levels were pointers: malformed tree.
	return fault(acc, true)
}

func leafPermits(pte uint64, acc mem.AccessType, priv rv.Mode, sum, mxr bool) bool {
	userPage := pte&PteU != 0
	switch priv {
	case rv.ModeU:
		if !userPage {
			return false
		}
	case rv.ModeS:
		if userPage {
			// S-mode may touch user data only with SUM, and never execute it.
			if acc == mem.Exec || !sum {
				return false
			}
		}
	}
	switch acc {
	case mem.Read:
		return pte&PteR != 0 || (mxr && pte&PteX != 0)
	case mem.Write:
		return pte&PteW != 0
	case mem.Exec:
		return pte&PteX != 0
	}
	return false
}
