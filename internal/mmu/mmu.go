// Package mmu implements Sv39 virtual-address translation for the simulated
// hart: the three-level page-table walk, permission checks (including SUM,
// MXR, and the U bit), hardware A/D-bit update, and superpage alignment
// rules. Page-table accesses are themselves checked against PMP, as the
// privileged spec requires.
package mmu

import (
	"govfm/internal/mem"
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// PTE bits.
const (
	PteV = 1 << 0
	PteR = 1 << 1
	PteW = 1 << 2
	PteX = 1 << 3
	PteU = 1 << 4
	PteG = 1 << 5
	PteA = 1 << 6
	PteD = 1 << 7
)

// PageSize is the base page size.
const PageSize = 4096

// Result of a translation attempt.
type Result struct {
	PA    uint64 // physical address; valid when Cause == 0 and OK
	Cause uint64 // exception cause on failure
	OK    bool

	// GPA is the faulting guest-physical address when Cause is one of the
	// guest-page-fault codes; trap entry writes GPA>>2 into htval/mtval2.
	GPA uint64

	// Walk records the physical address of each PTE read during the walk
	// (root first; under two-stage translation, both stages' PTEs). A TLB
	// caching this translation watches the pages these live on so software
	// page-table edits invalidate the cached entry. Two-stage walks read at
	// most 3 VS-stage PTEs, each G-translated through up to 3 G-stage PTEs,
	// plus 3 for the final G-stage walk: 15 total.
	Walk    [15]uint64
	WalkLen int
}

func fault(acc mem.AccessType, pageFault bool) Result {
	var cause uint64
	switch acc {
	case mem.Read:
		cause = rv.ExcLoadAccessFault
		if pageFault {
			cause = rv.ExcLoadPageFault
		}
	case mem.Write:
		cause = rv.ExcStoreAccessFault
		if pageFault {
			cause = rv.ExcStorePageFault
		}
	case mem.Exec:
		cause = rv.ExcInstrAccessFault
		if pageFault {
			cause = rv.ExcInstrPageFault
		}
	}
	return Result{Cause: cause}
}

// Memory is the walker's view of physical memory: the shared bus, or a
// hart's private port during parallel slices (PTE reads then see the hart's
// own buffered stores; A/D updates buffer until the barrier).
type Memory interface {
	Load(addr uint64, size int) (uint64, bool)
	Store(addr uint64, size int, value uint64) bool
}

// Env carries the translation-relevant machine state.
type Env struct {
	Bus  Memory
	PMP  *pmp.File
	Satp uint64
	Priv rv.Mode // effective privilege of the access (after MPRV)
	SUM  bool
	MXR  bool

	// Two-stage translation state (hypervisor extension). When V is set,
	// Satp holds vsatp (the VS-stage root), Hgatp the G-stage root, and
	// Priv is the guest privilege (VS for ModeS, VU for ModeU). HLVX makes
	// the VS-stage check execute permission in place of read (hlvx.hu/wu).
	V     bool
	Hgatp uint64
	HLVX  bool
}

// Active reports whether translation applies: Sv39 (or either stage of
// Sv39x4 two-stage translation) enabled and effective privilege below M.
func (e *Env) Active() bool {
	if e.Priv == rv.ModeM {
		return false
	}
	if e.V {
		return rv.SatpMode(e.Satp) == rv.SatpModeSv39 ||
			rv.SatpMode(e.Hgatp) == rv.HgatpModeSv39x4
	}
	return rv.SatpMode(e.Satp) == rv.SatpModeSv39
}

// gFault builds a guest-page-fault result for the original access type.
func gFault(acc mem.AccessType, gpa uint64) Result {
	var cause uint64
	switch acc {
	case mem.Read:
		cause = rv.ExcLoadGuestPageFault
	case mem.Write:
		cause = rv.ExcStoreGuestPageFault
	case mem.Exec:
		cause = rv.ExcInstrGuestPageFault
	}
	return Result{Cause: cause, GPA: gpa}
}

// gTranslate maps a guest-physical address through the G-stage (hgatp,
// Sv39x4: a 16KiB root table indexed by an 11-bit VPN[2]). G-stage leaves
// must be user pages (the guest access is treated as user-level), and the
// walker updates A/D bits like the VS stage. acc is the ORIGINAL access
// type: implicit VS-stage PTE reads that fault at the G-stage report a
// guest page fault matching the original access, as the spec requires.
// write selects the permission actually needed from the leaf.
func gTranslate(e *Env, res *Result, gpa uint64, acc mem.AccessType, write bool) (uint64, Result) {
	if rv.SatpMode(e.Hgatp) != rv.HgatpModeSv39x4 {
		return gpa, Result{OK: true}
	}
	// Sv39x4 widens the address space to 41 bits; higher bits must be zero.
	if gpa>>41 != 0 {
		return 0, gFault(acc, gpa)
	}
	a := rv.SatpPPN(e.Hgatp) &^ 3 * PageSize // 16KiB-aligned root
	for level := 2; level >= 0; level-- {
		hi := uint(12 + 9*level + 8)
		if level == 2 {
			hi += 2 // the root level absorbs the two extra address bits
		}
		vpn := rv.Bits(gpa, hi, uint(12+9*level))
		pteAddr := a + vpn*8
		if res.WalkLen < len(res.Walk) {
			res.Walk[res.WalkLen] = pteAddr
			res.WalkLen++
		}
		if !e.PMP.Check(pteAddr, 8, mem.Read, rv.ModeS) {
			return 0, fault(acc, false)
		}
		pte, ok := e.Bus.Load(pteAddr, 8)
		if !ok {
			return 0, fault(acc, false)
		}
		if pte&PteV == 0 || (pte&PteR == 0 && pte&PteW != 0) {
			return 0, gFault(acc, gpa)
		}
		if pte&(PteR|PteX) == 0 {
			a = rv.Bits(pte, 53, 10) * PageSize
			continue
		}
		// G-stage leaf: the guest access behaves as user-level.
		if pte&PteU == 0 {
			return 0, gFault(acc, gpa)
		}
		need := uint64(PteR)
		if write {
			need = PteW
		}
		if pte&need == 0 {
			return 0, gFault(acc, gpa)
		}
		ppn := rv.Bits(pte, 53, 10)
		if level > 0 && ppn&rv.Mask(uint(9*level)) != 0 {
			return 0, gFault(acc, gpa)
		}
		newPte := pte | PteA
		if write {
			newPte |= PteD
		}
		if newPte != pte {
			if !e.PMP.Check(pteAddr, 8, mem.Write, rv.ModeS) {
				return 0, fault(acc, false)
			}
			if !e.Bus.Store(pteAddr, 8, newPte) {
				return 0, fault(acc, false)
			}
		}
		pageMask := rv.Mask(uint(12 + 9*level))
		return ppn*PageSize&^pageMask | gpa&pageMask, Result{OK: true}
	}
	return 0, gFault(acc, gpa)
}

// Translate maps virtual address va for an access of the given type.
// When translation is not active the address passes through unchanged
// (PMP checking of the final access is the caller's job in both cases).
// With Env.V set this is the composed two-stage walk: VS-stage PTE
// addresses are guest-physical and are themselves G-translated.
func Translate(e *Env, va uint64, acc mem.AccessType) Result {
	if !e.Active() {
		return Result{PA: va, OK: true}
	}
	res := Result{}
	// HLVX checks execute permission at the VS-stage leaf in place of read,
	// but reported faults keep the original (load) access type.
	vsAcc := acc
	if e.HLVX {
		vsAcc = mem.Exec
	}
	if e.V && rv.SatpMode(e.Satp) != rv.SatpModeSv39 {
		// VS-stage Bare: the virtual address IS the guest-physical address.
		pa, g := gTranslate(e, &res, va, acc, acc == mem.Write)
		if !g.OK {
			g.Walk, g.WalkLen = res.Walk, res.WalkLen
			return g
		}
		res.PA, res.OK = pa, true
		return res
	}
	// Sv39 canonical check: bits 63:39 must equal bit 38.
	if rv.SignExtend(va, 39) != va {
		return fault(acc, true)
	}
	a := rv.SatpPPN(e.Satp) * PageSize
	for level := 2; level >= 0; level-- {
		vpn := rv.Bits(va, uint(12+9*level+8), uint(12+9*level))
		pteAddr := a + vpn*8
		if e.V {
			// The VS-stage PTE address is guest-physical.
			pa, g := gTranslate(e, &res, pteAddr, acc, false)
			if !g.OK {
				g.Walk, g.WalkLen = res.Walk, res.WalkLen
				return g
			}
			pteAddr = pa
		}
		if res.WalkLen < len(res.Walk) {
			res.Walk[res.WalkLen] = pteAddr
			res.WalkLen++
		}
		// The walker's implicit accesses are checked against PMP with
		// effective privilege S.
		if !e.PMP.Check(pteAddr, 8, mem.Read, rv.ModeS) {
			return fault(acc, false)
		}
		pte, ok := e.Bus.Load(pteAddr, 8)
		if !ok {
			return fault(acc, false)
		}
		if pte&PteV == 0 || (pte&PteR == 0 && pte&PteW != 0) {
			return fault(acc, true)
		}
		if pte&(PteR|PteX) == 0 {
			// Pointer to next level.
			a = rv.Bits(pte, 53, 10) * PageSize
			continue
		}
		// Leaf PTE.
		if !leafPermits(pte, vsAcc, e.Priv, e.SUM, e.MXR) {
			return fault(acc, true)
		}
		ppn := rv.Bits(pte, 53, 10)
		// Superpage alignment: low PPN fields must be zero.
		if level > 0 && ppn&rv.Mask(uint(9*level)) != 0 {
			return fault(acc, true)
		}
		// Hardware A/D update (Svadu-style behaviour). Under two-stage
		// translation the PTE store needs G-stage write permission.
		newPte := pte | PteA
		if acc == mem.Write {
			newPte |= PteD
		}
		if newPte != pte {
			wAddr := pteAddr
			if e.V {
				gpaPte := a + vpn*8
				pa, g := gTranslate(e, &res, gpaPte, acc, true)
				if !g.OK {
					g.Walk, g.WalkLen = res.Walk, res.WalkLen
					return g
				}
				wAddr = pa
			}
			if !e.PMP.Check(wAddr, 8, mem.Write, rv.ModeS) {
				return fault(acc, false)
			}
			if !e.Bus.Store(wAddr, 8, newPte) {
				return fault(acc, false)
			}
		}
		pageMask := rv.Mask(uint(12 + 9*level))
		gpa := ppn*PageSize&^pageMask | va&pageMask
		if e.V {
			pa, g := gTranslate(e, &res, gpa, acc, acc == mem.Write)
			if !g.OK {
				g.Walk, g.WalkLen = res.Walk, res.WalkLen
				return g
			}
			res.PA, res.OK = pa, true
			return res
		}
		res.PA, res.OK = gpa, true
		return res
	}
	// All three levels were pointers: malformed tree.
	return fault(acc, true)
}

func leafPermits(pte uint64, acc mem.AccessType, priv rv.Mode, sum, mxr bool) bool {
	userPage := pte&PteU != 0
	switch priv {
	case rv.ModeU:
		if !userPage {
			return false
		}
	case rv.ModeS:
		if userPage {
			// S-mode may touch user data only with SUM, and never execute it.
			if acc == mem.Exec || !sum {
				return false
			}
		}
	}
	switch acc {
	case mem.Read:
		return pte&PteR != 0 || (mxr && pte&PteX != 0)
	case mem.Write:
		return pte&PteW != 0
	case mem.Exec:
		return pte&PteX != 0
	}
	return false
}
