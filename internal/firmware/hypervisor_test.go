package firmware_test

import (
	"strings"
	"testing"

	"govfm/internal/core"
	"govfm/internal/firmware"
	"govfm/internal/hart"
	"govfm/internal/kernel"
)

// TestHypervisorBootMatrix boots the synthetic type-1 hypervisor — HS-mode
// host, two VS-mode guests behind an Sv39x4 G-stage — natively and under
// the monitor, on both schedulers. The guest-visible console stream must
// be byte-identical in every cell, and the hypervisor's own counter checks
// (one fetch/load/store guest-page fault, two virtual-instruction traps)
// gate the "guest-exit-pass" halt the run helper asserts.
func TestHypervisorBootMatrix(t *testing.T) {
	hyp := kernel.BuildHypervisor(core.OSBase, kernel.HypOptions{Yields: 3})
	for _, sched := range []hart.SchedKind{hart.SchedSeq, hart.SchedPar} {
		mk := func() *hart.Config {
			cfg := hart.PremierP550() // the H-capable profile
			cfg.Harts = 1
			return cfg
		}
		fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
			OSEntry: core.OSBase, Harts: 1, FirmwareSize: core.FirmwareSize,
		})
		native := runSched(t, mk(), fw, hyp, false, sched, 5_000_000)
		virt := runSched(t, mk(), fw, hyp, true, sched, 5_000_000)
		if native.Uart.Output() != virt.Uart.Output() {
			t.Errorf("%v: hypervisor output diverged:\nnative: %q\nvirt:   %q",
				sched, native.Uart.Output(), virt.Uart.Output())
		}
		// Both guests must have reached their banner and the hypervisor
		// its all-done marker.
		out := native.Uart.Output()
		for _, want := range []string{"h", "a", "b", "H\n"} {
			if !strings.Contains(out, want) {
				t.Errorf("%v: missing %q in %q", sched, want, out)
			}
		}
	}
}

// runSched is run with an explicit scheduler selection.
func runSched(t *testing.T, cfg *hart.Config, fw firmware.Image, kern []byte,
	virtualize bool, sched hart.SchedKind, maxSteps uint64) *hart.Machine {
	t.Helper()
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		t.Fatal(err)
	}
	m.Sched = sched
	if err := m.LoadImage(fw.Base, fw.Bytes); err != nil {
		t.Fatal(err)
	}
	if kern != nil {
		if err := m.LoadImage(core.OSBase, kern); err != nil {
			t.Fatal(err)
		}
	}
	if virtualize {
		mon, err := core.Attach(m, core.Options{Offload: true, FirmwareEntry: fw.Base})
		if err != nil {
			t.Fatal(err)
		}
		mon.Boot()
	} else {
		m.Reset(fw.Base)
	}
	m.Run(maxSteps)
	ok, reason := m.Halted()
	if !ok {
		t.Fatalf("did not halt: hart0=%v uart=%q", m.Harts[0], m.Uart.Output())
	}
	if reason != "guest-exit-pass" {
		t.Fatalf("halted with %q (uart=%q)", reason, m.Uart.Output())
	}
	return m
}
