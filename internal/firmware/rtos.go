package firmware

import (
	"govfm/internal/asm"
	"govfm/internal/rv"
)

// BuildRTOS assembles rtos, a Zephyr-like real-time OS: an M-mode kernel
// with its own test suite and a U-mode application, never leaving machine
// mode for a separate OS. The paper runs Zephyr's test suite under the
// monitor as part of its virtualization pipeline (§8.2); this image plays
// that role: it prints one line per test to the UART and exits PASS only
// if every test succeeded.
//
// Tests:
//
//	T1 timer     periodic machine-timer interrupts are delivered and counted
//	T2 swint     a self-IPI through the CLINT arrives as an M interrupt
//	T3 syscall   a U-mode application performs an ecall round trip
//	T4 pmp       the U-mode application cannot read kernel memory
//	T5 csr       mscratch and mstatus round-trip through CSR instructions
func BuildRTOS(base uint64) Image {
	a := asm.New(base)

	a.Label("start")
	a.Csrr(asm.A0, rv.CSRMhartid)
	a.Bnez(asm.A0, "park_forever")
	a.La(asm.T0, "scratch")
	a.Csrw(rv.CSRMscratch, asm.T0)
	a.La(asm.T0, "trap")
	a.Csrw(rv.CSRMtvec, asm.T0)

	// --- T5 first (pure CSR round trip, no interrupts involved) ---
	a.Li(asm.T0, 0x1234_5678_9ABC_DEF0)
	a.Csrw(rv.CSRMscratch+0, asm.T0) // NB: clobbers the frame pointer...
	a.Csrr(asm.T1, rv.CSRMscratch)
	a.BneFar(asm.T0, asm.T1, "fail")
	// Restore the trap frame pointer.
	a.La(asm.T0, "scratch")
	a.Csrw(rv.CSRMscratch, asm.T0)
	// mstatus MPRV toggle round trip.
	a.Li(asm.T0, 1<<rv.MstatusMPRV)
	a.Csrrs(asm.X0, rv.CSRMstatus, asm.T0)
	a.Csrr(asm.T1, rv.CSRMstatus)
	a.And(asm.T2, asm.T1, asm.T0)
	a.BeqzFar(asm.T2, "fail")
	a.Csrrc(asm.X0, rv.CSRMstatus, asm.T0)
	a.Jal(asm.RA, "print_t5")

	// --- T1: count 3 timer ticks ---
	a.La(asm.T0, "ticks")
	a.Sd(asm.X0, asm.T0, 0)
	a.Li(asm.T0, 1<<rv.IntMTimer)
	a.Csrw(rv.CSRMie, asm.T0)
	a.Jal(asm.RA, "arm_timer")
	a.Csrrsi(asm.X0, rv.CSRMstatus, 1<<rv.MstatusMIE)
	a.Label("t1_wait")
	a.Wfi()
	a.La(asm.T0, "ticks")
	a.Ld(asm.T1, asm.T0, 0)
	a.Li(asm.T2, 3)
	a.Blt(asm.T1, asm.T2, "t1_wait")
	a.Csrrci(asm.X0, rv.CSRMstatus, 1<<rv.MstatusMIE)
	a.Jal(asm.RA, "print_t1")

	// --- T2: self software interrupt ---
	a.La(asm.T0, "swint_seen")
	a.Sd(asm.X0, asm.T0, 0)
	a.Li(asm.T0, 1<<rv.IntMSoft)
	a.Csrw(rv.CSRMie, asm.T0)
	a.Li(asm.T0, clintBase)
	a.Li(asm.T1, 1)
	a.Sw(asm.T1, asm.T0, 0)
	a.Csrrsi(asm.X0, rv.CSRMstatus, 1<<rv.MstatusMIE)
	a.Label("t2_wait")
	a.La(asm.T0, "swint_seen")
	a.Ld(asm.T1, asm.T0, 0)
	a.Beqz(asm.T1, "t2_wait")
	a.Csrrci(asm.X0, rv.CSRMstatus, 1<<rv.MstatusMIE)
	a.Jal(asm.RA, "print_t2")

	// --- T3 + T4: the U-mode application ---
	// PMP: deny the kernel text/data to U, allow the app region and the
	// rest of the address space.
	a.La(asm.T0, "start")
	a.Srli(asm.T0, asm.T0, 2)
	a.Li(asm.T1, 0x1000/8-1) // protect the kernel's first page
	a.Or(asm.T0, asm.T0, asm.T1)
	a.Csrw(rv.CSRPmpaddr0, asm.T0)
	a.Li(asm.T0, ^uint64(0))
	a.Csrw(rv.CSRPmpaddr0+1, asm.T0)
	a.Li(asm.T0, 0x1F18)
	a.Csrw(rv.CSRPmpcfg0, asm.T0)
	a.La(asm.T0, "syscall_seen")
	a.Sd(asm.X0, asm.T0, 0)
	a.La(asm.T0, "app")
	a.Csrw(rv.CSRMepc, asm.T0)
	a.Li(asm.T1, 3<<11)
	a.Csrrc(asm.X0, rv.CSRMstatus, asm.T1) // MPP=U
	a.Mret()
	// The app ecalls back; the trap handler routes to "after_app".
	a.Label("after_app")
	a.La(asm.T0, "syscall_seen")
	a.Ld(asm.T1, asm.T0, 0)
	a.Li(asm.T2, 0xAB)
	a.BneFar(asm.T1, asm.T2, "fail")
	a.Jal(asm.RA, "print_t3")
	a.La(asm.T0, "pmp_fault_seen")
	a.Ld(asm.T1, asm.T0, 0)
	a.BeqzFar(asm.T1, "fail")
	a.Jal(asm.RA, "print_t4")

	// All tests passed.
	a.Jal(asm.RA, "print_pass")
	a.Li(asm.T0, exitBase)
	a.Li(asm.T1, 0x5555)
	a.Sd(asm.T1, asm.T0, 0)

	a.Label("fail")
	a.Li(asm.T0, exitBase)
	a.Li(asm.T1, 0x3333)
	a.Sd(asm.T1, asm.T0, 0)
	a.Label("hang")
	a.J("hang")

	a.Label("park_forever")
	a.Wfi()
	a.J("park_forever")

	// arm_timer: mtimecmp = mtime + 8 ticks.
	a.Label("arm_timer")
	a.Li(asm.T0, clintBase+0xBFF8)
	a.Ld(asm.T1, asm.T0, 0)
	a.Addi(asm.T1, asm.T1, 8)
	a.Li(asm.T0, clintBase+0x4000)
	a.Sd(asm.T1, asm.T0, 0)
	a.Ret()

	// --- The U-mode application (T3/T4) ---
	// It first probes kernel memory (expecting a PMP fault, which the
	// kernel records and skips), then issues the syscall ecall.
	a.Align(4096) // the app lives outside the PMP-protected kernel page
	a.Label("app")
	a.La(asm.T0, "start")
	a.Lw(asm.T1, asm.T0, 0) // must fault: kernel memory
	a.Li(asm.A0, 0xAB)
	a.Li(asm.A7, 0x52544F53) // "RTOS": a private syscall namespace, so a
	// stale a7 can never alias an SBI extension the monitor offloads
	a.Ecall() // syscall: never returns here
	a.Label("app_hang")
	a.J("app_hang")

	// --- Trap handler ---
	// Minimal frame: the RTOS handler uses a dedicated register window
	// saved into the scratch area.
	a.Label("trap")
	a.Csrrw(asm.SP, rv.CSRMscratch, asm.SP)
	a.Sd(asm.T0, asm.SP, 0)
	a.Sd(asm.T1, asm.SP, 8)
	a.Sd(asm.T2, asm.SP, 16)
	a.Csrr(asm.T0, rv.CSRMcause)
	a.Blt(asm.T0, asm.X0, "trap_intr")
	// Exceptions.
	a.Li(asm.T1, rv.ExcEcallFromU)
	a.Beq(asm.T0, asm.T1, "trap_syscall")
	a.Li(asm.T1, rv.ExcLoadAccessFault)
	a.Beq(asm.T0, asm.T1, "trap_pmp")
	a.Li(asm.T1, rv.ExcInstrAccessFault)
	a.Beq(asm.T0, asm.T1, "trap_pmp")
	// Unexpected: fail hard.
	a.Li(asm.T0, exitBase)
	a.Li(asm.T1, 0x3333)
	a.Sd(asm.T1, asm.T0, 0)

	a.Label("trap_intr")
	a.Slli(asm.T1, asm.T0, 1)
	a.Srli(asm.T1, asm.T1, 1)
	a.Li(asm.T2, rv.IntMTimer)
	a.Beq(asm.T1, asm.T2, "trap_tick")
	// Software interrupt: ack and record.
	a.Li(asm.T0, clintBase)
	a.Sw(asm.X0, asm.T0, 0)
	a.La(asm.T0, "swint_seen")
	a.Li(asm.T1, 1)
	a.Sd(asm.T1, asm.T0, 0)
	a.J("trap_out")
	a.Label("trap_tick")
	a.La(asm.T0, "ticks")
	a.Ld(asm.T1, asm.T0, 0)
	a.Addi(asm.T1, asm.T1, 1)
	a.Sd(asm.T1, asm.T0, 0)
	// Rearm for the next tick (mtimecmp = mtime + 8).
	a.Li(asm.T0, clintBase+0xBFF8)
	a.Ld(asm.T1, asm.T0, 0)
	a.Addi(asm.T1, asm.T1, 8)
	a.Li(asm.T0, clintBase+0x4000)
	a.Sd(asm.T1, asm.T0, 0)
	a.J("trap_out")

	// Syscall from the app: record a0 and return to the kernel flow.
	a.Label("trap_syscall")
	a.La(asm.T0, "syscall_seen")
	a.Sd(asm.A0, asm.T0, 0)
	a.La(asm.T0, "after_app")
	a.Csrw(rv.CSRMepc, asm.T0)
	// Return to M-mode: set MPP=M.
	a.Li(asm.T1, 3<<11)
	a.Csrrs(asm.X0, rv.CSRMstatus, asm.T1)
	a.J("trap_out")

	// PMP fault from the app: record and skip the faulting instruction.
	a.Label("trap_pmp")
	a.La(asm.T0, "pmp_fault_seen")
	a.Li(asm.T1, 1)
	a.Sd(asm.T1, asm.T0, 0)
	a.Csrr(asm.T1, rv.CSRMepc)
	a.Addi(asm.T1, asm.T1, 4)
	a.Csrw(rv.CSRMepc, asm.T1)
	a.Label("trap_out")
	a.Ld(asm.T0, asm.SP, 0)
	a.Ld(asm.T1, asm.SP, 8)
	a.Ld(asm.T2, asm.SP, 16)
	a.Csrrw(asm.SP, rv.CSRMscratch, asm.SP)
	a.Mret()

	// --- Console helpers ---
	emitPrint := func(label, text string) {
		a.Label(label)
		a.Li(asm.T0, uartBase)
		for _, ch := range []byte(text) {
			a.Li(asm.T1, uint64(ch))
			a.Sb(asm.T1, asm.T0, 0)
		}
		a.Ret()
	}
	emitPrint("print_t1", "rtos: T1 timer ok\n")
	emitPrint("print_t2", "rtos: T2 swint ok\n")
	emitPrint("print_t3", "rtos: T3 syscall ok\n")
	emitPrint("print_t4", "rtos: T4 pmp ok\n")
	emitPrint("print_t5", "rtos: T5 csr ok\n")
	emitPrint("print_pass", "rtos: all tests passed\n")

	a.Align(8)
	a.Label("scratch")
	a.Space(64)
	a.Label("ticks")
	a.Space(8)
	a.Label("swint_seen")
	a.Space(8)
	a.Label("syscall_seen")
	a.Space(8)
	a.Label("pmp_fault_seen")
	a.Space(8)

	return Image{Base: base, Bytes: a.MustAssemble(),
		Symbols: symbolTable(a, "start", "trap", "app")}
}
