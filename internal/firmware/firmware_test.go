package firmware_test

import (
	"strings"
	"testing"

	"govfm/internal/core"
	"govfm/internal/firmware"
	"govfm/internal/hart"
	"govfm/internal/kernel"
)

// run boots the given firmware image (optionally under the monitor) with
// an optional kernel and returns the machine after it halts.
func run(t *testing.T, cfg *hart.Config, fw firmware.Image, kern []byte,
	virtualize bool, maxSteps uint64) *hart.Machine {
	t.Helper()
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(fw.Base, fw.Bytes); err != nil {
		t.Fatal(err)
	}
	if kern != nil {
		if err := m.LoadImage(core.OSBase, kern); err != nil {
			t.Fatal(err)
		}
	}
	if virtualize {
		mon, err := core.Attach(m, core.Options{Offload: true, FirmwareEntry: fw.Base})
		if err != nil {
			t.Fatal(err)
		}
		mon.Boot()
	} else {
		m.Reset(fw.Base)
	}
	m.Run(maxSteps)
	ok, reason := m.Halted()
	if !ok {
		t.Fatalf("did not halt: hart0=%v uart=%q", m.Harts[0], m.Uart.Output())
	}
	if reason != "guest-exit-pass" {
		t.Fatalf("halted with %q (uart=%q)", reason, m.Uart.Output())
	}
	return m
}

func bootKernel(harts int) []byte {
	return kernel.BuildBoot(core.OSBase, kernel.BootOptions{
		Harts: harts, TimeReads: 10, TimerSets: 1, Misaligned: 3,
	})
}

// TestGosbiNativeVsVirtualized: the same gosbi binary, byte for byte, must
// produce identical guest-visible output natively and under the monitor —
// the paper's Q1.
func TestGosbiNativeVsVirtualized(t *testing.T) {
	for _, mk := range []func() *hart.Config{hart.VisionFive2, hart.PremierP550} {
		cfg := mk()
		cfg.Harts = 1
		fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
			OSEntry: core.OSBase, Harts: 1, FirmwareSize: core.FirmwareSize,
		})
		native := run(t, cfg, fw, bootKernel(1), false, 5_000_000)
		cfg2 := mk()
		cfg2.Harts = 1
		virt := run(t, cfg2, fw, bootKernel(1), true, 5_000_000)
		if native.Uart.Output() != virt.Uart.Output() {
			t.Errorf("%s: output diverged: %q vs %q",
				cfg.Name, native.Uart.Output(), virt.Uart.Output())
		}
	}
}

// TestMinsbiNativeVsVirtualized covers the second, independently written
// firmware (the RustSBI analog).
func TestMinsbiNativeVsVirtualized(t *testing.T) {
	cfg := hart.VisionFive2()
	cfg.Harts = 1
	fw := firmware.BuildMinsbi(core.FirmwareBase, firmware.Options{
		OSEntry: core.OSBase, FirmwareSize: core.FirmwareSize,
	})
	native := run(t, cfg, fw, bootKernel(1), false, 5_000_000)
	cfg2 := hart.VisionFive2()
	cfg2.Harts = 1
	virt := run(t, cfg2, fw, bootKernel(1), true, 5_000_000)
	if native.Uart.Output() != virt.Uart.Output() {
		t.Errorf("minsbi output diverged: %q vs %q",
			native.Uart.Output(), virt.Uart.Output())
	}
}

// TestRTOSTestSuite runs the Zephyr-analog's own test suite natively and
// virtualized; both must print every test line and exit PASS (paper §8.2:
// "Zephyr passes its test suite while being virtualized").
func TestRTOSTestSuite(t *testing.T) {
	lines := []string{"T1 timer ok", "T2 swint ok", "T3 syscall ok",
		"T4 pmp ok", "T5 csr ok", "all tests passed"}
	for _, virtualize := range []bool{false, true} {
		cfg := hart.VisionFive2()
		cfg.Harts = 1
		fw := firmware.BuildRTOS(core.FirmwareBase)
		m := run(t, cfg, fw, nil, virtualize, 10_000_000)
		out := m.Uart.Output()
		for _, l := range lines {
			if !strings.Contains(out, l) {
				t.Errorf("virtualized=%v: missing %q in output %q", virtualize, l, out)
			}
		}
	}
}

// TestRTOSOutputIdentical: the RTOS console output must be byte-identical
// native vs virtualized.
func TestRTOSOutputIdentical(t *testing.T) {
	cfg := hart.VisionFive2()
	cfg.Harts = 1
	fw := firmware.BuildRTOS(core.FirmwareBase)
	native := run(t, cfg, fw, nil, false, 10_000_000)
	cfg2 := hart.VisionFive2()
	cfg2.Harts = 1
	virt := run(t, cfg2, fw, nil, true, 10_000_000)
	if native.Uart.Output() != virt.Uart.Output() {
		t.Errorf("rtos output diverged:\nnative: %q\nvirt:   %q",
			native.Uart.Output(), virt.Uart.Output())
	}
}

// TestClosedSourceFirmware models the paper's Star64 experiment (§8.2):
// the firmware is available only as an opaque binary blob — extracted here
// by building and discarding the symbol table — and still virtualizes.
func TestClosedSourceFirmware(t *testing.T) {
	fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
		OSEntry: core.OSBase, Harts: 1, FirmwareSize: core.FirmwareSize,
	})
	blob := firmware.Image{Base: fw.Base, Bytes: append([]byte(nil), fw.Bytes...)}
	// No symbols, no source: just bytes at a base address.
	cfg := hart.VisionFive2()
	cfg.Harts = 1
	m := run(t, cfg, blob, bootKernel(1), true, 5_000_000)
	if !strings.Contains(m.Uart.Output(), "ok") {
		t.Error("opaque firmware blob failed to boot the kernel")
	}
}

// TestGosbiMultiHartVirtualized exercises HSM, IPIs, and remote fences
// through the virtualized firmware on several harts.
func TestGosbiMultiHartVirtualized(t *testing.T) {
	cfg := hart.VisionFive2()
	cfg.Harts = 2
	fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
		OSEntry: core.OSBase, Harts: 2, FirmwareSize: core.FirmwareSize,
	})
	run(t, cfg, fw, bootKernel(2), true, 30_000_000)
}

// TestFirmwareImagesDiffer sanity-checks that the two SBI firmware really
// are independent binaries, not aliases.
func TestFirmwareImagesDiffer(t *testing.T) {
	g := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{OSEntry: core.OSBase, Harts: 1})
	r := firmware.BuildMinsbi(core.FirmwareBase, firmware.Options{OSEntry: core.OSBase})
	if len(g.Bytes) == len(r.Bytes) {
		t.Log("same length is suspicious but not fatal")
	}
	if string(g.Bytes) == string(r.Bytes) {
		t.Error("gosbi and minsbi must be different implementations")
	}
	if g.Symbols["trap"] == 0 || g.Symbols["start"] == 0 {
		t.Error("symbol table incomplete")
	}
}
