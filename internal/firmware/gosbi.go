// Package firmware builds synthetic vendor firmware images: real RV64
// machine code assembled by internal/asm and executed instruction by
// instruction by the simulator. The same binary image runs in physical
// M-mode (the paper's "Native" baseline) and in virtual M-mode under the
// monitor — the firmware is never modified, which is the paper's central
// claim (§8.2, Q1).
//
// Three firmware are provided, mirroring the paper's evaluation set:
//
//   - gosbi: a full OpenSBI-like SBI firmware (timer, IPI, rfence, HSM,
//     reset, console, time-CSR emulation, misaligned-access emulation via
//     MPRV, PMP self-protection, trap redirection);
//   - minsbi: a RustSBI-like minimal implementation;
//   - rtos: a Zephyr-like M-mode RTOS with round-robin tasks and U-mode
//     applications that never leaves machine mode.
package firmware

import (
	"govfm/internal/asm"
	"govfm/internal/hart"
	"govfm/internal/rv"
)

// Options parameterizes a firmware build.
type Options struct {
	// OSEntry is the S-mode payload entry point jumped to by hart 0.
	OSEntry uint64
	// Harts is the number of harts the firmware serves.
	Harts int
	// FirmwareSize is the NAPOT size of the firmware's own region, used
	// for its PMP self-protection (the image base must be size-aligned).
	FirmwareSize uint64
	// EvilMode, when non-empty, arms a malicious vendor extension (EID
	// EvilEID) used by the sandbox-policy tests: "read-os" loads from OS
	// memory, "write-os" stores to it, "dma" programs the DMA engine to
	// exfiltrate OS memory, "echo-s7" leaks the caller's s7 register.
	EvilMode string
	// EvilTarget is the OS address the evil modes touch (default OSBase).
	EvilTarget uint64
}

// EvilEID is the malicious vendor-extension ID armed by Options.EvilMode.
const EvilEID = 0x09001234

// Image is a built firmware binary plus its symbol table.
type Image struct {
	Base    uint64
	Bytes   []byte
	Symbols map[string]uint64
}

// Frame slot offset for register xi (i >= 1) in the trap frame.
func frameOff(i int) int64 { return int64(8 * (i - 1)) }

// sbiErr widens an SBI error code for Li (constant conversion of negative
// values to uint64 is rejected at compile time).
func sbiErr(e int64) uint64 { return uint64(e) }

const (
	clintBase = hart.ClintBase
	uartBase  = hart.UartBase
	exitBase  = hart.ExitBase
)

// BuildGosbi assembles the gosbi firmware at base.
func BuildGosbi(base uint64, opt Options) Image {
	a := asm.New(base)
	nharts := opt.Harts
	if nharts <= 0 {
		nharts = 1
	}
	fwSize := opt.FirmwareSize
	if fwSize == 0 {
		fwSize = 0x10_0000
	}

	// --- Reset entry (all harts) ---
	a.Label("start")
	// mscratch = &scratch[hartid]; the trap frame lives there.
	a.Csrr(asm.A0, rv.CSRMhartid)
	a.La(asm.T0, "scratch")
	a.Slli(asm.T1, asm.A0, 9) // 512 B per hart
	a.Add(asm.T0, asm.T0, asm.T1)
	a.Csrw(rv.CSRMscratch, asm.T0)
	a.La(asm.T0, "trap")
	a.Csrw(rv.CSRMtvec, asm.T0)

	// PMP self-protection: entry 0 denies S/U access to the firmware
	// region; entry 1 opens the rest of the address space.
	a.La(asm.T0, "start")
	a.Srli(asm.T0, asm.T0, 2)
	a.Li(asm.T1, fwSize/8-1)
	a.Or(asm.T0, asm.T0, asm.T1)
	a.Csrw(rv.CSRPmpaddr0, asm.T0)
	a.Li(asm.T0, ^uint64(0))
	a.Csrw(rv.CSRPmpaddr0+1, asm.T0)
	a.Li(asm.T0, 0x1F18) // entry0: NAPOT no-perm; entry1: NAPOT RWX
	a.Csrw(rv.CSRPmpcfg0, asm.T0)

	// Delegation: the OpenSBI defaults — misaligned fetch, breakpoint,
	// ecall-from-U, and page faults go straight to S-mode — plus the
	// hypervisor causes (ecall-from-VS, guest-page faults, virtual
	// instruction). The H bits are WARL and drop out on non-H harts.
	a.Li(asm.T0, 0xB109|
		1<<rv.ExcEcallFromVS|1<<rv.ExcInstrGuestPageFault|
		1<<rv.ExcLoadGuestPageFault|1<<rv.ExcVirtualInstr|
		1<<rv.ExcStoreGuestPageFault)
	a.Csrw(rv.CSRMedeleg, asm.T0)
	a.Li(asm.T0, 0x222)
	a.Csrw(rv.CSRMideleg, asm.T0)
	// Counters visible below M.
	a.Li(asm.T0, ^uint64(0))
	a.Csrw(rv.CSRMcounteren, asm.T0)
	a.Csrw(rv.CSRScounteren, asm.T0)
	// Machine timer and software interrupt sources armed.
	a.Li(asm.T0, 1<<rv.IntMTimer|1<<rv.IntMSoft)
	a.Csrw(rv.CSRMie, asm.T0)
	// Enable the Sstc stimecmp comparator where the hardware implements
	// it; on platforms without Sstc the menvcfg write legalizes to zero.
	a.Li(asm.T0, 1)
	a.Slli(asm.T0, asm.T0, 63)
	a.Csrrs(asm.X0, rv.CSRMenvcfg, asm.T0)

	// Hart 0 boots the payload; the others park until HSM start.
	a.Csrr(asm.A0, rv.CSRMhartid)
	a.Bnez(asm.A0, "park")

	// Mark hart 0 started in the HSM table.
	a.La(asm.T0, "hsm_state")
	a.Li(asm.T1, 1)
	a.Sd(asm.T1, asm.T0, 0)

	// Jump to the payload in S-mode: mepc=OSEntry, MPP=S, a0=hartid, a1=0.
	a.Li(asm.T0, opt.OSEntry)
	a.Csrw(rv.CSRMepc, asm.T0)
	a.Li(asm.T1, 3<<11)
	a.Csrrc(asm.X0, rv.CSRMstatus, asm.T1)
	a.Li(asm.T1, 1<<11)
	a.Csrrs(asm.X0, rv.CSRMstatus, asm.T1)
	a.Csrr(asm.A0, rv.CSRMhartid)
	a.Li(asm.A1, 0)
	a.Mret()

	// --- Secondary-hart parking loop ---
	a.Label("park")
	a.Wfi()
	// Handle a pending remote-fence request even while parked.
	a.Csrr(asm.S0, rv.CSRMhartid)
	a.La(asm.T0, "mailbox")
	a.Slli(asm.T1, asm.S0, 3)
	a.Add(asm.T0, asm.T0, asm.T1)
	a.Ld(asm.T2, asm.T0, 0)
	a.Sd(asm.X0, asm.T0, 0)
	a.Andi(asm.T3, asm.T2, 2)
	a.Beqz(asm.T3, "park_no_fence")
	a.SfenceVMA(asm.X0, asm.X0)
	a.Label("park_no_fence")
	// Acknowledge the IPI.
	a.Li(asm.T0, clintBase)
	a.Slli(asm.T1, asm.S0, 2)
	a.Add(asm.T0, asm.T0, asm.T1)
	a.Sw(asm.X0, asm.T0, 0)
	// HSM start requested?
	a.La(asm.T0, "hsm_start")
	a.Slli(asm.T1, asm.S0, 4) // 16 B per hart: start addr + opaque
	a.Add(asm.T0, asm.T0, asm.T1)
	a.Ld(asm.T2, asm.T0, 0)
	a.Beqz(asm.T2, "park")
	// Start: clear the request, mark started, enter S-mode.
	a.Ld(asm.A1, asm.T0, 8) // opaque
	a.Sd(asm.X0, asm.T0, 0)
	a.La(asm.T3, "hsm_state")
	a.Slli(asm.T4, asm.S0, 3)
	a.Add(asm.T3, asm.T3, asm.T4)
	a.Li(asm.T4, 1)
	a.Sd(asm.T4, asm.T3, 0)
	a.Csrw(rv.CSRMepc, asm.T2)
	a.Li(asm.T1, 3<<11)
	a.Csrrc(asm.X0, rv.CSRMstatus, asm.T1)
	a.Li(asm.T1, 1<<11)
	a.Csrrs(asm.X0, rv.CSRMstatus, asm.T1)
	a.Mv(asm.A0, asm.S0)
	a.Mret()

	buildGosbiTrapHandler(a, nharts, opt)
	buildGosbiData(a, nharts)

	return Image{Base: base, Bytes: a.MustAssemble(), Symbols: symbolTable(a,
		"start", "trap", "scratch", "mailbox", "hsm_state", "hsm_start")}
}

func symbolTable(a *asm.Asm, names ...string) map[string]uint64 {
	m := make(map[string]uint64, len(names))
	for _, n := range names {
		m[n] = a.Addr(n)
	}
	return m
}

// saveFrame emits the full trap-frame save: sp is swapped with mscratch,
// x1 and x3..x31 are stored, and the original sp is recovered from
// mscratch into its slot.
func saveFrame(a *asm.Asm) {
	a.Label("trap")
	a.Csrrw(asm.SP, rv.CSRMscratch, asm.SP)
	a.Sd(asm.RA, asm.SP, frameOff(1))
	for i := 3; i <= 31; i++ {
		a.Sd(i, asm.SP, frameOff(i))
	}
	a.Csrr(asm.T0, rv.CSRMscratch)
	a.Sd(asm.T0, asm.SP, frameOff(2))
}

// restoreFrame emits the restore path and mret. x2 is restored by the
// final csrrw (mscratch still holds the original sp).
func restoreFrame(a *asm.Asm) {
	a.Label("restore")
	a.Ld(asm.RA, asm.SP, frameOff(1))
	for i := 3; i <= 31; i++ {
		a.Ld(i, asm.SP, frameOff(i))
	}
	a.Csrrw(asm.SP, rv.CSRMscratch, asm.SP)
	a.Mret()
}

func buildGosbiTrapHandler(a *asm.Asm, nharts int, opt Options) {
	saveFrame(a)

	// Dispatch on mcause.
	a.Csrr(asm.S0, rv.CSRMcause)
	a.Blt(asm.S0, asm.X0, "interrupt")
	a.Li(asm.T0, int64ToU(rv.ExcEcallFromS))
	a.Beq(asm.S0, asm.T0, "ecall_s")
	a.Li(asm.T0, int64ToU(rv.ExcIllegalInstr))
	a.Beq(asm.S0, asm.T0, "illegal")
	a.Li(asm.T0, int64ToU(rv.ExcLoadAddrMisaligned))
	a.Beq(asm.S0, asm.T0, "mis_load")
	a.Li(asm.T0, int64ToU(rv.ExcStoreAddrMisaligned))
	a.Beq(asm.S0, asm.T0, "mis_store")
	a.J("redirect")

	// --- Interrupts ---
	a.Label("interrupt")
	a.Slli(asm.S1, asm.S0, 1)
	a.Srli(asm.S1, asm.S1, 1)
	a.Li(asm.T0, rv.IntMTimer)
	a.Beq(asm.S1, asm.T0, "mtimer")
	a.Li(asm.T0, rv.IntMSoft)
	a.Beq(asm.S1, asm.T0, "msoft")
	a.J("restore") // spurious / external: nothing to do

	// M timer: hand the event to the supervisor (STIP) and silence MTIE
	// until the next sbi_set_timer.
	a.Label("mtimer")
	a.Li(asm.T0, 1<<rv.IntSTimer)
	a.Csrrs(asm.X0, rv.CSRMip, asm.T0)
	a.Li(asm.T0, 1<<rv.IntMTimer)
	a.Csrrc(asm.X0, rv.CSRMie, asm.T0)
	a.J("restore")

	// M software interrupt: consume the mailbox.
	a.Label("msoft")
	a.Csrr(asm.S2, rv.CSRMhartid)
	// Acknowledge the IPI at the CLINT.
	a.Li(asm.T0, clintBase)
	a.Slli(asm.T1, asm.S2, 2)
	a.Add(asm.T0, asm.T0, asm.T1)
	a.Sw(asm.X0, asm.T0, 0)
	// Fetch and clear the mailbox word.
	a.La(asm.T0, "mailbox")
	a.Slli(asm.T1, asm.S2, 3)
	a.Add(asm.T0, asm.T0, asm.T1)
	a.Ld(asm.S3, asm.T0, 0)
	a.Sd(asm.X0, asm.T0, 0)
	a.Andi(asm.T2, asm.S3, 1)
	a.Beqz(asm.T2, "msoft_no_ssip")
	a.Li(asm.T2, 1<<rv.IntSSoft)
	a.Csrrs(asm.X0, rv.CSRMip, asm.T2)
	a.Label("msoft_no_ssip")
	a.Andi(asm.T2, asm.S3, 2)
	a.Beqz(asm.T2, "restore")
	a.SfenceVMA(asm.X0, asm.X0)
	a.J("restore")

	buildGosbiSBI(a, nharts, opt)
	buildGosbiIllegal(a)
	buildGosbiExtWalk(a)
	buildGosbiMisaligned(a)
	buildGosbiRedirect(a)
	restoreFrame(a)
}

// int64ToU converts a small cause constant for Li.
func int64ToU(v uint64) uint64 { return v }

const (
	frameA0 = 8 * (10 - 1)
	frameA1 = 8 * (11 - 1)
)

func buildGosbiSBI(a *asm.Asm, nharts int, opt Options) {
	a.Label("ecall_s")
	// Return past the ecall.
	a.Csrr(asm.T0, rv.CSRMepc)
	a.Addi(asm.T0, asm.T0, 4)
	a.Csrw(rv.CSRMepc, asm.T0)
	// OpenSBI-style extension lookup: walk the registered-extension table
	// before dispatch. This indirect structure is what the paper blames
	// for the vendor firmware's slightly slower hot paths compared to the
	// monitor's fast-path implementation (§8.3.1).
	a.Jal(asm.RA, "ext_walk")

	a.Li(asm.T0, rv.SBIExtTimer)
	a.Beq(asm.A7, asm.T0, "sbi_time")
	a.Li(asm.T0, rv.SBIExtIPI)
	a.Beq(asm.A7, asm.T0, "sbi_ipi")
	a.Li(asm.T0, rv.SBIExtRfence)
	a.Beq(asm.A7, asm.T0, "sbi_rfence")
	a.Li(asm.T0, rv.SBIExtBase)
	a.Beq(asm.A7, asm.T0, "sbi_base")
	a.Li(asm.T0, rv.SBIExtHSM)
	a.Beq(asm.A7, asm.T0, "sbi_hsm")
	a.Li(asm.T0, rv.SBIExtReset)
	a.Beq(asm.A7, asm.T0, "sbi_srst")
	a.Li(asm.T0, rv.SBIExtDebug)
	a.Beq(asm.A7, asm.T0, "sbi_dbcn")
	a.Beqz(asm.A7, "sbi_time_leg") // legacy set_timer (EID 0)
	a.Li(asm.T0, rv.SBILegacyConsolePut)
	a.Beq(asm.A7, asm.T0, "sbi_putc_leg")
	a.Li(asm.T0, rv.SBILegacyConsoleGet)
	a.Beq(asm.A7, asm.T0, "sbi_getc_leg")
	a.Li(asm.T0, rv.SBILegacyShutdown)
	a.Beq(asm.A7, asm.T0, "sbi_srst")
	if opt.EvilMode != "" {
		a.Li(asm.T0, EvilEID)
		a.Beq(asm.A7, asm.T0, "evil")
	}
	// Unknown extension.
	a.Li(asm.T0, sbiErr(rv.SBIErrNotSupported))
	a.Sd(asm.T0, asm.SP, frameA0)
	a.Sd(asm.X0, asm.SP, frameA1)
	a.J("restore")

	// sbi_ok: success return (a0=0, a1=0).
	a.Label("sbi_ok")
	a.Sd(asm.X0, asm.SP, frameA0)
	a.Sd(asm.X0, asm.SP, frameA1)
	a.J("restore")

	// sbi_ret_a1: success with value in s11.
	a.Label("sbi_ok_val")
	a.Sd(asm.X0, asm.SP, frameA0)
	a.Sd(asm.S11, asm.SP, frameA1)
	a.J("restore")

	// --- TIME: set_timer(a0=deadline) ---
	a.Label("sbi_time")
	a.Bnez(asm.A6, "sbi_nosupport")
	a.Label("sbi_time_leg")
	a.Csrr(asm.T1, rv.CSRMhartid)
	a.Slli(asm.T1, asm.T1, 3)
	a.Li(asm.T2, clintBase+0x4000)
	a.Add(asm.T2, asm.T2, asm.T1)
	a.Sd(asm.A0, asm.T2, 0)
	a.Li(asm.T0, 1<<rv.IntSTimer)
	a.Csrrc(asm.X0, rv.CSRMip, asm.T0)
	a.Li(asm.T0, 1<<rv.IntMTimer)
	a.Csrrs(asm.X0, rv.CSRMie, asm.T0)
	a.J("sbi_ok")

	a.Label("sbi_nosupport")
	a.Li(asm.T0, sbiErr(rv.SBIErrNotSupported))
	a.Sd(asm.T0, asm.SP, frameA0)
	a.Sd(asm.X0, asm.SP, frameA1)
	a.J("restore")

	// --- IPI: send_ipi(a0=mask, a1=base); also the rfence loop with the
	// mailbox bit in s10. ---
	a.Label("sbi_ipi")
	a.Bnez(asm.A6, "sbi_nosupport")
	a.Li(asm.S10, 1) // mailbox bit: SSIP request
	a.J("ipi_common")
	a.Label("sbi_rfence")
	// All rfence functions share the remote-fence IPI path; fence locally
	// first.
	a.SfenceVMA(asm.X0, asm.X0)
	a.Li(asm.S10, 2) // mailbox bit: fence request
	a.Label("ipi_common")
	a.Li(asm.S4, 0) // i
	a.Li(asm.S5, uint64(nharts))
	a.Label("ipi_loop")
	a.Bge(asm.S4, asm.S5, "sbi_ok")
	a.Sub(asm.T1, asm.S4, asm.A1) // i - base
	a.Blt(asm.T1, asm.X0, "ipi_next")
	a.Li(asm.T2, 63)
	a.Blt(asm.T2, asm.T1, "ipi_next")
	a.Srl(asm.T2, asm.A0, asm.T1)
	a.Andi(asm.T2, asm.T2, 1)
	a.Beqz(asm.T2, "ipi_next")
	// mailbox[i] |= bit (atomically: other senders race with us).
	a.La(asm.T3, "mailbox")
	a.Slli(asm.T4, asm.S4, 3)
	a.Add(asm.T3, asm.T3, asm.T4)
	a.AmoorD(asm.X0, asm.T3, asm.S10)
	// msip[i] = 1.
	a.Li(asm.T3, clintBase)
	a.Slli(asm.T4, asm.S4, 2)
	a.Add(asm.T3, asm.T3, asm.T4)
	a.Li(asm.T5, 1)
	a.Sw(asm.T5, asm.T3, 0)
	a.Label("ipi_next")
	a.Addi(asm.S4, asm.S4, 1)
	a.J("ipi_loop")

	// --- BASE extension ---
	a.Label("sbi_base")
	a.Li(asm.T0, rv.SBIBaseGetSpecVersion)
	a.Beq(asm.A6, asm.T0, "base_spec")
	a.Li(asm.T0, rv.SBIBaseGetImplID)
	a.Beq(asm.A6, asm.T0, "base_impl")
	a.Li(asm.T0, rv.SBIBaseGetImplVersion)
	a.Beq(asm.A6, asm.T0, "base_implver")
	a.Li(asm.T0, rv.SBIBaseProbeExt)
	a.Beq(asm.A6, asm.T0, "base_probe")
	a.Li(asm.T0, rv.SBIBaseGetMvendorid)
	a.Beq(asm.A6, asm.T0, "base_mvendor")
	a.Li(asm.T0, rv.SBIBaseGetMarchid)
	a.Beq(asm.A6, asm.T0, "base_march")
	a.Li(asm.T0, rv.SBIBaseGetMimpid)
	a.Beq(asm.A6, asm.T0, "base_mimp")
	a.J("sbi_nosupport")
	a.Label("base_spec")
	a.Li(asm.S11, rv.SBISpecVersion)
	a.J("sbi_ok_val")
	a.Label("base_impl")
	a.Li(asm.S11, rv.SBIImplIDGosbi)
	a.J("sbi_ok_val")
	a.Label("base_implver")
	a.Li(asm.S11, 0x10003)
	a.J("sbi_ok_val")
	a.Label("base_mvendor")
	a.Csrr(asm.S11, rv.CSRMvendorid)
	a.J("sbi_ok_val")
	a.Label("base_march")
	a.Csrr(asm.S11, rv.CSRMarchid)
	a.J("sbi_ok_val")
	a.Label("base_mimp")
	a.Csrr(asm.S11, rv.CSRMimpid)
	a.J("sbi_ok_val")
	a.Label("base_probe")
	a.Li(asm.S11, 1)
	a.Li(asm.T0, rv.SBIExtTimer)
	a.Beq(asm.A0, asm.T0, "sbi_ok_val")
	a.Li(asm.T0, rv.SBIExtIPI)
	a.Beq(asm.A0, asm.T0, "sbi_ok_val")
	a.Li(asm.T0, rv.SBIExtRfence)
	a.Beq(asm.A0, asm.T0, "sbi_ok_val")
	a.Li(asm.T0, rv.SBIExtHSM)
	a.Beq(asm.A0, asm.T0, "sbi_ok_val")
	a.Li(asm.T0, rv.SBIExtReset)
	a.Beq(asm.A0, asm.T0, "sbi_ok_val")
	a.Li(asm.T0, rv.SBIExtDebug)
	a.Beq(asm.A0, asm.T0, "sbi_ok_val")
	a.Li(asm.S11, 0)
	a.J("sbi_ok_val")

	// --- HSM ---
	a.Label("sbi_hsm")
	a.Li(asm.T0, rv.SBIHSMHartStart)
	a.Beq(asm.A6, asm.T0, "hsm_do_start")
	a.Li(asm.T0, rv.SBIHSMHartStatus)
	a.Beq(asm.A6, asm.T0, "hsm_do_status")
	a.J("sbi_nosupport")
	a.Label("hsm_do_start")
	// a0=hartid, a1=start_addr, a2=opaque.
	a.Li(asm.T0, uint64(nharts))
	a.Bge(asm.A0, asm.T0, "hsm_invalid")
	a.La(asm.T0, "hsm_start")
	a.Slli(asm.T1, asm.A0, 4)
	a.Add(asm.T0, asm.T0, asm.T1)
	a.Sd(asm.A2, asm.T0, 8)
	a.Sd(asm.A1, asm.T0, 0)
	// Wake the target with an IPI (no mailbox bit: parking loop checks
	// the HSM table on every wake).
	a.Li(asm.T2, clintBase)
	a.Slli(asm.T3, asm.A0, 2)
	a.Add(asm.T2, asm.T2, asm.T3)
	a.Li(asm.T4, 1)
	a.Sw(asm.T4, asm.T2, 0)
	a.J("sbi_ok")
	a.Label("hsm_invalid")
	a.Li(asm.T0, sbiErr(rv.SBIErrInvalidParam))
	a.Sd(asm.T0, asm.SP, frameA0)
	a.Sd(asm.X0, asm.SP, frameA1)
	a.J("restore")
	a.Label("hsm_do_status")
	a.Li(asm.T0, uint64(nharts))
	a.Bge(asm.A0, asm.T0, "hsm_invalid")
	a.La(asm.T0, "hsm_state")
	a.Slli(asm.T1, asm.A0, 3)
	a.Add(asm.T0, asm.T0, asm.T1)
	a.Ld(asm.T2, asm.T0, 0)
	// state 1 (started) -> status 0; otherwise status 1 (stopped).
	a.Li(asm.S11, 1)
	a.Beqz(asm.T2, "sbi_ok_val")
	a.Li(asm.S11, 0)
	a.J("sbi_ok_val")

	// --- SRST: system reset -> the platform test-finisher device ---
	a.Label("sbi_srst")
	a.Li(asm.T0, exitBase)
	a.Li(asm.T1, hart.ExitPass)
	a.Sd(asm.T1, asm.T0, 0)
	a.J("sbi_ok") // unreachable: the machine halts

	// --- DBCN: debug console ---
	a.Label("sbi_dbcn")
	a.Li(asm.T0, rv.SBIDebugWriteByte)
	a.Beq(asm.A6, asm.T0, "dbcn_byte")
	a.Li(asm.T0, rv.SBIDebugWrite)
	a.Beq(asm.A6, asm.T0, "dbcn_write")
	a.J("sbi_nosupport")
	a.Label("dbcn_byte")
	a.Li(asm.T0, uartBase)
	a.Sb(asm.A0, asm.T0, 0)
	a.J("sbi_ok")
	// dbcn_write: a0=len, a1=addr_lo. The buffer lives in OS memory, so
	// each byte is read with MPRV (the firmware's only legitimate way to
	// see through the OS's address space).
	a.Label("dbcn_write")
	a.Li(asm.T0, 256)
	a.Blt(asm.T0, asm.A0, "hsm_invalid") // cap the length
	a.Li(asm.S4, 0)                      // i
	a.Li(asm.S6, uartBase)
	a.Label("dbcn_loop")
	a.Bge(asm.S4, asm.A0, "sbi_ok")
	a.Add(asm.T1, asm.A1, asm.S4)
	a.Li(asm.T2, 1<<rv.MstatusMPRV)
	a.Csrrs(asm.X0, rv.CSRMstatus, asm.T2)
	a.Lbu(asm.T3, asm.T1, 0)
	a.Csrrc(asm.X0, rv.CSRMstatus, asm.T2)
	a.Sb(asm.T3, asm.S6, 0)
	a.Addi(asm.S4, asm.S4, 1)
	a.J("dbcn_loop")

	if opt.EvilMode != "" {
		buildGosbiEvil(a, opt)
	}

	// --- Legacy console ---
	a.Label("sbi_putc_leg")
	a.Li(asm.T0, uartBase)
	a.Sb(asm.A0, asm.T0, 0)
	a.Sd(asm.X0, asm.SP, frameA0)
	a.J("restore")
	a.Label("sbi_getc_leg")
	a.Li(asm.T0, uartBase+5) // LSR
	a.Lbu(asm.T1, asm.T0, 0)
	a.Andi(asm.T1, asm.T1, 1)
	a.Li(asm.T2, ^uint64(0)) // -1: no data
	a.Beqz(asm.T1, "getc_done")
	a.Li(asm.T0, uartBase)
	a.Lbu(asm.T2, asm.T0, 0)
	a.Label("getc_done")
	a.Sd(asm.T2, asm.SP, frameA0)
	a.J("restore")
}

// buildGosbiIllegal emulates reads of the time CSR, the dominant trap
// cause on platforms without a hardware time CSR (paper Fig. 3).
func buildGosbiIllegal(a *asm.Asm) {
	a.Label("illegal")
	// The emulation-handler lookup goes through the same registration
	// table as SBI dispatch (OpenSBI structures its CSR emulation the
	// same way).
	a.Jal(asm.RA, "ext_walk")
	a.Csrr(asm.S1, rv.CSRMtval) // the trapping instruction's encoding
	a.Andi(asm.T0, asm.S1, 127)
	a.Li(asm.T1, int64ToU(uint64(rv.OpSystem)))
	a.Bne(asm.T0, asm.T1, "redirect")
	a.Srli(asm.T1, asm.S1, 20) // CSR number (raw is zero-extended 32-bit)
	a.Li(asm.T2, uint64(rv.CSRTime))
	a.Bne(asm.T1, asm.T2, "redirect")
	a.Srli(asm.T3, asm.S1, 12)
	a.Andi(asm.T3, asm.T3, 7)
	a.Li(asm.T4, uint64(rv.F3Csrrs))
	a.Bne(asm.T3, asm.T4, "redirect")
	// rd-writeback into the trap frame.
	a.Srli(asm.S2, asm.S1, 7)
	a.Andi(asm.S2, asm.S2, 31)
	a.Beqz(asm.S2, "illegal_done")
	a.Li(asm.T5, clintBase+0xBFF8)
	a.Ld(asm.S3, asm.T5, 0)
	a.Slli(asm.T6, asm.S2, 3)
	a.Addi(asm.T6, asm.T6, -8)
	a.Add(asm.T6, asm.SP, asm.T6)
	a.Sd(asm.S3, asm.T6, 0)
	a.Label("illegal_done")
	a.Csrr(asm.T0, rv.CSRMepc)
	a.Addi(asm.T0, asm.T0, 4)
	a.Csrw(rv.CSRMepc, asm.T0)
	a.J("restore")
}

// buildGosbiMisaligned emulates misaligned loads and stores byte by byte,
// reaching through the OS's address space with MPRV (paper §4.2 — this is
// the path exercising the monitor's MPRV emulation).
func buildGosbiMisaligned(a *asm.Asm) {
	// Common prologue: s3 = fault address, s1 = instruction word.
	a.Label("mis_load")
	a.Li(asm.S7, 0) // 0 = load
	a.J("mis_common")
	a.Label("mis_store")
	a.Li(asm.S7, 1)
	a.Label("mis_common")
	a.Csrr(asm.S3, rv.CSRMtval)
	a.Csrr(asm.S4, rv.CSRMepc)
	// Read the instruction through the OS address space (MPRV + MXR).
	a.Li(asm.T0, 1<<rv.MstatusMPRV|1<<rv.MstatusMXR)
	a.Csrrs(asm.X0, rv.CSRMstatus, asm.T0)
	a.Lw(asm.S1, asm.S4, 0)
	a.Csrrc(asm.X0, rv.CSRMstatus, asm.T0)
	// size = 1 << (funct3 & 3).
	a.Srli(asm.T1, asm.S1, 12)
	a.Andi(asm.T1, asm.T1, 7)
	a.Andi(asm.T2, asm.T1, 3)
	a.Li(asm.S5, 1)
	a.Sll(asm.S5, asm.S5, asm.T2)
	a.Bnez(asm.S7, "mis_do_store")

	// Load: gather bytes under one MPRV window.
	a.Li(asm.S6, 0) // value
	a.Li(asm.T3, 0) // i
	a.Li(asm.T0, 1<<rv.MstatusMPRV)
	a.Csrrs(asm.X0, rv.CSRMstatus, asm.T0)
	a.Label("mis_ld_loop")
	a.Bge(asm.T3, asm.S5, "mis_ld_done")
	a.Add(asm.T4, asm.S3, asm.T3)
	a.Lbu(asm.T5, asm.T4, 0)
	a.Slli(asm.T6, asm.T3, 3)
	a.Sll(asm.T5, asm.T5, asm.T6)
	a.Or(asm.S6, asm.S6, asm.T5)
	a.Addi(asm.T3, asm.T3, 1)
	a.J("mis_ld_loop")
	a.Label("mis_ld_done")
	a.Li(asm.T0, 1<<rv.MstatusMPRV)
	a.Csrrc(asm.X0, rv.CSRMstatus, asm.T0)
	// Sign-extend when funct3 < 4.
	a.Andi(asm.T2, asm.T1, 4)
	a.Bnez(asm.T2, "mis_ld_wb")
	a.Slli(asm.T2, asm.S5, 3)
	a.Li(asm.T3, 64)
	a.Sub(asm.T2, asm.T3, asm.T2)
	a.Sll(asm.S6, asm.S6, asm.T2)
	a.Sra(asm.S6, asm.S6, asm.T2)
	a.Label("mis_ld_wb")
	a.Srli(asm.S2, asm.S1, 7)
	a.Andi(asm.S2, asm.S2, 31)
	a.Beqz(asm.S2, "mis_fin")
	a.Slli(asm.T6, asm.S2, 3)
	a.Addi(asm.T6, asm.T6, -8)
	a.Add(asm.T6, asm.SP, asm.T6)
	a.Sd(asm.S6, asm.T6, 0)
	a.J("mis_fin")

	// Store: scatter bytes under one MPRV window; the source register's
	// value comes from the trap frame.
	a.Label("mis_do_store")
	a.Srli(asm.S2, asm.S1, 20)
	a.Andi(asm.S2, asm.S2, 31) // rs2
	a.Li(asm.S6, 0)
	a.Beqz(asm.S2, "mis_st_goloop")
	a.Slli(asm.T6, asm.S2, 3)
	a.Addi(asm.T6, asm.T6, -8)
	a.Add(asm.T6, asm.SP, asm.T6)
	a.Ld(asm.S6, asm.T6, 0)
	a.Label("mis_st_goloop")
	a.Li(asm.T3, 0)
	a.Li(asm.T0, 1<<rv.MstatusMPRV)
	a.Csrrs(asm.X0, rv.CSRMstatus, asm.T0)
	a.Label("mis_st_loop")
	a.Bge(asm.T3, asm.S5, "mis_st_done")
	a.Add(asm.T4, asm.S3, asm.T3)
	a.Slli(asm.T6, asm.T3, 3)
	a.Srl(asm.T5, asm.S6, asm.T6)
	a.Sb(asm.T5, asm.T4, 0)
	a.Addi(asm.T3, asm.T3, 1)
	a.J("mis_st_loop")
	a.Label("mis_st_done")
	a.Li(asm.T0, 1<<rv.MstatusMPRV)
	a.Csrrc(asm.X0, rv.CSRMstatus, asm.T0)
	a.Label("mis_fin")
	a.Csrr(asm.T0, rv.CSRMepc)
	a.Addi(asm.T0, asm.T0, 4)
	a.Csrw(rv.CSRMepc, asm.T0)
	a.J("restore")
}

// buildGosbiRedirect forwards an unhandled trap to supervisor mode, the
// standard sbi_trap_redirect behaviour.
func buildGosbiRedirect(a *asm.Asm) {
	a.Label("redirect")
	a.Csrr(asm.T0, rv.CSRMcause)
	a.Csrw(rv.CSRScause, asm.T0)
	a.Csrr(asm.T0, rv.CSRMepc)
	a.Csrw(rv.CSRSepc, asm.T0)
	a.Csrr(asm.T0, rv.CSRMtval)
	a.Csrw(rv.CSRStval, asm.T0)
	// sstatus.SPP = (MPP == S).
	a.Csrr(asm.T1, rv.CSRMstatus)
	a.Srli(asm.T2, asm.T1, 11)
	a.Andi(asm.T2, asm.T2, 3)
	a.Li(asm.T3, 1<<8)
	a.Csrrc(asm.X0, rv.CSRMstatus, asm.T3)
	a.Li(asm.T4, 1)
	a.Bne(asm.T2, asm.T4, "redir_spp_done")
	a.Csrrs(asm.X0, rv.CSRMstatus, asm.T3)
	a.Label("redir_spp_done")
	// sstatus.SPIE = SIE; SIE = 0.
	a.Csrr(asm.T1, rv.CSRMstatus)
	a.Andi(asm.T5, asm.T1, 2)
	a.Li(asm.T3, 1<<5)
	a.Csrrc(asm.X0, rv.CSRMstatus, asm.T3)
	a.Beqz(asm.T5, "redir_spie_done")
	a.Csrrs(asm.X0, rv.CSRMstatus, asm.T3)
	a.Label("redir_spie_done")
	a.Li(asm.T3, 2)
	a.Csrrc(asm.X0, rv.CSRMstatus, asm.T3)
	// Resume at stvec in S-mode.
	a.Csrr(asm.T0, rv.CSRStvec)
	a.Srli(asm.T0, asm.T0, 2)
	a.Slli(asm.T0, asm.T0, 2)
	a.Csrw(rv.CSRMepc, asm.T0)
	a.Li(asm.T3, 3<<11)
	a.Csrrc(asm.X0, rv.CSRMstatus, asm.T3)
	a.Li(asm.T3, 1<<11)
	a.Csrrs(asm.X0, rv.CSRMstatus, asm.T3)
	a.J("restore")
}

// buildGosbiEvil emits the malicious vendor extension: the payloads the
// sandbox policy must stop.
func buildGosbiEvil(a *asm.Asm, opt Options) {
	target := opt.EvilTarget
	if target == 0 {
		target = 0x8800_0000 // the default OS base
	}
	a.Label("evil")
	switch opt.EvilMode {
	case "read-os":
		a.Li(asm.T0, target)
		a.Ld(asm.T1, asm.T0, 0) // faults under the sandbox
		a.Sd(asm.T1, asm.SP, frameA1)
		a.Sd(asm.X0, asm.SP, frameA0)
	case "write-os":
		a.Li(asm.T0, target)
		a.Li(asm.T1, 0xEEEE)
		a.Sd(asm.T1, asm.T0, 0) // faults under the sandbox
		a.Sd(asm.X0, asm.SP, frameA0)
	case "dma":
		// Exfiltrate OS memory into the firmware region via DMA, which
		// bypasses PMP — unless the sandbox revoked the DMA MMIO window.
		a.Li(asm.T0, hart.DMABase)
		a.Li(asm.T1, target)
		a.Sd(asm.T1, asm.T0, 0x00) // src
		a.La(asm.T1, "scratch")
		a.Sd(asm.T1, asm.T0, 0x08) // dst
		a.Li(asm.T1, 64)
		a.Sd(asm.T1, asm.T0, 0x10) // len
		a.Sd(asm.X0, asm.T0, 0x18) // trigger
		a.Sd(asm.X0, asm.SP, frameA0)
	case "echo-s7":
		// Leak the OS's s7 register from the trap frame (slot of x23).
		a.Ld(asm.T1, asm.SP, 8*(23-1))
		a.Sd(asm.T1, asm.SP, frameA1)
		a.Sd(asm.X0, asm.SP, frameA0)
	default:
		a.Sd(asm.X0, asm.SP, frameA0)
	}
	a.J("restore")
}

// buildGosbiExtWalk emits the registered-extension table walk used by the
// dispatchers.
func buildGosbiExtWalk(a *asm.Asm) {
	a.Label("ext_walk")
	a.La(asm.T0, "ext_table")
	a.Li(asm.T1, 8)
	a.Label("ext_walk_loop")
	a.Ld(asm.T2, asm.T0, 0)
	a.Add(asm.X0, asm.X0, asm.T2) // consume the entry
	a.Addi(asm.T0, asm.T0, 8)
	a.Addi(asm.T1, asm.T1, -1)
	a.Bnez(asm.T1, "ext_walk_loop")
	a.Ret()
}

func buildGosbiData(a *asm.Asm, nharts int) {
	// Page-align the read-write data (the usual .text/.data split of a
	// linker script): the trap frame is stored on every trap, and if it
	// shared a 4KiB page with the handler text each save would invalidate
	// the simulator's predecoded-page cache for the hottest code page.
	a.Align(4096)
	a.Label("ext_table")
	a.Space(8 * 8)
	a.Label("scratch")
	a.Space(uint64(nharts) * 512)
	a.Label("mailbox")
	a.Space(uint64(nharts) * 8)
	a.Label("hsm_state")
	a.Space(uint64(nharts) * 8)
	a.Label("hsm_start")
	a.Space(uint64(nharts) * 16)
}
