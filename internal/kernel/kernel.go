// Package kernel builds synthetic S-mode guest kernels: real machine code
// exercising exactly the OS-to-firmware interface the paper measures — SBI
// calls, time-CSR reads, timer programming, misaligned accesses, IPIs and
// remote fences — plus parameterized workload kernels whose trap mix and
// rate reproduce the paper's application profiles (Figs. 10-13).
package kernel

import (
	"govfm/internal/asm"
	"govfm/internal/hart"
	"govfm/internal/mmu"
	"govfm/internal/rv"
)

// BootOptions parameterizes the boot kernel.
type BootOptions struct {
	// Harts > 1 exercises HSM start, IPIs, and remote fences.
	Harts int
	// TimeReads/TimerSets/Misaligned are per-phase operation counts.
	TimeReads  int
	TimerSets  int
	Misaligned int
	// Paging adds an Sv39 phase: build a one-PTE identity map of the
	// DRAM gigapage in scratch RAM, enable translation, run a short
	// virtually-addressed load loop, and return to bare mode. This is
	// what makes a default boot exercise address translation (and the
	// simulator's TLB) at all.
	Paging bool
	// ScratchAddr is OS RAM the kernel may scribble on.
	ScratchAddr uint64
}

// emitSBICall emits an ecall with ext/fn in a7/a6.
func emitSBICall(a *asm.Asm, ext, fn uint64) {
	a.Li(asm.A7, ext)
	a.Li(asm.A6, fn)
	a.Ecall()
}

// emitConsole emits a debug-console write of one byte.
func emitConsole(a *asm.Asm, ch byte) {
	a.Li(asm.A0, uint64(ch))
	emitSBICall(a, rv.SBIExtDebug, rv.SBIDebugWriteByte)
}

// BuildBoot assembles the boot kernel at base. The kernel runs through a
// boot sequence — console banner, SBI probes, time reads, a timer
// interrupt round trip, misaligned accesses, an optional Sv39 paging
// phase, secondary-hart bring-up with
// IPI and remote-fence round trips — and shuts the machine down through
// the SBI reset extension. Reaching the shutdown is the pass criterion:
// any divergence wedges or faults the machine instead.
func BuildBoot(base uint64, opt BootOptions) []byte {
	a := asm.New(base)
	nharts := opt.Harts
	if nharts <= 0 {
		nharts = 1
	}
	scratch := opt.ScratchAddr
	if scratch == 0 {
		scratch = base + 0x10_0000
	}

	a.Label("entry")
	a.BnezFar(asm.A0, "secondary")

	// Trap vector for supervisor interrupts.
	a.La(asm.T0, "strap")
	a.Csrw(rv.CSRStvec, asm.T0)

	// Banner through the debug console.
	for _, ch := range []byte("boot\n") {
		emitConsole(a, ch)
	}

	// SBI base probes: spec version and TIME extension presence.
	emitSBICall(a, rv.SBIExtBase, rv.SBIBaseGetSpecVersion)
	a.BnezFar(asm.A0, "fail") // a0 = error code
	a.Li(asm.A0, rv.SBIExtTimer)
	emitSBICall(a, rv.SBIExtBase, rv.SBIBaseProbeExt)
	a.BnezFar(asm.A0, "fail")
	a.BeqzFar(asm.A1, "fail") // probe value must be 1

	// Time reads: the dominant Fig. 3 cause. Values must be monotonic.
	a.Csrr(asm.S0, rv.CSRTime)
	for i := 0; i < opt.TimeReads; i++ {
		a.Csrr(asm.S1, rv.CSRTime)
		a.BltuFar(asm.S1, asm.S0, "fail") // time must not go backwards
		a.Mv(asm.S0, asm.S1)
	}

	// Timer round trip: arm a deadline and wait for the S-timer interrupt.
	for i := 0; i < opt.TimerSets; i++ {
		a.Li(asm.S2, 0)
		a.La(asm.T0, "tick_seen")
		a.Sd(asm.X0, asm.T0, 0)
		a.Csrr(asm.A0, rv.CSRTime)
		a.Addi(asm.A0, asm.A0, 20)
		emitSBICall(a, rv.SBIExtTimer, rv.SBITimerSetTimer)
		a.BnezFar(asm.A0, "fail")
		// Enable STIE + SIE and wait for the handler to set tick_seen.
		a.Li(asm.T0, 1<<rv.IntSTimer)
		a.Csrrs(asm.X0, rv.CSRSie, asm.T0)
		a.Csrrsi(asm.X0, rv.CSRSstatus, 1<<rv.MstatusSIE)
		a.Label(lbl(a, "tick_wait", i))
		a.La(asm.T0, "tick_seen")
		a.Ld(asm.T1, asm.T0, 0)
		a.Beqz(asm.T1, lbl(a, "tick_wait", i))
		a.Csrrci(asm.X0, rv.CSRSstatus, 1<<rv.MstatusSIE)
	}

	// Misaligned loads and stores (software-emulated by the firmware or
	// the fast path).
	a.Li(asm.S3, scratch+1) // odd address
	a.Li(asm.T0, 0x1122334455667788)
	for i := 0; i < opt.Misaligned; i++ {
		a.Sd(asm.T0, asm.S3, 0)
		a.Ld(asm.T1, asm.S3, 0)
		a.BneFar(asm.T0, asm.T1, "fail")
		a.Lw(asm.T2, asm.S3, 0) // sign-extended low word
		a.Sext32(asm.T3, asm.T0)
		a.BneFar(asm.T2, asm.T3, "fail")
	}

	if opt.Paging {
		// Sv39 phase. A single gigapage PTE identity-maps the DRAM
		// gigapage (firmware, kernel, and scratch all live in it), so
		// the whole phase — fetches included — runs translated.
		giga := base &^ (uint64(1)<<30 - 1)
		table := (scratch + 0x3000) &^ uint64(0xFFF) // 4KiB-aligned, zeroed RAM
		pte := giga>>2 | mmu.PteD | mmu.PteA | mmu.PteX | mmu.PteW | mmu.PteR | mmu.PteV
		a.Li(asm.T0, table+(giga>>30&0x1FF)*8)
		a.Li(asm.T1, pte)
		a.Sd(asm.T1, asm.T0, 0)
		a.Li(asm.T0, rv.SatpModeSv39<<60|table>>12)
		a.Csrw(rv.CSRSatp, asm.T0)
		a.SfenceVMA(asm.X0, asm.X0)
		// Virtually-addressed loads: the first walks the table, the
		// rest (and every fetch in the loop) hit cached translations.
		a.La(asm.T0, "tick_seen")
		a.Li(asm.S4, 64)
		a.Label("page_loop")
		a.Ld(asm.T1, asm.T0, 0)
		a.Addi(asm.S4, asm.S4, -1)
		a.Bnez(asm.S4, "page_loop")
		// Back to bare mode for the rest of the boot.
		a.Csrw(rv.CSRSatp, asm.X0)
		a.SfenceVMA(asm.X0, asm.X0)
	}

	if nharts > 1 {
		// Start hart 1 through HSM, passing an opaque cookie.
		a.La(asm.T0, "sec_flag")
		a.Sd(asm.X0, asm.T0, 0)
		a.Li(asm.A0, 1)
		a.La(asm.A1, "secondary")
		a.Li(asm.A2, 0xC00C1E)
		emitSBICall(a, rv.SBIExtHSM, rv.SBIHSMHartStart)
		a.BnezFar(asm.A0, "fail")
		// Wait for the secondary to check in.
		a.Label("sec_wait")
		a.La(asm.T0, "sec_flag")
		a.Ld(asm.T1, asm.T0, 0)
		a.Beqz(asm.T1, "sec_wait")
		// IPI round trip: the secondary sets ipi_flag from its handler.
		a.La(asm.T0, "ipi_flag")
		a.Sd(asm.X0, asm.T0, 0)
		a.Li(asm.A0, 1<<1) // hart mask: hart 1
		a.Li(asm.A1, 0)
		emitSBICall(a, rv.SBIExtIPI, rv.SBIIPISendIPI)
		a.BnezFar(asm.A0, "fail")
		a.Label("ipi_wait")
		a.La(asm.T0, "ipi_flag")
		a.Ld(asm.T1, asm.T0, 0)
		a.Beqz(asm.T1, "ipi_wait")
		// Remote fence to everyone.
		a.Li(asm.A0, ^uint64(0))
		a.Li(asm.A1, 0)
		a.Li(asm.A2, 0)
		a.Li(asm.A3, ^uint64(0))
		emitSBICall(a, rv.SBIExtRfence, rv.SBIRfenceSfenceVMA)
		a.BnezFar(asm.A0, "fail")
	}

	for _, ch := range []byte("ok\n") {
		emitConsole(a, ch)
	}
	// Clean shutdown through SBI SRST.
	a.Li(asm.A0, 0)
	a.Li(asm.A1, 0)
	emitSBICall(a, rv.SBIExtReset, 0)
	a.Label("fail")
	a.Li(asm.T6, hart.ExitBase)
	a.Li(asm.T5, hart.ExitFail)
	a.Sd(asm.T5, asm.T6, 0)
	a.Label("hang")
	a.J("hang")

	// --- Supervisor trap handler (hart 0 + secondary) ---
	a.Label("strap")
	a.Csrr(asm.T0, rv.CSRScause)
	a.Slli(asm.T2, asm.T0, 1)
	a.Srli(asm.T2, asm.T2, 1)
	a.Blt(asm.T0, asm.X0, "strap_intr")
	// Unexpected synchronous trap.
	a.Jal(asm.X0, "fail")
	a.Label("strap_intr")
	a.Li(asm.T1, rv.IntSTimer)
	a.Beq(asm.T2, asm.T1, "strap_timer")
	a.Li(asm.T1, rv.IntSSoft)
	a.Beq(asm.T2, asm.T1, "strap_ssoft")
	a.Jal(asm.X0, "fail")
	a.Label("strap_timer")
	// Stop the timer (deadline = infinity) and record the tick.
	a.Li(asm.A0, ^uint64(0))
	emitSBICall(a, rv.SBIExtTimer, rv.SBITimerSetTimer)
	a.La(asm.T0, "tick_seen")
	a.Li(asm.T1, 1)
	a.Sd(asm.T1, asm.T0, 0)
	a.Sret()
	a.Label("strap_ssoft")
	// Clear SSIP and record the IPI.
	a.Li(asm.T0, 1<<rv.IntSSoft)
	a.Csrrc(asm.X0, rv.CSRSip, asm.T0)
	a.La(asm.T0, "ipi_flag")
	a.Li(asm.T1, 1)
	a.Sd(asm.T1, asm.T0, 0)
	a.Sret()

	// --- Secondary hart entry (S-mode, a0=hartid, a1=opaque) ---
	a.Label("secondary")
	a.Li(asm.T0, 0xC00C1E)
	a.BneFar(asm.A1, asm.T0, "fail")
	a.La(asm.T0, "strap")
	a.Csrw(rv.CSRStvec, asm.T0)
	a.Li(asm.T0, 1<<rv.IntSSoft)
	a.Csrrs(asm.X0, rv.CSRSie, asm.T0)
	a.Csrrsi(asm.X0, rv.CSRSstatus, 1<<rv.MstatusSIE)
	a.La(asm.T0, "sec_flag")
	a.Li(asm.T1, 1)
	a.Sd(asm.T1, asm.T0, 0)
	a.Label("sec_idle")
	a.Wfi()
	a.J("sec_idle")

	// --- Data ---
	a.Align(8)
	a.Label("tick_seen")
	a.Space(8)
	a.Label("sec_flag")
	a.Space(8)
	a.Label("ipi_flag")
	a.Space(8)

	return a.MustAssemble()
}

// lbl builds a unique loop label.
func lbl(a *asm.Asm, prefix string, i int) string {
	_ = a
	return prefix + "_" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// BuildBootTrace assembles the Fig. 3 boot kernel: three phases shaped
// like a real Linux bring-up — a console/misaligned-heavy bootloader
// phase, a time-read/timer-heavy early-init phase, and a long idle phase
// of timer-tick wakeups — so the windowed trap-cause distribution and the
// boot-time comparison have realistic structure.
func BuildBootTrace(base uint64, idleTicks int) []byte {
	a := asm.New(base)
	a.Label("entry")
	a.La(asm.T0, "strap")
	a.Csrw(rv.CSRStvec, asm.T0)

	// --- Phase A: bootloader (console output, misaligned accesses) ---
	for _, ch := range []byte("B\n") {
		emitConsole(a, ch)
	}
	a.Li(asm.S3, base+0x10_0001)
	a.Li(asm.S4, 100)
	a.Label("pha_mis")
	a.Li(asm.T0, 0xABCD)
	a.Sd(asm.T0, asm.S3, 0)
	a.Ld(asm.T1, asm.S3, 0)
	a.Csrr(asm.T2, rv.CSRTime)
	a.Addi(asm.S4, asm.S4, -1)
	a.Bnez(asm.S4, "pha_mis")

	// --- Phase B: early kernel init (clock calibration, timers, fences) ---
	a.Li(asm.S4, 200)
	a.Label("phb_loop")
	a.Csrr(asm.T0, rv.CSRTime)
	a.Csrr(asm.T1, rv.CSRTime)
	a.Csrr(asm.T2, rv.CSRTime)
	// Every 20th round: a self-IPI and a remote fence.
	a.Li(asm.T3, 20)
	a.Remu(asm.T4, asm.S4, asm.T3)
	a.BnezFar(asm.T4, "phb_skip")
	a.Li(asm.A0, 1)
	a.Li(asm.A1, 0)
	a.Li(asm.A7, rv.SBIExtIPI)
	a.Li(asm.A6, rv.SBIIPISendIPI)
	a.Ecall()
	a.Li(asm.T0, 1<<rv.IntSSoft)
	a.Csrrc(asm.X0, rv.CSRSip, asm.T0)
	a.Li(asm.A0, ^uint64(0))
	a.Li(asm.A1, 0)
	a.Li(asm.A2, 0)
	a.Li(asm.A3, ^uint64(0))
	a.Li(asm.A7, rv.SBIExtRfence)
	a.Li(asm.A6, rv.SBIRfenceSfenceVMA)
	a.Ecall()
	a.Label("phb_skip")
	a.Addi(asm.S4, asm.S4, -1)
	a.BnezFar(asm.S4, "phb_loop")
	for _, ch := range []byte("I\n") {
		emitConsole(a, ch)
	}

	// --- Phase C: idle (periodic timer ticks, wfi in between) ---
	a.Li(asm.T0, 1<<rv.IntSTimer)
	a.Csrrs(asm.X0, rv.CSRSie, asm.T0)
	a.Li(asm.S4, uint64(idleTicks))
	a.Label("phc_loop")
	a.La(asm.T0, "tick_seen")
	a.Sd(asm.X0, asm.T0, 0)
	a.Csrr(asm.A0, rv.CSRTime)
	a.Addi(asm.A0, asm.A0, 500)
	a.Li(asm.A7, rv.SBIExtTimer)
	a.Li(asm.A6, rv.SBITimerSetTimer)
	a.Ecall()
	a.Csrrsi(asm.X0, rv.CSRSstatus, 1<<rv.MstatusSIE)
	a.Label("phc_wait")
	a.Wfi()
	a.La(asm.T0, "tick_seen")
	a.Ld(asm.T1, asm.T0, 0)
	a.Beqz(asm.T1, "phc_wait")
	a.Csrrci(asm.X0, rv.CSRSstatus, 1<<rv.MstatusSIE)
	a.Csrr(asm.T2, rv.CSRTime) // the scheduler reads the clock per wakeup
	a.Addi(asm.S4, asm.S4, -1)
	a.BnezFar(asm.S4, "phc_loop")

	// Login prompt: boot complete.
	for _, ch := range []byte("L\n") {
		emitConsole(a, ch)
	}
	a.Li(asm.A0, 0)
	a.Li(asm.A1, 0)
	emitSBICall(a, rv.SBIExtReset, 0)
	a.Label("fail")
	a.Li(asm.T6, hart.ExitBase)
	a.Li(asm.T5, hart.ExitFail)
	a.Sd(asm.T5, asm.T6, 0)
	a.Label("hang2")
	a.J("hang2")

	a.Label("strap")
	a.Csrr(asm.T0, rv.CSRScause)
	a.Slli(asm.T1, asm.T0, 1)
	a.Srli(asm.T1, asm.T1, 1)
	a.Blt(asm.T0, asm.X0, "strap_i")
	a.Jal(asm.X0, "fail")
	a.Label("strap_i")
	a.Li(asm.T2, rv.IntSTimer)
	a.Beq(asm.T1, asm.T2, "strap_t")
	a.Li(asm.T2, rv.IntSSoft)
	a.Beq(asm.T1, asm.T2, "strap_s")
	a.Jal(asm.X0, "fail")
	a.Label("strap_t")
	a.Li(asm.A0, ^uint64(0))
	emitSBICall(a, rv.SBIExtTimer, rv.SBITimerSetTimer)
	a.La(asm.T0, "tick_seen")
	a.Li(asm.T1, 1)
	a.Sd(asm.T1, asm.T0, 0)
	a.Sret()
	a.Label("strap_s")
	a.Li(asm.T0, 1<<rv.IntSSoft)
	a.Csrrc(asm.X0, rv.CSRSip, asm.T0)
	a.Sret()

	a.Align(8)
	a.Label("tick_seen")
	a.Space(8)
	return a.MustAssemble()
}
