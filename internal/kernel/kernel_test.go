package kernel_test

import (
	"testing"

	"govfm/internal/core"
	"govfm/internal/firmware"
	"govfm/internal/hart"
	"govfm/internal/kernel"
)

// The kernels are guest images; their deep behaviour is exercised by the
// core, firmware, policy, and bench suites. These tests pin down the image
// invariants and run each image once on a bare native stack.

func TestImagesAssemble(t *testing.T) {
	images := map[string][]byte{
		"boot":      kernel.BuildBoot(core.OSBase, kernel.BootOptions{Harts: 2, TimeReads: 3, TimerSets: 1, Misaligned: 2}),
		"boottrace": kernel.BuildBootTrace(core.OSBase, 10),
		"keystone":  kernel.BuildKeystoneHost(core.OSBase, 10, true),
		"enclave":   kernel.BuildEnclavePayload(kernel.EnclaveBase, 10),
		"acehost":   kernel.BuildACEHost(core.OSBase),
		"cvmguest":  kernel.BuildCVMGuest(kernel.CVMBase),
		"secret":    kernel.BuildSecretCaller(core.OSBase, 42),
		"evil":      kernel.BuildEvilTrigger(core.OSBase),
		"rv8host":   kernel.BuildRV8Host(core.OSBase, kernel.EnclaveBase, kernel.EnclaveSize, 100),
		"rv8enc":    kernel.BuildRV8Enclave(kernel.EnclaveBase, 10, 100, 10),
	}
	for name, img := range images {
		if len(img) == 0 {
			t.Errorf("%s: empty image", name)
		}
		if len(img)%4 != 0 {
			t.Errorf("%s: image length %d not word-aligned", name, len(img))
		}
	}
	// Parameterization must change the image.
	a := kernel.BuildBoot(core.OSBase, kernel.BootOptions{Harts: 1, TimeReads: 3})
	b := kernel.BuildBoot(core.OSBase, kernel.BootOptions{Harts: 1, TimeReads: 4})
	if string(a) == string(b) {
		t.Error("boot kernel must vary with its options")
	}
}

func TestBootKernelDefaults(t *testing.T) {
	// Zero options still produce a runnable kernel.
	img := kernel.BuildBoot(core.OSBase, kernel.BootOptions{})
	cfg := hart.VisionFive2()
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		t.Fatal(err)
	}
	fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
		OSEntry: core.OSBase, Harts: 1, FirmwareSize: core.FirmwareSize,
	})
	_ = m.LoadImage(core.FirmwareBase, fw.Bytes)
	_ = m.LoadImage(core.OSBase, img)
	m.Reset(core.FirmwareBase)
	m.Run(5_000_000)
	if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
		t.Fatalf("%v %q", ok, reason)
	}
}

func TestBootTraceIdleScaling(t *testing.T) {
	// More idle ticks must take longer (the phase machinery works).
	run := func(ticks int) uint64 {
		cfg := hart.VisionFive2()
		cfg.Harts = 1
		m, err := hart.NewMachine(cfg, core.DramSize)
		if err != nil {
			t.Fatal(err)
		}
		fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
			OSEntry: core.OSBase, Harts: 1, FirmwareSize: core.FirmwareSize,
		})
		_ = m.LoadImage(core.FirmwareBase, fw.Bytes)
		_ = m.LoadImage(core.OSBase, kernel.BuildBootTrace(core.OSBase, ticks))
		m.Reset(core.FirmwareBase)
		m.Run(50_000_000)
		if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
			t.Fatalf("ticks=%d: %v %q", ticks, ok, reason)
		}
		return m.Harts[0].Cycles
	}
	short, long := run(5), run(50)
	if long < 2*short {
		t.Errorf("idle phase must dominate: 5 ticks=%d cycles, 50 ticks=%d", short, long)
	}
}
