package kernel

import (
	"govfm/internal/asm"
	"govfm/internal/hart"
	"govfm/internal/mmu"
	"govfm/internal/rv"
)

// HypOptions parameterizes the type-1 hypervisor image.
type HypOptions struct {
	// Yields is the number of ping-pong rounds each guest runs before
	// signalling done.
	Yields int
}

// Hypercall ABI between the VS-mode guests and the HS-mode hypervisor:
// a7 = hypExt, a6 = function, arguments in a0.
const (
	hypExt     = 0x4859 // "HY"
	hypPutchar = 0
	hypYield   = 1
	hypDone    = 2
	hypFail    = 3
)

// Guest frame layout: 256 bytes per guest, slot 0 holds the guest pc,
// slots 1..31 hold x1..x31.
const frameSize = 256

// guestWindow is an unmapped guest-physical gigapage (VPN[2] = 4) the
// guests touch to force demand faults. The hypervisor maps it on first
// use to the DRAM gigapage, so guest address (window + x) aliases host
// physical address (dramGiga + x).
const (
	guestWindow = uint64(1) << 32
	dramGiga    = uint64(hart.DramBase) &^ (uint64(1)<<30 - 1)
)

// BuildHypervisor assembles a synthetic type-1 hypervisor at base. The
// firmware mrets into it in HS-mode; it builds an initially empty Sv39x4
// G-stage table, then launches two cooperative VS-mode guests and
// round-robins them on yield hypercalls. Along the way the guests force
// every hypervisor trap class at least once:
//
//   - instruction guest-page fault (20): the first guest fetch hits the
//     empty G-stage table; the hypervisor demand-maps the DRAM gigapage.
//   - load guest-page fault (21): guest 0 reads through guestWindow; the
//     hypervisor maps the window read-only onto DRAM.
//   - store guest-page fault (23): guest 0 writes through the read-only
//     window; the hypervisor upgrades it to read-write.
//   - virtual instruction (22): each guest executes hfence.vvma, which
//     VS-mode may not; the hypervisor counts it and skips the word.
//   - ecall-from-VS (10): the hypercall path (console bytes are proxied
//     to the firmware SBI debug console from HS).
//
// Both guests signalling done shuts the machine down through SBI SRST;
// the hypervisor first checks the per-class fault counters, so reaching
// "guest-exit-pass" proves every class fired exactly as designed.
func BuildHypervisor(base uint64, opt HypOptions) []byte {
	a := asm.New(base)
	yields := opt.Yields
	if yields <= 0 {
		yields = 3
	}
	// 16 KiB G-stage root (2048 entries), 16 KiB-aligned zeroed RAM well
	// past the image.
	gtable := (base + 0x20_0000) &^ uint64(0x3FFF)

	a.Label("entry")
	// HS trap vector, then a banner byte through the firmware SBI (the
	// ecall-from-HS is not delegated, so it lands in M-mode firmware).
	a.La(asm.T0, "htrap")
	a.Csrw(rv.CSRStvec, asm.T0)
	emitConsole(a, 'h')

	// Nothing is delegated onward to VS: every guest trap enters HS.
	a.Csrw(rv.CSRHedeleg, asm.X0)
	a.Csrw(rv.CSRHideleg, asm.X0)

	// G-stage on, table empty: the first guest fetch must fault.
	a.Li(asm.T0, rv.HgatpModeSv39x4<<60|gtable>>12)
	a.Csrw(rv.CSRHgatp, asm.T0)
	a.HfenceGVMA(asm.X0, asm.X0)
	// VS-stage stays bare for both guests.
	a.Csrw(rv.CSRVsatp, asm.X0)

	// Guest frames: zeroed RAM, only the entry pc and an identifying a0
	// need storing.
	a.La(asm.S0, "frame0")
	a.La(asm.T0, "guest0")
	a.Sd(asm.T0, asm.S0, 0)
	a.La(asm.T0, "frame1")
	a.La(asm.T1, "guest1")
	a.Sd(asm.T1, asm.T0, 0)
	a.Li(asm.T1, 1)
	a.Sd(asm.T1, asm.T0, 10*8) // guest 1 starts with a0 = 1
	a.J("resume")

	// --- Resume the guest whose frame s0 points at ---
	a.Label("resume")
	a.Ld(asm.T0, asm.S0, 0)
	a.Csrw(rv.CSRSepc, asm.T0)
	a.Csrw(rv.CSRSscratch, asm.S0)
	// sret target: V=1 (hstatus.SPV), VS-mode (sstatus.SPP).
	a.Li(asm.T0, 1<<rv.HstatusSPV)
	a.Csrrs(asm.X0, rv.CSRHstatus, asm.T0)
	a.Li(asm.T0, 1<<rv.MstatusSPP)
	a.Csrrs(asm.X0, rv.CSRSstatus, asm.T0)
	a.Mv(asm.SP, asm.S0)
	for r := 1; r < 32; r++ {
		if r == asm.SP {
			continue
		}
		a.Ld(r, asm.SP, int64(r)*8)
	}
	a.Ld(asm.SP, asm.SP, asm.SP*8)
	a.Sret()

	// --- HS trap handler: all traps here come from a guest ---
	a.Label("htrap")
	a.Csrrw(asm.SP, rv.CSRSscratch, asm.SP) // sp = frame, sscratch = guest sp
	for r := 1; r < 32; r++ {
		if r == asm.SP {
			continue
		}
		a.Sd(r, asm.SP, int64(r)*8)
	}
	a.Csrr(asm.T0, rv.CSRSscratch)
	a.Sd(asm.T0, asm.SP, asm.SP*8)
	a.Csrr(asm.T0, rv.CSRSepc)
	a.Sd(asm.T0, asm.SP, 0)
	a.Mv(asm.S0, asm.SP)

	a.Csrr(asm.T0, rv.CSRScause)
	a.BltFar(asm.T0, asm.X0, "fail") // no interrupts are armed
	a.Li(asm.T1, rv.ExcEcallFromVS)
	a.BeqFar(asm.T0, asm.T1, "hcall")
	a.Li(asm.T1, rv.ExcInstrGuestPageFault)
	a.BeqFar(asm.T0, asm.T1, "gpf_fetch")
	a.Li(asm.T1, rv.ExcLoadGuestPageFault)
	a.BeqFar(asm.T0, asm.T1, "gpf_load")
	a.Li(asm.T1, rv.ExcVirtualInstr)
	a.BeqFar(asm.T0, asm.T1, "virt_instr")
	a.Li(asm.T1, rv.ExcStoreGuestPageFault)
	a.BeqFar(asm.T0, asm.T1, "gpf_store")
	a.J("fail")

	// Fetch fault: htval<<2 must equal the faulting pc (VS-stage is
	// bare, so GVA == GPA). Identity-map the faulting gigapage RWX and
	// retry the same pc.
	a.Label("gpf_fetch")
	a.Csrr(asm.T0, rv.CSRHtval)
	a.Slli(asm.T0, asm.T0, 2)
	a.Csrr(asm.T1, rv.CSRSepc)
	a.BneFar(asm.T0, asm.T1, "fail")
	a.Srli(asm.T2, asm.T0, 30) // VPN[2]
	a.Slli(asm.T3, asm.T2, 3)
	a.Li(asm.T4, gtable)
	a.Add(asm.T3, asm.T3, asm.T4)
	a.Slli(asm.T4, asm.T2, 28) // gigapage base >> 2
	a.Li(asm.T5, mmu.PteD|mmu.PteA|mmu.PteU|mmu.PteX|mmu.PteW|mmu.PteR|mmu.PteV)
	a.Or(asm.T4, asm.T4, asm.T5)
	a.Sd(asm.T4, asm.T3, 0)
	a.HfenceGVMA(asm.X0, asm.X0)
	a.La(asm.T0, "n_fetch")
	a.Ld(asm.T1, asm.T0, 0)
	a.Addi(asm.T1, asm.T1, 1)
	a.Sd(asm.T1, asm.T0, 0)
	a.J("resume")

	// Load fault: must be the guest window; map it read-only onto the
	// DRAM gigapage and retry.
	a.Label("gpf_load")
	a.Csrr(asm.T0, rv.CSRHtval)
	a.Slli(asm.T0, asm.T0, 2)
	a.Srli(asm.T2, asm.T0, 30)
	a.Li(asm.T1, guestWindow>>30)
	a.BneFar(asm.T2, asm.T1, "fail")
	a.Li(asm.T3, gtable+(guestWindow>>30)*8)
	a.Li(asm.T4, dramGiga>>2|mmu.PteA|mmu.PteU|mmu.PteR|mmu.PteV)
	a.Sd(asm.T4, asm.T3, 0)
	a.HfenceGVMA(asm.X0, asm.X0)
	a.La(asm.T0, "n_load")
	a.Ld(asm.T1, asm.T0, 0)
	a.Addi(asm.T1, asm.T1, 1)
	a.Sd(asm.T1, asm.T0, 0)
	a.J("resume")

	// Store fault: upgrade the window mapping to read-write and retry.
	a.Label("gpf_store")
	a.Csrr(asm.T0, rv.CSRHtval)
	a.Slli(asm.T0, asm.T0, 2)
	a.Srli(asm.T2, asm.T0, 30)
	a.Li(asm.T1, guestWindow>>30)
	a.BneFar(asm.T2, asm.T1, "fail")
	a.Li(asm.T3, gtable+(guestWindow>>30)*8)
	a.Li(asm.T4, dramGiga>>2|mmu.PteD|mmu.PteA|mmu.PteU|mmu.PteW|mmu.PteR|mmu.PteV)
	a.Sd(asm.T4, asm.T3, 0)
	a.HfenceGVMA(asm.X0, asm.X0)
	a.La(asm.T0, "n_store")
	a.Ld(asm.T1, asm.T0, 0)
	a.Addi(asm.T1, asm.T1, 1)
	a.Sd(asm.T1, asm.T0, 0)
	a.J("resume")

	// Virtual instruction: count it and skip the trapping word.
	a.Label("virt_instr")
	a.La(asm.T0, "n_virt")
	a.Ld(asm.T1, asm.T0, 0)
	a.Addi(asm.T1, asm.T1, 1)
	a.Sd(asm.T1, asm.T0, 0)
	a.Ld(asm.T0, asm.S0, 0)
	a.Addi(asm.T0, asm.T0, 4)
	a.Sd(asm.T0, asm.S0, 0)
	a.J("resume")

	// Hypercall: dispatch on a6 from the frame. The ecall itself is
	// complete, so the saved pc advances first.
	a.Label("hcall")
	a.Ld(asm.T0, asm.S0, 0)
	a.Addi(asm.T0, asm.T0, 4)
	a.Sd(asm.T0, asm.S0, 0)
	a.Ld(asm.T0, asm.S0, 17*8) // a7
	a.Li(asm.T1, hypExt)
	a.BneFar(asm.T0, asm.T1, "fail")
	a.Ld(asm.T0, asm.S0, 16*8) // a6
	a.Beqz(asm.T0, "hc_putchar")
	a.Li(asm.T1, hypYield)
	a.Beq(asm.T0, asm.T1, "hc_yield")
	a.Li(asm.T1, hypDone)
	a.BeqFar(asm.T0, asm.T1, "hc_done")
	a.J("fail")

	// putchar: proxy a0 to the firmware debug console, return 0 in the
	// guest's a0/a1.
	a.Label("hc_putchar")
	a.Ld(asm.A0, asm.S0, 10*8)
	emitSBICall(a, rv.SBIExtDebug, rv.SBIDebugWriteByte)
	a.Sd(asm.X0, asm.S0, 10*8)
	a.Sd(asm.X0, asm.S0, 11*8)
	a.J("resume")

	// yield: switch to the other guest unless it is already done.
	a.Label("hc_yield")
	a.Label("switch")
	a.La(asm.T0, "frame0")
	a.La(asm.T1, "frame1")
	a.Bne(asm.S0, asm.T0, "sw_to0")
	a.Mv(asm.T2, asm.T1) // other = frame1, bit 2
	a.Li(asm.T3, 2)
	a.J("sw_check")
	a.Label("sw_to0")
	a.Mv(asm.T2, asm.T0) // other = frame0, bit 1
	a.Li(asm.T3, 1)
	a.Label("sw_check")
	a.La(asm.T0, "done_mask")
	a.Ld(asm.T1, asm.T0, 0)
	a.And(asm.T1, asm.T1, asm.T3)
	a.Bnez(asm.T1, "resume") // other guest done: keep running this one
	a.Mv(asm.S0, asm.T2)
	a.J("resume")

	// done: mark this guest finished; shut down when both are.
	a.Label("hc_done")
	a.La(asm.T0, "frame0")
	a.Li(asm.T2, 1)
	a.Beq(asm.S0, asm.T0, "done_bit")
	a.Li(asm.T2, 2)
	a.Label("done_bit")
	a.La(asm.T0, "done_mask")
	a.Ld(asm.T1, asm.T0, 0)
	a.Or(asm.T1, asm.T1, asm.T2)
	a.Sd(asm.T1, asm.T0, 0)
	a.Li(asm.T3, 3)
	a.BneFar(asm.T1, asm.T3, "switch")
	// Both done: every trap class must have fired its designed count.
	a.La(asm.T0, "n_fetch")
	a.Ld(asm.T1, asm.T0, 0)
	a.Li(asm.T2, 1)
	a.BneFar(asm.T1, asm.T2, "fail")
	a.La(asm.T0, "n_load")
	a.Ld(asm.T1, asm.T0, 0)
	a.BneFar(asm.T1, asm.T2, "fail")
	a.La(asm.T0, "n_store")
	a.Ld(asm.T1, asm.T0, 0)
	a.BneFar(asm.T1, asm.T2, "fail")
	a.La(asm.T0, "n_virt")
	a.Ld(asm.T1, asm.T0, 0)
	a.Li(asm.T2, 2)
	a.BneFar(asm.T1, asm.T2, "fail")
	emitConsole(a, 'H')
	emitConsole(a, '\n')
	a.Li(asm.A0, 0)
	a.Li(asm.A1, 0)
	emitSBICall(a, rv.SBIExtReset, 0)
	a.Label("fail")
	a.Li(asm.T6, hart.ExitBase)
	a.Li(asm.T5, hart.ExitFail)
	a.Sd(asm.T5, asm.T6, 0)
	a.Label("hang")
	a.J("hang")

	// --- Guest 0 (VS-mode, a0 = 0) ---
	a.Label("guest0")
	emitGuestPutchar(a, 'a')
	// Demand load fault through the window: guest address L+2^31 maps to
	// host physical L once the hypervisor installs the window gigapage.
	a.La(asm.T0, "gmagic")
	a.Li(asm.T1, guestWindow-dramGiga)
	a.Add(asm.S1, asm.T0, asm.T1)
	a.Ld(asm.T2, asm.S1, 0)
	a.Li(asm.T3, gmagicValue)
	a.BneFar(asm.T2, asm.T3, "gfail")
	// Store fault: the window is read-only until the hypervisor upgrades
	// it. The slot aliases "gstore" in host RAM.
	a.Li(asm.T4, 0x1122)
	a.Sd(asm.T4, asm.S1, 8)
	a.Ld(asm.T5, asm.S1, 8)
	a.BneFar(asm.T4, asm.T5, "gfail")
	// Virtual instruction: hfence.vvma is not VS-mode's to execute.
	a.HfenceVVMA(asm.X0, asm.X0)
	emitGuestRounds(a, 'A', yields, 0)
	a.Label("gfail")
	a.Li(asm.A7, hypExt)
	a.Li(asm.A6, hypFail)
	a.Ecall()
	a.J("gfail")

	// --- Guest 1 (VS-mode, a0 = 1) ---
	a.Label("guest1")
	emitGuestPutchar(a, 'b')
	a.HfenceVVMA(asm.X0, asm.X0)
	emitGuestRounds(a, 'B', yields, 1)
	a.Label("gfail1")
	a.Li(asm.A7, hypExt)
	a.Li(asm.A6, hypFail)
	a.Ecall()
	a.J("gfail1")

	// --- Data ---
	a.Align(8)
	a.Label("gmagic")
	a.Raw64(gmagicValue)
	a.Label("gstore")
	a.Space(8)
	a.Label("n_fetch")
	a.Space(8)
	a.Label("n_load")
	a.Space(8)
	a.Label("n_store")
	a.Space(8)
	a.Label("n_virt")
	a.Space(8)
	a.Label("done_mask")
	a.Space(8)
	a.Align(frameSize)
	a.Label("frame0")
	a.Space(frameSize)
	a.Label("frame1")
	a.Space(frameSize)

	return a.MustAssemble()
}

// gmagicValue is the sentinel guest 0 expects to read through the window.
const gmagicValue = uint64(0x5AFE_C0DE_D00D_F00D)

// emitGuestPutchar emits a putchar hypercall for a constant byte.
func emitGuestPutchar(a *asm.Asm, ch byte) {
	a.Li(asm.A0, uint64(ch))
	a.Li(asm.A7, hypExt)
	a.Li(asm.A6, hypPutchar)
	a.Ecall()
}

// emitGuestRounds emits n yield-then-putchar rounds followed by the done
// hypercall.
func emitGuestRounds(a *asm.Asm, ch byte, n, id int) {
	a.Li(asm.S2, uint64(n))
	loop := lbl(a, "ground", id)
	a.Label(loop)
	a.Li(asm.A7, hypExt)
	a.Li(asm.A6, hypYield)
	a.Ecall()
	emitGuestPutchar(a, ch)
	a.Addi(asm.S2, asm.S2, -1)
	a.Bnez(asm.S2, loop)
	a.Li(asm.A7, hypExt)
	a.Li(asm.A6, hypDone)
	a.Ecall()
}
