package kernel

import (
	"govfm/internal/asm"
	"govfm/internal/hart"
	"govfm/internal/rv"
)

// Demo kernels driving the isolation policies: a Keystone host + enclave
// pair and an ACE host + confidential-VM pair. Both report progress
// through a result area in OS memory so tests can assert each step.

// Keystone/ACE demo memory layout (inside the OS region).
const (
	DemoResultAddr = 0x8840_0000 // 8 results x 8 bytes
	EnclaveBase    = 0x8810_0000 // 64 KiB NAPOT region
	EnclaveSize    = 0x1_0000
	CVMBase        = 0x8820_0000 // 1 MiB NAPOT region
	CVMSize        = 0x10_0000
)

// Keystone SBI numbers (mirrors internal/policy/keystone without importing
// it: guest code is built from the architectural contract, not Go types).
const (
	keystoneEID = 0x08424b45
	fnCreate    = 2001
	fnDestroy   = 2002
	fnRun       = 2003
	fnResume    = 2005
	fnExit      = 3006
	interrupted = 100011
)

// BuildEnclavePayload assembles the enclave program: sums 1..n with a
// deliberately long loop (preemptible by the host timer), then exits
// through the security monitor with the result.
func BuildEnclavePayload(base uint64, n int) []byte {
	a := asm.New(base)
	a.Li(asm.S0, 0) // acc
	a.Li(asm.S1, 1) // i
	a.Li(asm.S2, uint64(n))
	a.Label("loop")
	a.Add(asm.S0, asm.S0, asm.S1)
	a.Addi(asm.S1, asm.S1, 1)
	a.Bge(asm.S2, asm.S1, "loop")
	a.Mv(asm.A0, asm.S0)
	a.Li(asm.A7, keystoneEID)
	a.Li(asm.A6, fnExit)
	a.Ecall()
	a.Label("hang") // never reached
	a.J("hang")
	return a.MustAssemble()
}

// BuildKeystoneHost assembles the host kernel for the Keystone demo. Steps
// recorded at DemoResultAddr:
//
//	[0] create return (enclave id, 0)
//	[1] run/resume final return value (the enclave's sum)
//	[2] number of timer preemptions observed
//	[3] 1 if the post-run read of enclave memory faulted (it must)
//	[4] destroy return (0)
//	[5] value read from enclave memory after destroy (must be 0: scrubbed)
func BuildKeystoneHost(base uint64, loopN int, preempt bool) []byte {
	a := asm.New(base)
	a.Label("entry")
	a.La(asm.T0, "strap")
	a.Csrw(rv.CSRStvec, asm.T0)
	a.Li(asm.S8, DemoResultAddr)

	// create(base, size, entry).
	a.Li(asm.A0, EnclaveBase)
	a.Li(asm.A1, EnclaveSize)
	a.Li(asm.A2, EnclaveBase)
	a.Li(asm.A7, keystoneEID)
	a.Li(asm.A6, fnCreate)
	a.Ecall()
	a.Sd(asm.A0, asm.S8, 0)
	a.Mv(asm.S9, asm.A0) // enclave id

	if preempt {
		// Arm a timer so the enclave gets preempted at least once.
		a.Csrr(asm.A0, rv.CSRTime)
		a.Addi(asm.A0, asm.A0, 40)
		a.Li(asm.A7, rv.SBIExtTimer)
		a.Li(asm.A6, rv.SBITimerSetTimer)
		a.Ecall()
	}

	a.Li(asm.S10, 0) // preemption count
	// run(id).
	a.Mv(asm.A0, asm.S9)
	a.Li(asm.A7, keystoneEID)
	a.Li(asm.A6, fnRun)
	a.Ecall()
	a.Label("run_loop")
	a.Li(asm.T0, interrupted)
	a.BneFar(asm.A0, asm.T0, "run_done")
	a.Addi(asm.S10, asm.S10, 1)
	// Quiesce the timer, then resume the enclave.
	a.Li(asm.A0, ^uint64(0))
	a.Li(asm.A7, rv.SBIExtTimer)
	a.Li(asm.A6, rv.SBITimerSetTimer)
	a.Ecall()
	a.Mv(asm.A0, asm.S9)
	a.Li(asm.A7, keystoneEID)
	a.Li(asm.A6, fnResume)
	a.Ecall()
	a.J("run_loop")
	a.Label("run_done")
	a.Sd(asm.A0, asm.S8, 8)
	a.Sd(asm.S10, asm.S8, 16)

	// The enclave's memory must be unreadable from the host.
	a.La(asm.T0, "fault_seen")
	a.Sd(asm.X0, asm.T0, 0)
	a.Li(asm.T1, EnclaveBase)
	a.Ld(asm.T2, asm.T1, 0) // must fault; handler sets fault_seen
	a.La(asm.T0, "fault_seen")
	a.Ld(asm.T2, asm.T0, 0)
	a.Sd(asm.T2, asm.S8, 24)

	// destroy(id): memory is scrubbed and returned.
	a.Mv(asm.A0, asm.S9)
	a.Li(asm.A7, keystoneEID)
	a.Li(asm.A6, fnDestroy)
	a.Ecall()
	a.Sd(asm.A0, asm.S8, 32)
	a.Li(asm.T1, EnclaveBase)
	a.Ld(asm.T2, asm.T1, 0) // now readable again, and zero
	a.Sd(asm.T2, asm.S8, 40)

	// Shutdown.
	a.Li(asm.A0, 0)
	a.Li(asm.A1, 0)
	a.Li(asm.A7, rv.SBIExtReset)
	a.Li(asm.A6, 0)
	a.Ecall()
	a.Label("fail")
	a.Li(asm.T6, hart.ExitBase)
	a.Li(asm.T5, hart.ExitFail)
	a.Sd(asm.T5, asm.T6, 0)
	a.Label("hang")
	a.J("hang")

	// Supervisor trap handler: record access faults and skip the
	// faulting instruction.
	a.Label("strap")
	a.Csrr(asm.T3, rv.CSRScause)
	a.Li(asm.T4, rv.ExcLoadAccessFault)
	a.Beq(asm.T3, asm.T4, "strap_fault")
	a.Jal(asm.X0, "fail")
	a.Label("strap_fault")
	a.La(asm.T3, "fault_seen")
	a.Li(asm.T4, 1)
	a.Sd(asm.T4, asm.T3, 0)
	a.Csrr(asm.T3, rv.CSRSepc)
	a.Addi(asm.T3, asm.T3, 4)
	a.Csrw(rv.CSRSepc, asm.T3)
	a.Sret()

	a.Align(8)
	a.Label("fault_seen")
	a.Space(8)
	_ = loopN
	return a.MustAssemble()
}

// ACE/CoVE SBI numbers (architectural contract).
const (
	covhEID        = 0x434F5648
	covgEID        = 0x434F5647
	fnPromote      = 0x10
	fnDestroyCVM   = 0x11
	fnRunCVM       = 0x12
	fnAttestCVM    = 0x14
	fnGuestExit    = 0x20
	fnGuestShare   = 0x21
	cvmInterrupted = 0x0FF1
)

// BuildCVMGuest assembles the confidential VM's kernel: it writes a secret
// into private memory, shares one page with the host, publishes a value
// there, and exits.
func BuildCVMGuest(base uint64) []byte {
	a := asm.New(base)
	// Private secret at base+0x2000.
	a.Li(asm.T0, base+0x2000)
	a.Li(asm.T1, 0x5EC2E7)
	a.Sd(asm.T1, asm.T0, 0)
	// Share the page at base+0x4000.
	a.Li(asm.A0, base+0x4000)
	a.Li(asm.A7, covgEID)
	a.Li(asm.A6, fnGuestShare)
	a.Ecall()
	a.Bnez(asm.A0, "guest_fail")
	// Publish through the shared page.
	a.Li(asm.T0, base+0x4000)
	a.Li(asm.T1, 0x9A9A9A)
	a.Sd(asm.T1, asm.T0, 0)
	// Exit with a status code.
	a.Li(asm.A0, 0x600D)
	a.Li(asm.A7, covgEID)
	a.Li(asm.A6, fnGuestExit)
	a.Ecall()
	a.Label("guest_fail")
	a.Li(asm.A0, 0xBAD)
	a.Li(asm.A7, covgEID)
	a.Li(asm.A6, fnGuestExit)
	a.Ecall()
	a.Label("hang")
	a.J("hang")
	return a.MustAssemble()
}

// BuildACEHost assembles the host (hypervisor-side) kernel for the ACE
// demo. Results at DemoResultAddr:
//
//	[0] promote return (cvm id)
//	[1] run return (guest exit value 0x600D)
//	[2] value read from the shared page (0x9A9A9A)
//	[3] 1 if reading the CVM's private memory faulted (it must)
//	[4] destroy return (0)
//	[5] attest return (nonzero launch measurement of the CVM)
func BuildACEHost(base uint64) []byte {
	a := asm.New(base)
	a.Label("entry")
	a.La(asm.T0, "strap")
	a.Csrw(rv.CSRStvec, asm.T0)
	a.Li(asm.S8, DemoResultAddr)

	// promote(base, size, entry).
	a.Li(asm.A0, CVMBase)
	a.Li(asm.A1, CVMSize)
	a.Li(asm.A2, CVMBase)
	a.Li(asm.A7, covhEID)
	a.Li(asm.A6, fnPromote)
	a.Ecall()
	a.Sd(asm.A0, asm.S8, 0)
	a.Mv(asm.S9, asm.A0)

	// run(id) until the guest exits voluntarily.
	a.Label("run_again")
	a.Mv(asm.A0, asm.S9)
	a.Li(asm.A7, covhEID)
	a.Li(asm.A6, fnRunCVM)
	a.Ecall()
	a.Li(asm.T0, cvmInterrupted)
	a.Beq(asm.A0, asm.T0, "run_again")
	a.Sd(asm.A0, asm.S8, 8)

	// Read the shared page (allowed).
	a.Li(asm.T1, CVMBase+0x4000)
	a.Ld(asm.T2, asm.T1, 0)
	a.Sd(asm.T2, asm.S8, 16)

	// Read the private secret (must fault).
	a.La(asm.T0, "fault_seen")
	a.Sd(asm.X0, asm.T0, 0)
	a.Li(asm.T1, CVMBase+0x2000)
	a.Ld(asm.T2, asm.T1, 0)
	a.La(asm.T0, "fault_seen")
	a.Ld(asm.T2, asm.T0, 0)
	a.Sd(asm.T2, asm.S8, 24)

	// attest(id): the launch measurement, queried while the CVM is live.
	a.Mv(asm.A0, asm.S9)
	a.Li(asm.A7, covhEID)
	a.Li(asm.A6, fnAttestCVM)
	a.Ecall()
	a.Sd(asm.A0, asm.S8, 40)

	// destroy(id).
	a.Mv(asm.A0, asm.S9)
	a.Li(asm.A7, covhEID)
	a.Li(asm.A6, fnDestroyCVM)
	a.Ecall()
	a.Sd(asm.A0, asm.S8, 32)

	a.Li(asm.A0, 0)
	a.Li(asm.A1, 0)
	a.Li(asm.A7, rv.SBIExtReset)
	a.Li(asm.A6, 0)
	a.Ecall()
	a.Label("fail")
	a.Li(asm.T6, hart.ExitBase)
	a.Li(asm.T5, hart.ExitFail)
	a.Sd(asm.T5, asm.T6, 0)
	a.Label("hang")
	a.J("hang")

	a.Label("strap")
	a.Csrr(asm.T3, rv.CSRScause)
	a.Li(asm.T4, rv.ExcLoadAccessFault)
	a.Beq(asm.T3, asm.T4, "strap_fault")
	a.Jal(asm.X0, "fail")
	a.Label("strap_fault")
	a.La(asm.T3, "fault_seen")
	a.Li(asm.T4, 1)
	a.Sd(asm.T4, asm.T3, 0)
	a.Csrr(asm.T3, rv.CSRSepc)
	a.Addi(asm.T3, asm.T3, 4)
	a.Csrw(rv.CSRSepc, asm.T3)
	a.Sret()

	a.Align(8)
	a.Label("fault_seen")
	a.Space(8)
	return a.MustAssemble()
}

// BuildSecretCaller assembles a kernel that places a secret in s7 and
// performs the malicious firmware's echo call, recording what came back —
// the sandbox's GPR allow-list must prevent the leak.
func BuildSecretCaller(base uint64, secret uint64) []byte {
	a := asm.New(base)
	a.Li(asm.S8, DemoResultAddr)
	a.Li(asm.S7, secret)
	a.Li(asm.A7, 0x09001234) // firmware.EvilEID
	a.Li(asm.A6, 0)
	a.Ecall()
	a.Sd(asm.A1, asm.S8, 0) // what the firmware claims s7 was
	a.Sd(asm.S7, asm.S8, 8) // s7 must be preserved across the call
	a.Li(asm.A0, 0)
	a.Li(asm.A1, 0)
	a.Li(asm.A7, rv.SBIExtReset)
	a.Li(asm.A6, 0)
	a.Ecall()
	a.Label("hang")
	a.J("hang")
	return a.MustAssemble()
}

// BuildEvilTrigger assembles a kernel that pokes the malicious firmware
// extension once (triggering its OS-memory or DMA attack) and then exits.
func BuildEvilTrigger(base uint64) []byte {
	a := asm.New(base)
	a.Li(asm.A7, 0x09001234)
	a.Li(asm.A6, 0)
	a.Ecall()
	a.Li(asm.S8, DemoResultAddr)
	a.Sd(asm.A1, asm.S8, 0) // whatever the firmware exfiltrated
	a.Li(asm.A0, 0)
	a.Li(asm.A1, 0)
	a.Li(asm.A7, rv.SBIExtReset)
	a.Li(asm.A6, 0)
	a.Ecall()
	a.Label("hang")
	a.J("hang")
	return a.MustAssemble()
}

// BuildRV8Enclave assembles an RV8-style compute kernel as an enclave
// payload: the same compute/memory loops the plain workload kernel runs,
// with the result returned through the enclave exit call.
func BuildRV8Enclave(base uint64, iterations, computeN, memN int) []byte {
	a := asm.New(base)
	a.Li(asm.S0, uint64(iterations))
	a.Li(asm.S4, 0)      // checksum
	a.Mv(asm.S2, asm.SP) // working buffer: below the stack top
	a.Li(asm.T0, 0x8000)
	a.Sub(asm.S2, asm.S2, asm.T0)
	a.Label("outer")
	if computeN > 0 {
		a.Li(asm.T0, uint64(computeN))
		a.Li(asm.T1, 0x9E3779B9)
		a.Label("comp")
		a.Add(asm.T2, asm.T2, asm.T1)
		a.Xor(asm.T1, asm.T1, asm.T2)
		a.Slli(asm.T3, asm.T2, 1)
		a.Add(asm.T2, asm.T2, asm.T3)
		a.Addi(asm.T0, asm.T0, -1)
		a.Bnez(asm.T0, "comp")
		a.Add(asm.S4, asm.S4, asm.T2)
	}
	if memN > 0 {
		a.Li(asm.T0, uint64(memN))
		a.Li(asm.T4, 0)
		a.Li(asm.T5, 0x7000)
		a.Label("memloop")
		a.Add(asm.T3, asm.S2, asm.T4)
		a.Ld(asm.T2, asm.T3, 0)
		a.Addi(asm.T2, asm.T2, 1)
		a.Sd(asm.T2, asm.T3, 0)
		a.Addi(asm.T4, asm.T4, 64)
		a.Bltu(asm.T4, asm.T5, "memok")
		a.Li(asm.T4, 0)
		a.Label("memok")
		a.Addi(asm.T0, asm.T0, -1)
		a.Bnez(asm.T0, "memloop")
	}
	a.Addi(asm.S0, asm.S0, -1)
	a.BnezFar(asm.S0, "outer")
	a.Mv(asm.A0, asm.S4)
	a.Li(asm.A7, keystoneEID)
	a.Li(asm.A6, fnExit)
	a.Ecall()
	a.Label("hang")
	a.J("hang")
	return a.MustAssemble()
}

// BuildRV8Host assembles the Fig. 14 host: it creates the enclave, runs it
// under a periodic preemption timer (rearmed on every Interrupted return),
// and shuts down when the enclave completes.
func BuildRV8Host(base, encBase, encSize uint64, tickDelta int64) []byte {
	a := asm.New(base)
	a.Label("entry")
	a.La(asm.T0, "strap")
	a.Csrw(rv.CSRStvec, asm.T0)
	// create(base, size, entry).
	a.Li(asm.A0, encBase)
	a.Li(asm.A1, encSize)
	a.Li(asm.A2, encBase)
	a.Li(asm.A7, keystoneEID)
	a.Li(asm.A6, fnCreate)
	a.Ecall()
	a.BnezFar(asm.A0, "fail")
	a.Mv(asm.S9, asm.A0)
	// Arm the first tick and run.
	a.Jal(asm.RA, "arm_tick")
	a.Mv(asm.A0, asm.S9)
	a.Li(asm.A7, keystoneEID)
	a.Li(asm.A6, fnRun)
	a.Ecall()
	a.Label("run_loop")
	a.Li(asm.T0, interrupted)
	a.BneFar(asm.A0, asm.T0, "run_done")
	a.Jal(asm.RA, "arm_tick")
	a.Mv(asm.A0, asm.S9)
	a.Li(asm.A7, keystoneEID)
	a.Li(asm.A6, fnResume)
	a.Ecall()
	a.J("run_loop")
	a.Label("run_done")
	a.Li(asm.S8, DemoResultAddr)
	a.Sd(asm.A0, asm.S8, 0)
	// Quiesce and shut down.
	a.Li(asm.A0, ^uint64(0))
	a.Li(asm.A7, rv.SBIExtTimer)
	a.Li(asm.A6, rv.SBITimerSetTimer)
	a.Ecall()
	a.Li(asm.A0, 0)
	a.Li(asm.A1, 0)
	a.Li(asm.A7, rv.SBIExtReset)
	a.Li(asm.A6, 0)
	a.Ecall()
	a.Label("fail")
	a.Li(asm.T6, hart.ExitBase)
	a.Li(asm.T5, hart.ExitFail)
	a.Sd(asm.T5, asm.T6, 0)
	a.Label("hang")
	a.J("hang")
	// arm_tick: set_timer(now + tickDelta).
	a.Label("arm_tick")
	a.Mv(asm.S6, asm.RA)
	a.Csrr(asm.A0, rv.CSRTime)
	a.Addi(asm.A0, asm.A0, tickDelta)
	a.Li(asm.A7, rv.SBIExtTimer)
	a.Li(asm.A6, rv.SBITimerSetTimer)
	a.Ecall()
	a.Jr(asm.S6)
	// The host never enables SIE, so STIP stays pending until quiesced;
	// the strap handler exists only for unexpected traps.
	a.Label("strap")
	a.Jal(asm.X0, "fail")
	return a.MustAssemble()
}
