package iopmp

import (
	"testing"

	"govfm/internal/pmp"
	"govfm/internal/rv"
)

func TestPermissiveAtReset(t *testing.T) {
	p := New(8)
	if !p.Check(0x8000_0000, 64, false) || !p.Check(0x1000, 8, true) {
		t.Error("unprogrammed IOPMP must permit everything")
	}
	if p.Denials != 0 {
		t.Error("no denials expected")
	}
}

func TestDenyAndAllowRules(t *testing.T) {
	p := New(8)
	f := p.File()
	// Entry 0: deny [0x8800_0000, +1MB); entry 1: allow-all RW.
	f.SetAddr(0, pmp.NAPOTAddr(0x8800_0000, 1<<20))
	f.SetCfg(0, pmp.ANapot<<3)
	f.SetAddr(1, rv.Mask(54))
	f.SetCfg(1, pmp.CfgR|pmp.CfgW|pmp.ANapot<<3)
	if p.Check(0x8800_0100, 64, false) {
		t.Error("read of denied region must fail")
	}
	if p.Check(0x8800_0100, 64, true) {
		t.Error("write of denied region must fail")
	}
	if !p.Check(0x8000_0000, 64, true) {
		t.Error("allowed region must pass")
	}
	if p.Denials != 2 {
		t.Errorf("denials = %d", p.Denials)
	}
}

func TestMMIOProgramming(t *testing.T) {
	p := New(8)
	// Program entry 0 via MMIO: addr then cfg.
	if !p.Store(AddrOff, 8, pmp.NAPOTAddr(0x8000_0000, 4096)) {
		t.Fatal("addr store failed")
	}
	cfg := uint64(pmp.CfgR | pmp.ANapot<<3)
	if !p.Store(CfgOff, 8, cfg) {
		t.Fatal("cfg store failed")
	}
	v, ok := p.Load(CfgOff, 8)
	if !ok || v != cfg {
		t.Errorf("cfg readback %#x", v)
	}
	v, ok = p.Load(AddrOff, 8)
	if !ok || v != pmp.NAPOTAddr(0x8000_0000, 4096) {
		t.Errorf("addr readback %#x", v)
	}
	// Now enabled: reads in the region pass, writes (no W bit) fail,
	// everything outside fails (no backstop entry).
	if !p.Check(0x8000_0000, 8, false) {
		t.Error("programmed read region must pass")
	}
	if p.Check(0x8000_0000, 8, true) {
		t.Error("write without W must fail")
	}
	if p.Check(0x9000_0000, 8, false) {
		t.Error("unmatched access must fail once enabled")
	}
}

func TestMMIORejects(t *testing.T) {
	p := New(8)
	if _, ok := p.Load(CfgOff, 4); ok {
		t.Error("4-byte access must fail")
	}
	if _, ok := p.Load(0x800, 8); ok {
		t.Error("hole must fail")
	}
	if p.Store(AddrOff+8*8, 8, 1) {
		t.Error("past last entry must fail")
	}
	if p.Name() != "iopmp" {
		t.Error("name")
	}
}
