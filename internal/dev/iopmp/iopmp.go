// Package iopmp implements an I/O Physical Memory Protection unit in the
// spirit of the RISC-V IOPMP specification (and Protego): a table of
// PMP-style entries consulted by DMA-capable bus masters on every access.
// The paper (§4.3) describes how a VFM *would* virtualize an IOPMP on
// platforms that have one — hardware its evaluation boards lacked — so
// this device exists to exercise exactly that path.
package iopmp

import (
	"govfm/internal/mem"
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// Register map (relative to the device base): packed cfg registers first
// (8 entries per 64-bit register, pmpcfg layout), then one 64-bit address
// register per entry.
const (
	CfgOff  = 0x000
	AddrOff = 0x100
	Size    = 0x1000
)

// IOPMP is the protection unit. Entries use PMP semantics (TOR/NA4/NAPOT,
// priority order, partial-match faults); masters are never M-mode, so only
// the R/W permission bits matter. At reset no entry is programmed and the
// unit is permissive — matching boards that ship with the IOPMP disabled
// (paper §4.3 note on Protego-style enablement cost).
type IOPMP struct {
	file *pmp.File
	// Checks counts master accesses consulted; Denials the blocked subset.
	Checks  uint64
	Denials uint64
}

// New returns an IOPMP with n entries.
func New(n int) *IOPMP { return &IOPMP{file: pmp.NewFile(n)} }

// Reset clears every entry (lock bits included), returning the unit to its
// permissive power-on state. The Checks/Denials counters (host-side
// observability) survive.
func (p *IOPMP) Reset() {
	for i := 0; i < p.file.NumEntries(); i++ {
		p.file.ForceCfg(i, 0)
		p.file.ForceAddr(i, 0)
	}
}

// Name implements mem.Device.
func (p *IOPMP) Name() string { return "iopmp" }

// NumEntries returns the implemented entry count.
func (p *IOPMP) NumEntries() int { return p.file.NumEntries() }

// File exposes the underlying entry table (monitor-side programming).
func (p *IOPMP) File() *pmp.File { return p.file }

// Check is consulted by DMA masters: it reports whether an access of size
// bytes at addr is permitted. An unprogrammed unit (all entries OFF)
// permits everything.
func (p *IOPMP) Check(addr uint64, size int, write bool) bool {
	p.Checks++
	enabled := false
	for i := 0; i < p.file.NumEntries(); i++ {
		if pmp.AMode(p.file.Cfg(i)) != pmp.AOff {
			enabled = true
			break
		}
	}
	if !enabled {
		return true
	}
	acc := mem.Read
	if write {
		acc = mem.Write
	}
	// Masters check like unprivileged agents: no default-allow.
	ok := p.file.Check(addr, size, acc, rv.ModeU)
	if !ok {
		p.Denials++
	}
	return ok
}

// Snapshot is a deep copy of the IOPMP's entry table. The Checks/Denials
// counters (host-side observability) are not captured.
type Snapshot struct {
	Cfg  []byte
	Addr []uint64
}

// Checkpoint captures the entry table for later Restore.
func (p *IOPMP) Checkpoint() Snapshot {
	cfg, addr := p.file.Snapshot()
	return Snapshot{Cfg: cfg, Addr: addr}
}

// Restore rewinds the entry table to a checkpoint taken on a same-size
// unit, lock bits included.
func (p *IOPMP) Restore(s Snapshot) {
	for i := 0; i < p.file.NumEntries() && i < len(s.Cfg); i++ {
		p.file.ForceCfg(i, s.Cfg[i])
		p.file.ForceAddr(i, s.Addr[i])
	}
}

// Load implements mem.Device.
func (p *IOPMP) Load(off uint64, size int) (uint64, bool) {
	if size != 8 || off%8 != 0 {
		return 0, false
	}
	switch {
	case off >= CfgOff && off < CfgOff+uint64(p.file.NumEntries()):
		return p.file.CfgReg(int(off-CfgOff) / 4), true
	case off >= AddrOff && off < AddrOff+uint64(8*p.file.NumEntries()):
		return p.file.Addr(int(off-AddrOff) / 8), true
	}
	return 0, false
}

// Store implements mem.Device.
func (p *IOPMP) Store(off uint64, size int, v uint64) bool {
	if size != 8 || off%8 != 0 {
		return false
	}
	switch {
	case off >= CfgOff && off < CfgOff+uint64(p.file.NumEntries()):
		p.file.SetCfgReg(int(off-CfgOff)/4, v)
		return true
	case off >= AddrOff && off < AddrOff+uint64(8*p.file.NumEntries()):
		p.file.SetAddr(int(off-AddrOff)/8, v)
		return true
	}
	return false
}
