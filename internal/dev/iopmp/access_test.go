package iopmp

import (
	"testing"

	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// TestMMIOMatrix pins the register map decode: which (offset, size)
// combinations the unit accepts, table-driven over cfg and addr rows.
func TestMMIOMatrix(t *testing.T) {
	tests := []struct {
		name string
		off  uint64
		size int
		ok   bool
	}{
		{"cfg reg0", CfgOff, 8, true},
		{"cfg word", CfgOff, 4, false},
		{"cfg misaligned", CfgOff + 4, 8, false},
		{"cfg past entries", CfgOff + 8, 8, false}, // 8 entries pack into one reg
		{"addr entry0", AddrOff, 8, true},
		{"addr entry7", AddrOff + 8*7, 8, true},
		{"addr entry8", AddrOff + 8*8, 8, false},
		{"addr halfword", AddrOff, 2, false},
		{"hole", 0x80, 8, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := New(8)
			if _, ok := p.Load(tc.off, tc.size); ok != tc.ok {
				t.Fatalf("Load(%#x,%d) ok=%v, want %v", tc.off, tc.size, ok, tc.ok)
			}
			if ok := p.Store(tc.off, tc.size, 0); ok != tc.ok {
				t.Fatalf("Store(%#x,%d) ok=%v, want %v", tc.off, tc.size, ok, tc.ok)
			}
		})
	}
}

// TestEntryPriorityOrder: like PMP, the lowest-numbered matching entry
// decides — a deny placed before an allow wins, and the other way around.
func TestEntryPriorityOrder(t *testing.T) {
	region := pmp.NAPOTAddr(0x8000_0000, 4096)
	allowAll := rv.Mask(54)

	t.Run("deny shadows allow", func(t *testing.T) {
		p := New(4)
		p.Store(AddrOff, 8, region)
		p.Store(AddrOff+8, 8, allowAll)
		p.Store(CfgOff, 8, uint64(pmp.CfgR|pmp.CfgW|pmp.ANapot<<3)<<8|uint64(pmp.ANapot<<3))
		if p.Check(0x8000_0010, 8, false) {
			t.Error("entry 0 deny must shadow entry 1 allow")
		}
		if !p.Check(0x9000_0000, 8, true) {
			t.Error("outside region falls through to allow-all")
		}
	})
	t.Run("allow shadows deny", func(t *testing.T) {
		p := New(4)
		p.Store(AddrOff, 8, region)
		p.Store(AddrOff+8, 8, allowAll)
		p.Store(CfgOff, 8, uint64(pmp.ANapot<<3)<<8|uint64(pmp.CfgR|pmp.CfgW|pmp.ANapot<<3))
		if !p.Check(0x8000_0010, 8, false) {
			t.Error("entry 0 allow must shadow entry 1 deny")
		}
		if p.Check(0x9000_0000, 8, true) {
			t.Error("outside region hits the deny backstop")
		}
	})
}

// TestPartialMatchFaults: a DMA burst straddling a region boundary must be
// denied even when the matched portion is permitted.
func TestPartialMatchFaults(t *testing.T) {
	p := New(2)
	f := p.File()
	f.SetAddr(0, pmp.NAPOTAddr(0x8000_0000, 4096))
	f.SetCfg(0, pmp.CfgR|pmp.CfgW|pmp.ANapot<<3)
	f.SetAddr(1, rv.Mask(54))
	f.SetCfg(1, pmp.CfgR|pmp.CfgW|pmp.ANapot<<3)
	if !p.Check(0x8000_0FF8, 8, false) {
		t.Fatal("fully inside the region must pass")
	}
	denials := p.Denials
	if p.Check(0x8000_0FFC, 8, false) {
		t.Fatal("burst straddling the region boundary must fault")
	}
	if p.Denials != denials+1 {
		t.Fatalf("denial counter = %d, want %d", p.Denials, denials+1)
	}
}

// TestTORViaMMIO programs a TOR pair through the bus interface and checks
// the [addr0, addr1) window semantics masters observe.
func TestTORViaMMIO(t *testing.T) {
	p := New(2)
	p.Store(AddrOff, 8, 0x8000_0000>>2)
	p.Store(AddrOff+8, 8, 0x8001_0000>>2)
	// Entry 0 OFF (its addr is the TOR base), entry 1 TOR RW.
	p.Store(CfgOff, 8, uint64(pmp.CfgR|pmp.CfgW|pmp.ATor<<3)<<8)
	if !p.Check(0x8000_0000, 8, true) || !p.Check(0x8000_FFF8, 8, false) {
		t.Error("inside TOR window must pass")
	}
	if p.Check(0x7FFF_FFF8, 8, false) {
		t.Error("below TOR base must fail (no backstop)")
	}
	if p.Check(0x8001_0000, 8, false) {
		t.Error("at TOR top must fail")
	}
}

// TestLockedEntryWARL: MMIO writes honor the underlying PMP file's lock
// semantics — a locked cfg byte (and its addr register) become read-only.
func TestLockedEntryWARL(t *testing.T) {
	p := New(8)
	locked := uint64(pmp.CfgL | pmp.CfgR | pmp.ANapot<<3)
	p.Store(AddrOff, 8, pmp.NAPOTAddr(0x8000_0000, 4096))
	p.Store(CfgOff, 8, locked)
	p.Store(CfgOff, 8, uint64(pmp.CfgR|pmp.CfgW|pmp.ANapot<<3)) // attempt rewrite
	if v, _ := p.Load(CfgOff, 8); v&0xFF != locked {
		t.Fatalf("locked cfg byte rewritten: %#x", v)
	}
	before, _ := p.Load(AddrOff, 8)
	p.Store(AddrOff, 8, 0)
	if after, _ := p.Load(AddrOff, 8); after != before {
		t.Fatal("locked entry's addr register must be read-only")
	}
}
