package iopmp

import (
	"testing"

	"govfm/internal/pmp"
)

// TestErrorPaths: the IOPMP register file only decodes naturally-aligned
// 64-bit accesses inside the cfg and addr windows; everything else is
// refused, and refused stores leave the entry file untouched.
func TestErrorPaths(t *testing.T) {
	p := New(8)
	p.Store(AddrOff, 8, 0xABCD)

	rejects := []struct {
		name string
		off  uint64
		size int
	}{
		{"cfg word", CfgOff, 4},
		{"cfg byte", CfgOff, 1},
		{"addr word", AddrOff, 4},
		{"addr misaligned", AddrOff + 4, 8},
		{"addr past entries", AddrOff + 8*8, 8},
		{"gap between cfg and addr", CfgOff + 0x80, 8},
		{"past device", Size, 8},
	}
	for _, tc := range rejects {
		if _, ok := p.Load(tc.off, tc.size); ok {
			t.Errorf("%s: Load(%#x,%d) accepted", tc.name, tc.off, tc.size)
		}
		if ok := p.Store(tc.off, tc.size, ^uint64(0)); ok {
			t.Errorf("%s: Store(%#x,%d) accepted", tc.name, tc.off, tc.size)
		}
	}
	if v, _ := p.Load(AddrOff, 8); v != 0xABCD {
		t.Errorf("addr entry changed by rejected stores: %#x", v)
	}
	if v, _ := p.Load(CfgOff, 8); v != 0 {
		t.Errorf("cfg changed by rejected stores: %#x", v)
	}
}

// TestLockedEntryRejectsMMIOWrites: once an entry's lock bit is set, MMIO
// stores to its cfg and addr are accepted by the decoder (the register
// exists) but the WARL filter discards the new values.
func TestLockedEntryRejectsMMIOWrites(t *testing.T) {
	p := New(8)
	p.Store(AddrOff, 8, 0x100)
	p.Store(CfgOff, 8, uint64(pmp.CfgL|pmp.CfgR|pmp.ANapot<<3))
	cfgBefore, _ := p.Load(CfgOff, 8)

	if ok := p.Store(AddrOff, 8, 0x999); !ok {
		t.Fatal("addr store rejected at decode")
	}
	if v, _ := p.Load(AddrOff, 8); v != 0x100 {
		t.Errorf("locked addr overwritten: %#x", v)
	}
	if ok := p.Store(CfgOff, 8, 0); !ok {
		t.Fatal("cfg store rejected at decode")
	}
	if v, _ := p.Load(CfgOff, 8); v != cfgBefore {
		t.Errorf("locked cfg overwritten: %#x -> %#x", cfgBefore, v)
	}
}
