// Package clint implements the Core Local Interruptor: per-hart software
// interrupt bits (msip), per-hart timer compare registers (mtimecmp), and
// the global mtime counter. The register layout follows the de-facto
// standard SiFive CLINT map used by both evaluation platforms.
//
// The CLINT is the one MMIO device the paper's monitor must emulate
// (§4.3); this package is the *physical* device, while internal/core
// implements Miralis's virtual CLINT on top of it.
package clint

import "govfm/internal/rv"

// Register map offsets (relative to the CLINT base address).
const (
	MsipOff     = 0x0000 // 4 bytes per hart
	MtimecmpOff = 0x4000 // 8 bytes per hart
	MtimeOff    = 0xBFF8 // 8 bytes, global
	Size        = 0x10000
)

// Clint is the core-local interruptor for a fixed number of harts.
type Clint struct {
	msip     []uint32
	mtimecmp []uint64
	mtime    uint64

	// Perf counts programming operations, whether they arrive as MMIO
	// stores or through the monitor's fast-path setters.
	Perf struct {
		TimerPrograms uint64 // mtimecmp writes
		IPIPosts      uint64 // msip set operations (clears not counted)
	}
}

// New returns a CLINT serving nHarts harts, with all mtimecmp registers
// initialized to the all-ones "never" value, as firmware expects at reset.
func New(nHarts int) *Clint {
	c := &Clint{
		msip:     make([]uint32, nHarts),
		mtimecmp: make([]uint64, nHarts),
	}
	for i := range c.mtimecmp {
		c.mtimecmp[i] = ^uint64(0)
	}
	return c
}

// Name implements mem.Device.
func (c *Clint) Name() string { return "clint" }

// NumHarts returns the number of harts served.
func (c *Clint) NumHarts() int { return len(c.msip) }

// Reset returns the CLINT to power-on state: no IPIs pending, every
// comparator at all-ones (timer disarmed), mtime zero. The Perf counters
// (host-side observability) survive.
func (c *Clint) Reset() {
	for i := range c.msip {
		c.msip[i] = 0
	}
	for i := range c.mtimecmp {
		c.mtimecmp[i] = ^uint64(0)
	}
	c.mtime = 0
}

// Load implements mem.Device.
func (c *Clint) Load(off uint64, size int) (uint64, bool) {
	switch {
	case off >= MsipOff && off < MsipOff+uint64(4*len(c.msip)):
		if size != 4 || off%4 != 0 {
			return 0, false
		}
		return uint64(c.msip[(off-MsipOff)/4]), true
	case off >= MtimecmpOff && off < MtimecmpOff+uint64(8*len(c.mtimecmp)):
		hart := (off - MtimecmpOff) / 8
		return readReg(c.mtimecmp[hart], off%8, size)
	case off >= MtimeOff && off < MtimeOff+8:
		return readReg(c.mtime, off-MtimeOff, size)
	}
	return 0, false
}

// Store implements mem.Device.
func (c *Clint) Store(off uint64, size int, v uint64) bool {
	switch {
	case off >= MsipOff && off < MsipOff+uint64(4*len(c.msip)):
		if size != 4 || off%4 != 0 {
			return false
		}
		if v&1 != 0 {
			c.Perf.IPIPosts++
		}
		c.msip[(off-MsipOff)/4] = uint32(v & 1) // only bit 0 is writable
		return true
	case off >= MtimecmpOff && off < MtimecmpOff+uint64(8*len(c.mtimecmp)):
		hart := (off - MtimecmpOff) / 8
		c.Perf.TimerPrograms++
		return writeReg(&c.mtimecmp[hart], off%8, size, v)
	case off >= MtimeOff && off < MtimeOff+8:
		return writeReg(&c.mtime, off-MtimeOff, size, v)
	}
	return false
}

func readReg(reg, off uint64, size int) (uint64, bool) {
	switch {
	case size == 8 && off == 0:
		return reg, true
	case size == 4 && off == 0:
		return reg & 0xFFFF_FFFF, true
	case size == 4 && off == 4:
		return reg >> 32, true
	}
	return 0, false
}

func writeReg(reg *uint64, off uint64, size int, v uint64) bool {
	switch {
	case size == 8 && off == 0:
		*reg = v
	case size == 4 && off == 0:
		*reg = *reg&^0xFFFF_FFFF | v&0xFFFF_FFFF
	case size == 4 && off == 4:
		*reg = *reg&0xFFFF_FFFF | v<<32
	default:
		return false
	}
	return true
}

// Time returns the current mtime value.
func (c *Clint) Time() uint64 { return c.mtime }

// SetTime sets mtime (used by machine reset and tests).
func (c *Clint) SetTime(t uint64) { c.mtime = t }

// Advance adds ticks to mtime.
func (c *Clint) Advance(ticks uint64) { c.mtime += ticks }

// Mtimecmp returns hart's timer deadline.
func (c *Clint) Mtimecmp(hart int) uint64 { return c.mtimecmp[hart] }

// SetMtimecmp sets hart's timer deadline (SBI set_timer fast path).
func (c *Clint) SetMtimecmp(hart int, v uint64) {
	c.Perf.TimerPrograms++
	c.mtimecmp[hart] = v
}

// Msip reports whether hart's software-interrupt bit is set.
func (c *Clint) Msip(hart int) bool { return c.msip[hart] != 0 }

// SetMsip sets or clears hart's software-interrupt bit (IPI fast path).
func (c *Clint) SetMsip(hart int, set bool) {
	if set {
		c.Perf.IPIPosts++
		c.msip[hart] = 1
	} else {
		c.msip[hart] = 0
	}
}

// Snapshot is a deep copy of the CLINT's register state.
type Snapshot struct {
	Msip     []uint32
	Mtimecmp []uint64
	Mtime    uint64
}

// Checkpoint captures the register state for later Restore.
func (c *Clint) Checkpoint() Snapshot {
	return Snapshot{
		Msip:     append([]uint32(nil), c.msip...),
		Mtimecmp: append([]uint64(nil), c.mtimecmp...),
		Mtime:    c.mtime,
	}
}

// Restore rewinds the CLINT to a checkpoint taken on it earlier.
func (c *Clint) Restore(s Snapshot) {
	copy(c.msip, s.Msip)
	copy(c.mtimecmp, s.Mtimecmp)
	c.mtime = s.Mtime
}

// Pending returns the mip bits (MTIP, MSIP) this CLINT asserts for hart.
func (c *Clint) Pending(hart int) uint64 {
	var p uint64
	if c.msip[hart] != 0 {
		p |= 1 << rv.IntMSoft
	}
	if c.mtime >= c.mtimecmp[hart] {
		p |= 1 << rv.IntMTimer
	}
	return p
}
