package clint

import (
	"testing"

	"govfm/internal/rv"
)

func TestResetState(t *testing.T) {
	c := New(4)
	if c.NumHarts() != 4 {
		t.Fatal("hart count")
	}
	for h := 0; h < 4; h++ {
		if c.Msip(h) {
			t.Errorf("hart %d msip set at reset", h)
		}
		if c.Mtimecmp(h) != ^uint64(0) {
			t.Errorf("hart %d mtimecmp not 'never' at reset", h)
		}
		if c.Pending(h) != 0 {
			t.Errorf("hart %d pending at reset: %#x", h, c.Pending(h))
		}
	}
}

func TestMsipMMIO(t *testing.T) {
	c := New(2)
	if !c.Store(MsipOff+4, 4, 1) {
		t.Fatal("msip store failed")
	}
	if !c.Msip(1) || c.Msip(0) {
		t.Error("msip bit routing wrong")
	}
	if c.Pending(1)&(1<<rv.IntMSoft) == 0 {
		t.Error("MSIP must assert machine software interrupt")
	}
	v, ok := c.Load(MsipOff+4, 4)
	if !ok || v != 1 {
		t.Error("msip readback")
	}
	// Only bit 0 is writable.
	c.Store(MsipOff, 4, 0xFFFF_FFFE)
	if c.Msip(0) {
		t.Error("msip must mask to bit 0")
	}
	// Misaligned and wrong-size accesses rejected.
	if _, ok := c.Load(MsipOff+2, 4); ok {
		t.Error("misaligned msip load must fail")
	}
	if _, ok := c.Load(MsipOff, 8); ok {
		t.Error("8-byte msip load must fail")
	}
}

func TestMtimecmpMMIO(t *testing.T) {
	c := New(2)
	if !c.Store(MtimecmpOff+8, 8, 0x1122334455667788) {
		t.Fatal("mtimecmp store failed")
	}
	if c.Mtimecmp(1) != 0x1122334455667788 {
		t.Error("mtimecmp value")
	}
	// 32-bit halves, as 32-bit-era firmware writes them.
	c.Store(MtimecmpOff, 4, 0xAAAAAAAA)
	c.Store(MtimecmpOff+4, 4, 0xBBBBBBBB)
	if c.Mtimecmp(0) != 0xBBBBBBBB_AAAAAAAA {
		t.Errorf("mtimecmp halves: %#x", c.Mtimecmp(0))
	}
	lo, _ := c.Load(MtimecmpOff, 4)
	hi, _ := c.Load(MtimecmpOff+4, 4)
	if lo != 0xAAAAAAAA || hi != 0xBBBBBBBB {
		t.Error("mtimecmp half loads")
	}
}

func TestMtimeAndTimerInterrupt(t *testing.T) {
	c := New(1)
	c.SetMtimecmp(0, 100)
	c.SetTime(99)
	if c.Pending(0)&(1<<rv.IntMTimer) != 0 {
		t.Error("timer must not fire before deadline")
	}
	c.Advance(1)
	if c.Pending(0)&(1<<rv.IntMTimer) == 0 {
		t.Error("timer must fire at deadline (mtime >= mtimecmp)")
	}
	// Writing a later deadline clears the interrupt.
	c.Store(MtimecmpOff, 8, 1000)
	if c.Pending(0)&(1<<rv.IntMTimer) != 0 {
		t.Error("raising deadline must clear MTIP")
	}
	// mtime MMIO access.
	v, ok := c.Load(MtimeOff, 8)
	if !ok || v != 100 {
		t.Errorf("mtime load: %d", v)
	}
	c.Store(MtimeOff, 8, 5000)
	if c.Time() != 5000 {
		t.Error("mtime store")
	}
	if c.Pending(0)&(1<<rv.IntMTimer) == 0 {
		t.Error("mtime jump past deadline must set MTIP")
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	c := New(1)
	if _, ok := c.Load(MsipOff+4, 4); ok {
		t.Error("msip for nonexistent hart must fail")
	}
	if c.Store(MtimecmpOff+8, 8, 0); false {
		t.Error("unreachable")
	}
	if ok := c.Store(MtimecmpOff+8, 8, 0); ok {
		t.Error("mtimecmp for nonexistent hart must fail")
	}
	if _, ok := c.Load(0x9000, 4); ok {
		t.Error("hole in register map must fail")
	}
	if c.Name() != "clint" {
		t.Error("name")
	}
}
