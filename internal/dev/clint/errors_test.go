package clint

import "testing"

// TestErrorPaths: the CLINT rejects misaligned, wrong-size, and
// out-of-range accesses, and rejected stores leave timer state untouched.
func TestErrorPaths(t *testing.T) {
	c := New(2)
	c.SetMtimecmp(0, 0x1234)

	rejects := []struct {
		name string
		off  uint64
		size int
	}{
		{"msip misaligned", MsipOff + 2, 4},
		{"msip wide", MsipOff, 8},
		{"msip past harts", MsipOff + 4*2, 4},
		{"mtimecmp halfword", MtimecmpOff, 2},
		{"mtimecmp misaligned word", MtimecmpOff + 2, 4},
		{"mtimecmp misaligned dword", MtimecmpOff + 4, 8},
		{"mtimecmp past harts", MtimecmpOff + 8*2, 8},
		{"gap between msip and mtimecmp", 0x1000, 4},
		{"mtime misaligned dword", MtimeOff + 4, 8},
		{"past mtime", MtimeOff + 8, 8},
	}
	for _, tc := range rejects {
		if _, ok := c.Load(tc.off, tc.size); ok {
			t.Errorf("%s: Load(%#x,%d) accepted", tc.name, tc.off, tc.size)
		}
		if ok := c.Store(tc.off, tc.size, ^uint64(0)); ok {
			t.Errorf("%s: Store(%#x,%d) accepted", tc.name, tc.off, tc.size)
		}
	}
	if c.Mtimecmp(0) != 0x1234 {
		t.Errorf("mtimecmp changed by rejected stores: %#x", c.Mtimecmp(0))
	}
	if c.Msip(0) || c.Msip(1) {
		t.Error("msip set by rejected stores")
	}
}

// TestMsipWritableBit: only bit 0 of an msip word is writable; garbage in
// the upper bits must not survive the WARL filter.
func TestMsipWritableBit(t *testing.T) {
	c := New(1)
	if ok := c.Store(MsipOff, 4, 0xFFFF_FFFF); !ok {
		t.Fatal("msip store rejected")
	}
	if v, _ := c.Load(MsipOff, 4); v != 1 {
		t.Errorf("msip = %#x, want 1 (only bit 0 writable)", v)
	}
	if !c.Msip(0) {
		t.Error("msip line not asserted")
	}
}
