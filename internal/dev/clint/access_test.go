package clint

import (
	"testing"

	"govfm/internal/rv"
)

// TestAccessMatrix drives every register through a table of (offset, size,
// value) accesses and checks acceptance and readback semantics in one
// place: which combinations the device decodes, and what a read returns
// after the write.
func TestAccessMatrix(t *testing.T) {
	tests := []struct {
		name     string
		off      uint64
		size     int
		val      uint64
		storeOK  bool
		readback uint64 // checked only when storeOK
	}{
		{"msip word", MsipOff, 4, 1, true, 1},
		{"msip masks to bit0", MsipOff, 4, 0xFFFF_FFFF, true, 1},
		{"msip hart1", MsipOff + 4, 4, 1, true, 1},
		{"msip byte", MsipOff, 1, 1, false, 0},
		{"msip dword", MsipOff, 8, 1, false, 0},
		{"msip misaligned", MsipOff + 2, 4, 1, false, 0},
		{"mtimecmp dword", MtimecmpOff, 8, 0xDEAD_BEEF_0BAD_F00D, true, 0xDEAD_BEEF_0BAD_F00D},
		{"mtimecmp hart1", MtimecmpOff + 8, 8, 7, true, 7},
		{"mtimecmp lo half", MtimecmpOff, 4, 0x1234_5678, true, 0x1234_5678},
		{"mtimecmp hi half", MtimecmpOff + 4, 4, 0x9ABC_DEF0, true, 0x9ABC_DEF0},
		{"mtimecmp byte", MtimecmpOff, 1, 1, false, 0},
		{"mtimecmp misaligned dword", MtimecmpOff + 4, 8, 1, false, 0},
		{"mtime dword", MtimeOff, 8, 42, true, 42},
		{"mtime lo half", MtimeOff, 4, 9, true, 9},
		{"mtime hi half", MtimeOff + 4, 4, 3, true, 3},
		{"mtime word misaligned", MtimeOff + 2, 4, 1, false, 0},
		{"map hole", 0x8000, 4, 1, false, 0},
		{"past mtime", MtimeOff + 8, 8, 1, false, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := New(2)
			ok := c.Store(tc.off, tc.size, tc.val)
			if ok != tc.storeOK {
				t.Fatalf("Store(%#x,%d) ok=%v, want %v", tc.off, tc.size, ok, tc.storeOK)
			}
			v, lok := c.Load(tc.off, tc.size)
			if lok != tc.storeOK {
				t.Fatalf("Load(%#x,%d) ok=%v, want %v", tc.off, tc.size, lok, tc.storeOK)
			}
			if ok && v != tc.readback {
				t.Fatalf("readback %#x, want %#x", v, tc.readback)
			}
		})
	}
}

// TestInterruptLevelSemantics pins the CLINT's level-triggered nature: both
// mip bits track register state continuously rather than latching on an
// edge.
func TestInterruptLevelSemantics(t *testing.T) {
	c := New(1)

	// MSIP follows the register both ways.
	c.Store(MsipOff, 4, 1)
	if c.Pending(0)&(1<<rv.IntMSoft) == 0 {
		t.Fatal("MSIP must assert while msip=1")
	}
	c.Store(MsipOff, 4, 0)
	if c.Pending(0)&(1<<rv.IntMSoft) != 0 {
		t.Fatal("MSIP must deassert when msip cleared")
	}

	// MTIP stays asserted as long as mtime >= mtimecmp — advancing further
	// does not clear it, only moving the deadline or rewinding time does.
	c.SetMtimecmp(0, 10)
	c.SetTime(10)
	for i := 0; i < 3; i++ {
		if c.Pending(0)&(1<<rv.IntMTimer) == 0 {
			t.Fatalf("MTIP must stay asserted at mtime=%d", c.Time())
		}
		c.Advance(100)
	}
	c.Store(MtimeOff, 8, 5) // rewind below the deadline
	if c.Pending(0)&(1<<rv.IntMTimer) != 0 {
		t.Fatal("MTIP must deassert when mtime drops below mtimecmp")
	}
	// Writing just the low half of mtimecmp can re-arm the comparator.
	c.Store(MtimecmpOff, 4, 2)
	if c.Pending(0)&(1<<rv.IntMTimer) == 0 {
		t.Fatal("MTIP must assert after half-word mtimecmp write lowers deadline")
	}
}

// TestCheckpointRestore verifies snapshots are deep copies: mutations after
// Checkpoint must not leak into the saved state.
func TestCheckpointRestore(t *testing.T) {
	c := New(2)
	c.SetMsip(0, true)
	c.SetMtimecmp(1, 777)
	c.SetTime(123)
	snap := c.Checkpoint()

	c.SetMsip(0, false)
	c.SetMsip(1, true)
	c.SetMtimecmp(1, 1)
	c.Advance(1000)

	c.Restore(snap)
	if !c.Msip(0) || c.Msip(1) || c.Mtimecmp(1) != 777 || c.Time() != 123 {
		t.Fatal("restore did not rewind to checkpoint")
	}
}
