// Package devtest holds cross-device contract tests: every device in
// internal/dev must support snapshot → mutate → restore → state-equal, the
// cheap-fork contract Machine.Snapshot builds on. (The DMA engine, whose
// registers live in internal/hart, gets the same coverage there.)
package devtest

import (
	"reflect"
	"testing"

	"govfm/internal/dev/clint"
	"govfm/internal/dev/iopmp"
	"govfm/internal/dev/plic"
	"govfm/internal/dev/uart"
	"govfm/internal/mem"
)

// access is one MMIO store used to drive a device into a non-reset state.
type access struct {
	off  uint64
	size int
	v    uint64
}

func apply(t *testing.T, d mem.Device, writes []access) {
	t.Helper()
	for _, w := range writes {
		if !d.Store(w.off, w.size, w.v) {
			t.Fatalf("%s: store %#x size %d rejected", d.Name(), w.off, w.size)
		}
	}
}

// probe reads a set of offsets so two same-shape devices can be compared
// through their architectural register window.
func probe(t *testing.T, d mem.Device, reads []access) []uint64 {
	t.Helper()
	out := make([]uint64, 0, len(reads))
	for _, r := range reads {
		v, ok := d.Load(r.off, r.size)
		if !ok {
			t.Fatalf("%s: load %#x size %d rejected", d.Name(), r.off, r.size)
		}
		out = append(out, v)
	}
	return out
}

func TestDeviceSnapshotRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		// build returns the device plus checkpoint/restore closures bound
		// to it (the Snapshot types differ per device).
		build func() (dev mem.Device, checkpoint func() any, restore func(any))
		// mutate1 drives the device into the state to be captured;
		// mutate2 perturbs it afterwards.
		mutate1, mutate2 []access
		// probes are side-effect-free register reads used for equality.
		probes []access
	}{
		{
			name: "clint",
			build: func() (mem.Device, func() any, func(any)) {
				c := clint.New(2)
				return c, func() any { return c.Checkpoint() }, func(s any) { c.Restore(s.(clint.Snapshot)) }
			},
			mutate1: []access{
				{clint.MsipOff, 4, 1},
				{clint.MtimecmpOff + 8, 8, 0x1234_5678},
				{clint.MtimeOff, 8, 999},
			},
			mutate2: []access{
				{clint.MsipOff, 4, 0},
				{clint.MtimecmpOff + 8, 8, 1},
				{clint.MtimeOff, 8, 0},
			},
			probes: []access{
				{clint.MsipOff, 4, 0}, {clint.MsipOff + 4, 4, 0},
				{clint.MtimecmpOff, 8, 0}, {clint.MtimecmpOff + 8, 8, 0},
				{clint.MtimeOff, 8, 0},
			},
		},
		{
			name: "plic",
			build: func() (mem.Device, func() any, func(any)) {
				p := plic.New(2)
				p.Raise(3)
				return p, func() any { return p.Checkpoint() }, func(s any) { p.Restore(s.(plic.Snapshot)) }
			},
			mutate1: []access{
				{plic.PriorityOff + 4*3, 4, 7},
				{plic.EnableOff, 4, 1 << 3},
				{plic.ContextOff, 4, 2},
			},
			mutate2: []access{
				{plic.PriorityOff + 4*3, 4, 0},
				{plic.EnableOff, 4, 0},
				{plic.ContextOff, 4, 6},
				{plic.ContextOff + 4, 4, 3}, // complete (clears claimed)
			},
			probes: []access{
				{plic.PriorityOff + 4*3, 4, 0},
				{plic.PendingOff, 4, 0},
				{plic.EnableOff, 4, 0},
				{plic.ContextOff, 4, 0},
			},
		},
		{
			name: "uart",
			build: func() (mem.Device, func() any, func(any)) {
				u := uart.New()
				u.Feed([]byte("in"))
				return u, func() any { return u.Checkpoint() }, func(s any) { u.Restore(s.(uart.Snapshot)) }
			},
			mutate1: []access{
				{uart.RBR, 1, 'x'},
				{uart.IER, 1, 0x5},
			},
			mutate2: []access{
				{uart.RBR, 1, 'y'},
				{uart.IER, 1, 0},
			},
			probes: []access{
				{uart.IER, 1, 0}, {uart.LSR, 1, 0},
			},
		},
		{
			name: "iopmp",
			build: func() (mem.Device, func() any, func(any)) {
				p := iopmp.New(8)
				return p, func() any { return p.Checkpoint() }, func(s any) { p.Restore(s.(iopmp.Snapshot)) }
			},
			mutate1: []access{
				{iopmp.AddrOff, 8, 0x2000_3FFF},
				{iopmp.CfgOff, 8, 0x9B}, // locked NAPOT RW entry 0
			},
			mutate2: []access{
				{iopmp.AddrOff + 8, 8, 0xFFFF},
				// Entry 0 is locked: only Restore can rewrite it, which is
				// exactly what the round-trip must prove.
			},
			probes: []access{
				{iopmp.CfgOff, 8, 0}, {iopmp.AddrOff, 8, 0}, {iopmp.AddrOff + 8, 8, 0},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dev, checkpoint, restore := tc.build()
			apply(t, dev, tc.mutate1)
			want := probe(t, dev, tc.probes)
			snap := checkpoint()

			apply(t, dev, tc.mutate2)
			if got := probe(t, dev, tc.probes); reflect.DeepEqual(got, want) {
				t.Fatalf("mutation did not change probed state %v", got)
			}

			restore(snap)
			if got := probe(t, dev, tc.probes); !reflect.DeepEqual(got, want) {
				t.Fatalf("round-trip: got %v want %v", got, want)
			}
			// The checkpoint of the restored device must equal the original
			// checkpoint (deep state equality, beyond the probed window).
			if again := checkpoint(); !reflect.DeepEqual(again, snap) {
				t.Fatalf("re-checkpoint differs:\n got %+v\nwant %+v", again, snap)
			}
		})
	}
}

// TestUartRestoreReplaysOutput checks the parts of the UART contract the
// MMIO probes cannot see: accumulated transmit output and queued input.
func TestUartRestoreReplaysOutput(t *testing.T) {
	u := uart.New()
	u.Store(uart.RBR, 1, 'h')
	u.Store(uart.RBR, 1, 'i')
	u.Feed([]byte("abc"))
	snap := u.Checkpoint()
	u.Store(uart.RBR, 1, '!')
	u.Load(uart.RBR, 1) // consume 'a'
	u.Restore(snap)
	if u.Output() != "hi" {
		t.Fatalf("output = %q", u.Output())
	}
	if v, _ := u.Load(uart.RBR, 1); v != 'a' {
		t.Fatalf("rx head = %q", v)
	}
}

// TestPlicClaimStateSurvives checks the claimed bitmap — invisible to
// plain register probes — round-trips: a source claimed at checkpoint time
// must still be claimed (and not re-claimable) after restore.
func TestPlicClaimStateSurvives(t *testing.T) {
	p := plic.New(1)
	p.Raise(5)
	p.Store(plic.PriorityOff+4*5, 4, 3)
	p.Store(plic.EnableOff, 4, 1<<5)
	if irq, _ := p.Load(plic.ContextOff+4, 4); irq != 5 {
		t.Fatalf("claim = %d", irq)
	}
	snap := p.Checkpoint()
	p.Store(plic.ContextOff+4, 4, 5) // complete
	p.Restore(snap)
	// Still claimed: a second claim hands out nothing.
	if irq, _ := p.Load(plic.ContextOff+4, 4); irq != 0 {
		t.Fatalf("re-claim after restore = %d, want 0", irq)
	}
	if !reflect.DeepEqual(p.Checkpoint(), snap) {
		t.Fatal("restored checkpoint differs")
	}
}
