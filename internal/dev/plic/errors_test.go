package plic

import "testing"

// TestErrorPaths pins the rejection behavior the bus relies on to raise
// access faults: misaligned or wrong-size accesses, offsets outside any
// register, and writes to read-only state must all return !ok — and a
// rejected or read-only write must leave the device state untouched.
func TestErrorPaths(t *testing.T) {
	p := New(1) // one hart = two contexts (M and S)
	p.Raise(3)
	p.Store(PriorityOff+4*3, 4, 7)

	rejects := []struct {
		name string
		off  uint64
		size int
	}{
		{"misaligned priority", PriorityOff + 2, 4},
		{"wide priority", PriorityOff, 8},
		{"byte priority", PriorityOff, 1},
		{"misaligned pending", PendingOff + 1, 4},
		{"gap after pending", PendingOff + 8, 4},
		{"gap before context", EnableOff + 0x80*2, 4},
		{"context past last", ContextOff + 2*ContextSize, 4},
		{"context hole", ContextOff + 8, 4},
	}
	for _, tc := range rejects {
		if _, ok := p.Load(tc.off, tc.size); ok {
			t.Errorf("%s: Load(%#x,%d) accepted", tc.name, tc.off, tc.size)
		}
		if ok := p.Store(tc.off, tc.size, ^uint64(0)); ok {
			t.Errorf("%s: Store(%#x,%d) accepted", tc.name, tc.off, tc.size)
		}
	}

	// Pending is read-only: the store must be refused and the bitmap keep
	// the raised line.
	if ok := p.Store(PendingOff, 4, 0); ok {
		t.Error("store to read-only pending register accepted")
	}
	if v, _ := p.Load(PendingOff, 4); v != 1<<3 {
		t.Errorf("pending changed by rejected store: %#x", v)
	}
	// And the rejected stores above must not have scribbled on priorities.
	if v, _ := p.Load(PriorityOff+4*3, 4); v != 7 {
		t.Errorf("priority changed by rejected store: %d", v)
	}
}

// TestCompleteOutOfRangeSource: a claim/complete write naming a source
// beyond the implemented range decodes (the register exists) but must not
// touch the claim state.
func TestCompleteOutOfRangeSource(t *testing.T) {
	p := New(1)
	p.Store(PriorityOff+4*3, 4, 5)
	p.Store(EnableOff, 4, 1<<3)
	p.Raise(3)
	if irq, _ := p.Load(ContextOff+4, 4); irq != 3 {
		t.Fatalf("claim = %d, want 3", irq)
	}
	// Complete a bogus source: accepted as a store, no effect.
	if ok := p.Store(ContextOff+4, 4, uint64(MaxSources)+10); !ok {
		t.Error("complete register write rejected")
	}
	// Source 3 is still claimed, so it must not be offered again.
	if irq, _ := p.Load(ContextOff+4, 4); irq != 0 {
		t.Errorf("claimed source re-offered after bogus complete: %d", irq)
	}
}
