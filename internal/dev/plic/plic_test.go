package plic

import (
	"testing"

	"govfm/internal/rv"
)

// enable turns on source irq for context ctx via MMIO.
func enable(t *testing.T, p *Plic, ctx, irq int) {
	t.Helper()
	v, _ := p.Load(EnableOff+uint64(0x80*ctx), 4)
	if !p.Store(EnableOff+uint64(0x80*ctx), 4, v|1<<irq) {
		t.Fatal("enable store failed")
	}
}

func TestClaimCompleteFlow(t *testing.T) {
	p := New(1)
	sCtx := 1
	if !p.Store(PriorityOff+4*5, 4, 7) { // source 5, priority 7
		t.Fatal("priority store failed")
	}
	enable(t, p, sCtx, 5)
	p.Raise(5)

	if p.Pending(0)&(1<<rv.IntSExt) == 0 {
		t.Fatal("SEIP must assert after raise")
	}
	if p.Pending(0)&(1<<rv.IntMExt) != 0 {
		t.Fatal("MEIP must not assert: M context has source disabled")
	}
	// Claim.
	irq, ok := p.Load(ContextOff+uint64(sCtx*ContextSize)+4, 4)
	if !ok || irq != 5 {
		t.Fatalf("claim returned %d", irq)
	}
	// While claimed, line deasserts even though still pending.
	if p.Pending(0)&(1<<rv.IntSExt) != 0 {
		t.Error("SEIP must deassert while claimed")
	}
	// Second claim gets nothing.
	irq2, _ := p.Load(ContextOff+uint64(sCtx*ContextSize)+4, 4)
	if irq2 != 0 {
		t.Errorf("second claim returned %d", irq2)
	}
	p.Lower(5)
	// Complete.
	if !p.Store(ContextOff+uint64(sCtx*ContextSize)+4, 4, 5) {
		t.Fatal("complete failed")
	}
	if p.Pending(0) != 0 {
		t.Error("all quiet after lower+complete")
	}
}

func TestThresholdMasksLowPriority(t *testing.T) {
	p := New(1)
	p.Store(PriorityOff+4*3, 4, 2)
	enable(t, p, 0, 3)
	p.Raise(3)
	if p.Pending(0)&(1<<rv.IntMExt) == 0 {
		t.Fatal("MEIP should assert with threshold 0")
	}
	p.Store(ContextOff, 4, 2) // M context threshold = 2 >= priority
	if p.Pending(0)&(1<<rv.IntMExt) != 0 {
		t.Error("priority <= threshold must be masked")
	}
	p.Store(PriorityOff+4*3, 4, 3)
	if p.Pending(0)&(1<<rv.IntMExt) == 0 {
		t.Error("priority > threshold must assert")
	}
}

func TestHighestPriorityWinsClaim(t *testing.T) {
	p := New(1)
	p.Store(PriorityOff+4*1, 4, 1)
	p.Store(PriorityOff+4*2, 4, 5)
	enable(t, p, 0, 1)
	enable(t, p, 0, 2)
	p.Raise(1)
	p.Raise(2)
	irq, _ := p.Load(ContextOff+4, 4)
	if irq != 2 {
		t.Errorf("claim returned %d, want highest-priority source 2", irq)
	}
}

func TestPendingReadOnlyAndSourceZero(t *testing.T) {
	p := New(1)
	if p.Store(PendingOff, 4, 0xFFFF) {
		t.Error("pending must be read-only")
	}
	p.Raise(0) // reserved source: no-op
	if v, _ := p.Load(PendingOff, 4); v != 0 {
		t.Error("source 0 must never pend")
	}
	p.Store(EnableOff, 4, 0xFFFF_FFFF)
	v, _ := p.Load(EnableOff, 4)
	if v&1 != 0 {
		t.Error("source 0 enable bit must be hardwired 0")
	}
}

func TestRejects(t *testing.T) {
	p := New(1)
	if _, ok := p.Load(PriorityOff, 8); ok {
		t.Error("8-byte access must fail")
	}
	if _, ok := p.Load(PriorityOff+2, 4); ok {
		t.Error("misaligned access must fail")
	}
	if _, ok := p.Load(ContextOff+uint64(5*ContextSize), 4); ok {
		t.Error("out-of-range context must fail")
	}
	if p.Store(ContextOff+uint64(5*ContextSize), 4, 0) {
		t.Error("out-of-range context store must fail")
	}
	if p.Name() != "plic" {
		t.Error("name")
	}
}

func TestPerHartContexts(t *testing.T) {
	p := New(2)
	p.Store(PriorityOff+4*7, 4, 1)
	enable(t, p, 2, 7) // hart 1, M context
	p.Raise(7)
	if p.Pending(0) != 0 {
		t.Error("hart 0 must be quiet")
	}
	if p.Pending(1)&(1<<rv.IntMExt) == 0 {
		t.Error("hart 1 MEIP must assert")
	}
}
