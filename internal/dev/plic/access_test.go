package plic

import (
	"testing"

	"govfm/internal/rv"
)

// TestRegisterMatrix drives the register map through a table of accesses,
// pinning which offsets decode and what they read back.
func TestRegisterMatrix(t *testing.T) {
	tests := []struct {
		name     string
		off      uint64
		val      uint64
		storeOK  bool
		loadOK   bool
		readback uint64
	}{
		{"priority src1", PriorityOff + 4, 5, true, true, 5},
		{"priority src31", PriorityOff + 4*31, 9, true, true, 9},
		{"priority src0 exists", PriorityOff, 1, true, true, 1},
		{"pending read-only", PendingOff, 0xFF, false, true, 0},
		{"enable ctx0", EnableOff, 0xF0, true, true, 0xF0},
		{"enable ctx1", EnableOff + 0x80, 0xA0, true, true, 0xA0},
		{"enable word1 ignored", EnableOff + 4, 0xFF, true, true, 0},
		{"threshold ctx0", ContextOff, 6, true, true, 6},
		{"threshold ctx1", ContextOff + ContextSize, 2, true, true, 2},
		{"claim empty", ContextOff + 4, 0, true, true, 0}, // store = complete(0): no-op
		{"ctx out of range", ContextOff + 2*ContextSize, 1, false, false, 0},
		{"ctx hole", ContextOff + 8, 1, false, false, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := New(1)
			if ok := p.Store(tc.off, 4, tc.val); ok != tc.storeOK {
				t.Fatalf("Store ok=%v, want %v", ok, tc.storeOK)
			}
			v, ok := p.Load(tc.off, 4)
			if ok != tc.loadOK {
				t.Fatalf("Load ok=%v, want %v", ok, tc.loadOK)
			}
			if ok && v != tc.readback {
				t.Fatalf("readback %#x, want %#x", v, tc.readback)
			}
		})
	}
}

// TestPriorityTieBreaksLowestSource: with equal priorities the lowest
// source number wins the claim (the scan must not prefer later sources on
// ties).
func TestPriorityTieBreaksLowestSource(t *testing.T) {
	p := New(1)
	p.Store(PriorityOff+4*3, 4, 4)
	p.Store(PriorityOff+4*9, 4, 4)
	p.Store(EnableOff, 4, 1<<3|1<<9)
	p.Raise(3)
	p.Raise(9)
	if irq, _ := p.Load(ContextOff+4, 4); irq != 3 {
		t.Fatalf("claim returned %d, want lowest tied source 3", irq)
	}
}

// TestLevelSemantics pins the level-triggered source model: a source
// lowered before being claimed simply disappears, and re-raising after
// complete re-asserts.
func TestLevelSemantics(t *testing.T) {
	p := New(1)
	p.Store(PriorityOff+4*2, 4, 1)
	p.Store(EnableOff, 4, 1<<2)

	p.Raise(2)
	if p.Pending(0)&(1<<rv.IntMExt) == 0 {
		t.Fatal("MEIP after raise")
	}
	p.Lower(2) // device deasserts before the hart claims
	if p.Pending(0) != 0 {
		t.Fatal("lowered source must deassert MEIP")
	}
	if irq, _ := p.Load(ContextOff+4, 4); irq != 0 {
		t.Fatalf("claim after lower returned %d, want 0", irq)
	}

	// Full cycle: raise, claim, complete while still raised -> re-asserts.
	p.Raise(2)
	if irq, _ := p.Load(ContextOff+4, 4); irq != 2 {
		t.Fatal("claim")
	}
	p.Store(ContextOff+4, 4, 2) // complete, line still high
	if p.Pending(0)&(1<<rv.IntMExt) == 0 {
		t.Fatal("still-raised source must re-assert after complete")
	}
}

// TestCompleteOfUnclaimedSource: completing a source that was never
// claimed (or an out-of-range one) must not corrupt claim state.
func TestCompleteOfUnclaimedSource(t *testing.T) {
	p := New(1)
	p.Store(PriorityOff+4*1, 4, 1)
	p.Store(EnableOff, 4, 1<<1)
	p.Raise(1)
	if !p.Store(ContextOff+4, 4, 31) { // spurious complete
		t.Fatal("spurious complete must be accepted")
	}
	if !p.Store(ContextOff+4, 4, 99) { // out-of-range irq: ignored
		t.Fatal("out-of-range complete must be accepted")
	}
	if irq, _ := p.Load(ContextOff+4, 4); irq != 1 {
		t.Fatalf("claim after spurious completes returned %d, want 1", irq)
	}
}

// TestMAndSContextsIndependent: the two per-hart contexts have separate
// enables and thresholds over the same pending set.
func TestMAndSContextsIndependent(t *testing.T) {
	p := New(1)
	p.Store(PriorityOff+4*6, 4, 3)
	p.Store(EnableOff, 4, 1<<6)      // M context
	p.Store(EnableOff+0x80, 4, 1<<6) // S context
	p.Store(ContextOff, 4, 5)        // M threshold masks priority 3
	p.Raise(6)
	got := p.Pending(0)
	if got&(1<<rv.IntMExt) != 0 {
		t.Error("M context must be masked by its threshold")
	}
	if got&(1<<rv.IntSExt) == 0 {
		t.Error("S context must assert independently")
	}
	// Claim through S; M stays quiet throughout.
	if irq, _ := p.Load(ContextOff+ContextSize+4, 4); irq != 6 {
		t.Error("S-context claim")
	}
	if p.Pending(0) != 0 {
		t.Error("claimed source gates both contexts")
	}
}
