// Package plic implements a minimal Platform-Level Interrupt Controller
// sufficient for the simulated platforms: per-source priorities, pending
// bits, per-context enables and thresholds, and claim/complete. Contexts
// follow the conventional layout of two per hart: context 2*h is hart h's
// M-mode context, context 2*h+1 its S-mode context.
//
// The paper's monitor has experimental support for a virtual PLIC (§4.3);
// the physical device here lets that path be exercised, although — as on
// the paper's platforms — vendor firmware delegates all external
// interrupts to the OS.
package plic

import "govfm/internal/rv"

// Register map offsets.
const (
	PriorityOff = 0x000000 // 4 bytes per source
	PendingOff  = 0x001000 // bitmap, 4-byte words
	EnableOff   = 0x002000 // 0x80 per context, bitmap words
	ContextOff  = 0x200000 // 0x1000 per context: +0 threshold, +4 claim/complete
	ContextSize = 0x1000
	Size        = 0x400000
	MaxSources  = 32 // sources 1..31; source 0 is reserved
)

// Plic is the platform interrupt controller.
type Plic struct {
	nCtx      int
	priority  [MaxSources]uint32
	pending   uint32
	claimed   uint32
	enable    []uint32 // one word per context
	threshold []uint32

	// Pending() runs before every machine step, so its per-hart result is
	// memoized and invalidated on any state change (register write, claim,
	// Raise/Lower). The cache is gated so a fastpath-off run keeps the
	// original per-step scan as the timing-neutral reference behaviour.
	cacheOn bool
	pend    []uint64 // per hart
	pendOK  []bool

	// Perf counts interrupt servicing operations.
	Perf struct {
		Claims    uint64 // successful claim reads (nonzero irq handed out)
		Completes uint64 // completion writes for a valid source
	}
}

// New returns a PLIC with two contexts (M and S) per hart.
func New(nHarts int) *Plic {
	n := 2 * nHarts
	return &Plic{
		nCtx:      n,
		enable:    make([]uint32, n),
		threshold: make([]uint32, n),
		cacheOn:   true,
		pend:      make([]uint64, nHarts),
		pendOK:    make([]bool, nHarts),
	}
}

// Reset returns the PLIC to power-on state: all priorities zero, nothing
// pending or claimed, every context disabled with threshold zero. The
// cache mode and the Perf counters (host-side) survive.
func (p *Plic) Reset() {
	p.priority = [MaxSources]uint32{}
	p.pending, p.claimed = 0, 0
	for i := range p.enable {
		p.enable[i] = 0
	}
	for i := range p.threshold {
		p.threshold[i] = 0
	}
	p.invalidate()
}

// SetCache enables or disables the Pending memoization (a host-side
// accelerator with no architectural effect).
func (p *Plic) SetCache(on bool) {
	p.cacheOn = on
	p.invalidate()
}

// invalidate drops all memoized Pending results.
func (p *Plic) invalidate() {
	for i := range p.pendOK {
		p.pendOK[i] = false
	}
}

// Name implements mem.Device.
func (p *Plic) Name() string { return "plic" }

// Raise marks source irq (1..31) pending, as a device asserting its line.
func (p *Plic) Raise(irq int) {
	if irq > 0 && irq < MaxSources {
		p.pending |= 1 << irq
		p.invalidate()
	}
}

// Lower clears source irq's pending bit.
func (p *Plic) Lower(irq int) {
	if irq > 0 && irq < MaxSources {
		p.pending &^= 1 << irq
		p.invalidate()
	}
}

// best returns the highest-priority pending+enabled+unclaimed source above
// the context's threshold, or 0.
func (p *Plic) best(ctx int) int {
	bestIrq, bestPrio := 0, p.threshold[ctx]
	avail := p.pending &^ p.claimed & p.enable[ctx]
	for irq := 1; irq < MaxSources; irq++ {
		if avail&(1<<irq) != 0 && p.priority[irq] > bestPrio {
			bestIrq, bestPrio = irq, p.priority[irq]
		}
	}
	return bestIrq
}

// Pending returns the mip bits (MEIP and/or SEIP) the PLIC asserts for hart.
func (p *Plic) Pending(hart int) uint64 {
	if p.cacheOn && hart < len(p.pendOK) && p.pendOK[hart] {
		return p.pend[hart]
	}
	var bitsOut uint64
	if 2*hart < p.nCtx && p.best(2*hart) != 0 {
		bitsOut |= 1 << rv.IntMExt
	}
	if 2*hart+1 < p.nCtx && p.best(2*hart+1) != 0 {
		bitsOut |= 1 << rv.IntSExt
	}
	if p.cacheOn && hart < len(p.pendOK) {
		p.pend[hart] = bitsOut
		p.pendOK[hart] = true
	}
	return bitsOut
}

// Snapshot is a deep copy of the PLIC's architectural register state. The
// Pending memoization (host-side cache) and the Perf counters (host-side
// observability) are not part of the architecture and are not captured.
type Snapshot struct {
	Priority  [MaxSources]uint32
	Pending   uint32
	Claimed   uint32
	Enable    []uint32
	Threshold []uint32
}

// Checkpoint captures the register state for later Restore, on this PLIC
// or on a same-shape PLIC of a forked machine.
func (p *Plic) Checkpoint() Snapshot {
	return Snapshot{
		Priority:  p.priority,
		Pending:   p.pending,
		Claimed:   p.claimed,
		Enable:    append([]uint32(nil), p.enable...),
		Threshold: append([]uint32(nil), p.threshold...),
	}
}

// Restore rewinds the PLIC to a checkpoint taken on a same-shape PLIC and
// drops the Pending memoization.
func (p *Plic) Restore(s Snapshot) {
	p.priority = s.Priority
	p.pending = s.Pending
	p.claimed = s.Claimed
	copy(p.enable, s.Enable)
	copy(p.threshold, s.Threshold)
	p.invalidate()
}

// Load implements mem.Device. All PLIC registers are 32-bit.
func (p *Plic) Load(off uint64, size int) (uint64, bool) {
	if size != 4 || off%4 != 0 {
		return 0, false
	}
	switch {
	case off < PriorityOff+4*MaxSources:
		return uint64(p.priority[off/4]), true
	case off >= PendingOff && off < PendingOff+4:
		return uint64(p.pending), true
	case off >= EnableOff && off < EnableOff+uint64(0x80*p.nCtx):
		ctx := int((off - EnableOff) / 0x80)
		if (off-EnableOff)%0x80 != 0 {
			return 0, true // only word 0 holds sources 0..31
		}
		return uint64(p.enable[ctx]), true
	case off >= ContextOff:
		ctx := int((off - ContextOff) / ContextSize)
		if ctx >= p.nCtx {
			return 0, false
		}
		switch (off - ContextOff) % ContextSize {
		case 0:
			return uint64(p.threshold[ctx]), true
		case 4: // claim
			irq := p.best(ctx)
			if irq != 0 {
				p.Perf.Claims++
				p.claimed |= 1 << irq
				p.invalidate()
			}
			return uint64(irq), true
		}
	}
	return 0, false
}

// Store implements mem.Device.
func (p *Plic) Store(off uint64, size int, v uint64) bool {
	if size != 4 || off%4 != 0 {
		return false
	}
	p.invalidate() // every successful store below can change Pending
	switch {
	case off < PriorityOff+4*MaxSources:
		p.priority[off/4] = uint32(v)
		return true
	case off >= PendingOff && off < PendingOff+4:
		return false // pending is read-only
	case off >= EnableOff && off < EnableOff+uint64(0x80*p.nCtx):
		ctx := int((off - EnableOff) / 0x80)
		if (off-EnableOff)%0x80 == 0 {
			p.enable[ctx] = uint32(v) &^ 1 // source 0 cannot be enabled
		}
		return true
	case off >= ContextOff:
		ctx := int((off - ContextOff) / ContextSize)
		if ctx >= p.nCtx {
			return false
		}
		switch (off - ContextOff) % ContextSize {
		case 0:
			p.threshold[ctx] = uint32(v)
			return true
		case 4: // complete
			irq := int(v)
			if irq > 0 && irq < MaxSources {
				p.Perf.Completes++
				p.claimed &^= 1 << irq
			}
			return true
		}
	}
	return false
}
