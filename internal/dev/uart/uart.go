// Package uart implements a minimal 8250-style console UART: a transmit
// holding register, a receive buffer, and a line status register. Firmware
// and kernels print through it (directly or via the SBI debug console), and
// tests read back the accumulated output.
package uart

import "bytes"

// Register offsets (8250 with byte-wide registers).
const (
	RBR  = 0 // receive buffer (read) / transmit holding (write)
	IER  = 1
	LSR  = 5
	Size = 0x100
)

// LSR bits.
const (
	LSRDataReady = 1 << 0
	LSRTxEmpty   = 1 << 5
)

// Uart is the console device.
type Uart struct {
	tx  bytes.Buffer
	rx  []byte
	ier byte
}

// New returns an idle UART.
func New() *Uart { return &Uart{} }

// Reset returns the UART to power-on state, discarding transmitted output
// and queued input.
func (u *Uart) Reset() {
	u.tx.Reset()
	u.rx = nil
	u.ier = 0
}

// Name implements mem.Device.
func (u *Uart) Name() string { return "uart" }

// Load implements mem.Device.
func (u *Uart) Load(off uint64, size int) (uint64, bool) {
	if size != 1 && size != 4 {
		return 0, false
	}
	switch off {
	case RBR:
		if len(u.rx) == 0 {
			return 0, true
		}
		b := u.rx[0]
		u.rx = u.rx[1:]
		return uint64(b), true
	case IER:
		return uint64(u.ier), true
	case LSR:
		v := uint64(LSRTxEmpty)
		if len(u.rx) > 0 {
			v |= LSRDataReady
		}
		return v, true
	}
	if off < Size {
		return 0, true // unmodelled registers read zero
	}
	return 0, false
}

// Store implements mem.Device.
func (u *Uart) Store(off uint64, size int, v uint64) bool {
	if size != 1 && size != 4 {
		return false
	}
	switch off {
	case RBR:
		u.tx.WriteByte(byte(v))
		return true
	case IER:
		u.ier = byte(v)
		return true
	}
	return off < Size // unmodelled registers swallow writes
}

// Snapshot is a deep copy of the UART's state: accumulated transmit
// output, queued receive bytes, and the interrupt-enable register.
type Snapshot struct {
	Tx  []byte
	Rx  []byte
	Ier byte
}

// Checkpoint captures the UART state for later Restore.
func (u *Uart) Checkpoint() Snapshot {
	return Snapshot{
		Tx:  append([]byte(nil), u.tx.Bytes()...),
		Rx:  append([]byte(nil), u.rx...),
		Ier: u.ier,
	}
}

// Restore rewinds the UART to a checkpoint.
func (u *Uart) Restore(s Snapshot) {
	u.tx.Reset()
	u.tx.Write(s.Tx)
	u.rx = append([]byte(nil), s.Rx...)
	u.ier = s.Ier
}

// Output returns everything transmitted so far.
func (u *Uart) Output() string { return u.tx.String() }

// TxLen returns the number of bytes transmitted so far.
func (u *Uart) TxLen() int { return u.tx.Len() }

// Feed queues input bytes for the receive path.
func (u *Uart) Feed(p []byte) { u.rx = append(u.rx, p...) }
