package uart

import "testing"

func TestTransmit(t *testing.T) {
	u := New()
	for _, b := range []byte("hello") {
		if !u.Store(RBR, 1, uint64(b)) {
			t.Fatal("tx store failed")
		}
	}
	if u.Output() != "hello" {
		t.Errorf("output = %q", u.Output())
	}
	if lsr, _ := u.Load(LSR, 1); lsr&LSRTxEmpty == 0 {
		t.Error("LSR must always report tx empty")
	}
}

func TestReceive(t *testing.T) {
	u := New()
	if lsr, _ := u.Load(LSR, 1); lsr&LSRDataReady != 0 {
		t.Error("no data ready on empty rx")
	}
	if b, ok := u.Load(RBR, 1); !ok || b != 0 {
		t.Error("empty RBR reads zero")
	}
	u.Feed([]byte{'a', 'b'})
	if lsr, _ := u.Load(LSR, 1); lsr&LSRDataReady == 0 {
		t.Error("data ready after feed")
	}
	b1, _ := u.Load(RBR, 1)
	b2, _ := u.Load(RBR, 1)
	if b1 != 'a' || b2 != 'b' {
		t.Errorf("rx order: %c %c", rune(b1), rune(b2))
	}
	if lsr, _ := u.Load(LSR, 1); lsr&LSRDataReady != 0 {
		t.Error("data drained")
	}
}

func TestIERAndUnmodelled(t *testing.T) {
	u := New()
	u.Store(IER, 1, 0x5)
	if v, _ := u.Load(IER, 1); v != 5 {
		t.Error("IER readback")
	}
	if v, ok := u.Load(0x42, 1); !ok || v != 0 {
		t.Error("unmodelled register must read zero")
	}
	if !u.Store(0x42, 1, 9) {
		t.Error("unmodelled register must swallow writes")
	}
	if _, ok := u.Load(Size, 1); ok {
		t.Error("out of range load must fail")
	}
	if u.Store(Size, 1, 0) {
		t.Error("out of range store must fail")
	}
	if _, ok := u.Load(RBR, 2); ok {
		t.Error("2-byte access must fail")
	}
	if u.Name() != "uart" {
		t.Error("name")
	}
}
