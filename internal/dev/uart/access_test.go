package uart

import "testing"

// TestRegisterMatrix pins each register's read/write acceptance across the
// access sizes the bus can issue.
func TestRegisterMatrix(t *testing.T) {
	tests := []struct {
		name string
		off  uint64
		size int
		ok   bool
	}{
		{"rbr byte", RBR, 1, true},
		{"rbr word", RBR, 4, true}, // word-wide register access, as some drivers do
		{"rbr half", RBR, 2, false},
		{"rbr dword", RBR, 8, false},
		{"ier byte", IER, 1, true},
		{"ier word", IER, 4, true},
		{"lsr byte", LSR, 1, true},
		{"unmodelled", 0x20, 1, true},
		{"last in-range", Size - 1, 1, true},
		{"first out-of-range", Size, 1, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			u := New()
			if _, ok := u.Load(tc.off, tc.size); ok != tc.ok {
				t.Fatalf("Load(%#x,%d) ok=%v, want %v", tc.off, tc.size, ok, tc.ok)
			}
			if ok := u.Store(tc.off, tc.size, 0); ok != tc.ok {
				t.Fatalf("Store(%#x,%d) ok=%v, want %v", tc.off, tc.size, ok, tc.ok)
			}
		})
	}
}

// TestWordWideConsole: 4-byte RBR accesses (RISC-V firmware often uses lw/sw
// on byte-wide UART registers) transmit and receive single bytes.
func TestWordWideConsole(t *testing.T) {
	u := New()
	u.Store(RBR, 4, 0x1234_5641) // only the low byte ('A') transmits
	if u.Output() != "A" {
		t.Fatalf("output %q", u.Output())
	}
	u.Feed([]byte{'z'})
	if v, ok := u.Load(RBR, 4); !ok || v != 'z' {
		t.Fatalf("word-wide rx = %#x", v)
	}
}

// TestInterleavedFeedAndDrain: LSR data-ready tracks the rx queue level
// through interleaved feeds and reads, and draining preserves FIFO order.
func TestInterleavedFeedAndDrain(t *testing.T) {
	u := New()
	u.Feed([]byte("ab"))
	b1, _ := u.Load(RBR, 1)
	u.Feed([]byte("c"))
	b2, _ := u.Load(RBR, 1)
	b3, _ := u.Load(RBR, 1)
	if string([]byte{byte(b1), byte(b2), byte(b3)}) != "abc" {
		t.Fatalf("FIFO order broken: %c%c%c", rune(b1), rune(b2), rune(b3))
	}
	if lsr, _ := u.Load(LSR, 1); lsr&LSRDataReady != 0 {
		t.Fatal("data-ready must clear once drained")
	}
	if lsr, _ := u.Load(LSR, 1); lsr&LSRTxEmpty == 0 {
		t.Fatal("tx-empty must hold on an idle transmitter")
	}
	// Reading past the queue returns zeros without faulting.
	if v, ok := u.Load(RBR, 1); !ok || v != 0 {
		t.Fatal("empty RBR must read zero")
	}
}
