package uart

import "testing"

// TestErrorPaths: accesses past the register window or with unsupported
// widths are refused (the bus turns !ok into an access fault); writes to
// the read-only LSR are swallowed without corrupting line status.
func TestErrorPaths(t *testing.T) {
	u := New()

	for _, size := range []int{2, 8} {
		if _, ok := u.Load(RBR, size); ok {
			t.Errorf("Load(RBR,%d) accepted unsupported width", size)
		}
		if ok := u.Store(RBR, size, 'x'); ok {
			t.Errorf("Store(RBR,%d) accepted unsupported width", size)
		}
	}
	for _, off := range []uint64{Size, Size + 4, 1 << 20} {
		if _, ok := u.Load(off, 1); ok {
			t.Errorf("Load(%#x) accepted out-of-range offset", off)
		}
		if ok := u.Store(off, 1, 0); ok {
			t.Errorf("Store(%#x) accepted out-of-range offset", off)
		}
	}

	// A rejected store must not have transmitted anything.
	if u.Output() != "" {
		t.Errorf("rejected stores leaked into tx: %q", u.Output())
	}

	// LSR is read-only in effect: stores are swallowed and line status
	// still reflects reality (tx empty, data ready once fed).
	u.Store(LSR, 1, 0)
	if v, _ := u.Load(LSR, 1); v&LSRTxEmpty == 0 {
		t.Error("LSR store clobbered TxEmpty")
	}
	u.Feed([]byte{'a'})
	u.Store(LSR, 1, 0)
	if v, _ := u.Load(LSR, 1); v&LSRDataReady == 0 {
		t.Error("LSR store clobbered DataReady")
	}
}
