package vfmd

import (
	"strings"
	"testing"
)

func bootSpec() MachineSpec {
	// Offload matters: the stock boot kernel's misaligned accesses are
	// emulated by firmware touching OS memory, which the sandbox blocks
	// unless the monitor offloads that emulation.
	return MachineSpec{
		Profile:     "visionfive2",
		Firmware:    "gosbi",
		Virtualize:  true,
		Offload:     true,
		Policy:      "sandbox",
		WarmupSteps: 1_000,
	}
}

func TestFleetSpawnDeterminism(t *testing.T) {
	f := NewFleet(4)
	defer f.Close()

	origin, err := f.CreateMachine(bootSpec())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if !origin.Monitored {
		t.Fatal("expected a monitored machine")
	}
	if origin.Halted {
		t.Fatalf("origin halted during warmup: %s", origin.HaltReason)
	}

	snap, err := f.Snapshot(origin.ID)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if snap.Pages == 0 {
		t.Fatal("snapshot recorded zero touched pages")
	}

	kids, err := f.Spawn(snap.ID, 2)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if len(kids) != 2 {
		t.Fatalf("spawned %d machines, want 2", len(kids))
	}

	// Children from the same image must replay identically: same halt,
	// same cycle counter, same console transcript.
	var results []*RunResult
	for _, k := range kids {
		j, err := f.Run(k.ID, 3_000_000)
		if err != nil {
			t.Fatalf("run %s: %v", k.ID, err)
		}
		got := j.Wait()
		if got.State != JobDone {
			t.Fatalf("run %s: state %s, error %q", k.ID, got.State, got.Error)
		}
		results = append(results, got.Result.(*RunResult))
	}
	a, b := results[0], results[1]
	if a.Halted != b.Halted || a.HaltReason != b.HaltReason || a.Cycles != b.Cycles {
		t.Fatalf("siblings diverged: %+v vs %+v", a, b)
	}
	if !a.Halted || a.HaltReason != "guest-exit-pass" {
		t.Fatalf("child did not finish the boot: halted=%v reason=%q", a.Halted, a.HaltReason)
	}
	ia, err := f.MachineInfo(kids[0].ID)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	ib, _ := f.MachineInfo(kids[1].ID)
	if ia.Console != ib.Console {
		t.Fatalf("sibling consoles diverged:\n%q\nvs\n%q", ia.Console, ib.Console)
	}
	if !strings.Contains(ia.Console, "boot") && ia.Console == "" {
		t.Fatal("child console empty after full boot")
	}
}

func TestFleetSnapshotSurvivesOriginDivergence(t *testing.T) {
	f := NewFleet(2)
	defer f.Close()

	origin, err := f.CreateMachine(bootSpec())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	snap, err := f.Snapshot(origin.ID)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	// Run the origin forward, then delete it; spawns must still work and
	// reflect image-time state, not the origin's later state.
	oj, err := f.Run(origin.ID, 500_000)
	if err != nil {
		t.Fatalf("origin run: %v", err)
	}
	oj.Wait()
	if err := f.DeleteMachine(origin.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	kids, err := f.Spawn(snap.ID, 1)
	if err != nil {
		t.Fatalf("spawn after origin deletion: %v", err)
	}
	kj, err := f.Run(kids[0].ID, 3_000_000)
	if err != nil {
		t.Fatalf("child run: %v", err)
	}
	got := kj.Wait()
	if got.State != JobDone {
		t.Fatalf("child run: state %s, error %q", got.State, got.Error)
	}
	r := got.Result.(*RunResult)
	if !r.Halted || r.HaltReason != "guest-exit-pass" {
		t.Fatalf("child from orphaned snapshot failed to boot: halted=%v reason=%q", r.Halted, r.HaltReason)
	}
}

func TestFleetErrors(t *testing.T) {
	f := NewFleet(1)
	defer f.Close()

	if _, err := f.CreateMachine(MachineSpec{Profile: "nonesuch"}); err == nil {
		t.Fatal("bogus profile accepted")
	}
	if _, err := f.CreateMachine(MachineSpec{Policy: "nonesuch"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if _, err := f.MachineInfo("m999"); err == nil {
		t.Fatal("missing machine lookup succeeded")
	}
	if _, err := f.Snapshot("m999"); err == nil {
		t.Fatal("snapshot of missing machine succeeded")
	}
	if _, err := f.Spawn("s999", 1); err == nil {
		t.Fatal("spawn from missing snapshot succeeded")
	}
	if _, err := f.Job("j999"); err == nil {
		t.Fatal("missing job lookup succeeded")
	}
	if _, err := f.Campaign(CampaignSpec{Kind: "nonesuch"}); err == nil {
		t.Fatal("bogus campaign kind accepted")
	}
}

func TestFleetCampaignFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	f := NewFleet(2)
	defer f.Close()

	j, err := f.Campaign(CampaignSpec{Kind: "fuzz", Profiles: []string{"visionfive2"}, Seed: 1, Budget: 5_000})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	got := j.Wait()
	if got.State != JobDone {
		t.Fatalf("campaign: state %s, error %q", got.State, got.Error)
	}
	res := got.Result.(*CampaignResult)
	if res.Shards != 1 || res.Cases == 0 || res.Steps == 0 {
		t.Fatalf("implausible campaign result: %+v", res)
	}
	if res.Findings != 0 {
		t.Fatalf("fuzz campaign found %d divergences:\n%s", res.Findings, strings.Join(res.Lines, "\n"))
	}
}
