package vfmd

import (
	"fmt"
	"sync"

	"govfm/internal/inject"
	"govfm/internal/verif/fuzz"
)

// CampaignSpec describes a campaign job: a fuzz (lockstep differential)
// or chaos (fault-injection) sweep run inside the fleet, sharded across
// the worker pool. Chaos campaigns run with fork-spawned rebuilds: each
// combo boots once and every rebuild spawns from the post-warmup image.
type CampaignSpec struct {
	Kind     string   `json:"kind"` // fuzz | chaos
	Profiles []string `json:"profiles,omitempty"`
	Seed     int64    `json:"seed,omitempty"`

	// WallMS is the job's host wall-clock budget in milliseconds (0 =
	// fleet default). Campaign shards poll for cancellation between
	// injected faults and fuzz slices, so an overrunning campaign stops
	// at the next case boundary instead of holding a worker forever.
	WallMS int64 `json:"wall_ms,omitempty"`

	// Fuzz: lockstep step budget per profile shard.
	Budget int `json:"budget,omitempty"`

	// Chaos: faults per combo; Fork defaults to true (cold-boot rebuilds
	// on request, mostly for A/B measurement).
	FaultsPerCombo int      `json:"faults_per_combo,omitempty"`
	ColdBoot       bool     `json:"cold_boot,omitempty"`
	Firmwares      []string `json:"firmwares,omitempty"`
	Policies       []string `json:"policies,omitempty"`
}

// CampaignResult aggregates a campaign job's shards.
type CampaignResult struct {
	Kind     string   `json:"kind"`
	Shards   int      `json:"shards"`
	Cases    int      `json:"cases"`
	Steps    int      `json:"steps"`
	Findings int      `json:"findings"` // divergences (fuzz) or failures (chaos)
	Lines    []string `json:"lines,omitempty"`
}

func (s *CampaignSpec) defaults() {
	if len(s.Profiles) == 0 {
		s.Profiles = []string{"visionfive2", "p550"}
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Budget == 0 {
		s.Budget = 60_000
	}
	if s.FaultsPerCombo == 0 {
		s.FaultsPerCombo = 12
	}
}

// Campaign queues a campaign job with no idempotency key.
func (f *Fleet) Campaign(spec CampaignSpec) (*Job, error) {
	return f.CampaignJob(spec, "")
}

// CampaignJob queues a campaign job. The job itself fans shards out as
// goroutines (one per profile), so a campaign saturates the pool's
// worker without serializing shards; each shard polls the job context so
// a deadline or shutdown stops the whole fan-out.
func (f *Fleet) CampaignJob(spec CampaignSpec, idemKey string) (*Job, error) {
	spec.defaults()
	switch spec.Kind {
	case "fuzz", "chaos":
	default:
		return nil, fmt.Errorf("unknown campaign kind %q (want fuzz or chaos)", spec.Kind)
	}
	return f.submit("campaign:"+spec.Kind, nil, JobLimits{WallMS: spec.WallMS}, idemKey,
		func(jc *JobCtx) (any, error) {
			return runCampaign(jc, spec)
		})
}

// runCampaign executes the shards concurrently. Shards run on their own
// goroutines rather than nested pool jobs — a campaign job already holds
// a worker, and nesting would deadlock a single-worker pool.
func runCampaign(jc *JobCtx, spec CampaignSpec) (*CampaignResult, error) {
	res := &CampaignResult{Kind: spec.Kind}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for i, profile := range spec.Profiles {
		i, profile := i, profile
		wg.Add(1)
		go func() {
			defer wg.Done()
			lines, cases, steps, findings, err := runShard(jc, spec, profile, spec.Seed+int64(i))
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("shard %s: %w", profile, err)
				return
			}
			res.Shards++
			res.Cases += cases
			res.Steps += steps
			res.Findings += findings
			res.Lines = append(res.Lines, lines...)
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := jc.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// fuzzSlice is the cancellation granularity for fuzz shards: the step
// budget is consumed in slices this large, with the job context polled
// between slices.
const fuzzSlice = 10_000

// runShard executes one profile's slice of the campaign.
func runShard(jc *JobCtx, spec CampaignSpec, profile string, seed int64) (lines []string, cases, steps, findings int, err error) {
	switch spec.Kind {
	case "fuzz":
		fz, ferr := fuzz.NewFuzzer([]string{profile}, seed)
		if ferr != nil {
			return nil, 0, 0, 0, ferr
		}
		var found []*fuzz.Finding
		for target := 0; target < spec.Budget; {
			if cerr := jc.Err(); cerr != nil {
				return nil, 0, 0, 0, cerr
			}
			target += fuzzSlice
			if target > spec.Budget {
				target = spec.Budget
			}
			found = append(found, fz.RunBudget(target, 5)...)
		}
		lines = append(lines, fmt.Sprintf("%-12s seed=%d cases=%d steps=%d coverage=%d findings=%d",
			profile, seed, fz.Cases, fz.Steps, fz.Coverage(), len(fz.Findings)))
		for _, fd := range found {
			lines = append(lines, fmt.Sprintf("DIVERGENCE (%s): %s", profile, fd))
		}
		return lines, fz.Cases, fz.Steps, len(fz.Findings), nil
	case "chaos":
		rep, cerr := inject.RunCampaign(inject.CampaignConfig{
			Seed:           seed,
			Platforms:      []string{profile},
			Firmwares:      spec.Firmwares,
			Policies:       spec.Policies,
			FaultsPerCombo: spec.FaultsPerCombo,
			Fork:           !spec.ColdBoot,
			Cancelled:      jc.Cancelled,
		})
		if cerr != nil {
			return nil, 0, 0, 0, cerr
		}
		for i := range rep.Results {
			lines = append(lines, rep.Results[i].String())
		}
		return lines, rep.TotalInjected, 0, rep.TotalFailures, nil
	}
	return nil, 0, 0, 0, fmt.Errorf("unknown campaign kind %q", spec.Kind)
}
