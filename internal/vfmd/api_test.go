package vfmd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestAPIErrorHygiene drives every error path through the full handler
// stack and asserts the contract the client relies on: the right status
// code, Content-Type: application/json, and a decodable {"error": ...}
// body — including the mux's own 404/405 defaults, which the supervision
// middleware rewrites.
func TestAPIErrorHygiene(t *testing.T) {
	f := NewFleet(1)
	defer f.Close()
	srv := httptest.NewServer(NewServer(f))
	defer srv.Close()

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
	}{
		{"malformed machine spec", "POST", "/v1/machines", `{"profile": 42}`, 400},
		{"malformed run body", "POST", "/v1/machines/m1/run", `not json`, 400},
		{"zero steps", "POST", "/v1/machines/m1/run", `{"steps":0}`, 400},
		{"unknown machine", "GET", "/v1/machines/nope", "", 404},
		{"unknown machine run", "POST", "/v1/machines/nope/run", `{"steps":10}`, 404},
		{"unknown machine kill", "POST", "/v1/machines/nope/kill", "", 404},
		{"unknown machine delete", "DELETE", "/v1/machines/nope", "", 404},
		{"unknown machine metrics", "GET", "/v1/machines/nope/metrics", "", 404},
		{"unknown machine trace", "GET", "/v1/machines/nope/trace", "", 404},
		{"unknown snapshot spawn", "POST", "/v1/snapshots/nope/spawn", `{"count":1}`, 400},
		{"unknown job", "GET", "/v1/jobs/nope", "", 404},
		{"unknown job wait", "GET", "/v1/jobs/nope?wait=1", "", 404},
		{"unknown route", "GET", "/v1/nothing/here", "", 404},
		{"method not allowed on machines", "PUT", "/v1/machines", "", 405},
		{"method not allowed on fleet", "POST", "/v1/fleet", "", 405},
		{"bad campaign kind", "POST", "/v1/campaigns", `{"kind":"nope"}`, 400},
		{"malformed campaign body", "POST", "/v1/campaigns", `[`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Errorf("body not decodable JSON: %v", err)
			} else if e.Error == "" {
				t.Errorf("error field empty")
			}
		})
	}
}

// TestAPIQuarantineStatus exercises the 409 path: a permanently fenced
// machine rejects runs with a conflict status.
func TestAPIQuarantineStatus(t *testing.T) {
	f := NewFleet(1)
	defer f.Close()
	srv := httptest.NewServer(NewServer(f))
	defer srv.Close()

	m, err := f.CreateMachine(bootSpec())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	// Booted machines have no origin snapshot: quarantine has no respawn
	// path, so the fence is permanent.
	e, _ := f.machine(m.ID)
	j, _ := f.submit("run", e, JobLimits{}, "", func(jc *JobCtx) (any, error) { panic("crash") })
	j.Wait()

	resp, err := http.Post(srv.URL+"/v1/machines/"+m.ID+"/run", "application/json",
		strings.NewReader(`{"steps":100}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409", resp.StatusCode)
	}
}

// TestAPIFleetStatus checks the control-plane health endpoint shape.
func TestAPIFleetStatus(t *testing.T) {
	f := NewFleet(2)
	defer f.Close()
	srv := httptest.NewServer(NewServer(f))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st.Workers != 2 || st.QueueCap != 256 || st.Closed {
		t.Fatalf("fleet status = %+v", st)
	}
}

// TestAPIBoundedWait checks ?wait=1&timeout_ms returns a non-terminal
// snapshot once the bound expires instead of blocking forever.
func TestAPIBoundedWait(t *testing.T) {
	f := NewFleet(1)
	defer f.Close()
	srv := httptest.NewServer(NewServer(f))
	defer srv.Close()

	release := make(chan struct{})
	defer close(release)
	j, err := f.submit("run", nil, JobLimits{}, "", func(jc *JobCtx) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/" + j.ID + "?wait=1&timeout_ms=50")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got Job
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.State.Terminal() {
		t.Fatalf("state = %s, want non-terminal (job is blocked)", got.State)
	}
}

// TestAPIIdempotencyHeader submits the same run twice with one key and
// expects the same job back.
func TestAPIIdempotencyHeader(t *testing.T) {
	f := NewFleet(1)
	defer f.Close()
	srv := httptest.NewServer(NewServer(f))
	defer srv.Close()

	m, err := f.CreateMachine(bootSpec())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	submit := func() string {
		req, _ := http.NewRequest("POST", srv.URL+"/v1/machines/"+m.ID+"/run",
			strings.NewReader(`{"steps":100}`))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(IdempotencyHeader, "same-key")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var j Job
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
		return j.ID
	}
	id1, id2 := submit(), submit()
	if id1 != id2 {
		t.Fatalf("idempotent resubmit got %s then %s, want same job", id1, id2)
	}
}
