package vfmd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastClient shrinks the retry backoff so tests run in milliseconds.
func fastClient(base string) *Client {
	c := NewClient(base)
	c.Backoff = time.Millisecond
	return c
}

func TestClientRetriesTransient(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			jsonError(w, http.StatusTooManyRequests, "queue full")
			return
		}
		json.NewEncoder(w).Encode([]*MachineInfo{{ID: "m1"}})
	}))
	defer srv.Close()

	c := fastClient(srv.URL)
	ms, err := c.Machines()
	if err != nil {
		t.Fatalf("Machines after transient failures: %v", err)
	}
	if len(ms) != 1 || ms[0].ID != "m1" {
		t.Fatalf("got %+v", ms)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (two 429s then success)", calls.Load())
	}
	retries, dropped := c.Stats()
	if retries != 2 || dropped != 0 {
		t.Fatalf("stats = %d retries / %d dropped, want 2/0", retries, dropped)
	}
}

func TestClientPermanentErrorNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		jsonError(w, http.StatusNotFound, "no machine")
	}))
	defer srv.Close()

	c := fastClient(srv.URL)
	_, err := c.MachineInfo("nope")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 404 {
		t.Fatalf("err = %v, want APIError 404", err)
	}
	if IsTransient(err) {
		t.Fatal("404 classified transient")
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on permanent)", calls.Load())
	}
}

func TestClientExhaustsRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		jsonError(w, http.StatusServiceUnavailable, "draining")
	}))
	defer srv.Close()

	c := fastClient(srv.URL)
	c.MaxAttempts = 3
	_, err := c.Machines()
	if err == nil {
		t.Fatal("want error after exhausting retries")
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 503 {
		t.Fatalf("err = %v, want wrapped APIError 503", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if _, dropped := c.Stats(); dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}

func TestClientRunRetryIsIdempotent(t *testing.T) {
	// The server sheds the first submission; the retry carries the same
	// idempotency key, so a real fleet would dedupe. Assert the key is
	// stable across attempts.
	var keys []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys = append(keys, r.Header.Get(IdempotencyHeader))
		if len(keys) == 1 {
			jsonError(w, http.StatusTooManyRequests, "queue full")
			return
		}
		json.NewEncoder(w).Encode(Job{ID: "j1", State: JobQueued})
	}))
	defer srv.Close()

	c := fastClient(srv.URL)
	j, err := c.Run("m1", 100)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if j.ID != "j1" {
		t.Fatalf("job = %+v", j)
	}
	if len(keys) != 2 {
		t.Fatalf("server saw %d submissions, want 2", len(keys))
	}
	if keys[0] == "" || keys[0] != keys[1] {
		t.Fatalf("idempotency keys across retry = %q, %q — want same non-empty key", keys[0], keys[1])
	}
}

func TestClientNetworkErrorTransient(t *testing.T) {
	// Point at a closed port: every attempt fails at the transport layer,
	// which is transient by definition.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // immediately, so the address refuses connections

	c := fastClient(srv.URL)
	c.MaxAttempts = 2
	_, err := c.Machines()
	if err == nil {
		t.Fatal("want connection error")
	}
	if retries, dropped := c.Stats(); retries != 1 || dropped != 1 {
		t.Fatalf("stats = %d/%d, want 1 retry, 1 dropped", retries, dropped)
	}
}

func TestClientWaitJobBoundedPolls(t *testing.T) {
	// First poll returns a running snapshot (simulating a timeout-bounded
	// wait expiring), second returns terminal; WaitJob must loop.
	var polls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("wait") != "1" || r.URL.Query().Get("timeout_ms") == "" {
			t.Errorf("WaitJob must long-poll with a bound; got %s", r.URL.RawQuery)
		}
		st := JobRunning
		if polls.Add(1) >= 2 {
			st = JobDone
		}
		json.NewEncoder(w).Encode(Job{ID: "j1", State: st})
	}))
	defer srv.Close()

	c := fastClient(srv.URL)
	j, err := c.WaitJob("j1")
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if j.State != JobDone || polls.Load() != 2 {
		t.Fatalf("state=%s polls=%d, want done after 2 polls", j.State, polls.Load())
	}
}

func TestClientAgainstRealServer(t *testing.T) {
	// End-to-end: boot, snapshot, spawn, run with limits, wait, fleet
	// status — through the retrying client.
	f := NewFleet(2)
	defer f.Close()
	srv := httptest.NewServer(NewServer(f))
	defer srv.Close()

	c := fastClient(srv.URL)
	m, err := c.CreateMachine(bootSpec())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	snap, err := c.Snapshot(m.ID)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	kids, err := c.Spawn(snap.ID, 2)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if len(kids) != 2 {
		t.Fatalf("spawned %d, want 2", len(kids))
	}
	j, err := c.RunJob(kids[0].ID, 500, JobLimits{WallMS: 60_000})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	done, err := c.WaitJob(j.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if done.State != JobDone {
		t.Fatalf("job = %s/%q, want done", done.State, done.Error)
	}
	st, err := c.Fleet()
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if st.Machines != 3 {
		t.Fatalf("fleet machines = %d, want 3", st.Machines)
	}
	if retries, _ := c.Stats(); retries != 0 {
		t.Fatalf("unexpected retries against healthy server: %d", retries)
	}
}

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&APIError{Status: 429}, true},
		{&APIError{Status: 503}, true},
		{&APIError{Status: 502}, true},
		{&APIError{Status: 504}, true},
		{&APIError{Status: 400}, false},
		{&APIError{Status: 404}, false},
		{&APIError{Status: 409}, false},
		{&APIError{Status: 500}, false},
		{fmt.Errorf("wrapped: %w", &APIError{Status: 429}), true},
		{errors.New("connection refused"), true},
	}
	for _, tc := range cases {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("IsTransient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
