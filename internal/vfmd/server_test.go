package vfmd

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestServerConcurrentClients hammers the HTTP API with overlapping
// spawn / run / delete / metrics / trace requests from many goroutines.
// Run under -race this is the gate for the fleet's locking story: the
// fleet map lock, the per-machine mutexes, and COW page isolation
// between siblings running concurrently.
func TestServerConcurrentClients(t *testing.T) {
	f := NewFleet(4)
	defer f.Close()
	srv := httptest.NewServer(NewServer(f))
	defer srv.Close()
	c := NewClient(srv.URL)

	origin, err := c.CreateMachine(bootSpec())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	snap, err := c.Snapshot(origin.ID)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	const clients = 6
	type outcome struct {
		cycles uint64
		reason string
	}
	results := make(chan outcome, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			kids, err := c.Spawn(snap.ID, 1)
			if err != nil {
				t.Errorf("client %d: spawn: %v", i, err)
				return
			}
			id := kids[0].ID
			// Run in two overlapping chunks, poking metrics/trace/info
			// between them, then kill the machine.
			for _, steps := range []uint64{1_500_000, 1_500_000} {
				j, err := c.Run(id, steps)
				if err != nil {
					t.Errorf("client %d: run: %v", i, err)
					return
				}
				if _, err := c.Metrics(id); err != nil {
					t.Errorf("client %d: metrics: %v", i, err)
				}
				if _, err := c.Trace(id); err != nil {
					t.Errorf("client %d: trace: %v", i, err)
				}
				done, err := c.WaitJob(j.ID)
				if err != nil {
					t.Errorf("client %d: wait: %v", i, err)
					return
				}
				if done.State != JobDone {
					t.Errorf("client %d: job %s: state %s, error %q", i, j.ID, done.State, done.Error)
					return
				}
			}
			info, err := c.MachineInfo(id)
			if err != nil {
				t.Errorf("client %d: info: %v", i, err)
				return
			}
			results <- outcome{cycles: info.Cycles, reason: info.HaltReason}
			if err := c.DeleteMachine(id); err != nil {
				t.Errorf("client %d: delete: %v", i, err)
			}
		}()
	}

	// Concurrent list + origin metrics traffic while the clients churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 20; k++ {
			if _, err := c.Machines(); err != nil {
				t.Errorf("list: %v", err)
				return
			}
			if _, err := c.Metrics(origin.ID); err != nil {
				t.Errorf("origin metrics: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(results)

	// Every sibling ran in isolation from one image: identical outcomes.
	var first *outcome
	n := 0
	for r := range results {
		r := r
		n++
		if first == nil {
			first = &r
			continue
		}
		if r != *first {
			t.Fatalf("concurrent siblings diverged: %+v vs %+v", r, *first)
		}
	}
	if n != clients {
		t.Fatalf("only %d/%d clients completed", n, clients)
	}
	if first.reason != "guest-exit-pass" {
		t.Fatalf("siblings halted with %q, want guest-exit-pass", first.reason)
	}
}

// TestServerEndpoints exercises each endpoint once, including error
// paths, through real HTTP.
func TestServerEndpoints(t *testing.T) {
	f := NewFleet(2)
	defer f.Close()
	srv := httptest.NewServer(NewServer(f))
	defer srv.Close()
	c := NewClient(srv.URL)

	if _, err := c.MachineInfo("m999"); err == nil {
		t.Fatal("missing machine GET succeeded")
	}
	if err := c.DeleteMachine("m999"); err == nil {
		t.Fatal("missing machine DELETE succeeded")
	}
	if _, err := c.Run("m999", 10); err == nil {
		t.Fatal("run on missing machine succeeded")
	}
	if _, err := c.Job("j999"); err == nil {
		t.Fatal("missing job GET succeeded")
	}
	if _, err := c.CreateMachine(MachineSpec{Profile: "nonesuch"}); err == nil {
		t.Fatal("bogus profile accepted over HTTP")
	}

	m, err := c.CreateMachine(MachineSpec{Profile: "visionfive2", Firmware: "gosbi", WarmupSteps: 1_000})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if m.Monitored {
		t.Fatal("bare machine reported as monitored")
	}
	list, err := c.Machines()
	if err != nil || len(list) != 1 {
		t.Fatalf("list: %v (len %d)", err, len(list))
	}
	if _, err := c.Run(m.ID, 0); err == nil {
		t.Fatal("zero-step run accepted")
	}
	j, err := c.Run(m.ID, 5_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	done, err := c.WaitJob(j.ID)
	if err != nil || done.State != JobDone {
		t.Fatalf("wait: %v, state %v", err, done)
	}
	raw, err := c.Metrics(m.ID)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var metrics map[string]any
	if err := json.Unmarshal(raw, &metrics); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if _, err := c.Trace(m.ID); err != nil {
		t.Fatalf("trace: %v", err)
	}

	snap, err := c.Snapshot(m.ID)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	kids, err := c.Spawn(snap.ID, 3)
	if err != nil || len(kids) != 3 {
		t.Fatalf("spawn: %v (len %d)", err, len(kids))
	}
	for _, k := range kids {
		if k.ID == m.ID {
			t.Fatal("child reused origin ID")
		}
	}
	if err := c.DeleteMachine(m.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := c.Spawn(snap.ID, 1); err != nil {
		t.Fatalf("spawn after origin delete: %v", err)
	}
}
