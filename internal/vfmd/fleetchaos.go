package vfmd

// Fleet chaos: the control-plane analog of the firmware chaos campaign.
// Where internal/inject perturbs a running machine and asserts the
// monitor contains it, RunFleetChaos perturbs the fleet service itself —
// worker panics, stuck and slow jobs, dropped and duplicated requests,
// machines halted mid-job — and asserts the supervision layer contains
// that: the service never crashes, every accepted job reaches a terminal
// state, no machine lock leaks, no request is double-run, and quarantined
// machines are respawned within the cap.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"govfm/internal/inject"
	"govfm/internal/obs"
)

// FleetChaosConfig parameterizes a control-plane chaos campaign.
type FleetChaosConfig struct {
	Seed    int64
	Faults  int // total faults to inject (default 120)
	Workers int // fleet worker-pool width (default 2)
	Pool    int // machines spawned from the shared snapshot (default 3)

	// RespawnCap bounds per-machine respawns (default 3); permanently
	// fenced machines are replaced by fresh spawns, as a real operator
	// would.
	RespawnCap int

	Verbose func(string) // per-fault narration; nil = quiet
}

func (c *FleetChaosConfig) defaults() {
	if c.Faults <= 0 {
		c.Faults = 120
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Pool <= 0 {
		c.Pool = 3
	}
	if c.RespawnCap <= 0 {
		c.RespawnCap = 3
	}
	if c.Verbose == nil {
		c.Verbose = func(string) {}
	}
}

// FleetChaosReport is the campaign outcome plus every invariant checked.
type FleetChaosReport struct {
	Seed    int            `json:"seed"`
	Faults  int            `json:"faults"`
	PerKind map[string]int `json:"per_kind"`

	Jobs        int      `json:"jobs"`
	Terminal    int      `json:"terminal"`
	NonTerminal []string `json:"non_terminal,omitempty"`

	Quarantines  int      `json:"quarantines"`
	Respawns     int      `json:"respawns"`
	Replacements int      `json:"replacements"` // fresh spawns for fenced machines
	LeakedLocks  []string `json:"leaked_locks,omitempty"`

	ClientRetries uint64 `json:"client_retries"`
	ClientDropped uint64 `json:"client_dropped"`
	DroppedResps  int    `json:"dropped_responses"`
	DupedReqs     int    `json:"duplicated_requests"`

	// Failures lists every violated invariant; empty means the control
	// plane survived the campaign.
	Failures []string `json:"failures,omitempty"`
}

func (r *FleetChaosReport) fail(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// armory holds at most one pending chaos behavior, consumed by the fleet
// hook at the matching supervision point. The campaign injects faults
// sequentially, so the single slot is never contended for attribution.
type armory struct {
	mu    sync.Mutex
	point string
	act   func(*Job)
}

func (a *armory) arm(point string, act func(*Job)) {
	a.mu.Lock()
	a.point, a.act = point, act
	a.mu.Unlock()
}

func (a *armory) hook(point string, j *Job) {
	a.mu.Lock()
	var act func(*Job)
	if a.act != nil && a.point == point {
		act, a.act = a.act, nil
	}
	a.mu.Unlock()
	if act != nil {
		act(j)
	}
}

// chaoticTransport attacks the client-server link: it can discard one
// response after the server has processed the request (the client must
// retry, and idempotency must prevent a double-run) or send one request
// twice (the server must dedupe).
type chaoticTransport struct {
	base http.RoundTripper

	mu       sync.Mutex
	dropNext bool
	dupNext  bool
	drops    int
	dups     int
}

var errChaosDropped = errors.New("chaos: response dropped in transit")

func (t *chaoticTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	drop, dup := t.dropNext, t.dupNext
	t.dropNext, t.dupNext = false, false
	t.mu.Unlock()

	if dup {
		// First send: the server processes it; the response is discarded.
		if resp, err := t.base.RoundTrip(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		// Second send of the same request (same idempotency key).
		req2 := req.Clone(req.Context())
		if req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				return nil, err
			}
			req2.Body = body
		}
		t.mu.Lock()
		t.dups++
		t.mu.Unlock()
		return t.base.RoundTrip(req2)
	}

	resp, err := t.base.RoundTrip(req)
	if drop && err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.mu.Lock()
		t.drops++
		t.mu.Unlock()
		return nil, errChaosDropped
	}
	return resp, err
}

// chaosSpec is the machine the campaign farms: the stock monitored boot
// configuration.
func chaosSpec() MachineSpec {
	return MachineSpec{
		Profile: "visionfive2", Firmware: "gosbi",
		Virtualize: true, Offload: true, Policy: "sandbox",
		WarmupSteps: 1_000,
	}
}

// RunFleetChaos stands up an in-process fleet service, attacks its
// control plane with cfg.Faults seeded faults, and verifies the
// supervision invariants. The returned report is non-nil whenever err is
// nil; invariant violations are in report.Failures, not err.
func RunFleetChaos(cfg FleetChaosConfig) (*FleetChaosReport, error) {
	cfg.defaults()
	rep := &FleetChaosReport{Seed: int(cfg.Seed), PerKind: map[string]int{}}
	arm := &armory{}

	o := obs.New(obs.Options{})
	f := NewFleetWith(FleetOptions{
		Workers:    cfg.Workers,
		RespawnCap: cfg.RespawnCap,
		DrainGrace: 2 * time.Second,
		Obs:        o,
		Hook:       arm.hook,
	})
	srv := httptest.NewServer(NewServer(f))
	defer srv.Close()

	ct := &chaoticTransport{base: http.DefaultTransport}
	c := NewClient(srv.URL)
	c.HTTP = &http.Client{Timeout: defaultTimeout, Transport: ct}
	c.Backoff = 5 * time.Millisecond

	// Farm setup: one booted origin, one shared snapshot, a pool of
	// respawnable children.
	origin, err := c.CreateMachine(chaosSpec())
	if err != nil {
		return nil, fmt.Errorf("boot origin: %w", err)
	}
	snap, err := c.Snapshot(origin.ID)
	if err != nil {
		return nil, fmt.Errorf("snapshot origin: %w", err)
	}
	pool, err := c.Spawn(snap.ID, cfg.Pool)
	if err != nil {
		return nil, fmt.Errorf("spawn pool: %w", err)
	}
	ids := make([]string, len(pool))
	for i, m := range pool {
		ids[i] = m.ID
	}

	// expectedJobs counts every distinct successful submission; dropped
	// responses and duplicated requests must not inflate the server's job
	// count past it.
	expectedJobs := 0

	// replaceIfFenced swaps a permanently quarantined machine for a fresh
	// spawn, like an operator replacing a dead node.
	replaceIfFenced := func(i int) {
		info, err := c.MachineInfo(ids[i])
		if err != nil || !info.Quarantined {
			return
		}
		kids, err := c.Spawn(snap.ID, 1)
		if err != nil || len(kids) != 1 {
			rep.fail("replace fenced %s: %v", ids[i], err)
			return
		}
		cfg.Verbose(fmt.Sprintf("  machine %s fenced for good, replaced by %s", ids[i], kids[0].ID))
		ids[i] = kids[0].ID
		rep.Replacements++
	}

	// waitTerminal waits out one job and checks it landed in the state
	// the fault predicts.
	waitTerminal := func(j *Job, wantFailed bool, wantErr string, kind inject.FleetFaultKind) {
		got, err := c.WaitJob(j.ID)
		if err != nil {
			rep.fail("%v: wait %s: %v", kind, j.ID, err)
			return
		}
		if !got.State.Terminal() {
			rep.fail("%v: job %s not terminal: %s", kind, j.ID, got.State)
			return
		}
		if wantFailed && got.State != JobFailed {
			rep.fail("%v: job %s = %s, want failed", kind, j.ID, got.State)
		}
		if !wantFailed && got.State != JobDone {
			rep.fail("%v: job %s = %s/%q, want done", kind, j.ID, got.State, got.Error)
		}
		if wantErr != "" && !errContains(got.Error, wantErr) {
			rep.fail("%v: job %s error %q, want %q", kind, j.ID, got.Error, wantErr)
		}
	}

	plan := inject.NewFleetPlanner(cfg.Seed)
	const runSteps = 4000
	for i := 0; i < cfg.Faults; i++ {
		kind := plan.Next()
		rep.PerKind[kind.String()]++
		rep.Faults++
		mi := plan.Intn(len(ids))
		replaceIfFenced(mi)
		target := ids[mi]
		cfg.Verbose(fmt.Sprintf("fault %3d: %-13s on %s", i+1, kind, target))

		switch kind {
		case inject.FleetWorkerPanic:
			arm.arm("job:start", func(*Job) { panic(fmt.Sprintf("chaos panic #%d", i)) })
			j, err := c.RunJob(target, runSteps, JobLimits{})
			if err != nil {
				rep.fail("%v: submit: %v", kind, err)
				continue
			}
			expectedJobs++
			waitTerminal(j, true, "worker panic", kind)
			replaceIfFenced(mi)

		case inject.FleetStuckJob:
			// Stall far past the wall budget; the deadline check after
			// the stall must kill the job.
			arm.arm("run:chunk", func(*Job) { time.Sleep(150 * time.Millisecond) })
			j, err := c.RunJob(target, runSteps, JobLimits{WallMS: 40})
			if err != nil {
				rep.fail("%v: submit: %v", kind, err)
				continue
			}
			expectedJobs++
			waitTerminal(j, true, ErrDeadline.Error(), kind)
			replaceIfFenced(mi)

		case inject.FleetSlowJob:
			// Stall briefly but inside the budget; the job must finish.
			arm.arm("run:chunk", func(*Job) { time.Sleep(10 * time.Millisecond) })
			j, err := c.RunJob(target, runSteps, JobLimits{WallMS: 30_000})
			if err != nil {
				rep.fail("%v: submit: %v", kind, err)
				continue
			}
			expectedJobs++
			waitTerminal(j, false, "", kind)

		case inject.FleetDropRequest:
			// The server processes the submission but the response dies
			// in transit; the retry carries the same idempotency key.
			ct.mu.Lock()
			ct.dropNext = true
			ct.mu.Unlock()
			j, err := c.RunJob(target, runSteps, JobLimits{})
			if err != nil {
				rep.fail("%v: submit after drop: %v", kind, err)
				continue
			}
			expectedJobs++
			waitTerminal(j, false, "", kind)

		case inject.FleetDupRequest:
			// The submission arrives twice; idempotency must dedupe it to
			// one job (checked globally by the job-count invariant).
			ct.mu.Lock()
			ct.dupNext = true
			ct.mu.Unlock()
			j, err := c.RunJob(target, runSteps, JobLimits{})
			if err != nil {
				rep.fail("%v: submit duplicated: %v", kind, err)
				continue
			}
			expectedJobs++
			waitTerminal(j, false, "", kind)

		case inject.FleetMachineKill:
			// Hold the job at its first chunk, yank the machine, release.
			started := make(chan struct{})
			killed := make(chan struct{})
			arm.arm("run:chunk", func(*Job) { close(started); <-killed })
			j, err := c.RunJob(target, runSteps, JobLimits{})
			if err != nil {
				close(killed)
				rep.fail("%v: submit: %v", kind, err)
				continue
			}
			expectedJobs++
			select {
			case <-started:
				if err := c.KillMachine(target); err != nil {
					rep.fail("%v: kill: %v", kind, err)
				}
			case <-time.After(5 * time.Second):
				rep.fail("%v: job %s never reached a chunk boundary", kind, j.ID)
			}
			close(killed)
			waitTerminal(j, true, ErrMachineKilled.Error(), kind)
			replaceIfFenced(mi)
		}

		// Periodic health probe: the service must keep serving healthy
		// work mid-campaign.
		if (i+1)%10 == 0 {
			replaceIfFenced(mi)
			j, err := c.RunJob(ids[mi], runSteps, JobLimits{})
			if err != nil {
				rep.fail("health probe after fault %d: %v", i+1, err)
				continue
			}
			expectedJobs++
			waitTerminal(j, false, "", inject.FleetFaultKind(-1))
		}
	}

	// Drain, then check the global invariants.
	f.Close()

	st, err := c.Fleet()
	if err != nil {
		rep.fail("final fleet status: %v", err)
	} else {
		rep.Quarantines = len(st.Quarantines)
		for _, q := range st.Quarantines {
			if q.Respawned {
				rep.Respawns++
			}
		}
	}

	jobs := f.JobsSnapshot()
	rep.Jobs = len(jobs)
	for _, j := range jobs {
		if j.State.Terminal() {
			rep.Terminal++
		} else {
			rep.NonTerminal = append(rep.NonTerminal, fmt.Sprintf("%s(%s)", j.ID, j.State))
		}
	}
	if len(rep.NonTerminal) > 0 {
		rep.fail("%d jobs never reached a terminal state: %v", len(rep.NonTerminal), rep.NonTerminal)
	}
	if rep.Jobs != expectedJobs {
		rep.fail("job count %d != %d distinct submissions (drop/dup broke idempotency)", rep.Jobs, expectedJobs)
	}
	rep.LeakedLocks = f.LeakedLocks()
	if len(rep.LeakedLocks) > 0 {
		rep.fail("leaked machine locks: %v", rep.LeakedLocks)
	}
	for _, m := range f.Machines() {
		if m.Respawns > cfg.RespawnCap {
			rep.fail("machine %s respawned %d times, cap %d", m.ID, m.Respawns, cfg.RespawnCap)
		}
	}
	ct.mu.Lock()
	rep.DroppedResps, rep.DupedReqs = ct.drops, ct.dups
	ct.mu.Unlock()
	rep.ClientRetries, rep.ClientDropped = c.Stats()
	return rep, nil
}

func errContains(s, sub string) bool {
	return sub == "" || strings.Contains(s, sub)
}
