// Package vfmd is the virtual-firmware-monitor fleet service: a control
// plane that boots simulated machines, snapshots them into copy-on-write
// images, spawns any number of children from an image (monitor state
// forked alongside), and runs step-budget jobs on a supervised, bounded
// worker pool. cmd/vfmd serves it over HTTP/JSON; cmd/fuzzdiff and
// cmd/chaos can run their campaigns through it as clients, so campaign
// cases spawn from a shared post-boot snapshot instead of each
// re-simulating the boot.
//
// The worker pool is a supervision boundary (supervise.go): jobs carry
// host wall-clock deadlines with cooperative cancellation, a panicking
// simulation becomes a JobFailed with a structured FaultReport instead of
// a dead process, submissions beyond the bounded queue are load-shed, and
// a machine whose jobs keep dying is quarantined and respawned from its
// originating snapshot, capped — the monitor's own firmware containment
// story applied one level up.
//
// Every machine carries its own obs.Observer; per-machine metrics and
// Perfetto traces are served from the API. Machines are serialized by a
// per-machine mutex (a machine runs one job at a time); distinct machines
// run concurrently — COW fork isolation is what makes that safe, and the
// -race server test is the gate.
package vfmd

import (
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"govfm"
	"govfm/internal/hart"
	"govfm/internal/obs"
)

// MachineSpec describes a machine to boot, mirroring govfm.Config in
// JSON-friendly form.
type MachineSpec struct {
	Profile        string `json:"profile,omitempty"`  // visionfive2 (default), p550, rva23
	Harts          int    `json:"harts,omitempty"`    // 0 = profile default
	Firmware       string `json:"firmware,omitempty"` // gosbi (default), minsbi, rtos
	Virtualize     bool   `json:"virtualize,omitempty"`
	Offload        bool   `json:"offload,omitempty"`
	Policy         string `json:"policy,omitempty"` // "", sandbox, keystone, ace
	Containment    bool   `json:"containment,omitempty"`
	WatchdogBudget uint64 `json:"watchdog_budget,omitempty"`
	Sched          string `json:"sched,omitempty"` // seq (default), par
	Quantum        uint64 `json:"quantum,omitempty"`
	IOPMP          bool   `json:"iopmp,omitempty"`

	// WarmupSteps runs the machine this many steps right after boot,
	// before the create call returns — the "boot to steady state once,
	// snapshot, spawn many" idiom in one round trip.
	WarmupSteps uint64 `json:"warmup_steps,omitempty"`
}

// MachineInfo is the externally visible machine state.
type MachineInfo struct {
	ID         string      `json:"id"`
	Spec       MachineSpec `json:"spec"`
	Halted     bool        `json:"halted"`
	HaltReason string      `json:"halt_reason,omitempty"`
	Cycles     uint64      `json:"cycles"`
	Instret    uint64      `json:"instret"`
	Monitored  bool        `json:"monitored"`
	Console    string      `json:"console,omitempty"`

	// Supervision state: quarantine fencing and snapshot respawns.
	Quarantined    bool   `json:"quarantined,omitempty"`
	QuarReason     string `json:"quarantine_reason,omitempty"`
	Strikes        int    `json:"strikes,omitempty"`
	Respawns       int    `json:"respawns,omitempty"`
	OriginSnapshot string `json:"origin_snapshot,omitempty"`
}

// SnapshotInfo describes a stored image.
type SnapshotInfo struct {
	ID      string `json:"id"`
	Machine string `json:"machine"`
	Pages   int    `json:"pages"`
}

// RunResult is a run job's outcome.
type RunResult struct {
	Machine    string `json:"machine"`
	Steps      uint64 `json:"steps"`
	Halted     bool   `json:"halted"`
	HaltReason string `json:"halt_reason,omitempty"`
	Cycles     uint64 `json:"cycles"`
}

// machineEntry is one live machine. mu serializes everything that touches
// the simulation (runs, snapshots, state reads that must be coherent);
// the fleet lock is never held while a machine runs. Quarantine fields
// (strikes, quarantined, respawns) are guarded by the fleet lock.
type machineEntry struct {
	id         string
	spec       MachineSpec
	originSnap string // snapshot this machine was spawned from ("" = booted)

	mu  sync.Mutex
	sys *govfm.System
	obs *obs.Observer

	killed atomic.Bool // mid-job kill flag, checked at chunk boundaries

	// guarded by Fleet.mu:
	strikes     int
	quarantined bool
	quarReason  string
	respawns    int
}

// snapshotEntry is one stored image plus, for monitored machines, a
// never-run template system whose monitor state matches the image exactly
// — the fork source for spawns (the origin machine may run on and diverge
// after the snapshot; the template cannot).
type snapshotEntry struct {
	id       string
	machine  string
	spec     MachineSpec
	img      *hart.Image
	template *govfm.System
	obs      *obs.Observer // origin's observer; spawns inherit its config
	pages    int
}

// spawnOne builds one child system from the image: COW machine spawn,
// forked monitor for monitored origins, fresh observer. Safe to call
// concurrently (the template is never run; forking is read-only on it).
func (s *snapshotEntry) spawnOne() (*govfm.System, *obs.Observer, error) {
	child, err := hart.SpawnFromImage(s.img)
	if err != nil {
		return nil, nil, err
	}
	o := s.obs.Child()
	child.AttachObs(o)
	sys := &govfm.System{Machine: child}
	if s.template != nil {
		sys.Platform = s.template.Platform
		mon, err := s.template.Monitor.Fork(child)
		if err != nil {
			return nil, nil, fmt.Errorf("monitor fork: %w", err)
		}
		mon.AttachObs(o)
		sys.Monitor = mon
	}
	return sys, o, nil
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job is one unit of worker-pool work.
type Job struct {
	ID      string   `json:"id"`
	Kind    string   `json:"kind"`
	State   JobState `json:"state"`
	Error   string   `json:"error,omitempty"`
	Machine string   `json:"machine,omitempty"`
	// Result holds the job's outcome once State is JobDone: *RunResult
	// for run jobs, *CampaignResult for campaign jobs.
	Result any `json:"result,omitempty"`
	// Fault is the supervision layer's structured report when the job was
	// killed (panic, deadline, machine kill) rather than failing cleanly.
	Fault *FaultReport `json:"fault,omitempty"`

	// mu is a pointer so Job value snapshots (which drop fn/done/mu
	// semantics and are plain data) copy cleanly.
	fn   func(jc *JobCtx) (any, error)
	done chan struct{}
	mu   *sync.Mutex

	entry        *machineEntry // machine the job targets, if any
	wall         time.Duration // wall-clock budget (0 = none)
	deadline     time.Time     // set when the job starts running
	containTrips int           // monitor fault records produced by the job
}

func (j *Job) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Job{ID: j.ID, Kind: j.Kind, State: j.State, Error: j.Error,
		Machine: j.Machine, Result: j.Result, Fault: j.Fault}
}

func (j *Job) machineID() string { return j.Machine }

// Wait blocks until the job finishes and returns its terminal snapshot.
func (j *Job) Wait() Job {
	<-j.done
	return j.snapshot()
}

// waitTimeout blocks up to d (forever when d <= 0) and returns the
// current snapshot, terminal or not.
func (j *Job) waitTimeout(d time.Duration) Job {
	if d <= 0 {
		return j.Wait()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-j.done:
	case <-t.C:
	}
	return j.snapshot()
}

// FleetOptions parameterizes a fleet. Zero values select the defaults.
type FleetOptions struct {
	Workers  int // worker-pool width (default: 1)
	QueueCap int // bounded job-queue capacity (default 256)

	// DefaultWall is the per-job wall-clock budget applied when a
	// submission carries none. Zero = unbounded.
	DefaultWall time.Duration

	// MaxSteps caps a run job's step budget at admission. Zero =
	// unbounded.
	MaxSteps uint64

	// QuarantineStrikes is the strike threshold that fences a machine
	// (default 3). Panics, deadline overruns, and mid-job kills weigh a
	// full threshold; containment trips weigh one strike each.
	QuarantineStrikes int

	// RespawnCap bounds how many times a quarantined machine is respawned
	// from its originating snapshot (default 3), mirroring the monitor's
	// firmware restart cap.
	RespawnCap int

	// DrainGrace is how long Close waits for queued and running jobs
	// before forcing cancellation (default 5s).
	DrainGrace time.Duration

	// Obs receives fleet-level counters (job outcomes, quarantines,
	// respawns) and the queue-depth gauge. Nil = no instrumentation.
	Obs *obs.Observer

	// Hook, when non-nil, is invoked at supervision points ("job:start",
	// "run:chunk") inside the worker's panic boundary. The fleet chaos
	// campaign injects worker panics and stuck jobs through it; leave nil
	// in production.
	Hook func(point string, j *Job)
}

func (o *FleetOptions) defaults() {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.QuarantineStrikes <= 0 {
		o.QuarantineStrikes = 3
	}
	if o.RespawnCap <= 0 {
		o.RespawnCap = 3
	}
	if o.DrainGrace <= 0 {
		o.DrainGrace = 5 * time.Second
	}
}

// fleetCounters is the obs wiring; every field is nil-safe when no
// observer is attached.
type fleetCounters struct {
	jobsSubmitted *obs.Counter
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter
	jobsPanic     *obs.Counter
	jobsDeadline  *obs.Counter
	jobsShed      *obs.Counter
	jobsRejected  *obs.Counter
	quarantines   *obs.Counter
	respawns      *obs.Counter
	queueDepth    *obs.Gauge
}

// Fleet is the machine/snapshot/job store plus the supervised worker
// pool.
type Fleet struct {
	opts     FleetOptions
	counters fleetCounters

	mu          sync.Mutex
	machines    map[string]*machineEntry
	snapshots   map[string]*snapshotEntry
	jobs        map[string]*Job
	idem        map[string]string // idempotency key -> job ID
	faults      []FaultReport
	quarantines []QuarantineReport
	nextID      uint64
	closed      bool

	jobQ      chan *Job
	depth     atomic.Int64 // queued jobs (gauge source)
	jobWG     sync.WaitGroup
	wg        sync.WaitGroup
	shedding  atomic.Bool   // forced drain: fail queued jobs instead of running
	cancelAll chan struct{} // closed at forced drain: running jobs stop at next chunk
}

// NewFleet builds a fleet with the given worker-pool width and default
// supervision settings.
func NewFleet(workers int) *Fleet {
	return NewFleetWith(FleetOptions{Workers: workers})
}

// NewFleetWith builds a fleet from explicit options.
func NewFleetWith(opts FleetOptions) *Fleet {
	opts.defaults()
	f := &Fleet{
		opts:      opts,
		machines:  map[string]*machineEntry{},
		snapshots: map[string]*snapshotEntry{},
		jobs:      map[string]*Job{},
		idem:      map[string]string{},
		jobQ:      make(chan *Job, opts.QueueCap),
		cancelAll: make(chan struct{}),
	}
	if o := opts.Obs; o != nil && o.Metrics != nil {
		r := o.Metrics
		f.counters = fleetCounters{
			jobsSubmitted: r.Counter("fleet.jobs.submitted"),
			jobsDone:      r.Counter("fleet.jobs.done"),
			jobsFailed:    r.Counter("fleet.jobs.failed"),
			jobsPanic:     r.Counter("fleet.jobs.panic"),
			jobsDeadline:  r.Counter("fleet.jobs.deadline"),
			jobsShed:      r.Counter("fleet.jobs.shed"),
			jobsRejected:  r.Counter("fleet.jobs.rejected"),
			quarantines:   r.Counter("fleet.quarantines"),
			respawns:      r.Counter("fleet.respawns"),
			queueDepth:    r.Gauge("fleet.queue_depth"),
		}
	}
	for i := 0; i < opts.Workers; i++ {
		f.wg.Add(1)
		go f.worker()
	}
	return f
}

// worker drains the job queue. Everything a job does runs inside
// runGuarded's panic boundary; the worker itself cannot be killed by a
// crashing simulation.
func (f *Fleet) worker() {
	defer f.wg.Done()
	for j := range f.jobQ {
		f.counters.queueDepth.Set(uint64(max64(f.depth.Add(-1), 0)))
		if f.shedding.Load() {
			f.noteJobOutcome(j, ErrShed)
			f.finishJob(j, nil, ErrShed)
			continue
		}
		j.mu.Lock()
		j.State = JobRunning
		j.mu.Unlock()
		if j.wall > 0 {
			j.deadline = time.Now().Add(j.wall)
		}
		res, err := f.runGuarded(j)
		f.noteJobOutcome(j, err)
		f.finishJob(j, res, err)
	}
}

// errPanic marks job failures that were recovered panics; the machine
// involved is quarantined immediately.
var errPanic = errors.New("worker panic")

// runGuarded executes the job function behind the worker panic boundary:
// a panic anywhere below — the simulation, the monitor, a campaign —
// becomes a JobFailed with a structured FaultReport instead of a dead
// process. Deferred unlocks inside the job function run during unwinding,
// so a panicking run job still releases its machine lock.
func (f *Fleet) runGuarded(j *Job) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			fr := &FaultReport{
				Job: j.ID, Kind: j.Kind, Machine: j.machineID(),
				Reason: "panic",
				Panic:  fmt.Sprint(r),
				Stack:  string(debug.Stack()),
			}
			f.recordFault(fr)
			j.mu.Lock()
			j.Fault = fr
			j.mu.Unlock()
			res, err = nil, fmt.Errorf("%w: %v", errPanic, r)
		}
	}()
	if h := f.opts.Hook; h != nil {
		h("job:start", j)
	}
	return j.fn(&JobCtx{job: j, fleet: f})
}

// finishJob transitions a job to its terminal state exactly once.
func (f *Fleet) finishJob(j *Job, res any, err error) {
	j.mu.Lock()
	if j.State.Terminal() {
		j.mu.Unlock()
		return
	}
	if err != nil {
		j.State, j.Error = JobFailed, err.Error()
	} else {
		j.State, j.Result = JobDone, res
	}
	j.mu.Unlock()
	close(j.done)
	f.jobWG.Done()
}

// Close gracefully drains the fleet: intake stops, queued and running
// jobs get DrainGrace to finish, then queued jobs are shed and running
// jobs are cancelled cooperatively. Jobs that ignore cancellation for
// another grace period are force-failed so every job still reaches a
// terminal state.
func (f *Fleet) Close() { f.Shutdown(f.opts.DrainGrace) }

// Shutdown is Close with an explicit grace period.
func (f *Fleet) Shutdown(grace time.Duration) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	if grace <= 0 {
		grace = time.Millisecond
	}

	drained := make(chan struct{})
	go func() { f.jobWG.Wait(); close(drained) }()

	graceful := true
	select {
	case <-drained:
	case <-time.After(grace):
		graceful = false
		f.shedding.Store(true)
		close(f.cancelAll)
		select {
		case <-drained:
			graceful = true
		case <-time.After(grace):
			// Something is ignoring cooperative cancellation (a hook
			// sleeping forever, a hostile job). Force-fail whatever is
			// left so every job is terminal; its worker goroutine is
			// abandoned to the process exit.
			for _, j := range f.nonTerminalJobs() {
				f.counters.jobsShed.Inc()
				f.finishJob(j, nil, fmt.Errorf("orphaned at shutdown: %w", ErrShed))
			}
		}
	}
	close(f.jobQ)
	if graceful {
		f.wg.Wait()
	}
}

func (f *Fleet) nonTerminalJobs() []*Job {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []*Job
	for _, j := range f.jobs {
		j.mu.Lock()
		term := j.State.Terminal()
		j.mu.Unlock()
		if !term {
			out = append(out, j)
		}
	}
	return out
}

func (f *Fleet) newID(prefix string) string {
	f.nextID++
	return fmt.Sprintf("%s%d", prefix, f.nextID)
}

// buildPolicy maps a policy name to an instance (each machine gets its
// own — policies hold per-machine state).
func buildPolicy(name string) (govfm.Policy, error) {
	switch name {
	case "":
		return nil, nil
	case "sandbox":
		return govfm.SandboxPolicy(), nil
	case "keystone":
		return govfm.KeystonePolicy(), nil
	case "ace":
		return govfm.ACEPolicy(), nil
	}
	return nil, fmt.Errorf("unknown policy %q", name)
}

// CreateMachine boots a machine from the spec (plus optional warmup) and
// registers it.
func (f *Fleet) CreateMachine(spec MachineSpec) (*MachineInfo, error) {
	pol, err := buildPolicy(spec.Policy)
	if err != nil {
		return nil, err
	}
	o := obs.New(obs.Options{})
	sys, err := govfm.New(govfm.Config{
		Platform:       govfm.Platform(spec.Profile),
		Harts:          spec.Harts,
		Firmware:       govfm.FirmwareKind(spec.Firmware),
		Virtualize:     spec.Virtualize,
		Offload:        spec.Offload,
		Policy:         pol,
		Containment:    spec.Containment,
		WatchdogBudget: spec.WatchdogBudget,
		Sched:          spec.Sched,
		Quantum:        spec.Quantum,
		IOPMP:          spec.IOPMP,
		Obs:            o,
	})
	if err != nil {
		return nil, err
	}
	if spec.WarmupSteps > 0 {
		sys.Machine.Run(spec.WarmupSteps)
	}
	e := &machineEntry{spec: spec, sys: sys, obs: o}
	f.mu.Lock()
	e.id = f.newID("m")
	f.machines[e.id] = e
	f.mu.Unlock()
	return f.info(e), nil
}

func (f *Fleet) machine(id string) (*machineEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.machines[id]
	if !ok {
		return nil, fmt.Errorf("no machine %q", id)
	}
	return e, nil
}

// info renders the entry's current state, simulation fields under the
// machine lock and supervision fields under the fleet lock (taken in
// sequence, never nested).
func (f *Fleet) info(e *machineEntry) *MachineInfo {
	e.mu.Lock()
	m := e.sys.Machine
	halted, reason := m.Halted()
	info := &MachineInfo{
		ID: e.id, Spec: e.spec,
		Halted: halted, HaltReason: reason,
		Cycles:         m.Harts[0].Cycles,
		Instret:        m.Harts[0].Instret,
		Monitored:      e.sys.Monitor != nil,
		Console:        m.Uart.Output(),
		OriginSnapshot: e.originSnap,
	}
	e.mu.Unlock()
	f.mu.Lock()
	info.Quarantined = e.quarantined
	info.QuarReason = e.quarReason
	info.Strikes = e.strikes
	info.Respawns = e.respawns
	f.mu.Unlock()
	return info
}

// Machines lists the fleet's machines, ID-sorted.
func (f *Fleet) Machines() []*MachineInfo {
	f.mu.Lock()
	entries := make([]*machineEntry, 0, len(f.machines))
	for _, e := range f.machines {
		entries = append(entries, e)
	}
	f.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	out := make([]*MachineInfo, len(entries))
	for i, e := range entries {
		out[i] = f.info(e)
	}
	return out
}

// MachineInfo returns one machine's state.
func (f *Fleet) MachineInfo(id string) (*MachineInfo, error) {
	e, err := f.machine(id)
	if err != nil {
		return nil, err
	}
	return f.info(e), nil
}

// DeleteMachine removes a machine. Its snapshots survive (images are
// self-contained).
func (f *Fleet) DeleteMachine(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.machines[id]; !ok {
		return fmt.Errorf("no machine %q", id)
	}
	delete(f.machines, id)
	return nil
}

// KillMachine flags a machine so its current (or next) run job fails with
// ErrMachineKilled at the next chunk boundary — the control-plane analog
// of yanking a node's power cord. The supervision layer then quarantines
// and respawns the machine. Fault injection uses it; it is also a safe
// administrative stop.
func (f *Fleet) KillMachine(id string) error {
	e, err := f.machine(id)
	if err != nil {
		return err
	}
	e.killed.Store(true)
	return nil
}

// Snapshot captures a machine into a stored image. For monitored machines
// a never-run template fork is captured with it, so later spawns get
// monitor state consistent with the image no matter what the origin does
// afterwards.
func (f *Fleet) Snapshot(machineID string) (*SnapshotInfo, error) {
	e, err := f.machine(machineID)
	if err != nil {
		return nil, err
	}
	if err := f.checkQuarantine(e); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	img, err := e.sys.Machine.Snapshot()
	if err != nil {
		return nil, err
	}
	s := &snapshotEntry{
		machine: machineID,
		spec:    e.spec,
		img:     img,
		obs:     e.obs,
		pages:   img.Mem.Pages(),
	}
	if e.sys.Monitor != nil {
		tm, err := hart.SpawnFromImage(img)
		if err != nil {
			return nil, err
		}
		tmon, err := e.sys.Monitor.Fork(tm)
		if err != nil {
			return nil, fmt.Errorf("monitor fork: %w", err)
		}
		s.template = &govfm.System{Machine: tm, Monitor: tmon, Platform: e.sys.Platform}
	}
	f.mu.Lock()
	s.id = f.newID("s")
	f.snapshots[s.id] = s
	f.mu.Unlock()
	return &SnapshotInfo{ID: s.id, Machine: s.machine, Pages: s.pages}, nil
}

func (f *Fleet) snapshotEntry(id string) (*snapshotEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.snapshots[id]
	if !ok {
		return nil, fmt.Errorf("no snapshot %q", id)
	}
	return s, nil
}

// Spawn builds count machines from a snapshot; each child shares clean
// RAM pages copy-on-write with the image and carries a forked monitor
// when the origin was monitored. Spawned machines record the snapshot as
// their origin, which is what quarantine respawns rebuild from.
func (f *Fleet) Spawn(snapshotID string, count int) ([]*MachineInfo, error) {
	if count < 1 {
		count = 1
	}
	s, err := f.snapshotEntry(snapshotID)
	if err != nil {
		return nil, err
	}
	out := make([]*MachineInfo, 0, count)
	for i := 0; i < count; i++ {
		sys, o, err := s.spawnOne()
		if err != nil {
			return nil, err
		}
		e := &machineEntry{spec: s.spec, sys: sys, obs: o, originSnap: s.id}
		f.mu.Lock()
		e.id = f.newID("m")
		f.machines[e.id] = e
		f.mu.Unlock()
		out = append(out, f.info(e))
	}
	return out, nil
}

// checkQuarantine rejects work aimed at a fenced machine.
func (f *Fleet) checkQuarantine(e *machineEntry) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if e.quarantined {
		return fmt.Errorf("%w: %s (%s)", ErrQuarantined, e.id, e.quarReason)
	}
	return nil
}

// submit queues fn on the worker pool with bounded-queue admission: a
// full queue rejects the submission (ErrQueueFull) instead of blocking —
// load shedding, not backpressure — and an idempotency key returns the
// already-accepted job on duplicate submission instead of double-running.
func (f *Fleet) submit(kind string, e *machineEntry, limits JobLimits, idemKey string, fn func(*JobCtx) (any, error)) (*Job, error) {
	wall := time.Duration(limits.WallMS) * time.Millisecond
	if wall <= 0 {
		wall = f.opts.DefaultWall
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrFleetClosed
	}
	if idemKey != "" {
		if id, ok := f.idem[idemKey]; ok {
			j := f.jobs[id]
			f.mu.Unlock()
			return j, nil
		}
	}
	j := &Job{
		ID: f.newID("j"), Kind: kind, State: JobQueued,
		fn: fn, done: make(chan struct{}), mu: &sync.Mutex{},
		entry: e, wall: wall,
	}
	if e != nil {
		j.Machine = e.id
	}
	select {
	case f.jobQ <- j:
	default:
		f.mu.Unlock()
		f.counters.jobsRejected.Inc()
		return nil, fmt.Errorf("%w (cap %d)", ErrQueueFull, f.opts.QueueCap)
	}
	f.jobs[j.ID] = j
	if idemKey != "" {
		f.idem[idemKey] = j.ID
	}
	f.jobWG.Add(1)
	f.mu.Unlock()
	f.counters.jobsSubmitted.Inc()
	f.counters.queueDepth.Set(uint64(max64(f.depth.Add(1), 0)))
	return j, nil
}

// runChunk is the cooperative-cancellation granularity for run jobs: the
// deadline, kill flag, and shutdown signal are polled between chunks.
const runChunk = 65536

// Run queues a step-budget job for the machine with default limits.
func (f *Fleet) Run(machineID string, steps uint64) (*Job, error) {
	return f.RunJob(machineID, steps, JobLimits{}, "")
}

// RunJob queues a step-budget job with explicit limits and an optional
// idempotency key. The simulated-step budget is the job's sim-time
// deadline; limits carry the host wall-clock one.
func (f *Fleet) RunJob(machineID string, steps uint64, limits JobLimits, idemKey string) (*Job, error) {
	e, err := f.machine(machineID)
	if err != nil {
		return nil, err
	}
	if f.opts.MaxSteps > 0 && steps > f.opts.MaxSteps {
		return nil, fmt.Errorf("%w: %d > %d", ErrStepBudget, steps, f.opts.MaxSteps)
	}
	if err := f.checkQuarantine(e); err != nil {
		return nil, err
	}
	fn := func(jc *JobCtx) (any, error) {
		e.mu.Lock()
		defer e.mu.Unlock()
		m := e.sys.Machine
		preFaults := 0
		if e.sys.Monitor != nil {
			preFaults = e.sys.Monitor.FaultCount
		}
		var done uint64
		for done < steps {
			// The hook (chaos-injected delays) runs first so the deadline
			// and kill flags are checked fresh right after any stall.
			if h := f.opts.Hook; h != nil {
				h("run:chunk", jc.job)
			}
			if err := jc.Err(); err != nil {
				return nil, err
			}
			if e.killed.Load() {
				return nil, ErrMachineKilled
			}
			n := steps - done
			if n > runChunk {
				n = runChunk
			}
			d, halted := m.Run(n)
			done += d
			if halted {
				break
			}
		}
		if e.sys.Monitor != nil && e.sys.Monitor.FaultCount > preFaults {
			jc.job.containTrips = e.sys.Monitor.FaultCount - preFaults
		}
		halted, reason := m.Halted()
		return &RunResult{
			Machine: e.id, Steps: done,
			Halted: halted, HaltReason: reason,
			Cycles: m.Harts[0].Cycles,
		}, nil
	}
	return f.submit("run", e, limits, idemKey, fn)
}

// Job returns a job's current snapshot.
func (f *Fleet) Job(id string) (Job, error) {
	f.mu.Lock()
	j, ok := f.jobs[id]
	f.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("no job %q", id)
	}
	return j.snapshot(), nil
}

// jobHandle returns the live job (internal; Wait support).
func (f *Fleet) jobHandle(id string) (*Job, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	if !ok {
		return nil, fmt.Errorf("no job %q", id)
	}
	return j, nil
}

// Status reports the control plane's own health: queue depth, job-state
// counts, quarantine and fault rings.
func (f *Fleet) Status() *FleetStatus {
	st := &FleetStatus{
		Workers:  f.opts.Workers,
		QueueCap: f.opts.QueueCap,
		Jobs:     map[string]int{},
	}
	f.mu.Lock()
	st.Closed = f.closed
	st.Machines = len(f.machines)
	for _, e := range f.machines {
		if e.quarantined {
			st.Quarantined++
		}
	}
	jobs := make([]*Job, 0, len(f.jobs))
	for _, j := range f.jobs {
		jobs = append(jobs, j)
	}
	st.Quarantines = append(st.Quarantines, f.quarantines...)
	st.Faults = append(st.Faults, f.faults...)
	f.mu.Unlock()
	st.QueueDepth = int(max64(f.depth.Load(), 0))
	for _, j := range jobs {
		j.mu.Lock()
		st.Jobs[string(j.State)]++
		j.mu.Unlock()
	}
	return st
}

// MetricsJSON renders a machine's metrics registry as JSON.
func (f *Fleet) MetricsJSON(id string, w io.Writer) error {
	e, err := f.machine(id)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.obs.Metrics.WriteJSON(w)
}

// TraceJSON renders a machine's event ring as Chrome trace_event JSON.
func (f *Fleet) TraceJSON(id string, w io.Writer) error {
	e, err := f.machine(id)
	if err != nil {
		return err
	}
	e.mu.Lock()
	events := e.obs.Trace.Events()
	e.mu.Unlock()
	return obs.WriteChromeTrace(w, events)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
