// Package vfmd is the virtual-firmware-monitor fleet service: a control
// plane that boots simulated machines, snapshots them into copy-on-write
// images, spawns any number of children from an image (monitor state
// forked alongside), and runs step-budget jobs on a bounded worker pool.
// cmd/vfmd serves it over HTTP/JSON; cmd/fuzzdiff and cmd/chaos can run
// their campaigns through it as clients, so campaign cases spawn from a
// shared post-boot snapshot instead of each re-simulating the boot.
//
// Every machine carries its own obs.Observer; per-machine metrics and
// Perfetto traces are served from the API. Machines are serialized by a
// per-machine mutex (a machine runs one job at a time); distinct machines
// run concurrently — COW fork isolation is what makes that safe, and the
// -race server test is the gate.
package vfmd

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"govfm"
	"govfm/internal/hart"
	"govfm/internal/obs"
)

// MachineSpec describes a machine to boot, mirroring govfm.Config in
// JSON-friendly form.
type MachineSpec struct {
	Profile        string `json:"profile,omitempty"`  // visionfive2 (default), p550, rva23
	Harts          int    `json:"harts,omitempty"`    // 0 = profile default
	Firmware       string `json:"firmware,omitempty"` // gosbi (default), minsbi, rtos
	Virtualize     bool   `json:"virtualize,omitempty"`
	Offload        bool   `json:"offload,omitempty"`
	Policy         string `json:"policy,omitempty"` // "", sandbox, keystone, ace
	Containment    bool   `json:"containment,omitempty"`
	WatchdogBudget uint64 `json:"watchdog_budget,omitempty"`
	Sched          string `json:"sched,omitempty"` // seq (default), par
	Quantum        uint64 `json:"quantum,omitempty"`
	IOPMP          bool   `json:"iopmp,omitempty"`

	// WarmupSteps runs the machine this many steps right after boot,
	// before the create call returns — the "boot to steady state once,
	// snapshot, spawn many" idiom in one round trip.
	WarmupSteps uint64 `json:"warmup_steps,omitempty"`
}

// MachineInfo is the externally visible machine state.
type MachineInfo struct {
	ID         string      `json:"id"`
	Spec       MachineSpec `json:"spec"`
	Halted     bool        `json:"halted"`
	HaltReason string      `json:"halt_reason,omitempty"`
	Cycles     uint64      `json:"cycles"`
	Instret    uint64      `json:"instret"`
	Monitored  bool        `json:"monitored"`
	Console    string      `json:"console,omitempty"`
}

// SnapshotInfo describes a stored image.
type SnapshotInfo struct {
	ID      string `json:"id"`
	Machine string `json:"machine"`
	Pages   int    `json:"pages"`
}

// RunResult is a run job's outcome.
type RunResult struct {
	Machine    string `json:"machine"`
	Steps      uint64 `json:"steps"`
	Halted     bool   `json:"halted"`
	HaltReason string `json:"halt_reason,omitempty"`
	Cycles     uint64 `json:"cycles"`
}

// machineEntry is one live machine. mu serializes everything that touches
// the simulation (runs, snapshots, state reads that must be coherent);
// the fleet lock is never held while a machine runs.
type machineEntry struct {
	id   string
	spec MachineSpec

	mu  sync.Mutex
	sys *govfm.System
	obs *obs.Observer
}

// snapshotEntry is one stored image plus, for monitored machines, a
// never-run template system whose monitor state matches the image exactly
// — the fork source for spawns (the origin machine may run on and diverge
// after the snapshot; the template cannot).
type snapshotEntry struct {
	id       string
	machine  string
	spec     MachineSpec
	img      *hart.Image
	template *govfm.System
	obs      *obs.Observer // origin's observer; spawns inherit its config
	pages    int
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job is one unit of worker-pool work.
type Job struct {
	ID    string   `json:"id"`
	Kind  string   `json:"kind"`
	State JobState `json:"state"`
	Error string   `json:"error,omitempty"`
	// Result holds the job's outcome once State is JobDone: *RunResult
	// for run jobs, *CampaignResult for campaign jobs.
	Result any `json:"result,omitempty"`

	// mu is a pointer so Job value snapshots (which drop fn/done/mu
	// semantics and are plain data) copy cleanly.
	fn   func() (any, error)
	done chan struct{}
	mu   *sync.Mutex
}

func (j *Job) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Job{ID: j.ID, Kind: j.Kind, State: j.State, Error: j.Error, Result: j.Result}
}

// Wait blocks until the job finishes and returns its terminal snapshot.
func (j *Job) Wait() Job {
	<-j.done
	return j.snapshot()
}

// Fleet is the machine/snapshot/job store plus the worker pool.
type Fleet struct {
	mu        sync.Mutex
	machines  map[string]*machineEntry
	snapshots map[string]*snapshotEntry
	jobs      map[string]*Job
	nextID    uint64

	jobQ   chan *Job
	wg     sync.WaitGroup
	closed bool
}

// NewFleet builds a fleet with the given worker-pool width (minimum 1).
func NewFleet(workers int) *Fleet {
	if workers < 1 {
		workers = 1
	}
	f := &Fleet{
		machines:  map[string]*machineEntry{},
		snapshots: map[string]*snapshotEntry{},
		jobs:      map[string]*Job{},
		jobQ:      make(chan *Job, 256),
	}
	for i := 0; i < workers; i++ {
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			for j := range f.jobQ {
				j.mu.Lock()
				j.State = JobRunning
				j.mu.Unlock()
				res, err := j.fn()
				j.mu.Lock()
				if err != nil {
					j.State, j.Error = JobFailed, err.Error()
				} else {
					j.State, j.Result = JobDone, res
				}
				j.mu.Unlock()
				close(j.done)
			}
		}()
	}
	return f
}

// Close drains the worker pool. Queued jobs still run; new submissions
// fail.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	close(f.jobQ)
	f.wg.Wait()
}

func (f *Fleet) newID(prefix string) string {
	f.nextID++
	return fmt.Sprintf("%s%d", prefix, f.nextID)
}

// buildPolicy maps a policy name to an instance (each machine gets its
// own — policies hold per-machine state).
func buildPolicy(name string) (govfm.Policy, error) {
	switch name {
	case "":
		return nil, nil
	case "sandbox":
		return govfm.SandboxPolicy(), nil
	case "keystone":
		return govfm.KeystonePolicy(), nil
	case "ace":
		return govfm.ACEPolicy(), nil
	}
	return nil, fmt.Errorf("unknown policy %q", name)
}

// CreateMachine boots a machine from the spec (plus optional warmup) and
// registers it.
func (f *Fleet) CreateMachine(spec MachineSpec) (*MachineInfo, error) {
	pol, err := buildPolicy(spec.Policy)
	if err != nil {
		return nil, err
	}
	o := obs.New(obs.Options{})
	sys, err := govfm.New(govfm.Config{
		Platform:       govfm.Platform(spec.Profile),
		Harts:          spec.Harts,
		Firmware:       govfm.FirmwareKind(spec.Firmware),
		Virtualize:     spec.Virtualize,
		Offload:        spec.Offload,
		Policy:         pol,
		Containment:    spec.Containment,
		WatchdogBudget: spec.WatchdogBudget,
		Sched:          spec.Sched,
		Quantum:        spec.Quantum,
		IOPMP:          spec.IOPMP,
		Obs:            o,
	})
	if err != nil {
		return nil, err
	}
	if spec.WarmupSteps > 0 {
		sys.Machine.Run(spec.WarmupSteps)
	}
	e := &machineEntry{spec: spec, sys: sys, obs: o}
	f.mu.Lock()
	e.id = f.newID("m")
	f.machines[e.id] = e
	f.mu.Unlock()
	return e.info(), nil
}

func (f *Fleet) machine(id string) (*machineEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.machines[id]
	if !ok {
		return nil, fmt.Errorf("no machine %q", id)
	}
	return e, nil
}

// info renders the entry's current state; callers need not hold e.mu.
func (e *machineEntry) info() *MachineInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.sys.Machine
	halted, reason := m.Halted()
	return &MachineInfo{
		ID: e.id, Spec: e.spec,
		Halted: halted, HaltReason: reason,
		Cycles:    m.Harts[0].Cycles,
		Instret:   m.Harts[0].Instret,
		Monitored: e.sys.Monitor != nil,
		Console:   m.Uart.Output(),
	}
}

// Machines lists the fleet's machines, ID-sorted.
func (f *Fleet) Machines() []*MachineInfo {
	f.mu.Lock()
	entries := make([]*machineEntry, 0, len(f.machines))
	for _, e := range f.machines {
		entries = append(entries, e)
	}
	f.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	out := make([]*MachineInfo, len(entries))
	for i, e := range entries {
		out[i] = e.info()
	}
	return out
}

// MachineInfo returns one machine's state.
func (f *Fleet) MachineInfo(id string) (*MachineInfo, error) {
	e, err := f.machine(id)
	if err != nil {
		return nil, err
	}
	return e.info(), nil
}

// DeleteMachine removes a machine. Its snapshots survive (images are
// self-contained).
func (f *Fleet) DeleteMachine(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.machines[id]; !ok {
		return fmt.Errorf("no machine %q", id)
	}
	delete(f.machines, id)
	return nil
}

// Snapshot captures a machine into a stored image. For monitored machines
// a never-run template fork is captured with it, so later spawns get
// monitor state consistent with the image no matter what the origin does
// afterwards.
func (f *Fleet) Snapshot(machineID string) (*SnapshotInfo, error) {
	e, err := f.machine(machineID)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	img, err := e.sys.Machine.Snapshot()
	if err != nil {
		return nil, err
	}
	s := &snapshotEntry{
		machine: machineID,
		spec:    e.spec,
		img:     img,
		obs:     e.obs,
		pages:   img.Mem.Pages(),
	}
	if e.sys.Monitor != nil {
		tm, err := hart.SpawnFromImage(img)
		if err != nil {
			return nil, err
		}
		tmon, err := e.sys.Monitor.Fork(tm)
		if err != nil {
			return nil, fmt.Errorf("monitor fork: %w", err)
		}
		s.template = &govfm.System{Machine: tm, Monitor: tmon, Platform: e.sys.Platform}
	}
	f.mu.Lock()
	s.id = f.newID("s")
	f.snapshots[s.id] = s
	f.mu.Unlock()
	return &SnapshotInfo{ID: s.id, Machine: s.machine, Pages: s.pages}, nil
}

func (f *Fleet) snapshotEntry(id string) (*snapshotEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.snapshots[id]
	if !ok {
		return nil, fmt.Errorf("no snapshot %q", id)
	}
	return s, nil
}

// Spawn builds count machines from a snapshot; each child shares clean
// RAM pages copy-on-write with the image and carries a forked monitor
// when the origin was monitored.
func (f *Fleet) Spawn(snapshotID string, count int) ([]*MachineInfo, error) {
	if count < 1 {
		count = 1
	}
	s, err := f.snapshotEntry(snapshotID)
	if err != nil {
		return nil, err
	}
	out := make([]*MachineInfo, 0, count)
	for i := 0; i < count; i++ {
		child, err := hart.SpawnFromImage(s.img)
		if err != nil {
			return nil, err
		}
		o := s.obs.Child()
		child.AttachObs(o)
		sys := &govfm.System{Machine: child}
		if s.template != nil {
			sys.Platform = s.template.Platform
			sys.Monitor, err = s.template.Monitor.Fork(child)
			if err != nil {
				return nil, fmt.Errorf("monitor fork: %w", err)
			}
			sys.Monitor.AttachObs(o)
		}
		e := &machineEntry{spec: s.spec, sys: sys, obs: o}
		f.mu.Lock()
		e.id = f.newID("m")
		f.machines[e.id] = e
		f.mu.Unlock()
		out = append(out, e.info())
	}
	return out, nil
}

// submit queues fn on the worker pool.
func (f *Fleet) submit(kind string, fn func() (any, error)) (*Job, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, fmt.Errorf("fleet is shut down")
	}
	j := &Job{ID: f.newID("j"), Kind: kind, State: JobQueued, fn: fn, done: make(chan struct{}), mu: &sync.Mutex{}}
	f.jobs[j.ID] = j
	f.mu.Unlock()
	f.jobQ <- j
	return j, nil
}

// Run queues a step-budget job for the machine.
func (f *Fleet) Run(machineID string, steps uint64) (*Job, error) {
	e, err := f.machine(machineID)
	if err != nil {
		return nil, err
	}
	return f.submit("run", func() (any, error) {
		e.mu.Lock()
		defer e.mu.Unlock()
		done, _ := e.sys.Machine.Run(steps)
		halted, reason := e.sys.Machine.Halted()
		return &RunResult{
			Machine: e.id, Steps: done,
			Halted: halted, HaltReason: reason,
			Cycles: e.sys.Machine.Harts[0].Cycles,
		}, nil
	})
}

// Job returns a job's current snapshot.
func (f *Fleet) Job(id string) (Job, error) {
	f.mu.Lock()
	j, ok := f.jobs[id]
	f.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("no job %q", id)
	}
	return j.snapshot(), nil
}

// jobHandle returns the live job (internal; Wait support).
func (f *Fleet) jobHandle(id string) (*Job, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	if !ok {
		return nil, fmt.Errorf("no job %q", id)
	}
	return j, nil
}

// MetricsJSON renders a machine's metrics registry as JSON.
func (f *Fleet) MetricsJSON(id string, w io.Writer) error {
	e, err := f.machine(id)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.obs.Metrics.WriteJSON(w)
}

// TraceJSON renders a machine's event ring as Chrome trace_event JSON.
func (f *Fleet) TraceJSON(id string, w io.Writer) error {
	e, err := f.machine(id)
	if err != nil {
		return err
	}
	e.mu.Lock()
	events := e.obs.Trace.Events()
	e.mu.Unlock()
	return obs.WriteChromeTrace(w, events)
}
