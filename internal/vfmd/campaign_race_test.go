package vfmd

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCampaignSpawnSnapshot drives a campaign, machine spawns,
// snapshots, and status reads against the same fleet concurrently. Run
// under -race (CI does): the assertion is freedom from data races between
// the campaign's shard goroutines and the fleet's machine/snapshot
// bookkeeping.
func TestConcurrentCampaignSpawnSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	f := NewFleet(4)
	defer f.Close()

	origin, err := f.CreateMachine(bootSpec())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	snap, err := f.Snapshot(origin.ID)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	cj, err := f.Campaign(CampaignSpec{Kind: "fuzz", Profiles: []string{"visionfive2"}, Budget: 20_000})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				kids, err := f.Spawn(snap.ID, 1)
				if err != nil {
					errs <- err
					return
				}
				if _, err := f.Snapshot(kids[0].ID); err != nil {
					errs <- err
					return
				}
				j, err := f.Run(kids[0].ID, 300)
				if err != nil {
					errs <- err
					return
				}
				if got := j.Wait(); got.State != JobDone {
					errs <- &APIError{Status: 500, Msg: "run " + got.ID + " " + got.Error}
					return
				}
				f.Status()
				f.Machines()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent op: %v", err)
	}

	if got := cj.Wait(); got.State != JobDone {
		t.Fatalf("campaign = %s/%q, want done", got.State, got.Error)
	}
	if leaked := f.LeakedLocks(); len(leaked) != 0 {
		t.Fatalf("leaked machine locks: %v", leaked)
	}
}

// TestFailingJobReleasesMachineLock is the lock-leak regression test: a
// job that panics while holding its machine's mutex must release it
// during unwinding (the deferred unlock runs before the worker's recover),
// leaving the machine usable.
func TestFailingJobReleasesMachineLock(t *testing.T) {
	f := NewFleet(1)
	defer f.Close()
	_, child, _ := spawnChild(t, f)
	e, err := f.machine(child.ID)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}

	j, err := f.submit("run", e, JobLimits{}, "", func(jc *JobCtx) (any, error) {
		e.mu.Lock()
		defer e.mu.Unlock()
		panic("crash while holding the machine lock")
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got := j.Wait()
	if got.State != JobFailed || !strings.Contains(got.Error, "worker panic") {
		t.Fatalf("got %s/%q, want failed/panic", got.State, got.Error)
	}
	if leaked := f.LeakedLocks(); len(leaked) != 0 {
		t.Fatalf("machine lock leaked across panic: %v", leaked)
	}
	// The machine was respawned from its snapshot and must run again.
	j2, err := f.Run(child.ID, 400)
	if err != nil {
		t.Fatalf("run after panic: %v", err)
	}
	if got := j2.Wait(); got.State != JobDone {
		t.Fatalf("run after panic = %s/%q, want done", got.State, got.Error)
	}
}

// TestDeadlineReleasesMachineLock: same invariant for the deadline path —
// cooperative cancellation returns through the deferred unlock.
func TestDeadlineReleasesMachineLock(t *testing.T) {
	f := NewFleet(1)
	defer f.Close()
	_, child, _ := spawnChild(t, f)

	// Stall each chunk so a tight wall budget trips mid-run.
	stall := make(chan struct{})
	f.opts.Hook = func(point string, j *Job) {
		if point == "run:chunk" {
			<-stall
		}
	}
	j, err := f.RunJob(child.ID, 50_000_000, JobLimits{WallMS: 30}, "")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Hold the first chunk past the wall budget, then release; the
	// deadline check right after the stall kills the job.
	go func() {
		time.Sleep(60 * time.Millisecond)
		close(stall)
	}()
	got := j.Wait()
	if got.State != JobFailed || !strings.Contains(got.Error, ErrDeadline.Error()) {
		t.Fatalf("got %s/%q, want failed/deadline", got.State, got.Error)
	}
	if leaked := f.LeakedLocks(); len(leaked) != 0 {
		t.Fatalf("machine lock leaked across deadline kill: %v", leaked)
	}
}
