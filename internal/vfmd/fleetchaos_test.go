package vfmd

import "testing"

// TestFleetChaosCampaign runs a short control-plane chaos campaign (two
// full decks of fault kinds) and requires every supervision invariant to
// hold. CI runs this package under -race, which also makes it the "no
// lock leaked" data-race gate.
func TestFleetChaosCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign in -short mode")
	}
	rep, err := RunFleetChaos(FleetChaosConfig{Seed: 42, Faults: 24, Pool: 2})
	if err != nil {
		t.Fatalf("campaign setup: %v", err)
	}
	for _, f := range rep.Failures {
		t.Errorf("invariant violated: %s", f)
	}
	if rep.Faults != 24 {
		t.Fatalf("injected %d faults, want 24", rep.Faults)
	}
	// The deck planner guarantees full kind coverage in 24 draws.
	for kind, n := range rep.PerKind {
		if n == 0 {
			t.Errorf("fault kind %s never injected", kind)
		}
	}
	if len(rep.PerKind) != 6 {
		t.Errorf("covered %d fault kinds, want 6: %v", len(rep.PerKind), rep.PerKind)
	}
	if rep.Terminal != rep.Jobs {
		t.Errorf("%d/%d jobs terminal", rep.Terminal, rep.Jobs)
	}
	if rep.DroppedResps == 0 || rep.DupedReqs == 0 {
		t.Errorf("transport chaos not exercised: %d drops, %d dups", rep.DroppedResps, rep.DupedReqs)
	}
	if rep.ClientRetries == 0 {
		t.Errorf("dropped responses should have forced client retries")
	}
	if rep.Quarantines == 0 || rep.Respawns == 0 {
		t.Errorf("quarantine machinery not exercised: %d quarantines, %d respawns", rep.Quarantines, rep.Respawns)
	}
}

// TestFleetChaosDeterministicPlan: same seed, same fault sequence — the
// per-kind histogram must match exactly across runs.
func TestFleetChaosDeterministicPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign in -short mode")
	}
	a, err := RunFleetChaos(FleetChaosConfig{Seed: 7, Faults: 12, Pool: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleetChaos(FleetChaosConfig{Seed: 7, Faults: 12, Pool: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k, n := range a.PerKind {
		if b.PerKind[k] != n {
			t.Errorf("kind %s: %d vs %d across same-seed runs", k, n, b.PerKind[k])
		}
	}
}
