package vfmd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a vfmd server. The zero HTTPClient defaults to a
// client with no timeout — campaign jobs block on /v1/jobs/{id}?wait=1
// for as long as the campaign runs.
type Client struct {
	Base string // e.g. http://127.0.0.1:9400
	HTTP *http.Client
}

// NewClient builds a client for the given base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: &http.Client{}}
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTP
	if hc == nil {
		hc = &http.Client{}
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s", method, path, e.Error)
		}
		return fmt.Errorf("%s %s: HTTP %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// CreateMachine boots a machine on the server.
func (c *Client) CreateMachine(spec MachineSpec) (*MachineInfo, error) {
	var info MachineInfo
	if err := c.do("POST", "/v1/machines", spec, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Machines lists the server's machines.
func (c *Client) Machines() ([]*MachineInfo, error) {
	var out []*MachineInfo
	if err := c.do("GET", "/v1/machines", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// MachineInfo fetches one machine's state.
func (c *Client) MachineInfo(id string) (*MachineInfo, error) {
	var info MachineInfo
	if err := c.do("GET", "/v1/machines/"+id, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// DeleteMachine removes a machine.
func (c *Client) DeleteMachine(id string) error {
	return c.do("DELETE", "/v1/machines/"+id, nil, nil)
}

// Snapshot captures a machine into a server-side COW image.
func (c *Client) Snapshot(machineID string) (*SnapshotInfo, error) {
	var info SnapshotInfo
	if err := c.do("POST", "/v1/machines/"+machineID+"/snapshot", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Spawn builds count machines from a snapshot.
func (c *Client) Spawn(snapshotID string, count int) ([]*MachineInfo, error) {
	var out []*MachineInfo
	req := struct {
		Count int `json:"count"`
	}{count}
	if err := c.do("POST", "/v1/snapshots/"+snapshotID+"/spawn", req, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Run queues a step-budget job and returns its initial snapshot.
func (c *Client) Run(machineID string, steps uint64) (*Job, error) {
	var j Job
	req := struct {
		Steps uint64 `json:"steps"`
	}{steps}
	if err := c.do("POST", "/v1/machines/"+machineID+"/run", req, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Campaign queues a fuzz/chaos campaign job.
func (c *Client) Campaign(spec CampaignSpec) (*Job, error) {
	var j Job
	if err := c.do("POST", "/v1/campaigns", spec, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Job fetches a job's current state.
func (c *Client) Job(id string) (*Job, error) {
	var j Job
	if err := c.do("GET", "/v1/jobs/"+id, nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// WaitJob blocks server-side until the job reaches a terminal state,
// falling back to polling if the blocking request fails transiently.
func (c *Client) WaitJob(id string) (*Job, error) {
	var j Job
	if err := c.do("GET", "/v1/jobs/"+id+"?wait=1", nil, &j); err == nil {
		return &j, nil
	}
	for {
		jj, err := c.Job(id)
		if err != nil {
			return nil, err
		}
		if jj.State == JobDone || jj.State == JobFailed {
			return jj, nil
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// Metrics fetches a machine's metrics registry JSON.
func (c *Client) Metrics(id string) (json.RawMessage, error) {
	var raw json.RawMessage
	if err := c.do("GET", "/v1/machines/"+id+"/metrics", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Trace fetches a machine's Chrome trace_event JSON.
func (c *Client) Trace(id string) (json.RawMessage, error) {
	var raw json.RawMessage
	if err := c.do("GET", "/v1/machines/"+id+"/trace", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// CampaignResultOf decodes a finished campaign job's result payload.
func CampaignResultOf(j *Job) (*CampaignResult, error) {
	if j.State == JobFailed {
		return nil, fmt.Errorf("campaign failed: %s", j.Error)
	}
	if j.State != JobDone {
		return nil, fmt.Errorf("campaign not finished (state %s)", j.State)
	}
	b, err := json.Marshal(j.Result)
	if err != nil {
		return nil, err
	}
	var res CampaignResult
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, err
	}
	return &res, nil
}
