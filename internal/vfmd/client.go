package vfmd

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// APIError is a non-2xx response from the server, preserving the status
// code so callers (and the retry loop) can classify it.
type APIError struct {
	Status int
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.Status, e.Msg)
}

// Transient reports whether the failure is worth retrying: load shedding
// (429), a draining or briefly absent server (502/503/504), or a
// server-side timeout (408).
func (e *APIError) Transient() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout,
		http.StatusRequestTimeout:
		return true
	}
	return false
}

// IsTransient classifies an error from a Client call: true for network
// errors (connection refused/reset, client-side timeout) and transient
// API errors, false for permanent API errors (400/404/409...) and
// everything else. Permanent errors must not be retried; transient ones
// are safe to retry when the request is idempotent.
func IsTransient(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Transient()
	}
	// Anything that never produced an HTTP status is a transport-level
	// failure: DNS, refused connection, reset, timeout. All retryable.
	return err != nil
}

// Client talks to a vfmd server with production HTTP hygiene: every
// request carries a timeout, response bodies are always drained and
// closed (keep-alive reuse), errors are typed transient vs. permanent,
// transient failures are retried with jittered exponential backoff, and
// job submissions carry idempotency keys so a retried POST never
// double-runs a job.
type Client struct {
	Base string // e.g. http://127.0.0.1:9400

	// HTTP serves ordinary calls; its timeout bounds each attempt
	// (default 30s). WaitHTTP serves long-poll job waits and out-waits
	// the server-side bound (default 75s).
	HTTP     *http.Client
	WaitHTTP *http.Client

	// MaxAttempts bounds retries per call (default 4: one try + three
	// retries). Backoff is the first retry delay (default 100ms),
	// doubling per attempt with ±50% jitter.
	MaxAttempts int
	Backoff     time.Duration

	retries atomic.Uint64
	dropped atomic.Uint64 // permanent failures after exhausting retries

	jitterMu sync.Mutex
	jitter   *mrand.Rand
}

// defaultTimeout bounds each ordinary request attempt.
const defaultTimeout = 30 * time.Second

// waitPollMS is the server-side bound the client asks for on blocking
// job waits; the WaitHTTP timeout must exceed it.
const waitPollMS = 60_000

// NewClient builds a client for the given base URL.
func NewClient(base string) *Client {
	return &Client{
		Base:        strings.TrimRight(base, "/"),
		HTTP:        &http.Client{Timeout: defaultTimeout},
		WaitHTTP:    &http.Client{Timeout: (waitPollMS + 15_000) * time.Millisecond},
		MaxAttempts: 4,
		Backoff:     100 * time.Millisecond,
		jitter:      mrand.New(mrand.NewSource(time.Now().UnixNano())),
	}
}

// Stats reports the client's robustness counters: transient retries
// performed and calls dropped after exhausting them.
func (c *Client) Stats() (retries, dropped uint64) {
	return c.retries.Load(), c.dropped.Load()
}

// NewIdempotencyKey returns a fresh random key for job submission.
func NewIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fallback: time-based, still unique enough per client process.
		return fmt.Sprintf("k%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// doOnce performs one HTTP attempt. The response body is always fully
// drained and closed, success or failure, so keep-alive connections are
// reusable.
func (c *Client) doOnce(hc *http.Client, method, path, idemKey string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if idemKey != "" {
		req.Header.Set(IdempotencyHeader, idemKey)
	}
	if hc == nil {
		hc = &http.Client{Timeout: defaultTimeout}
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	// Drain any remainder before closing so the connection is reusable
	// even if ReadAll stopped early on error.
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &APIError{Status: resp.StatusCode, Msg: fmt.Sprintf("%s %s: %s", method, path, msg)}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// do performs a request with retries. Retrying is only armed for
// requests that are safe to repeat: reads, deletes, and submissions
// carrying an idempotency key. A non-idempotent POST gets exactly one
// attempt.
func (c *Client) do(method, path string, in, out any) error {
	idempotent := method == http.MethodGet || method == http.MethodDelete
	return c.doRetry(c.HTTP, method, path, "", idempotent, in, out)
}

func (c *Client) doRetry(hc *http.Client, method, path, idemKey string, idempotent bool, in, out any) error {
	attempts := c.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	if !idempotent && idemKey == "" {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.retries.Add(1)
			time.Sleep(c.backoff(i))
		}
		err = c.doOnce(hc, method, path, idemKey, in, out)
		if err == nil || !IsTransient(err) {
			return err
		}
	}
	c.dropped.Add(1)
	return fmt.Errorf("after %d attempts: %w", attempts, err)
}

// backoff computes the delay before retry i (1-based): exponential with
// ±50% jitter so a fleet of retrying clients does not stampede.
func (c *Client) backoff(i int) time.Duration {
	base := c.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base << uint(i-1)
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	c.jitterMu.Lock()
	frac := 0.5 + c.jitter.Float64() // 0.5x .. 1.5x
	c.jitterMu.Unlock()
	return time.Duration(float64(d) * frac)
}

// CreateMachine boots a machine on the server.
func (c *Client) CreateMachine(spec MachineSpec) (*MachineInfo, error) {
	var info MachineInfo
	if err := c.do("POST", "/v1/machines", spec, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Machines lists the server's machines.
func (c *Client) Machines() ([]*MachineInfo, error) {
	var out []*MachineInfo
	if err := c.do("GET", "/v1/machines", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// MachineInfo fetches one machine's state.
func (c *Client) MachineInfo(id string) (*MachineInfo, error) {
	var info MachineInfo
	if err := c.do("GET", "/v1/machines/"+id, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// DeleteMachine removes a machine.
func (c *Client) DeleteMachine(id string) error {
	return c.do("DELETE", "/v1/machines/"+id, nil, nil)
}

// KillMachine halts a machine mid-job (fault injection / administrative
// stop); the supervision layer quarantines and respawns it.
func (c *Client) KillMachine(id string) error {
	return c.do("POST", "/v1/machines/"+id+"/kill", nil, nil)
}

// Snapshot captures a machine into a server-side COW image.
func (c *Client) Snapshot(machineID string) (*SnapshotInfo, error) {
	var info SnapshotInfo
	if err := c.do("POST", "/v1/machines/"+machineID+"/snapshot", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Spawn builds count machines from a snapshot.
func (c *Client) Spawn(snapshotID string, count int) ([]*MachineInfo, error) {
	var out []*MachineInfo
	req := struct {
		Count int `json:"count"`
	}{count}
	if err := c.do("POST", "/v1/snapshots/"+snapshotID+"/spawn", req, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Run queues a step-budget job and returns its initial snapshot. The
// submission carries a fresh idempotency key, so transient failures are
// retried without ever double-running the job.
func (c *Client) Run(machineID string, steps uint64) (*Job, error) {
	return c.RunJob(machineID, steps, JobLimits{})
}

// RunJob is Run with explicit per-job limits.
func (c *Client) RunJob(machineID string, steps uint64, limits JobLimits) (*Job, error) {
	var j Job
	req := struct {
		Steps  uint64 `json:"steps"`
		WallMS int64  `json:"wall_ms,omitempty"`
	}{steps, limits.WallMS}
	key := NewIdempotencyKey()
	if err := c.doRetry(c.HTTP, "POST", "/v1/machines/"+machineID+"/run", key, false, req, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Campaign queues a fuzz/chaos campaign job, idempotently.
func (c *Client) Campaign(spec CampaignSpec) (*Job, error) {
	var j Job
	key := NewIdempotencyKey()
	if err := c.doRetry(c.HTTP, "POST", "/v1/campaigns", key, false, spec, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Job fetches a job's current state.
func (c *Client) Job(id string) (*Job, error) {
	var j Job
	if err := c.do("GET", "/v1/jobs/"+id, nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Fleet fetches the control plane's health surface.
func (c *Client) Fleet() (*FleetStatus, error) {
	var st FleetStatus
	if err := c.do("GET", "/v1/fleet", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitJob blocks until the job reaches a terminal state, using bounded
// server-side long-polls (so one hung connection can never wedge the
// client) with transient-failure retries between polls.
func (c *Client) WaitJob(id string) (*Job, error) {
	path := fmt.Sprintf("/v1/jobs/%s?wait=1&timeout_ms=%d", id, waitPollMS)
	for {
		var j Job
		err := c.doRetry(c.WaitHTTP, "GET", path, "", true, nil, &j)
		if err != nil {
			return nil, err
		}
		if j.State.Terminal() {
			return &j, nil
		}
	}
}

// Metrics fetches a machine's metrics registry JSON.
func (c *Client) Metrics(id string) (json.RawMessage, error) {
	var raw json.RawMessage
	if err := c.do("GET", "/v1/machines/"+id+"/metrics", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Trace fetches a machine's Chrome trace_event JSON.
func (c *Client) Trace(id string) (json.RawMessage, error) {
	var raw json.RawMessage
	if err := c.do("GET", "/v1/machines/"+id+"/trace", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// CampaignResultOf decodes a finished campaign job's result payload.
func CampaignResultOf(j *Job) (*CampaignResult, error) {
	if j.State == JobFailed {
		return nil, fmt.Errorf("campaign failed: %s", j.Error)
	}
	if j.State != JobDone {
		return nil, fmt.Errorf("campaign not finished (state %s)", j.State)
	}
	b, err := json.Marshal(j.Result)
	if err != nil {
		return nil, err
	}
	var res CampaignResult
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, err
	}
	return &res, nil
}
