package vfmd

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// spawnChild boots a machine, snapshots it, and spawns one child — the
// respawnable unit the quarantine tests exercise.
func spawnChild(t *testing.T, f *Fleet) (origin, child *MachineInfo, snap *SnapshotInfo) {
	t.Helper()
	origin, err := f.CreateMachine(bootSpec())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	snap, err = f.Snapshot(origin.ID)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	kids, err := f.Spawn(snap.ID, 1)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	return origin, kids[0], snap
}

func TestJobDeadline(t *testing.T) {
	f := NewFleet(1)
	defer f.Close()

	j, err := f.submit("run", nil, JobLimits{WallMS: 20}, "", func(jc *JobCtx) (any, error) {
		for {
			if err := jc.Err(); err != nil {
				return nil, err
			}
			time.Sleep(time.Millisecond)
		}
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got := j.Wait()
	if got.State != JobFailed {
		t.Fatalf("state = %s, want failed", got.State)
	}
	if !strings.Contains(got.Error, ErrDeadline.Error()) {
		t.Fatalf("error = %q, want deadline", got.Error)
	}
	// The deadline overrun must show up in the fault ring.
	found := false
	for _, fr := range f.FaultReports() {
		if fr.Job == got.ID && fr.Reason == "deadline" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no deadline fault report: %+v", f.FaultReports())
	}
}

func TestDefaultWallDeadline(t *testing.T) {
	f := NewFleetWith(FleetOptions{Workers: 1, DefaultWall: 20 * time.Millisecond})
	defer f.Close()

	j, err := f.submit("run", nil, JobLimits{}, "", func(jc *JobCtx) (any, error) {
		for {
			if err := jc.Err(); err != nil {
				return nil, err
			}
			time.Sleep(time.Millisecond)
		}
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if got := j.Wait(); got.State != JobFailed || !strings.Contains(got.Error, ErrDeadline.Error()) {
		t.Fatalf("got %s/%q, want failed/deadline", got.State, got.Error)
	}
}

func TestWorkerPanicBecomesFaultReport(t *testing.T) {
	f := NewFleet(1)
	defer f.Close()

	j, err := f.submit("run", nil, JobLimits{}, "", func(jc *JobCtx) (any, error) {
		panic("simulated simulator crash")
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got := j.Wait()
	if got.State != JobFailed {
		t.Fatalf("state = %s, want failed", got.State)
	}
	if got.Fault == nil || got.Fault.Reason != "panic" ||
		!strings.Contains(got.Fault.Panic, "simulated simulator crash") ||
		got.Fault.Stack == "" {
		t.Fatalf("fault report = %+v, want panic with stack", got.Fault)
	}

	// The pool must survive the panic: the next job runs normally.
	j2, err := f.submit("run", nil, JobLimits{}, "", func(jc *JobCtx) (any, error) {
		return "ok", nil
	})
	if err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	if got := j2.Wait(); got.State != JobDone {
		t.Fatalf("job after panic = %s/%q, want done", got.State, got.Error)
	}
}

func TestQueueFullLoadShed(t *testing.T) {
	release := make(chan struct{})
	f := NewFleetWith(FleetOptions{Workers: 1, QueueCap: 1})
	defer f.Close()
	defer close(release)

	blocker := func(jc *JobCtx) (any, error) { <-release; return nil, nil }
	// First job occupies the worker; second fills the queue of one.
	if _, err := f.submit("run", nil, JobLimits{}, "", blocker); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	// Wait until the worker has dequeued job 1 so the queue is empty.
	deadline := time.Now().Add(2 * time.Second)
	for f.depth.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up job 1")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := f.submit("run", nil, JobLimits{}, "", blocker); err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	_, err := f.submit("run", nil, JobLimits{}, "", blocker)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit 3 err = %v, want ErrQueueFull", err)
	}
}

func TestIdempotentSubmission(t *testing.T) {
	f := NewFleet(1)
	defer f.Close()

	fn := func(jc *JobCtx) (any, error) { return "x", nil }
	j1, err := f.submit("run", nil, JobLimits{}, "key-1", fn)
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	j2, err := f.submit("run", nil, JobLimits{}, "key-1", fn)
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if j1.ID != j2.ID {
		t.Fatalf("idempotent resubmit got job %s, want %s", j2.ID, j1.ID)
	}
	j3, err := f.submit("run", nil, JobLimits{}, "key-2", fn)
	if err != nil {
		t.Fatalf("submit 3: %v", err)
	}
	if j3.ID == j1.ID {
		t.Fatal("distinct keys must get distinct jobs")
	}
}

func TestStepBudgetAdmission(t *testing.T) {
	f := NewFleetWith(FleetOptions{Workers: 1, MaxSteps: 1000})
	defer f.Close()
	m, err := f.CreateMachine(bootSpec())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Run(m.ID, 999_999); !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
	j, err := f.Run(m.ID, 1000)
	if err != nil {
		t.Fatalf("run within cap: %v", err)
	}
	if got := j.Wait(); got.State != JobDone {
		t.Fatalf("run = %s/%q, want done", got.State, got.Error)
	}
}

func TestPanicQuarantinesAndRespawns(t *testing.T) {
	f := NewFleet(1)
	defer f.Close()
	_, child, snap := spawnChild(t, f)

	e, err := f.machine(child.ID)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	j, err := f.submit("run", e, JobLimits{}, "", func(jc *JobCtx) (any, error) {
		e.mu.Lock()
		defer e.mu.Unlock()
		panic("crash inside the sim")
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if got := j.Wait(); got.State != JobFailed {
		t.Fatalf("state = %s, want failed", got.State)
	}

	// The machine was spawned from a snapshot, so quarantine respawns it:
	// fence lifted, strikes cleared, respawn counted.
	info, err := f.MachineInfo(child.ID)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if info.Quarantined {
		t.Fatalf("machine still quarantined after respawn: %+v", info)
	}
	if info.Respawns != 1 {
		t.Fatalf("respawns = %d, want 1", info.Respawns)
	}
	if info.Strikes != 0 {
		t.Fatalf("strikes = %d, want 0 after respawn", info.Strikes)
	}
	if info.OriginSnapshot != snap.ID {
		t.Fatalf("origin = %q, want %q", info.OriginSnapshot, snap.ID)
	}
	reps := f.QuarantineReports()
	if len(reps) != 1 || !reps[0].Respawned {
		t.Fatalf("quarantine reports = %+v, want one respawned", reps)
	}

	// The respawned machine must be schedulable and runnable.
	j2, err := f.Run(child.ID, 500)
	if err != nil {
		t.Fatalf("run after respawn: %v", err)
	}
	if got := j2.Wait(); got.State != JobDone {
		t.Fatalf("run after respawn = %s/%q, want done", got.State, got.Error)
	}
}

func TestRespawnCapFencesForGood(t *testing.T) {
	f := NewFleetWith(FleetOptions{Workers: 1, RespawnCap: 1})
	defer f.Close()
	_, child, _ := spawnChild(t, f)
	e, err := f.machine(child.ID)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}

	crash := func(jc *JobCtx) (any, error) { panic("crash") }
	for i := 0; i < 2; i++ {
		j, err := f.submit("run", e, JobLimits{}, "", crash)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		j.Wait()
	}

	info, _ := f.MachineInfo(child.ID)
	if !info.Quarantined {
		t.Fatalf("machine not fenced after cap exhausted: %+v", info)
	}
	if info.Respawns != 1 {
		t.Fatalf("respawns = %d, want 1 (capped)", info.Respawns)
	}
	if _, err := f.Run(child.ID, 100); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("run on fenced machine err = %v, want ErrQuarantined", err)
	}
	if _, err := f.Snapshot(child.ID); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("snapshot on fenced machine err = %v, want ErrQuarantined", err)
	}
}

func TestBootedMachineQuarantineHasNoRespawn(t *testing.T) {
	f := NewFleet(1)
	defer f.Close()
	m, err := f.CreateMachine(bootSpec())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	e, _ := f.machine(m.ID)
	j, _ := f.submit("run", e, JobLimits{}, "", func(jc *JobCtx) (any, error) { panic("crash") })
	j.Wait()
	info, _ := f.MachineInfo(m.ID)
	if !info.Quarantined || info.Respawns != 0 {
		t.Fatalf("booted machine should stay fenced (no origin snapshot): %+v", info)
	}
}

func TestKillMachineMidJob(t *testing.T) {
	f := NewFleet(1)
	defer f.Close()
	_, child, _ := spawnChild(t, f)

	// The hook stalls the job at its first chunk boundary until the kill
	// has been issued; the loop re-checks the kill flag right after.
	started := make(chan struct{})
	killed := make(chan struct{})
	var once sync.Once
	f.opts.Hook = func(point string, j *Job) {
		if point == "run:chunk" {
			once.Do(func() { close(started) })
			<-killed
		}
	}
	j, err := f.Run(child.ID, 50_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	<-started
	if err := f.KillMachine(child.ID); err != nil {
		t.Fatalf("kill: %v", err)
	}
	close(killed)
	got := j.Wait()
	if got.State != JobFailed || !strings.Contains(got.Error, ErrMachineKilled.Error()) {
		t.Fatalf("got %s/%q, want failed/killed", got.State, got.Error)
	}
	// Kill quarantines; snapshot origin means it respawns with the flag
	// cleared, so the machine is schedulable again.
	info, _ := f.MachineInfo(child.ID)
	if info.Quarantined {
		t.Fatalf("killed machine not respawned: %+v", info)
	}
	if info.Respawns != 1 {
		t.Fatalf("respawns = %d, want 1", info.Respawns)
	}
	if leaked := f.LeakedLocks(); len(leaked) != 0 {
		t.Fatalf("leaked machine locks: %v", leaked)
	}
}

func TestShutdownForcesTerminalStates(t *testing.T) {
	f := NewFleetWith(FleetOptions{Workers: 1, DrainGrace: 30 * time.Millisecond})

	// A hostile job that ignores cooperative cancellation entirely.
	stuck, err := f.submit("run", nil, JobLimits{}, "", func(jc *JobCtx) (any, error) {
		time.Sleep(2 * time.Second)
		return nil, nil
	})
	if err != nil {
		t.Fatalf("submit stuck: %v", err)
	}
	// And a queued job behind it that will be shed.
	queued, err := f.submit("run", nil, JobLimits{}, "", func(jc *JobCtx) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	done := make(chan struct{})
	go func() { f.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a stuck job")
	}

	for _, j := range []*Job{stuck, queued} {
		got := j.snapshot()
		if !got.State.Terminal() {
			t.Fatalf("job %s state = %s, want terminal", got.ID, got.State)
		}
	}
	// New work is refused after shutdown.
	if _, err := f.submit("run", nil, JobLimits{}, "", func(jc *JobCtx) (any, error) { return nil, nil }); !errors.Is(err, ErrFleetClosed) {
		t.Fatalf("submit after close err = %v, want ErrFleetClosed", err)
	}
}

func TestContainmentTripsStrikeGradually(t *testing.T) {
	f := NewFleetWith(FleetOptions{Workers: 1, QuarantineStrikes: 3})
	defer f.Close()
	m, err := f.CreateMachine(bootSpec())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	e, _ := f.machine(m.ID)

	// Simulate a job that completed but tripped containment once: one
	// strike, below the threshold — no quarantine.
	j := &Job{ID: "jx", Kind: "run", Machine: m.ID, mu: &sync.Mutex{}, entry: e, containTrips: 1}
	f.noteJobOutcome(j, nil)
	info, _ := f.MachineInfo(m.ID)
	if info.Quarantined || info.Strikes != 1 {
		t.Fatalf("after 1 trip: %+v, want 1 strike no fence", info)
	}
	// Two more trips cross the threshold.
	j2 := &Job{ID: "jy", Kind: "run", Machine: m.ID, mu: &sync.Mutex{}, entry: e, containTrips: 2}
	f.noteJobOutcome(j2, nil)
	info, _ = f.MachineInfo(m.ID)
	if !info.Quarantined {
		t.Fatalf("after 3 trips: %+v, want quarantined", info)
	}
}
