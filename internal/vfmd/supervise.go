package vfmd

// Supervision layer for the fleet: per-job deadlines with cooperative
// cancellation, worker panic boundaries that turn a crashing simulation
// into a structured fault report, bounded-queue admission control with
// load shedding, and machine quarantine with capped respawn from the
// originating snapshot.
//
// The design deliberately mirrors the monitor's own containment story one
// level up (DESIGN.md, "Fleet supervision vs. monitor containment"): the
// monitor walls itself off from the firmware it hosts; the fleet walls
// itself off from the machines it hosts. A panic inside a simulation is
// caught at the worker boundary — never inside the sim, whose own panic
// boundaries already produce MonitorFaults for the failures the paper
// models — and a machine that keeps misbehaving is fenced out of
// scheduling and rebuilt from its snapshot, exactly as the monitor
// restarts a misbehaving firmware from its boot snapshot, with the same
// kind of restart cap.

import (
	"errors"
	"fmt"
	"time"
)

// Typed supervision errors. API handlers map these to status codes and
// the client maps the codes back, so both sides agree on what is
// retryable: a full queue is transient (retry with backoff), a
// quarantined machine or exhausted admission check is permanent.
var (
	// ErrQueueFull is load shedding: the job queue is at capacity and the
	// submission was rejected rather than queued. Transient — retry.
	ErrQueueFull = errors.New("job queue full (load shed)")

	// ErrFleetClosed means the fleet is shutting down and accepts no new
	// work.
	ErrFleetClosed = errors.New("fleet is shut down")

	// ErrQuarantined means the target machine is fenced out of scheduling
	// (its respawn cap is exhausted or it has no originating snapshot).
	ErrQuarantined = errors.New("machine is quarantined")

	// ErrDeadline is a job killed by its host wall-clock budget.
	ErrDeadline = errors.New("job deadline exceeded")

	// ErrShed is a queued job failed during shutdown drain instead of run.
	ErrShed = errors.New("job shed during shutdown")

	// ErrMachineKilled is a run job whose machine was halted out from
	// under it mid-job (fault injection or administrative kill).
	ErrMachineKilled = errors.New("machine killed mid-job")

	// ErrStepBudget rejects a run submission whose step budget exceeds
	// the fleet's admission cap. Permanent — shrink the request.
	ErrStepBudget = errors.New("step budget exceeds fleet cap")
)

// JobLimits are the per-job budgets a submission may carry. Zero values
// inherit the fleet defaults.
type JobLimits struct {
	// WallMS is the host wall-clock budget in milliseconds, measured from
	// the moment the job starts executing (queue time does not count).
	// Exceeding it fails the job with ErrDeadline at the next cooperative
	// cancellation point and strikes the machine.
	WallMS int64 `json:"wall_ms,omitempty"`
}

// JobCtx is the cooperative-cancellation handle threaded into every job
// function. Long-running jobs must poll Err at natural boundaries (run
// jobs do so between step chunks, campaign jobs between injected faults
// and fuzz slices); a non-nil result means stop now and return it.
type JobCtx struct {
	job   *Job
	fleet *Fleet
}

// Err returns nil while the job may keep running, ErrDeadline once the
// job's wall budget is spent, and ErrShed once the fleet has entered
// forced drain.
func (jc *JobCtx) Err() error {
	if jc == nil {
		return nil
	}
	select {
	case <-jc.fleet.cancelAll:
		return ErrShed
	default:
	}
	if !jc.job.deadline.IsZero() && time.Now().After(jc.job.deadline) {
		return ErrDeadline
	}
	return nil
}

// Cancelled is a convenience predicate over Err for callees that only
// need a bool (inject.CampaignConfig.Cancelled).
func (jc *JobCtx) Cancelled() bool { return jc.Err() != nil }

// FaultReport is the structured record of a job the supervision layer had
// to kill: a panic caught at the worker boundary, a deadline overrun, or
// a mid-job machine kill. The fleet keeps a bounded ring of these
// (surfaced via GET /v1/fleet) and attaches each to its job.
type FaultReport struct {
	Job     string `json:"job"`
	Kind    string `json:"kind"`              // job kind (run, campaign:...)
	Machine string `json:"machine,omitempty"` // machine involved, if any
	Reason  string `json:"reason"`            // panic | deadline | killed | shed
	Panic   string `json:"panic,omitempty"`   // recovered panic value
	Stack   string `json:"stack,omitempty"`   // goroutine stack at recovery
}

func (r FaultReport) String() string {
	s := fmt.Sprintf("job %s (%s) %s", r.Job, r.Kind, r.Reason)
	if r.Machine != "" {
		s += " on " + r.Machine
	}
	if r.Panic != "" {
		s += ": " + r.Panic
	}
	return s
}

// QuarantineReport records one quarantine decision: a machine crossed the
// strike threshold and was fenced, then respawned from its originating
// snapshot (Respawned=true) or left fenced (cap exhausted / no
// snapshot).
type QuarantineReport struct {
	Machine   string `json:"machine"`
	Reason    string `json:"reason"`
	Strikes   int    `json:"strikes"`
	Snapshot  string `json:"snapshot,omitempty"` // originating snapshot, if any
	Respawned bool   `json:"respawned"`
	Respawns  int    `json:"respawns"` // lifetime respawn count after this event
	Error     string `json:"error,omitempty"`
}

func (r QuarantineReport) String() string {
	verdict := "fenced"
	if r.Respawned {
		verdict = fmt.Sprintf("respawned from %s (#%d)", r.Snapshot, r.Respawns)
	}
	return fmt.Sprintf("machine %s quarantined (%s, %d strikes): %s",
		r.Machine, r.Reason, r.Strikes, verdict)
}

// FleetStatus is the control plane's own health surface (GET /v1/fleet).
type FleetStatus struct {
	Workers     int            `json:"workers"`
	QueueDepth  int            `json:"queue_depth"`
	QueueCap    int            `json:"queue_cap"`
	Closed      bool           `json:"closed"`
	Jobs        map[string]int `json:"jobs"` // state -> count
	Machines    int            `json:"machines"`
	Quarantined int            `json:"quarantined"`

	Quarantines []QuarantineReport `json:"quarantines,omitempty"`
	Faults      []FaultReport      `json:"faults,omitempty"`
}

// strike weights: a containment trip is one strike; panics, deadline
// overruns, and mid-job kills quarantine immediately by weighing a full
// threshold.
const containStrike = 1

// noteJobOutcome applies supervision policy after a job finishes: fault
// accounting, machine strikes, quarantine, respawn.
func (f *Fleet) noteJobOutcome(j *Job, err error) {
	e := j.entry
	switch {
	case err == nil:
		f.counters.jobsDone.Inc()
		if e != nil && j.containTrips > 0 {
			f.strike(e, containStrike*j.containTrips, "containment trips")
		}
	case errors.Is(err, errPanic):
		f.counters.jobsPanic.Inc()
		f.counters.jobsFailed.Inc()
		if e != nil {
			f.strike(e, f.opts.QuarantineStrikes, "job panic")
		}
	case errors.Is(err, ErrDeadline):
		f.counters.jobsDeadline.Inc()
		f.recordFault(&FaultReport{Job: j.ID, Kind: j.Kind, Machine: j.machineID(), Reason: "deadline"})
		if e != nil {
			f.strike(e, f.opts.QuarantineStrikes, "deadline exceeded")
		}
	case errors.Is(err, ErrMachineKilled):
		f.counters.jobsFailed.Inc()
		f.recordFault(&FaultReport{Job: j.ID, Kind: j.Kind, Machine: j.machineID(), Reason: "killed"})
		if e != nil {
			f.strike(e, f.opts.QuarantineStrikes, "machine killed mid-job")
		}
	case errors.Is(err, ErrShed):
		f.counters.jobsShed.Inc()
	default:
		f.counters.jobsFailed.Inc()
	}
}

// strike charges a machine with n strikes; crossing the threshold fences
// it and attempts a respawn from its originating snapshot, capped at
// RespawnCap (mirroring the monitor's firmware restart cap).
func (f *Fleet) strike(e *machineEntry, n int, reason string) {
	f.mu.Lock()
	e.strikes += n
	if e.quarantined || e.strikes < f.opts.QuarantineStrikes {
		f.mu.Unlock()
		return
	}
	e.quarantined = true
	e.quarReason = reason
	rep := QuarantineReport{
		Machine:  e.id,
		Reason:   reason,
		Strikes:  e.strikes,
		Snapshot: e.originSnap,
		Respawns: e.respawns,
	}
	var src *snapshotEntry
	if e.originSnap != "" && e.respawns < f.opts.RespawnCap {
		src = f.snapshots[e.originSnap]
	}
	f.mu.Unlock()
	f.counters.quarantines.Inc()

	if src != nil {
		if err := f.respawn(e, src); err != nil {
			rep.Error = err.Error()
		} else {
			f.mu.Lock()
			e.quarantined = false
			e.quarReason = ""
			e.strikes = 0
			e.respawns++
			rep.Respawned = true
			rep.Respawns = e.respawns
			f.mu.Unlock()
			f.counters.respawns.Inc()
		}
	}
	f.recordQuarantine(rep)
}

// respawn rebuilds a fenced machine in place from its originating
// snapshot: fresh COW spawn, fresh forked monitor, fresh observer. The
// machine keeps its identity; its simulation state is image-time state.
func (f *Fleet) respawn(e *machineEntry, s *snapshotEntry) error {
	sys, o, err := s.spawnOne()
	if err != nil {
		return fmt.Errorf("respawn %s from %s: %w", e.id, s.id, err)
	}
	e.mu.Lock()
	e.sys = sys
	e.obs = o
	e.killed.Store(false)
	e.mu.Unlock()
	return nil
}

// recordFault appends to the bounded fault ring (oldest dropped).
func (f *Fleet) recordFault(r *FaultReport) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.faults) >= faultRingCap {
		f.faults = f.faults[1:]
	}
	f.faults = append(f.faults, *r)
}

// recordQuarantine appends to the bounded quarantine ring.
func (f *Fleet) recordQuarantine(r QuarantineReport) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.quarantines) >= faultRingCap {
		f.quarantines = f.quarantines[1:]
	}
	f.quarantines = append(f.quarantines, r)
}

const faultRingCap = 256

// FaultReports returns a copy of the fault ring.
func (f *Fleet) FaultReports() []FaultReport {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FaultReport(nil), f.faults...)
}

// QuarantineReports returns a copy of the quarantine ring.
func (f *Fleet) QuarantineReports() []QuarantineReport {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]QuarantineReport(nil), f.quarantines...)
}

// LeakedLocks reports machines whose mutex is still held after the fleet
// has quiesced — the chaos campaign's "no leaked machine lock" invariant.
// Only meaningful once no jobs are running.
func (f *Fleet) LeakedLocks() []string {
	f.mu.Lock()
	entries := make([]*machineEntry, 0, len(f.machines))
	for _, e := range f.machines {
		entries = append(entries, e)
	}
	f.mu.Unlock()
	var leaked []string
	for _, e := range entries {
		if e.mu.TryLock() {
			e.mu.Unlock()
		} else {
			leaked = append(leaked, e.id)
		}
	}
	return leaked
}

// JobsSnapshot returns a snapshot of every job the fleet has ever
// accepted — the chaos campaign's "every job reaches a terminal state"
// invariant walks this.
func (f *Fleet) JobsSnapshot() []Job {
	f.mu.Lock()
	jobs := make([]*Job, 0, len(f.jobs))
	for _, j := range f.jobs {
		jobs = append(jobs, j)
	}
	f.mu.Unlock()
	out := make([]Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	return out
}

// Terminal reports whether the state is a job end state.
func (s JobState) Terminal() bool { return s == JobDone || s == JobFailed }
