package vfmd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// IdempotencyHeader carries a client-chosen key on job submissions (run,
// campaign). Re-submitting with the same key returns the already-accepted
// job instead of double-running it, which is what makes client-side
// retries of POSTs safe.
const IdempotencyHeader = "Idempotency-Key"

// NewServer wraps the fleet in an HTTP/JSON API:
//
//	POST   /v1/machines                  create+boot (MachineSpec body)
//	GET    /v1/machines                  list
//	GET    /v1/machines/{id}             inspect (incl. quarantine state)
//	DELETE /v1/machines/{id}             remove
//	POST   /v1/machines/{id}/run         queue a step-budget job {"steps":N,"wall_ms":M}
//	POST   /v1/machines/{id}/kill        halt the machine mid-job (fault injection)
//	POST   /v1/machines/{id}/snapshot    capture a COW image
//	GET    /v1/machines/{id}/metrics     obs metrics registry JSON
//	GET    /v1/machines/{id}/trace       Perfetto/Chrome trace JSON
//	POST   /v1/snapshots/{id}/spawn      spawn children {"count":N}
//	POST   /v1/campaigns                 queue a campaign job (CampaignSpec)
//	GET    /v1/jobs/{id}                 job state/result (?wait=1 blocks,
//	                                     &timeout_ms=N bounds the block)
//	GET    /v1/fleet                     control-plane health: queue depth,
//	                                     job counts, quarantine + fault reports
//
// Every error response is JSON ({"error":...}) with a consistent status:
// 400 malformed/invalid request, 404 unknown ID, 405 wrong method,
// 409 quarantined machine, 429 queue full (retry with backoff),
// 503 shutting down. Handler panics are caught and become 500s — the
// service process never dies to a request.
func NewServer(f *Fleet) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/machines", func(w http.ResponseWriter, r *http.Request) {
		var spec MachineSpec
		if !decode(w, r, &spec) {
			return
		}
		info, err := f.CreateMachine(spec)
		reply(w, info, err, http.StatusBadRequest)
	})
	mux.HandleFunc("GET /v1/machines", func(w http.ResponseWriter, r *http.Request) {
		reply(w, f.Machines(), nil, 0)
	})
	mux.HandleFunc("GET /v1/machines/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := f.MachineInfo(r.PathValue("id"))
		reply(w, info, err, http.StatusNotFound)
	})
	mux.HandleFunc("DELETE /v1/machines/{id}", func(w http.ResponseWriter, r *http.Request) {
		err := f.DeleteMachine(r.PathValue("id"))
		reply(w, map[string]bool{"deleted": err == nil}, err, http.StatusNotFound)
	})
	mux.HandleFunc("POST /v1/machines/{id}/run", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Steps  uint64 `json:"steps"`
			WallMS int64  `json:"wall_ms"`
		}
		if !decode(w, r, &req) {
			return
		}
		if req.Steps == 0 {
			jsonError(w, http.StatusBadRequest, "steps must be positive")
			return
		}
		j, err := f.RunJob(r.PathValue("id"), req.Steps,
			JobLimits{WallMS: req.WallMS}, r.Header.Get(IdempotencyHeader))
		if err != nil {
			reply(w, nil, err, http.StatusNotFound)
			return
		}
		reply(w, j.snapshot(), nil, 0)
	})
	mux.HandleFunc("POST /v1/machines/{id}/kill", func(w http.ResponseWriter, r *http.Request) {
		err := f.KillMachine(r.PathValue("id"))
		reply(w, map[string]bool{"killed": err == nil}, err, http.StatusNotFound)
	})
	mux.HandleFunc("POST /v1/machines/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		info, err := f.Snapshot(r.PathValue("id"))
		reply(w, info, err, http.StatusBadRequest)
	})
	mux.HandleFunc("GET /v1/machines/{id}/metrics", func(w http.ResponseWriter, r *http.Request) {
		e, err := f.machine(r.PathValue("id"))
		if err != nil {
			reply(w, nil, err, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		f.MetricsJSON(e.id, w)
	})
	mux.HandleFunc("GET /v1/machines/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		e, err := f.machine(r.PathValue("id"))
		if err != nil {
			reply(w, nil, err, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		f.TraceJSON(e.id, w)
	})
	mux.HandleFunc("POST /v1/snapshots/{id}/spawn", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Count int `json:"count"`
		}
		if !decode(w, r, &req) {
			return
		}
		infos, err := f.Spawn(r.PathValue("id"), req.Count)
		reply(w, infos, err, http.StatusBadRequest)
	})
	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec CampaignSpec
		if !decode(w, r, &spec) {
			return
		}
		j, err := f.CampaignJob(spec, r.Header.Get(IdempotencyHeader))
		if err != nil {
			reply(w, nil, err, http.StatusBadRequest)
			return
		}
		reply(w, j.snapshot(), nil, 0)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
			j, err := f.jobHandle(id)
			if err != nil {
				reply(w, nil, err, http.StatusNotFound)
				return
			}
			timeoutMS, _ := strconv.ParseInt(r.URL.Query().Get("timeout_ms"), 10, 64)
			reply(w, j.waitTimeout(time.Duration(timeoutMS)*time.Millisecond), nil, 0)
			return
		}
		j, err := f.Job(id)
		reply(w, j, err, http.StatusNotFound)
	})
	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		reply(w, f.Status(), nil, 0)
	})
	return supervised(mux)
}

// supervised wraps the mux in the API-level supervision boundary: a
// panicking handler becomes a JSON 500 (the serving goroutine survives
// regardless, but the client gets a structured error instead of a reset
// connection), and the mux's own text/plain 404/405 responses are
// rewritten to the API's JSON error shape so every error path speaks
// JSON.
func supervised(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &jsonErrWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil && !sw.wrote {
				jsonError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// jsonErrWriter rewrites non-JSON 404/405 bodies (the mux's defaults)
// into the API's JSON error shape. Handlers that already set a JSON
// content type pass through untouched.
type jsonErrWriter struct {
	http.ResponseWriter
	wrote    bool
	replaced bool
}

func (s *jsonErrWriter) WriteHeader(code int) {
	s.wrote = true
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.Contains(s.Header().Get("Content-Type"), "json") {
		s.replaced = true
		s.Header().Set("Content-Type", "application/json")
		s.ResponseWriter.WriteHeader(code)
		msg := "not found"
		if code == http.StatusMethodNotAllowed {
			msg = "method not allowed"
		}
		s.ResponseWriter.Write([]byte(jsonErr(errors.New(msg))))
		return
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *jsonErrWriter) Write(b []byte) (int, error) {
	s.wrote = true
	if s.replaced {
		return len(b), nil // swallow the mux's text body; ours is written
	}
	return s.ResponseWriter.Write(b)
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Body == nil || r.ContentLength == 0 {
		return true // empty body = zero-value request
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		jsonError(w, http.StatusBadRequest, "malformed request body: "+err.Error())
		return false
	}
	return true
}

func jsonErr(err error) string {
	b, _ := json.Marshal(map[string]string{"error": err.Error()})
	return string(b)
}

// jsonError writes a JSON error body with the given status, the single
// error path every handler uses (http.Error would set text/plain).
func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write([]byte(jsonErr(errors.New(msg))))
}

// statusFor maps supervision errors to their canonical status codes so
// the client can classify transient (429/503) vs. permanent failures.
func statusFor(err error, fallback int) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrFleetClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrQuarantined):
		return http.StatusConflict
	case errors.Is(err, ErrStepBudget):
		return http.StatusBadRequest
	}
	if fallback == 0 {
		return http.StatusInternalServerError
	}
	return fallback
}

func reply(w http.ResponseWriter, v any, err error, errCode int) {
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		w.WriteHeader(statusFor(err, errCode))
		w.Write([]byte(jsonErr(err)))
		return
	}
	json.NewEncoder(w).Encode(v)
}
