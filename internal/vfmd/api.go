package vfmd

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// NewServer wraps the fleet in an HTTP/JSON API:
//
//	POST   /v1/machines                  create+boot (MachineSpec body)
//	GET    /v1/machines                  list
//	GET    /v1/machines/{id}             inspect
//	DELETE /v1/machines/{id}             remove
//	POST   /v1/machines/{id}/run         queue a step-budget job {"steps":N}
//	POST   /v1/machines/{id}/snapshot    capture a COW image
//	GET    /v1/machines/{id}/metrics     obs metrics registry JSON
//	GET    /v1/machines/{id}/trace       Perfetto/Chrome trace JSON
//	POST   /v1/snapshots/{id}/spawn      spawn children {"count":N}
//	POST   /v1/campaigns                 queue a campaign job (CampaignSpec)
//	GET    /v1/jobs/{id}                 job state/result (?wait=1 blocks)
func NewServer(f *Fleet) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/machines", func(w http.ResponseWriter, r *http.Request) {
		var spec MachineSpec
		if !decode(w, r, &spec) {
			return
		}
		info, err := f.CreateMachine(spec)
		reply(w, info, err, http.StatusBadRequest)
	})
	mux.HandleFunc("GET /v1/machines", func(w http.ResponseWriter, r *http.Request) {
		reply(w, f.Machines(), nil, 0)
	})
	mux.HandleFunc("GET /v1/machines/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := f.MachineInfo(r.PathValue("id"))
		reply(w, info, err, http.StatusNotFound)
	})
	mux.HandleFunc("DELETE /v1/machines/{id}", func(w http.ResponseWriter, r *http.Request) {
		err := f.DeleteMachine(r.PathValue("id"))
		reply(w, map[string]bool{"deleted": err == nil}, err, http.StatusNotFound)
	})
	mux.HandleFunc("POST /v1/machines/{id}/run", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Steps uint64 `json:"steps"`
		}
		if !decode(w, r, &req) {
			return
		}
		if req.Steps == 0 {
			http.Error(w, `{"error":"steps must be positive"}`, http.StatusBadRequest)
			return
		}
		j, err := f.Run(r.PathValue("id"), req.Steps)
		if err != nil {
			reply(w, nil, err, http.StatusNotFound)
			return
		}
		reply(w, j.snapshot(), nil, 0)
	})
	mux.HandleFunc("POST /v1/machines/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		info, err := f.Snapshot(r.PathValue("id"))
		reply(w, info, err, http.StatusBadRequest)
	})
	mux.HandleFunc("GET /v1/machines/{id}/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := f.MetricsJSON(r.PathValue("id"), w); err != nil {
			http.Error(w, jsonErr(err), http.StatusNotFound)
		}
	})
	mux.HandleFunc("GET /v1/machines/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := f.TraceJSON(r.PathValue("id"), w); err != nil {
			http.Error(w, jsonErr(err), http.StatusNotFound)
		}
	})
	mux.HandleFunc("POST /v1/snapshots/{id}/spawn", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Count int `json:"count"`
		}
		if !decode(w, r, &req) {
			return
		}
		infos, err := f.Spawn(r.PathValue("id"), req.Count)
		reply(w, infos, err, http.StatusBadRequest)
	})
	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec CampaignSpec
		if !decode(w, r, &spec) {
			return
		}
		j, err := f.Campaign(spec)
		if err != nil {
			reply(w, nil, err, http.StatusBadRequest)
			return
		}
		reply(w, j.snapshot(), nil, 0)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
			j, err := f.jobHandle(id)
			if err != nil {
				reply(w, nil, err, http.StatusNotFound)
				return
			}
			reply(w, j.Wait(), nil, 0)
			return
		}
		j, err := f.Job(id)
		reply(w, j, err, http.StatusNotFound)
	})
	return mux
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Body == nil || r.ContentLength == 0 {
		return true // empty body = zero-value request
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, jsonErr(err), http.StatusBadRequest)
		return false
	}
	return true
}

func jsonErr(err error) string {
	b, _ := json.Marshal(map[string]string{"error": err.Error()})
	return string(b)
}

func reply(w http.ResponseWriter, v any, err error, errCode int) {
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		if errCode == 0 {
			errCode = http.StatusInternalServerError
		}
		w.WriteHeader(errCode)
		w.Write([]byte(jsonErr(err)))
		return
	}
	json.NewEncoder(w).Encode(v)
}
