package fuzz

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"govfm/internal/inject"
)

// InjectReport summarizes an injection-mode run: randomized machine states
// and programs from the differential generator, battered by the
// fault-injection engine while the monitor's containment is armed. The
// property under test is robustness, not equivalence: the monitor process
// must never panic, and every monitor-attributed halt must leave a
// structured fault record behind.
type InjectReport struct {
	Profile  string
	Cases    int
	Steps    int
	Injected int
	Halts    int // monitor-attributed halts (each must carry a fault record)
	Faults   int // structured MonitorFaults recorded across all cases
	Failures []string
}

// injectWatchdogBudget is deliberately small: random vM-mode programs never
// launch an OS, so the boot-regime budget is the clock that reaps the
// states injection wedges.
const injectWatchdogBudget = 25_000

// injectCaseSteps bounds one case; several watchdog budgets long so the
// reaper gets its chance.
const injectCaseSteps = 4 * StepBudget

// RunInjection builds a containment-armed engine for the profile and runs
// the given number of injection cases. The returned report's Failures list
// is the verdict: empty means every case upheld the robustness contract.
func RunInjection(profile string, seed int64, cases int) (*InjectReport, error) {
	e, err := NewEngine(profile)
	if err != nil {
		return nil, err
	}
	// The differential engine boots with containment off (lockstep wants
	// divergences visible, not contained). Injection wants the opposite:
	// arm containment and re-boot so the watchdog hook and the firmware
	// boot snapshot exist.
	e.Mon.Opts.Containment = true
	e.Mon.Opts.WatchdogBudget = injectWatchdogBudget
	e.Mon.Boot()
	e.virtBase = e.Virt.Checkpoint()

	rng := rand.New(rand.NewSource(seed))
	rep := &InjectReport{Profile: profile}
	for c := 0; c < cases; c++ {
		e.runInjectCase(rng, rep, c)
	}
	return rep, nil
}

// runInjectCase executes one case. It has its own recover so an escaped
// panic fails the case, not the process — escaping here means the
// monitor's own panic boundary leaked.
func (e *Engine) runInjectCase(rng *rand.Rand, rep *InjectReport, n int) {
	defer func() {
		if r := recover(); r != nil {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("case %d: panic escaped the monitor boundary: %v", n, r))
		}
	}()

	e.Virt.Restore(e.virtBase)
	e.Mon.ResetVirt(e.Ctx)

	tc := e.GenCase(rng)
	prog := make([]byte, 4*len(tc.Prog))
	for i, w := range tc.Prog {
		binary.LittleEndian.PutUint32(prog[4*i:], w)
	}
	e.Virt.LoadImage(ProgBase, e.progZero)
	e.Virt.LoadImage(ScratchBase, e.scratchZero)
	e.Virt.LoadImage(ProgBase, prog)
	e.installVirt(tc.State)

	inj := inject.New(rng.Int63(), e.Mon)
	rep.Cases++
	for step := 0; step < injectCaseSteps; step++ {
		if halted, _ := e.Virt.Halted(); halted {
			break
		}
		if step%97 == 13 {
			inj.Inject()
		}
		e.Virt.Step()
		rep.Steps++
	}
	rep.Injected += inj.Total
	rep.Faults += e.Mon.FaultCount

	if e.Mon.HaltedReason != "" {
		rep.Halts++
		if e.Mon.FaultCount == 0 {
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"case %d: monitor halted (%q) without a fault record",
				n, e.Mon.HaltedReason))
		}
	}
}
