package fuzz

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"govfm/internal/refmodel"
)

// -seed overrides the deterministic default so failures can be replayed:
//
//	go test ./internal/verif/fuzz -run TestLockstepSmoke -seed 12345
var seedFlag = flag.Int64("seed", 1, "fuzzer seed (failures print the seed to rerun)")

var lockstepProfiles = []string{"visionfive2", "p550"}

// TestLockstepSmoke fuzzes both board profiles for a fixed step budget and
// requires zero divergences.
func TestLockstepSmoke(t *testing.T) {
	budget := 20000
	if testing.Short() {
		budget = 4000
	}
	f, err := NewFuzzer(lockstepProfiles, *seedFlag)
	if err != nil {
		t.Fatal(err)
	}
	findings := f.RunBudget(budget, 3)
	for _, fd := range findings {
		t.Errorf("seed %d: %s", *seedFlag, fd)
	}
	if t.Failed() {
		t.Fatalf("seed %d: %d divergences in %d cases / %d steps (rerun with -seed %d)",
			*seedFlag, len(findings), f.Cases, f.Steps, *seedFlag)
	}
	t.Logf("seed %d: %d cases, %d lockstep steps, %d coverage keys, 0 divergences",
		*seedFlag, f.Cases, f.Steps, f.Coverage())
}

// TestEngineDeterministic re-runs one generated case and requires the
// outcome (and step count) to be identical — the foundation minimization
// and reproducers rest on.
func TestEngineDeterministic(t *testing.T) {
	e, err := NewEngine("visionfive2")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seedFlag))
	for i := 0; i < 20; i++ {
		tc := e.GenCase(rng)
		f1, n1 := e.Run(tc)
		f2, n2 := e.Run(tc)
		if n1 != n2 || (f1 == nil) != (f2 == nil) {
			t.Fatalf("seed %d case %d: nondeterministic: steps %d vs %d, finding %v vs %v",
				*seedFlag, i, n1, n2, f1, f2)
		}
		if f1 != nil && f2 != nil && (f1.Where != f2.Where || f1.Step != f2.Step) {
			t.Fatalf("seed %d case %d: nondeterministic finding: %s vs %s",
				*seedFlag, i, f1, f2)
		}
	}
}

// TestCanonicalizeIdempotent checks that canonicalization is a fixpoint:
// legalizing a legalized state changes nothing. Run's install paths depend
// on this (they copy canonical values verbatim).
func TestCanonicalizeIdempotent(t *testing.T) {
	for _, profile := range lockstepProfiles {
		e, err := NewEngine(profile)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(*seedFlag))
		for i := 0; i < 50; i++ {
			tc := e.GenCase(rng) // GenCase canonicalizes
			once, err := tc.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			e.canonicalize(tc)
			twice, _ := tc.Marshal()
			if string(once) != string(twice) {
				t.Fatalf("seed %d %s case %d: canonicalize not idempotent:\n%s\nvs\n%s",
					*seedFlag, profile, i, once, twice)
			}
		}
	}
}

// TestReplayJSONRoundTrip serializes a case and replays it through the
// public JSON entry point used by reproducer files.
func TestReplayJSONRoundTrip(t *testing.T) {
	e, err := cachedEngine("visionfive2")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seedFlag))
	tc := e.GenCase(rng)
	want, wantSteps := e.Run(tc)
	data, err := tc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReplayJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if (want == nil) != (got == nil) {
		t.Fatalf("seed %d: replay disagrees: direct=%v replay=%v (steps %d)",
			*seedFlag, want, got, wantSteps)
	}
}

// TestMinimizeWith exercises the descent algorithm against a synthetic
// predicate: the divergence depends on two instruction slots and one
// register; everything else must be stripped.
func TestMinimizeWith(t *testing.T) {
	tc := &TestCase{Profile: "synthetic", Prog: make([]uint32, 32)}
	tc.State = newSyntheticState()
	for i := range tc.Prog {
		tc.Prog[i] = 0x1000 + uint32(i)
	}
	tc.Prog[5] = 0xAAAA
	tc.Prog[20] = 0xBBBB
	tc.State.Regs[7] = 99

	runs := 0
	diverges := func(c *TestCase) bool {
		runs++
		has := func(w uint32) bool {
			for _, x := range c.Prog {
				if x == w {
					return true
				}
			}
			return false
		}
		return has(0xAAAA) && has(0xBBBB) && c.State.Regs[7] == 99
	}
	minimizeWith(diverges, tc)

	for i, w := range tc.Prog {
		switch i {
		case 5:
			if w != 0xAAAA {
				t.Fatalf("slot 5 lost: %#x", w)
			}
		case 20:
			if w != 0xBBBB {
				t.Fatalf("slot 20 lost: %#x", w)
			}
		default:
			if w != nop {
				t.Errorf("slot %d not nopped: %#x", i, w)
			}
		}
	}
	if tc.State.Regs[7] != 99 {
		t.Fatalf("x7 lost: %d", tc.State.Regs[7])
	}
	for i := 1; i < 32; i++ {
		if i != 7 && tc.State.Regs[i] != 0 {
			t.Errorf("x%d not zeroed: %d", i, tc.State.Regs[i])
		}
	}
	if runs == 0 {
		t.Fatal("predicate never consulted")
	}
}

func newSyntheticState() *refmodel.State {
	s := refmodel.NewState()
	for i := 1; i < 32; i++ {
		s.Regs[i] = uint64(i * 1111)
	}
	return s
}

// TestReplayRepros replays every checked-in reproducer under
// testdata/repros. Committed reproducers are regressions for fixed bugs,
// so each must replay with zero divergence.
func TestReplayRepros(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "repros", "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no checked-in reproducers")
	}
	caseRE := regexp.MustCompile("(?s)const reproCase_[0-9a-f]+ = `(.*?)`")
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			ms := caseRE.FindAllSubmatch(src, -1)
			if len(ms) == 0 {
				t.Fatalf("%s: no embedded case found", file)
			}
			for _, m := range ms {
				f, err := ReplayJSON(m[1])
				if err != nil {
					t.Fatal(err)
				}
				if f != nil {
					t.Errorf("regression reappeared:\n%s", f)
				}
			}
		})
	}
}
